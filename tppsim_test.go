package tppsim

import (
	"path/filepath"
	"strings"
	"testing"

	"tppsim/internal/experiments"
)

func TestQuickstartFacade(t *testing.T) {
	wl := Workloads["Cache1"](8 * 1024)
	m, err := NewMachine(MachineConfig{
		Seed:     7,
		Policy:   TPP(),
		Workload: wl,
		Ratio:    [2]uint64{2, 1},
		Minutes:  10,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	if res.Failed {
		t.Fatalf("run failed: %s", res.FailReason)
	}
	if res.NormalizedThroughput <= 0.5 || res.NormalizedThroughput > 1.05 {
		t.Fatalf("throughput out of range: %v", res.NormalizedThroughput)
	}
}

func TestWorkloadCatalogExposed(t *testing.T) {
	names := WorkloadNames()
	// The paper's eight production workloads plus the three trace-backed
	// generated scenarios.
	want := []string{
		"Ads1", "Ads2", "Ads3", "AdvChurn", "Cache1", "Cache2",
		"PhaseShift", "SeqScan", "Warehouse", "Web1", "Web2",
	}
	if len(names) != len(want) {
		t.Fatalf("WorkloadNames = %v", names)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("WorkloadNames[%d] = %q, want %q (all: %v)", i, names[i], n, names)
		}
		if Workloads[n] == nil {
			t.Fatalf("catalog missing %s", n)
		}
	}
}

// TestRecordReplayFacade drives the exported Record/Replay/OpenTrace
// surface end to end: record a run, replay it identically, and re-drive
// the same trace under a different policy.
func TestRecordReplayFacade(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache1.trace.gz")
	cfg := MachineConfig{
		Seed:     7,
		Policy:   TPP(),
		Workload: Workloads["Cache1"](4 * 1024),
		Ratio:    [2]uint64{2, 1},
		Minutes:  5,
	}
	base, err := Record(cfg, path)
	if err != nil {
		t.Fatalf("Record: %v", err)
	}
	if base.Failed {
		t.Fatalf("recorded run failed: %s", base.FailReason)
	}

	tr, err := OpenTrace(path)
	if err != nil {
		t.Fatalf("OpenTrace: %v", err)
	}
	if tr.Header.Name != "Cache1" || tr.Header.TotalPages != cfg.Workload.TotalPages() {
		t.Fatalf("trace header = %+v", tr.Header)
	}

	rep, err := Replay(path, cfg)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if rep.NormalizedThroughput != base.NormalizedThroughput ||
		rep.AvgLocalTraffic != base.AvgLocalTraffic ||
		rep.AvgLatencyNs != base.AvgLatencyNs {
		t.Fatalf("replay diverged: recorded %v/%v/%v, replayed %v/%v/%v",
			base.NormalizedThroughput, base.AvgLocalTraffic, base.AvgLatencyNs,
			rep.NormalizedThroughput, rep.AvgLocalTraffic, rep.AvgLatencyNs)
	}

	cfg.Policy = DefaultLinux()
	other, err := Replay(path, cfg)
	if err != nil {
		t.Fatalf("Replay under DefaultLinux: %v", err)
	}
	if other.Failed {
		t.Fatalf("cross-policy replay failed: %s", other.FailReason)
	}
}

// TestReplayOptionsFacade exercises the exported loop/truncate options
// and the recorded-topology adoption: a machine recorded on the 3-tier
// expander replays on the identical machine when the caller specifies no
// sizing, reproducing the recorded scalars exactly.
func TestReplayOptionsFacade(t *testing.T) {
	path := filepath.Join(t.TempDir(), "expander.trace")
	cfg := MachineConfig{
		Seed:     11,
		Policy:   TPP(),
		Workload: Workloads["Cache2"](4 * 1024),
		Topology: TopologyExpander(2, 1, 1),
		Minutes:  4,
	}
	base, err := Record(cfg, path)
	if err != nil {
		t.Fatalf("Record: %v", err)
	}
	if base.Failed {
		t.Fatalf("recorded run failed: %s", base.FailReason)
	}

	tr, err := OpenTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Header.Topology == nil || len(tr.Header.Topology.Nodes) != 3 {
		t.Fatalf("trace did not record the 3-node topology: %+v", tr.Header.Topology)
	}

	// No sizing in the replay config: the recorded machine is rebuilt,
	// so the replay reproduces the recorded run exactly.
	rep, err := Replay(path, MachineConfig{Seed: 11, Policy: TPP()})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if rep.NormalizedThroughput != base.NormalizedThroughput ||
		rep.AvgLocalTraffic != base.AvgLocalTraffic ||
		rep.AvgLatencyNs != base.AvgLatencyNs {
		t.Fatalf("adopted-topology replay diverged: recorded %v/%v/%v, replayed %v/%v/%v",
			base.NormalizedThroughput, base.AvgLocalTraffic, base.AvgLatencyNs,
			rep.NormalizedThroughput, rep.AvgLocalTraffic, rep.AvgLatencyNs)
	}

	// Truncate to the first minute of the trace.
	short, err := Replay(path, MachineConfig{Seed: 11, Policy: TPP()},
		ReplayOptions{MaxTicks: 60})
	if err != nil {
		t.Fatalf("Replay truncated: %v", err)
	}
	if short.Failed {
		t.Fatalf("truncated replay failed: %s", short.FailReason)
	}

	// Loop a 4-minute trace through an 8-minute run.
	looped, err := Replay(path, MachineConfig{Seed: 11, Policy: DefaultLinux(), Minutes: 8},
		ReplayOptions{Loop: true})
	if err != nil {
		t.Fatalf("Replay looped: %v", err)
	}
	if looped.Failed {
		t.Fatalf("looped replay failed: %s", looped.FailReason)
	}

	if _, err := Replay(path, MachineConfig{Seed: 11, Policy: TPP()},
		ReplayOptions{}, ReplayOptions{}); err == nil {
		t.Fatal("two ReplayOptions values accepted")
	}
}

func TestExperimentRegistryComplete(t *testing.T) {
	ids := map[string]bool{}
	for _, s := range Experiments() {
		ids[s.ID] = true
		if s.Caption == "" || s.Run == nil {
			t.Fatalf("experiment %s incomplete", s.ID)
		}
	}
	// Every paper artifact must be present.
	want := []string{
		"Fig2", "Fig3", "Fig4", "Fig5", "Fig7", "Fig8", "Fig9", "Fig10", "Fig11",
		"Table1", "Fig14", "Fig15", "Fig16", "Fig17", "Fig18", "Table2", "Fig19",
		"Table3", "Table4", "X1", "X2", "X3",
	}
	for _, id := range want {
		if !ids[id] {
			t.Errorf("registry missing %s", id)
		}
	}
}

// TestShapeTable1 asserts the paper's headline orderings at reduced scale:
// TPP beats Default Linux under pressure and AutoTiering fails at 1:4.
func TestShapeTable1(t *testing.T) {
	if testing.Short() {
		t.Skip("integration shape test")
	}
	o := experiments.Options{Pages: 8 * 1024, Minutes: 25}
	runOne := func(p Policy, wl string, ratio [2]uint64) *RunResult {
		m, err := NewMachine(MachineConfig{
			Seed: 1, Policy: p, Workload: Workloads[wl](o.Pages), Ratio: ratio, Minutes: o.Minutes,
		})
		if err != nil {
			t.Fatal(err)
		}
		return m.Run()
	}

	def := runOne(DefaultLinux(), "Web1", [2]uint64{2, 1})
	tpp := runOne(TPP(), "Web1", [2]uint64{2, 1})
	if tpp.NormalizedThroughput <= def.NormalizedThroughput {
		t.Errorf("Web1 2:1: TPP %.3f <= Default %.3f", tpp.NormalizedThroughput, def.NormalizedThroughput)
	}
	if tpp.NormalizedThroughput < 0.95 {
		t.Errorf("Web1 2:1: TPP not near baseline: %.3f", tpp.NormalizedThroughput)
	}

	at := runOne(AutoTiering(), "Cache1", [2]uint64{1, 4})
	if !at.Failed {
		t.Error("Cache1 1:4: AutoTiering did not fail")
	}
	at21 := runOne(AutoTiering(), "Cache1", [2]uint64{2, 1})
	if at21.Failed {
		t.Error("Cache1 2:1: AutoTiering failed but should run")
	}
}

// TestShapeDecoupling asserts Fig. 17's direction: decoupling increases
// promotion throughput under pressure.
func TestShapeDecoupling(t *testing.T) {
	if testing.Short() {
		t.Skip("integration shape test")
	}
	res := experiments.Fig17(experiments.Options{Pages: 8 * 1024, Minutes: 25})
	if len(res.Table.Rows) < 4 {
		t.Fatal("Fig17 incomplete")
	}
	if !strings.Contains(res.Table.String(), "promotion rate") {
		t.Fatal("Fig17 missing promotion rate")
	}
}

func TestExperimentStaticsRun(t *testing.T) {
	for _, id := range []string{"Fig2", "Fig3", "Fig4", "Fig5"} {
		spec, ok := experiments.Find(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		res := spec.Run(experiments.Options{})
		if len(res.Table.Rows) == 0 {
			t.Errorf("%s produced no rows", id)
		}
	}
}
