module tppsim

go 1.22
