// Webtier reproduces the §6.1.1 Web1 story: the HHVM-style service floods
// memory with file cache during initialization, filling the local node;
// without TPP the hot anonymous pages that arrive later are trapped on
// CXL-Memory forever. The example prints the local-traffic trajectory for
// default Linux, TPP, and the all-local ideal, plus TPP's demotion and
// promotion counters.
package main

import (
	"fmt"
	"log"

	"tppsim"
	"tppsim/internal/vmstat"
)

func run(policy tppsim.Policy, ratio [2]uint64) *tppsim.Machine {
	m, err := tppsim.NewMachine(tppsim.MachineConfig{
		Seed:     1,
		Policy:   policy,
		Workload: tppsim.Workloads["Web1"](32 * 1024),
		Ratio:    ratio,
		Minutes:  45,
	})
	if err != nil {
		log.Fatal(err)
	}
	m.Run()
	return m
}

func main() {
	ideal := run(tppsim.DefaultLinux(), [2]uint64{1, 0})
	def := run(tppsim.DefaultLinux(), [2]uint64{2, 1})
	tpp := run(tppsim.TPP(), [2]uint64{2, 1})

	fmt.Println("Web1 on a 2:1 local:CXL machine (fraction of accesses served locally):")
	fmt.Printf("%8s  %10s  %10s  %10s\n", "minute", "all-local", "default", "TPP")
	dSeries, tSeries := def.Results().LocalTraffic, tpp.Results().LocalTraffic
	for i := 0; i < dSeries.Len(); i += 6 {
		fmt.Printf("%8.0f  %10.2f  %10.2f  %10.2f\n",
			dSeries.X[i], 1.0, dSeries.Y[i], tSeries.Y[i])
	}

	fmt.Println("\nrun summary:")
	for _, m := range []*tppsim.Machine{ideal, def, tpp} {
		fmt.Println(" ", m.Results())
	}

	snap := tpp.Stat().Snapshot()
	fmt.Println("\nTPP placement activity (vmstat):")
	for _, c := range []vmstat.Counter{
		vmstat.PgdemoteKswapd, vmstat.PgdemoteAnon, vmstat.PgdemoteFile,
		vmstat.PgpromoteSuccess, vmstat.PgpromoteDemoted, vmstat.NumaHintFaults,
	} {
		fmt.Printf("  %-24s %d\n", c, snap.Get(c))
	}
}
