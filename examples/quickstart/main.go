// Quickstart: build a 2:1 CXL tiered-memory machine, run the Cache1
// workload under default Linux and under TPP, and compare.
package main

import (
	"fmt"
	"log"

	"tppsim"
)

func main() {
	for _, policy := range []tppsim.Policy{tppsim.DefaultLinux(), tppsim.TPP()} {
		m, err := tppsim.NewMachine(tppsim.MachineConfig{
			Seed:     1,
			Policy:   policy,
			Workload: tppsim.Workloads["Cache1"](32 * 1024), // 128 MB working set
			Ratio:    [2]uint64{2, 1},                       // local:CXL capacity
			Minutes:  30,
		})
		if err != nil {
			log.Fatal(err)
		}
		res := m.Run()
		fmt.Println(res)
	}
	fmt.Println("\nTPP should serve nearly all traffic from local DRAM and stay")
	fmt.Println("within ~1% of the all-local baseline (paper Table 1).")
}
