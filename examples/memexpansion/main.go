// Memexpansion explores the §6.1.2 memory-expansion setup: local DRAM is
// only 20% of total memory (1:4), with a large cheap CXL tier behind it.
// It runs Cache1 under TPP with and without §5.4's page-type-aware
// allocation, which prefers the CXL node for file/tmpfs caches so that
// anonymous pages keep the small local node.
package main

import (
	"fmt"
	"log"

	"tppsim"
)

func main() {
	configs := []struct {
		label  string
		policy tppsim.Policy
	}{
		{"default Linux", tppsim.DefaultLinux()},
		{"TPP", tppsim.TPP()},
		{"TPP + page-type-aware", tppsim.TPP(tppsim.WithPageTypeAware())},
	}
	fmt.Println("Cache1 with local DRAM = 20% of memory (1:4 expansion):")
	for _, c := range configs {
		m, err := tppsim.NewMachine(tppsim.MachineConfig{
			Seed:     1,
			Policy:   c.policy,
			Workload: tppsim.Workloads["Cache1"](32 * 1024),
			Ratio:    [2]uint64{1, 4},
			Minutes:  40,
		})
		if err != nil {
			log.Fatal(err)
		}
		res := m.Run()
		fmt.Printf("  %-24s throughput=%5.1f%%  local traffic=%5.1f%%\n",
			c.label, 100*res.NormalizedThroughput, 100*res.AvgLocalTraffic)
	}
	fmt.Println("\nEven with local DRAM at 20% of the working set, TPP keeps the hot")
	fmt.Println("set local (paper: ~85% local traffic, throughput within 0.5% of baseline).")
}
