// Profiling runs Chameleon (§3) against a custom workload built with the
// public Profile API, and prints the page-temperature heat map and
// re-access distribution the paper uses to argue for tiered memory.
package main

import (
	"fmt"
	"log"

	"tppsim"
	"tppsim/internal/chameleon"
	"tppsim/internal/mem"
	"tppsim/internal/metrics"
	"tppsim/internal/workload"
)

func main() {
	// A custom service: a hot in-memory index, a long-tail document
	// cache, and request-scratch churn.
	custom := &tppsim.Profile{
		PName:  "SearchNode",
		TM:     metrics.ThroughputModel{CPUServiceNs: 900, StallsPerOp: 1},
		Warmup: 3 * workload.TicksPerMinute,
		Specs: []workload.RegionSpec{
			{
				Name: "index", Type: mem.Anon,
				Pages:  20 * 1024,
				Weight: 0.55, HotFraction: 0.35, HotWeight: 0.95,
			},
			{
				Name: "doc-cache", Type: mem.File,
				Pages:  28 * 1024,
				Weight: 0.35, HotFraction: 0.08, HotWeight: 0.9,
				DirtyProb:       0.2,
				PrefaultPerTick: 28 * 1024 / (3 * workload.TicksPerMinute),
			},
			{
				Name: "request-scratch", Type: mem.Anon,
				Pages:         4 * 1024,
				Weight:        0.10,
				ChurnSegments: 16, ChurnTicks: 5, RecencyBias: 0.6,
			},
		},
	}

	m, err := tppsim.NewMachine(tppsim.MachineConfig{
		Seed:            1,
		Policy:          tppsim.DefaultLinux(),
		Workload:        custom,
		Ratio:           [2]uint64{1, 0}, // profile on an ordinary host
		Minutes:         25,
		EnableChameleon: true,
		// The simulated access stream is pre-sampled, so PEBS's 1-in-200
		// corresponds to 1-in-2 here.
		ChameleonConfig: chameleon.Config{SampleRate: 2},
	})
	if err != nil {
		log.Fatal(err)
	}
	m.Run()

	rep := m.Chameleon().Report(custom.PName)
	fmt.Print(rep.String())
	fmt.Println("\nreading the report: pages hot only at 5-10 minute windows (or cold)")
	fmt.Println("are offload candidates; a large cold band means a CXL tier can absorb")
	fmt.Println("much of this working set without hurting the hot path.")
}
