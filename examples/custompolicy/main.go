// Custompolicy shows the policy surface: every TPP component is an
// independently switchable mechanism, so "what if" variants are ordinary
// configuration. The example sweeps the §6.2 ablations plus a custom
// variant (demotion without promotion) on the pressured 1:4 Cache1 setup
// and prints what each component contributes.
package main

import (
	"fmt"
	"log"

	"tppsim"
)

func main() {
	// A custom variant built from the policy struct directly: TPP's
	// demotion path without any promotion mechanism.
	demoteOnly := tppsim.TPP()
	demoteOnly.Name = "demotion only (no promotion)"
	demoteOnly.NUMAB.Enabled = false

	variants := []tppsim.Policy{
		tppsim.DefaultLinux(),
		demoteOnly,
		tppsim.TPP(tppsim.WithoutDecoupling()),
		tppsim.TPP(tppsim.WithInstantPromotion()),
		tppsim.TPP(),
	}

	fmt.Println("Cache1 at 1:4 — contribution of each TPP component:")
	fmt.Printf("  %-34s %12s %14s\n", "policy", "throughput", "local traffic")
	for _, p := range variants {
		m, err := tppsim.NewMachine(tppsim.MachineConfig{
			Seed:     1,
			Policy:   p,
			Workload: tppsim.Workloads["Cache1"](32 * 1024),
			Ratio:    [2]uint64{1, 4},
			Minutes:  40,
		})
		if err != nil {
			log.Fatal(err)
		}
		res := m.Run()
		fmt.Printf("  %-34s %11.1f%% %13.1f%%\n",
			p.Name, 100*res.NormalizedThroughput, 100*res.AvgLocalTraffic)
	}
	fmt.Println("\nExpected ordering (paper §6.2): each mechanism compounds — demotion")
	fmt.Println("alone frees the local node but strands hot pages; promotion without")
	fmt.Println("the active-LRU filter ping-pongs; full TPP converges highest.")
}
