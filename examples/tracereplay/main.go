// Example tracereplay demonstrates the access-trace record/replay
// engine: capture one workload's access stream to a trace file, then
// replay the identical stream under every placement policy. Because all
// policies see the same recorded events, the comparison is apples to
// apples — differences come from placement decisions alone, not from
// workload randomness.
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"tppsim"
)

func main() {
	dir, err := os.MkdirTemp("", "tppsim-trace")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "web1.trace.gz")

	cfg := tppsim.MachineConfig{
		Seed:     1,
		Policy:   tppsim.DefaultLinux(), // the recording policy is irrelevant to the stream
		Workload: tppsim.Workloads["Web1"](16 * 1024),
		Ratio:    [2]uint64{2, 1},
		Minutes:  20,
	}
	if _, err := tppsim.Record(cfg, path); err != nil {
		fmt.Fprintln(os.Stderr, "record:", err)
		os.Exit(1)
	}
	tr, err := tppsim.OpenTrace(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("recorded %s: %d pages, %d KB on disk\n\n",
		tr.Header.Name, tr.Header.TotalPages, tr.Size()/1024)

	fmt.Printf("%-16s %12s %12s\n", "policy", "throughput", "local")
	for _, p := range []tppsim.Policy{
		tppsim.DefaultLinux(),
		tppsim.NUMABalancing(),
		tppsim.AutoTiering(),
		tppsim.TMOOnly(),
		tppsim.TPP(),
	} {
		cfg.Policy = p
		res, err := tppsim.Replay(path, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, p.Name+":", err)
			os.Exit(1)
		}
		if res.Failed {
			fmt.Printf("%-16s %12s %12s (%s)\n", p.Name, "FAILS", "-", res.FailReason)
			continue
		}
		fmt.Printf("%-16s %11.1f%% %11.1f%%\n",
			p.Name, 100*res.NormalizedThroughput, 100*res.AvgLocalTraffic)
	}
}
