// Multitier runs TPP against Default Linux on the 3-tier multi-hop
// expander (local DRAM → near CXL → far CXL). The paper's mechanism is
// written for arbitrary NUMA distance matrices (§5.1: "the demotion
// target is chosen based on the node distances from the CPU"); on this
// machine that means reclaim cascades local→near→far, NUMA-balancing
// hint faults pull hot pages back up far→near→local one hop at a time,
// and Default Linux — with no placement mechanism at all — simply
// strands the hot set wherever the warm-up flood left it.
package main

import (
	"fmt"
	"log"

	"tppsim"
)

func main() {
	topo := tppsim.TopologyExpander(2, 1, 1)
	fmt.Println("Cache2 on the 3-tier expander (local : near-CXL : far-CXL = 2:1:1):")
	fmt.Println()
	for _, p := range []tppsim.Policy{tppsim.DefaultLinux(), tppsim.TPP()} {
		m, err := tppsim.NewMachine(tppsim.MachineConfig{
			Seed:     1,
			Policy:   p,
			Workload: tppsim.Workloads["Cache2"](32 * 1024),
			Topology: topo,
			Minutes:  40,
		})
		if err != nil {
			log.Fatal(err)
		}
		res := m.Run()
		fmt.Printf("%-14s throughput=%5.1f%%  local traffic=%5.1f%%\n",
			p.Name, 100*res.NormalizedThroughput, 100*res.AvgLocalTraffic)

		mt := m.Topology()
		eng := m.Engine()
		for i := 0; i < mt.NumNodes(); i++ {
			id := mt.Nodes()[i].ID
			fmt.Printf("    node%d tier%d %-5s  resident=%6d  demoted-into=%6d  promoted-out=%6d\n",
				id, mt.TierOf(id), mt.Node(id).Kind,
				mt.Node(id).Resident(), eng.DemotedInto(id), eng.PromotedFrom(id))
		}
		fmt.Println()
		// The node-indexed vmstat plane breaks the same story down by
		// kernel counter: every column sums exactly to the run's global
		// vmstat value.
		fmt.Print(tppsim.NodeTable(res).String())
		fmt.Println()
	}
	fmt.Println("Under TPP the far tier is a working rung of the cascade: cold pages")
	fmt.Println("demote into it hop by hop and hot pages climb back out via near-CXL")
	fmt.Println("to local DRAM. Default Linux moves nothing once allocated.")
}
