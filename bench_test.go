// Benchmarks: one per paper table and figure. Each benchmark regenerates
// its artifact at reduced scale per iteration (benchmarks are about
// keeping the harness runnable and timed, not about matching absolute
// wall-clock); cmd/experiments regenerates the full-scale artifacts.
package tppsim

import (
	"testing"

	"tppsim/internal/experiments"
)

// benchOpts is the reduced scale used per benchmark iteration.
func benchOpts() experiments.Options {
	return experiments.Options{Pages: 8 * 1024, Minutes: 15, Seed: 1}
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	spec, ok := experiments.Find(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	o := benchOpts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := spec.Run(o)
		if res.Table == nil || len(res.Table.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

func BenchmarkFig2LatencyMatrix(b *testing.B)     { benchExperiment(b, "Fig2") }
func BenchmarkFig3MemoryTCO(b *testing.B)         { benchExperiment(b, "Fig3") }
func BenchmarkFig4BandwidthCapacity(b *testing.B) { benchExperiment(b, "Fig4") }
func BenchmarkFig5CXLvsNUMA(b *testing.B)         { benchExperiment(b, "Fig5") }
func BenchmarkFig7PageTemperature(b *testing.B)   { benchExperiment(b, "Fig7") }
func BenchmarkFig8AnonVsFile(b *testing.B)        { benchExperiment(b, "Fig8") }
func BenchmarkFig9UsageOverTime(b *testing.B)     { benchExperiment(b, "Fig9") }
func BenchmarkFig10Sensitivity(b *testing.B)      { benchExperiment(b, "Fig10") }
func BenchmarkFig11Reaccess(b *testing.B)         { benchExperiment(b, "Fig11") }
func BenchmarkTable1Throughput(b *testing.B)      { benchExperiment(b, "Table1") }
func BenchmarkFig14LocalTraffic(b *testing.B)     { benchExperiment(b, "Fig14") }
func BenchmarkFig15Constrained(b *testing.B)      { benchExperiment(b, "Fig15") }
func BenchmarkFig16LatencySweep(b *testing.B)     { benchExperiment(b, "Fig16") }
func BenchmarkFig17Decoupling(b *testing.B)       { benchExperiment(b, "Fig17") }
func BenchmarkFig18ActiveLRU(b *testing.B)        { benchExperiment(b, "Fig18") }
func BenchmarkTable2PageTypeAware(b *testing.B)   { benchExperiment(b, "Table2") }
func BenchmarkFig19Baselines(b *testing.B)        { benchExperiment(b, "Fig19") }
func BenchmarkTable3TMOHelpsTPP(b *testing.B)     { benchExperiment(b, "Table3") }
func BenchmarkTable4TPPHelpsTMO(b *testing.B)     { benchExperiment(b, "Table4") }
func BenchmarkX1ActiveLRUScalars(b *testing.B)    { benchExperiment(b, "X1") }
func BenchmarkX2ReclaimSpeed(b *testing.B)        { benchExperiment(b, "X2") }
func BenchmarkX3MigrationBandwidth(b *testing.B)  { benchExperiment(b, "X3") }

// BenchmarkSimTick measures the simulator's core-loop cost: one machine
// tick including the access stream and daemons. The machine setup is
// shared with cmd/bench (SimTickBenchConfig), which records the result
// in BENCH_simtick.json.
func BenchmarkSimTick(b *testing.B) {
	benchSimTick(b, SimTickBenchConfig())
}

// BenchmarkSimTickSampled is the same machine with the per-tick
// per-node series plane sampling every tick; cmd/bench -check holds it
// within 10% of BenchmarkSimTick.
func BenchmarkSimTickSampled(b *testing.B) {
	benchSimTick(b, SimTickBenchSampledConfig())
}

// BenchmarkSimTickProbed is the same machine with the probe plane's
// histograms and phase profiler on; cmd/bench -check holds it within
// 10% of BenchmarkSimTick with zero alloc growth.
func BenchmarkSimTickProbed(b *testing.B) {
	benchSimTick(b, SimTickBenchProbedConfig())
}

// BenchmarkSimTickTracked is the same machine with the sampled
// access-tracking plane on at idlepage defaults (per-access hook plus
// periodic scan-and-clear); cmd/bench -check holds it within 10% of
// BenchmarkSimTick with zero alloc growth.
func BenchmarkSimTickTracked(b *testing.B) {
	benchSimTick(b, SimTickBenchTrackedConfig())
}

// BenchmarkSimTickLarge is the parallel core's serial baseline: a
// 2M-page machine with a full-socket access stream, where translation
// and page-line warming miss the cache on every access. cmd/bench
// records it as the large-machine reference.
func BenchmarkSimTickLarge(b *testing.B) {
	benchSimTick(b, SimTickBenchLargeConfig())
}

// BenchmarkSimTickParallel is the same large machine with the stage
// phase sharded across all CPUs (Workers=GOMAXPROCS). Results are
// bit-identical to BenchmarkSimTickLarge by the parallel core's
// contract; cmd/bench -check requires the parallel run to beat the
// serial one on ≥ 4 CPUs.
func BenchmarkSimTickParallel(b *testing.B) {
	benchSimTick(b, SimTickBenchParallelConfig())
}

// BenchmarkSimTickHuge is the terabyte-scale machine: ~1.15 TB of
// capacity in 2 MB huge frames over the extent-compressed page table,
// with a fully prefaulted 192 GB heap (SimTickBenchHugeConfig).
// Per-tick cost should stay in the same range as BenchmarkSimTickLarge;
// cmd/bench additionally gates the simulator's bytes per simulated
// resident page (reported here as the bytes/page metric).
func BenchmarkSimTickHuge(b *testing.B) {
	m := benchSimTick(b, SimTickBenchHugeConfig())
	b.ReportMetric(m.MemStats().BytesPerPage, "simbytes/page")
}

func benchSimTick(b *testing.B, cfg MachineConfig) *Machine {
	m, err := NewMachine(cfg)
	if err != nil {
		b.Fatal(err)
	}
	// Warm the machine past its fill phase.
	for i := 0; i < SimTickBenchWarmTicks; i++ {
		m.Step()
	}
	if failed, why := m.Failed(); failed {
		b.Fatalf("machine failed during warm-up: %s", why)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step()
	}
	return m
}
