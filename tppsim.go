// Package tppsim is a simulation-based reproduction of "TPP: Transparent
// Page Placement for CXL-Enabled Tiered-Memory" (Maruf et al., ASPLOS
// 2023). It models a CXL tiered-memory machine — NUMA nodes with
// watermarks, per-node LRU lists, a page allocator, kswapd reclaim, page
// migration, and NUMA-balancing hint faults — and implements TPP and the
// paper's baselines (default Linux, NUMA Balancing, AutoTiering, TMO) as
// policies over that machine.
//
// Quick start:
//
//	wl := tppsim.Workloads["Cache1"](tppsim.DefaultWorkingSet)
//	m, err := tppsim.NewMachine(tppsim.MachineConfig{
//		Policy:   tppsim.TPP(),
//		Workload: wl,
//		Ratio:    [2]uint64{2, 1}, // local:CXL capacity
//		Minutes:  30,
//	})
//	if err != nil { ... }
//	res := m.Run()
//	fmt.Println(res) // normalized throughput, local traffic, latency
//
// The exported surface is intentionally thin: policies come from
// constructors (TPP, DefaultLinux, ...) with ablation Options; workloads
// come from the Workloads catalog or custom workload.Profile values; the
// experiments registry (Experiments) regenerates every table and figure
// of the paper.
//
// # Record and replay
//
// Any run's access stream can be captured to a compact binary trace and
// deterministically re-driven under every policy — the same stream,
// apples to apples (paths ending in ".gz" are compressed):
//
//	cfg := tppsim.MachineConfig{
//		Policy:   tppsim.DefaultLinux(),
//		Workload: tppsim.Workloads["Cache1"](tppsim.DefaultWorkingSet),
//		Ratio:    [2]uint64{2, 1},
//	}
//	if _, err := tppsim.Record(cfg, "cache1.trace.gz"); err != nil { ... }
//
//	cfg.Policy = tppsim.TPP()
//	res, err := tppsim.Replay("cache1.trace.gz", cfg)
//
// Replaying with the same policy, seed, and machine configuration as the
// recording reproduces its scalar results exactly. OpenTrace loads a
// trace for inspection or for building custom Replayer workloads (loop,
// truncate). The catalog also carries trace-backed scenarios generated
// by internal/trace ("PhaseShift", "SeqScan", "AdvChurn") that the
// Profile model cannot express.
package tppsim

import (
	"tppsim/internal/core"
	"tppsim/internal/experiments"
	"tppsim/internal/metrics"
	"tppsim/internal/sim"
	"tppsim/internal/trace"
	"tppsim/internal/workload"
)

// DefaultWorkingSet is the default scaled working-set size in 4 KB pages.
const DefaultWorkingSet = workload.DefaultTotalPages

// MachineConfig configures one simulation run; it is sim.Config.
type MachineConfig = sim.Config

// Machine is an assembled tiered-memory machine.
type Machine = sim.Machine

// RunResult carries a run's series and scalar results.
type RunResult = metrics.Run

// Policy is a placement-policy configuration.
type Policy = core.Policy

// PolicyOption is an ablation/extension option for TPP.
type PolicyOption = core.Option

// Workload is the workload interface machines run.
type Workload = workload.Workload

// Profile is the region-based workload implementation, for building
// custom workloads.
type Profile = workload.Profile

// NewMachine assembles a machine.
func NewMachine(cfg MachineConfig) (*Machine, error) { return sim.New(cfg) }

// Policy constructors (see internal/core for details).
var (
	// TPP is the paper's mechanism; options select ablations.
	TPP = core.TPP
	// DefaultLinux is the stock-kernel baseline.
	DefaultLinux = core.DefaultLinux
	// NUMABalancing is classic AutoNUMA.
	NUMABalancing = core.NUMABalancing
	// AutoTiering is the ATC '21 baseline.
	AutoTiering = core.AutoTiering
	// TMOOnly is transparent memory offloading without TPP.
	TMOOnly = core.TMOOnly

	// Ablation options for TPP.
	WithoutDecoupling    = core.WithoutDecoupling
	WithInstantPromotion = core.WithInstantPromotion
	WithPageTypeAware    = core.WithPageTypeAware
	WithTMO              = core.WithTMO
)

// Workloads is the catalog of the paper's production workloads.
var Workloads = workload.Catalog

// WorkloadNames returns the catalog keys sorted.
func WorkloadNames() []string { return workload.Names() }

// Experiments returns the registry of paper tables and figures.
func Experiments() []experiments.Spec { return experiments.Registry() }

// ExperimentOptions scales experiment runs.
type ExperimentOptions = experiments.Options

// RunExperiments executes specs on a bounded worker pool and returns
// results in spec order; workers <= 0 uses all CPUs.
func RunExperiments(specs []experiments.Spec, o ExperimentOptions, workers int) []experiments.Result {
	return experiments.RunAll(specs, o, workers)
}

// Trace is a loaded access trace: header plus encoded event stream.
type Trace = trace.Trace

// TraceHeader describes the workload a trace was captured from.
type TraceHeader = trace.Header

// ReplayOptions tune trace replay (loop, truncate).
type ReplayOptions = trace.ReplayOptions

// OpenTrace loads a trace file (gzip is sniffed and handled). Use
// Trace.Replayer to build Workloads from it.
func OpenTrace(path string) (*Trace, error) { return trace.Load(path) }

// Record runs the configured machine while capturing the workload's
// event stream to path. It returns the run's results; the error reports
// a failure to write the trace (the results remain valid).
func Record(cfg MachineConfig, path string) (*RunResult, error) {
	cfg.RecordTo = path
	m, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	res := m.Run()
	return res, m.RecordError()
}

// Replay loads the trace at path and runs it as cfg's workload; any
// Workload already set in cfg is ignored. When cfg.Minutes is zero the
// run length defaults to the trace's own length (not the simulator's
// 60-minute default), so the scalars are never diluted by idle ticks
// after the trace runs out; set Minutes explicitly (and use a looping
// Replayer from OpenTrace) to run longer. Replaying under the recording
// run's policy, seed, and machine configuration reproduces its scalar
// results exactly; changing the policy replays the identical access
// stream under the new mechanism.
func Replay(path string, cfg MachineConfig) (*RunResult, error) {
	tr, err := OpenTrace(path)
	if err != nil {
		return nil, err
	}
	if cfg.Minutes == 0 {
		if ticks := tr.Ticks(); ticks > 0 {
			cfg.Minutes = int((ticks + workload.TicksPerMinute - 1) / workload.TicksPerMinute)
		}
	}
	cfg.Workload = tr.Replayer(ReplayOptions{})
	m, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	return m.Run(), nil
}
