// Package tppsim is a simulation-based reproduction of "TPP: Transparent
// Page Placement for CXL-Enabled Tiered-Memory" (Maruf et al., ASPLOS
// 2023). It models a CXL tiered-memory machine — NUMA nodes with
// watermarks, per-node LRU lists, a page allocator, kswapd reclaim, page
// migration, and NUMA-balancing hint faults — and implements TPP and the
// paper's baselines (default Linux, NUMA Balancing, AutoTiering, TMO) as
// policies over that machine.
//
// Quick start — machines are described topology-first: pick a preset (or
// declare your own Topology of N nodes with capacities, latencies, and a
// distance matrix) and run a workload under a policy on it:
//
//	wl := tppsim.Workloads["Cache1"](tppsim.DefaultWorkingSet)
//	m, err := tppsim.NewMachine(tppsim.MachineConfig{
//		Policy:   tppsim.TPP(),
//		Workload: wl,
//		Topology: tppsim.TopologyCXL(2, 1), // the paper's box, local:CXL 2:1
//		Minutes:  30,
//	})
//	if err != nil { ... }
//	res := m.Run()
//	fmt.Println(res) // normalized throughput, local traffic, latency
//
// Presets: TopologyCXL is the paper's 2-node machine (and the default
// when no topology is given); TopologyDualSocket is the §7 multi-socket
// system (2 CPU sockets, each with a CXL expander); TopologyExpander is
// a 3-tier multi-hop machine (local DRAM → near CXL → far CXL) on which
// reclaim cascades downward tier by tier and promotion climbs back up
// one hop per NUMA hint fault. Custom machines set Topology.Nodes
// directly — per-node capacity as absolute Pages or working-set ratio
// Shares, kind, load latency, bandwidth — plus a NUMA distance matrix;
// node tiers are derived from each node's distance to the nearest CPU.
//
// The legacy two-node sugar (MachineConfig.Ratio, LocalPages/CXLPages,
// CXLLatencyNs) is deprecated but still works and maps onto
// TopologyCXL; Ratio{2,1} remains the default. Per-node latency
// overrides (MachineConfig.NodeLatencyNs) supersede CXLLatencyNs.
//
// The exported surface is intentionally thin: policies come from
// constructors (TPP, DefaultLinux, ...) with ablation Options; workloads
// come from the Workloads catalog or custom workload.Profile values; the
// experiments registry (Experiments) regenerates every table and figure
// of the paper.
//
// # Record and replay
//
// Any run's access stream can be captured to a compact binary trace and
// deterministically re-driven under every policy — the same stream,
// apples to apples (paths ending in ".gz" are compressed):
//
//	cfg := tppsim.MachineConfig{
//		Policy:   tppsim.DefaultLinux(),
//		Workload: tppsim.Workloads["Cache1"](tppsim.DefaultWorkingSet),
//		Ratio:    [2]uint64{2, 1},
//	}
//	if _, err := tppsim.Record(cfg, "cache1.trace.gz"); err != nil { ... }
//
//	cfg.Policy = tppsim.TPP()
//	res, err := tppsim.Replay("cache1.trace.gz", cfg)
//
// Replaying with the same policy, seed, and machine configuration as the
// recording reproduces its scalar results exactly. OpenTrace loads a
// trace for inspection or for building custom Replayer workloads (loop,
// truncate). The catalog also carries trace-backed scenarios generated
// by internal/trace ("PhaseShift", "SeqScan", "AdvChurn") that the
// Profile model cannot express.
package tppsim

import (
	"fmt"

	"tppsim/internal/core"
	"tppsim/internal/experiments"
	"tppsim/internal/mem"
	"tppsim/internal/metrics"
	"tppsim/internal/probe"
	"tppsim/internal/report"
	"tppsim/internal/series"
	"tppsim/internal/sim"
	"tppsim/internal/tier"
	"tppsim/internal/trace"
	"tppsim/internal/vmstat"
	"tppsim/internal/workload"
)

// DefaultWorkingSet is the default scaled working-set size in 4 KB pages.
const DefaultWorkingSet = workload.DefaultTotalPages

// Topology declares a machine: N memory nodes with per-node capacity,
// kind, performance traits, and a NUMA distance matrix. Set it on
// MachineConfig.Topology, starting from a preset or from scratch.
type Topology = tier.Spec

// TopologyNode declares one node of a Topology.
type TopologyNode = tier.NodeSpec

// NodeKind distinguishes CPU-attached DRAM from CPU-less CXL memory in
// a TopologyNode.
type NodeKind = mem.NodeKind

// Node kinds for custom topologies.
const (
	KindLocal = mem.KindLocal
	KindCXL   = mem.KindCXL
)

// Topology presets (see internal/tier for the underlying machines).
var (
	// TopologyCXL is the paper's 2-node box: one CPU-attached local node
	// and one CXL node, sized localShare:cxlShare over the working set.
	TopologyCXL = tier.PresetCXL
	// TopologyDualSocket is the §7 multi-socket system: two CPU sockets,
	// each with its own DRAM and CXL expander.
	TopologyDualSocket = tier.PresetDualSocket
	// TopologyExpander is the 3-tier multi-hop machine: local DRAM, a
	// near CXL expander, and a far (switched) CXL expander behind it.
	TopologyExpander = tier.PresetExpander
)

// TopologyPresets lists the preset names usable with TopologyPreset.
func TopologyPresets() []string { return tier.PresetNames() }

// TopologyPreset returns the named preset ("cxl", "dualsocket",
// "expander") with its default shares.
func TopologyPreset(name string) (Topology, bool) { return tier.Preset(name) }

// MachineConfig configures one simulation run; it is sim.Config.
type MachineConfig = sim.Config

// WorkersAuto, set as MachineConfig.Workers, shards the sim core's
// access-stage phase across one worker per CPU. Any worker count
// produces bit-identical results; only wall-clock changes.
const WorkersAuto = sim.WorkersAuto

// ResolveWorkers reports the concrete worker count a
// MachineConfig.Workers value resolves to on this host.
var ResolveWorkers = sim.ResolveWorkers

// MemStats is the simulator's own end-of-run memory footprint
// (RunResult.MemStats, Machine.MemStats): extent count and split/merge
// churn, page-table and page-store bytes, and the
// bytes-per-simulated-resident-page scaling headline.
type MemStats = metrics.MemStats

// Machine is an assembled tiered-memory machine.
type Machine = sim.Machine

// RunResult carries a run's series and scalar results, including the
// per-node accounting in RunResult.Nodes.
type RunResult = metrics.Run

// NodeResult is one memory node's end-of-run accounting (RunResult.Nodes):
// identity, residency, and its slice of the vmstat plane.
type NodeResult = metrics.NodeResult

// NodeStats is a machine's node-indexed vmstat plane (Machine.Stat): one
// counter set per memory node, with the global view derived as the exact
// sum of the per-node ones.
type NodeStats = vmstat.NodeStats

// VmstatCounter names one observability counter (vmstat.Counter).
type VmstatCounter = vmstat.Counter

// VmstatSnapshot is a point-in-time copy of one counter set — global or
// per-node — indexed by VmstatCounter.
type VmstatSnapshot = vmstat.Snapshot

// NodeTable renders a run's per-node residency and headline counters as
// an aligned text table.
var NodeTable = report.NodeTable

// NodeSeries is the per-tick per-node time-series plane
// (RunResult.NodeSeries): columnar per-node vmstat deltas and residency
// levels per sample window, self-coarsening to a fixed budget. Enable
// it with MachineConfig.SampleEveryTicks; reconstruct it from a
// recorded trace with TraceStats.
type NodeSeries = series.Series

// SeriesLevels is one node's residency snapshot at a series sample
// boundary (total/anon/file resident pages).
type SeriesLevels = series.Levels

// TraceStatsOptions tune TraceStats' series reconstruction (cadence and
// sample budget; match the recording run's to reproduce its live series
// bit-for-bit).
type TraceStatsOptions = trace.StatsOptions

// TraceStats folds a recorded trace's per-node TickEnd payload into a
// NodeSeries without building or running a machine — the pure
// trace-analysis path (cmd/tppsim -trace-stats).
func TraceStats(path string, o TraceStatsOptions) (*NodeSeries, error) {
	tr, err := OpenTrace(path)
	if err != nil {
		return nil, err
	}
	return tr.Stats(o)
}

// Series renderers (see internal/report): an aligned per-window flow
// table, terminal sparklines, the full columnar CSV, and the two-run
// comparative flow diff.
var (
	FlowTable        = report.FlowTable
	SeriesPanel      = report.SeriesPanel
	SeriesColumnsCSV = report.SeriesColumnsCSV
	FlowDiffTable    = report.FlowDiffTable
)

// Histogram is the probe plane's zero-allocation log2-bucketed
// distribution type (exact counts, bucket-bound percentiles).
type Histogram = probe.Histogram

// LatencySet is a run's latency/size histogram collection
// (RunResult.LatencyHist): per-node access latency, migration costs by
// direction, allocstall durations, and reclaim scan batch sizes.
// Enable it with MachineConfig.ProbeLatency.
type LatencySet = probe.LatencySet

// PhaseProfile attributes host wall-clock per tick phase
// (RunResult.PhaseProfile). Enable it with MachineConfig.ProbePhases.
type PhaseProfile = probe.PhaseProfiler

// Probes is a machine's probe plane (Machine.Probes/EnableProbes):
// histograms, the phase profiler, and the typed tracepoint hooks
// (OnDemote, OnPromote, OnAllocStall, OnReclaimWake) subsystems fire
// and callers subscribe to.
type Probes = probe.Probes

// Tracepoint payloads carried by the probe plane's hooks.
type (
	MigrateEvent     = probe.MigrateEvent
	AllocStallEvent  = probe.AllocStallEvent
	ReclaimWakeEvent = probe.ReclaimWakeEvent
)

// Probe-plane renderers (see internal/report): the percentile digest
// table, the tick-phase attribution table, an ASCII histogram panel,
// and per-policy CDF columns as CSV.
var (
	PercentileTable = report.PercentileTable
	PhaseTable      = report.PhaseTable
	HistogramPanel  = report.HistogramPanel
	CDFColumnsCSV   = report.CDFColumnsCSV
	Dur             = report.Dur
)

// Policy is a placement-policy configuration.
type Policy = core.Policy

// PolicyOption is an ablation/extension option for TPP.
type PolicyOption = core.Option

// Workload is the workload interface machines run.
type Workload = workload.Workload

// Profile is the region-based workload implementation, for building
// custom workloads.
type Profile = workload.Profile

// NewMachine assembles a machine.
func NewMachine(cfg MachineConfig) (*Machine, error) { return sim.New(cfg) }

// Policy constructors (see internal/core for details).
var (
	// TPP is the paper's mechanism; options select ablations.
	TPP = core.TPP
	// DefaultLinux is the stock-kernel baseline.
	DefaultLinux = core.DefaultLinux
	// NUMABalancing is classic AutoNUMA.
	NUMABalancing = core.NUMABalancing
	// AutoTiering is the ATC '21 baseline.
	AutoTiering = core.AutoTiering
	// TMOOnly is transparent memory offloading without TPP.
	TMOOnly = core.TMOOnly

	// Ablation options for TPP.
	WithoutDecoupling    = core.WithoutDecoupling
	WithInstantPromotion = core.WithInstantPromotion
	WithPageTypeAware    = core.WithPageTypeAware
	WithTMO              = core.WithTMO
)

// Workloads is the catalog of the paper's production workloads.
var Workloads = workload.Catalog

// WorkloadNames returns the catalog keys sorted.
func WorkloadNames() []string { return workload.Names() }

// Experiments returns the registry of paper tables and figures.
func Experiments() []experiments.Spec { return experiments.Registry() }

// ExperimentOptions scales experiment runs.
type ExperimentOptions = experiments.Options

// RunExperiments executes specs on a bounded worker pool and returns
// results in spec order; workers <= 0 uses all CPUs.
func RunExperiments(specs []experiments.Spec, o ExperimentOptions, workers int) []experiments.Result {
	return experiments.RunAll(specs, o, workers)
}

// Trace is a loaded access trace: header plus encoded event stream.
type Trace = trace.Trace

// TraceHeader describes the workload a trace was captured from.
type TraceHeader = trace.Header

// ReplayOptions tune trace replay (loop, truncate).
type ReplayOptions = trace.ReplayOptions

// OpenTrace loads a trace file (gzip is sniffed and handled). Use
// Trace.Replayer to build Workloads from it.
func OpenTrace(path string) (*Trace, error) { return trace.Load(path) }

// Record runs the configured machine while capturing the workload's
// event stream to path. It returns the run's results; the error reports
// a failure to write the trace (the results remain valid).
func Record(cfg MachineConfig, path string) (*RunResult, error) {
	cfg.RecordTo = path
	m, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	res := m.Run()
	return res, m.RecordError()
}

// Replay loads the trace at path and runs it as cfg's workload; any
// Workload already set in cfg is ignored. At most one ReplayOptions
// value tunes the replay: Loop wraps the trace when the run outlasts it,
// MaxTicks truncates it to a prefix.
//
// When cfg.Minutes is zero the run length defaults to the (truncated)
// trace's own length (not the simulator's 60-minute default), so the
// scalars are never diluted by idle ticks after the trace runs out; set
// Minutes explicitly with Loop to run longer. When cfg specifies no
// machine sizing of its own (no Topology, Ratio, or LocalPages) and the
// trace was recorded by the simulator, the recorded topology is adopted,
// rebuilding the recorded machine exactly. Replaying under the recording
// run's policy, seed, and machine configuration reproduces its scalar
// results exactly; changing the policy replays the identical access
// stream under the new mechanism.
func Replay(path string, cfg MachineConfig, opts ...ReplayOptions) (*RunResult, error) {
	if len(opts) > 1 {
		return nil, fmt.Errorf("tppsim: Replay takes at most one ReplayOptions, got %d", len(opts))
	}
	tr, err := OpenTrace(path)
	if err != nil {
		return nil, err
	}
	var o ReplayOptions
	if len(opts) == 1 {
		o = opts[0]
	}
	if cfg.Minutes == 0 {
		ticks := tr.Ticks()
		if o.MaxTicks > 0 && o.MaxTicks < ticks {
			ticks = o.MaxTicks
		}
		if ticks > 0 {
			cfg.Minutes = int((ticks + workload.TicksPerMinute - 1) / workload.TicksPerMinute)
		}
	}
	if len(cfg.Topology.Nodes) == 0 && cfg.Ratio == [2]uint64{} &&
		cfg.LocalPages == 0 && cfg.CXLPages == 0 && cfg.CXLLatencyNs == 0 {
		// No sizing or legacy latency override of any kind: rebuild the
		// recorded machine. A CXLLatencyNs override keeps the legacy
		// 2-node machine it applies to.
		if ts := tr.Header.Topology; ts != nil {
			cfg.Topology = *ts
		}
	}
	cfg.Workload = tr.Replayer(o)
	m, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	return m.Run(), nil
}
