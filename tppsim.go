// Package tppsim is a simulation-based reproduction of "TPP: Transparent
// Page Placement for CXL-Enabled Tiered-Memory" (Maruf et al., ASPLOS
// 2023). It models a CXL tiered-memory machine — NUMA nodes with
// watermarks, per-node LRU lists, a page allocator, kswapd reclaim, page
// migration, and NUMA-balancing hint faults — and implements TPP and the
// paper's baselines (default Linux, NUMA Balancing, AutoTiering, TMO) as
// policies over that machine.
//
// Quick start:
//
//	wl := tppsim.Workloads["Cache1"](tppsim.DefaultWorkingSet)
//	m, err := tppsim.NewMachine(tppsim.MachineConfig{
//		Policy:   tppsim.TPP(),
//		Workload: wl,
//		Ratio:    [2]uint64{2, 1}, // local:CXL capacity
//		Minutes:  30,
//	})
//	if err != nil { ... }
//	res := m.Run()
//	fmt.Println(res) // normalized throughput, local traffic, latency
//
// The exported surface is intentionally thin: policies come from
// constructors (TPP, DefaultLinux, ...) with ablation Options; workloads
// come from the Workloads catalog or custom workload.Profile values; the
// experiments registry (Experiments) regenerates every table and figure
// of the paper.
package tppsim

import (
	"tppsim/internal/core"
	"tppsim/internal/experiments"
	"tppsim/internal/metrics"
	"tppsim/internal/sim"
	"tppsim/internal/workload"
)

// DefaultWorkingSet is the default scaled working-set size in 4 KB pages.
const DefaultWorkingSet = workload.DefaultTotalPages

// MachineConfig configures one simulation run; it is sim.Config.
type MachineConfig = sim.Config

// Machine is an assembled tiered-memory machine.
type Machine = sim.Machine

// RunResult carries a run's series and scalar results.
type RunResult = metrics.Run

// Policy is a placement-policy configuration.
type Policy = core.Policy

// PolicyOption is an ablation/extension option for TPP.
type PolicyOption = core.Option

// Workload is the workload interface machines run.
type Workload = workload.Workload

// Profile is the region-based workload implementation, for building
// custom workloads.
type Profile = workload.Profile

// NewMachine assembles a machine.
func NewMachine(cfg MachineConfig) (*Machine, error) { return sim.New(cfg) }

// Policy constructors (see internal/core for details).
var (
	// TPP is the paper's mechanism; options select ablations.
	TPP = core.TPP
	// DefaultLinux is the stock-kernel baseline.
	DefaultLinux = core.DefaultLinux
	// NUMABalancing is classic AutoNUMA.
	NUMABalancing = core.NUMABalancing
	// AutoTiering is the ATC '21 baseline.
	AutoTiering = core.AutoTiering
	// TMOOnly is transparent memory offloading without TPP.
	TMOOnly = core.TMOOnly

	// Ablation options for TPP.
	WithoutDecoupling    = core.WithoutDecoupling
	WithInstantPromotion = core.WithInstantPromotion
	WithPageTypeAware    = core.WithPageTypeAware
	WithTMO              = core.WithTMO
)

// Workloads is the catalog of the paper's production workloads.
var Workloads = workload.Catalog

// WorkloadNames returns the catalog keys sorted.
func WorkloadNames() []string { return workload.Names() }

// Experiments returns the registry of paper tables and figures.
func Experiments() []experiments.Spec { return experiments.Registry() }

// ExperimentOptions scales experiment runs.
type ExperimentOptions = experiments.Options
