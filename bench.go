package tppsim

import (
	"tppsim/internal/mem"
	"tppsim/internal/metrics"
	"tppsim/internal/tracker"
	"tppsim/internal/workload"
)

// SimTickBenchConfig is the canonical core-loop benchmark setup shared
// by BenchmarkSimTick (bench_test.go) and cmd/bench, which commits its
// result as BENCH_simtick.json. Keeping one definition means the CI
// benchmark and the perf-trajectory artifact always measure the same
// machine.
func SimTickBenchConfig() MachineConfig {
	return MachineConfig{
		Seed:     1,
		Policy:   TPP(),
		Workload: Workloads["Cache1"](8 * 1024),
		Ratio:    [2]uint64{2, 1},
		Minutes:  1 << 30,
	}
}

// SimTickBenchSampledConfig is SimTickBenchConfig with the per-tick
// per-node series plane sampling every tick — the worst case for the
// sampling hook. cmd/bench -check pins its ns/op within 10% of the
// sampling-off run, the "observability is near-free" guarantee.
func SimTickBenchSampledConfig() MachineConfig {
	cfg := SimTickBenchConfig()
	cfg.SampleEveryTicks = 1
	return cfg
}

// SimTickBenchProbedConfig is SimTickBenchConfig with the probe
// plane's latency histograms and phase profiler both on — every access
// observed into a histogram and every tick lapped nine times. cmd/bench
// -check pins its ns/op within 10% of the probe-off run with zero alloc
// growth, the distribution plane's analogue of the sampling gate.
func SimTickBenchProbedConfig() MachineConfig {
	cfg := SimTickBenchConfig()
	cfg.ProbeLatency = true
	cfg.ProbePhases = true
	return cfg
}

// SimTickBenchTrackedConfig is SimTickBenchConfig with the sampled
// access-tracking plane on at idlepage defaults — every access runs the
// per-access hook and every scan window walks the accessed-bit map into
// the heatmap (oracle off: it is a test instrument, not part of the
// plane's steady-state cost). cmd/bench -check pins its ns/op within
// 10% of the tracker-off run with zero alloc growth, the tracker
// plane's analogue of the sampling and probe gates.
func SimTickBenchTrackedConfig() MachineConfig {
	cfg := SimTickBenchConfig()
	cfg.Tracker = tracker.Config{Kind: "idlepage"}
	return cfg
}

// SimTickBenchLargeConfig is the parallel core's reference machine: a
// 2M-page working set (the page store and translation tables outgrow
// any CPU cache, so every access is a memory miss) with a full-socket
// access stream. It runs serial (Workers unset); cmd/bench records it
// as the large-machine baseline the parallel run must beat.
func SimTickBenchLargeConfig() MachineConfig {
	return MachineConfig{
		Seed:            1,
		Policy:          TPP(),
		Workload:        Workloads["Cache1"](2 << 20),
		Ratio:           [2]uint64{2, 1},
		Minutes:         1 << 30,
		AccessesPerTick: 8192,
	}
}

// SimTickBenchParallelConfig is SimTickBenchLargeConfig with the sim
// core's stage phase sharded across all CPUs (Workers=GOMAXPROCS).
// Results are bit-identical to the serial run by the parallel core's
// contract; only wall-clock changes. cmd/bench -check requires it to
// beat the serial large-machine run on machines with ≥ 4 CPUs.
func SimTickBenchParallelConfig() MachineConfig {
	cfg := SimTickBenchLargeConfig()
	cfg.Workers = WorkersAuto
	return cfg
}

// SimTickBenchHugeConfig is the terabyte-scale machine: ~1.15 TB of
// memory (302M base pages across local + CXL) in 2 MB huge frames over
// the extent-compressed page table. The workload sequentially prefaults
// a 192 GB anon heap during warm-up — frames fault in order, so the
// table collapses toward a handful of extents — then drives a uniform
// access stream over it. cmd/bench records its per-tick cost next to
// the dense large-machine run and gates its simulator footprint at
// SimTickHugeBytesPerPageMax bytes per simulated resident page.
func SimTickBenchHugeConfig() MachineConfig {
	return MachineConfig{
		Seed:            1,
		Policy:          TPP(),
		Workload:        hugeBenchWorkload(),
		LocalPages:      192 << 20,
		CXLPages:        96 << 20,
		HugePages:       true,
		Minutes:         1 << 30,
		AccessesPerTick: 8192,
	}
}

// SimTickHugeBytesPerPageMax is the footprint gate cmd/bench -check
// enforces on the huge benchmark: simulator bytes (page table + page
// store) per simulated resident base page.
const SimTickHugeBytesPerPageMax = 1.0

// hugeBenchWorkload is SimTickBenchHugeConfig's driver: one 192 GB
// (48M-page) anon region, sequentially prefaulted over the warm-up so
// it is fully resident — 96K frames — before measurement starts. The
// region is deliberately larger than the scatter-table bound, keeping
// the workload side's own memory flat too.
func hugeBenchWorkload() Workload {
	return &workload.Profile{
		PName:  "HugeBench",
		TM:     metrics.ThroughputModel{CPUServiceNs: 400, StallsPerOp: 1},
		Warmup: 512,
		Specs: []workload.RegionSpec{{
			Name:            "heap",
			Type:            mem.Anon,
			Pages:           48 << 20,
			Weight:          1,
			PrefaultPerTick: 96 << 10,
		}},
	}
}

// SimTickBenchWarmTicks is how many ticks the benchmark machine steps
// before measurement, moving it past the workload's fill phase.
const SimTickBenchWarmTicks = 600
