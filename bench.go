package tppsim

import "tppsim/internal/tracker"

// SimTickBenchConfig is the canonical core-loop benchmark setup shared
// by BenchmarkSimTick (bench_test.go) and cmd/bench, which commits its
// result as BENCH_simtick.json. Keeping one definition means the CI
// benchmark and the perf-trajectory artifact always measure the same
// machine.
func SimTickBenchConfig() MachineConfig {
	return MachineConfig{
		Seed:     1,
		Policy:   TPP(),
		Workload: Workloads["Cache1"](8 * 1024),
		Ratio:    [2]uint64{2, 1},
		Minutes:  1 << 30,
	}
}

// SimTickBenchSampledConfig is SimTickBenchConfig with the per-tick
// per-node series plane sampling every tick — the worst case for the
// sampling hook. cmd/bench -check pins its ns/op within 10% of the
// sampling-off run, the "observability is near-free" guarantee.
func SimTickBenchSampledConfig() MachineConfig {
	cfg := SimTickBenchConfig()
	cfg.SampleEveryTicks = 1
	return cfg
}

// SimTickBenchProbedConfig is SimTickBenchConfig with the probe
// plane's latency histograms and phase profiler both on — every access
// observed into a histogram and every tick lapped nine times. cmd/bench
// -check pins its ns/op within 10% of the probe-off run with zero alloc
// growth, the distribution plane's analogue of the sampling gate.
func SimTickBenchProbedConfig() MachineConfig {
	cfg := SimTickBenchConfig()
	cfg.ProbeLatency = true
	cfg.ProbePhases = true
	return cfg
}

// SimTickBenchTrackedConfig is SimTickBenchConfig with the sampled
// access-tracking plane on at idlepage defaults — every access runs the
// per-access hook and every scan window walks the accessed-bit map into
// the heatmap (oracle off: it is a test instrument, not part of the
// plane's steady-state cost). cmd/bench -check pins its ns/op within
// 10% of the tracker-off run with zero alloc growth, the tracker
// plane's analogue of the sampling and probe gates.
func SimTickBenchTrackedConfig() MachineConfig {
	cfg := SimTickBenchConfig()
	cfg.Tracker = tracker.Config{Kind: "idlepage"}
	return cfg
}

// SimTickBenchLargeConfig is the parallel core's reference machine: a
// 2M-page working set (the page store and translation tables outgrow
// any CPU cache, so every access is a memory miss) with a full-socket
// access stream. It runs serial (Workers unset); cmd/bench records it
// as the large-machine baseline the parallel run must beat.
func SimTickBenchLargeConfig() MachineConfig {
	return MachineConfig{
		Seed:            1,
		Policy:          TPP(),
		Workload:        Workloads["Cache1"](2 << 20),
		Ratio:           [2]uint64{2, 1},
		Minutes:         1 << 30,
		AccessesPerTick: 8192,
	}
}

// SimTickBenchParallelConfig is SimTickBenchLargeConfig with the sim
// core's stage phase sharded across all CPUs (Workers=GOMAXPROCS).
// Results are bit-identical to the serial run by the parallel core's
// contract; only wall-clock changes. cmd/bench -check requires it to
// beat the serial large-machine run on machines with ≥ 4 CPUs.
func SimTickBenchParallelConfig() MachineConfig {
	cfg := SimTickBenchLargeConfig()
	cfg.Workers = WorkersAuto
	return cfg
}

// SimTickBenchWarmTicks is how many ticks the benchmark machine steps
// before measurement, moving it past the workload's fill phase.
const SimTickBenchWarmTicks = 600
