package reclaim

import (
	"testing"

	"tppsim/internal/lru"
	"tppsim/internal/mem"
	"tppsim/internal/migrate"
	"tppsim/internal/pagetable"
	"tppsim/internal/swap"
	"tppsim/internal/tier"
	"tppsim/internal/vmstat"
	"tppsim/internal/xrand"
)

type fixture struct {
	store *mem.Store
	topo  *tier.Topology
	vecs  []*lru.Vec
	stat  *vmstat.NodeStats
	eng   *migrate.Engine
	as    *pagetable.AddressSpace
	d     *Daemon
}

func newFixture(t *testing.T, cfg Config, localPages, cxlPages uint64, swapd *swap.Device) *fixture {
	t.Helper()
	topo, err := tier.NewCXLSystem(tier.Config{LocalPages: localPages, CXLPages: cxlPages})
	if err != nil {
		t.Fatal(err)
	}
	store := mem.NewStore(int(localPages + cxlPages))
	vecs := make([]*lru.Vec, topo.NumNodes())
	for i := range vecs {
		vecs[i] = lru.NewVec(store)
	}
	stat := vmstat.NewNodeStats(topo.NumNodes())
	eng := migrate.NewEngine(migrate.Config{RefsFailProb: -1}, store, topo, vecs, stat, xrand.New(1))
	as := pagetable.New(1)
	d := New(cfg, store, topo, vecs, stat, eng, swapd, as)
	return &fixture{store, topo, vecs, stat, eng, as, d}
}

// populate maps n pages of type pt on node id (inactive, unreferenced),
// each with a VA mapping so eviction has something to unmap.
func (f *fixture) populate(t *testing.T, id mem.NodeID, pt mem.PageType, n int, dirty bool) []mem.PFN {
	t.Helper()
	r := f.as.Mmap(uint64(n), pt)
	pfns := make([]mem.PFN, n)
	for i := 0; i < n; i++ {
		if !f.topo.Node(id).Acquire(pt) {
			t.Fatal("fixture node full")
		}
		pfn := f.store.Alloc(pt, id)
		if dirty {
			pg := f.store.Page(pfn)
			pg.Flags = pg.Flags.Set(mem.PGDirty)
		}
		f.vecs[id].Add(pfn, false)
		f.as.MapPage(r.Start+pagetable.VPN(i), pfn)
		pfns[i] = pfn
	}
	return pfns
}

// fillBelow returns a page count that, once resident, leaves the node's
// free count at half the given watermark.
func fillBelow(n *mem.Node, wm uint64) int { return int(n.Capacity - wm/2) }

func TestKswapdIdleAboveWatermarks(t *testing.T) {
	f := newFixture(t, Config{DemotionEnabled: true, Decoupled: true}, 1000, 1000, nil)
	f.populate(t, 0, mem.File, 100, false)
	if spent := f.d.Tick(); spent != 0 {
		t.Fatalf("kswapd ran on an unpressured node: %v ns", spent)
	}
}

func TestDemotionFreesLocalNode(t *testing.T) {
	f := newFixture(t, Config{DemotionEnabled: true, Decoupled: true}, 1000, 1000, nil)
	local := f.topo.Node(0)
	// Fill local past the demotion watermark with cold anon pages.
	n := fillBelow(local, local.WM.Demote)
	f.populate(t, 0, mem.Anon, n, false)
	if !local.BelowDemote() {
		t.Fatal("fixture did not create pressure")
	}
	f.d.Tick()
	if local.Free() < local.WM.Demote {
		t.Fatalf("kswapd did not reach demotion watermark: free=%d want>=%d", local.Free(), local.WM.Demote)
	}
	if got := f.stat.Get(vmstat.PgdemoteKswapd); got == 0 {
		t.Fatal("no pages demoted")
	}
	if f.topo.Node(1).Resident() == 0 {
		t.Fatal("CXL node received nothing")
	}
	// Anon pages must be demoted, not swapped (no swap device).
	if f.stat.Get(vmstat.PswpOut) != 0 {
		t.Fatal("pages swapped despite demotion")
	}
	// Demoted pages keep their mappings (still in-memory, §5.1).
	if f.as.EvictedCount(pagetable.EvictNone) != 0 {
		t.Fatal("demotion evicted mappings")
	}
}

func TestDefaultReclaimDropsFilePages(t *testing.T) {
	f := newFixture(t, Config{}, 1000, 1000, nil)
	local := f.topo.Node(0)
	n := fillBelow(local, local.WM.Low)
	pfns := f.populate(t, 0, mem.File, n, false)
	f.d.Tick()
	if local.Free() < local.WM.High {
		t.Fatalf("default reclaim did not reach high watermark: free=%d", local.Free())
	}
	if f.stat.Get(vmstat.PgstealKswapd) == 0 {
		t.Fatal("nothing stolen")
	}
	// Dropped file pages leave EvictFile records.
	if f.as.EvictedCount(pagetable.EvictFile) == 0 {
		t.Fatal("no eviction records")
	}
	_ = pfns
}

func TestAnonUnreclaimableWithoutSwapOrDemotion(t *testing.T) {
	f := newFixture(t, Config{}, 1000, 1000, nil)
	local := f.topo.Node(0)
	n := fillBelow(local, local.WM.Low)
	f.populate(t, 0, mem.Anon, n, false)
	f.d.Tick()
	if f.stat.Get(vmstat.PgstealKswapd) != 0 || f.stat.Get(vmstat.PgdemoteKswapd) != 0 {
		t.Fatal("anon pages reclaimed with no swap and no demotion")
	}
	if local.Free() >= local.WM.High {
		t.Fatal("node mysteriously freed")
	}
}

func TestAnonSwappedWithSwapDevice(t *testing.T) {
	sd := swap.New(swap.Config{Kind: swap.KindZswap}, vmstat.NewNodeStats(2))
	f := newFixture(t, Config{}, 1000, 1000, sd)
	local := f.topo.Node(0)
	n := fillBelow(local, local.WM.Low)
	f.populate(t, 0, mem.Anon, n, false)
	// Swap is slow; give kswapd a few ticks.
	for i := 0; i < 10 && local.Free() < local.WM.High; i++ {
		f.d.Tick()
	}
	if sd.Used() == 0 {
		t.Fatal("nothing swapped")
	}
	if f.as.EvictedCount(pagetable.EvictSwap) == 0 {
		t.Fatal("swap eviction not recorded")
	}
}

func TestTmpfsUnreclaimableWithoutSwap(t *testing.T) {
	f := newFixture(t, Config{}, 1000, 1000, nil)
	local := f.topo.Node(0)
	n := fillBelow(local, local.WM.Low)
	f.populate(t, 0, mem.Tmpfs, n, false)
	f.d.Tick()
	if f.stat.Get(vmstat.PgstealKswapd) != 0 {
		t.Fatal("tmpfs dropped without swap")
	}
}

func TestTmpfsDemotable(t *testing.T) {
	f := newFixture(t, Config{DemotionEnabled: true, Decoupled: true}, 1000, 1000, nil)
	local := f.topo.Node(0)
	n := fillBelow(local, local.WM.Demote)
	f.populate(t, 0, mem.Tmpfs, n, false)
	f.d.Tick()
	if f.stat.Get(vmstat.PgdemoteKswapd) == 0 {
		t.Fatal("tmpfs not demoted")
	}
}

func TestReferencedPagesGetSecondChance(t *testing.T) {
	f := newFixture(t, Config{DemotionEnabled: true, Decoupled: true}, 1000, 1000, nil)
	local := f.topo.Node(0)
	n := fillBelow(local, local.WM.Demote)
	pfns := f.populate(t, 0, mem.Anon, n, false)
	// Mark every page referenced: the first scan must rotate, not demote.
	for _, pfn := range pfns {
		pg := f.store.Page(pfn)
		pg.Flags = pg.Flags.Set(mem.PGReferenced)
	}
	f.d.Tick()
	if f.stat.Get(vmstat.PgRotated) == 0 {
		t.Fatal("no second chances granted")
	}
	// Second tick: references cleared, now they demote.
	f.d.Tick()
	if f.stat.Get(vmstat.PgdemoteKswapd) == 0 {
		t.Fatal("cold pages never demoted after second chance")
	}
}

func TestDemotionFallsBackWhenCXLFull(t *testing.T) {
	f := newFixture(t, Config{DemotionEnabled: true, Decoupled: true}, 1000, 50, nil)
	// Fill CXL completely.
	f.populate(t, 1, mem.Anon, 50, false)
	local := f.topo.Node(0)
	n := fillBelow(local, local.WM.Demote)
	f.populate(t, 0, mem.File, n, false)
	f.d.Tick()
	if f.stat.Get(vmstat.PgdemoteFallbck) == 0 {
		t.Fatal("no fallback recorded")
	}
	// Fallback drops the file pages instead.
	if f.stat.Get(vmstat.PgstealKswapd) == 0 {
		t.Fatal("fallback did not reclaim")
	}
}

func TestDecoupledTargetsDemoteWatermark(t *testing.T) {
	coupled := newFixture(t, Config{DemotionEnabled: true}, 1000, 1000, nil)
	decoupled := newFixture(t, Config{DemotionEnabled: true, Decoupled: true}, 1000, 1000, nil)
	for _, f := range []*fixture{coupled, decoupled} {
		local := f.topo.Node(0)
		n := fillBelow(local, local.WM.Low)
		f.populate(t, 0, mem.Anon, n, false)
		f.d.Tick()
	}
	cf := coupled.topo.Node(0).Free()
	df := decoupled.topo.Node(0).Free()
	if df <= cf {
		t.Fatalf("decoupled kswapd built no extra headroom: coupled=%d decoupled=%d", cf, df)
	}
	if df < decoupled.topo.Node(0).WM.Demote {
		t.Fatalf("decoupled free=%d below demote watermark", df)
	}
}

func TestDirectReclaim(t *testing.T) {
	f := newFixture(t, Config{DemotionEnabled: true, Decoupled: true}, 1000, 1000, nil)
	local := f.topo.Node(0)
	n := fillBelow(local, local.WM.Min)
	f.populate(t, 0, mem.Anon, n, false)
	freed, stall := f.d.DirectReclaim(0, 4)
	if freed == 0 {
		t.Fatal("direct reclaim freed nothing")
	}
	if stall <= 0 {
		t.Fatal("direct reclaim reported no stall")
	}
	if f.stat.Get(vmstat.PgscanDirect) == 0 || f.stat.Get(vmstat.PgdemoteDirect) == 0 {
		t.Fatal("direct counters not used")
	}
}

func TestBudgetBoundsWork(t *testing.T) {
	// A 1 µs budget cannot demote more than a page or two per tick.
	f := newFixture(t, Config{DemotionEnabled: true, Decoupled: true, TickBudgetNs: 1000}, 10000, 10000, nil)
	local := f.topo.Node(0)
	n := fillBelow(local, local.WM.Demote)
	f.populate(t, 0, mem.Anon, n, false)
	f.d.Tick()
	if got := f.stat.Get(vmstat.PgdemoteKswapd); got > 2 {
		t.Fatalf("budget ignored: %d pages demoted", got)
	}
}

func TestAgingRefillsInactive(t *testing.T) {
	f := newFixture(t, Config{DemotionEnabled: true, Decoupled: true}, 1000, 1000, nil)
	local := f.topo.Node(0)
	n := fillBelow(local, local.WM.Demote)
	pfns := f.populate(t, 0, mem.Anon, n, false)
	// Move everything to the active list: aging must pull pages back.
	for _, pfn := range pfns {
		f.vecs[0].Activate(pfn)
	}
	f.d.Tick()
	if f.stat.Get(vmstat.PgdeactivateCt) == 0 {
		t.Fatal("no aging happened")
	}
	if f.stat.Get(vmstat.PgdemoteKswapd) == 0 {
		t.Fatal("aged pages not demoted")
	}
}

func TestWakeExplicit(t *testing.T) {
	f := newFixture(t, Config{DemotionEnabled: true, Decoupled: true}, 1000, 1000, nil)
	// Node not under pressure, but explicitly woken: kswapd checks and
	// sleeps again without reclaiming.
	f.populate(t, 0, mem.Anon, 10, false)
	f.d.Wake(0)
	f.d.Tick()
	if f.stat.Get(vmstat.PgdemoteKswapd) != 0 {
		t.Fatal("woken kswapd reclaimed an unpressured node")
	}
}

func TestLRUInvariantsAfterReclaim(t *testing.T) {
	sd := swap.New(swap.Config{Kind: swap.KindZswap}, vmstat.NewNodeStats(2))
	f := newFixture(t, Config{DemotionEnabled: true, Decoupled: true}, 500, 200, sd)
	local := f.topo.Node(0)
	f.populate(t, 0, mem.Anon, int(local.Capacity)-5, false)
	for i := 0; i < 20; i++ {
		f.d.Tick()
	}
	for i, vec := range f.vecs {
		if err := vec.CheckInvariants(); err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
	}
	// Conservation: live pages equal resident pages across nodes + swap.
	resident := f.topo.Node(0).Resident() + f.topo.Node(1).Resident()
	if uint64(f.store.Live()) != resident {
		t.Fatalf("store live %d != resident %d", f.store.Live(), resident)
	}
}
