package reclaim

import (
	"tppsim/internal/lru"
	"tppsim/internal/mem"
	"tppsim/internal/migrate"
	"tppsim/internal/pagetable"
)

// evacLists orders the LRU lists an evacuation drains: coldest pages
// first, so the pages most likely to be re-accessed are the last to
// risk the forced-eviction fallback.
var evacLists = [...]lru.ListID{lru.InactiveFile, lru.InactiveAnon, lru.ActiveFile, lru.ActiveAnon}

// EvacuatePages is the fault plane's emergency drain: it moves up to
// want resident pages off the node, preferring migration along the
// health-filtered demotion cascade and then any other online node by
// distance. Transient per-page failures are retried on later passes;
// the loop ends when want is met or a full pass makes no progress.
// When force is set (the node is going offline, so the pages cannot
// stay), whatever migration could not place is force-evicted —
// unmapped and freed with refault-on-next-access semantics, the
// simulator's model of data that must be refetched after the device
// drops. Returns pages migrated and pages force-evicted.
//
// The caller detaches the engine's fault hook first: injected
// migration failures must not block a dying node from draining.
func (d *Daemon) EvacuatePages(id mem.NodeID, want uint64, force bool) (migrated, evicted uint64) {
	if want == 0 {
		return 0, 0
	}
	n := d.topo.Node(id)
	vec := d.vecs[id]
	targets := d.evacTargets(id)
	for {
		progress := false
		for _, list := range evacLists {
			if migrated >= want {
				break
			}
			d.scanPFNs = vec.TailBatch(list, int(vec.Size(list)), d.scanPFNs[:0])
			for _, pfn := range d.scanPFNs {
				if migrated >= want {
					break
				}
				for _, dst := range targets {
					reason := migrate.Demotion
					if d.topo.TierOf(dst) < d.topo.TierOf(id) {
						reason = migrate.Promotion
					}
					_, err := d.engine.Migrate(pfn, dst, reason)
					if err == nil {
						migrated++
						progress = true
						break
					}
					if err != migrate.ErrTargetFull {
						break // page-transient: retry on a later pass
					}
				}
			}
		}
		if migrated >= want || !progress {
			break
		}
	}
	if !force {
		return migrated, evicted
	}
	// Forced eviction: the remainder cannot stay on a dead device.
	for _, list := range evacLists {
		for migrated+evicted < want {
			pfn := vec.Tail(list)
			if pfn == mem.NilPFN {
				break
			}
			d.evict(n, vec, pfn, pagetable.EvictFile)
			evicted++
		}
	}
	return migrated, evicted
}

// evacTargets returns every online node an evacuation may land pages
// on: the demotion cascade first (the §5.1 order), then the remaining
// online nodes by distance.
func (d *Daemon) evacTargets(id mem.NodeID) []mem.NodeID {
	out := append([]mem.NodeID(nil), d.topo.DemotionTargets(id)...)
	for _, cand := range d.topo.FallbackOrder(id) {
		if cand == id {
			continue
		}
		dup := false
		for _, have := range out {
			if have == cand {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, cand)
		}
	}
	return out
}
