// Package reclaim implements the kernel's memory reclaim paths over the
// simulated machine: the per-node background daemon (kswapd), LRU aging
// (active→inactive demotion of stale pages), and synchronous direct
// reclaim. TPP's contributions live here:
//
//   - Migration-for-reclamation (§5.1): reclaim candidates found at the
//     inactive-list tails are *demoted* down the topology's
//     distance-ordered cascade (tier N → N+1, nearest farther node
//     first) via page migration instead of being swapped/dropped, and
//     both inactive lists (anon and file) are scanned. When every
//     cascade target refuses the page, reclaim falls back to the
//     default action for it.
//   - Decoupled watermarks (§5.2): with TPP, kswapd on the local node
//     wakes below the demotion watermark and keeps reclaiming until free
//     pages reach it, while allocations continue against the (lower)
//     allocation watermark in package alloc.
//
// Bottom-tier nodes have no cascade targets and always use default
// reclaim (drop/writeback/swap) — §5.1: "As allocation on CXL-node is
// not performance critical, CXL-nodes use the default reclamation
// mechanism." On multi-hop machines the intermediate tiers demote
// onward instead, which is what keeps a near expander from silting up
// with cold pages.
//
// Default reclaim cost asymmetry: dropping a clean file page is cheap;
// a dirty page pays writeback; anon and tmpfs pages need swap (and are
// unreclaimable without it). Demotion-by-migration pays none of those,
// which is where the paper's "44x faster freeing" (§6.1.1) comes from.
package reclaim

import (
	"tppsim/internal/lru"
	"tppsim/internal/mem"
	"tppsim/internal/migrate"
	"tppsim/internal/pagetable"
	"tppsim/internal/probe"
	"tppsim/internal/swap"
	"tppsim/internal/tier"
	"tppsim/internal/vmstat"
)

// Config tunes the reclaim daemon.
type Config struct {
	// DemotionEnabled turns on migrate-instead-of-reclaim on local nodes
	// (the TPP demotion path).
	DemotionEnabled bool
	// Decoupled selects the TPP wake/stop conditions (demotion watermark)
	// instead of the classic low/high watermarks.
	Decoupled bool
	// TickBudgetNs bounds kswapd work per node per tick. Default 0.25 ms
	// per one-second tick. The budget is what turns per-page costs into
	// reclaim *rates* relative to workload demand at the simulator's
	// scale: at 130 µs per dirty-file writeback, default reclaim frees
	// ~2 pages/tick — persistently behind a Web-tier file flood — while
	// TPP demotion at 3 µs per migration moves ~80 and keeps up. The
	// per-page cost ratio is the paper's "44x faster" freeing (§6.1.1).
	TickBudgetNs float64
	// ScanBatch is the number of tail pages examined per shrink
	// iteration. Default 32, as in the kernel's SWAP_CLUSTER_MAX.
	ScanBatch int
	// DropCleanNs is the cost of discarding one clean file page
	// (unmap + TLB shootdown). Default 3 µs.
	DropCleanNs float64
	// WritebackNs is the cost of writing back one dirty file page before
	// dropping it. Default 130 µs (IO-bound).
	WritebackNs float64
}

func (c Config) withDefaults() Config {
	if c.TickBudgetNs == 0 {
		c.TickBudgetNs = 0.25e6
	}
	if c.ScanBatch == 0 {
		c.ScanBatch = 32
	}
	if c.DropCleanNs == 0 {
		c.DropCleanNs = 3_000
	}
	if c.WritebackNs == 0 {
		c.WritebackNs = 130_000
	}
	return c
}

// Daemon is the machine-wide reclaim subsystem (one logical kswapd per
// node plus the direct-reclaim entry point).
type Daemon struct {
	cfg    Config
	store  *mem.Store
	topo   *tier.Topology
	vecs   []*lru.Vec
	stat   *vmstat.NodeStats
	engine *migrate.Engine
	swapd  *swap.Device // nil = no swap configured
	as     *pagetable.AddressSpace

	woken []bool
	// scanScratch backs scanOrder's return value so the per-tick shrink
	// loop does not allocate.
	scanScratch [2]lru.ListID
	// scanPFNs is the reusable tail-batch capture buffer for the shrink
	// and swap-out scans (grown on demand, never shrunk).
	scanPFNs []mem.PFN
	// probes is the machine's probe plane (nil = no probing): reclaim
	// passes fire the wakeup tracepoint and scan batches observe their
	// size into the ReclaimBatch histogram.
	probes *probe.Probes

	// framePages is the base pages per LRU entry: 1 normally,
	// mem.HugeFramePages in huge-page mode, where scanning/stealing one
	// entry covers a whole 2 MB frame (counters and IO costs scale;
	// per-entry CPU costs like the scan itself do not).
	framePages uint64
}

// New wires a reclaim daemon. swapd may be nil (the paper's evaluation
// machines never swap). as is the address space used to unmap evicted
// pages.
func New(cfg Config, store *mem.Store, topo *tier.Topology, vecs []*lru.Vec,
	stat *vmstat.NodeStats, engine *migrate.Engine, swapd *swap.Device, as *pagetable.AddressSpace) *Daemon {
	return &Daemon{
		cfg:        cfg.withDefaults(),
		store:      store,
		topo:       topo,
		vecs:       vecs,
		stat:       stat,
		engine:     engine,
		swapd:      swapd,
		as:         as,
		woken:      make([]bool, topo.NumNodes()),
		framePages: 1,
	}
}

// Config returns the daemon's configuration.
func (d *Daemon) Config() Config { return d.cfg }

// SetFramePages sets the base pages each LRU entry covers (a machine
// property, set once by the simulator before any reclaim runs).
func (d *Daemon) SetFramePages(fp uint64) { d.framePages = fp }

// SetProbes attaches the machine's probe plane (nil detaches).
func (d *Daemon) SetProbes(p *probe.Probes) { d.probes = p }

// Wake marks a node's kswapd runnable; the allocator calls this through
// Allocator.WakeKswapd.
func (d *Daemon) Wake(id mem.NodeID) { d.woken[id] = true }

// wakeCondition reports whether node id's kswapd should run this tick.
func (d *Daemon) wakeCondition(n *mem.Node) bool {
	if d.cfg.Decoupled && n.Kind == mem.KindLocal {
		return n.BelowDemote()
	}
	return n.BelowLow()
}

// targetFree is where kswapd stops reclaiming.
func (d *Daemon) targetFree(n *mem.Node) uint64 {
	if d.cfg.Decoupled && n.Kind == mem.KindLocal {
		return n.WM.Demote
	}
	return n.WM.High
}

// Tick runs every node's kswapd once, respecting per-node CPU budgets.
// It returns the total background CPU consumed (ns), which the simulator
// charges against spare cores.
func (d *Daemon) Tick() float64 {
	var total float64
	for i := 0; i < d.topo.NumNodes(); i++ {
		n := d.topo.Node(mem.NodeID(i))
		if !d.topo.Online(n.ID) {
			// Offline nodes hold nothing to reclaim; drop any stale wake.
			d.woken[i] = false
			continue
		}
		if !d.woken[i] && !d.wakeCondition(n) {
			continue
		}
		if p := d.probes; p != nil && p.OnReclaimWake.Active() {
			p.OnReclaimWake.Fire(probe.ReclaimWakeEvent{
				Node: i, FreePages: n.Free(), TargetFree: d.targetFree(n),
			})
		}
		spent := d.shrinkNode(n, d.targetFree(n), d.cfg.TickBudgetNs, false)
		total += spent
		// kswapd goes back to sleep once the target is met.
		if n.Free() >= d.targetFree(n) {
			d.woken[i] = false
		}
	}
	return total
}

// DirectReclaim synchronously frees up to want pages on the node,
// returning pages freed and the caller's stall time. Plugged into
// alloc.Allocator.DirectReclaim.
func (d *Daemon) DirectReclaim(id mem.NodeID, want uint64) (uint64, float64) {
	n := d.topo.Node(id)
	before := n.Free()
	// Direct reclaim works toward min+want free pages with a tight
	// budget: the faulting thread pays, so it is bounded.
	target := n.Free() + want
	if floor := n.WM.Min + want; target < floor {
		target = floor
	}
	if p := d.probes; p != nil && p.OnReclaimWake.Active() {
		p.OnReclaimWake.Fire(probe.ReclaimWakeEvent{
			Node: int(id), FreePages: before, TargetFree: target, Direct: true,
		})
	}
	spent := d.shrinkNode(n, target, d.cfg.TickBudgetNs/4, true)
	freed := uint64(0)
	if f := n.Free(); f > before {
		freed = f - before
	}
	return freed, spent
}

// SwapOutColdest proactively swaps out up to want cold pages from the
// node's inactive-list tails, regardless of watermarks. This is the
// memory.reclaim-style entry point TMO drives (§6.3.2): a user-space
// controller "keeps pushing for memory reclamation" even when the kernel
// sees no pressure. Referenced pages are skipped (rotated), not charged a
// second chance. Returns (pages swapped, CPU ns). Requires a swap device;
// without one it is a no-op.
func (d *Daemon) SwapOutColdest(id mem.NodeID, want int) (int, float64) {
	if d.swapd == nil || want <= 0 {
		return 0, 0
	}
	n := d.topo.Node(id)
	vec := d.vecs[id]
	spent := 0.0
	swapped := 0
	for _, list := range [...]lru.ListID{lru.InactiveAnon, lru.InactiveFile} {
		if swapped >= want {
			break
		}
		d.scanPFNs = vec.TailBatch(list, int(vec.Size(list)), d.scanPFNs[:0])
		for _, pfn := range d.scanPFNs {
			if swapped >= want {
				break
			}
			pg := d.store.Page(pfn)
			if pg.Flags.Has(mem.PGUnevictable) || pg.Flags.Has(mem.PGReferenced) {
				continue // leave hot/pinned pages alone, keep scanning
			}
			cost, ok := d.swapd.PageOut(id)
			if !ok {
				return swapped, spent // pool full
			}
			d.evict(n, vec, pfn, pagetable.EvictSwap)
			spent += cost
			// want/swapped are in base pages; one entry covers a frame.
			swapped += int(d.framePages)
		}
	}
	return swapped, spent
}

// HasSwap reports whether a swap device is configured.
func (d *Daemon) HasSwap() bool { return d.swapd != nil }

// shrinkNode reclaims until free >= targetFree or the budget is spent,
// using the kernel's scan-priority structure: start by scanning a small
// fraction of each inactive list (priority 12 scans size>>12) and widen
// the window each pass that fails to meet the target. Referenced pages
// rotated by an early pass therefore get their second chance unless
// pressure forces the priority low. Returns CPU ns consumed; direct
// selects the direct-reclaim counters.
func (d *Daemon) shrinkNode(n *mem.Node, targetFree uint64, budgetNs float64, direct bool) float64 {
	const maxPriority = 12
	spent := 0.0
	vec := d.vecs[n.ID]
	// Demotion cascades down the distance-ordered target list (tier N →
	// N+1, then farther tiers as fallback). Bottom-tier nodes have no
	// targets and use default reclaim, as do all nodes when demotion is
	// off.
	var demoteTo []mem.NodeID
	if d.cfg.DemotionEnabled {
		demoteTo = d.topo.DemotionTargets(n.ID)
	}
	spent += d.ageNode(n, vec)
	for priority := maxPriority; priority >= 0; priority-- {
		if n.Free() >= targetFree || spent >= budgetNs {
			break
		}
		for _, id := range d.scanOrder(n, vec, demoteTo) {
			if n.Free() >= targetFree || spent >= budgetNs {
				break
			}
			scan := int(vec.Size(id) >> uint(priority))
			if scan < d.cfg.ScanBatch {
				scan = d.cfg.ScanBatch
			}
			spent += d.shrinkList(n, vec, id, demoteTo, budgetNs-spent, direct, scan)
		}
		// Keep the inactive lists supplied as they drain.
		spent += d.ageNode(n, vec)
	}
	return spent
}

// scanOrder returns the inactive lists worth scanning on this node,
// file-class first (cheapest victims), skipping lists that cannot make
// progress (anon/tmpfs with neither swap nor demotion). The returned
// slice aliases the daemon's scratch buffer; it is valid until the next
// scanOrder call.
func (d *Daemon) scanOrder(n *mem.Node, vec *lru.Vec, demoteTo []mem.NodeID) []lru.ListID {
	reclaimableAnon := len(demoteTo) > 0 || d.swapd != nil
	out := d.scanScratch[:0]
	if vec.Size(lru.InactiveFile) > 0 {
		out = append(out, lru.InactiveFile)
	}
	if reclaimableAnon && vec.Size(lru.InactiveAnon) > 0 {
		out = append(out, lru.InactiveAnon)
	}
	return out
}

// ageNode keeps each inactive list at least half the size of its active
// list by deactivating pages from the active tail (shrink_active_list).
func (d *Daemon) ageNode(n *mem.Node, vec *lru.Vec) float64 {
	const deactivateNs = 300 // rotate cost per page
	spent := 0.0
	pairs := [2][2]lru.ListID{
		{lru.ActiveAnon, lru.InactiveAnon},
		{lru.ActiveFile, lru.InactiveFile},
	}
	for _, p := range pairs {
		active, inactive := p[0], p[1]
		for vec.Size(inactive)*2 < vec.Size(active) {
			tail := vec.Tail(active)
			if tail == mem.NilPFN {
				break
			}
			pg := d.store.Page(tail)
			if pg.Flags.Has(mem.PGReferenced) {
				// Heavily used page: rotate within active, keep it hot.
				pg.Flags = pg.Flags.Clear(mem.PGReferenced)
				vec.RotateToFront(tail)
				d.stat.Add(n.ID, vmstat.PgRotated, d.framePages)
			} else {
				vec.Deactivate(tail)
				d.stat.Add(n.ID, vmstat.PgdeactivateCt, d.framePages)
			}
			spent += deactivateNs
		}
	}
	return spent
}

// shrinkList scans up to scan pages from one inactive list's tail,
// reclaiming victims down the demotion cascade. The tail window is
// captured into flat slice batches (one pointer walk per pass) and
// processed without per-page callbacks. When the scan window exceeds the
// list, the scan wraps into pages rotated to the front during this same
// call — re-gathering from the tail visits them in rotation order, which
// is exactly where the old live pointer walk continued, so a small list
// under a wide window still cycles (and referenced pages stripped of
// their bit on the first pass become victims on the second). Returns CPU
// ns consumed.
func (d *Daemon) shrinkList(n *mem.Node, vec *lru.Vec, id lru.ListID, demoteTo []mem.NodeID, budgetNs float64, direct bool, scan int) float64 {
	const scanNs = 200 // per-page scan overhead
	spent := 0.0
	scanCounter, stealCounter := vmstat.PgscanKswapd, vmstat.PgstealKswapd
	demoteCounter := vmstat.PgdemoteKswapd
	if direct {
		scanCounter, stealCounter = vmstat.PgscanDirect, vmstat.PgstealDirect
		demoteCounter = vmstat.PgdemoteDirect
	}
	for visited := 0; visited < scan; {
		d.scanPFNs = vec.TailBatch(id, scan-visited, d.scanPFNs[:0])
		if len(d.scanPFNs) == 0 {
			break
		}
		if p := d.probes; p != nil && p.Lat != nil {
			p.Lat.ReclaimBatch.Observe(uint64(len(d.scanPFNs)))
		}
		for _, pfn := range d.scanPFNs {
			if spent >= budgetNs {
				return spent
			}
			visited++
			d.stat.Add(n.ID, scanCounter, d.framePages)
			spent += scanNs
			pg := d.store.Page(pfn)
			if pg.Flags.Has(mem.PGUnevictable) {
				vec.RotateToFront(pfn)
				continue
			}
			if pg.Flags.Has(mem.PGReferenced) {
				// Second chance: recently touched, rotate away.
				pg.Flags = pg.Flags.Clear(mem.PGReferenced)
				vec.RotateToFront(pfn)
				d.stat.Add(n.ID, vmstat.PgRotated, d.framePages)
				continue
			}
			// Victim. Walk the demotion cascade (§5.1, generalized:
			// nearest farther tier first, then the rest). Only a full
			// target advances the cascade — page-transient failures
			// (refs, isolation) would fail against any target, and
			// retrying them would just re-roll the transient and skip
			// the page down a tier it was never aimed at.
			demoted := false
			for _, dst := range demoteTo {
				cost, err := d.engine.Migrate(pfn, dst, migrate.Demotion)
				if err == nil {
					spent += cost
					d.stat.Add(n.ID, demoteCounter, d.framePages)
					demoted = true
				}
				if err != migrate.ErrTargetFull {
					break
				}
			}
			if demoted {
				continue
			}
			if len(demoteTo) > 0 {
				d.stat.Add(n.ID, vmstat.PgdemoteFallbck, d.framePages)
			}
			cost, ok := d.defaultReclaim(n, vec, pfn)
			spent += cost
			if ok {
				d.stat.Add(n.ID, stealCounter, d.framePages)
			}
		}
	}
	return spent
}

// defaultReclaim performs the classic reclaim action for one page: drop
// (clean file), writeback+drop (dirty file), or swap-out (anon/tmpfs).
// Returns (cpuNs, freed).
func (d *Daemon) defaultReclaim(n *mem.Node, vec *lru.Vec, pfn mem.PFN) (float64, bool) {
	pg := d.store.Page(pfn)
	switch {
	case pg.Type == mem.File:
		// Per-page IO costs scale with the frame; a huge frame pays the
		// writeback for all its base pages.
		cost := d.cfg.DropCleanNs * float64(d.framePages)
		if pg.Flags.Has(mem.PGDirty) {
			cost = d.cfg.WritebackNs * float64(d.framePages)
		}
		d.evict(n, vec, pfn, pagetable.EvictFile)
		return cost, true
	default: // Anon and Tmpfs are swap-backed.
		if d.swapd == nil {
			// Unreclaimable: rotate out of the way.
			vec.RotateToFront(pfn)
			return 0, false
		}
		cost, ok := d.swapd.PageOut(n.ID)
		if !ok {
			vec.RotateToFront(pfn)
			return 0, false
		}
		d.evict(n, vec, pfn, pagetable.EvictSwap)
		return cost, true
	}
}

// evict removes the page from memory: unmap, unlink, release, free.
// In huge-page mode the whole frame goes — default reclaim (swap-out or
// pagecache drop) cannot keep a THP intact, so the eviction is a split.
func (d *Daemon) evict(n *mem.Node, vec *lru.Vec, pfn mem.PFN, kind pagetable.EvictKind) {
	d.as.UnmapPFN(pfn, kind)
	vec.Remove(pfn)
	if d.framePages == 1 {
		n.Release(d.store.Page(pfn).Type)
	} else {
		n.ReleaseN(d.store.Page(pfn).Type, d.framePages)
		d.stat.Inc(n.ID, vmstat.ThpSplit)
	}
	d.store.Free(pfn)
}
