package tmo

import (
	"testing"

	"tppsim/internal/lru"
	"tppsim/internal/mem"
	"tppsim/internal/migrate"
	"tppsim/internal/pagetable"
	"tppsim/internal/reclaim"
	"tppsim/internal/swap"
	"tppsim/internal/tier"
	"tppsim/internal/vmstat"
	"tppsim/internal/xrand"
)

type fixture struct {
	store *mem.Store
	topo  *tier.Topology
	vecs  []*lru.Vec
	stat  *vmstat.NodeStats
	as    *pagetable.AddressSpace
	sd    *swap.Device
	d     *reclaim.Daemon
	c     *Controller
}

func newFixture(t *testing.T, cfg Config, localPages, cxlPages uint64) *fixture {
	t.Helper()
	topo, err := tier.NewCXLSystem(tier.Config{LocalPages: localPages, CXLPages: cxlPages})
	if err != nil {
		t.Fatal(err)
	}
	store := mem.NewStore(int(localPages + cxlPages))
	vecs := make([]*lru.Vec, topo.NumNodes())
	for i := range vecs {
		vecs[i] = lru.NewVec(store)
	}
	stat := vmstat.NewNodeStats(topo.NumNodes())
	eng := migrate.NewEngine(migrate.Config{RefsFailProb: -1}, store, topo, vecs, stat, xrand.New(1))
	as := pagetable.New(1)
	sd := swap.New(swap.Config{Kind: swap.KindZswap}, stat)
	d := reclaim.New(reclaim.Config{}, store, topo, vecs, stat, eng, sd, as)
	c := New(cfg, topo, d, sd)
	return &fixture{store, topo, vecs, stat, as, sd, d, c}
}

func (f *fixture) populate(t *testing.T, id mem.NodeID, n int) {
	t.Helper()
	r := f.as.Mmap(uint64(n), mem.Anon)
	for i := 0; i < n; i++ {
		if !f.topo.Node(id).Acquire(mem.Anon) {
			t.Fatal("fixture node full")
		}
		pfn := f.store.Alloc(mem.Anon, id)
		f.vecs[id].Add(pfn, false)
		f.as.MapPage(r.Start+pagetable.VPN(i), pfn)
	}
}

// runEpoch feeds n quiet ticks (no stall) and fires the epoch boundary.
func (f *fixture) runEpoch(stallFrac float64) float64 {
	var spent float64
	for i := uint64(0); i < f.c.cfg.EpochTicks; i++ {
		f.c.ObserveStall(stallFrac*100e6, 100e6)
		spent += f.c.Tick()
	}
	return spent
}

func TestRateGrowsWhenQuiet(t *testing.T) {
	f := newFixture(t, Config{}, 1000, 1000)
	f.populate(t, 0, 500)
	r0 := f.c.Rate()
	f.runEpoch(0)
	if f.c.Rate() <= r0 {
		t.Fatalf("rate did not grow: %d -> %d", r0, f.c.Rate())
	}
}

func TestRateBacksOffUnderStall(t *testing.T) {
	f := newFixture(t, Config{}, 1000, 1000)
	f.populate(t, 0, 500)
	f.runEpoch(0)
	f.runEpoch(0)
	grown := f.c.Rate()
	// Heavy stall: 10x the target.
	f.runEpoch(f.c.cfg.TargetStall * 10)
	f.runEpoch(f.c.cfg.TargetStall * 10)
	if f.c.Rate() >= grown {
		t.Fatalf("rate did not back off: %d -> %d", grown, f.c.Rate())
	}
}

func TestOffloadSwapsColdPages(t *testing.T) {
	f := newFixture(t, Config{}, 1000, 1000)
	f.populate(t, 0, 500)
	f.runEpoch(0)
	if f.sd.Used() == 0 {
		t.Fatal("no pages offloaded")
	}
	if f.c.SavedPages() <= 0 {
		t.Fatal("no memory saving")
	}
}

func TestOffloadSkipsReferencedPages(t *testing.T) {
	f := newFixture(t, Config{}, 1000, 1000)
	f.populate(t, 0, 100)
	// Mark everything referenced: nothing is cold.
	for pfn := mem.PFN(0); int(pfn) < f.store.Len(); pfn++ {
		pg := f.store.Page(pfn)
		pg.Flags = pg.Flags.Set(mem.PGReferenced)
	}
	f.runEpoch(0)
	if f.sd.Used() != 0 {
		t.Fatal("referenced pages swapped out")
	}
}

func TestTwoStageScope(t *testing.T) {
	solo := newFixture(t, Config{}, 100, 100)
	two := newFixture(t, Config{TwoStage: true}, 100, 100)
	if got := solo.c.NodeScope(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("solo scope = %v", got)
	}
	if got := two.c.NodeScope(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("two-stage scope = %v", got)
	}
}

func TestTwoStageSwapsFromCXL(t *testing.T) {
	f := newFixture(t, Config{TwoStage: true}, 1000, 1000)
	f.populate(t, 0, 200) // local pages: must NOT be touched
	f.populate(t, 1, 200) // CXL pages: offload source
	f.runEpoch(0)
	if f.sd.Used() == 0 {
		t.Fatal("two-stage offloaded nothing")
	}
	if f.topo.Node(0).Resident() != 200 {
		t.Fatal("two-stage touched the local node")
	}
	if f.topo.Node(1).Resident() >= 200 {
		t.Fatal("two-stage did not drain the CXL node")
	}
}

func TestAvgStallSmoothing(t *testing.T) {
	f := newFixture(t, Config{}, 100, 100)
	f.populate(t, 0, 50)
	f.runEpoch(0.01)
	first := f.c.AvgStall()
	if first <= 0 {
		t.Fatal("stall not recorded")
	}
	f.runEpoch(0)
	if f.c.AvgStall() >= first {
		t.Fatal("smoothed stall did not decay")
	}
	if f.c.AvgStall() <= 0 {
		t.Fatal("smoothed stall forgot history instantly")
	}
}

func TestRateBounds(t *testing.T) {
	f := newFixture(t, Config{InitialRate: 4, MaxRate: 8}, 1000, 1000)
	f.populate(t, 0, 500)
	for i := 0; i < 10; i++ {
		f.runEpoch(0)
	}
	if f.c.Rate() > 8 {
		t.Fatalf("rate exceeded max: %d", f.c.Rate())
	}
	for i := 0; i < 10; i++ {
		f.runEpoch(1)
	}
	if f.c.Rate() < 1 {
		t.Fatalf("rate below 1: %d", f.c.Rate())
	}
}
