// Package tmo implements the TMO baseline (Weiner et al., "TMO:
// Transparent Memory Offloading in Datacenters", ASPLOS 2022) to the
// extent the TPP paper engages with it (§4, §6.3.2): a user-space
// controller that watches PSI-style memory pressure-stall information and
// keeps pushing cold memory into a (z)swap pool while the application's
// measured stall stays under a target.
//
// The TPP paper's two composition results both flow through this package:
//
//   - "TMO enhances TPP": the saved memory gives migrations headroom, so
//     TPP's migration-failure rate drops (Table 3).
//   - "TPP enhances TMO": with TPP underneath, reclaim becomes a
//     two-stage demote-then-swap pipeline — TMO's victims come from the
//     CXL node's LRU tail, where drift has already filtered semi-hot
//     pages, so fewer swapped pages refault, stall falls, and the
//     controller sustains more offload (Table 4).
package tmo

import (
	"tppsim/internal/mem"
	"tppsim/internal/reclaim"
	"tppsim/internal/swap"
	"tppsim/internal/tier"
)

// Config tunes the controller.
type Config struct {
	// TargetStall is the PSI "some" memory-stall fraction the controller
	// steers to (stall time / wall time). Default 0.001 (0.1%, the TMO
	// paper's operating point).
	TargetStall float64
	// EpochTicks is the control period. Default 20 (2 s simulated).
	EpochTicks uint64
	// InitialRate and MaxRate bound the offload rate in pages per epoch.
	// Defaults 16 and 4096.
	InitialRate int
	MaxRate     int
	// TwoStage selects TPP composition: reclaim victims are taken from
	// the *CXL* node's inactive tail (pages demote first, swap second).
	// Without it, TMO swaps straight from the local node.
	TwoStage bool
}

func (c Config) withDefaults() Config {
	if c.TargetStall == 0 {
		c.TargetStall = 0.001
	}
	if c.EpochTicks == 0 {
		c.EpochTicks = 20
	}
	if c.InitialRate == 0 {
		c.InitialRate = 16
	}
	if c.MaxRate == 0 {
		c.MaxRate = 4096
	}
	return c
}

// Controller is the TMO userspace agent.
type Controller struct {
	cfg    Config
	topo   *tier.Topology
	daemon *reclaim.Daemon
	swapd  *swap.Device

	rate       int
	sinceEpoch uint64

	// PSI accounting for the current epoch.
	stallNs float64
	wallNs  float64
	// Smoothed stall fraction (exponentially weighted, like PSI's avg10).
	avgStall float64
	haveAvg  bool
}

// New wires a controller. daemon must have a swap device configured.
func New(cfg Config, topo *tier.Topology, daemon *reclaim.Daemon, swapd *swap.Device) *Controller {
	cfg = cfg.withDefaults()
	return &Controller{cfg: cfg, topo: topo, daemon: daemon, swapd: swapd, rate: cfg.InitialRate}
}

// Config returns the controller configuration.
func (c *Controller) Config() Config { return c.cfg }

// Rate returns the current offload rate in pages per epoch.
func (c *Controller) Rate() int { return c.rate }

// AvgStall returns the smoothed stall fraction the controller last acted
// on; Table 4 reports it normalized to the target.
func (c *Controller) AvgStall() float64 { return c.avgStall }

// SavedPages returns the controller's net memory saving (the zswap
// pool's accounting).
func (c *Controller) SavedPages() float64 { return c.swapd.SavedPages() }

// ObserveStall feeds one tick of PSI input: how much of the tick's wall
// time the workload spent stalled on memory (major faults + direct
// reclaim).
func (c *Controller) ObserveStall(stallNs, wallNs float64) {
	c.stallNs += stallNs
	c.wallNs += wallNs
}

// Tick advances the control loop; on epoch boundaries it adjusts the rate
// and performs the offload pass. Returns background CPU ns.
func (c *Controller) Tick() float64 {
	c.sinceEpoch++
	if c.sinceEpoch < c.cfg.EpochTicks {
		return 0
	}
	c.sinceEpoch = 0

	// Compute and smooth this epoch's stall fraction.
	frac := 0.0
	if c.wallNs > 0 {
		frac = c.stallNs / c.wallNs
	}
	c.stallNs, c.wallNs = 0, 0
	if !c.haveAvg {
		c.avgStall, c.haveAvg = frac, true
	} else {
		c.avgStall = 0.7*c.avgStall + 0.3*frac
	}

	// TMO's additive-increase / multiplicative-decrease rate control.
	if c.avgStall < c.cfg.TargetStall {
		c.rate += c.cfg.InitialRate
		if c.rate > c.cfg.MaxRate {
			c.rate = c.cfg.MaxRate
		}
	} else {
		c.rate /= 2
		if c.rate < 1 {
			c.rate = 1
		}
	}

	// Offload pass: pick victims per composition mode.
	spent := 0.0
	remaining := c.rate
	if c.cfg.TwoStage {
		// TPP underneath: swap only from CXL tails; local-node cold pages
		// reach the pool via demotion first (the two-stage pipeline).
		for _, id := range c.topo.CXLNodes() {
			n, cost := c.daemon.SwapOutColdest(id, remaining)
			spent += cost
			remaining -= n
			if remaining <= 0 {
				break
			}
		}
	} else {
		for _, id := range c.topo.LocalNodes() {
			n, cost := c.daemon.SwapOutColdest(id, remaining)
			spent += cost
			remaining -= n
			if remaining <= 0 {
				break
			}
		}
	}
	return spent
}

// NodeScope returns which nodes this controller reclaims from, for tests.
func (c *Controller) NodeScope() []mem.NodeID {
	if c.cfg.TwoStage {
		return c.topo.CXLNodes()
	}
	return c.topo.LocalNodes()
}
