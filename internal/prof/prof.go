// Package prof wires Go's runtime profilers into the CLIs with one
// call, so a simulator run's phase profile (internal/probe) can be
// cross-checked against real pprof data.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins profiling per the two paths: a CPU profile streaming to
// cpuPath and/or a heap profile written to memPath at stop time. Empty
// paths disable the corresponding profile. The returned stop function
// finalizes both files; call it on the success path before exiting.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("prof: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("prof: %w", err)
			}
			defer f.Close()
			runtime.GC() // settle live heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("prof: %w", err)
			}
		}
		return nil
	}, nil
}
