// Package lru implements the per-node LRU page lists the kernel uses for
// reclaim: an active and an inactive list for each of the two page classes
// (anon and file). TPP leans on exactly this machinery: demotion candidates
// are selected from the inactive tails (§5.1), and promotion candidates are
// filtered by active-list membership with an inactive→active hysteresis
// step (§5.3).
//
// Lists are intrusive: links live in mem.Page (Prev/Next), so list
// operations are pointer updates with no allocation. Flag bits (PGOnLRU,
// PGActive) are kept consistent with physical list membership at all
// times; the property tests in this package verify that invariant under
// random operation streams.
package lru

import (
	"fmt"

	"tppsim/internal/mem"
)

// ListID names one of the four LRU lists on a node.
type ListID uint8

const (
	InactiveAnon ListID = iota
	ActiveAnon
	InactiveFile
	ActiveFile
	numLists
)

// NumLists is the number of LRU lists per node.
const NumLists = int(numLists)

// String returns the kernel-style list name.
func (l ListID) String() string {
	switch l {
	case InactiveAnon:
		return "inactive_anon"
	case ActiveAnon:
		return "active_anon"
	case InactiveFile:
		return "inactive_file"
	case ActiveFile:
		return "active_file"
	}
	return fmt.Sprintf("list(%d)", uint8(l))
}

// listFor returns the list a page with the given type and active state
// belongs on.
func listFor(t mem.PageType, active bool) ListID {
	base := InactiveAnon
	if t.IsFileLike() {
		base = InactiveFile
	}
	if active {
		return base + 1
	}
	return base
}

// IsActive reports whether the list is an active list.
func (l ListID) IsActive() bool { return l == ActiveAnon || l == ActiveFile }

// list is one doubly-linked page list. head is the MRU end (where new and
// rotated pages are inserted); tail is the LRU end (where reclaim scans).
type list struct {
	head, tail mem.PFN
	size       uint64
}

// Vec is the per-node LRU vector: the four lists plus the shared page
// store they link through (the kernel's lruvec).
type Vec struct {
	store *mem.Store
	lists [numLists]list
}

// NewVec returns an empty LRU vector over the given store.
func NewVec(store *mem.Store) *Vec {
	v := &Vec{store: store}
	for i := range v.lists {
		v.lists[i] = list{head: mem.NilPFN, tail: mem.NilPFN}
	}
	return v
}

// Size returns the number of pages on the given list.
func (v *Vec) Size(id ListID) uint64 { return v.lists[id].size }

// TotalSize returns the number of pages across all four lists.
func (v *Vec) TotalSize() uint64 {
	var s uint64
	for i := range v.lists {
		s += v.lists[i].size
	}
	return s
}

// Tail returns the PFN at the reclaim end of the list, or mem.NilPFN when
// the list is empty.
func (v *Vec) Tail(id ListID) mem.PFN { return v.lists[id].tail }

// Head returns the PFN at the MRU end of the list, or mem.NilPFN.
func (v *Vec) Head(id ListID) mem.PFN { return v.lists[id].head }

// ListOf returns the list the page currently sits on. It panics if the
// page is not on any LRU list.
func (v *Vec) ListOf(pfn mem.PFN) ListID {
	pg := v.store.Page(pfn)
	if !pg.Flags.Has(mem.PGOnLRU) {
		panic("lru: ListOf on page not on LRU")
	}
	return listFor(pg.Type, pg.Flags.Has(mem.PGActive))
}

// Add links a page at the MRU end of the appropriate list. active selects
// the active vs inactive list and sets/clears PGActive to match.
func (v *Vec) Add(pfn mem.PFN, active bool) {
	pg := v.store.Page(pfn)
	if pg.Flags.Has(mem.PGOnLRU) {
		panic("lru: Add of page already on LRU")
	}
	if active {
		pg.Flags = pg.Flags.Set(mem.PGActive)
	} else {
		pg.Flags = pg.Flags.Clear(mem.PGActive)
	}
	pg.Flags = pg.Flags.Set(mem.PGOnLRU).Clear(mem.PGIsolated)
	v.pushFront(listFor(pg.Type, active), pfn)
}

// Remove unlinks the page from its list and clears PGOnLRU. The PGActive
// bit is left as-is so callers can inspect where the page came from.
func (v *Vec) Remove(pfn mem.PFN) {
	pg := v.store.Page(pfn)
	if !pg.Flags.Has(mem.PGOnLRU) {
		panic("lru: Remove of page not on LRU")
	}
	v.unlink(listFor(pg.Type, pg.Flags.Has(mem.PGActive)), pfn)
	pg.Flags = pg.Flags.Clear(mem.PGOnLRU)
}

// Isolate removes the page from its list for migration, setting
// PGIsolated (the kernel's isolate_lru_page). Reports false if the page is
// not on a list.
func (v *Vec) Isolate(pfn mem.PFN) bool {
	pg := v.store.Page(pfn)
	if !pg.Flags.Has(mem.PGOnLRU) {
		return false
	}
	v.Remove(pfn)
	pg.Flags = pg.Flags.Set(mem.PGIsolated)
	return true
}

// Putback returns an isolated page to the MRU end of its list (the
// kernel's putback_lru_page), preserving its active state.
func (v *Vec) Putback(pfn mem.PFN) {
	pg := v.store.Page(pfn)
	if !pg.Flags.Has(mem.PGIsolated) {
		panic("lru: Putback of page not isolated")
	}
	v.Add(pfn, pg.Flags.Has(mem.PGActive))
}

// Activate moves a page from its inactive list to the MRU end of the
// corresponding active list (the kernel's activate_page). No-op when the
// page is already active or not on the LRU.
func (v *Vec) Activate(pfn mem.PFN) bool {
	pg := v.store.Page(pfn)
	if !pg.Flags.Has(mem.PGOnLRU) || pg.Flags.Has(mem.PGActive) {
		return false
	}
	v.unlink(listFor(pg.Type, false), pfn)
	pg.Flags = pg.Flags.Set(mem.PGActive)
	v.pushFront(listFor(pg.Type, true), pfn)
	return true
}

// Deactivate moves a page from its active list to the MRU end of the
// corresponding inactive list, clearing PGActive and PGReferenced (the
// aging step of shrink_active_list).
func (v *Vec) Deactivate(pfn mem.PFN) bool {
	pg := v.store.Page(pfn)
	if !pg.Flags.Has(mem.PGOnLRU) || !pg.Flags.Has(mem.PGActive) {
		return false
	}
	v.unlink(listFor(pg.Type, true), pfn)
	pg.Flags = pg.Flags.Clear(mem.PGActive | mem.PGReferenced)
	v.pushFront(listFor(pg.Type, false), pfn)
	return true
}

// RotateToFront moves a page to the MRU end of the list it is already on
// (second chance for referenced pages during a scan).
func (v *Vec) RotateToFront(pfn mem.PFN) {
	pg := v.store.Page(pfn)
	if !pg.Flags.Has(mem.PGOnLRU) {
		panic("lru: RotateToFront of page not on LRU")
	}
	id := listFor(pg.Type, pg.Flags.Has(mem.PGActive))
	v.unlink(id, pfn)
	v.pushFront(id, pfn)
}

// MarkAccessed implements the kernel's mark_page_accessed aging protocol:
//
//	inactive, !referenced -> referenced
//	inactive,  referenced -> active, !referenced (workingset promotion)
//	active,   !referenced -> referenced
//	active,    referenced -> no-op
//
// It returns true when the call activated the page.
func (v *Vec) MarkAccessed(pfn mem.PFN) bool {
	return v.MarkAccessedPage(pfn, v.store.Page(pfn))
}

// MarkAccessedPage is MarkAccessed for callers that already hold the page
// pointer, sparing the hot path a second store lookup.
func (v *Vec) MarkAccessedPage(pfn mem.PFN, pg *mem.Page) bool {
	if !pg.Flags.Has(mem.PGOnLRU) {
		// Isolated or off-LRU pages just collect the referenced bit.
		pg.Flags = pg.Flags.Set(mem.PGReferenced)
		return false
	}
	switch {
	case !pg.Flags.Has(mem.PGReferenced):
		pg.Flags = pg.Flags.Set(mem.PGReferenced)
		return false
	case !pg.Flags.Has(mem.PGActive):
		pg.Flags = pg.Flags.Clear(mem.PGReferenced)
		v.Activate(pfn)
		return true
	default:
		return false
	}
}

// ForceActivate marks the page accessed and moves it to the active list
// immediately. This is TPP's hysteresis step for hint-faulted pages found
// on the inactive list (§5.3: "we mark the page as accessed and move it to
// the active LRU list immediately").
func (v *Vec) ForceActivate(pfn mem.PFN) {
	pg := v.store.Page(pfn)
	pg.Flags = pg.Flags.Set(mem.PGReferenced)
	if pg.Flags.Has(mem.PGOnLRU) && !pg.Flags.Has(mem.PGActive) {
		v.Activate(pfn)
	}
}

// ScanTail visits up to n pages from the reclaim end of the list, invoking
// fn for each. fn may remove, rotate, or migrate the current page; the
// scan captures the predecessor before calling fn so mutation is safe.
// Scanning stops early when fn returns false.
func (v *Vec) ScanTail(id ListID, n int, fn func(pfn mem.PFN) bool) {
	cur := v.lists[id].tail
	for i := 0; i < n && cur != mem.NilPFN; i++ {
		prev := v.store.Page(cur).Prev
		if !fn(cur) {
			return
		}
		cur = prev
	}
}

// TailBatch appends up to n PFNs from the reclaim end of the list to buf
// — tail first, the same order ScanTail visits — and returns the extended
// slice. The capture is a point-in-time copy of the chain: callers may
// rotate, remove, or migrate the captured pages while iterating the
// slice, which is exactly equivalent to a ScanTail whose callback only
// mutates the current page. Reclaim's shrink loops use this so the scan
// is one pointer walk plus a flat slice pass instead of a callback per
// page.
func (v *Vec) TailBatch(id ListID, n int, buf []mem.PFN) []mem.PFN {
	cur := v.lists[id].tail
	for i := 0; i < n && cur != mem.NilPFN; i++ {
		buf = append(buf, cur)
		cur = v.store.Page(cur).Prev
	}
	return buf
}

// pushFront links pfn at the head (MRU end) of list id.
func (v *Vec) pushFront(id ListID, pfn mem.PFN) {
	l := &v.lists[id]
	pg := v.store.Page(pfn)
	pg.Prev = mem.NilPFN
	pg.Next = l.head
	if l.head != mem.NilPFN {
		v.store.Page(l.head).Prev = pfn
	}
	l.head = pfn
	if l.tail == mem.NilPFN {
		l.tail = pfn
	}
	l.size++
}

// unlink removes pfn from list id.
func (v *Vec) unlink(id ListID, pfn mem.PFN) {
	l := &v.lists[id]
	pg := v.store.Page(pfn)
	if pg.Prev != mem.NilPFN {
		v.store.Page(pg.Prev).Next = pg.Next
	} else {
		l.head = pg.Next
	}
	if pg.Next != mem.NilPFN {
		v.store.Page(pg.Next).Prev = pg.Prev
	} else {
		l.tail = pg.Prev
	}
	pg.Prev, pg.Next = mem.NilPFN, mem.NilPFN
	if l.size == 0 {
		panic("lru: unlink from empty list")
	}
	l.size--
}

// CheckInvariants walks every list and verifies link integrity, size
// accounting, and flag consistency. Used by tests; O(n).
func (v *Vec) CheckInvariants() error {
	for id := ListID(0); id < numLists; id++ {
		l := v.lists[id]
		var count uint64
		prev := mem.NilPFN
		for cur := l.head; cur != mem.NilPFN; cur = v.store.Page(cur).Next {
			pg := v.store.Page(cur)
			if pg.Prev != prev {
				return fmt.Errorf("lru: %v: bad prev link at %d", id, cur)
			}
			if !pg.Flags.Has(mem.PGOnLRU) {
				return fmt.Errorf("lru: %v: page %d on list without PGOnLRU", id, cur)
			}
			if pg.Flags.Has(mem.PGActive) != id.IsActive() {
				return fmt.Errorf("lru: %v: page %d active flag mismatch", id, cur)
			}
			if listFor(pg.Type, id.IsActive()) != id {
				return fmt.Errorf("lru: %v: page %d of type %v on wrong class", id, cur, pg.Type)
			}
			prev = cur
			count++
			if count > l.size {
				return fmt.Errorf("lru: %v: list longer than recorded size %d", id, l.size)
			}
		}
		if count != l.size {
			return fmt.Errorf("lru: %v: size %d != walked %d", id, l.size, count)
		}
		if l.tail != prev {
			return fmt.Errorf("lru: %v: tail %d != last walked %d", id, l.tail, prev)
		}
	}
	return nil
}
