package lru

import (
	"testing"
	"testing/quick"

	"tppsim/internal/mem"
	"tppsim/internal/xrand"
)

func newVec(t *testing.T, n int, pt mem.PageType) (*Vec, []mem.PFN) {
	t.Helper()
	store := mem.NewStore(n)
	v := NewVec(store)
	pfns := make([]mem.PFN, n)
	for i := range pfns {
		pfns[i] = store.Alloc(pt, 0)
	}
	return v, pfns
}

func TestListIDString(t *testing.T) {
	want := map[ListID]string{
		InactiveAnon: "inactive_anon", ActiveAnon: "active_anon",
		InactiveFile: "inactive_file", ActiveFile: "active_file",
	}
	for id, s := range want {
		if id.String() != s {
			t.Errorf("%d.String() = %q", id, id.String())
		}
	}
}

func TestAddRemove(t *testing.T) {
	v, p := newVec(t, 3, mem.Anon)
	v.Add(p[0], false)
	v.Add(p[1], false)
	v.Add(p[2], true)
	if v.Size(InactiveAnon) != 2 || v.Size(ActiveAnon) != 1 {
		t.Fatalf("sizes: inactive=%d active=%d", v.Size(InactiveAnon), v.Size(ActiveAnon))
	}
	if v.TotalSize() != 3 {
		t.Fatalf("TotalSize = %d", v.TotalSize())
	}
	// MRU order: p[1] at head, p[0] at tail.
	if v.Head(InactiveAnon) != p[1] || v.Tail(InactiveAnon) != p[0] {
		t.Fatal("MRU/LRU order wrong")
	}
	v.Remove(p[1])
	if v.Size(InactiveAnon) != 1 || v.Head(InactiveAnon) != p[0] {
		t.Fatal("Remove broke list")
	}
	if err := v.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFileClassSeparation(t *testing.T) {
	store := mem.NewStore(2)
	v := NewVec(store)
	a := store.Alloc(mem.Anon, 0)
	f := store.Alloc(mem.Tmpfs, 0)
	v.Add(a, false)
	v.Add(f, false)
	if v.Size(InactiveAnon) != 1 || v.Size(InactiveFile) != 1 {
		t.Fatal("tmpfs page not on file LRU")
	}
	if v.ListOf(f) != InactiveFile {
		t.Fatal("ListOf wrong for tmpfs")
	}
}

func TestDoubleAddPanics(t *testing.T) {
	v, p := newVec(t, 1, mem.Anon)
	v.Add(p[0], false)
	defer func() {
		if recover() == nil {
			t.Fatal("double Add did not panic")
		}
	}()
	v.Add(p[0], false)
}

func TestActivateDeactivate(t *testing.T) {
	v, p := newVec(t, 2, mem.File)
	v.Add(p[0], false)
	v.Add(p[1], false)
	if !v.Activate(p[0]) {
		t.Fatal("Activate returned false")
	}
	if v.Size(ActiveFile) != 1 || v.Size(InactiveFile) != 1 {
		t.Fatal("Activate did not move page")
	}
	if v.Activate(p[0]) {
		t.Fatal("Activate of active page returned true")
	}
	if !v.Deactivate(p[0]) {
		t.Fatal("Deactivate returned false")
	}
	pg := vStore(v, p[0])
	if pg.Flags.Has(mem.PGActive) || pg.Flags.Has(mem.PGReferenced) {
		t.Fatal("Deactivate left flags set")
	}
	if err := v.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// vStore reaches the page through a scan since Vec does not export its
// store; tests construct the store themselves elsewhere, but here we grab
// it via a tiny helper closure over Add semantics.
func vStore(v *Vec, pfn mem.PFN) *mem.Page {
	var out *mem.Page
	// ScanTail over all lists to find the page.
	for id := ListID(0); id < ListID(NumLists); id++ {
		v.ScanTail(id, 1<<30, func(p mem.PFN) bool {
			if p == pfn {
				out = pageOf(v, p)
				return false
			}
			return true
		})
		if out != nil {
			return out
		}
	}
	return pageOf(v, pfn)
}

func pageOf(v *Vec, pfn mem.PFN) *mem.Page { return v.store.Page(pfn) }

func TestMarkAccessedProtocol(t *testing.T) {
	store := mem.NewStore(1)
	v := NewVec(store)
	p := store.Alloc(mem.Anon, 0)
	v.Add(p, false)
	pg := store.Page(p)

	// First touch: referenced only.
	if v.MarkAccessed(p) {
		t.Fatal("first touch activated")
	}
	if !pg.Flags.Has(mem.PGReferenced) || pg.Flags.Has(mem.PGActive) {
		t.Fatal("first touch flags wrong")
	}
	// Second touch: workingset activation, referenced cleared.
	if !v.MarkAccessed(p) {
		t.Fatal("second touch did not activate")
	}
	if !pg.Flags.Has(mem.PGActive) || pg.Flags.Has(mem.PGReferenced) {
		t.Fatal("second touch flags wrong")
	}
	// Third touch on active: referenced set again.
	if v.MarkAccessed(p) {
		t.Fatal("third touch re-activated")
	}
	if !pg.Flags.Has(mem.PGReferenced) {
		t.Fatal("third touch did not set referenced")
	}
	// Fourth touch: no-op.
	if v.MarkAccessed(p) {
		t.Fatal("fourth touch activated")
	}
}

func TestMarkAccessedOffLRU(t *testing.T) {
	store := mem.NewStore(1)
	v := NewVec(store)
	p := store.Alloc(mem.Anon, 0)
	if v.MarkAccessed(p) {
		t.Fatal("off-LRU page activated")
	}
	if !store.Page(p).Flags.Has(mem.PGReferenced) {
		t.Fatal("off-LRU page did not collect referenced bit")
	}
}

func TestForceActivate(t *testing.T) {
	store := mem.NewStore(1)
	v := NewVec(store)
	p := store.Alloc(mem.File, 0)
	v.Add(p, false)
	v.ForceActivate(p)
	pg := store.Page(p)
	if !pg.Flags.Has(mem.PGActive) || !pg.Flags.Has(mem.PGReferenced) {
		t.Fatal("ForceActivate did not activate+reference")
	}
	if v.Size(ActiveFile) != 1 {
		t.Fatal("ForceActivate did not move to active list")
	}
}

func TestIsolatePutback(t *testing.T) {
	v, p := newVec(t, 2, mem.Anon)
	v.Add(p[0], true)
	v.Add(p[1], false)
	if !v.Isolate(p[0]) {
		t.Fatal("Isolate failed")
	}
	pg := pageOf(v, p[0])
	if !pg.Flags.Has(mem.PGIsolated) || pg.Flags.Has(mem.PGOnLRU) {
		t.Fatal("Isolate flags wrong")
	}
	if v.Isolate(p[0]) {
		t.Fatal("double Isolate succeeded")
	}
	v.Putback(p[0])
	if v.Size(ActiveAnon) != 1 {
		t.Fatal("Putback lost active state")
	}
	if pageOf(v, p[0]).Flags.Has(mem.PGIsolated) {
		t.Fatal("Putback left PGIsolated")
	}
}

func TestRotateToFront(t *testing.T) {
	v, p := newVec(t, 3, mem.Anon)
	for _, pfn := range p {
		v.Add(pfn, false)
	}
	// Tail is p[0]; rotate it to front.
	v.RotateToFront(p[0])
	if v.Head(InactiveAnon) != p[0] || v.Tail(InactiveAnon) != p[1] {
		t.Fatal("rotate order wrong")
	}
	if err := v.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestScanTailOrderAndEarlyStop(t *testing.T) {
	v, p := newVec(t, 5, mem.Anon)
	for _, pfn := range p {
		v.Add(pfn, false)
	}
	var visited []mem.PFN
	v.ScanTail(InactiveAnon, 3, func(pfn mem.PFN) bool {
		visited = append(visited, pfn)
		return true
	})
	if len(visited) != 3 || visited[0] != p[0] || visited[1] != p[1] || visited[2] != p[2] {
		t.Fatalf("scan order: %v", visited)
	}
	visited = nil
	v.ScanTail(InactiveAnon, 10, func(pfn mem.PFN) bool {
		visited = append(visited, pfn)
		return false
	})
	if len(visited) != 1 {
		t.Fatal("early stop ignored")
	}
}

func TestScanTailMutationSafe(t *testing.T) {
	v, p := newVec(t, 4, mem.Anon)
	for _, pfn := range p {
		v.Add(pfn, false)
	}
	// Remove every visited page during the scan.
	removed := 0
	v.ScanTail(InactiveAnon, 10, func(pfn mem.PFN) bool {
		v.Remove(pfn)
		removed++
		return true
	})
	if removed != 4 || v.Size(InactiveAnon) != 0 {
		t.Fatalf("mutating scan removed %d, size now %d", removed, v.Size(InactiveAnon))
	}
	if err := v.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Property test: random streams of LRU operations preserve all structural
// invariants and never lose pages.
func TestRandomOpsInvariant(t *testing.T) {
	f := func(seed uint64, opsRaw []uint8) bool {
		rng := xrand.New(seed)
		const n = 32
		store := mem.NewStore(n)
		v := NewVec(store)
		pfns := make([]mem.PFN, n)
		onLRU := make([]bool, n)
		isolated := make([]bool, n)
		for i := range pfns {
			pt := mem.PageType(rng.Intn(3))
			pfns[i] = store.Alloc(pt, 0)
		}
		for _, op := range opsRaw {
			i := int(op) % n
			pfn := pfns[i]
			switch (op / 8) % 7 {
			case 0:
				if !onLRU[i] && !isolated[i] {
					v.Add(pfn, op&1 == 1)
					onLRU[i] = true
				}
			case 1:
				if onLRU[i] {
					v.Remove(pfn)
					onLRU[i] = false
				}
			case 2:
				if onLRU[i] {
					v.Activate(pfn)
				}
			case 3:
				if onLRU[i] {
					v.Deactivate(pfn)
				}
			case 4:
				v.MarkAccessed(pfn)
				// MarkAccessed may activate but never adds/removes.
			case 5:
				if onLRU[i] {
					if v.Isolate(pfn) {
						onLRU[i] = false
						isolated[i] = true
					}
				}
			case 6:
				if isolated[i] {
					v.Putback(pfn)
					isolated[i] = false
					onLRU[i] = true
				}
			}
			if err := v.CheckInvariants(); err != nil {
				t.Logf("invariant violated: %v", err)
				return false
			}
		}
		// No page lost: every page flagged on-LRU is reachable.
		var total uint64
		for id := ListID(0); id < ListID(NumLists); id++ {
			total += v.Size(id)
		}
		var want uint64
		for _, on := range onLRU {
			if on {
				want++
			}
		}
		return total == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAddRemove(b *testing.B) {
	store := mem.NewStore(1024)
	v := NewVec(store)
	pfns := make([]mem.PFN, 1024)
	for i := range pfns {
		pfns[i] = store.Alloc(mem.Anon, 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pfns[i%1024]
		v.Add(p, false)
		v.Remove(p)
	}
}
