package probe

import "time"

// Phase identifies one slice of a simulator tick for wall-clock
// attribution. The phases partition Machine.Step: migration work driven
// by reclaim shows up under PhaseReclaim and promotion work under
// PhaseNUMAB (the per-page migration *model* costs have their own
// histograms in LatencySet; the profiler measures host wall-clock, not
// simulated time).
type Phase int

const (
	// PhaseWorkload is the workload generator's per-tick housekeeping
	// (phase shifts, working-set churn).
	PhaseWorkload Phase = iota
	// PhaseDraw is drawing the tick's access batch from the generator.
	PhaseDraw
	// PhaseTranslate is the batch virtual→physical translation pass
	// (including first-touch faults it triggers).
	PhaseTranslate
	// PhaseCharge is the fused charge/warm loop over the translated
	// batch: latency accounting, LRU warming, NUMA hint checks.
	PhaseCharge
	// PhaseReclaim is the background reclaim daemon's tick, including
	// the demotions it drives.
	PhaseReclaim
	// PhaseNUMAB is the NUMA-balancing scanner's tick, including the
	// promotions it drives.
	PhaseNUMAB
	// PhaseControl covers the feedback controllers (autotier, TMO,
	// chameleon) that run after the engines.
	PhaseControl
	// PhaseFold is end-of-tick metrics folding and series sampling.
	PhaseFold

	// NumPhases is the number of phases.
	NumPhases = int(PhaseFold) + 1
)

var phaseNames = [NumPhases]string{
	"workload", "draw", "translate", "charge",
	"reclaim", "numab", "control", "fold",
}

// String returns the phase's short lowercase name.
func (p Phase) String() string {
	if p < 0 || int(p) >= NumPhases {
		return "unknown"
	}
	return phaseNames[p]
}

// PhaseProfiler attributes host wall-clock time within each tick to
// phases, one duration histogram (in nanoseconds) per phase. It is a
// stopwatch the tick loop laps: Begin at the top of the tick, Lap after
// each phase. All methods are nil-receiver safe so call sites need no
// guards — a nil profiler's Begin/Lap are single-branch no-ops.
//
// The profiler reads the host clock, so the recorded durations are
// nondeterministic run to run; nothing it measures ever feeds back into
// the simulation, so enabling it cannot change a run's results.
type PhaseProfiler struct {
	hist [NumPhases]Histogram
	last time.Time
}

// Begin marks the start of a tick (or of the next phase after time
// spent outside any phase).
func (p *PhaseProfiler) Begin() {
	if p == nil {
		return
	}
	p.last = time.Now()
}

// Lap charges the time since the previous Begin/Lap to ph and restarts
// the stopwatch.
func (p *PhaseProfiler) Lap(ph Phase) {
	if p == nil {
		return
	}
	now := time.Now()
	p.hist[ph].Observe(uint64(now.Sub(p.last)))
	p.last = now
}

// Hist returns the duration histogram for ph (nil receiver → nil).
func (p *PhaseProfiler) Hist(ph Phase) *Histogram {
	if p == nil {
		return nil
	}
	return &p.hist[ph]
}

// TotalNs returns the summed wall-clock across all phases.
func (p *PhaseProfiler) TotalNs() uint64 {
	if p == nil {
		return 0
	}
	var t uint64
	for i := range p.hist {
		t += p.hist[i].Sum()
	}
	return t
}

// Ticks returns the number of profiled ticks (the count of the fold
// phase, which closes every tick).
func (p *PhaseProfiler) Ticks() uint64 {
	if p == nil {
		return 0
	}
	return p.hist[PhaseFold].Count()
}
