package probe

// Hook is a typed tracepoint in the kernel style: a subsystem owns a
// Hook value at an interesting site and fires typed events through it;
// observers attach functions without the subsystem knowing who (or
// whether anyone) is listening. The zero value is a disabled hook whose
// only cost at the fire site is a length check — guard event
// construction with Active() to keep disabled sites free:
//
//	if p.OnDemote.Active() {
//		p.OnDemote.Fire(MigrateEvent{...})
//	}
//
// Hooks are not safe for concurrent Attach/Fire; wiring happens at
// machine construction, firing on the machine's own goroutine.
type Hook[T any] struct {
	fns []func(T)
}

// Attach subscribes fn to the hook. Subscribers run in attach order.
func (h *Hook[T]) Attach(fn func(T)) {
	h.fns = append(h.fns, fn)
}

// Active reports whether any subscriber is attached.
func (h *Hook[T]) Active() bool { return len(h.fns) > 0 }

// Fire delivers ev to every subscriber, in attach order.
func (h *Hook[T]) Fire(ev T) {
	for _, fn := range h.fns {
		fn(ev)
	}
}
