// Package probe is the simulator's distribution-level observability
// plane — the third plane next to the counters (internal/vmstat) and the
// time series (internal/series). Where a counter answers "how many" and
// a series answers "when", a probe answers "how are the values
// distributed": access-latency demographics across the tiers, migration
// stall distributions, tick-phase wall-clock attribution, and typed
// tracepoints future subsystems can subscribe to without touching the
// engines.
//
// Three primitives:
//
//   - Histogram: a zero-allocation log₂-bucketed counting histogram (a
//     fixed 64-bucket array). Observing is a handful of integer ops with
//     no branches on the bucket path, counts and sums are exact, two
//     histograms merge by addition, and quantiles resolve to bucket
//     bounds (one power-of-two of resolution). The zero value is ready
//     to use, so histograms embed by value in hot structs.
//   - PhaseProfiler: attributes wall-clock time within each simulator
//     tick to a fixed set of phases (workload housekeeping, access draw,
//     translate, charge, reclaim, NUMA balancing, controllers, metrics
//     fold), each phase a Histogram of per-tick durations. It explains
//     where the tick budget goes. Wall-clock is observational only: the
//     profiler never feeds back into the simulation, so enabling it
//     cannot change a run's results (it does make the profile itself
//     nondeterministic, like any real profiler).
//   - Hook[T]: a typed tracepoint, kernel-style. Subsystems own hook
//     values at interesting sites (demote, promote, allocation stall,
//     reclaim wakeup) and fire typed events; subscribers attach
//     functions. An un-attached hook costs one nil/length check at the
//     site — the fast path of a disabled kernel tracepoint.
//
// The package deliberately imports nothing from the rest of the
// simulator (node IDs are plain ints in event payloads), so any layer —
// engines, policies, future trackers and tenants — can depend on it
// without cycles.
//
// Everything is off by default. A machine only carries a probe plane
// when sim.Config.ProbeLatency/ProbePhases is set or a caller attaches
// a hook via Machine.EnableProbes; with the plane absent, the hot paths
// pay a single cached nil check and runs are bit- and alloc-identical
// to probe-free builds (pinned by test and by the cmd/bench gate).
package probe

// Probes is one machine's probe plane: the latency/size histograms, the
// tick-phase profiler, and the tracepoint hooks. Engines receive the
// whole plane and fire/observe what concerns them; nil sub-plane
// pointers mean that aspect is disabled while hooks remain usable.
type Probes struct {
	// Lat carries the latency/size histograms (nil = histograms off).
	Lat *LatencySet
	// Prof is the tick-phase wall-clock profiler (nil = profiler off).
	Prof *PhaseProfiler

	// Tracepoints. Fire sites guard with Active() so an un-attached
	// hook costs one length check.
	OnDemote      Hook[MigrateEvent]     // after each successful demotion
	OnPromote     Hook[MigrateEvent]     // after each successful promotion
	OnAllocStall  Hook[AllocStallEvent]  // after an allocation paid direct reclaim
	OnReclaimWake Hook[ReclaimWakeEvent] // when a reclaim pass starts on a node
}

// New builds a probe plane for a machine with the given node count.
// latency enables the histogram set, phases the tick profiler; hooks
// are always present (attaching is what arms them).
func New(nodes int, latency, phases bool) *Probes {
	p := &Probes{}
	if latency {
		p.Lat = NewLatencySet(nodes)
	}
	if phases {
		p.Prof = &PhaseProfiler{}
	}
	return p
}

// LatencySet is the machine's histogram collection, recorded from the
// hot paths. All latency histograms are in nanoseconds; ReclaimBatch is
// in pages.
type LatencySet struct {
	// Access holds one histogram per memory node, indexed by the node
	// the access was served from: the pure load latency each sampled CPU
	// access observed (tier.AccessLatency from the accessing region's
	// home socket — fault and hint costs are excluded, they have their
	// own histograms). The per-node split is the paper's Fig. 6-style
	// latency demographic: summing the CXL nodes' counts against the
	// total is the "CXL tax".
	Access []Histogram
	// Promote and Demote record per-page migration costs by direction.
	Promote Histogram
	Demote  Histogram
	// AllocStall records direct-reclaim stall durations charged to
	// faulting threads (the tail the paper's decoupled watermarks are
	// designed to avoid).
	AllocStall Histogram
	// ReclaimBatch records the size of each inactive-tail scan batch the
	// reclaim daemon captured, in pages — the shape of reclaim work.
	ReclaimBatch Histogram
}

// NewLatencySet returns a latency set for a machine of nodes nodes.
func NewLatencySet(nodes int) *LatencySet {
	return &LatencySet{Access: make([]Histogram, nodes)}
}

// TotalAccess returns the machine-wide access-latency histogram: the
// merge of every node's access histogram.
func (ls *LatencySet) TotalAccess() Histogram {
	var h Histogram
	for i := range ls.Access {
		h.Merge(&ls.Access[i])
	}
	return h
}

// MigrateEvent is the payload of the demote/promote tracepoints.
type MigrateEvent struct {
	PFN       uint64
	Src, Dst  int  // node IDs
	Promotion bool // false: demotion
	CostNs    float64
}

// AllocStallEvent is the payload of the allocation-stall tracepoint:
// an allocation fell through to direct reclaim and stalled its thread.
type AllocStallEvent struct {
	Node    int // the preferred node that was reclaimed
	StallNs float64
}

// ReclaimWakeEvent is the payload of the reclaim-wakeup tracepoint: a
// reclaim pass is starting on a node.
type ReclaimWakeEvent struct {
	Node       int
	FreePages  uint64
	TargetFree uint64
	// Direct is true for synchronous direct reclaim, false for the
	// background kswapd pass.
	Direct bool
}
