package probe

import "math/bits"

// NumBuckets is the fixed bucket count of a Histogram. Bucket 0 counts
// zero-valued observations; bucket i (1 ≤ i < 63) counts values in
// [2^(i-1), 2^i − 1]; bucket 63 absorbs everything ≥ 2^62.
const NumBuckets = 64

// Histogram is a log₂-bucketed counting histogram. It is a plain value
// — a fixed array plus a sum — so the zero value is ready to use, it
// embeds in hot structs without indirection, and recording never
// allocates. Counts and the running sum are exact; quantiles resolve to
// the upper bound of the bucket holding the requested rank, i.e. within
// one power of two of the exact order statistic.
//
// Histogram is not safe for concurrent mutation; the simulator is
// single-threaded per machine, and cross-machine aggregation goes
// through Merge on quiesced copies.
type Histogram struct {
	sum    uint64
	counts [NumBuckets]uint64
}

// bucketOf maps a value to its bucket index: bits.Len64 puts 0 in
// bucket 0 and [2^(i-1), 2^i−1] in bucket i, clamped into the top
// bucket.
func bucketOf(v uint64) int {
	b := bits.Len64(v)
	if b >= NumBuckets {
		return NumBuckets - 1
	}
	return b
}

// Observe records one value. This is the hot-path entry: two adds and a
// bits.Len64, no branches beyond the clamp, no allocation.
func (h *Histogram) Observe(v uint64) {
	h.sum += v
	h.counts[bucketOf(v)]++
}

// ObserveFloat records a float64 measurement (negative values clamp to
// zero). Convenience for the engines' float64 nanosecond costs.
func (h *Histogram) ObserveFloat(v float64) {
	if v < 0 {
		v = 0
	}
	h.Observe(uint64(v))
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for _, c := range h.counts {
		n += c
	}
	return n
}

// Sum returns the exact sum of all recorded values.
func (h *Histogram) Sum() uint64 { return h.sum }

// Mean returns the exact mean of the recorded values (0 if empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.sum) / float64(n)
}

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) uint64 { return h.counts[i] }

// BucketBound returns the inclusive upper bound of bucket i: 0 for
// bucket 0, 2^i − 1 otherwise. The top bucket's bound is the max
// uint64, standing in for "everything beyond resolution".
func BucketBound(i int) uint64 {
	if i <= 0 {
		return 0
	}
	if i >= NumBuckets-1 {
		return ^uint64(0)
	}
	return 1<<uint(i) - 1
}

// Merge adds o's observations into h. Merging then querying is
// equivalent to having observed both streams into one histogram.
func (h *Histogram) Merge(o *Histogram) {
	h.sum += o.sum
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
}

// Reset zeroes the histogram.
func (h *Histogram) Reset() { *h = Histogram{} }

// Quantile returns the value at quantile q (0 < q ≤ 1) using the
// nearest-rank rule: the upper bound of the bucket containing the
// ⌈q·n⌉-th smallest observation. Returns 0 on an empty histogram.
// Because ranks are exact and only the in-bucket position is lost, the
// result is the bucket bound of the true order statistic — within one
// power of two of exact.
func (h *Histogram) Quantile(q float64) uint64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	if q <= 0 {
		q = 0
	}
	rank := uint64(q * float64(n))
	if float64(rank) < q*float64(n) {
		rank++ // ceil
	}
	if rank == 0 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			return BucketBound(i)
		}
	}
	return BucketBound(NumBuckets - 1)
}

// Min returns the lower bound of the lowest occupied bucket (the
// smallest observation rounded down to its bucket floor); 0 if empty.
func (h *Histogram) Min() uint64 {
	for i, c := range h.counts {
		if c != 0 {
			if i <= 1 {
				return uint64(i) // bucket 0 holds 0, bucket 1 holds exactly 1
			}
			return 1 << uint(i-1)
		}
	}
	return 0
}

// Max returns the upper bound of the highest occupied bucket; 0 if
// empty.
func (h *Histogram) Max() uint64 {
	for i := NumBuckets - 1; i >= 0; i-- {
		if h.counts[i] != 0 {
			return BucketBound(i)
		}
	}
	return 0
}

// Summary is the standard percentile digest of a histogram.
type Summary struct {
	Count               uint64
	Mean                float64
	P50, P90, P99, P999 uint64
}

// Percentiles extracts the p50/p90/p99/p99.9 digest in one pass per
// quantile.
func (h *Histogram) Percentiles() Summary {
	return Summary{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
	}
}
