package probe

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

// oracleQuantile is the brute-force nearest-rank order statistic over
// the raw observations.
func oracleQuantile(sorted []uint64, q float64) uint64 {
	n := len(sorted)
	rank := int(q * float64(n))
	if float64(rank) < q*float64(n) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1]
}

// TestQuantileMatchesOracle drives randomized value streams through the
// histogram and checks every quantile against a sorted-slice oracle:
// the histogram's answer must be exactly the upper bound of the bucket
// containing the oracle's value — i.e. correct within one bucket of
// resolution, and exact in rank.
func TestQuantileMatchesOracle(t *testing.T) {
	quantiles := []float64{0.01, 0.25, 0.50, 0.90, 0.99, 0.999, 1.0}
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5000)
		var h Histogram
		vals := make([]uint64, 0, n)
		for i := 0; i < n; i++ {
			var v uint64
			switch rng.Intn(4) {
			case 0:
				v = uint64(rng.Intn(4)) // exercise buckets 0–2
			case 1:
				v = uint64(rng.Intn(1 << 12))
			case 2:
				v = rng.Uint64() >> uint(rng.Intn(64))
			default:
				v = rng.Uint64()
			}
			vals = append(vals, v)
			h.Observe(v)
		}
		sorted := append([]uint64(nil), vals...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

		if h.Count() != uint64(n) {
			t.Fatalf("seed %d: Count = %d, want %d", seed, h.Count(), n)
		}
		var sum uint64
		for _, v := range vals {
			sum += v
		}
		if h.Sum() != sum {
			t.Fatalf("seed %d: Sum = %d, want %d", seed, h.Sum(), sum)
		}
		for _, q := range quantiles {
			want := BucketBound(bucketOf(oracleQuantile(sorted, q)))
			if got := h.Quantile(q); got != want {
				t.Fatalf("seed %d n=%d: Quantile(%g) = %d, want bucket bound %d of oracle value %d",
					seed, n, q, got, want, oracleQuantile(sorted, q))
			}
		}
		if want := BucketBound(bucketOf(sorted[len(sorted)-1])); h.Max() != want {
			t.Fatalf("seed %d: Max = %d, want %d", seed, h.Max(), want)
		}
	}
}

// TestMergeEquivalence: observing two streams into one histogram and
// merging two histograms must be indistinguishable.
func TestMergeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var a, b, whole Histogram
	for i := 0; i < 3000; i++ {
		v := rng.Uint64() >> uint(rng.Intn(64))
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
		whole.Observe(v)
	}
	merged := a
	merged.Merge(&b)
	if merged != whole {
		t.Fatalf("merged histogram differs from whole-stream histogram")
	}
}

func TestBucketBounds(t *testing.T) {
	cases := []struct {
		v      uint64
		bucket int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11}, {1 << 62, 63}, {^uint64(0), 63},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.bucket {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.bucket)
		}
	}
	// Every value must be ≤ its bucket's upper bound and (for buckets
	// > 0) > the previous bucket's bound.
	for _, c := range cases {
		ub := BucketBound(c.bucket)
		if c.v > ub {
			t.Errorf("value %d exceeds bucket %d bound %d", c.v, c.bucket, ub)
		}
		if c.bucket > 0 && c.v <= BucketBound(c.bucket-1) {
			t.Errorf("value %d not above bucket %d bound", c.v, c.bucket-1)
		}
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("empty histogram must report zeros")
	}
	h.ObserveFloat(-5) // clamps to 0
	h.ObserveFloat(100)
	if h.Count() != 2 || h.Sum() != 100 {
		t.Fatalf("ObserveFloat: count=%d sum=%d", h.Count(), h.Sum())
	}
	if h.Min() != 0 {
		t.Fatalf("Min = %d, want 0", h.Min())
	}
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("Reset left data behind")
	}
	h.Observe(1)
	if h.Min() != 1 {
		t.Fatalf("Min = %d, want 1", h.Min())
	}
	s := h.Percentiles()
	if s.Count != 1 || s.P50 != 1 || s.P999 != 1 {
		t.Fatalf("Percentiles = %+v", s)
	}
}

// TestObserveDoesNotAllocate pins the zero-allocation contract of the
// hot-path recorder.
func TestObserveDoesNotAllocate(t *testing.T) {
	var h Histogram
	allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(12345)
	})
	if allocs != 0 {
		t.Fatalf("Observe allocates %v per call, want 0", allocs)
	}
}

func TestHook(t *testing.T) {
	var h Hook[int]
	if h.Active() {
		t.Fatalf("zero hook must be inactive")
	}
	h.Fire(1) // no-op, must not panic
	var got []int
	h.Attach(func(v int) { got = append(got, v) })
	h.Attach(func(v int) { got = append(got, v*10) })
	if !h.Active() {
		t.Fatalf("attached hook must be active")
	}
	h.Fire(7)
	if len(got) != 2 || got[0] != 7 || got[1] != 70 {
		t.Fatalf("Fire delivered %v", got)
	}
}

func TestPhaseProfiler(t *testing.T) {
	var nilP *PhaseProfiler
	nilP.Begin()
	nilP.Lap(PhaseCharge) // nil-safe no-ops
	if nilP.Hist(PhaseCharge) != nil || nilP.TotalNs() != 0 || nilP.Ticks() != 0 {
		t.Fatalf("nil profiler must report nothing")
	}

	p := &PhaseProfiler{}
	for i := 0; i < 3; i++ {
		p.Begin()
		time.Sleep(time.Microsecond)
		p.Lap(PhaseCharge)
		p.Lap(PhaseFold)
	}
	if p.Ticks() != 3 {
		t.Fatalf("Ticks = %d, want 3", p.Ticks())
	}
	if p.Hist(PhaseCharge).Count() != 3 || p.Hist(PhaseCharge).Sum() == 0 {
		t.Fatalf("charge phase not recorded")
	}
	if p.TotalNs() < p.Hist(PhaseCharge).Sum() {
		t.Fatalf("TotalNs below single-phase sum")
	}
	if PhaseCharge.String() != "charge" || Phase(99).String() != "unknown" {
		t.Fatalf("phase names wrong")
	}
}

func TestLatencySet(t *testing.T) {
	ls := NewLatencySet(3)
	ls.Access[0].Observe(80)
	ls.Access[2].Observe(300)
	ls.Access[2].Observe(310)
	total := ls.TotalAccess()
	if total.Count() != 3 || total.Sum() != 690 {
		t.Fatalf("TotalAccess count=%d sum=%d", total.Count(), total.Sum())
	}
	p := New(2, true, true)
	if p.Lat == nil || len(p.Lat.Access) != 2 || p.Prof == nil {
		t.Fatalf("New(2, true, true) missing planes")
	}
	p = New(2, false, false)
	if p.Lat != nil || p.Prof != nil {
		t.Fatalf("New(2, false, false) must carry no sub-planes")
	}
}
