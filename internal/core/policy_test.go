package core

import "testing"

func TestTPPConfiguration(t *testing.T) {
	p := TPP()
	if !p.Reclaim.DemotionEnabled || !p.Reclaim.Decoupled {
		t.Fatal("TPP reclaim misconfigured")
	}
	if !p.Alloc.Decoupled {
		t.Fatal("TPP alloc not decoupled")
	}
	nb := p.NUMAB
	if !nb.Enabled || !nb.CXLOnly || !nb.ActiveLRUFilter || !nb.IgnoreAllocWatermark {
		t.Fatalf("TPP NUMAB misconfigured: %+v", nb)
	}
	if !p.Migrate.WatermarkGuard {
		t.Fatal("TPP migrate guard off")
	}
}

func TestAblationOptions(t *testing.T) {
	if p := TPP(WithoutDecoupling()); p.Alloc.Decoupled || p.Reclaim.Decoupled {
		t.Fatal("WithoutDecoupling ignored")
	}
	if p := TPP(WithInstantPromotion()); p.NUMAB.ActiveLRUFilter {
		t.Fatal("WithInstantPromotion ignored")
	}
	if p := TPP(WithPageTypeAware()); !p.Alloc.PageTypeAware {
		t.Fatal("WithPageTypeAware ignored")
	}
	p := TPP(WithTMO())
	if p.TMO == nil || !p.TMO.TwoStage {
		t.Fatal("WithTMO ignored or not two-stage")
	}
	if p.Name != "TPP + TMO" {
		t.Fatalf("name = %q", p.Name)
	}
}

func TestBaselinePolicies(t *testing.T) {
	d := DefaultLinux()
	if d.Reclaim.DemotionEnabled || d.NUMAB.Enabled || d.TMO != nil {
		t.Fatal("DefaultLinux has extra mechanisms")
	}
	nb := NUMABalancing()
	if !nb.NUMAB.Enabled || nb.NUMAB.CXLOnly || nb.NUMAB.ActiveLRUFilter {
		t.Fatal("NUMABalancing misconfigured")
	}
	at := AutoTiering()
	if at.AutoTiering == nil || !at.NUMAB.Enabled || at.NUMAB.ActiveLRUFilter {
		t.Fatal("AutoTiering misconfigured")
	}
	tmo := TMOOnly()
	if tmo.TMO == nil || tmo.TMO.TwoStage || !tmo.NeedSwap {
		t.Fatal("TMOOnly misconfigured")
	}
}

func TestAllOrder(t *testing.T) {
	names := []string{"Default Linux", "TPP", "NUMA Balancing", "AutoTiering"}
	all := All()
	if len(all) != len(names) {
		t.Fatalf("All() = %d policies", len(all))
	}
	for i, p := range all {
		if p.Name != names[i] {
			t.Fatalf("All()[%d] = %q, want %q", i, p.Name, names[i])
		}
	}
}
