// Package core defines the paper's primary contribution as a composable
// policy: TPP is precisely a configuration of the kernel mechanisms in
// this repository — migration-backed reclaim (§5.1), decoupled allocation
// and reclamation watermarks (§5.2), CXL-only NUMA-balancing sampling with
// the active-LRU promotion filter (§5.3), and optional page-type-aware
// allocation (§5.4). The baselines the paper compares against (default
// Linux, classic NUMA Balancing, AutoTiering, TMO) are alternative
// configurations of the same machine, which is what makes the comparison
// apples-to-apples.
//
// The ablation experiments (§6.2) are expressed as options on the TPP
// policy: WithoutDecoupling, WithInstantPromotion, WithPageTypeAware.
package core

import (
	"tppsim/internal/alloc"
	"tppsim/internal/autotiering"
	"tppsim/internal/migrate"
	"tppsim/internal/numab"
	"tppsim/internal/reclaim"
	"tppsim/internal/tmo"
	"tppsim/internal/tracker"
)

// Policy is a complete placement-policy configuration for one run.
type Policy struct {
	// Name is the display name used in tables ("TPP", "Default Linux",
	// ...).
	Name string

	Alloc   alloc.Config
	Reclaim reclaim.Config
	NUMAB   numab.Config
	Migrate migrate.Config

	// AutoTiering, when non-nil, runs the AutoTiering baseline daemon
	// (its promotion gate is wired into NUMAB automatically).
	AutoTiering *autotiering.Config
	// TMO, when non-nil, runs the TMO controller; it requires a swap
	// device on the machine.
	TMO *tmo.Config
	// Sampled, when non-nil, makes this a sampled-tracking policy: page
	// movement is driven solely by the tracker plane's heatmap (heat
	// classification plus the rate-limited mover), never by ground-truth
	// page state. The machine builds a tracker plane automatically
	// (idlepage unless sim.Config.Tracker chooses another kind).
	Sampled *tracker.PolicyConfig
	// NeedSwap requests a zswap device even if the policy does not
	// strictly require one.
	NeedSwap bool
}

// Option mutates a Policy; used for TPP ablations.
type Option func(*Policy)

// TPP returns the paper's full mechanism: demotion via migration,
// decoupled watermarks, CXL-only sampling, active-LRU-filtered promotion
// with watermark bypass.
func TPP(opts ...Option) Policy {
	p := Policy{
		Name:  "TPP",
		Alloc: alloc.Config{Decoupled: true},
		Reclaim: reclaim.Config{
			DemotionEnabled: true,
			Decoupled:       true,
		},
		NUMAB: numab.Config{
			Enabled:              true,
			CXLOnly:              true,
			ActiveLRUFilter:      true,
			IgnoreAllocWatermark: true,
		},
		Migrate: migrate.Config{WatermarkGuard: true},
	}
	for _, o := range opts {
		o(&p)
	}
	return p
}

// WithoutDecoupling disables §5.2's decoupled watermarks (the Fig. 17
// ablation): reclaim stops at the classic high watermark and allocation
// halts behind it.
func WithoutDecoupling() Option {
	return func(p *Policy) {
		p.Name = "TPP (no decoupling)"
		p.Alloc.Decoupled = false
		p.Reclaim.Decoupled = false
	}
}

// WithInstantPromotion disables §5.3's active-LRU filter (the Fig. 18 and
// §6.2 ablation): any hint-faulted CXL page promotes immediately.
func WithInstantPromotion() Option {
	return func(p *Policy) {
		p.Name = "TPP (instant promotion)"
		p.NUMAB.ActiveLRUFilter = false
	}
}

// WithPageTypeAware enables §5.4's cache-to-CXL allocation policy
// (Table 2).
func WithPageTypeAware() Option {
	return func(p *Policy) {
		p.Name = "TPP (page-type aware)"
		p.Alloc.PageTypeAware = true
	}
}

// WithTMO layers the TMO controller over the policy in two-stage
// (demote-then-swap) mode (§6.3.2, Tables 3 and 4).
func WithTMO() Option {
	return func(p *Policy) {
		p.Name = p.Name + " + TMO"
		p.TMO = &tmo.Config{TwoStage: true}
	}
}

// DefaultLinux returns the stock kernel the paper calls "default Linux":
// local-first allocation, watermark reclaim that drops/writes-back file
// pages (no demotion, no swap on the evaluation machines), and no NUMA
// balancing.
func DefaultLinux() Policy {
	return Policy{
		Name:    "Default Linux",
		Alloc:   alloc.Config{},
		Reclaim: reclaim.Config{},
		NUMAB:   numab.Config{},
	}
}

// NUMABalancing returns default Linux plus classic AutoNUMA: sampling on
// every node, instant promotion, allocation-watermark-gated (§6.3.1).
func NUMABalancing() Policy {
	return Policy{
		Name:    "NUMA Balancing",
		Alloc:   alloc.Config{},
		Reclaim: reclaim.Config{},
		NUMAB: numab.Config{
			Enabled: true,
			// Classic AutoNUMA samples every node and promotes
			// opportunistically.
		},
	}
}

// AutoTiering returns the AutoTiering baseline: frequency-ranked
// background demotion, optimized (instant) NUMA-balancing promotion
// behind a fixed reserve buffer, tightly-coupled allocation (§6.3).
func AutoTiering() Policy {
	cfg := autotiering.Config{}
	return Policy{
		Name:    "AutoTiering",
		Alloc:   alloc.Config{},
		Reclaim: reclaim.Config{}, // no kswapd demotion; the daemon demotes
		NUMAB: numab.Config{
			Enabled: true,
			CXLOnly: true, // its optimized balancing skips local sampling
			// Promotions land in AutoTiering's reserved buffer, so they
			// bypass the allocation watermark like TPP's do.
			IgnoreAllocWatermark: true,
		},
		AutoTiering: &cfg,
	}
}

// TMOOnly returns TMO running over default Linux with CXL configured as a
// plain swap-backed tier (§6.3.2's "TMO-only" arm): pressure-driven
// reclaim into zswap from the local node, no migration, no promotion.
func TMOOnly() Policy {
	return Policy{
		Name:     "TMO",
		Alloc:    alloc.Config{},
		Reclaim:  reclaim.Config{},
		NUMAB:    numab.Config{},
		TMO:      &tmo.Config{},
		NeedSwap: true,
	}
}

// Sampled returns the sampled-tracking policy family: stock-kernel
// allocation and watermark reclaim as the safety net (no NUMA
// balancing, no hint faults), with all deliberate placement driven by
// the tracker plane — hot ranges promoted and cold ranges demoted by
// the rate-limited mover, classified from tracker counters alone. It
// is the machine's model of a userspace tiering daemon (memtierd):
// everything it knows about page heat passed through a sampled,
// imperfect tracker.
func Sampled(opts ...Option) Policy {
	p := Policy{
		Name:    "Sampled",
		Alloc:   alloc.Config{},
		Reclaim: reclaim.Config{},
		NUMAB:   numab.Config{},
		Migrate: migrate.Config{WatermarkGuard: true},
		Sampled: &tracker.PolicyConfig{},
	}
	for _, o := range opts {
		o(&p)
	}
	return p
}

// All returns the named policies of Table 1 in presentation order.
func All() []Policy {
	return []Policy{DefaultLinux(), TPP(), NUMABalancing(), AutoTiering()}
}

// Named is a registry entry: a policy key as accepted on command lines,
// a one-line description, and its constructor.
type Named struct {
	Key         string
	Description string
	New         func() Policy
}

// Registry enumerates the selectable policy configurations in
// presentation order — the single source for -policy parsing and
// -policies listings.
func Registry() []Named {
	return []Named{
		{"default", "stock kernel: local-first allocation, watermark reclaim, no balancing", DefaultLinux},
		{"tpp", "the paper's mechanism: demotion, decoupled watermarks, filtered CXL promotion", func() Policy { return TPP() }},
		{"numab", "default Linux plus classic AutoNUMA sampling and instant promotion", NUMABalancing},
		{"autotiering", "frequency-ranked background demotion with buffered promotion (§6.3)", AutoTiering},
		{"tmo", "TMO offloading over default Linux with CXL as a swap-backed tier", TMOOnly},
		{"tpp+tmo", "TPP with the TMO controller layered in two-stage mode", func() Policy { return TPP(WithTMO()) }},
		{"tpp+pta", "TPP with page-type-aware allocation (§5.4)", func() Policy { return TPP(WithPageTypeAware()) }},
		{"sampled", "tracker-driven daemon: heatmap classification and a rate-limited mover, no ground truth", func() Policy { return Sampled() }},
	}
}
