package migrate

import (
	"errors"
	"testing"

	"tppsim/internal/lru"
	"tppsim/internal/mem"
	"tppsim/internal/tier"
	"tppsim/internal/vmstat"
	"tppsim/internal/xrand"
)

type fixture struct {
	store *mem.Store
	topo  *tier.Topology
	vecs  []*lru.Vec
	stat  *vmstat.NodeStats
	eng   *Engine
}

func newFixture(t *testing.T, cfg Config, localPages, cxlPages uint64) *fixture {
	t.Helper()
	topo, err := tier.NewCXLSystem(tier.Config{LocalPages: localPages, CXLPages: cxlPages})
	if err != nil {
		t.Fatal(err)
	}
	store := mem.NewStore(int(localPages + cxlPages))
	vecs := []*lru.Vec{lru.NewVec(store), lru.NewVec(store)}
	stat := vmstat.NewNodeStats(topo.NumNodes())
	eng := NewEngine(cfg, store, topo, vecs, stat, xrand.New(1))
	return &fixture{store: store, topo: topo, vecs: vecs, stat: stat, eng: eng}
}

// allocOn places a fresh page of type pt on node id, on the LRU.
func (f *fixture) allocOn(t *testing.T, id mem.NodeID, pt mem.PageType, active bool) mem.PFN {
	t.Helper()
	if !f.topo.Node(id).Acquire(pt) {
		t.Fatal("node full in fixture")
	}
	pfn := f.store.Alloc(pt, id)
	f.vecs[id].Add(pfn, active)
	return pfn
}

func TestDemotionMovesPage(t *testing.T) {
	f := newFixture(t, Config{RefsFailProb: -1}, 100, 100)
	pfn := f.allocOn(t, 0, mem.File, false)
	cost, err := f.eng.Migrate(pfn, 1, Demotion)
	if err != nil {
		t.Fatal(err)
	}
	if cost != 3_000 {
		t.Fatalf("cost = %v", cost)
	}
	pg := f.store.Page(pfn)
	if pg.Node != 1 {
		t.Fatal("page node not updated")
	}
	if !pg.Flags.Has(mem.PGDemoted) {
		t.Fatal("PG_demoted not set")
	}
	if pg.Flags.Has(mem.PGActive) {
		t.Fatal("demoted page landed active")
	}
	if f.vecs[1].Size(lru.InactiveFile) != 1 || f.vecs[0].TotalSize() != 0 {
		t.Fatal("LRU membership wrong after demotion")
	}
	if f.topo.Node(0).Resident() != 0 || f.topo.Node(1).Resident() != 1 {
		t.Fatal("node accounting wrong")
	}
	if f.stat.Get(vmstat.PgdemoteFile) != 1 || f.stat.Get(vmstat.PgmigrateSuccess) != 1 {
		t.Fatal("counters wrong")
	}
}

func TestPromotionClearsDemotedAndCountsPingPong(t *testing.T) {
	f := newFixture(t, Config{RefsFailProb: -1}, 100, 100)
	pfn := f.allocOn(t, 0, mem.Anon, false)
	if _, err := f.eng.Migrate(pfn, 1, Demotion); err != nil {
		t.Fatal(err)
	}
	if _, err := f.eng.Migrate(pfn, 0, Promotion); err != nil {
		t.Fatal(err)
	}
	pg := f.store.Page(pfn)
	if pg.Flags.Has(mem.PGDemoted) {
		t.Fatal("PG_demoted survived promotion")
	}
	if !pg.Flags.Has(mem.PGActive) {
		t.Fatal("promoted page not on active list")
	}
	if f.stat.Get(vmstat.PgpromoteDemoted) != 1 {
		t.Fatal("ping-pong not counted")
	}
	if f.stat.Get(vmstat.PgpromoteSuccess) != 1 || f.stat.Get(vmstat.PgpromoteAnon) != 1 {
		t.Fatal("promotion counters wrong")
	}
}

func TestPromotionWithoutDemotionNoPingPong(t *testing.T) {
	f := newFixture(t, Config{RefsFailProb: -1}, 100, 100)
	pfn := f.allocOn(t, 1, mem.Anon, true)
	if _, err := f.eng.Migrate(pfn, 0, Promotion); err != nil {
		t.Fatal(err)
	}
	if f.stat.Get(vmstat.PgpromoteDemoted) != 0 {
		t.Fatal("spurious ping-pong count")
	}
}

func TestTargetFull(t *testing.T) {
	f := newFixture(t, Config{RefsFailProb: -1}, 100, 1)
	// Fill the CXL node.
	f.allocOn(t, 1, mem.Anon, false)
	pfn := f.allocOn(t, 0, mem.File, false)
	_, err := f.eng.Migrate(pfn, 1, Demotion)
	if !errors.Is(err, ErrTargetFull) {
		t.Fatalf("err = %v, want ErrTargetFull", err)
	}
	// Page must be back on its source LRU, unharmed.
	pg := f.store.Page(pfn)
	if pg.Node != 0 || !pg.Flags.Has(mem.PGOnLRU) || pg.Flags.Has(mem.PGIsolated) {
		t.Fatalf("failed migration corrupted page: %+v", pg)
	}
	if f.vecs[0].Size(lru.InactiveFile) != 1 {
		t.Fatal("page not put back")
	}
	if f.stat.Get(vmstat.PgmigrateFail) != 1 || f.stat.Get(vmstat.PgdemoteFail) != 1 {
		t.Fatal("failure counters wrong")
	}
}

func TestPromotionFailLowMemCounter(t *testing.T) {
	f := newFixture(t, Config{RefsFailProb: -1}, 1, 100)
	f.allocOn(t, 0, mem.Anon, false) // fill local
	pfn := f.allocOn(t, 1, mem.Anon, true)
	_, err := f.eng.Migrate(pfn, 0, Promotion)
	if !errors.Is(err, ErrTargetFull) {
		t.Fatalf("err = %v", err)
	}
	if f.stat.Get(vmstat.PromoteFailLowMem) != 1 {
		t.Fatal("promote_fail_low_memory not counted")
	}
}

func TestWatermarkGuard(t *testing.T) {
	f := newFixture(t, Config{RefsFailProb: -1, WatermarkGuard: true}, 1000, 1000)
	// Fill local down to exactly the min watermark.
	local := f.topo.Node(0)
	for local.Free() > local.WM.Min {
		f.allocOn(t, 0, mem.Anon, false)
	}
	pfn := f.allocOn(t, 1, mem.Anon, true)
	if _, err := f.eng.Migrate(pfn, 0, Promotion); !errors.Is(err, ErrTargetFull) {
		t.Fatalf("watermark guard did not refuse: %v", err)
	}
}

func TestUnevictableRefused(t *testing.T) {
	f := newFixture(t, Config{RefsFailProb: -1}, 10, 10)
	pfn := f.allocOn(t, 0, mem.Anon, false)
	f.store.Page(pfn).Flags = f.store.Page(pfn).Flags.Set(mem.PGUnevictable)
	if _, err := f.eng.Migrate(pfn, 1, Demotion); !errors.Is(err, ErrBusy) {
		t.Fatalf("unevictable migrated: %v", err)
	}
}

func TestOffLRURefused(t *testing.T) {
	f := newFixture(t, Config{RefsFailProb: -1}, 10, 10)
	f.topo.Node(0).Acquire(mem.Anon)
	pfn := f.store.Alloc(mem.Anon, 0) // never added to LRU
	if _, err := f.eng.Migrate(pfn, 1, Demotion); !errors.Is(err, ErrBusy) {
		t.Fatalf("off-LRU page migrated: %v", err)
	}
}

func TestSameNodeRejected(t *testing.T) {
	f := newFixture(t, Config{RefsFailProb: -1}, 10, 10)
	pfn := f.allocOn(t, 0, mem.Anon, false)
	if _, err := f.eng.Migrate(pfn, 0, Promotion); err == nil {
		t.Fatal("same-node migration accepted")
	}
}

func TestRefsFailureInjection(t *testing.T) {
	f := newFixture(t, Config{RefsFailProb: 1}, 10, 10) // always fail
	pfn := f.allocOn(t, 0, mem.Anon, false)
	if _, err := f.eng.Migrate(pfn, 1, Demotion); !errors.Is(err, ErrRefs) {
		t.Fatalf("err = %v, want ErrRefs", err)
	}
	// Page restored.
	if !f.store.Page(pfn).Flags.Has(mem.PGOnLRU) {
		t.Fatal("page lost after refs failure")
	}
}

func TestWindowAccounting(t *testing.T) {
	f := newFixture(t, Config{RefsFailProb: -1}, 100, 100)
	for i := 0; i < 5; i++ {
		pfn := f.allocOn(t, 0, mem.Anon, false)
		if _, err := f.eng.Migrate(pfn, 1, Demotion); err != nil {
			t.Fatal(err)
		}
	}
	if f.eng.MovedPages() != 5 {
		t.Fatal("MovedPages wrong")
	}
	if f.eng.TakeWindow() != 5 {
		t.Fatal("TakeWindow wrong")
	}
	if f.eng.TakeWindow() != 0 {
		t.Fatal("window not reset")
	}
	if f.eng.MovedPages() != 5 {
		t.Fatal("MovedPages reset by TakeWindow")
	}
}

// Invariant: migration conserves pages — total resident across nodes is
// unchanged by any outcome.
func TestConservation(t *testing.T) {
	f := newFixture(t, Config{RefsFailProb: 0.5}, 50, 5)
	rng := xrand.New(99)
	var pfns []mem.PFN
	for i := 0; i < 40; i++ {
		pfns = append(pfns, f.allocOn(t, 0, mem.Anon, rng.Bool(0.5)))
	}
	for i := 0; i < 4; i++ {
		pfns = append(pfns, f.allocOn(t, 1, mem.Anon, true))
	}
	total := f.topo.Node(0).Resident() + f.topo.Node(1).Resident()
	for i := 0; i < 500; i++ {
		pfn := pfns[rng.Intn(len(pfns))]
		pg := f.store.Page(pfn)
		if pg.Node == 0 {
			f.eng.Migrate(pfn, 1, Demotion)
		} else {
			f.eng.Migrate(pfn, 0, Promotion)
		}
		if got := f.topo.Node(0).Resident() + f.topo.Node(1).Resident(); got != total {
			t.Fatalf("pages not conserved: %d != %d at step %d", got, total, i)
		}
	}
	for id := 0; id < 2; id++ {
		if err := f.vecs[id].CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}
