// Package migrate implements the page-migration engine both TPP paths use:
// demotion of cold pages from local DRAM to CXL-Memory (§5.1) and
// promotion of trapped hot pages back up (§5.3). It mirrors the kernel's
// migrate_pages() contract: isolate the page from its LRU, reserve space
// on the destination, move it, and put it back on the destination's LRU —
// with explicit failure reasons (destination low on memory, abnormal page
// references, isolation failure) that feed the §5.5 observability
// counters.
//
// The engine also tracks moved bytes per window so experiments can verify
// the paper's §7 claim that steady-state migration traffic is only
// 4–16 MB/s, far below CXL link bandwidth.
package migrate

import (
	"errors"
	"fmt"

	"tppsim/internal/lru"
	"tppsim/internal/mem"
	"tppsim/internal/probe"
	"tppsim/internal/tier"
	"tppsim/internal/vmstat"
	"tppsim/internal/xrand"
)

// Reason says why a migration is happening; it selects destination LRU
// placement and PG_demoted handling.
type Reason uint8

const (
	// Demotion moves a reclaim victim down a tier. The page lands on the
	// destination's *inactive* list (it was cold) and PG_demoted is set.
	Demotion Reason = iota
	// Promotion moves a hot page up a tier. The page lands on the
	// destination's *active* list; PG_demoted is cleared, and if it was
	// set the move counts as ping-pong traffic (§5.5).
	Promotion
)

// Errors returned by Migrate, matching the paper's failure taxonomy.
var (
	// ErrTargetFull: the destination node has no free page (§5.3's
	// "local node having low memory" promotion failure; for demotion,
	// §5.1's fall-back-to-reclaim trigger).
	ErrTargetFull = errors.New("migrate: destination node full")
	// ErrBusy: the page could not be isolated from its LRU (already
	// isolated by a concurrent path) or is unevictable.
	ErrBusy = errors.New("migrate: page busy or unevictable")
	// ErrRefs: abnormal references held the page (injected with a small
	// probability to exercise the failure counters).
	ErrRefs = errors.New("migrate: abnormal page references")
)

// Config tunes the engine.
type Config struct {
	// PerPageNs is the CPU cost of moving one 4 KB page (unmap, copy,
	// remap). Default 3 µs.
	PerPageNs float64
	// RefsFailProb injects ErrRefs with this probability per attempt,
	// modeling transient reference pins. Default 0.002.
	RefsFailProb float64
	// WatermarkGuard, when true, refuses migrations that would push the
	// destination below its min watermark rather than only when the node
	// is completely full. This keeps a promotion from eating the
	// emergency reserve.
	WatermarkGuard bool
	// HugeCostFactor scales PerPageNs into the cost of moving one 2 MB
	// frame as a unit in huge-page mode (remap at PMD granularity plus
	// the 512-page copy, amortized far below 512 separate moves).
	// Default 8, ~24 µs per frame at the default PerPageNs.
	HugeCostFactor float64
}

// FaultHook lets the fault-injection plane veto migration attempts.
// OnMigrateAttempt is consulted once per attempt, after the page is
// isolated and before the transient-reference roll; a non-nil error
// fails the attempt (the engine putbacks the page, charges the
// pgmigrate_fail-family counters to src, and returns the hook's error).
// OnMigrateSuccess lets the hook clear per-page retry state.
type FaultHook interface {
	OnMigrateAttempt(pfn mem.PFN, src, dest mem.NodeID, promotion bool) error
	OnMigrateSuccess(pfn mem.PFN)
}

// Engine performs migrations over a machine's store/topology/LRU vectors.
type Engine struct {
	cfg   Config
	store *mem.Store
	topo  *tier.Topology
	vecs  []*lru.Vec
	stat  *vmstat.NodeStats
	rng   *xrand.RNG

	// probes is the machine's probe plane (nil = no probing): successful
	// migrations observe their cost into the direction's histogram and
	// fire the demote/promote tracepoints.
	probes *probe.Probes

	// faults is the fault plane's migration hook (nil = no injection).
	faults FaultHook

	movedPages  uint64 // total pages successfully moved
	windowPages uint64 // pages moved since last TakeWindow

	// Per-node cascade accounting: demotions landing on a node and
	// promotions leaving it, indexed by NodeID. Experiments and the
	// multitier example read these to show traffic per hop.
	demotedInto  []uint64
	promotedFrom []uint64

	// framePages is the base pages moved per PFN: 1 normally,
	// mem.HugeFramePages in huge-page mode, where one migration moves a
	// whole 2 MB frame (one charge, page-denominated counters scaled).
	framePages uint64
}

// NewEngine returns a migration engine. vecs must be indexed by NodeID.
func NewEngine(cfg Config, store *mem.Store, topo *tier.Topology, vecs []*lru.Vec, stat *vmstat.NodeStats, rng *xrand.RNG) *Engine {
	if cfg.PerPageNs == 0 {
		cfg.PerPageNs = 3_000
	}
	if cfg.RefsFailProb == 0 {
		cfg.RefsFailProb = 0.002
	}
	if cfg.HugeCostFactor == 0 {
		cfg.HugeCostFactor = 8
	}
	return &Engine{
		cfg: cfg, store: store, topo: topo, vecs: vecs, stat: stat, rng: rng,
		demotedInto:  make([]uint64, topo.NumNodes()),
		promotedFrom: make([]uint64, topo.NumNodes()),
		framePages:   1,
	}
}

// SetFramePages sets the base pages each PFN covers (a machine
// property, set once by the simulator before any migration).
func (e *Engine) SetFramePages(fp uint64) { e.framePages = fp }

// moveCost returns the charge for migrating one PFN: PerPageNs for a
// base page, the amortized whole-frame cost in huge-page mode.
func (e *Engine) moveCost() float64 {
	if e.framePages == 1 {
		return e.cfg.PerPageNs
	}
	return e.cfg.PerPageNs * e.cfg.HugeCostFactor
}

// SetProbes attaches the machine's probe plane (nil detaches).
func (e *Engine) SetProbes(p *probe.Probes) { e.probes = p }

// SetFaultHook attaches the fault plane's migration hook (nil
// detaches; the simulator detaches it around emergency evacuation so
// injected failures cannot block an offlining node from draining).
func (e *Engine) SetFaultHook(h FaultHook) { e.faults = h }

// DemotedInto returns how many pages have been demoted onto the node.
func (e *Engine) DemotedInto(id mem.NodeID) uint64 { return e.demotedInto[id] }

// PromotedFrom returns how many pages have been promoted off the node.
func (e *Engine) PromotedFrom(id mem.NodeID) uint64 { return e.promotedFrom[id] }

// PerPageCost returns the configured per-page migration cost in ns.
func (e *Engine) PerPageCost() float64 { return e.cfg.PerPageNs }

// MovedPages returns the total number of pages migrated since creation.
func (e *Engine) MovedPages() uint64 { return e.movedPages }

// TakeWindow returns the number of pages migrated since the previous call
// and resets the window, for bandwidth-rate reporting.
func (e *Engine) TakeWindow() uint64 {
	n := e.windowPages
	e.windowPages = 0
	return n
}

// Migrate moves pfn to node dest for the given reason. On success it
// returns the CPU cost in ns. On failure the page is left exactly where it
// was (putback performed if isolation had succeeded).
func (e *Engine) Migrate(pfn mem.PFN, dest mem.NodeID, reason Reason) (costNs float64, err error) {
	pg := e.store.Page(pfn)
	src := pg.Node
	if src == dest {
		return 0, fmt.Errorf("migrate: page %d already on node %d", pfn, dest)
	}
	if pg.Flags.Has(mem.PGUnevictable) {
		return 0, ErrBusy
	}
	// Fault plane: refuse migration onto an offline node. Callers that
	// cached their demotion cascade before the node died (AutoTiering
	// snapshots targets at construction) treat ErrTargetFull as
	// "advance the cascade", which reroutes them around it.
	if !e.topo.Online(dest) {
		e.fail(src, reason)
		if reason == Promotion {
			e.stat.Inc(src, vmstat.PromoteFailLowMem)
		}
		return 0, ErrTargetFull
	}

	// Step 1: isolate from the source LRU.
	if !e.vecs[src].Isolate(pfn) {
		e.fail(src, reason)
		return 0, ErrBusy
	}

	// Step 1b: injected transient failures (fault plane).
	if e.faults != nil {
		if ferr := e.faults.OnMigrateAttempt(pfn, src, dest, reason == Promotion); ferr != nil {
			e.vecs[src].Putback(pfn)
			e.fail(src, reason)
			return 0, ferr
		}
	}

	// Step 2: transient reference failures.
	if e.rng.Bool(e.cfg.RefsFailProb) {
		e.vecs[src].Putback(pfn)
		e.fail(src, reason)
		if reason == Promotion {
			e.stat.Inc(src, vmstat.PromoteFailRefs)
		}
		return 0, ErrRefs
	}

	// Step 3: reserve space on the destination.
	dn := e.topo.Node(dest)
	full := dn.Free() == 0
	if !full && e.cfg.WatermarkGuard && dn.Free() <= dn.WM.Min {
		full = true
	}
	if full || !dn.AcquireN(pg.Type, e.framePages) {
		e.vecs[src].Putback(pfn)
		e.fail(src, reason)
		if reason == Promotion {
			e.stat.Inc(src, vmstat.PromoteFailLowMem)
		}
		return 0, ErrTargetFull
	}

	// Step 4: move. Page-denominated counters charge every base page the
	// PFN covers (fp base pages per frame in huge mode).
	fp := e.framePages
	if fp == 1 {
		e.topo.Node(src).Release(pg.Type)
	} else {
		e.topo.Node(src).ReleaseN(pg.Type, fp)
	}
	pg.Node = dest
	switch reason {
	case Demotion:
		pg.Flags = pg.Flags.Set(mem.PGDemoted)
		// Demoted pages arrive cold: inactive list, referenced cleared so
		// the CXL node's LRU starts aging them fresh.
		pg.Flags = pg.Flags.Clear(mem.PGReferenced)
		e.vecs[dest].Add(pfn, false)
		if pg.Type.IsFileLike() {
			e.stat.Add(src, vmstat.PgdemoteFile, fp)
		} else {
			e.stat.Add(src, vmstat.PgdemoteAnon, fp)
		}
		e.demotedInto[dest] += fp
		if e.topo.TierOf(dest) >= 2 {
			e.stat.Add(dest, vmstat.PgdemoteFar, fp)
		}
	case Promotion:
		if pg.Flags.Has(mem.PGDemoted) {
			// Ping-pong: a demoted page came straight back (§5.5).
			e.stat.Add(dest, vmstat.PgpromoteDemoted, fp)
		}
		pg.Flags = pg.Flags.Clear(mem.PGDemoted)
		e.vecs[dest].Add(pfn, true)
		if pg.Type.IsFileLike() {
			e.stat.Add(dest, vmstat.PgpromoteFile, fp)
		} else {
			e.stat.Add(dest, vmstat.PgpromoteAnon, fp)
		}
		e.stat.Add(dest, vmstat.PgpromoteSuccess, fp)
		e.promotedFrom[src] += fp
		if e.topo.TierOf(src) >= 2 {
			e.stat.Add(src, vmstat.PgpromoteFar, fp)
		}
	}
	e.stat.Add(dest, vmstat.PgmigrateSuccess, fp)
	if fp > 1 {
		// The whole frame moved as one unit — the THP stayed intact
		// across the move (the collapse-preserving path).
		e.stat.Inc(dest, vmstat.ThpCollapse)
	}
	e.movedPages += fp
	e.windowPages += fp
	if e.faults != nil {
		e.faults.OnMigrateSuccess(pfn)
	}
	cost := e.moveCost()
	if p := e.probes; p != nil {
		promo := reason == Promotion
		if p.Lat != nil {
			if promo {
				p.Lat.Promote.ObserveFloat(cost)
			} else {
				p.Lat.Demote.ObserveFloat(cost)
			}
		}
		hook := &p.OnDemote
		if promo {
			hook = &p.OnPromote
		}
		if hook.Active() {
			hook.Fire(probe.MigrateEvent{
				PFN: uint64(pfn), Src: int(src), Dst: int(dest),
				Promotion: promo, CostNs: cost,
			})
		}
	}
	return cost, nil
}

func (e *Engine) fail(src mem.NodeID, reason Reason) {
	// pgmigrate_fail is page-denominated like pgmigrate_success: a failed
	// frame move charges every base page that failed to move.
	e.stat.Add(src, vmstat.PgmigrateFail, e.framePages)
	if reason == Demotion {
		e.stat.Add(src, vmstat.PgdemoteFail, e.framePages)
	}
}
