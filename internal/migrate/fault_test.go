package migrate

import (
	"errors"
	"testing"

	"tppsim/internal/lru"
	"tppsim/internal/mem"
	"tppsim/internal/tier"
	"tppsim/internal/vmstat"
	"tppsim/internal/xrand"
)

// newExpanderFixture builds the 3-tier multi-hop machine (local DRAM,
// near CXL, far CXL) so failure attribution can be checked across
// far-tier hops, not just the 2-node box.
func newExpanderFixture(t *testing.T, cfg Config) *fixture {
	t.Helper()
	topo, err := tier.PresetExpander(2, 1, 1).Build(400, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	store := mem.NewStore(int(topo.TotalCapacity()))
	vecs := make([]*lru.Vec, topo.NumNodes())
	for i := range vecs {
		vecs[i] = lru.NewVec(store)
	}
	stat := vmstat.NewNodeStats(topo.NumNodes())
	eng := NewEngine(cfg, store, topo, vecs, stat, xrand.New(1))
	return &fixture{store: store, topo: topo, vecs: vecs, stat: stat, eng: eng}
}

// failHook is a FaultHook that fails every attempt with a fixed error
// and records what it was consulted with.
type failHook struct {
	err       error
	attempts  int
	lastSrc   mem.NodeID
	lastDest  mem.NodeID
	lastProm  bool
	successes int
}

func (h *failHook) OnMigrateAttempt(pfn mem.PFN, src, dest mem.NodeID, promotion bool) error {
	h.attempts++
	h.lastSrc, h.lastDest, h.lastProm = src, dest, promotion
	return h.err
}

func (h *failHook) OnMigrateSuccess(mem.PFN) { h.successes++ }

// TestDemoteFailureChargedToSource pins failure attribution for
// demotions: pgmigrate_fail and pgdemote_fail land on the SOURCE node
// (the node that tried to shed the page), never on the destination.
func TestDemoteFailureChargedToSource(t *testing.T) {
	f := newFixture(t, Config{RefsFailProb: -1}, 100, 1)
	f.allocOn(t, 1, mem.Anon, false) // fill the CXL node
	pfn := f.allocOn(t, 0, mem.File, false)
	if _, err := f.eng.Migrate(pfn, 1, Demotion); !errors.Is(err, ErrTargetFull) {
		t.Fatalf("err = %v, want ErrTargetFull", err)
	}
	if got := f.stat.GetNode(0, vmstat.PgmigrateFail); got != 1 {
		t.Errorf("source pgmigrate_fail = %d, want 1", got)
	}
	if got := f.stat.GetNode(0, vmstat.PgdemoteFail); got != 1 {
		t.Errorf("source pgdemote_fail = %d, want 1", got)
	}
	if got := f.stat.GetNode(1, vmstat.PgmigrateFail) + f.stat.GetNode(1, vmstat.PgdemoteFail); got != 0 {
		t.Errorf("destination charged %d failure counts, want 0", got)
	}
}

// TestPromoteFailureChargedToSource pins the same attribution for
// promotions: pgmigrate_fail and promote_fail_low_memory land on the
// source (the CXL node holding the trapped page).
func TestPromoteFailureChargedToSource(t *testing.T) {
	f := newFixture(t, Config{RefsFailProb: -1}, 1, 100)
	f.allocOn(t, 0, mem.Anon, false) // fill local
	pfn := f.allocOn(t, 1, mem.Anon, true)
	if _, err := f.eng.Migrate(pfn, 0, Promotion); !errors.Is(err, ErrTargetFull) {
		t.Fatalf("err = %v, want ErrTargetFull", err)
	}
	if got := f.stat.GetNode(1, vmstat.PgmigrateFail); got != 1 {
		t.Errorf("source pgmigrate_fail = %d, want 1", got)
	}
	if got := f.stat.GetNode(1, vmstat.PromoteFailLowMem); got != 1 {
		t.Errorf("source promote_fail_low_memory = %d, want 1", got)
	}
	if got := f.stat.GetNode(0, vmstat.PgmigrateFail) + f.stat.GetNode(0, vmstat.PromoteFailLowMem); got != 0 {
		t.Errorf("destination charged %d failure counts, want 0", got)
	}
	// pgdemote_fail is a demotion counter; a failed promotion must not
	// touch it anywhere.
	if got := f.stat.Get(vmstat.PgdemoteFail); got != 0 {
		t.Errorf("failed promotion charged pgdemote_fail = %d", got)
	}
}

// TestRefsFailureAttribution covers the transient-reference failure
// path: promote_fail_refs on the source for promotions, only the
// generic counters for demotions.
func TestRefsFailureAttribution(t *testing.T) {
	f := newFixture(t, Config{RefsFailProb: 1}, 100, 100)
	pfn := f.allocOn(t, 1, mem.Anon, true)
	if _, err := f.eng.Migrate(pfn, 0, Promotion); !errors.Is(err, ErrRefs) {
		t.Fatalf("err = %v, want ErrRefs", err)
	}
	if got := f.stat.GetNode(1, vmstat.PromoteFailRefs); got != 1 {
		t.Errorf("source promote_fail_refs = %d, want 1", got)
	}
	if got := f.stat.GetNode(0, vmstat.PromoteFailRefs); got != 0 {
		t.Errorf("destination promote_fail_refs = %d, want 0", got)
	}
}

// TestFarTierFailureAttribution exercises the failure counters on the
// 3-tier expander: a failed far→near promotion charges the FAR node,
// and a successful one counts pgpromote_far on the far (source) node —
// while a near→far demotion failure charges the NEAR node and its
// success counts pgdemote_far on the far (destination) node.
func TestFarTierFailureAttribution(t *testing.T) {
	f := newExpanderFixture(t, Config{RefsFailProb: -1})
	near := f.topo.Node(1)

	// Fill the near node so a far→near promotion fails with low memory.
	for near.Free() > 0 {
		f.allocOn(t, 1, mem.Anon, false)
	}
	trapped := f.allocOn(t, 2, mem.Anon, true)
	if _, err := f.eng.Migrate(trapped, 1, Promotion); !errors.Is(err, ErrTargetFull) {
		t.Fatalf("far promotion: err = %v, want ErrTargetFull", err)
	}
	if got := f.stat.GetNode(2, vmstat.PgmigrateFail); got != 1 {
		t.Errorf("far-node pgmigrate_fail = %d, want 1", got)
	}
	if got := f.stat.GetNode(2, vmstat.PromoteFailLowMem); got != 1 {
		t.Errorf("far-node promote_fail_low_memory = %d, want 1", got)
	}
	if got := f.stat.GetNode(1, vmstat.PgmigrateFail); got != 0 {
		t.Errorf("near-node charged the far node's failure: pgmigrate_fail = %d", got)
	}

	// Promote straight to local instead: success, pgpromote_far on the
	// far source.
	if _, err := f.eng.Migrate(trapped, 0, Promotion); err != nil {
		t.Fatalf("far→local promotion: %v", err)
	}
	if got := f.stat.GetNode(2, vmstat.PgpromoteFar); got != 1 {
		t.Errorf("far-node pgpromote_far = %d, want 1", got)
	}

	// Demote a near page to the far tier: pgdemote_far lands on the far
	// destination.
	victim := f.vecs[1].Tail(lru.InactiveAnon)
	if victim == mem.NilPFN {
		t.Fatal("no near-node victim")
	}
	if _, err := f.eng.Migrate(victim, 2, Demotion); err != nil {
		t.Fatalf("near→far demotion: %v", err)
	}
	if got := f.stat.GetNode(2, vmstat.PgdemoteFar); got != 1 {
		t.Errorf("far-node pgdemote_far = %d, want 1", got)
	}
	// The demotion family counters (pgdemote_anon) stay on the source.
	if got := f.stat.GetNode(1, vmstat.PgdemoteAnon); got != 1 {
		t.Errorf("near-node pgdemote_anon = %d, want 1", got)
	}
}

// TestFaultHookFailureAttribution pins the fault-plane hook contract:
// a hook veto putbacks the page, returns the hook's error verbatim,
// and charges the pgmigrate_fail family to the source node.
func TestFaultHookFailureAttribution(t *testing.T) {
	f := newFixture(t, Config{RefsFailProb: -1}, 100, 100)
	sentinel := errors.New("injected")
	hook := &failHook{err: sentinel}
	f.eng.SetFaultHook(hook)

	pfn := f.allocOn(t, 0, mem.File, false)
	if _, err := f.eng.Migrate(pfn, 1, Demotion); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the hook's error", err)
	}
	if hook.attempts != 1 || hook.lastSrc != 0 || hook.lastDest != 1 || hook.lastProm {
		t.Errorf("hook consulted with %+v", hook)
	}
	pg := f.store.Page(pfn)
	if pg.Node != 0 || !pg.Flags.Has(mem.PGOnLRU) || pg.Flags.Has(mem.PGIsolated) {
		t.Fatalf("hook failure corrupted page: %+v", pg)
	}
	if got := f.stat.GetNode(0, vmstat.PgmigrateFail); got != 1 {
		t.Errorf("source pgmigrate_fail = %d, want 1", got)
	}
	if got := f.stat.GetNode(0, vmstat.PgdemoteFail); got != 1 {
		t.Errorf("source pgdemote_fail = %d, want 1", got)
	}

	// Detach: the same migration now succeeds and the old hook hears
	// nothing.
	f.eng.SetFaultHook(nil)
	if _, err := f.eng.Migrate(pfn, 1, Demotion); err != nil {
		t.Fatalf("after detach: %v", err)
	}
	if hook.successes != 0 {
		t.Error("detached hook still consulted")
	}

	// Reattached with a nil error, the hook sees successes.
	hook.err = nil
	f.eng.SetFaultHook(hook)
	if _, err := f.eng.Migrate(pfn, 0, Promotion); err != nil {
		t.Fatalf("promotion with passing hook: %v", err)
	}
	if hook.successes != 1 || !hook.lastProm {
		t.Errorf("hook success path: %+v", hook)
	}
}

// TestOfflineDestinationBackstop pins the graceful-degradation contract
// for callers with cached cascades (AutoTiering): migrating onto an
// offline node fails as ErrTargetFull — "advance the cascade" — with
// the failure charged to the source.
func TestOfflineDestinationBackstop(t *testing.T) {
	f := newExpanderFixture(t, Config{RefsFailProb: -1})
	f.topo.SetOffline(2, true)
	pfn := f.allocOn(t, 1, mem.Anon, false)
	if _, err := f.eng.Migrate(pfn, 2, Demotion); !errors.Is(err, ErrTargetFull) {
		t.Fatalf("err = %v, want ErrTargetFull", err)
	}
	if got := f.stat.GetNode(1, vmstat.PgmigrateFail); got != 1 {
		t.Errorf("source pgmigrate_fail = %d, want 1", got)
	}
	// Promotion onto an offline node also counts the low-memory reason.
	f.topo.SetOffline(2, false)
	f.topo.SetOffline(1, true)
	trapped := f.allocOn(t, 2, mem.Anon, true)
	if _, err := f.eng.Migrate(trapped, 1, Promotion); !errors.Is(err, ErrTargetFull) {
		t.Fatalf("promotion err = %v, want ErrTargetFull", err)
	}
	if got := f.stat.GetNode(2, vmstat.PromoteFailLowMem); got != 1 {
		t.Errorf("source promote_fail_low_memory = %d, want 1", got)
	}
}
