package pagetable

import (
	"testing"
	"testing/quick"

	"tppsim/internal/mem"
)

func TestMmapRegionsDisjoint(t *testing.T) {
	as := New(1)
	r1 := as.Mmap(100, mem.Anon)
	r2 := as.Mmap(50, mem.File)
	if r1.End() > r2.Start {
		t.Fatalf("regions overlap: %+v %+v", r1, r2)
	}
	if !r1.Contains(r1.Start) || r1.Contains(r1.End()) {
		t.Fatal("Contains boundary wrong")
	}
	if len(as.Regions()) != 2 {
		t.Fatal("region list wrong")
	}
}

func TestMapTranslateUnmap(t *testing.T) {
	as := New(1)
	r := as.Mmap(10, mem.Anon)
	as.MapPage(r.Start, 42)
	pfn, ok := as.Translate(r.Start)
	if !ok || pfn != 42 {
		t.Fatalf("Translate = %d,%v", pfn, ok)
	}
	if _, ok := as.Translate(r.Start + 1); ok {
		t.Fatal("unmapped VPN translated")
	}
	got, ok := as.UnmapPage(r.Start)
	if !ok || got != 42 {
		t.Fatal("UnmapPage wrong")
	}
	if as.Mapped() != 0 {
		t.Fatal("Mapped count wrong")
	}
}

func TestDoubleMapPanics(t *testing.T) {
	as := New(1)
	r := as.Mmap(1, mem.Anon)
	as.MapPage(r.Start, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("double map did not panic")
		}
	}()
	as.MapPage(r.Start, 2)
}

func TestMunmapReturnsMappedPFNs(t *testing.T) {
	as := New(1)
	r := as.Mmap(5, mem.File)
	as.MapPage(r.Start, 10)
	as.MapPage(r.Start+2, 12)
	pfns := as.Munmap(r)
	if len(pfns) != 2 {
		t.Fatalf("Munmap returned %d PFNs, want 2", len(pfns))
	}
	seen := map[mem.PFN]bool{}
	for _, p := range pfns {
		seen[p] = true
	}
	if !seen[10] || !seen[12] {
		t.Fatalf("Munmap PFNs wrong: %v", pfns)
	}
	if as.Mapped() != 0 || len(as.Regions()) != 0 {
		t.Fatal("Munmap left state behind")
	}
}

func TestMunmapUnknownPanics(t *testing.T) {
	as := New(1)
	defer func() {
		if recover() == nil {
			t.Fatal("munmap of unknown region did not panic")
		}
	}()
	as.Munmap(Region{Start: 1, Pages: 1})
}

func TestRegionOf(t *testing.T) {
	as := New(1)
	r1 := as.Mmap(10, mem.Anon)
	r2 := as.Mmap(10, mem.Tmpfs)
	got, ok := as.RegionOf(r2.Start + 5)
	if !ok || got.Start != r2.Start || got.Type != mem.Tmpfs {
		t.Fatal("RegionOf wrong")
	}
	if _, ok := as.RegionOf(r1.End()); ok {
		t.Fatal("guard gap resolved to a region")
	}
}

func TestForEachMapped(t *testing.T) {
	as := New(1)
	r := as.Mmap(4, mem.Anon)
	for i := uint64(0); i < 4; i++ {
		as.MapPage(r.Start+VPN(i), mem.PFN(i+100))
	}
	count := 0
	as.ForEachMapped(func(v VPN, pfn mem.PFN) { count++ })
	if count != 4 {
		t.Fatalf("visited %d, want 4", count)
	}
}

func TestReverseMap(t *testing.T) {
	as := New(1)
	r := as.Mmap(4, mem.Anon)
	as.MapPage(r.Start+1, 77)
	v, ok := as.VPNOf(77)
	if !ok || v != r.Start+1 {
		t.Fatalf("VPNOf = %d,%v", v, ok)
	}
	if _, ok := as.VPNOf(78); ok {
		t.Fatal("unknown PFN resolved")
	}
	as.UnmapPage(r.Start + 1)
	if _, ok := as.VPNOf(77); ok {
		t.Fatal("UnmapPage left rmap entry")
	}
}

func TestUnmapPFNEviction(t *testing.T) {
	as := New(1)
	r := as.Mmap(4, mem.Anon)
	as.MapPage(r.Start, 5)
	v, ok := as.UnmapPFN(5, EvictSwap)
	if !ok || v != r.Start {
		t.Fatalf("UnmapPFN = %d,%v", v, ok)
	}
	if as.Evicted(r.Start) != EvictSwap {
		t.Fatal("eviction kind not recorded")
	}
	if as.EvictedCount(EvictSwap) != 1 || as.EvictedCount(EvictNone) != 1 {
		t.Fatal("EvictedCount wrong")
	}
	if _, ok := as.Translate(r.Start); ok {
		t.Fatal("translation survived UnmapPFN")
	}
	// Re-mapping clears the eviction record (swap-in path).
	as.MapPage(r.Start, 6)
	if as.Evicted(r.Start) != EvictNone {
		t.Fatal("MapPage did not clear eviction record")
	}
}

func TestUnmapPFNUnknown(t *testing.T) {
	as := New(1)
	if _, ok := as.UnmapPFN(99, EvictFile); ok {
		t.Fatal("UnmapPFN of unmapped PFN succeeded")
	}
}

func TestMunmapClearsEvicted(t *testing.T) {
	as := New(1)
	r := as.Mmap(2, mem.File)
	as.MapPage(r.Start, 1)
	as.UnmapPFN(1, EvictFile)
	as.Munmap(r)
	if as.EvictedCount(EvictNone) != 0 {
		t.Fatal("Munmap left eviction records")
	}
}

func TestRegionAccessorsNoCopy(t *testing.T) {
	as := New(1)
	r1 := as.Mmap(10, mem.Anon)
	r2 := as.Mmap(20, mem.File)
	if as.NumRegions() != 2 {
		t.Fatalf("NumRegions = %d", as.NumRegions())
	}
	if as.RegionAt(0) != r1 || as.RegionAt(1) != r2 {
		t.Fatal("RegionAt order wrong")
	}
	if as.TotalPages() != 30 {
		t.Fatalf("TotalPages = %d", as.TotalPages())
	}
	var seen []Region
	as.ForEachRegion(func(r Region) bool {
		seen = append(seen, r)
		return true
	})
	if len(seen) != 2 || seen[0] != r1 {
		t.Fatal("ForEachRegion wrong")
	}
	seen = seen[:0]
	as.ForEachRegion(func(r Region) bool {
		seen = append(seen, r)
		return false
	})
	if len(seen) != 1 {
		t.Fatal("ForEachRegion ignored early stop")
	}
	as.Munmap(r1)
	if as.NumRegions() != 1 || as.RegionAt(0) != r2 || as.TotalPages() != 20 {
		t.Fatal("accessors stale after Munmap")
	}
}

func TestTranslateBatchMatchesTranslate(t *testing.T) {
	as := New(1)
	r1 := as.Mmap(100, mem.Anon)
	r2 := as.Mmap(50, mem.File)
	as.MapPage(r1.Start+3, 30)
	as.MapPage(r1.Start+99, 31)
	as.MapPage(r2.Start, 32)
	vs := []VPN{
		r1.Start + 3, r1.Start + 4, r2.Start, r1.Start + 99,
		r1.End() + 1, // guard gap
		VPN(1 << 40), // far beyond the mapped span
	}
	out := make([]mem.PFN, len(vs))
	as.TranslateBatch(vs, out)
	for i, v := range vs {
		pfn, ok := as.Translate(v)
		if !ok {
			pfn = mem.NilPFN
		}
		if out[i] != pfn {
			t.Fatalf("batch[%d] (VPN %d) = %d, Translate = %d", i, v, out[i], pfn)
		}
	}
}

func TestMapPageOutsideRegionPanics(t *testing.T) {
	as := New(1)
	as.Mmap(4, mem.Anon)
	defer func() {
		if recover() == nil {
			t.Fatal("map outside any region did not panic")
		}
	}()
	as.MapPage(VPN(1<<30), 1)
}

func TestEvictedCountTransitions(t *testing.T) {
	as := New(1)
	r := as.Mmap(8, mem.Anon)
	for i := 0; i < 4; i++ {
		as.MapPage(r.Start+VPN(i), mem.PFN(i))
	}
	as.UnmapPFN(0, EvictSwap)
	as.UnmapPFN(1, EvictSwap)
	as.UnmapPFN(2, EvictFile)
	if as.EvictedCount(EvictSwap) != 2 || as.EvictedCount(EvictFile) != 1 || as.EvictedCount(EvictNone) != 3 {
		t.Fatalf("counts = swap %d file %d all %d",
			as.EvictedCount(EvictSwap), as.EvictedCount(EvictFile), as.EvictedCount(EvictNone))
	}
	// Refault clears the record.
	as.MapPage(r.Start, 9)
	if as.EvictedCount(EvictSwap) != 1 || as.EvictedCount(EvictNone) != 2 {
		t.Fatal("MapPage did not decrement eviction counters")
	}
	// Munmap clears the rest.
	as.Munmap(r)
	if as.EvictedCount(EvictNone) != 0 {
		t.Fatal("Munmap left eviction counters")
	}
}

// Property: mapping then unmapping arbitrary distinct VPN sets leaves the
// table empty and returns every PFN exactly once.
func TestMapUnmapProperty(t *testing.T) {
	f := func(offsets []uint16) bool {
		as := New(9)
		r := as.Mmap(1<<16, mem.Anon)
		seen := map[VPN]bool{}
		want := 0
		for i, off := range offsets {
			v := r.Start + VPN(off)
			if seen[v] {
				continue
			}
			seen[v] = true
			as.MapPage(v, mem.PFN(i))
			want++
		}
		if as.Mapped() != want {
			return false
		}
		pfns := as.Munmap(r)
		return len(pfns) == want && as.Mapped() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
