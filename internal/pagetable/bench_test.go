package pagetable

import (
	"testing"

	"tppsim/internal/mem"
	"tppsim/internal/xrand"
)

// benchSpace builds an address space shaped like a running machine: a
// few large static regions plus a cluster of small churn segments, with
// every page mapped.
func benchSpace(b *testing.B) (*AddressSpace, []VPN) {
	b.Helper()
	as := New(1)
	var regions []Region
	regions = append(regions,
		as.Mmap(6000, mem.Tmpfs),
		as.Mmap(1000, mem.Anon),
		as.Mmap(500, mem.File),
	)
	for i := 0; i < 12; i++ {
		regions = append(regions, as.Mmap(34, mem.Anon))
	}
	next := mem.PFN(0)
	var vpns []VPN
	for _, r := range regions {
		for v := r.Start; v < r.End(); v++ {
			as.MapPage(v, next)
			next++
			vpns = append(vpns, v)
		}
	}
	// Access order shaped like the simulator's stream: random across
	// regions, not sequential.
	rng := xrand.New(42)
	for i := len(vpns) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		vpns[i], vpns[j] = vpns[j], vpns[i]
	}
	return as, vpns
}

// BenchmarkTranslate measures the VPN→PFN lookup the access hot path
// performs once per simulated access.
func BenchmarkTranslate(b *testing.B) {
	as, vpns := benchSpace(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pfn, ok := as.Translate(vpns[i%len(vpns)])
		if !ok || pfn == mem.NilPFN {
			b.Fatal("unmapped VPN in benchmark space")
		}
	}
}

// BenchmarkTranslateBatch measures the batched variant the simulator's
// per-tick access loop uses.
func BenchmarkTranslateBatch(b *testing.B) {
	as, vpns := benchSpace(b)
	const batch = 2000
	out := make([]mem.PFN, batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := (i * batch) % (len(vpns) - batch)
		as.TranslateBatch(vpns[off:off+batch], out)
	}
	b.StopTimer()
	if out[0] == mem.NilPFN && out[1] == mem.NilPFN {
		b.Fatal("batch translated nothing")
	}
}

// BenchmarkFaultPath measures the page-table half of a demand fault:
// translate miss, region lookup, eviction-state check, map, and the
// reclaim-side unmap that makes the next fault possible.
func BenchmarkFaultPath(b *testing.B) {
	as := New(1)
	r := as.Mmap(4096, mem.Anon)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := r.Start + VPN(i%4096)
		if _, ok := as.Translate(v); ok {
			b.Fatal("page unexpectedly mapped")
		}
		if _, ok := as.RegionOf(v); !ok {
			b.Fatal("region lost")
		}
		_ = as.Evicted(v)
		pfn := mem.PFN(i % 4096)
		as.MapPage(v, pfn)
		if _, ok := as.UnmapPFN(pfn, EvictSwap); !ok {
			b.Fatal("unmap failed")
		}
	}
}
