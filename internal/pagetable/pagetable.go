// Package pagetable models per-process virtual address spaces: the
// VPN→PFN mapping the workload faults pages into, the region bookkeeping
// (mmap/munmap), and the translation interface Chameleon's Worker uses as
// its /proc/$PID/pagemap analogue (§3 of the paper).
//
// Layout. The address space is flat and slice-backed, in the style of
// memtierd's dense address-range tracking: each region carries a dense
// []mem.PFN translation array plus a packed per-page eviction-state byte,
// and the reverse map is a dense []VPN indexed by PFN (PFNs are allocated
// densely by mem.Store, so the rmap sits logically next to the page
// store). Regions are kept sorted by start address in parallel dense
// starts/ends arrays, and RegionOf/Translate resolve through a coarse
// bucket index over the VPN span (rebuilt on the rare Mmap/Munmap):
// buckets finer than a region hit it directly, boundary buckets fall
// back to a short sorted walk. There are no hash maps anywhere on the
// access path; a one-entry region cache makes consecutive lookups into
// the same region two compares, and TranslateBatch resolves a whole
// access batch with the index state in registers. Eviction-state counts
// are maintained incrementally, so EvictedCount is O(1). Measured
// against the previous map-based design, the simulator's core tick
// (BenchmarkSimTick) runs ~2x faster with ~12x fewer allocated bytes.
//
// NUMA-balancing PTE poisoning is represented by the PGHinted flag on the
// page itself rather than a shadow PTE bit: the simulator has exactly one
// mapping per page, so the two are equivalent.
package pagetable

import (
	"fmt"
	"sort"

	"tppsim/internal/mem"
)

// VPN is a virtual page number within one address space.
type VPN uint64

// nilVPN is the reverse map's "no mapping" sentinel.
const nilVPN = ^VPN(0)

// Region is a contiguous run of virtual pages created by Mmap.
type Region struct {
	Start VPN
	Pages uint64
	Type  mem.PageType
}

// End returns one past the last VPN of the region.
func (r Region) End() VPN { return r.Start + VPN(r.Pages) }

// Contains reports whether the VPN falls inside the region.
func (r Region) Contains(v VPN) bool { return v >= r.Start && v < r.End() }

// EvictKind records why a previously-mapped VPN currently has no
// translation: reclaimed to swap (next access is a major fault that must
// swap the page back in) or a dropped clean file page (next access
// refaults from the backing file).
type EvictKind uint8

const (
	// EvictNone: the VPN has never been populated (or was munmapped);
	// first touch is an ordinary demand-zero / file-read minor fault.
	EvictNone EvictKind = iota
	// EvictSwap: the page was swapped out; refault is a major fault.
	EvictSwap
	// EvictFile: a clean file page was dropped; refault re-reads the file.
	EvictFile
	numEvictKinds
)

// regionState is one region plus its per-page state: the dense VPN→PFN
// translation array and the packed eviction-state byte for pages that
// currently have no translation.
type regionState struct {
	Region
	pfns   []mem.PFN   // index: v - Start; mem.NilPFN = not mapped
	estate []EvictKind // valid only where pfns[i] == mem.NilPFN
	// exts is the extent-mode representation (see extent.go): a sorted,
	// disjoint run list replacing the dense arrays above, which stay nil.
	exts []extent
}

// AddressSpace is one process's page table, including the reverse map
// (PFN→VPN) reclaim needs to unmap victim pages.
type AddressSpace struct {
	PID     int
	regions []regionState // sorted by Start
	starts  []VPN         // starts[i] == regions[i].Start; dense search key
	ends    []VPN         // ends[i] == regions[i].End(); dense bound check
	rmap    []VPN         // indexed by PFN; nilVPN = not mapped here
	nextVPN VPN

	mapped     int
	totalPages uint64
	// gen counts translation removals (UnmapPage/UnmapPFN/Munmap).
	// Batch consumers snapshot it to detect that previously-resolved
	// translations may have been invalidated (e.g. by direct reclaim
	// triggered mid-batch) and must re-resolve.
	gen uint64
	// evictedByKind counts currently-evicted VPNs per EvictKind, so
	// EvictedCount is O(1). Index EvictNone is unused.
	evictedByKind [numEvictKinds]int
	// lastIdx/lastStart/lastEnd cache the most recent lookup's region;
	// consecutive accesses often hit the same region and resolve with
	// two compares and no pointer chase.
	lastIdx   int
	lastStart VPN
	lastEnd   VPN
	// bucket is a coarse VPN→region accelerator. A negative entry
	// -(j+1) means every VPN in the bucket lies inside region j (the
	// common case: buckets are finer than the big regions), so a lookup
	// is a single table read. A non-negative entry j is the index of the
	// first region that could contain a VPN in the bucket, and the
	// lookup walks the dense starts array from there. Rebuilt on
	// Mmap/Munmap (rare) for O(1) hot-path lookups.
	bucket []int32
	shift  uint

	// Extent mode (NewExtent): regions hold sorted extent lists instead
	// of dense per-page arrays, and PFNs address frames of
	// 1<<frameShift base pages (frameShift 0 = per-page extents,
	// mem.HugeFrameShift = 2 MB huge frames). splits/merges count the
	// table's lazy-divergence churn.
	ext        bool
	frameShift uint
	framePages uint64 // 1 << frameShift
	splits     uint64
	merges     uint64
}

// indexBuckets sizes the coarse lookup table; 1024 four-byte entries keep
// it resident in L1 while holding regions-per-bucket near one.
const indexBuckets = 1024

// rebuildIndex recomputes the bucket table after the region list or the
// VPN span changed.
func (as *AddressSpace) rebuildIndex() {
	as.shift = 0
	for (uint64(as.nextVPN) >> as.shift) >= indexBuckets {
		as.shift++
	}
	if as.bucket == nil {
		as.bucket = make([]int32, indexBuckets)
	}
	j := 0
	for k := 0; k < indexBuckets; k++ {
		start := VPN(uint64(k) << as.shift)
		end := VPN(uint64(k+1) << as.shift)
		for j < len(as.regions) && as.regions[j].End() <= start {
			j++
		}
		if j < len(as.regions) && as.regions[j].Start <= start && end <= as.regions[j].End() {
			as.bucket[k] = -int32(j) - 1 // bucket wholly inside region j
		} else {
			as.bucket[k] = int32(j)
		}
	}
	as.lastIdx, as.lastStart, as.lastEnd = 0, 0, 0
}

// New returns an empty address space for the given PID.
func New(pid int) *AddressSpace {
	return &AddressSpace{PID: pid}
}

// Mmap reserves a new region of the given size and page type. Pages are
// not populated; the workload faults them in via MapPage on first touch,
// mirroring demand paging.
func (as *AddressSpace) Mmap(pages uint64, t mem.PageType) Region {
	if as.ext && as.frameShift > 0 {
		// Huge frames: align region starts so every frame's VPN span
		// stays inside one region (a no-op at frameShift 0, keeping the
		// extent table's layout identical to the dense one).
		fp := VPN(as.framePages)
		as.nextVPN = (as.nextVPN + fp - 1) &^ (fp - 1)
	}
	r := Region{Start: as.nextVPN, Pages: pages, Type: t}
	rs := regionState{Region: r}
	if !as.ext {
		rs.pfns = make([]mem.PFN, pages)
		rs.estate = make([]EvictKind, pages)
		for i := range rs.pfns {
			rs.pfns[i] = mem.NilPFN
		}
	}
	// nextVPN only grows, so appending keeps the index sorted by Start.
	as.regions = append(as.regions, rs)
	as.starts = append(as.starts, r.Start)
	as.ends = append(as.ends, r.End())
	as.totalPages += pages
	// Leave a guard gap so regions are never adjacent; catches off-by-one
	// arithmetic in workload generators.
	as.nextVPN += VPN(pages) + 16
	as.rebuildIndex()
	return r
}

// regionIndexOf returns the index of the region containing v, or -1.
func (as *AddressSpace) regionIndexOf(v VPN) int {
	if v >= as.lastStart && v < as.lastEnd {
		return as.lastIdx
	}
	k := uint64(v) >> as.shift
	if k >= indexBuckets || len(as.bucket) == 0 {
		return -1 // beyond the mapped span: no region can contain v
	}
	b := as.bucket[k]
	if b < 0 {
		// Bucket wholly inside one region: direct hit, no walk.
		idx := int(-b) - 1
		as.lastIdx, as.lastStart, as.lastEnd = idx, as.starts[idx], as.ends[idx]
		return idx
	}
	// Walk the dense starts array from the bucket's first candidate to
	// the last region starting at or before v.
	starts := as.starts
	idx := -1
	for j := int(b); j < len(starts) && starts[j] <= v; j++ {
		idx = j
	}
	if idx >= 0 && v < as.ends[idx] {
		as.lastIdx, as.lastStart, as.lastEnd = idx, as.starts[idx], as.ends[idx]
		return idx
	}
	return -1
}

// regionOf returns the region state containing v, or nil.
func (as *AddressSpace) regionOf(v VPN) *regionState {
	if i := as.regionIndexOf(v); i >= 0 {
		return &as.regions[i]
	}
	return nil
}

// Munmap removes the region and returns the PFNs of all pages that were
// mapped inside it, so the caller can release node residency and free
// them. Unknown regions panic: the simulator controls all regions.
func (as *AddressSpace) Munmap(r Region) []mem.PFN {
	idx := sort.Search(len(as.starts), func(i int) bool { return as.starts[i] >= r.Start })
	if idx >= len(as.regions) || as.regions[idx].Start != r.Start || as.regions[idx].Pages != r.Pages {
		panic(fmt.Sprintf("pagetable: munmap of unknown region %+v", r))
	}
	rs := &as.regions[idx]
	var pfns []mem.PFN
	if as.ext {
		pfns = as.munmapExtents(rs)
		as.regions = append(as.regions[:idx], as.regions[idx+1:]...)
		as.starts = append(as.starts[:idx], as.starts[idx+1:]...)
		as.ends = append(as.ends[:idx], as.ends[idx+1:]...)
		as.totalPages -= r.Pages
		as.gen++
		as.rebuildIndex()
		return pfns
	}
	for i, pfn := range rs.pfns {
		if pfn != mem.NilPFN {
			pfns = append(pfns, pfn)
			as.rmap[pfn] = nilVPN
			as.mapped--
		} else if k := rs.estate[i]; k != EvictNone {
			as.evictedByKind[k]--
		}
	}
	as.regions = append(as.regions[:idx], as.regions[idx+1:]...)
	as.starts = append(as.starts[:idx], as.starts[idx+1:]...)
	as.ends = append(as.ends[:idx], as.ends[idx+1:]...)
	as.totalPages -= r.Pages
	as.gen++
	as.rebuildIndex()
	return pfns
}

// growRmap ensures the reverse map covers pfn.
func (as *AddressSpace) growRmap(pfn mem.PFN) {
	for int(pfn) >= len(as.rmap) {
		as.rmap = append(as.rmap, nilVPN)
	}
}

// MapPage installs a translation. It panics on double-map (which would
// indicate a fault-handling bug) and on VPNs outside every region. Any
// eviction record for the VPN is cleared: the page is resident again.
func (as *AddressSpace) MapPage(v VPN, pfn mem.PFN) {
	if as.ext {
		as.MapRange(v, pfn, 1)
		return
	}
	rs := as.regionOf(v)
	if rs == nil {
		panic(fmt.Sprintf("pagetable: map of VPN %d outside any region", v))
	}
	i := v - rs.Start
	if rs.pfns[i] != mem.NilPFN {
		panic(fmt.Sprintf("pagetable: double map of VPN %d", v))
	}
	rs.pfns[i] = pfn
	if k := rs.estate[i]; k != EvictNone {
		as.evictedByKind[k]--
		rs.estate[i] = EvictNone
	}
	as.growRmap(pfn)
	as.rmap[pfn] = v
	as.mapped++
}

// UnmapPage removes a translation, returning the PFN that was mapped.
// In huge-frame extent mode the whole frame chunk containing v is
// unmapped (a frame translates as one unit); at frameShift 0 that is
// exactly v, matching the dense table.
func (as *AddressSpace) UnmapPage(v VPN) (mem.PFN, bool) {
	if as.ext {
		return as.unmapPageExtent(v)
	}
	rs := as.regionOf(v)
	if rs == nil {
		return mem.NilPFN, false
	}
	i := v - rs.Start
	pfn := rs.pfns[i]
	if pfn == mem.NilPFN {
		return mem.NilPFN, false
	}
	rs.pfns[i] = mem.NilPFN
	as.rmap[pfn] = nilVPN
	as.mapped--
	as.gen++
	return pfn, true
}

// VPNOf returns the VPN a PFN is mapped at (the rmap lookup reclaim uses
// to find the PTE for a victim page).
func (as *AddressSpace) VPNOf(pfn mem.PFN) (VPN, bool) {
	if int(pfn) >= len(as.rmap) || as.rmap[pfn] == nilVPN {
		return 0, false
	}
	return as.rmap[pfn], true
}

// UnmapPFN removes the translation for a PFN via the reverse map and
// records why, so the next touch of the VPN takes the right fault path.
// Returns the VPN that was unmapped.
func (as *AddressSpace) UnmapPFN(pfn mem.PFN, kind EvictKind) (VPN, bool) {
	if int(pfn) >= len(as.rmap) {
		return 0, false
	}
	v := as.rmap[pfn]
	if v == nilVPN {
		return 0, false
	}
	if as.ext {
		return as.unmapPFNExtent(pfn, v, kind)
	}
	rs := as.regionOf(v)
	i := v - rs.Start
	rs.pfns[i] = mem.NilPFN
	as.rmap[pfn] = nilVPN
	as.mapped--
	as.gen++
	if kind != EvictNone {
		rs.estate[i] = kind
		as.evictedByKind[kind]++
	}
	return v, true
}

// Evicted reports whether (and how) the VPN's page was evicted.
func (as *AddressSpace) Evicted(v VPN) EvictKind {
	rs := as.regionOf(v)
	if rs == nil {
		return EvictNone
	}
	if as.ext {
		if e := findExtent(rs.exts, v); e != nil && e.pfn == mem.NilPFN {
			return e.state
		}
		return EvictNone
	}
	if rs.pfns[v-rs.Start] != mem.NilPFN {
		return EvictNone
	}
	return rs.estate[v-rs.Start]
}

// EvictedCount returns the number of VPNs currently evicted with the
// given kind; EvictNone counts all kinds. O(1): per-kind counters are
// maintained by MapPage/UnmapPFN/Munmap.
func (as *AddressSpace) EvictedCount(kind EvictKind) int {
	if kind == EvictNone {
		n := 0
		for _, c := range as.evictedByKind {
			n += c
		}
		return n
	}
	return as.evictedByKind[kind]
}

// Translate returns the PFN mapped at the VPN, if any. This is the
// simulator's /proc/$PID/pagemap.
func (as *AddressSpace) Translate(v VPN) (mem.PFN, bool) {
	rs := as.regionOf(v)
	if rs == nil {
		return mem.NilPFN, false
	}
	if as.ext {
		if e := findExtent(rs.exts, v); e != nil && e.pfn != mem.NilPFN {
			return e.pfn + mem.PFN((v-e.start)>>as.frameShift), true
		}
		return mem.NilPFN, false
	}
	pfn := rs.pfns[v-rs.Start]
	return pfn, pfn != mem.NilPFN
}

// TranslateBatch resolves out[i] to the translation of vs[i] (mem.NilPFN
// when unmapped), exactly equivalent to calling Translate per element but
// with the region cache and index state held in locals for the whole
// batch — the simulator's access loop resolves a full tick in one call.
func (as *AddressSpace) TranslateBatch(vs []VPN, out []mem.PFN) {
	if as.ext {
		as.translateBatchExtent(vs, out)
		return
	}
	starts, bucket, shift := as.starts, as.bucket, as.shift
	ends, regions := as.ends, as.regions
	for i, v := range vs {
		k := uint64(v) >> shift
		if k >= uint64(len(bucket)) {
			out[i] = mem.NilPFN
			continue
		}
		var idx int
		if b := bucket[k]; b < 0 {
			// Bucket wholly inside one region: no walk, no bound check.
			idx = int(-b) - 1
		} else {
			idx = -1
			for j := int(b); j < len(starts) && starts[j] <= v; j++ {
				idx = j
			}
			if idx < 0 || v >= ends[idx] {
				out[i] = mem.NilPFN
				continue
			}
		}
		out[i] = regions[idx].pfns[v-starts[idx]]
	}
}

// Gen returns the translation-removal generation: it advances on every
// UnmapPage/UnmapPFN/Munmap. A caller holding PFNs from TranslateBatch
// must treat them as stale once Gen changes.
func (as *AddressSpace) Gen() uint64 { return as.gen }

// Mapped returns the number of populated pages.
func (as *AddressSpace) Mapped() int { return as.mapped }

// TotalPages returns the number of virtual pages across all regions
// (mapped or not), maintained incrementally by Mmap/Munmap.
func (as *AddressSpace) TotalPages() uint64 { return as.totalPages }

// Regions returns a copy of the current region list, Chameleon's
// /proc/$PID/maps analogue. Hot callers should use NumRegions/RegionAt
// or ForEachRegion, which do not copy.
func (as *AddressSpace) Regions() []Region {
	out := make([]Region, len(as.regions))
	for i, rs := range as.regions {
		out[i] = rs.Region
	}
	return out
}

// NumRegions returns the number of regions.
func (as *AddressSpace) NumRegions() int { return len(as.regions) }

// RegionAt returns the i-th region in start-address order without
// copying the region list.
func (as *AddressSpace) RegionAt(i int) Region { return as.regions[i].Region }

// ForEachRegion visits every region in start-address order without
// copying the list. Return false to stop early. The region list must not
// be mutated during the walk.
func (as *AddressSpace) ForEachRegion(fn func(r Region) bool) {
	for _, rs := range as.regions {
		if !fn(rs.Region) {
			return
		}
	}
}

// RegionOf returns the region containing the VPN, resolved by binary
// search over the sorted region index.
func (as *AddressSpace) RegionOf(v VPN) (Region, bool) {
	if rs := as.regionOf(v); rs != nil {
		return rs.Region, true
	}
	return Region{}, false
}

// ForEachMapped visits every (VPN, PFN) pair in ascending VPN order. In
// huge-frame extent mode every VPN of a mapped frame is visited with the
// frame's PFN.
func (as *AddressSpace) ForEachMapped(fn func(v VPN, pfn mem.PFN)) {
	if as.ext {
		for ri := range as.regions {
			for _, e := range as.regions[ri].exts {
				if e.pfn == mem.NilPFN {
					continue
				}
				for o := uint64(0); o < e.pages; o++ {
					fn(e.start+VPN(o), e.pfn+mem.PFN(o>>as.frameShift))
				}
			}
		}
		return
	}
	for _, rs := range as.regions {
		for i, pfn := range rs.pfns {
			if pfn != mem.NilPFN {
				fn(rs.Start+VPN(i), pfn)
			}
		}
	}
}
