// Package pagetable models per-process virtual address spaces: the
// VPN→PFN mapping the workload faults pages into, the region bookkeeping
// (mmap/munmap), and the translation interface Chameleon's Worker uses as
// its /proc/$PID/pagemap analogue (§3 of the paper).
//
// NUMA-balancing PTE poisoning is represented by the PGHinted flag on the
// page itself rather than a shadow PTE bit: the simulator has exactly one
// mapping per page, so the two are equivalent.
package pagetable

import (
	"fmt"

	"tppsim/internal/mem"
)

// VPN is a virtual page number within one address space.
type VPN uint64

// Region is a contiguous run of virtual pages created by Mmap.
type Region struct {
	Start VPN
	Pages uint64
	Type  mem.PageType
}

// End returns one past the last VPN of the region.
func (r Region) End() VPN { return r.Start + VPN(r.Pages) }

// Contains reports whether the VPN falls inside the region.
func (r Region) Contains(v VPN) bool { return v >= r.Start && v < r.End() }

// EvictKind records why a previously-mapped VPN currently has no
// translation: reclaimed to swap (next access is a major fault that must
// swap the page back in) or a dropped clean file page (next access
// refaults from the backing file).
type EvictKind uint8

const (
	// EvictNone: the VPN has never been populated (or was munmapped);
	// first touch is an ordinary demand-zero / file-read minor fault.
	EvictNone EvictKind = iota
	// EvictSwap: the page was swapped out; refault is a major fault.
	EvictSwap
	// EvictFile: a clean file page was dropped; refault re-reads the file.
	EvictFile
)

// AddressSpace is one process's page table, including the reverse map
// (PFN→VPN) reclaim needs to unmap victim pages.
type AddressSpace struct {
	PID     int
	table   map[VPN]mem.PFN
	rmap    map[mem.PFN]VPN
	evicted map[VPN]EvictKind
	regions []Region
	nextVPN VPN
}

// New returns an empty address space for the given PID.
func New(pid int) *AddressSpace {
	return &AddressSpace{
		PID:     pid,
		table:   make(map[VPN]mem.PFN),
		rmap:    make(map[mem.PFN]VPN),
		evicted: make(map[VPN]EvictKind),
	}
}

// Mmap reserves a new region of the given size and page type. Pages are
// not populated; the workload faults them in via MapPage on first touch,
// mirroring demand paging.
func (as *AddressSpace) Mmap(pages uint64, t mem.PageType) Region {
	r := Region{Start: as.nextVPN, Pages: pages, Type: t}
	as.regions = append(as.regions, r)
	// Leave a guard gap so regions are never adjacent; catches off-by-one
	// arithmetic in workload generators.
	as.nextVPN += VPN(pages) + 16
	return r
}

// Munmap removes the region and returns the PFNs of all pages that were
// mapped inside it, so the caller can release node residency and free
// them. Unknown regions panic: the simulator controls all regions.
func (as *AddressSpace) Munmap(r Region) []mem.PFN {
	idx := -1
	for i, cand := range as.regions {
		if cand.Start == r.Start && cand.Pages == r.Pages {
			idx = i
			break
		}
	}
	if idx < 0 {
		panic(fmt.Sprintf("pagetable: munmap of unknown region %+v", r))
	}
	as.regions = append(as.regions[:idx], as.regions[idx+1:]...)
	var pfns []mem.PFN
	for v := r.Start; v < r.End(); v++ {
		if pfn, ok := as.table[v]; ok {
			pfns = append(pfns, pfn)
			delete(as.table, v)
			delete(as.rmap, pfn)
		}
		delete(as.evicted, v)
	}
	return pfns
}

// MapPage installs a translation. It panics on double-map, which would
// indicate a fault-handling bug. Any eviction record for the VPN is
// cleared: the page is resident again.
func (as *AddressSpace) MapPage(v VPN, pfn mem.PFN) {
	if _, ok := as.table[v]; ok {
		panic(fmt.Sprintf("pagetable: double map of VPN %d", v))
	}
	as.table[v] = pfn
	as.rmap[pfn] = v
	delete(as.evicted, v)
}

// UnmapPage removes a translation, returning the PFN that was mapped.
func (as *AddressSpace) UnmapPage(v VPN) (mem.PFN, bool) {
	pfn, ok := as.table[v]
	if ok {
		delete(as.table, v)
		delete(as.rmap, pfn)
	}
	return pfn, ok
}

// VPNOf returns the VPN a PFN is mapped at (the rmap lookup reclaim uses
// to find the PTE for a victim page).
func (as *AddressSpace) VPNOf(pfn mem.PFN) (VPN, bool) {
	v, ok := as.rmap[pfn]
	return v, ok
}

// UnmapPFN removes the translation for a PFN via the reverse map and
// records why, so the next touch of the VPN takes the right fault path.
// Returns the VPN that was unmapped.
func (as *AddressSpace) UnmapPFN(pfn mem.PFN, kind EvictKind) (VPN, bool) {
	v, ok := as.rmap[pfn]
	if !ok {
		return 0, false
	}
	delete(as.rmap, pfn)
	delete(as.table, v)
	if kind != EvictNone {
		as.evicted[v] = kind
	}
	return v, true
}

// Evicted reports whether (and how) the VPN's page was evicted.
func (as *AddressSpace) Evicted(v VPN) EvictKind { return as.evicted[v] }

// EvictedCount returns the number of VPNs currently evicted with the
// given kind; EvictNone counts all kinds.
func (as *AddressSpace) EvictedCount(kind EvictKind) int {
	if kind == EvictNone {
		return len(as.evicted)
	}
	n := 0
	for _, k := range as.evicted {
		if k == kind {
			n++
		}
	}
	return n
}

// Translate returns the PFN mapped at the VPN, if any. This is the
// simulator's /proc/$PID/pagemap.
func (as *AddressSpace) Translate(v VPN) (mem.PFN, bool) {
	pfn, ok := as.table[v]
	return pfn, ok
}

// Mapped returns the number of populated pages.
func (as *AddressSpace) Mapped() int { return len(as.table) }

// Regions returns a copy of the current region list, Chameleon's
// /proc/$PID/maps analogue.
func (as *AddressSpace) Regions() []Region {
	return append([]Region(nil), as.regions...)
}

// RegionOf returns the region containing the VPN.
func (as *AddressSpace) RegionOf(v VPN) (Region, bool) {
	for _, r := range as.regions {
		if r.Contains(v) {
			return r, true
		}
	}
	return Region{}, false
}

// ForEachMapped visits every (VPN, PFN) pair. Iteration order is
// unspecified; callers that need determinism must sort.
func (as *AddressSpace) ForEachMapped(fn func(v VPN, pfn mem.PFN)) {
	for v, pfn := range as.table {
		fn(v, pfn)
	}
}
