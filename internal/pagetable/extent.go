// Extent mode: the range-compressed address-space representation behind
// the same AddressSpace API (memtierd tracks address ranges, DAMON
// tracks regions — the same bet: production address spaces are runs,
// not confetti).
//
// A region's translation state is a sorted, disjoint list of extents.
// Each extent is one run of virtual pages in one of two states:
//
//   - mapped: the run translates to physically-consecutive frames
//     starting at pfn (one frame covers 1<<frameShift base pages);
//   - evicted: the run has no translation and remembers why
//     (EvictSwap/EvictFile), so refaults take the right path.
//
// VPN ranges covered by no extent were never populated (or were
// unmapped without an eviction record) — the dense table's
// NilPFN/EvictNone combination, stored for free.
//
// Mutations keep the list canonical lazily: a mid-run eviction,
// migration unmap, or state write splits the covering extent into at
// most three pieces (lazy splitting), and every insertion tries to
// absorb its neighbors (opportunistic re-merge) — two mapped extents
// merge when their VPN runs and frame runs are both consecutive,
// evicted extents merge on equal state. splits/merges count that churn
// for the -mem-stats report and the extent_split/extent_merge counters.
//
// frameShift selects the frame size: 0 makes frames base pages, giving
// a representation observably identical to the dense table (pinned by
// the lockstep property test in extent_test.go); mem.HugeFrameShift (9)
// makes frames 2 MB huge pages — one PFN, one LRU entry, and one rmap
// slot per 512 base pages, which is what lets a terabyte-scale machine
// fit in a benchmark's memory budget.
package pagetable

import (
	"fmt"
	"unsafe"

	"tppsim/internal/mem"
)

// extent is one run of virtual pages sharing a translation state.
type extent struct {
	start VPN
	pages uint64
	// pfn is the first frame of the run (frame k holds VPNs
	// [start+k<<frameShift, ...)); mem.NilPFN marks an evicted run.
	pfn   mem.PFN
	state EvictKind // why an evicted run lost its translation
}

func (e *extent) end() VPN { return e.start + VPN(e.pages) }

// NewExtent returns an empty extent-mode address space. frameShift
// selects the pages-per-frame granularity: 0 behaves exactly like the
// dense table (per-page frames), mem.HugeFrameShift models 2 MB huge
// pages (PFNs then address 512-page frames).
func NewExtent(pid int, frameShift uint) *AddressSpace {
	return &AddressSpace{
		PID:        pid,
		ext:        true,
		frameShift: frameShift,
		framePages: 1 << frameShift,
	}
}

// ExtentMode reports whether the address space uses the extent
// representation.
func (as *AddressSpace) ExtentMode() bool { return as.ext }

// FrameShift returns log2 of the pages-per-frame granularity (0 in
// dense mode and in per-page extent mode).
func (as *AddressSpace) FrameShift() uint { return as.frameShift }

// ExtentSplits returns the cumulative count of extents split by
// mid-run divergence.
func (as *AddressSpace) ExtentSplits() uint64 { return as.splits }

// ExtentMerges returns the cumulative count of neighbor re-merges.
func (as *AddressSpace) ExtentMerges() uint64 { return as.merges }

// NumExtents returns the current extent count across all regions
// (0 in dense mode).
func (as *AddressSpace) NumExtents() int {
	n := 0
	for i := range as.regions {
		n += len(as.regions[i].exts)
	}
	return n
}

// FootprintStats is the address space's structural memory accounting,
// for the -mem-stats report and the cmd/bench footprint gate.
type FootprintStats struct {
	// Extents is the live extent count (0 in dense mode).
	Extents int
	// Splits/Merges are the cumulative lazy-split and re-merge totals.
	Splits, Merges uint64
	// Bytes is the table's backing storage: translation state, reverse
	// map, and region index.
	Bytes uint64
}

// Footprint computes the address space's structural memory use. It
// walks the region list, so call it at reporting boundaries, not per
// access.
func (as *AddressSpace) Footprint() FootprintStats {
	f := FootprintStats{Splits: as.splits, Merges: as.merges}
	var b uint64
	for i := range as.regions {
		rs := &as.regions[i]
		f.Extents += len(rs.exts)
		b += uint64(cap(rs.exts)) * uint64(unsafe.Sizeof(extent{}))
		b += uint64(cap(rs.pfns)) * uint64(unsafe.Sizeof(mem.PFN(0)))
		b += uint64(cap(rs.estate)) * uint64(unsafe.Sizeof(EvictKind(0)))
	}
	b += uint64(cap(as.regions)) * uint64(unsafe.Sizeof(regionState{}))
	b += uint64(cap(as.rmap)) * uint64(unsafe.Sizeof(VPN(0)))
	b += uint64(cap(as.starts)+cap(as.ends)) * uint64(unsafe.Sizeof(VPN(0)))
	b += uint64(cap(as.bucket)) * 4
	f.Bytes = b
	return f
}

// findExtent returns the extent containing v, or nil.
func findExtent(exts []extent, v VPN) *extent {
	lo, hi := 0, len(exts)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if exts[mid].start <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo > 0 {
		if e := &exts[lo-1]; v < e.end() {
			return e
		}
	}
	return nil
}

// extentInsertPos returns the index of the first extent starting after
// v — the insertion position for a run beginning at v.
func extentInsertPos(exts []extent, v VPN) int {
	lo, hi := 0, len(exts)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if exts[mid].start <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// canMergeExt reports whether b can be absorbed into a (a immediately
// left of b): the VPN runs must be adjacent, and either both runs are
// evicted with the same state, or both are mapped with consecutive
// frames (which requires a to cover whole frames — a frame-internal
// tail can only sit at the end of a run).
func (as *AddressSpace) canMergeExt(a, b *extent) bool {
	if a.end() != b.start {
		return false
	}
	if a.pfn == mem.NilPFN || b.pfn == mem.NilPFN {
		return a.pfn == mem.NilPFN && b.pfn == mem.NilPFN && a.state == b.state
	}
	if a.pages&(as.framePages-1) != 0 {
		return false
	}
	return b.pfn == a.pfn+mem.PFN(a.pages>>as.frameShift)
}

// insertExtentAt inserts e before index i in the region's list,
// re-merging with either neighbor when they reconverge.
func (as *AddressSpace) insertExtentAt(rs *regionState, i int, e extent) {
	exts := rs.exts
	if i > 0 && as.canMergeExt(&exts[i-1], &e) {
		exts[i-1].pages += e.pages
		as.merges++
		// The grown left neighbor may now also reach the right one.
		if i < len(exts) && as.canMergeExt(&exts[i-1], &exts[i]) {
			exts[i-1].pages += exts[i].pages
			rs.exts = append(exts[:i], exts[i+1:]...)
			as.merges++
		}
		return
	}
	if i < len(exts) && as.canMergeExt(&e, &exts[i]) {
		exts[i].start = e.start
		exts[i].pages += e.pages
		exts[i].pfn = e.pfn
		as.merges++
		return
	}
	rs.exts = append(exts, extent{})
	copy(rs.exts[i+1:], rs.exts[i:])
	rs.exts[i] = e
}

// clearEvictedRange removes any evicted-extent coverage of [lo, hi)
// ahead of a re-map, adjusting the eviction counters; mapped coverage
// in the range panics (double map). Middle cuts split the evicted
// extent, counted as splits like any other divergence.
func (as *AddressSpace) clearEvictedRange(rs *regionState, lo, hi VPN) {
	i := extentInsertPos(rs.exts, lo)
	if i > 0 && rs.exts[i-1].end() > lo {
		i--
	}
	for i < len(rs.exts) && rs.exts[i].start < hi {
		e := &rs.exts[i]
		if e.pfn != mem.NilPFN {
			panic(fmt.Sprintf("pagetable: double map of VPN range [%d,%d)", lo, hi))
		}
		ovLo, ovHi := e.start, e.end()
		if ovLo < lo {
			ovLo = lo
		}
		if ovHi > hi {
			ovHi = hi
		}
		ovPages := uint64(ovHi - ovLo)
		as.evictedByKind[e.state] -= int(ovPages)
		switch {
		case ovLo == e.start && ovHi == e.end():
			rs.exts = append(rs.exts[:i], rs.exts[i+1:]...)
		case ovLo == e.start:
			e.start = ovHi
			e.pages -= ovPages
			i++
		case ovHi == e.end():
			e.pages -= ovPages
			i++
		default:
			right := extent{start: ovHi, pages: uint64(e.end() - ovHi), pfn: mem.NilPFN, state: e.state}
			e.pages = uint64(ovLo - e.start)
			as.splits++
			rs.exts = append(rs.exts, extent{})
			copy(rs.exts[i+2:], rs.exts[i+1:])
			rs.exts[i+1] = right
			i += 2
		}
	}
}

// MapRange installs translations for pages VPNs starting at v onto
// consecutive frames starting at pfn — the huge-page fault path's bulk
// MapPage. In extent mode v must be frame-aligned; the covered VPNs
// must currently have no translation (double maps panic, as in
// MapPage), and any eviction records in the range are cleared. Dense
// tables take the per-page path.
func (as *AddressSpace) MapRange(v VPN, pfn mem.PFN, pages uint64) {
	if pages == 0 {
		return
	}
	if !as.ext {
		for o := uint64(0); o < pages; o++ {
			as.MapPage(v+VPN(o), pfn+mem.PFN(o))
		}
		return
	}
	rs := as.regionOf(v)
	if rs == nil || v+VPN(pages) > rs.End() {
		panic(fmt.Sprintf("pagetable: map of VPN range [%d,%d) outside any region", v, v+VPN(pages)))
	}
	if uint64(v)&(as.framePages-1) != 0 {
		panic(fmt.Sprintf("pagetable: unaligned frame map at VPN %d (frame %d pages)", v, as.framePages))
	}
	as.clearEvictedRange(rs, v, v+VPN(pages))
	as.insertExtentAt(rs, extentInsertPos(rs.exts, v), extent{start: v, pages: pages, pfn: pfn})
	frames := (pages + as.framePages - 1) >> as.frameShift
	as.growRmap(pfn + mem.PFN(frames) - 1)
	for k := uint64(0); k < frames; k++ {
		as.rmap[pfn+mem.PFN(k)] = v + VPN(k<<as.frameShift)
	}
	as.mapped += int(pages)
}

// removeMappedChunk removes the frame chunk [lo, hi) from the mapped
// extent at index i (which must cover it, with lo on a frame boundary
// of the run), clears its rmap slot, and installs an eviction record
// when kind says so. Returns the chunk's frame PFN.
func (as *AddressSpace) removeMappedChunk(rs *regionState, i int, lo, hi VPN, kind EvictKind) mem.PFN {
	e := &rs.exts[i]
	chunkPFN := e.pfn + mem.PFN(uint64(lo-e.start)>>as.frameShift)
	as.rmap[chunkPFN] = nilVPN
	chunkPages := uint64(hi - lo)
	left := uint64(lo - e.start)
	right := uint64(e.end() - hi)
	switch {
	case left == 0 && right == 0:
		rs.exts = append(rs.exts[:i], rs.exts[i+1:]...)
	case left == 0:
		e.start = hi
		e.pages = right
		e.pfn = chunkPFN + 1
		as.splits++
	case right == 0:
		e.pages = left
		as.splits++
	default:
		rightExt := extent{start: hi, pages: right, pfn: chunkPFN + 1}
		e.pages = left
		as.splits++
		rs.exts = append(rs.exts, extent{})
		copy(rs.exts[i+2:], rs.exts[i+1:])
		rs.exts[i+1] = rightExt
	}
	as.mapped -= int(chunkPages)
	as.gen++
	if kind != EvictNone {
		as.evictedByKind[kind] += int(chunkPages)
		as.insertExtentAt(rs, extentInsertPos(rs.exts, lo), extent{start: lo, pages: chunkPages, pfn: mem.NilPFN, state: kind})
	}
	return chunkPFN
}

// chunkBounds returns the frame chunk of extent e containing v: the
// VPN span one frame translates as a unit.
func (as *AddressSpace) chunkBounds(e *extent, v VPN) (lo, hi VPN) {
	off := uint64(v-e.start) &^ (as.framePages - 1)
	lo = e.start + VPN(off)
	hi = lo + VPN(as.framePages)
	if hi > e.end() {
		hi = e.end()
	}
	return lo, hi
}

// unmapPageExtent is UnmapPage in extent mode: the frame chunk holding
// v loses its translation with no eviction record.
func (as *AddressSpace) unmapPageExtent(v VPN) (mem.PFN, bool) {
	rs := as.regionOf(v)
	if rs == nil {
		return mem.NilPFN, false
	}
	i := extentInsertPos(rs.exts, v) - 1
	if i < 0 || v >= rs.exts[i].end() || rs.exts[i].pfn == mem.NilPFN {
		return mem.NilPFN, false
	}
	lo, hi := as.chunkBounds(&rs.exts[i], v)
	return as.removeMappedChunk(rs, i, lo, hi, EvictNone), true
}

// unmapPFNExtent is UnmapPFN's extent path: v is the frame's first VPN
// from the reverse map.
func (as *AddressSpace) unmapPFNExtent(pfn mem.PFN, v VPN, kind EvictKind) (VPN, bool) {
	rs := as.regionOf(v)
	i := extentInsertPos(rs.exts, v) - 1
	e := &rs.exts[i]
	lo, hi := as.chunkBounds(e, v)
	as.removeMappedChunk(rs, i, lo, hi, kind)
	return v, true
}

// munmapExtents collects every mapped frame of a dying region, clears
// its reverse-map slots, and unwinds the mapped/evicted accounting.
// Munmap proper removes the region from the index.
func (as *AddressSpace) munmapExtents(rs *regionState) []mem.PFN {
	var pfns []mem.PFN
	for j := range rs.exts {
		e := &rs.exts[j]
		if e.pfn == mem.NilPFN {
			as.evictedByKind[e.state] -= int(e.pages)
			continue
		}
		frames := (e.pages + as.framePages - 1) >> as.frameShift
		for k := uint64(0); k < frames; k++ {
			pfns = append(pfns, e.pfn+mem.PFN(k))
			as.rmap[e.pfn+mem.PFN(k)] = nilVPN
		}
		as.mapped -= int(e.pages)
	}
	return pfns
}

// translateBatchExtent is TranslateBatch over the extent
// representation: the same bucket-index region resolution as the dense
// path, then a binary search of the region's extent list, with a
// one-extent cache in locals — consecutive accesses into the same run
// (the common case on extent-friendly workloads) cost two compares.
// Zero allocation, like the dense path.
func (as *AddressSpace) translateBatchExtent(vs []VPN, out []mem.PFN) {
	starts, bucket, shift := as.starts, as.bucket, as.shift
	ends, regions := as.ends, as.regions
	fShift := as.frameShift
	// Last mapped extent, cached in locals. A VPN determines its extent
	// globally, so a cache hit skips region resolution too.
	var eStart VPN = 1
	var eEnd VPN
	var ePFN mem.PFN
	for i, v := range vs {
		if v >= eStart && v < eEnd {
			out[i] = ePFN + mem.PFN(uint64(v-eStart)>>fShift)
			continue
		}
		k := uint64(v) >> shift
		if k >= uint64(len(bucket)) {
			out[i] = mem.NilPFN
			continue
		}
		var idx int
		if b := bucket[k]; b < 0 {
			idx = int(-b) - 1
		} else {
			idx = -1
			for j := int(b); j < len(starts) && starts[j] <= v; j++ {
				idx = j
			}
			if idx < 0 || v >= ends[idx] {
				out[i] = mem.NilPFN
				continue
			}
		}
		exts := regions[idx].exts
		lo, hi := 0, len(exts)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if exts[mid].start <= v {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo > 0 {
			if e := &exts[lo-1]; v < e.end() && e.pfn != mem.NilPFN {
				out[i] = e.pfn + mem.PFN(uint64(v-e.start)>>fShift)
				eStart, eEnd, ePFN = e.start, e.end(), e.pfn
				continue
			}
		}
		out[i] = mem.NilPFN
	}
}
