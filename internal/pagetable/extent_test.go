package pagetable

import (
	"math/rand"
	"sort"
	"testing"

	"tppsim/internal/mem"
)

// lockstepPair drives a dense table and a per-page (frameShift 0)
// extent table through the same operation stream and cross-checks every
// observable after each step. The extent table is a pure representation
// change, so any divergence — translation, eviction state, counters,
// Munmap return sets — is a bug in the extent code.
type lockstepPair struct {
	t     *testing.T
	dense *AddressSpace
	ext   *AddressSpace
	// nextPFN allocates identical fake PFNs to both tables; freed PFNs
	// are recycled LIFO like mem.Store so rmap growth stays bounded.
	nextPFN mem.PFN
	free    []mem.PFN
	regions []Region // live regions (identical in both tables)
}

func newLockstepPair(t *testing.T) *lockstepPair {
	return &lockstepPair{t: t, dense: New(1), ext: NewExtent(1, 0)}
}

func (p *lockstepPair) allocPFN() mem.PFN {
	if n := len(p.free); n > 0 {
		pfn := p.free[n-1]
		p.free = p.free[:n-1]
		return pfn
	}
	pfn := p.nextPFN
	p.nextPFN++
	return pfn
}

func (p *lockstepPair) mmap(pages uint64, ty mem.PageType) {
	rd := p.dense.Mmap(pages, ty)
	re := p.ext.Mmap(pages, ty)
	if rd != re {
		p.t.Fatalf("Mmap diverged: dense %+v ext %+v", rd, re)
	}
	p.regions = append(p.regions, rd)
}

func (p *lockstepPair) munmap(i int) {
	r := p.regions[i]
	p.regions = append(p.regions[:i], p.regions[i+1:]...)
	pd := append([]mem.PFN(nil), p.dense.Munmap(r)...)
	pe := append([]mem.PFN(nil), p.ext.Munmap(r)...)
	// Order is representation-defined; the PFN sets must match.
	sort.Slice(pd, func(a, b int) bool { return pd[a] < pd[b] })
	sort.Slice(pe, func(a, b int) bool { return pe[a] < pe[b] })
	if len(pd) != len(pe) {
		p.t.Fatalf("Munmap returned %d PFNs dense, %d ext", len(pd), len(pe))
	}
	for j := range pd {
		if pd[j] != pe[j] {
			p.t.Fatalf("Munmap PFN sets diverge at %d: dense %d ext %d", j, pd[j], pe[j])
		}
		p.free = append(p.free, pd[j])
	}
}

func (p *lockstepPair) mapPage(v VPN) {
	pfn := p.allocPFN()
	p.dense.MapPage(v, pfn)
	p.ext.MapPage(v, pfn)
}

func (p *lockstepPair) unmapPage(v VPN) {
	pd, okd := p.dense.UnmapPage(v)
	pe, oke := p.ext.UnmapPage(v)
	if pd != pe || okd != oke {
		p.t.Fatalf("UnmapPage(%d) diverged: dense %d,%v ext %d,%v", v, pd, okd, pe, oke)
	}
	if okd {
		p.free = append(p.free, pd)
	}
}

func (p *lockstepPair) unmapPFN(pfn mem.PFN, kind EvictKind) {
	vd, okd := p.dense.UnmapPFN(pfn, kind)
	ve, oke := p.ext.UnmapPFN(pfn, kind)
	if vd != ve || okd != oke {
		p.t.Fatalf("UnmapPFN(%d,%d) diverged: dense %d,%v ext %d,%v", pfn, kind, vd, okd, ve, oke)
	}
	if okd {
		p.free = append(p.free, pfn)
	}
}

// check cross-checks every observable over the full VPN span.
func (p *lockstepPair) check() {
	d, e := p.dense, p.ext
	if d.Mapped() != e.Mapped() {
		p.t.Fatalf("Mapped: dense %d ext %d", d.Mapped(), e.Mapped())
	}
	if d.TotalPages() != e.TotalPages() {
		p.t.Fatalf("TotalPages: dense %d ext %d", d.TotalPages(), e.TotalPages())
	}
	for _, k := range []EvictKind{EvictNone, EvictSwap, EvictFile} {
		if d.EvictedCount(k) != e.EvictedCount(k) {
			p.t.Fatalf("EvictedCount(%d): dense %d ext %d", k, d.EvictedCount(k), e.EvictedCount(k))
		}
	}
	var vs []VPN
	for _, r := range p.regions {
		for v := r.Start; v < r.End(); v++ {
			vs = append(vs, v)
		}
	}
	outD := make([]mem.PFN, len(vs))
	outE := make([]mem.PFN, len(vs))
	d.TranslateBatch(vs, outD)
	e.TranslateBatch(vs, outE)
	for i, v := range vs {
		if outD[i] != outE[i] {
			p.t.Fatalf("TranslateBatch(%d): dense %d ext %d", v, outD[i], outE[i])
		}
		pd, okd := d.Translate(v)
		pe, oke := e.Translate(v)
		if pd != pe || okd != oke {
			p.t.Fatalf("Translate(%d): dense %d,%v ext %d,%v", v, pd, okd, pe, oke)
		}
		if kd, ke := d.Evicted(v), e.Evicted(v); kd != ke {
			p.t.Fatalf("Evicted(%d): dense %d ext %d", v, kd, ke)
		}
		if okd {
			vd, vokd := d.VPNOf(pd)
			ve, voke := e.VPNOf(pd)
			if vd != ve || vokd != voke || !vokd || vd != v {
				p.t.Fatalf("VPNOf(%d): dense %d,%v ext %d,%v want %d", pd, vd, vokd, ve, voke, v)
			}
		}
	}
}

// mappedPFNs collects the dense table's live translations for picking
// UnmapPFN victims.
func (p *lockstepPair) mappedPFNs() []mem.PFN {
	var pfns []mem.PFN
	p.dense.ForEachMapped(func(_ VPN, pfn mem.PFN) { pfns = append(pfns, pfn) })
	return pfns
}

// step applies one random operation. The op mix leans on map/unmap so
// runs form, diverge mid-run (lazy splits), and reconverge (re-merges);
// region churn and eviction-state writes ride along.
func (p *lockstepPair) step(rng *rand.Rand) {
	switch op := rng.Intn(20); {
	case op == 0: // mmap a fresh region
		if len(p.regions) < 6 {
			p.mmap(uint64(1+rng.Intn(96)), mem.PageType(rng.Intn(mem.NumPageTypes)))
		}
	case op == 1: // munmap a whole region
		if len(p.regions) > 1 {
			p.munmap(rng.Intn(len(p.regions)))
		}
	case op < 11: // map an unmapped VPN (sequential bias grows runs)
		if len(p.regions) == 0 {
			return
		}
		r := p.regions[rng.Intn(len(p.regions))]
		v := r.Start + VPN(rng.Intn(int(r.Pages)))
		for ; v < r.End(); v++ {
			if _, ok := p.dense.Translate(v); !ok {
				p.mapPage(v)
				return
			}
		}
	case op < 15: // UnmapPFN with an eviction record (reclaim's path)
		if pfns := p.mappedPFNs(); len(pfns) > 0 {
			kind := EvictSwap
			if rng.Intn(2) == 0 {
				kind = EvictFile
			}
			p.unmapPFN(pfns[rng.Intn(len(pfns))], kind)
		}
	case op < 18: // UnmapPage at a random spot (mid-run divergence)
		if len(p.regions) == 0 {
			return
		}
		r := p.regions[rng.Intn(len(p.regions))]
		p.unmapPage(r.Start + VPN(rng.Intn(int(r.Pages))))
	default: // remap an evicted VPN (state write at run edges / mid-run)
		if len(p.regions) == 0 {
			return
		}
		r := p.regions[rng.Intn(len(p.regions))]
		for v := r.Start; v < r.End(); v++ {
			if p.dense.Evicted(v) != EvictNone {
				p.mapPage(v)
				return
			}
		}
	}
}

// TestExtentLockstepProperty drives the dense and extent tables through
// randomized op streams and asserts identical observable state after
// every operation.
func TestExtentLockstepProperty(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		rng := rand.New(rand.NewSource(seed))
		p := newLockstepPair(t)
		p.mmap(64, mem.Anon)
		p.mmap(128, mem.File)
		for i := 0; i < 1500; i++ {
			p.step(rng)
			if i%25 == 0 {
				p.check()
			}
		}
		p.check()
	}
}

// TestExtentLazySplitRemerge pins the split/re-merge mechanics directly:
// a contiguous run splits when a mid-run page diverges and re-merges
// when it reconverges with consecutive PFNs.
func TestExtentLazySplitRemerge(t *testing.T) {
	as := NewExtent(1, 0)
	r := as.Mmap(16, mem.Anon)
	for i := uint64(0); i < 8; i++ {
		as.MapPage(r.Start+VPN(i), mem.PFN(100+i))
	}
	if got := as.NumExtents(); got != 1 {
		t.Fatalf("sequential maps should merge into 1 extent, got %d", got)
	}
	// Mid-run eviction: [100..103] [evicted] [105..107] = 3 extents.
	if _, ok := as.UnmapPage(r.Start + 4); !ok {
		t.Fatal("UnmapPage failed")
	}
	as.UnmapPFN(104, EvictSwap) // no-op: already unmapped
	if got := as.NumExtents(); got != 2 {
		t.Fatalf("mid-run unmap (no record) should leave 2 mapped extents, got %d", got)
	}
	if as.ExtentSplits() == 0 {
		t.Fatal("mid-run unmap should count a split")
	}
	// Remap the hole with the original PFN: the three runs reconverge.
	as.MapPage(r.Start+4, 104)
	if got := as.NumExtents(); got != 1 {
		t.Fatalf("reconverged run should re-merge to 1 extent, got %d", got)
	}
	if as.ExtentMerges() < 2 {
		t.Fatalf("re-merge should count merges, got %d", as.ExtentMerges())
	}
	// An eviction record keeps state: split with a swap extent between.
	as.UnmapPFN(102, EvictSwap)
	if as.Evicted(r.Start+2) != EvictSwap {
		t.Fatal("eviction record lost")
	}
	if got := as.NumExtents(); got != 3 {
		t.Fatalf("swap record mid-run should give 3 extents, got %d", got)
	}
	// Remap with a different PFN: hole fills but PFNs don't reconverge.
	as.MapPage(r.Start+2, 500)
	if got := as.NumExtents(); got != 3 {
		t.Fatalf("non-consecutive remap must not merge, got %d extents", got)
	}
	if pfn, ok := as.Translate(r.Start + 2); !ok || pfn != 500 {
		t.Fatalf("Translate after remap = %d,%v", pfn, ok)
	}
}

// TestExtentHugeFrames exercises 2 MB-frame mode: one PFN covers 512
// base pages, chunk unmaps take the whole frame, and partial tail
// frames translate only their populated span.
func TestExtentHugeFrames(t *testing.T) {
	const fp = mem.HugeFramePages
	as := NewExtent(1, mem.HugeFrameShift)
	r := as.Mmap(3*fp/2, mem.Anon) // 1.5 frames of VPNs
	if uint64(r.Start)%fp != 0 {
		t.Fatalf("huge-mode region start %d not frame aligned", r.Start)
	}
	// Frame 0 covers the first 512 VPNs; the tail frame covers 256.
	as.MapRange(r.Start, 7, fp)
	as.MapRange(r.Start+fp, 8, fp/2)
	if got := as.Mapped(); got != 3*fp/2 {
		t.Fatalf("Mapped = %d, want %d", got, 3*fp/2)
	}
	if got := as.NumExtents(); got != 1 {
		t.Fatalf("consecutive frame maps should merge, got %d extents", got)
	}
	for _, tc := range []struct {
		v    VPN
		pfn  mem.PFN
		want bool
	}{
		{r.Start, 7, true},
		{r.Start + fp - 1, 7, true},
		{r.Start + fp, 8, true},
		{r.Start + 3*fp/2 - 1, 8, true},
	} {
		pfn, ok := as.Translate(tc.v)
		if ok != tc.want || (ok && pfn != tc.pfn) {
			t.Fatalf("Translate(%d) = %d,%v want %d,%v", tc.v, pfn, ok, tc.pfn, tc.want)
		}
	}
	if v, ok := as.VPNOf(8); !ok || v != r.Start+fp {
		t.Fatalf("VPNOf(8) = %d,%v", v, ok)
	}
	// Unmapping frame 0 by PFN removes all 512 pages as one unit.
	if v, ok := as.UnmapPFN(7, EvictSwap); !ok || v != r.Start {
		t.Fatalf("UnmapPFN(7) = %d,%v", v, ok)
	}
	if got := as.Mapped(); got != fp/2 {
		t.Fatalf("Mapped after frame unmap = %d, want %d", got, fp/2)
	}
	if got := as.EvictedCount(EvictSwap); got != fp {
		t.Fatalf("EvictedCount(swap) = %d, want %d", got, fp)
	}
	for _, v := range []VPN{r.Start, r.Start + fp - 1} {
		if as.Evicted(v) != EvictSwap {
			t.Fatalf("Evicted(%d) lost the swap record", v)
		}
	}
	// UnmapPage mid-tail-frame takes the whole (partial) frame chunk.
	if pfn, ok := as.UnmapPage(r.Start + fp + 100); !ok || pfn != 8 {
		t.Fatalf("UnmapPage tail = %d,%v", pfn, ok)
	}
	if as.Mapped() != 0 {
		t.Fatalf("Mapped = %d after unmapping both frames", as.Mapped())
	}
	// Refault frame 0 with a new PFN; translation spans the frame again.
	as.MapRange(r.Start, 9, fp)
	if pfn, ok := as.Translate(r.Start + 17); !ok || pfn != 9 {
		t.Fatalf("Translate after refault = %d,%v", pfn, ok)
	}
	if got := as.EvictedCount(EvictSwap); got != 0 {
		t.Fatalf("EvictedCount(swap) = %d after refault", got)
	}
}

// TestExtentFootprint sanity-checks the -mem-stats accounting. At
// frameShift 0 the extent table drops the dense pfns/estate arrays but
// keeps the per-page rmap; in huge-frame mode the rmap shrinks 512x
// too, and the whole table collapses to well under a byte per page.
func TestExtentFootprint(t *testing.T) {
	const pages = 1 << 16
	dense, ext := New(1), NewExtent(1, 0)
	huge := NewExtent(1, mem.HugeFrameShift)
	rd, re := dense.Mmap(pages, mem.Anon), ext.Mmap(pages, mem.Anon)
	rh := huge.Mmap(pages, mem.Anon)
	for i := uint64(0); i < pages; i++ {
		dense.MapPage(rd.Start+VPN(i), mem.PFN(i))
		ext.MapPage(re.Start+VPN(i), mem.PFN(i))
	}
	huge.MapRange(rh.Start, 0, pages)
	fd, fe, fh := dense.Footprint(), ext.Footprint(), huge.Footprint()
	if fe.Extents != 1 || fh.Extents != 1 {
		t.Fatalf("extents = %d/%d, want 1/1", fe.Extents, fh.Extents)
	}
	if fd.Extents != 0 {
		t.Fatalf("dense extents = %d, want 0", fd.Extents)
	}
	// Per-page extent mode still carries the per-page rmap, so it only
	// saves the pfns+estate arrays; it must still be strictly smaller.
	if fe.Bytes >= fd.Bytes {
		t.Fatalf("extent footprint %d not < dense %d", fe.Bytes, fd.Bytes)
	}
	// Huge-frame mode is the terabyte-scale configuration: the table
	// must cost under one byte of state per mapped base page.
	if fh.Bytes >= pages {
		t.Fatalf("huge footprint %d bytes >= 1 B/page over %d pages", fh.Bytes, pages)
	}
}

// FuzzExtentLockstep replays fuzz-found op streams through the lockstep
// harness. Each byte drives one step's op selection, so the corpus
// seeds below pin known-tricky interleavings (lazy split, re-merge at
// both edges, munmap with mixed eviction state).
func FuzzExtentLockstep(f *testing.F) {
	f.Add([]byte{0, 2, 2, 2, 2, 15, 2, 11})               // split then refill
	f.Add([]byte{2, 2, 2, 2, 16, 16, 18, 18, 2})          // double divergence, remerge
	f.Add([]byte{0, 2, 2, 11, 1, 0, 2, 2, 2, 15, 1})      // munmap with mixed state
	f.Add([]byte{2, 2, 2, 2, 2, 2, 11, 18, 11, 18, 2, 2}) // edge-state ping-pong
	f.Add([]byte{0, 0, 2, 2, 2, 1, 2, 2, 15, 16, 18, 1})  // region churn under evictions
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 4096 {
			t.Skip()
		}
		p := newLockstepPair(t)
		p.mmap(48, mem.Anon)
		p.mmap(96, mem.File)
		for i, b := range ops {
			// Derive a deterministic rng per step from the fuzz byte so
			// one byte selects both op and operand spread.
			rng := rand.New(rand.NewSource(int64(b)*2654435761 + int64(i)))
			p.step(rng)
		}
		p.check()
	})
}
