package report

import (
	"fmt"
	"strings"

	"tppsim/internal/metrics"
	"tppsim/internal/probe"
	"tppsim/internal/series"
	"tppsim/internal/vmstat"
)

// Dur formats a nanosecond value compactly for tables (255ns, 8.2µs,
// 1.3ms, ...). The top histogram bucket's sentinel bound renders as
// "inf".
func Dur(ns uint64) string {
	switch {
	case ns == ^uint64(0):
		return "inf"
	case ns < 1_000:
		return fmt.Sprintf("%dns", ns)
	case ns < 1_000_000:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	case ns < 1_000_000_000:
		return fmt.Sprintf("%.1fms", float64(ns)/1e6)
	default:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	}
}

// percentileRow renders one histogram as a percentile table row.
func percentileRow(t *Table, label string, h *probe.Histogram, fmtVal func(uint64) string) {
	s := h.Percentiles()
	if s.Count == 0 {
		t.AddRow(label, "0", "-", "-", "-", "-", "-", "-")
		return
	}
	t.AddRow(label,
		fmt.Sprintf("%d", s.Count),
		fmtVal(uint64(s.Mean)),
		fmtVal(s.P50), fmtVal(s.P90), fmtVal(s.P99), fmtVal(s.P999),
		fmtVal(h.Max()))
}

// PercentileTable renders a run's latency histogram set as one row per
// distribution: each node's access latency, the machine-wide merge, and
// the migration/allocstall/reclaim-batch histograms. labels name the
// nodes (NodeLabels shape); nil falls back to bare node numbers.
func PercentileTable(ls *probe.LatencySet, labels []string) *Table {
	if labels == nil {
		labels = NodeLabels(nil, len(ls.Access))
	}
	t := &Table{
		Title:   "Latency distributions",
		Columns: []string{"distribution", "count", "mean", "p50", "p90", "p99", "p99.9", "max"},
	}
	for i := range ls.Access {
		percentileRow(t, "access "+labels[i], &ls.Access[i], Dur)
	}
	total := ls.TotalAccess()
	percentileRow(t, "access all", &total, Dur)
	percentileRow(t, "promote", &ls.Promote, Dur)
	percentileRow(t, "demote", &ls.Demote, Dur)
	percentileRow(t, "allocstall", &ls.AllocStall, Dur)
	percentileRow(t, "reclaim batch", &ls.ReclaimBatch, func(v uint64) string {
		if v == ^uint64(0) {
			return "inf"
		}
		return fmt.Sprintf("%d", v)
	})
	t.AddNote("log2-bucketed: percentiles are bucket upper bounds (within one power of two of exact); reclaim batch is in pages, everything else in ns")
	return t
}

// PhaseTable renders a tick-phase profile: per phase the profiled tick
// count, the total wall-clock, its share of the whole, and the per-tick
// distribution.
func PhaseTable(p *probe.PhaseProfiler) *Table {
	t := &Table{
		Title:   "Tick-phase profile (host wall-clock)",
		Columns: []string{"phase", "ticks", "total", "share", "mean/tick", "p50", "p99"},
	}
	total := p.TotalNs()
	for ph := probe.Phase(0); int(ph) < probe.NumPhases; ph++ {
		h := p.Hist(ph)
		if h.Count() == 0 {
			continue
		}
		share := 0.0
		if total > 0 {
			share = float64(h.Sum()) / float64(total)
		}
		t.AddRow(ph.String(),
			fmt.Sprintf("%d", h.Count()),
			Dur(h.Sum()),
			Pct(share),
			Dur(uint64(h.Mean())),
			Dur(h.Quantile(0.50)), Dur(h.Quantile(0.99)))
	}
	if ticks := p.Ticks(); ticks > 0 {
		t.AddNote("%d ticks profiled, %s total, %s mean/tick; migration time is inside its driving phase (demotion under reclaim, promotion under numab)",
			ticks, Dur(total), Dur(total/ticks))
	}
	return t
}

// HistogramPanel renders one histogram as an ASCII bar panel: one line
// per occupied bucket span with its upper bound, count, share bar, and
// cumulative fraction.
func HistogramPanel(h *probe.Histogram, title string, fmtVal func(uint64) string) string {
	if fmtVal == nil {
		fmtVal = Dur
	}
	n := h.Count()
	var b strings.Builder
	fmt.Fprintf(&b, "%s  (n=%d, mean=%s)\n", title, n, fmtVal(uint64(h.Mean())))
	if n == 0 {
		return b.String()
	}
	lo, hi := 0, probe.NumBuckets-1
	for lo < probe.NumBuckets && h.Bucket(lo) == 0 {
		lo++
	}
	for hi >= 0 && h.Bucket(hi) == 0 {
		hi--
	}
	var peak uint64
	for i := lo; i <= hi; i++ {
		if c := h.Bucket(i); c > peak {
			peak = c
		}
	}
	const width = 40
	var cum uint64
	for i := lo; i <= hi; i++ {
		c := h.Bucket(i)
		cum += c
		bar := 0
		if peak > 0 {
			bar = int(c * width / peak)
		}
		if c > 0 && bar == 0 {
			bar = 1
		}
		fmt.Fprintf(&b, "  <=%-9s %10d |%-*s| %5.1f%%\n",
			fmtVal(probe.BucketBound(i)), c, width, strings.Repeat("#", bar),
			100*float64(cum)/float64(n))
	}
	return b.String()
}

// CDFColumnsCSV renders a family of histograms over a shared domain as
// CSV CDF columns: one row per bucket across the family's occupied
// range, with the bucket's upper bound (the x axis, e.g. latency in ns)
// and each histogram's cumulative fraction at that bound. Ready for
// plotting the paper's Fig. 6-style access-latency CDFs — one named
// column per policy.
func CDFColumnsCSV(hists []*probe.Histogram, names []string) string {
	var b strings.Builder
	b.WriteString("le_ns")
	totals := make([]uint64, len(hists))
	lo, hi := probe.NumBuckets, -1
	for i, h := range hists {
		fmt.Fprintf(&b, ",%s", names[i])
		totals[i] = h.Count()
		for j := 0; j < probe.NumBuckets; j++ {
			if h.Bucket(j) != 0 {
				if j < lo {
					lo = j
				}
				if j > hi {
					hi = j
				}
			}
		}
	}
	b.WriteString("\n")
	cums := make([]uint64, len(hists))
	for j := lo; j <= hi; j++ {
		fmt.Fprintf(&b, "%d", probe.BucketBound(j))
		for i, h := range hists {
			cums[i] += h.Bucket(j)
			frac := 0.0
			if totals[i] > 0 {
				frac = float64(cums[i]) / float64(totals[i])
			}
			fmt.Fprintf(&b, ",%.4f", frac)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// FlowDiffTable renders two sampled node series side by side: per node
// and counter, each run's whole-run total, the absolute delta, and the
// percent change ("new" when the counter only fires in B). Both series
// must describe machines with the same node count. Resident-at-end rows
// are included when both series carry levels. All-zero counters are
// skipped.
func FlowDiffTable(a, b *series.Series, labels []string) (*Table, error) {
	if a.Nodes() != b.Nodes() {
		return nil, fmt.Errorf("report: cannot diff series over %d vs %d nodes", a.Nodes(), b.Nodes())
	}
	if labels == nil {
		labels = NodeLabels(nil, a.Nodes())
	}
	t := &Table{
		Title:   "Per-node flow diff (A vs B, whole-run totals)",
		Columns: []string{"node", "counter", "A", "B", "delta", "delta%"},
	}
	// Union of the two series' active counters, A's order first.
	counters := a.ActiveCounters()
	seen := make(map[vmstat.Counter]bool, len(counters))
	for _, c := range counters {
		seen[c] = true
	}
	for _, c := range b.ActiveCounters() {
		if !seen[c] {
			counters = append(counters, c)
		}
	}
	diffCell := func(av, bv uint64) (string, string) {
		d := int64(bv) - int64(av)
		if av == 0 {
			if bv == 0 {
				return "0", "-"
			}
			return fmt.Sprintf("%+d", d), "new"
		}
		return fmt.Sprintf("%+d", d), fmt.Sprintf("%+.1f%%", 100*float64(d)/float64(av))
	}
	for n := 0; n < a.Nodes(); n++ {
		label := labels[n]
		for _, c := range counters {
			av, bv := a.DeltaTotal(n, c), b.DeltaTotal(n, c)
			if av == 0 && bv == 0 {
				continue
			}
			d, pct := diffCell(av, bv)
			t.AddRow(label, c.String(), fmt.Sprintf("%d", av), fmt.Sprintf("%d", bv), d, pct)
			label = "" // node label only on its first row
		}
		if a.HasLevels() && b.HasLevels() && a.Len() > 0 && b.Len() > 0 {
			av := a.Level(n, series.LevelResident, a.Len()-1)
			bv := b.Level(n, series.LevelResident, b.Len()-1)
			d, pct := diffCell(av, bv)
			t.AddRow(label, "resident (end)", fmt.Sprintf("%d", av), fmt.Sprintf("%d", bv), d, pct)
		}
	}
	t.AddNote("totals sum each counter over every sample window; delta%% is relative to A")
	return t, nil
}

// LatencyCDFSeries converts a latency set's per-policy total-access
// histograms into metrics.Series CDF curves for SeriesCSV-style output.
// Kept simple: x is the bucket bound in ns, y the cumulative fraction.
func LatencyCDFSeries(name string, h *probe.Histogram) *metrics.Series {
	s := &metrics.Series{Name: name}
	n := h.Count()
	if n == 0 {
		return s
	}
	var cum uint64
	for i := 0; i < probe.NumBuckets; i++ {
		c := h.Bucket(i)
		if c == 0 && cum == 0 {
			continue
		}
		cum += c
		s.Append(float64(probe.BucketBound(i)), float64(cum)/float64(n))
		if cum == n {
			break
		}
	}
	return s
}
