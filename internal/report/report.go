// Package report renders experiment results as aligned text tables and
// CSV series, the output formats of cmd/experiments and EXPERIMENTS.md.
package report

import (
	"fmt"
	"strings"

	"tppsim/internal/metrics"
	"tppsim/internal/vmstat"
)

// Table is a simple row-oriented result table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row; cells beyond len(Columns) are dropped, missing
// cells render empty.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a footnote line.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i := range t.Columns {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// NodeTable renders a run's per-node accounting — residency and the
// headline per-node vmstat counters from the node-indexed stats plane —
// as one row per memory node. Summing any counter column reproduces the
// run's global value exactly.
func NodeTable(r *metrics.Run) *Table {
	t := &Table{
		Title: fmt.Sprintf("Per-node stats — %s/%s", r.Workload, r.Policy),
		Columns: []string{"node", "kind", "tier", "resident", "util",
			"pgalloc", "pgpromote", "pgdemote", "hint faults", "allocstall"},
	}
	for _, n := range r.Nodes {
		util := 0.0
		if n.CapacityPages > 0 {
			util = float64(n.ResidentPages) / float64(n.CapacityPages)
		}
		t.AddRow(
			fmt.Sprintf("%d", n.ID),
			n.Kind,
			fmt.Sprintf("%d", n.Tier),
			fmt.Sprintf("%d/%d", n.ResidentPages, n.CapacityPages),
			Pct(util),
			fmt.Sprintf("%d", n.Get(vmstat.PgallocLocal)+n.Get(vmstat.PgallocCXL)),
			fmt.Sprintf("%d", n.Get(vmstat.PgpromoteSuccess)),
			fmt.Sprintf("%d", n.Get(vmstat.PgdemoteKswapd)+n.Get(vmstat.PgdemoteDirect)),
			fmt.Sprintf("%d", n.Get(vmstat.NumaHintFaults)),
			fmt.Sprintf("%d", n.Get(vmstat.PgallocStall)),
		)
	}
	t.AddNote("pgpromote counts promotions INTO the node, pgdemote demotions OFF it; see internal/vmstat for the full attribution")
	return t
}

// Pct formats a fraction as a percentage with one decimal.
func Pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

// F1 formats a float with one decimal.
func F1(f float64) string { return fmt.Sprintf("%.1f", f) }

// SeriesCSV renders one or more series with a shared X column as CSV.
// Series may have different lengths; missing cells render empty.
func SeriesCSV(xLabel string, series ...*metrics.Series) string {
	var b strings.Builder
	b.WriteString(xLabel)
	maxLen := 0
	for _, s := range series {
		fmt.Fprintf(&b, ",%s", s.Name)
		if s.Len() > maxLen {
			maxLen = s.Len()
		}
	}
	b.WriteString("\n")
	// The first series with points provides X values.
	var xs []float64
	for _, s := range series {
		if s.Len() == maxLen {
			xs = s.X
			break
		}
	}
	for i := 0; i < maxLen; i++ {
		fmt.Fprintf(&b, "%.2f", xs[i])
		for _, s := range series {
			if i < s.Len() {
				fmt.Fprintf(&b, ",%.4f", s.Y[i])
			} else {
				b.WriteString(",")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}
