// Package report renders experiment results as aligned text tables and
// CSV series, the output formats of cmd/experiments and EXPERIMENTS.md.
package report

import (
	"fmt"
	"strings"

	"tppsim/internal/metrics"
	"tppsim/internal/series"
	"tppsim/internal/vmstat"
	"tppsim/internal/workload"
)

// Table is a simple row-oriented result table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row; cells beyond len(Columns) are dropped, missing
// cells render empty.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a footnote line.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i := range t.Columns {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// NodeTable renders a run's per-node accounting — residency and the
// headline per-node vmstat counters from the node-indexed stats plane —
// as one row per memory node. Summing any counter column reproduces the
// run's global value exactly.
func NodeTable(r *metrics.Run) *Table {
	t := &Table{
		Title: fmt.Sprintf("Per-node stats — %s/%s", r.Workload, r.Policy),
		Columns: []string{"node", "kind", "tier", "resident", "util",
			"pgalloc", "pgpromote", "pgdemote", "hint faults", "allocstall"},
	}
	for _, n := range r.Nodes {
		util := 0.0
		if n.CapacityPages > 0 {
			util = float64(n.ResidentPages) / float64(n.CapacityPages)
		}
		t.AddRow(
			fmt.Sprintf("%d", n.ID),
			n.Kind,
			fmt.Sprintf("%d", n.Tier),
			fmt.Sprintf("%d/%d", n.ResidentPages, n.CapacityPages),
			Pct(util),
			fmt.Sprintf("%d", n.Get(vmstat.PgallocLocal)+n.Get(vmstat.PgallocCXL)),
			fmt.Sprintf("%d", n.Get(vmstat.PgpromoteSuccess)),
			fmt.Sprintf("%d", n.Get(vmstat.PgdemoteKswapd)+n.Get(vmstat.PgdemoteDirect)),
			fmt.Sprintf("%d", n.Get(vmstat.NumaHintFaults)),
			fmt.Sprintf("%d", n.Get(vmstat.PgallocStall)),
		)
	}
	t.AddNote("pgpromote counts promotions INTO the node, pgdemote demotions OFF it; see internal/vmstat for the full attribution")
	return t
}

// NodeLabels returns display labels for a series' nodes from a run's
// per-node accounting ("n0 local", "n1 cxl", ...); nil metadata falls
// back to bare node numbers.
func NodeLabels(nodes []metrics.NodeResult, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("n%d", i)
		if i < len(nodes) {
			out[i] = fmt.Sprintf("n%d %s", i, nodes[i].Kind)
		}
	}
	return out
}

// FlowTable renders a sampled node series as one row per sample window:
// the window's end minute, then per node the allocation, promotion, and
// demotion flows of the window and (when the series carries levels) the
// node's resident pages at the window's end. Delta cells are window
// sums, so each flow column totals to the run's global counter. Rebin
// the series first to bound the row count.
func FlowTable(s *series.Series, labels []string) *Table {
	if labels == nil {
		labels = NodeLabels(nil, s.Nodes())
	}
	t := &Table{
		Title:   fmt.Sprintf("Per-node flows over time (%d windows x %d ticks)", s.Len(), s.Cadence()),
		Columns: []string{"minute"},
	}
	for n := 0; n < s.Nodes(); n++ {
		t.Columns = append(t.Columns, labels[n]+" alloc", labels[n]+" promo", labels[n]+" demote")
		if s.HasLevels() {
			t.Columns = append(t.Columns, labels[n]+" resident")
		}
	}
	for i := 0; i < s.Len(); i++ {
		row := []string{fmt.Sprintf("%.1f", float64(s.EndTick(i)+1)/workload.TicksPerMinute)}
		for n := 0; n < s.Nodes(); n++ {
			row = append(row,
				fmt.Sprintf("%d", s.Delta(n, vmstat.PgallocLocal, i)+s.Delta(n, vmstat.PgallocCXL, i)),
				fmt.Sprintf("%d", s.Delta(n, vmstat.PgpromoteSuccess, i)),
				fmt.Sprintf("%d", s.Delta(n, vmstat.PgdemoteKswapd, i)+s.Delta(n, vmstat.PgdemoteDirect, i)))
			if s.HasLevels() {
				row = append(row, fmt.Sprintf("%d", s.Level(n, series.LevelResident, i)))
			}
		}
		t.AddRow(row...)
	}
	t.AddNote("promo counts promotions INTO the node, demote demotions OFF it (vmstat attribution)")
	return t
}

// sparkRunes are the eight block glyphs Sparkline scales into.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders vals as a width-glyph terminal strip, bucketing by
// mean and scaling min..max across the full value range. A flat series
// renders as a run of the lowest glyph.
func Sparkline(vals []float64, width int) string {
	if len(vals) == 0 || width <= 0 {
		return ""
	}
	if width > len(vals) {
		width = len(vals)
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for i := 0; i < width; i++ {
		start, end := i*len(vals)/width, (i+1)*len(vals)/width
		if end == start {
			end = start + 1
		}
		sum := 0.0
		for _, v := range vals[start:end] {
			sum += v
		}
		mean := sum / float64(end-start)
		idx := 0
		if hi > lo {
			idx = int((mean - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

// sparkColumn extracts one series column as floats for Sparkline.
func sparkColumn(s *series.Series, get func(i int) uint64) []float64 {
	out := make([]float64, s.Len())
	for i := range out {
		out[i] = float64(get(i))
	}
	return out
}

// SeriesPanel renders a sampled node series as terminal sparklines: per
// node one line each for residency (when present), promotion flow, and
// demotion flow, annotated with the min..max the strip spans.
func SeriesPanel(s *series.Series, labels []string) string {
	if labels == nil {
		labels = NodeLabels(nil, s.Nodes())
	}
	const width = 48
	var b strings.Builder
	fmt.Fprintf(&b, "node series: %d windows x %d ticks\n", s.Len(), s.Cadence())
	line := func(label, quantity string, vals []float64) {
		lo, hi := vals[0], vals[0]
		for _, v := range vals {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		fmt.Fprintf(&b, "  %-10s %-10s %s  %.0f..%.0f\n", label, quantity, Sparkline(vals, width), lo, hi)
	}
	for n := 0; n < s.Nodes(); n++ {
		if s.Len() == 0 {
			break
		}
		n := n
		if s.HasLevels() {
			line(labels[n], "resident", sparkColumn(s, func(i int) uint64 { return s.Level(n, series.LevelResident, i) }))
		}
		line(labels[n], "promote", sparkColumn(s, func(i int) uint64 { return s.Delta(n, vmstat.PgpromoteSuccess, i) }))
		line(labels[n], "demote", sparkColumn(s, func(i int) uint64 {
			return s.Delta(n, vmstat.PgdemoteKswapd, i) + s.Delta(n, vmstat.PgdemoteDirect, i)
		}))
	}
	return b.String()
}

// SeriesColumnsCSV renders the full sampled plane as CSV: one row per
// sample window with its end tick and minute, then per node the level
// columns (when present) and every delta column that is non-zero
// somewhere in the run (all-zero counters are skipped — most of the
// counter space is silent in any one run).
func SeriesColumnsCSV(s *series.Series, labels []string) string {
	if labels == nil {
		labels = NodeLabels(nil, s.Nodes())
	}
	slug := func(l string) string { return strings.ReplaceAll(l, " ", "_") }
	active := s.ActiveCounters()
	var b strings.Builder
	b.WriteString("tick,minute")
	for n := 0; n < s.Nodes(); n++ {
		if s.HasLevels() {
			for k := 0; k < series.NumLevels; k++ {
				fmt.Fprintf(&b, ",%s.%s", slug(labels[n]), series.LevelKind(k))
			}
		}
		for _, c := range active {
			fmt.Fprintf(&b, ",%s.%s", slug(labels[n]), c)
		}
	}
	b.WriteString("\n")
	for i := 0; i < s.Len(); i++ {
		fmt.Fprintf(&b, "%d,%.2f", s.EndTick(i), float64(s.EndTick(i)+1)/workload.TicksPerMinute)
		for n := 0; n < s.Nodes(); n++ {
			if s.HasLevels() {
				for k := 0; k < series.NumLevels; k++ {
					fmt.Fprintf(&b, ",%d", s.Level(n, series.LevelKind(k), i))
				}
			}
			for _, c := range active {
				fmt.Fprintf(&b, ",%d", s.Delta(n, c, i))
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Pct formats a fraction as a percentage with one decimal.
func Pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

// F1 formats a float with one decimal.
func F1(f float64) string { return fmt.Sprintf("%.1f", f) }

// SeriesCSV renders one or more series with a shared X column as CSV.
// Series may have different lengths; missing cells render empty.
func SeriesCSV(xLabel string, series ...*metrics.Series) string {
	var b strings.Builder
	b.WriteString(xLabel)
	maxLen := 0
	for _, s := range series {
		fmt.Fprintf(&b, ",%s", s.Name)
		if s.Len() > maxLen {
			maxLen = s.Len()
		}
	}
	b.WriteString("\n")
	// The first series with points provides X values.
	var xs []float64
	for _, s := range series {
		if s.Len() == maxLen {
			xs = s.X
			break
		}
	}
	for i := 0; i < maxLen; i++ {
		fmt.Fprintf(&b, "%.2f", xs[i])
		for _, s := range series {
			if i < s.Len() {
				fmt.Fprintf(&b, ",%.4f", s.Y[i])
			} else {
				b.WriteString(",")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}
