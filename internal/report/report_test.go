package report

import (
	"strings"
	"testing"

	"tppsim/internal/metrics"
)

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		Title:   "demo",
		Columns: []string{"name", "value"},
	}
	tbl.AddRow("alpha", "1")
	tbl.AddRow("a-very-long-name", "2")
	tbl.AddNote("a note %d", 7)
	out := tbl.String()
	if !strings.HasPrefix(out, "demo\n") {
		t.Fatalf("missing title:\n%s", out)
	}
	for _, want := range []string{"name", "value", "alpha", "a-very-long-name", "note: a note 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
	// Alignment: every data line should have the same prefix width up to
	// the second column.
	lines := strings.Split(out, "\n")
	idx := strings.Index(lines[1], "value")
	if strings.Index(lines[3], "1") != idx && strings.Index(lines[4], "2") != idx {
		t.Fatalf("columns not aligned:\n%s", out)
	}
}

func TestTableShortRow(t *testing.T) {
	tbl := &Table{Columns: []string{"a", "b", "c"}}
	tbl.AddRow("only-one")
	out := tbl.String()
	if !strings.Contains(out, "only-one") {
		t.Fatalf("short row dropped:\n%s", out)
	}
}

func TestFormatters(t *testing.T) {
	if Pct(0.125) != "12.5%" {
		t.Fatalf("Pct = %q", Pct(0.125))
	}
	if F1(3.14159) != "3.1" {
		t.Fatalf("F1 = %q", F1(3.14159))
	}
}

func TestSeriesCSV(t *testing.T) {
	a := &metrics.Series{Name: "a"}
	b := &metrics.Series{Name: "b"}
	for i := 0; i < 3; i++ {
		a.Append(float64(i), float64(i)*2)
	}
	b.Append(0, 9)
	out := SeriesCSV("minute", a, b)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "minute,a,b" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 4 {
		t.Fatalf("rows = %d, want 4:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "0.00,0.0000,9.0000") {
		t.Fatalf("row 1 = %q", lines[1])
	}
	// Shorter series renders empty cells.
	if !strings.HasSuffix(lines[2], ",") {
		t.Fatalf("row 2 should end with empty cell: %q", lines[2])
	}
}
