package report

import (
	"fmt"

	"tppsim/internal/metrics"
	"tppsim/internal/vmstat"
	"tppsim/internal/workload"
)

// FaultTimeline renders a faulted run's applied fault edges — one row
// per occurrence, in application order — followed by the run's fault
// counters. Returns nil when the run injected nothing.
func FaultTimeline(r *metrics.Run) *Table {
	if len(r.FaultLog) == 0 {
		return nil
	}
	t := &Table{
		Title:   fmt.Sprintf("Fault timeline — %s/%s", r.Workload, r.Policy),
		Columns: []string{"tick", "minute", "event", "node", "detail"},
	}
	for _, o := range r.FaultLog {
		node := "machine"
		if o.Node >= 0 {
			node = fmt.Sprintf("%d", o.Node)
		}
		t.AddRow(
			fmt.Sprintf("%d", o.Tick),
			F1(float64(o.Tick)/workload.TicksPerMinute),
			o.Kind.String(),
			node,
			o.Detail,
		)
	}
	var offline, evac, retry, drop uint64
	for _, n := range r.Nodes {
		offline += n.Get(vmstat.NodeOfflineEvents)
		evac += n.Get(vmstat.EvacuatedPages)
		retry += n.Get(vmstat.MigrateRetry)
		drop += n.Get(vmstat.MigrateBackoffDrop)
	}
	t.AddNote("%d offline events, %d pages evacuated, %d migration retries, %d pages dropped after backoff",
		offline, evac, retry, drop)
	return t
}
