package report

import (
	"fmt"

	"tppsim/internal/metrics"
)

// TrackerSummary renders the sampled-tracking plane's end-of-run
// numbers — which tracker ran, what the scans cost, how the regions
// adapted, what the mover shipped, and (when the oracle ran) hot-set
// precision/recall against ground truth. Returns nil for tracker-off
// runs.
func TrackerSummary(r *metrics.Run) *Table {
	ts := r.Tracker
	if ts == nil {
		return nil
	}
	t := &Table{
		Title:   fmt.Sprintf("Tracker — %s/%s", r.Workload, r.Policy),
		Columns: []string{"metric", "value"},
	}
	t.AddRow("tracker", ts.Spec)
	t.AddRow("scans", fmt.Sprintf("%d (every %d ticks)", ts.Scans, ts.ScanEveryTicks))
	t.AddRow("pages scanned", fmt.Sprintf("%d (%.1f/tick)", ts.PagesScanned, ts.ScannedPerTick))
	if ts.Kind == "damon" {
		t.AddRow("regions split/merged", fmt.Sprintf("%d / %d", ts.RegionsSplit, ts.RegionsMerged))
	}
	t.AddRow("mover moved", fmt.Sprintf("%d", ts.MoverMoved))
	t.AddRow("mover deferred", fmt.Sprintf("%d", ts.MoverDeferred))
	t.AddRow("ranges hot/warm/cold", fmt.Sprintf("%d / %d / %d (%d pages each)",
		ts.HotRanges, ts.WarmRanges, ts.ColdRanges, ts.RangePages))
	if ts.OracleEvals > 0 {
		t.AddRow("oracle precision", Pct(ts.Precision))
		t.AddRow("oracle recall", Pct(ts.Recall))
		t.AddNote("precision/recall are means over %d scan windows vs exact access counts", ts.OracleEvals)
	}
	return t
}

// TrackerHeatPanel renders the final heatmap as a sparkline over the
// PFN space — the tracker's closing belief about where the heat is.
// Returns "" for tracker-off runs.
func TrackerHeatPanel(r *metrics.Run, width int) string {
	ts := r.Tracker
	if ts == nil || len(ts.Heat) == 0 {
		return ""
	}
	lo, hi := ts.Heat[0], ts.Heat[0]
	for _, h := range ts.Heat {
		if h < lo {
			lo = h
		}
		if h > hi {
			hi = h
		}
	}
	return fmt.Sprintf("heatmap over PFN space (%d ranges × %d pages, heat %.1f..%.1f)\n  %s\n",
		len(ts.Heat), ts.RangePages, lo, hi, Sparkline(ts.Heat, width))
}
