package tier

import (
	"testing"

	"tppsim/internal/mem"
)

func mustCXL(t *testing.T, cfg Config) *Topology {
	t.Helper()
	topo, err := NewCXLSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestNewCXLSystem(t *testing.T) {
	topo := mustCXL(t, Config{LocalPages: 1000, CXLPages: 500})
	if topo.NumNodes() != 2 {
		t.Fatalf("NumNodes = %d", topo.NumNodes())
	}
	if topo.Node(0).Kind != mem.KindLocal || topo.Node(1).Kind != mem.KindCXL {
		t.Fatal("node kinds wrong")
	}
	if !topo.Traits(0).HasCPU || topo.Traits(1).HasCPU {
		t.Fatal("CPU traits wrong")
	}
	if topo.Traits(1).LoadLatency != CXLLatencyDefaultNs {
		t.Fatalf("default CXL latency = %v", topo.Traits(1).LoadLatency)
	}
	if topo.TotalCapacity() != 1500 {
		t.Fatalf("TotalCapacity = %d", topo.TotalCapacity())
	}
}

func TestBaselineSingleNode(t *testing.T) {
	topo := mustCXL(t, Config{LocalPages: 1000})
	if topo.NumNodes() != 1 {
		t.Fatalf("baseline NumNodes = %d", topo.NumNodes())
	}
	if topo.DemotionTarget(0) != mem.NilNode {
		t.Fatal("baseline has a demotion target")
	}
	if len(topo.CXLNodes()) != 0 || len(topo.LocalNodes()) != 1 {
		t.Fatal("node kind lists wrong")
	}
}

func TestLatencyOverride(t *testing.T) {
	topo := mustCXL(t, Config{LocalPages: 10, CXLPages: 10, CXLLatencyNs: 300})
	if topo.Traits(1).LoadLatency != 300 {
		t.Fatal("CXLLatencyNs ignored")
	}
	topo.SetLatency(1, 250)
	if topo.Traits(1).LoadLatency != 250 {
		t.Fatal("SetLatency ignored")
	}
}

func TestDemotionAndPromotionTargets(t *testing.T) {
	topo := mustCXL(t, Config{LocalPages: 100, CXLPages: 50})
	if got := topo.DemotionTarget(0); got != 1 {
		t.Fatalf("DemotionTarget = %d", got)
	}
	if got := topo.PromotionTarget(); got != 0 {
		t.Fatalf("PromotionTarget = %d", got)
	}
}

func TestPromotionTargetPicksLowestPressure(t *testing.T) {
	// Hand-build a 3-node machine: two local, one CXL.
	n0 := mem.NewNode(0, mem.KindLocal, 100, 0.02)
	n1 := mem.NewNode(1, mem.KindLocal, 100, 0.02)
	n2 := mem.NewNode(2, mem.KindCXL, 100, 0.02)
	topo, err := New(
		[]*mem.Node{n0, n1, n2},
		[]Traits{
			{LoadLatency: 100, BandwidthMBps: 38400, HasCPU: true},
			{LoadLatency: 180, BandwidthMBps: 32000, HasCPU: true},
			{LoadLatency: 220, BandwidthMBps: 64000, HasCPU: false},
		},
		[][]int{{10, 21, 20}, {21, 10, 25}, {20, 25, 10}},
	)
	if err != nil {
		t.Fatal(err)
	}
	// Fill node0 more than node1.
	for i := 0; i < 90; i++ {
		n0.Acquire(mem.Anon)
	}
	for i := 0; i < 10; i++ {
		n1.Acquire(mem.Anon)
	}
	if got := topo.PromotionTarget(); got != 1 {
		t.Fatalf("PromotionTarget = %d, want 1 (less pressure)", got)
	}
	// Demotion from node1 picks nearest CXL node (node2 is the only one).
	if got := topo.DemotionTarget(1); got != 2 {
		t.Fatalf("DemotionTarget(1) = %d", got)
	}
}

func TestFallbackOrder(t *testing.T) {
	topo := mustCXL(t, Config{LocalPages: 10, CXLPages: 10})
	order := topo.FallbackOrder(0)
	if len(order) != 2 || order[0] != 0 || order[1] != 1 {
		t.Fatalf("FallbackOrder(0) = %v", order)
	}
	order = topo.FallbackOrder(1)
	if order[0] != 1 || order[1] != 0 {
		t.Fatalf("FallbackOrder(1) = %v", order)
	}
}

func TestNewValidation(t *testing.T) {
	n0 := mem.NewNode(0, mem.KindLocal, 10, 0.02)
	tr := []Traits{{LoadLatency: 100, HasCPU: true}}
	if _, err := New([]*mem.Node{n0}, tr, [][]int{{10, 20}}); err == nil {
		t.Fatal("bad distance row accepted")
	}
	if _, err := New([]*mem.Node{n0}, nil, [][]int{{10}}); err == nil {
		t.Fatal("mismatched traits accepted")
	}
	// Self-distance must be row minimum.
	n1 := mem.NewNode(1, mem.KindCXL, 10, 0.02)
	tr2 := []Traits{{LoadLatency: 100, HasCPU: true}, {LoadLatency: 220, HasCPU: false}}
	if _, err := New([]*mem.Node{n0, n1}, tr2, [][]int{{10, 5}, {20, 10}}); err == nil {
		t.Fatal("distance below self-distance accepted")
	}
	// Kind/CPU mismatch.
	bad := []Traits{{LoadLatency: 100, HasCPU: false}, {LoadLatency: 220, HasCPU: false}}
	if _, err := New([]*mem.Node{n0, n1}, bad, [][]int{{10, 20}, {20, 10}}); err == nil {
		t.Fatal("kind/CPU mismatch accepted")
	}
}

func TestRatioPages(t *testing.T) {
	local, cxl := RatioPages(3000, 2, 1, 0)
	if local != 2000 || cxl != 1000 {
		t.Fatalf("2:1 split = %d:%d", local, cxl)
	}
	local, cxl = RatioPages(5000, 1, 4, 0)
	if local != 1000 || cxl != 4000 {
		t.Fatalf("1:4 split = %d:%d", local, cxl)
	}
	// Slack grows the total.
	local, cxl = RatioPages(1000, 1, 1, 0.1)
	if local+cxl != 1100 {
		t.Fatalf("slack total = %d", local+cxl)
	}
}

func TestZeroLocalRejected(t *testing.T) {
	if _, err := NewCXLSystem(Config{}); err == nil {
		t.Fatal("zero local pages accepted")
	}
}
