package tier

import (
	"testing"

	"tppsim/internal/mem"
)

func mustCXL(t *testing.T, cfg Config) *Topology {
	t.Helper()
	topo, err := NewCXLSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestNewCXLSystem(t *testing.T) {
	topo := mustCXL(t, Config{LocalPages: 1000, CXLPages: 500})
	if topo.NumNodes() != 2 {
		t.Fatalf("NumNodes = %d", topo.NumNodes())
	}
	if topo.Node(0).Kind != mem.KindLocal || topo.Node(1).Kind != mem.KindCXL {
		t.Fatal("node kinds wrong")
	}
	if !topo.Traits(0).HasCPU || topo.Traits(1).HasCPU {
		t.Fatal("CPU traits wrong")
	}
	if topo.Traits(1).LoadLatency != CXLLatencyDefaultNs {
		t.Fatalf("default CXL latency = %v", topo.Traits(1).LoadLatency)
	}
	if topo.TotalCapacity() != 1500 {
		t.Fatalf("TotalCapacity = %d", topo.TotalCapacity())
	}
}

func TestBaselineSingleNode(t *testing.T) {
	topo := mustCXL(t, Config{LocalPages: 1000})
	if topo.NumNodes() != 1 {
		t.Fatalf("baseline NumNodes = %d", topo.NumNodes())
	}
	if topo.DemotionTarget(0) != mem.NilNode {
		t.Fatal("baseline has a demotion target")
	}
	if len(topo.CXLNodes()) != 0 || len(topo.LocalNodes()) != 1 {
		t.Fatal("node kind lists wrong")
	}
}

func TestLatencyOverride(t *testing.T) {
	topo := mustCXL(t, Config{LocalPages: 10, CXLPages: 10, CXLLatencyNs: 300})
	if topo.Traits(1).LoadLatency != 300 {
		t.Fatal("CXLLatencyNs ignored")
	}
	topo.SetLatency(1, 250)
	if topo.Traits(1).LoadLatency != 250 {
		t.Fatal("SetLatency ignored")
	}
}

func TestDemotionAndPromotionTargets(t *testing.T) {
	topo := mustCXL(t, Config{LocalPages: 100, CXLPages: 50})
	if got := topo.DemotionTarget(0); got != 1 {
		t.Fatalf("DemotionTarget = %d", got)
	}
	if got := topo.PromotionTarget(); got != 0 {
		t.Fatalf("PromotionTarget = %d", got)
	}
}

func TestPromotionTargetPicksLowestPressure(t *testing.T) {
	// Hand-build a 3-node machine: two local, one CXL.
	n0 := mem.NewNode(0, mem.KindLocal, 100, 0.02)
	n1 := mem.NewNode(1, mem.KindLocal, 100, 0.02)
	n2 := mem.NewNode(2, mem.KindCXL, 100, 0.02)
	topo, err := New(
		[]*mem.Node{n0, n1, n2},
		[]Traits{
			{LoadLatency: 100, BandwidthMBps: 38400, HasCPU: true},
			{LoadLatency: 180, BandwidthMBps: 32000, HasCPU: true},
			{LoadLatency: 220, BandwidthMBps: 64000, HasCPU: false},
		},
		[][]int{{10, 21, 20}, {21, 10, 25}, {20, 25, 10}},
	)
	if err != nil {
		t.Fatal(err)
	}
	// Fill node0 more than node1.
	for i := 0; i < 90; i++ {
		n0.Acquire(mem.Anon)
	}
	for i := 0; i < 10; i++ {
		n1.Acquire(mem.Anon)
	}
	if got := topo.PromotionTarget(); got != 1 {
		t.Fatalf("PromotionTarget = %d, want 1 (less pressure)", got)
	}
	// Demotion from node1 picks nearest CXL node (node2 is the only one).
	if got := topo.DemotionTarget(1); got != 2 {
		t.Fatalf("DemotionTarget(1) = %d", got)
	}
}

func TestFallbackOrder(t *testing.T) {
	topo := mustCXL(t, Config{LocalPages: 10, CXLPages: 10})
	order := topo.FallbackOrder(0)
	if len(order) != 2 || order[0] != 0 || order[1] != 1 {
		t.Fatalf("FallbackOrder(0) = %v", order)
	}
	order = topo.FallbackOrder(1)
	if order[0] != 1 || order[1] != 0 {
		t.Fatalf("FallbackOrder(1) = %v", order)
	}
}

func TestNewValidation(t *testing.T) {
	n0 := mem.NewNode(0, mem.KindLocal, 10, 0.02)
	tr := []Traits{{LoadLatency: 100, HasCPU: true}}
	if _, err := New([]*mem.Node{n0}, tr, [][]int{{10, 20}}); err == nil {
		t.Fatal("bad distance row accepted")
	}
	if _, err := New([]*mem.Node{n0}, nil, [][]int{{10}}); err == nil {
		t.Fatal("mismatched traits accepted")
	}
	// Self-distance must be row minimum.
	n1 := mem.NewNode(1, mem.KindCXL, 10, 0.02)
	tr2 := []Traits{{LoadLatency: 100, HasCPU: true}, {LoadLatency: 220, HasCPU: false}}
	if _, err := New([]*mem.Node{n0, n1}, tr2, [][]int{{10, 5}, {20, 10}}); err == nil {
		t.Fatal("distance below self-distance accepted")
	}
	// Kind/CPU mismatch.
	bad := []Traits{{LoadLatency: 100, HasCPU: false}, {LoadLatency: 220, HasCPU: false}}
	if _, err := New([]*mem.Node{n0, n1}, bad, [][]int{{10, 20}, {20, 10}}); err == nil {
		t.Fatal("kind/CPU mismatch accepted")
	}
}

func TestRatioPages(t *testing.T) {
	local, cxl := RatioPages(3000, 2, 1, 0)
	if local != 2000 || cxl != 1000 {
		t.Fatalf("2:1 split = %d:%d", local, cxl)
	}
	local, cxl = RatioPages(5000, 1, 4, 0)
	if local != 1000 || cxl != 4000 {
		t.Fatalf("1:4 split = %d:%d", local, cxl)
	}
	// Slack grows the total.
	local, cxl = RatioPages(1000, 1, 1, 0.1)
	if local+cxl != 1100 {
		t.Fatalf("slack total = %d", local+cxl)
	}
}

func TestZeroLocalRejected(t *testing.T) {
	if _, err := NewCXLSystem(Config{}); err == nil {
		t.Fatal("zero local pages accepted")
	}
}

func TestSpecValidationErrors(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		ws   uint64
	}{
		{"no nodes", Spec{Name: "empty"}, 0},
		{"no CPU node", Spec{Name: "cpuless", Nodes: []NodeSpec{{Kind: mem.KindCXL, Pages: 10}}}, 0},
		{"CXL node first", Spec{Name: "inverted", Nodes: []NodeSpec{
			{Kind: mem.KindCXL, Pages: 10}, {Kind: mem.KindLocal, Pages: 10}}}, 0},
		{"pages and share both set", Spec{Name: "both", Nodes: []NodeSpec{
			{Kind: mem.KindLocal, Pages: 10, Share: 1}}}, 100},
		{"pages and share both zero", Spec{Name: "neither", Nodes: []NodeSpec{
			{Kind: mem.KindLocal}}}, 100},
		{"shares without working set", Spec{Name: "nows", Nodes: []NodeSpec{
			{Kind: mem.KindLocal, Share: 1}}}, 0},
		{"distance rows mismatched", Spec{Name: "baddist",
			Nodes:    []NodeSpec{{Kind: mem.KindLocal, Pages: 10}},
			Distance: [][]int{{10, 20}, {20, 10}}}, 0},
		{"distance below self-distance", Spec{Name: "badmin",
			Nodes: []NodeSpec{
				{Kind: mem.KindLocal, Pages: 10}, {Kind: mem.KindCXL, Pages: 10}},
			Distance: [][]int{{10, 5}, {20, 10}}}, 0},
		{"share rounds to zero pages", Spec{Name: "tiny", Nodes: []NodeSpec{
			{Kind: mem.KindLocal, Share: 1}, {Kind: mem.KindCXL, Share: 100000}}}, 10},
	}
	for _, c := range cases {
		if _, err := c.spec.Build(c.ws, 0); err == nil {
			t.Errorf("%s: Build accepted invalid spec", c.name)
		}
	}
}

func TestSpecShareSplitMatchesRatioPages(t *testing.T) {
	// The spec share split must reproduce the legacy RatioPages
	// arithmetic bit for bit — the default machine's sizing is pinned by
	// the seed-determinism golden test.
	for _, c := range [][2]uint64{{2, 1}, {1, 4}, {3, 2}} {
		wantLocal, wantCXL := RatioPages(16*1024, c[0], c[1], 0.08)
		topo, err := PresetCXL(c[0], c[1]).Build(16*1024, 0.08)
		if err != nil {
			t.Fatal(err)
		}
		if got := topo.Node(0).Capacity; got != wantLocal {
			t.Errorf("%d:%d local = %d, want %d", c[0], c[1], got, wantLocal)
		}
		if got := topo.Node(1).Capacity; got != wantCXL {
			t.Errorf("%d:%d cxl = %d, want %d", c[0], c[1], got, wantCXL)
		}
	}
}

func TestExpanderCascade(t *testing.T) {
	topo, err := PresetExpander(2, 1, 1).Build(8*1024, 0.08)
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumTiers() != 3 {
		t.Fatalf("NumTiers = %d, want 3", topo.NumTiers())
	}
	for id, want := range []int{0, 1, 2} {
		if got := topo.TierOf(mem.NodeID(id)); got != want {
			t.Errorf("TierOf(%d) = %d, want %d", id, got, want)
		}
	}
	// Demotion cascades: local → [near, far]; near → [far]; far → [].
	if got := topo.DemotionTargets(0); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("DemotionTargets(0) = %v, want [1 2]", got)
	}
	if got := topo.DemotionTargets(1); len(got) != 1 || got[0] != 2 {
		t.Errorf("DemotionTargets(1) = %v, want [2]", got)
	}
	if got := topo.DemotionTargets(2); len(got) != 0 {
		t.Errorf("DemotionTargets(2) = %v, want empty", got)
	}
	// Promotion climbs one hop: far → near, near → local, local → nil.
	if got := topo.PromotionTargetFrom(2); got != 1 {
		t.Errorf("PromotionTargetFrom(2) = %d, want 1", got)
	}
	if got := topo.PromotionTargetFrom(1); got != 0 {
		t.Errorf("PromotionTargetFrom(1) = %d, want 0", got)
	}
	if got := topo.PromotionTargetFrom(0); got != mem.NilNode {
		t.Errorf("PromotionTargetFrom(0) = %d, want nil", got)
	}
	if topo.Traits(2).LoadLatency != FarCXLLatencyNs {
		t.Errorf("far latency = %v", topo.Traits(2).LoadLatency)
	}
}

func TestDualSocketCascadeOrdering(t *testing.T) {
	topo, err := PresetDualSocket().Build(8*1024, 0.08)
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumTiers() != 2 {
		t.Fatalf("NumTiers = %d, want 2", topo.NumTiers())
	}
	// Each socket demotes to its own expander first, the remote one second.
	if got := topo.DemotionTargets(0); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("DemotionTargets(0) = %v, want [2 3]", got)
	}
	if got := topo.DemotionTargets(1); len(got) != 2 || got[0] != 3 || got[1] != 2 {
		t.Errorf("DemotionTargets(1) = %v, want [3 2]", got)
	}
	// Promotion from either expander picks the least-pressured socket.
	for i := 0; i < 30; i++ {
		topo.Node(0).Acquire(mem.Anon)
	}
	if got := topo.PromotionTargetFrom(2); got != 1 {
		t.Errorf("PromotionTargetFrom(2) = %d, want 1 (less pressure)", got)
	}
}

func TestPromotionTargetToward(t *testing.T) {
	topo, err := PresetDualSocket().Build(8*1024, 0.08)
	if err != nil {
		t.Fatal(err)
	}
	// Pressure socket 1 so the least-pressured fallback would be socket 0.
	for i := 0; i < 30; i++ {
		topo.Node(1).Acquire(mem.Anon)
	}
	if got := topo.PromotionTargetFrom(3); got != 0 {
		t.Fatalf("fixture: PromotionTargetFrom(3) = %d, want 0 (least pressure)", got)
	}
	// Home-socket affinity overrides least-pressure: a page whose
	// threads run on socket 1 promotes there.
	if got := topo.PromotionTargetToward(1, 3); got != 1 {
		t.Errorf("PromotionTargetToward(1, 3) = %d, want home socket 1", got)
	}
	// A full home falls back to the least-pressured node of the tier.
	for topo.Node(1).Free() > 0 {
		topo.Node(1).Acquire(mem.Anon)
	}
	if got := topo.PromotionTargetToward(1, 3); got != 0 {
		t.Errorf("PromotionTargetToward(1, 3) with socket 1 full = %d, want fallback 0", got)
	}
	// CPU-tier pages have nowhere to go, as before.
	if got := topo.PromotionTargetToward(0, 0); got != mem.NilNode {
		t.Errorf("PromotionTargetToward(0, 0) = %d, want nil", got)
	}

	// Single-socket machines: identical to PromotionTargetFrom, full or
	// not — the home node is the only node of the CPU tier.
	single, err := PresetCXL(2, 1).Build(8*1024, 0.08)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := single.PromotionTargetToward(0, 1), single.PromotionTargetFrom(1); got != want {
		t.Errorf("single-socket PromotionTargetToward(0,1) = %d, want %d", got, want)
	}
	for single.Node(0).Free() > 0 {
		single.Node(0).Acquire(mem.Anon)
	}
	if got, want := single.PromotionTargetToward(0, 1), single.PromotionTargetFrom(1); got != want {
		t.Errorf("single-socket (full) PromotionTargetToward(0,1) = %d, want %d", got, want)
	}

	// Multi-hop climbs: a far-tier page's home CPU node is two tiers up,
	// so the one-hop rule is unchanged.
	exp, err := PresetExpander(2, 1, 1).Build(8*1024, 0.08)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := exp.PromotionTargetToward(0, 2), exp.PromotionTargetFrom(2); got != want {
		t.Errorf("expander PromotionTargetToward(0,2) = %d, want %d", got, want)
	}
}

func TestSpecRoundTrip(t *testing.T) {
	topo, err := PresetExpander(2, 1, 1).Build(8*1024, 0.08)
	if err != nil {
		t.Fatal(err)
	}
	spec := topo.Spec()
	if spec.Name != PresetNameExpander {
		t.Errorf("round-trip name = %q", spec.Name)
	}
	rebuilt, err := spec.Build(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt.NumNodes() != topo.NumNodes() {
		t.Fatalf("round-trip nodes = %d", rebuilt.NumNodes())
	}
	for i := 0; i < topo.NumNodes(); i++ {
		id := mem.NodeID(i)
		if rebuilt.Node(id).Capacity != topo.Node(id).Capacity ||
			rebuilt.Node(id).Kind != topo.Node(id).Kind ||
			rebuilt.Node(id).WM != topo.Node(id).WM ||
			rebuilt.Traits(id) != topo.Traits(id) ||
			rebuilt.TierOf(id) != topo.TierOf(id) {
			t.Errorf("node %d diverged after round-trip", i)
		}
	}
}

// TestAccessLatencyAsymmetricMatrix pins the access-direction fix: on a
// single-CPU machine every access comes from the node's nearest (only)
// CPU, so AccessLatency must equal the trait latency even when the
// distance matrix is asymmetric — the penalty is measured against the
// CPU->node direction, not the node->CPU one tiering uses.
func TestAccessLatencyAsymmetricMatrix(t *testing.T) {
	nodes := []*mem.Node{
		mem.NewNode(0, mem.KindLocal, 100, 0.02),
		mem.NewNode(1, mem.KindCXL, 100, 0.02),
	}
	traits := []Traits{
		{LoadLatency: LocalDRAMLatencyNs, BandwidthMBps: DDRChannelBandwidthMBps, HasCPU: true},
		{LoadLatency: CXLLatencyDefaultNs, BandwidthMBps: CXLx16BandwidthMBps, HasCPU: false},
	}
	topo, err := New(nodes, traits, [][]int{{10, 25}, {20, 10}})
	if err != nil {
		t.Fatal(err)
	}
	if got := topo.AccessLatency(0, 0); got != LocalDRAMLatencyNs {
		t.Errorf("AccessLatency(0,0) = %v, want %v", got, LocalDRAMLatencyNs)
	}
	if got := topo.AccessLatency(0, 1); got != CXLLatencyDefaultNs {
		t.Errorf("AccessLatency(0,1) = %v, want %v (lone CPU must pay no penalty)", got, CXLLatencyDefaultNs)
	}
}
