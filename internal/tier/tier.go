// Package tier describes the memory topology of a tiered machine: which
// nodes exist, their performance traits (load latency, link bandwidth),
// the inter-node distance matrix, and the demotion-target selection rule
// (§5.1 of the paper: "the demotion target is chosen based on the node
// distances from the CPU").
//
// The latency constants default to the paper's published figures (Fig. 2,
// Fig. 5): ~100 ns local DRAM, ~170–250 ns CXL-Memory, ~180 ns remote
// socket on a dual-socket system.
package tier

import (
	"fmt"

	"tppsim/internal/mem"
)

// Traits are the performance characteristics of one memory node.
type Traits struct {
	// LoadLatency is the average loaded CPU-to-memory read latency in
	// nanoseconds.
	LoadLatency float64
	// BandwidthMBps is the node's sustainable migration/link bandwidth in
	// MB/s (38,400 for a DDR5 channel, 64,000 for a CXL x16 link; Fig. 5).
	BandwidthMBps float64
	// HasCPU reports whether the node has CPU cores attached. CXL-Memory
	// appears to the OS as a CPU-less NUMA node.
	HasCPU bool
}

// Standard latency/bandwidth constants from the paper (Figs. 2 and 5).
const (
	LocalDRAMLatencyNs  = 100.0
	RemoteSocketLatency = 180.0
	CXLLatencyDefaultNs = 220.0 // middle of the 170–250 ns band
	CXLLatencyMinNs     = 170.0
	CXLLatencyMaxNs     = 250.0

	DDRChannelBandwidthMBps  = 38400.0
	CXLx16BandwidthMBps      = 64000.0
	CrossSocketBandwidthMBps = 32000.0
)

// Topology is the set of nodes plus their distance matrix and traits.
type Topology struct {
	nodes    []*mem.Node
	traits   []Traits
	distance [][]int
}

// New assembles a topology. distance must be square with len(nodes) rows;
// distance[i][i] must be the minimum of row i.
func New(nodes []*mem.Node, traits []Traits, distance [][]int) (*Topology, error) {
	if len(nodes) != len(traits) || len(nodes) != len(distance) {
		return nil, fmt.Errorf("tier: mismatched sizes: %d nodes, %d traits, %d distance rows",
			len(nodes), len(traits), len(distance))
	}
	for i, row := range distance {
		if len(row) != len(nodes) {
			return nil, fmt.Errorf("tier: distance row %d has %d entries", i, len(row))
		}
		for j, d := range row {
			if i != j && d <= row[i] {
				return nil, fmt.Errorf("tier: distance[%d][%d]=%d not greater than self-distance %d", i, j, d, row[i])
			}
		}
	}
	for i, n := range nodes {
		if n.ID != mem.NodeID(i) {
			return nil, fmt.Errorf("tier: node %d has ID %d; IDs must be dense", i, n.ID)
		}
		if traits[i].HasCPU != (n.Kind == mem.KindLocal) {
			return nil, fmt.Errorf("tier: node %d kind/CPU mismatch", i)
		}
	}
	return &Topology{nodes: nodes, traits: traits, distance: distance}, nil
}

// NumNodes returns the node count.
func (t *Topology) NumNodes() int { return len(t.nodes) }

// Node returns the node with the given ID.
func (t *Topology) Node(id mem.NodeID) *mem.Node { return t.nodes[id] }

// Nodes returns the node list (shared, not a copy).
func (t *Topology) Nodes() []*mem.Node { return t.nodes }

// Traits returns the traits of the given node.
func (t *Topology) Traits(id mem.NodeID) Traits { return t.traits[id] }

// SetLatency overrides the load latency of a node; used by the Fig. 16
// CXL-latency sweep.
func (t *Topology) SetLatency(id mem.NodeID, ns float64) { t.traits[id].LoadLatency = ns }

// Distance returns the NUMA distance between two nodes.
func (t *Topology) Distance(a, b mem.NodeID) int { return t.distance[a][b] }

// LocalNodes returns the IDs of CPU-attached nodes in ID order.
func (t *Topology) LocalNodes() []mem.NodeID {
	var out []mem.NodeID
	for i, n := range t.nodes {
		if n.Kind == mem.KindLocal {
			out = append(out, mem.NodeID(i))
		}
	}
	return out
}

// CXLNodes returns the IDs of CPU-less CXL nodes in ID order.
func (t *Topology) CXLNodes() []mem.NodeID {
	var out []mem.NodeID
	for i, n := range t.nodes {
		if n.Kind == mem.KindCXL {
			out = append(out, mem.NodeID(i))
		}
	}
	return out
}

// DemotionTarget returns the CXL node nearest (by distance) to the given
// local node — the §5.1 static distance-based demotion rule. Returns
// mem.NilNode when the machine has no CXL node (the all-local baseline).
func (t *Topology) DemotionTarget(from mem.NodeID) mem.NodeID {
	best := mem.NilNode
	bestDist := int(^uint(0) >> 1)
	for _, id := range t.CXLNodes() {
		if d := t.distance[from][id]; d < bestDist {
			best, bestDist = id, d
		}
	}
	return best
}

// PromotionTarget returns the local node with the most free pages — §5.3:
// "when applications share multiple memory nodes, we choose the local node
// with the lowest memory pressure". Returns mem.NilNode when there is no
// local node.
func (t *Topology) PromotionTarget() mem.NodeID {
	best := mem.NilNode
	var bestFree uint64
	for _, id := range t.LocalNodes() {
		if f := t.nodes[id].Free(); best == mem.NilNode || f > bestFree {
			best, bestFree = id, f
		}
	}
	return best
}

// FallbackOrder returns all node IDs ordered by distance from the given
// node (self first) — the allocator's zonelist.
func (t *Topology) FallbackOrder(from mem.NodeID) []mem.NodeID {
	out := make([]mem.NodeID, 0, len(t.nodes))
	for i := range t.nodes {
		out = append(out, mem.NodeID(i))
	}
	// Insertion sort by distance; node counts are tiny.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && t.distance[from][out[j]] < t.distance[from][out[j-1]]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// TotalCapacity returns the machine's total memory in pages.
func (t *Topology) TotalCapacity() uint64 {
	var s uint64
	for _, n := range t.nodes {
		s += n.Capacity
	}
	return s
}

// Config describes a machine to build with the standard constructors.
type Config struct {
	// LocalPages and CXLPages size the two tiers. CXLPages == 0 builds the
	// all-local baseline machine.
	LocalPages uint64
	CXLPages   uint64
	// CXLLatencyNs overrides the CXL load latency (0 means the 220 ns
	// default).
	CXLLatencyNs float64
	// DemoteScaleFactor is the /proc/sys/vm/demote_scale_factor analogue
	// (0 means the 2% default).
	DemoteScaleFactor float64
}

// NewCXLSystem builds the paper's target machine: one CPU-attached local
// node (node 0) and one CPU-less CXL node (node 1), with distances
// mirroring a local/remote NUMA pair. With cfg.CXLPages == 0 it builds the
// single-node baseline ("all memory in the local tier").
func NewCXLSystem(cfg Config) (*Topology, error) {
	if cfg.LocalPages == 0 {
		return nil, fmt.Errorf("tier: LocalPages must be positive")
	}
	sf := cfg.DemoteScaleFactor
	if sf == 0 {
		sf = 0.02
	}
	lat := cfg.CXLLatencyNs
	if lat == 0 {
		lat = CXLLatencyDefaultNs
	}
	local := mem.NewNode(0, mem.KindLocal, cfg.LocalPages, sf)
	if cfg.CXLPages == 0 {
		return New(
			[]*mem.Node{local},
			[]Traits{{LoadLatency: LocalDRAMLatencyNs, BandwidthMBps: DDRChannelBandwidthMBps, HasCPU: true}},
			[][]int{{10}},
		)
	}
	cxl := mem.NewNode(1, mem.KindCXL, cfg.CXLPages, sf)
	return New(
		[]*mem.Node{local, cxl},
		[]Traits{
			{LoadLatency: LocalDRAMLatencyNs, BandwidthMBps: DDRChannelBandwidthMBps, HasCPU: true},
			{LoadLatency: lat, BandwidthMBps: CXLx16BandwidthMBps, HasCPU: false},
		},
		[][]int{{10, 20}, {20, 10}},
	)
}

// RatioPages splits a total working-set size into (local, cxl) capacities
// for a local:cxl ratio such as 2:1 or 1:4, with a small slack factor so
// the machine has the paper's "enough memory to support the workload".
func RatioPages(totalWorkingSet uint64, localShare, cxlShare uint64, slack float64) (local, cxl uint64) {
	total := uint64(float64(totalWorkingSet) * (1 + slack))
	local = total * localShare / (localShare + cxlShare)
	cxl = total - local
	return local, cxl
}
