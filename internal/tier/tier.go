// Package tier describes the memory topology of a tiered machine: which
// nodes exist, their performance traits (load latency, link bandwidth),
// the inter-node distance matrix, and the demotion-target selection rule
// (§5.1 of the paper: "the demotion target is chosen based on the node
// distances from the CPU").
//
// The latency constants default to the paper's published figures (Fig. 2,
// Fig. 5): ~100 ns local DRAM, ~170–250 ns CXL-Memory, ~180 ns remote
// socket on a dual-socket system.
package tier

import (
	"fmt"
	"sort"

	"tppsim/internal/mem"
)

// Traits are the performance characteristics of one memory node.
type Traits struct {
	// LoadLatency is the average loaded CPU-to-memory read latency in
	// nanoseconds.
	LoadLatency float64
	// BandwidthMBps is the node's sustainable migration/link bandwidth in
	// MB/s (38,400 for a DDR5 channel, 64,000 for a CXL x16 link; Fig. 5).
	BandwidthMBps float64
	// HasCPU reports whether the node has CPU cores attached. CXL-Memory
	// appears to the OS as a CPU-less NUMA node.
	HasCPU bool
}

// Standard latency/bandwidth constants from the paper (Figs. 2 and 5).
const (
	LocalDRAMLatencyNs  = 100.0
	RemoteSocketLatency = 180.0
	CXLLatencyDefaultNs = 220.0 // middle of the 170–250 ns band
	CXLLatencyMinNs     = 170.0
	CXLLatencyMaxNs     = 250.0

	DDRChannelBandwidthMBps  = 38400.0
	CXLx16BandwidthMBps      = 64000.0
	CrossSocketBandwidthMBps = 32000.0
)

// Topology is the set of nodes plus their distance matrix and traits.
// Nodes are ranked into tiers by their distance from the CPU (the minimum
// distance to any CPU-attached node): tier 0 is the CPU tier, higher
// tiers are progressively farther. Demotion cascades down the tiers and
// promotion climbs back up, one hop at a time.
type Topology struct {
	nodes    []*mem.Node
	traits   []Traits
	distance [][]int

	// Construction metadata, kept so Spec() can serialize the machine
	// (trace headers record it for exact replay).
	name      string
	demoteSF  float64
	hugePages bool

	// Derived tier structure, computed once at assembly.
	tiers         []int
	numTiers      int
	cpuDist       []int // distance[node][nearest CPU], the tiering metric
	toNodeDist    []int // min over CPUs c of distance[c][node], the access metric
	demoteTargets [][]mem.NodeID

	// Fault-plane health state. All three stay nil until a fault first
	// touches the machine, so healthy topologies pay only nil/zero
	// checks and remain bit-identical to machines built before the
	// plane existed.
	offline       []bool
	nOffline      int
	healthyDemote [][]mem.NodeID // demoteTargets minus offline nodes, rebuilt on transitions
	latScale      []float64      // per-node access-latency multiplier (1 = healthy)
}

// New assembles a topology. distance must be square with len(nodes) rows;
// distance[i][i] must be the minimum of row i.
func New(nodes []*mem.Node, traits []Traits, distance [][]int) (*Topology, error) {
	if len(nodes) != len(traits) || len(nodes) != len(distance) {
		return nil, fmt.Errorf("tier: mismatched sizes: %d nodes, %d traits, %d distance rows",
			len(nodes), len(traits), len(distance))
	}
	for i, row := range distance {
		if len(row) != len(nodes) {
			return nil, fmt.Errorf("tier: distance row %d has %d entries", i, len(row))
		}
		for j, d := range row {
			if i != j && d <= row[i] {
				return nil, fmt.Errorf("tier: distance[%d][%d]=%d not greater than self-distance %d", i, j, d, row[i])
			}
		}
	}
	for i, n := range nodes {
		if n.ID != mem.NodeID(i) {
			return nil, fmt.Errorf("tier: node %d has ID %d; IDs must be dense", i, n.ID)
		}
		if traits[i].HasCPU != (n.Kind == mem.KindLocal) {
			return nil, fmt.Errorf("tier: node %d kind/CPU mismatch", i)
		}
	}
	t := &Topology{nodes: nodes, traits: traits, distance: distance}
	t.computeTiers()
	return t, nil
}

// computeTiers derives the tier structure: every node's distance to the
// nearest CPU node, dense tier ranks over the distinct distances, and the
// per-node demotion cascade (all strictly-farther nodes, nearest first).
func (t *Topology) computeTiers() {
	n := len(t.nodes)
	cpuDist := make([]int, n)
	locals := t.LocalNodes()
	for i := range t.nodes {
		if len(locals) == 0 {
			// Degenerate CPU-less machine: everything is one tier.
			cpuDist[i] = t.distance[i][i]
			continue
		}
		best := int(^uint(0) >> 1)
		for _, l := range locals {
			if d := t.distance[i][l]; d < best {
				best = d
			}
		}
		cpuDist[i] = best
	}
	t.cpuDist = cpuDist
	// The access-direction twin of cpuDist: the smallest CPU->node
	// distance, read in the same row orientation AccessLatency uses.
	// On symmetric matrices the two are equal; on asymmetric ones the
	// penalty for an access must be measured against the access
	// direction or a lone CPU would pay a spurious penalty to its own
	// nodes.
	t.toNodeDist = make([]int, n)
	for i := range t.nodes {
		if len(locals) == 0 {
			t.toNodeDist[i] = t.distance[i][i]
			continue
		}
		best := int(^uint(0) >> 1)
		for _, l := range locals {
			if d := t.distance[l][i]; d < best {
				best = d
			}
		}
		t.toNodeDist[i] = best
	}
	// Dense ranks over the sorted distinct CPU distances.
	distinct := append([]int(nil), cpuDist...)
	sort.Ints(distinct)
	rank := map[int]int{}
	for _, d := range distinct {
		if _, ok := rank[d]; !ok {
			rank[d] = len(rank)
		}
	}
	t.tiers = make([]int, n)
	for i, d := range cpuDist {
		t.tiers[i] = rank[d]
	}
	t.numTiers = len(rank)
	// Demotion cascade: for each node, every node in a strictly farther
	// tier, ordered by distance from the source (ties by ID).
	t.demoteTargets = make([][]mem.NodeID, n)
	for i := range t.nodes {
		var targets []mem.NodeID
		for j := range t.nodes {
			if t.tiers[j] > t.tiers[i] {
				targets = append(targets, mem.NodeID(j))
			}
		}
		sort.SliceStable(targets, func(a, b int) bool {
			return t.distance[i][targets[a]] < t.distance[i][targets[b]]
		})
		t.demoteTargets[i] = targets
	}
}

// NumNodes returns the node count.
func (t *Topology) NumNodes() int { return len(t.nodes) }

// Node returns the node with the given ID.
func (t *Topology) Node(id mem.NodeID) *mem.Node { return t.nodes[id] }

// Nodes returns the node list (shared, not a copy).
func (t *Topology) Nodes() []*mem.Node { return t.nodes }

// Traits returns the traits of the given node.
func (t *Topology) Traits(id mem.NodeID) Traits { return t.traits[id] }

// SetLatency overrides the load latency of a node; used by the Fig. 16
// CXL-latency sweep.
func (t *Topology) SetLatency(id mem.NodeID, ns float64) { t.traits[id].LoadLatency = ns }

// Distance returns the NUMA distance between two nodes.
func (t *Topology) Distance(a, b mem.NodeID) int { return t.distance[a][b] }

// RemoteAccessPenaltyNsPerDist converts extra NUMA distance — beyond a
// node's distance to its nearest CPU socket — into added load latency
// for accesses issued by a farther CPU. Calibrated on the dual-socket
// preset: the cross-socket hop there is 22 distance units (32 vs the 10
// self-distance), and a remote-socket DRAM access should cost the
// paper's ~180 ns against ~100 ns locally (Fig. 5).
const RemoteAccessPenaltyNsPerDist = (RemoteSocketLatency - LocalDRAMLatencyNs) / 22.0

// AccessLatency returns the load latency a CPU on node cpu observes
// when accessing memory resident on node n. A node's trait latency is
// what its *nearest* CPU socket pays; a CPU farther away (a
// cross-socket DRAM or remote-expander hit on the dual-socket machine)
// additionally pays RemoteAccessPenaltyNsPerDist per unit of extra
// distance. Both distances are measured in the CPU->node direction, so
// on machines with one CPU node every access comes from the nearest
// socket and this is exactly Traits(n).LoadLatency — including on
// asymmetric distance matrices.
func (t *Topology) AccessLatency(cpu, n mem.NodeID) float64 {
	lat := t.traits[n].LoadLatency
	if extra := t.distance[cpu][n] - t.toNodeDist[n]; extra > 0 {
		lat += float64(extra) * RemoteAccessPenaltyNsPerDist
	}
	if t.latScale != nil {
		lat *= t.latScale[n]
	}
	return lat
}

// Online reports whether the node is in service. Nodes are online
// unless the fault plane took them offline.
func (t *Topology) Online(id mem.NodeID) bool {
	return t.nOffline == 0 || !t.offline[id]
}

// AllOnline reports whether every node is in service.
func (t *Topology) AllOnline() bool { return t.nOffline == 0 }

// SetOffline transitions a node out of (or back into) service and
// rebuilds the health-filtered demotion cascades. The caller (the
// fault plane) is responsible for evacuating resident pages first.
func (t *Topology) SetOffline(id mem.NodeID, off bool) {
	if t.offline == nil {
		if !off {
			return
		}
		t.offline = make([]bool, len(t.nodes))
	}
	if t.offline[id] == off {
		return
	}
	t.offline[id] = off
	if off {
		t.nOffline++
	} else {
		t.nOffline--
	}
	if t.nOffline == 0 {
		t.healthyDemote = nil
		return
	}
	t.healthyDemote = make([][]mem.NodeID, len(t.nodes))
	for i, full := range t.demoteTargets {
		kept := make([]mem.NodeID, 0, len(full))
		for _, target := range full {
			if !t.offline[target] {
				kept = append(kept, target)
			}
		}
		t.healthyDemote[i] = kept
	}
}

// SetLatencyScale sets a node's fault-plane latency multiplier; 1 (or
// any value <= 0) restores health. Scaled latency is visible to
// AccessLatency; Traits and SetLatency stay unscaled.
func (t *Topology) SetLatencyScale(id mem.NodeID, scale float64) {
	if scale <= 0 {
		scale = 1
	}
	if t.latScale == nil {
		if scale == 1 {
			return
		}
		t.latScale = make([]float64, len(t.nodes))
		for i := range t.latScale {
			t.latScale[i] = 1
		}
	}
	t.latScale[id] = scale
}

// LatencyScale returns the node's fault-plane latency multiplier.
func (t *Topology) LatencyScale(id mem.NodeID) float64 {
	if t.latScale == nil {
		return 1
	}
	return t.latScale[id]
}

// Degraded reports whether the node is inside a latency-degradation
// window. Promotion paths back off from degraded targets.
func (t *Topology) Degraded(id mem.NodeID) bool {
	return t.latScale != nil && t.latScale[id] > 1
}

// LocalNodes returns the IDs of CPU-attached nodes in ID order.
func (t *Topology) LocalNodes() []mem.NodeID {
	var out []mem.NodeID
	for i, n := range t.nodes {
		if n.Kind == mem.KindLocal {
			out = append(out, mem.NodeID(i))
		}
	}
	return out
}

// CXLNodes returns the IDs of CPU-less CXL nodes in ID order.
func (t *Topology) CXLNodes() []mem.NodeID {
	var out []mem.NodeID
	for i, n := range t.nodes {
		if n.Kind == mem.KindCXL {
			out = append(out, mem.NodeID(i))
		}
	}
	return out
}

// TierOf returns the node's tier rank: 0 for the CPU tier, increasing
// with distance from the CPU.
func (t *Topology) TierOf(id mem.NodeID) int { return t.tiers[id] }

// NumTiers returns the number of distinct tiers.
func (t *Topology) NumTiers() int { return t.numTiers }

// DemotionTargets returns the node's demotion cascade: every node in a
// strictly farther tier, nearest (by distance from the node) first — the
// §5.1 rule ("the demotion target is chosen based on the node distances
// from the CPU") generalized to N tiers. Empty for bottom-tier nodes.
// Offline nodes are filtered out, so reclaim reroutes around them.
// The slice is shared; callers must not mutate it.
func (t *Topology) DemotionTargets(from mem.NodeID) []mem.NodeID {
	if t.nOffline != 0 {
		return t.healthyDemote[from]
	}
	return t.demoteTargets[from]
}

// DemotionTarget returns the first node of the demotion cascade — the
// nearest node one or more tiers down. Returns mem.NilNode for
// bottom-tier nodes (and on the all-local baseline).
func (t *Topology) DemotionTarget(from mem.NodeID) mem.NodeID {
	if ts := t.DemotionTargets(from); len(ts) > 0 {
		return ts[0]
	}
	return mem.NilNode
}

// PromotionTarget returns the local node with the most free pages — §5.3:
// "when applications share multiple memory nodes, we choose the local node
// with the lowest memory pressure". Returns mem.NilNode when there is no
// local node.
func (t *Topology) PromotionTarget() mem.NodeID {
	best := mem.NilNode
	var bestFree uint64
	for _, id := range t.LocalNodes() {
		if !t.Online(id) {
			continue
		}
		if f := t.nodes[id].Free(); best == mem.NilNode || f > bestFree {
			best, bestFree = id, f
		}
	}
	return best
}

// PromotionTargetFrom returns where a hot page on the given node should
// promote to: the least-pressured node in the tier immediately above
// (toward the CPU). Multi-hop machines climb one tier per promotion, so a
// page trapped on the far expander reaches local DRAM via the near tier.
// Returns mem.NilNode for CPU-tier nodes (nothing above them).
func (t *Topology) PromotionTargetFrom(from mem.NodeID) mem.NodeID {
	tier := t.tiers[from]
	if tier == 0 {
		return mem.NilNode
	}
	return t.bestOfTier(tier - 1)
}

// PromotionTargetToward is PromotionTargetFrom with socket affinity: when
// the page's home CPU node sits in the tier immediately above and has
// free pages, the promotion lands there — the threads that fault on the
// page run on that socket, so anywhere else leaves it paying the
// cross-socket penalty on every access. Otherwise (home out of reach, or
// full) it falls back to the least-pressured node of the tier above,
// §5.3's rule. On single-socket machines the home node is the only node
// of the CPU tier, so the choice is identical to PromotionTargetFrom.
func (t *Topology) PromotionTargetToward(home, from mem.NodeID) mem.NodeID {
	tier := t.tiers[from]
	if tier == 0 {
		return mem.NilNode
	}
	if home != mem.NilNode && home != from && int(home) < len(t.tiers) &&
		t.tiers[home] == tier-1 && t.Online(home) && t.nodes[home].Free() > 0 {
		return home
	}
	return t.bestOfTier(tier - 1)
}

// bestOfTier returns the node of the given tier with the most free
// pages, or mem.NilNode when the tier is empty.
func (t *Topology) bestOfTier(tier int) mem.NodeID {
	best := mem.NilNode
	var bestFree uint64
	for i, n := range t.nodes {
		if t.tiers[i] != tier || !t.Online(mem.NodeID(i)) {
			continue
		}
		if f := n.Free(); best == mem.NilNode || f > bestFree {
			best, bestFree = mem.NodeID(i), f
		}
	}
	return best
}

// FallbackOrder returns all online node IDs ordered by distance from
// the given node (self first) — the allocator's zonelist. Offline
// nodes are excluded, so allocation reroutes around them.
func (t *Topology) FallbackOrder(from mem.NodeID) []mem.NodeID {
	out := make([]mem.NodeID, 0, len(t.nodes))
	for i := range t.nodes {
		if t.nOffline != 0 && t.offline[i] {
			continue
		}
		out = append(out, mem.NodeID(i))
	}
	// Insertion sort by distance; node counts are tiny.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && t.distance[from][out[j]] < t.distance[from][out[j-1]]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// DemoteScaleFactor returns the machine's demote_scale_factor —
// recorded at build time, or the 0.02 default for hand-assembled
// topologies. The fault plane uses it to rebuild watermarks after
// capacity loss.
func (t *Topology) DemoteScaleFactor() float64 {
	if t.demoteSF == 0 {
		return 0.02
	}
	return t.demoteSF
}

// HugePages reports whether the machine is backed by 2 MB huge pages
// (Spec.HugePages at build time).
func (t *Topology) HugePages() bool { return t.hugePages }

// TotalCapacity returns the machine's total memory in pages.
func (t *Topology) TotalCapacity() uint64 {
	var s uint64
	for _, n := range t.nodes {
		s += n.Capacity
	}
	return s
}

// Spec returns a declarative description of the assembled machine:
// absolute per-node capacities, traits, and the distance matrix.
// Building the returned spec reproduces this topology exactly (for
// machines assembled via Spec.Build or NewCXLSystem, which record their
// demote scale factor; hand-assembled topologies serialize with the
// default factor). Trace headers record it so replays can rebuild the
// recorded machine.
func (t *Topology) Spec() Spec {
	s := Spec{
		Name:              t.name,
		DemoteScaleFactor: t.demoteSF,
		HugePages:         t.hugePages,
		Distance:          make([][]int, len(t.distance)),
	}
	for i, row := range t.distance {
		s.Distance[i] = append([]int(nil), row...)
	}
	for i, n := range t.nodes {
		s.Nodes = append(s.Nodes, NodeSpec{
			Kind:          n.Kind,
			Pages:         n.Capacity,
			LoadLatencyNs: t.traits[i].LoadLatency,
			BandwidthMBps: t.traits[i].BandwidthMBps,
		})
	}
	return s
}

// NodeSpec declares one memory node of a Spec.
type NodeSpec struct {
	// Kind selects CPU-attached DRAM or CPU-less CXL memory.
	Kind mem.NodeKind
	// Pages is the node's absolute capacity in 4 KB pages. Exactly one of
	// Pages and Share must be non-zero.
	Pages uint64
	// Share sizes the node proportionally at Build time: nodes with
	// shares split the working set (grown by the slack headroom, minus
	// any absolute-Pages nodes) in share proportion — the N-node
	// generalization of the legacy local:CXL Ratio.
	Share uint64
	// LoadLatencyNs overrides the kind's default load latency
	// (local DRAM 100 ns, CXL 220 ns).
	LoadLatencyNs float64
	// BandwidthMBps overrides the kind's default link bandwidth.
	BandwidthMBps float64
}

// Spec declares a machine topology: N nodes with per-node capacity
// (absolute pages or working-set ratio shares), kind, performance traits,
// and a distance matrix. Build resolves it into a Topology. The zero
// Distance synthesizes a flat matrix (10 on the diagonal, 20 elsewhere),
// which makes every CXL node one hop from every CPU node; multi-hop
// machines (see PresetExpander) supply an explicit matrix.
type Spec struct {
	// Name labels the topology ("cxl", "dualsocket", "expander", ...).
	Name string
	// Nodes lists the machine's memory nodes; node IDs are their indexes.
	Nodes []NodeSpec
	// Distance is the NUMA distance matrix: square, len(Nodes) rows,
	// every row's minimum on the diagonal. nil synthesizes a flat matrix.
	Distance [][]int
	// DemoteScaleFactor is the /proc/sys/vm/demote_scale_factor analogue
	// (0 means the 2% default).
	DemoteScaleFactor float64
	// HugePages backs the machine with 2 MB huge pages: the simulator
	// allocates, translates, migrates, and ages aligned 512-page frames
	// as single units over an extent-compressed page table, which is
	// what makes terabyte-scale machines simulable in bounded memory.
	// Node capacities stay in base pages. Not serialized into trace
	// headers (huge-page runs model scale, not byte-exact replay).
	HugePages bool
}

// Validate checks the spec's structural invariants: at least one node,
// at least one CPU node, exactly one of Pages/Share per node, a
// representable node count, and a well-shaped distance matrix (deeper
// distance-value checks happen in New at Build time).
func (s Spec) Validate() error {
	if len(s.Nodes) == 0 {
		return fmt.Errorf("tier: spec %q has no nodes", s.Name)
	}
	if len(s.Nodes) > 127 {
		return fmt.Errorf("tier: spec %q has %d nodes; node IDs are int8", s.Name, len(s.Nodes))
	}
	for i, n := range s.Nodes {
		if (n.Pages == 0) == (n.Share == 0) {
			return fmt.Errorf("tier: spec %q node %d: exactly one of Pages and Share must be set", s.Name, i)
		}
	}
	// Node 0 is the CPU node by convention (mem.NodeID's doc); the
	// simulator anchors its baseline latency and preferred allocation
	// node there, so a spec leading with a CPU-less node would run
	// without error and quietly produce inverted placement.
	if s.Nodes[0].Kind != mem.KindLocal {
		return fmt.Errorf("tier: spec %q node 0 must be CPU-attached (KindLocal)", s.Name)
	}
	if s.Distance != nil && len(s.Distance) != len(s.Nodes) {
		return fmt.Errorf("tier: spec %q distance matrix has %d rows for %d nodes", s.Name, len(s.Distance), len(s.Nodes))
	}
	return nil
}

// Build resolves the spec into a Topology. workingSetPages sizes the
// ratio-share nodes (the workload's TotalPages); slack is the capacity
// headroom over the working set (the same knob as sim.Config.Slack).
// Specs whose nodes all use absolute Pages ignore both.
func (s Spec) Build(workingSetPages uint64, slack float64) (*Topology, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	sf := s.DemoteScaleFactor
	if sf == 0 {
		sf = 0.02
	}
	var shareSum, absSum uint64
	for _, n := range s.Nodes {
		shareSum += n.Share
		absSum += n.Pages
	}
	pages := make([]uint64, len(s.Nodes))
	if shareSum > 0 {
		if workingSetPages == 0 {
			return nil, fmt.Errorf("tier: spec %q has ratio-share nodes but no working-set size", s.Name)
		}
		total := uint64(float64(workingSetPages) * (1 + slack))
		if total <= absSum {
			return nil, fmt.Errorf("tier: spec %q absolute nodes (%d pages) consume the whole working set (%d)", s.Name, absSum, total)
		}
		// Cumulative split so the shares sum exactly to the budget; the
		// two-node {2,1} case reproduces the legacy RatioPages arithmetic
		// bit for bit.
		budget := total - absSum
		var given, shareSeen uint64
		for i, n := range s.Nodes {
			if n.Share == 0 {
				pages[i] = n.Pages
				continue
			}
			shareSeen += n.Share
			want := budget * shareSeen / shareSum
			pages[i] = want - given
			given = want
		}
	} else {
		for i, n := range s.Nodes {
			pages[i] = n.Pages
		}
	}
	nodes := make([]*mem.Node, len(s.Nodes))
	traits := make([]Traits, len(s.Nodes))
	for i, n := range s.Nodes {
		if pages[i] == 0 {
			return nil, fmt.Errorf("tier: spec %q node %d resolves to zero pages", s.Name, i)
		}
		nodes[i] = mem.NewNode(mem.NodeID(i), n.Kind, pages[i], sf)
		tr := Traits{LoadLatency: LocalDRAMLatencyNs, BandwidthMBps: DDRChannelBandwidthMBps, HasCPU: true}
		if n.Kind == mem.KindCXL {
			tr = Traits{LoadLatency: CXLLatencyDefaultNs, BandwidthMBps: CXLx16BandwidthMBps, HasCPU: false}
		}
		if n.LoadLatencyNs > 0 {
			tr.LoadLatency = n.LoadLatencyNs
		}
		if n.BandwidthMBps > 0 {
			tr.BandwidthMBps = n.BandwidthMBps
		}
		traits[i] = tr
	}
	dist := s.Distance
	if dist == nil {
		dist = make([][]int, len(s.Nodes))
		for i := range dist {
			dist[i] = make([]int, len(s.Nodes))
			for j := range dist[i] {
				if i == j {
					dist[i][j] = 10
				} else {
					dist[i][j] = 20
				}
			}
		}
	}
	topo, err := New(nodes, traits, dist)
	if err != nil {
		return nil, err
	}
	topo.name = s.Name
	topo.demoteSF = sf
	topo.hugePages = s.HugePages
	return topo, nil
}

// Preset names, in presentation order.
const (
	PresetNameCXL        = "cxl"
	PresetNameDualSocket = "dualsocket"
	PresetNameExpander   = "expander"
)

// PresetNames lists the named topology presets.
func PresetNames() []string {
	return []string{PresetNameCXL, PresetNameDualSocket, PresetNameExpander}
}

// Preset returns the named preset with its default shares: the paper's
// 2-node CXL box at 2:1, the dual-socket system, or the 2:1:1 multi-hop
// expander.
func Preset(name string) (Spec, bool) {
	switch name {
	case PresetNameCXL:
		return PresetCXL(2, 1), true
	case PresetNameDualSocket:
		return PresetDualSocket(), true
	case PresetNameExpander:
		return PresetExpander(2, 1, 1), true
	}
	return Spec{}, false
}

// PresetCXL is the paper's target machine as a spec: one CPU-attached
// local node and one CPU-less CXL node sized localShare:cxlShare over the
// working set. cxlShare == 0 yields the single-node all-local baseline.
// Building it is equivalent to the legacy Ratio sugar.
func PresetCXL(localShare, cxlShare uint64) Spec {
	s := Spec{
		Name:  PresetNameCXL,
		Nodes: []NodeSpec{{Kind: mem.KindLocal, Share: localShare}},
	}
	if cxlShare > 0 {
		s.Nodes = append(s.Nodes, NodeSpec{Kind: mem.KindCXL, Share: cxlShare})
	}
	return s
}

// PresetDualSocket is the §7 multi-socket system: two CPU sockets, each
// with its own DRAM and its own CXL expander. Demotion from either socket
// prefers its near expander and falls back to the remote socket's; both
// sockets are promotion targets.
func PresetDualSocket() Spec {
	return Spec{
		Name: PresetNameDualSocket,
		Nodes: []NodeSpec{
			{Kind: mem.KindLocal, Share: 2},
			{Kind: mem.KindLocal, Share: 2},
			{Kind: mem.KindCXL, Share: 1},
			{Kind: mem.KindCXL, Share: 1, BandwidthMBps: CrossSocketBandwidthMBps},
		},
		// Socket-local CXL is one hop (20); the remote socket is a QPI hop
		// (32); the remote socket's CXL device stacks both (42).
		Distance: [][]int{
			{10, 32, 20, 42},
			{32, 10, 42, 20},
			{20, 42, 10, 52},
			{42, 20, 52, 10},
		},
	}
}

// FarCXLLatencyNs is the default load latency of the far node of the
// multi-hop expander: a switched/daisy-chained CXL device behind the
// near expander (§7 discusses such multi-device topologies).
const FarCXLLatencyNs = 350.0

// PresetExpander is the 3-tier multi-hop machine: local DRAM, a near CXL
// expander, and a far (switched) CXL expander behind it. Reclaim cascades
// local → near → far; promotion climbs far → near → local one hop per
// hint fault.
func PresetExpander(localShare, nearShare, farShare uint64) Spec {
	return Spec{
		Name: PresetNameExpander,
		Nodes: []NodeSpec{
			{Kind: mem.KindLocal, Share: localShare},
			{Kind: mem.KindCXL, Share: nearShare},
			{Kind: mem.KindCXL, Share: farShare,
				LoadLatencyNs: FarCXLLatencyNs, BandwidthMBps: CrossSocketBandwidthMBps},
		},
		Distance: [][]int{
			{10, 20, 40},
			{20, 10, 30},
			{40, 30, 10},
		},
	}
}

// Config describes a machine to build with the standard constructors.
type Config struct {
	// LocalPages and CXLPages size the two tiers. CXLPages == 0 builds the
	// all-local baseline machine.
	LocalPages uint64
	CXLPages   uint64
	// CXLLatencyNs overrides the CXL load latency (0 means the 220 ns
	// default).
	CXLLatencyNs float64
	// DemoteScaleFactor is the /proc/sys/vm/demote_scale_factor analogue
	// (0 means the 2% default).
	DemoteScaleFactor float64
}

// NewCXLSystem builds the paper's target machine: one CPU-attached local
// node (node 0) and one CPU-less CXL node (node 1), with distances
// mirroring a local/remote NUMA pair. With cfg.CXLPages == 0 it builds the
// single-node baseline ("all memory in the local tier"). It is the
// absolute-pages form of PresetCXL; both are sugar over Spec.Build.
func NewCXLSystem(cfg Config) (*Topology, error) {
	if cfg.LocalPages == 0 {
		return nil, fmt.Errorf("tier: LocalPages must be positive")
	}
	spec := Spec{
		Name:              PresetNameCXL,
		DemoteScaleFactor: cfg.DemoteScaleFactor,
		Nodes:             []NodeSpec{{Kind: mem.KindLocal, Pages: cfg.LocalPages}},
	}
	if cfg.CXLPages > 0 {
		spec.Nodes = append(spec.Nodes, NodeSpec{
			Kind: mem.KindCXL, Pages: cfg.CXLPages, LoadLatencyNs: cfg.CXLLatencyNs,
		})
	}
	return spec.Build(0, 0)
}

// RatioPages splits a total working-set size into (local, cxl) capacities
// for a local:cxl ratio such as 2:1 or 1:4, with a small slack factor so
// the machine has the paper's "enough memory to support the workload".
func RatioPages(totalWorkingSet uint64, localShare, cxlShare uint64, slack float64) (local, cxl uint64) {
	total := uint64(float64(totalWorkingSet) * (1 + slack))
	local = total * localShare / (localShare + cxlShare)
	cxl = total - local
	return local, cxl
}
