package workload

import (
	"fmt"
	"sort"

	"tppsim/internal/mem"
	"tppsim/internal/metrics"
)

// DefaultTotalPages is the default scaled working-set size: 96k logical
// 4 KB pages (384 MB). The paper's machines hold hundreds of GB; all
// ratios (2:1, 1:4, hot fractions) are preserved under the scaling.
const DefaultTotalPages = 96 * 1024

// Web1 models the HHVM-based web service (§3.1): a long file-I/O warm-up
// loads the VM binary and bytecode (filling memory with file cache, much
// of it dirty), then anon usage grows slowly as request handling ramps
// (Fig. 9a), with a hot short-lived request-allocation churn pool. Anon
// pages are much hotter than file pages (Fig. 8); ~80% of pages are
// re-accessed within ten minutes (Fig. 11).
func Web1(total uint64) *Profile {
	return &Profile{
		PName: "Web1",
		// Calibrated so an all-CXL working set costs ~18% throughput
		// (the paper's worst default-Linux regression band).
		TM:     metrics.ThroughputModel{CPUServiceNs: 280, StallsPerOp: 1},
		Warmup: 2 * TicksPerMinute,
		WSS:    total,
		Specs: []RegionSpec{
			{
				// The initialization file flood that "fills up the local
				// node" (§6.1.1): large, fast, and mostly dirty (bytecode
				// caches are written as they are compiled), so default
				// reclaim pays writeback while TPP just migrates.
				Name: "file-bytecode", Type: mem.File,
				Pages:  total * 85 / 100,
				Weight: 0.10, WarmupWeight: 0.85,
				HotFraction: 0.08, HotWeight: 0.95, // 3-14% of files hot (Fig. 8)
				DirtyProb:       0.96,
				PrefaultPerTick: total*85/100/(2*TicksPerMinute) + 1,
			},
			{
				// Continuous bytecode-cache refresh: dirty file pages keep
				// arriving faster than writeback-bound default reclaim can
				// retire them, so the local node never recovers without
				// migration-based demotion (§6.1.1's 44x story).
				Name: "file-cache-churn", Type: mem.File,
				Pages:  total * 5 / 100,
				Weight: 0.02, WarmupWeight: 0.005,
				DirtyProb:     0.8,
				ChurnSegments: 8, ChurnTicks: 12,
				RecencyBias: 0.4,
			},
			{
				Name: "anon-heap", Type: mem.Anon,
				Pages:       total * 30 / 100,
				Weight:      0.55,
				HotFraction: 0.45, HotWeight: 0.96, // 35-60% of anons hot
				GrowthPerTick: float64(total*30/100) / (60 * TicksPerMinute),
			},
			{
				Name: "anon-request", Type: mem.Anon,
				Pages:  total * 6 / 100,
				Weight: 0.30, WarmupWeight: 0.02,
				ChurnSegments: 16, ChurnTicks: 4, // ~1 minute lifetime
				RecencyBias: 0.5,
				BurstProb:   0.05, BurstMul: 4,
			},
			{
				Name: "file-cold", Type: mem.File,
				Pages:  total * 1 / 100,
				Weight: 0.05, ZipfS: 0.3, DirtyProb: 0.3,
			},
		},
	}
}

// Web2 models the Python-based web service: same broad shape as Web1 with
// a smaller VM image and more request churn.
func Web2(total uint64) *Profile {
	return &Profile{
		PName:  "Web2",
		TM:     metrics.ThroughputModel{CPUServiceNs: 400, StallsPerOp: 1},
		Warmup: 2 * TicksPerMinute,
		WSS:    total,
		Specs: []RegionSpec{
			{
				Name: "file-modules", Type: mem.File,
				Pages:  total * 62 / 100,
				Weight: 0.08, WarmupWeight: 0.8,
				HotFraction: 0.10, HotWeight: 0.95,
				DirtyProb:       0.7,
				PrefaultPerTick: total*62/100/(2*TicksPerMinute) + 1,
			},
			{
				Name: "file-cache-churn", Type: mem.File,
				Pages:         total * 5 / 100,
				Weight:        0.02,
				DirtyProb:     0.8,
				ChurnSegments: 8, ChurnTicks: 10,
				RecencyBias: 0.4,
			},
			{
				Name: "anon-heap", Type: mem.Anon,
				Pages:  total * 28 / 100,
				Weight: 0.55, HotFraction: 0.45, HotWeight: 0.96,
				GrowthPerTick: float64(total*28/100) / (45 * TicksPerMinute),
			},
			{
				Name: "anon-request", Type: mem.Anon,
				Pages:  total * 8 / 100,
				Weight: 0.32, WarmupWeight: 0.02,
				ChurnSegments: 16, ChurnTicks: 3,
				RecencyBias: 0.5, BurstProb: 0.08, BurstMul: 3,
			},
			{
				Name: "file-cold", Type: mem.File,
				Pages:  total * 1 / 100,
				Weight: 0.05, ZipfS: 0.3,
			},
		},
	}
}

// Cache1 models the tmpfs-backed distributed cache (§3.3): file (tmpfs)
// pages dominate allocation (~76%) and contribute significant hot
// traffic (≈25% of tmpfs hot per 2 minutes vs ≈40% of anons); the
// anon/file mix is steady over time (Fig. 9b).
func Cache1(total uint64) *Profile {
	return &Profile{
		PName:  "Cache1",
		TM:     metrics.ThroughputModel{CPUServiceNs: 600, StallsPerOp: 1},
		Warmup: 5 * TicksPerMinute,
		Specs: []RegionSpec{
			{
				Name: "tmpfs-store", Type: mem.Tmpfs,
				Pages:  total * 76 / 100,
				Weight: 0.50, WarmupWeight: 0.9,
				HotFraction: 0.16, HotWeight: 0.97, // ~25% of tmpfs pages carry the traffic
				PrefaultPerTick: total*76/100/(5*TicksPerMinute) + 1,
			},
			{
				Name: "anon-query", Type: mem.Anon,
				Pages:       total * 13 / 100,
				Weight:      0.34,
				HotFraction: 0.40, HotWeight: 0.97, // ~40% of anons hot
				PrefaultPerTick: total*13/100/(5*TicksPerMinute) + 1,
			},
			{
				// Request-processing allocations: short-lived and hot
				// (the allocation bursts of §5.2 / Fig. 17).
				Name: "anon-request", Type: mem.Anon,
				Pages:         total * 5 / 100,
				Weight:        0.08,
				ChurnSegments: 12, ChurnTicks: 10,
				RecencyBias: 0.6, BurstProb: 0.05, BurstMul: 4,
			},
			{
				Name: "file-misc", Type: mem.File,
				Pages:  total * 6 / 100,
				Weight: 0.08, ZipfS: 0.5, DirtyProb: 0.4,
			},
		},
	}
}

// Cache2 models the second cache variant: more anon traffic (43% of anons
// hot within a minute vs 30% of files), only ~75% of anons hot within two
// minutes, so TPP finds demotable anon pages (§6.1.1).
func Cache2(total uint64) *Profile {
	return &Profile{
		PName:  "Cache2",
		TM:     metrics.ThroughputModel{CPUServiceNs: 800, StallsPerOp: 1},
		Warmup: 5 * TicksPerMinute,
		Specs: []RegionSpec{
			{
				Name: "tmpfs-store", Type: mem.Tmpfs,
				Pages:  total * 62 / 100,
				Weight: 0.42, WarmupWeight: 0.85,
				HotFraction: 0.28, HotWeight: 0.96, // ~30% of tmpfs hot per minute
				PrefaultPerTick: total*70/100/(5*TicksPerMinute) + 1,
			},
			{
				Name: "anon-query", Type: mem.Anon,
				Pages:       total * 24 / 100,
				Weight:      0.50,
				HotFraction: 0.75, HotWeight: 0.97, // 75% of anons hot per 2 min
				PrefaultPerTick: total*24/100/(5*TicksPerMinute) + 1,
			},
			{
				Name: "file-misc", Type: mem.File,
				Pages:  total * 6 / 100,
				Weight: 0.08, ZipfS: 0.5, DirtyProb: 0.4,
			},
		},
	}
}

// Warehouse models the Data Warehouse compute engine: anon dominates
// (~85%), most anons are *newly allocated* rather than re-accessed
// (Fig. 11: only ~20% re-access), file pages hold written-back
// intermediate data and stay cold (Fig. 9d). Performance is compute-bound
// (§6.1.1: default Linux already within 1%).
func Warehouse(total uint64) *Profile {
	return &Profile{
		PName:  "Warehouse",
		TM:     metrics.ThroughputModel{CPUServiceNs: 3000, StallsPerOp: 1},
		Warmup: 3 * TicksPerMinute,
		Specs: []RegionSpec{
			{
				Name: "anon-compute", Type: mem.Anon,
				Pages:         total * 80 / 100,
				Weight:        0.85,
				ChurnSegments: 24, ChurnTicks: 30, // ~12 minute lifetimes
				RecencyBias: 0.6, BurstProb: 0.04, BurstMul: 3,
			},
			{
				Name: "anon-static", Type: mem.Anon,
				Pages:  total * 5 / 100,
				Weight: 0.05, HotFraction: 0.5, HotWeight: 0.9,
			},
			{
				Name: "file-intermediate", Type: mem.File,
				Pages:  total * 15 / 100,
				Weight: 0.10, ZipfS: 1.2, DirtyProb: 0.9,
			},
		},
	}
}

// Ads models the Ads ranking services (Ads1-3 differ in skew): compute
// heavy, in-memory data retrieval, anons hot and files cold (Fig. 8).
func Ads(variant int, total uint64) *Profile {
	hot := []float64{0.50, 0.40, 0.30}[(variant-1)%3]
	return &Profile{
		PName:  fmt.Sprintf("Ads%d", variant),
		TM:     metrics.ThroughputModel{CPUServiceNs: 1500, StallsPerOp: 1},
		Warmup: 3 * TicksPerMinute,
		Specs: []RegionSpec{
			{
				Name: "anon-model", Type: mem.Anon,
				Pages:  total * 60 / 100,
				Weight: 0.80, HotFraction: hot, HotWeight: 0.92,
			},
			{
				Name: "file-features", Type: mem.File,
				Pages:  total * 40 / 100,
				Weight: 0.20, ZipfS: 1.2, DirtyProb: 0.5,
			},
		},
	}
}

// Catalog maps workload names to constructors, for the CLI tools. Every
// value builds a fresh Workload per call; entries are either the paper's
// Profile workloads below or trace-backed scenarios registered by other
// packages (internal/trace adds its generated scenarios via Register).
var Catalog = map[string]func(total uint64) Workload{
	"Web1":      profileEntry(Web1),
	"Web2":      profileEntry(Web2),
	"Cache1":    profileEntry(Cache1),
	"Cache2":    profileEntry(Cache2),
	"Warehouse": profileEntry(Warehouse),
	"Ads1":      profileEntry(func(t uint64) *Profile { return Ads(1, t) }),
	"Ads2":      profileEntry(func(t uint64) *Profile { return Ads(2, t) }),
	"Ads3":      profileEntry(func(t uint64) *Profile { return Ads(3, t) }),
}

// profileEntry adapts a Profile constructor to the catalog's Workload
// signature.
func profileEntry(ctor func(total uint64) *Profile) func(total uint64) Workload {
	return func(total uint64) Workload { return ctor(total) }
}

// Register adds (or replaces) a catalog entry. Packages providing
// non-Profile workloads — trace replays, generated scenarios — use it to
// appear in the CLI catalogs alongside the paper's workloads.
func Register(name string, ctor func(total uint64) Workload) {
	Catalog[name] = ctor
}

// Names returns the catalog keys sorted.
func Names() []string {
	out := make([]string, 0, len(Catalog))
	for k := range Catalog {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
