// Package workload generates the memory access streams of the paper's
// production applications (§3.1): HHVM-style web serving (Web1/Web2),
// distributed caches over tmpfs (Cache1/Cache2), a Data Warehouse compute
// engine, and Ads ranking. Each generator is a Profile — a set of regions
// with page types, access weights, intra-region skew, warm-up flooding,
// growth, and churn — parameterized to match the published
// characterization:
//
//   - page-type mixes and their drift over time (Figs. 8, 9),
//   - hot fractions at 1/2/5/10-minute windows (Fig. 7),
//   - anon-hotter-than-file behaviour (Fig. 8),
//   - re-access recycling vs fresh allocation (Fig. 11),
//   - short-lived, hot request allocations (§5.2's allocation bursts).
//
// Time base: one simulator tick is one simulated second; figures plot
// simulated minutes.
package workload

import (
	"math/bits"

	"tppsim/internal/mem"
	"tppsim/internal/metrics"
	"tppsim/internal/pagetable"
	"tppsim/internal/xrand"
)

// TicksPerMinute converts the simulator's 1-second ticks to the figures'
// minute axis.
const TicksPerMinute = 60

// Ctx is the machine interface a workload drives. The simulator
// implements it; tests use a fake.
type Ctx interface {
	// Mmap reserves a region; pages are faulted in on first Touch.
	Mmap(pages uint64, t mem.PageType) pagetable.Region
	// Munmap releases a region and frees its pages.
	Munmap(r pagetable.Region)
	// Touch performs one memory access at v (demand-faulting if needed).
	Touch(v pagetable.VPN)
	// RNG returns the workload's private random stream.
	RNG() *xrand.RNG
}

// Workload is the interface the simulator runs.
type Workload interface {
	// Name is the display name ("Web1", ...).
	Name() string
	// Model returns the throughput-model calibration for this workload.
	Model() metrics.ThroughputModel
	// TotalPages is the working-set size.
	TotalPages() uint64
	// WarmupTicks is the length of the initialization phase.
	WarmupTicks() uint64
	// Start performs setup (mmaps) at tick zero.
	Start(ctx Ctx)
	// Tick runs once per simulated second: warm-up flooding, growth,
	// churn, bursts.
	Tick(ctx Ctx, tick uint64)
	// NextAccess draws one memory access from the current distribution.
	// ok is false when the workload has nothing mapped yet.
	NextAccess(ctx Ctx, tick uint64) (v pagetable.VPN, ok bool)
}

// ErrorReporter is an optional Workload extension for workloads that
// can fail mid-run — e.g. a trace replay hitting a corrupt stream. The
// simulator checks it when the run completes and marks the run failed,
// so a silently-stalled workload cannot masquerade as a healthy result.
type ErrorReporter interface {
	WorkloadErr() error
}

// BatchAccessor is an optional Workload extension: draw up to len(buf)
// accesses in one call instead of one interface dispatch per access.
// The draws must be identical to len(buf) consecutive NextAccess calls
// at the same tick, stopping at the first !ok (the return value is the
// number of accesses written). The simulator uses it on the hot path
// when available; workloads whose draws depend on machine state mutated
// by earlier accesses in the same tick must not implement it.
//
// The parallel sim core (sim.Config.Workers) leans on the same
// property: the batch is drawn serially — the workload's RNG streams
// are never touched concurrently — and only afterwards is the filled
// buffer staged across worker goroutines, which read the address space
// without calling back into the workload. Implementations therefore
// need no shard awareness or synchronization, and the draw sequence is
// identical for any worker count.
type BatchAccessor interface {
	NextAccessBatch(ctx Ctx, tick uint64, buf []pagetable.VPN) int
}

// DirtyModel is an optional Workload extension: the probability that a
// page faulted into region r is dirty at birth (dirty file pages force
// writeback on default reclaim). The simulator consults it on the fault
// path; workloads that do not implement it fault clean pages. The trace
// recorder persists these probabilities per region so a replayed run
// reproduces the original's writeback load exactly.
type DirtyModel interface {
	DirtyProb(r pagetable.Region) float64
}

// RegionSpec declares one region of a Profile.
type RegionSpec struct {
	// Name for debugging and per-region stats.
	Name string
	// Type is the page type of every page in the region.
	Type mem.PageType
	// Pages is the region size.
	Pages uint64
	// Weight is the steady-state probability weight of accesses landing
	// in this region.
	Weight float64
	// WarmupWeight overrides Weight during the warm-up phase (zero means
	// "use Weight").
	WarmupWeight float64
	// ZipfS is the intra-region popularity skew (0 = uniform). Higher
	// skew means a smaller fraction of the region is hot.
	ZipfS float64
	// HotFraction/HotWeight, when HotFraction > 0, select two-tier
	// popularity instead of Zipf: a HotFraction share of the region's
	// pages absorbs HotWeight of its accesses, the rest spread uniformly.
	// This matches the paper's characterization structure (Fig. 7:
	// distinct hot bands over a large cold mass) and is what makes
	// hot-set placement converge instead of thrashing on a heavy
	// Zipf middle.
	HotFraction float64
	HotWeight   float64
	// DirtyProb is the probability a page is dirty when faulted in
	// (dirty file pages force writeback on default reclaim).
	DirtyProb float64
	// PrefaultPerTick, during warm-up, sequentially touches this many
	// pages per tick (the Web file-I/O flood of §6.1.1).
	PrefaultPerTick uint64
	// GrowthPerTick caps how fast the accessed prefix of the region
	// expands after warm-up (0 = entire region immediately accessible).
	// Models Web1's slow anon growth (Fig. 9a).
	GrowthPerTick float64
	// ChurnSegments > 0 makes this a churn region: it is maintained as a
	// ring of that many independently-mmapped segments, and every
	// ChurnTicks the oldest segment is freed and a fresh one allocated
	// and touched (short-lived request memory, §5.2).
	ChurnSegments int
	// ChurnTicks is the per-segment recycle period.
	ChurnTicks uint64
	// BurstProb/BurstMul: each tick with probability BurstProb the churn
	// allocation is amplified BurstMul-fold (allocation bursts).
	BurstProb float64
	BurstMul  int
	// RecencyBias, for churn regions, weights access toward newer
	// segments (0 = uniform over segments; 1 = strongly newest-first).
	RecencyBias float64
}

// Profile is the generic region-based workload implementation.
type Profile struct {
	PName  string
	TM     metrics.ThroughputModel
	Warmup uint64
	Specs  []RegionSpec
	// WSS, when non-zero, overrides TotalPages for machine sizing. Web
	// workloads set region sums *above* WSS: the page cache greedily
	// consumes free memory (the §6.1.1 init flood "fills up the local
	// node"), and reclaim is expected to push it back out.
	WSS          uint64
	regions      []regionState
	picker       *xrand.Weighted
	warmupPicker *xrand.Weighted
	rng          *xrand.RNG // cached from Ctx at Start
}

// Draw-kind discriminants, precomputed so the per-access draw never reads
// the cold spec struct.
const (
	drawUniform = iota
	drawHot
	drawZipf
	drawChurn
)

type regionState struct {
	// Hot fields first: the per-access draw touches only these (plus
	// segments/segPages for churn regions), so they share the leading
	// cache lines instead of sitting behind the large spec.
	kind      uint8            // drawUniform/drawHot/drawZipf/drawChurn
	hotWeight float64          // spec.HotWeight copy for drawHot
	bias      float64          // spec.RecencyBias copy for drawChurn
	grown     uint64           // accessible prefix (pages)
	hot       uint64           // cached hot-set size for the current grown
	region    pagetable.Region // static regions
	// scatter is the precomputed rank→page permutation
	// (idx*scatterPrime mod Pages) for static regions, so the per-access
	// offset draw avoids a 64-bit multiply+divide. nil for churn regions
	// and regions too large to table.
	scatter []uint32
	zipf    *xrand.Zipf
	// Churn state: ring of segments, newest last.
	segments []pagetable.Region
	segPages uint64

	spec           RegionSpec
	growAcc        float64 // fractional-growth accumulator
	churnTick      uint64
	prefaultCursor uint64
}

// setGrown updates the accessible prefix and the cached hot-set size
// derived from it (same arithmetic the offset draw used to do per access).
func (rs *regionState) setGrown(g uint64) {
	rs.grown = g
	if rs.spec.HotFraction > 0 {
		hot := uint64(rs.spec.HotFraction * float64(g))
		if hot < 1 {
			hot = 1
		}
		rs.hot = hot
	}
}

var _ Workload = (*Profile)(nil)
var _ DirtyModel = (*Profile)(nil)

// Name implements Workload.
func (p *Profile) Name() string { return p.PName }

// Model implements Workload.
func (p *Profile) Model() metrics.ThroughputModel { return p.TM }

// WarmupTicks implements Workload.
func (p *Profile) WarmupTicks() uint64 { return p.Warmup }

// TotalPages implements Workload. It returns the sizing working set: the
// WSS override when set, otherwise the sum of region sizes.
func (p *Profile) TotalPages() uint64 {
	if p.WSS != 0 {
		return p.WSS
	}
	var s uint64
	for _, r := range p.Specs {
		s += r.Pages
	}
	return s
}

// DirtyProb implements DirtyModel: the dirty-at-fault probability for
// pages in r. Regions are identified by size+type; profiles keep them
// unique enough for this purpose (churn segments share spec sizes).
func (p *Profile) DirtyProb(r pagetable.Region) float64 {
	for i := range p.Specs {
		spec := &p.Specs[i]
		if spec.Type == r.Type && (spec.Pages == r.Pages ||
			(spec.ChurnSegments > 0 && r.Pages == spec.Pages/uint64(spec.ChurnSegments))) {
			return spec.DirtyProb
		}
	}
	return 0
}

// Start implements Workload: mmap every region and initialize samplers.
func (p *Profile) Start(ctx Ctx) {
	rng := ctx.RNG()
	p.rng = rng
	p.regions = p.regions[:0]
	steady := make([]float64, len(p.Specs))
	warm := make([]float64, len(p.Specs))
	for i, spec := range p.Specs {
		rs := regionState{spec: spec, hotWeight: spec.HotWeight, bias: spec.RecencyBias}
		switch {
		case spec.ChurnSegments > 0:
			rs.kind = drawChurn
		case spec.HotFraction > 0:
			rs.kind = drawHot
		case spec.ZipfS > 0:
			rs.kind = drawZipf
		default:
			rs.kind = drawUniform
		}
		if spec.ZipfS > 0 {
			// Zipf over a bounded rank space to keep setup cheap; ranks
			// map onto the grown prefix by modulo.
			n := int(spec.Pages)
			if n > 1<<16 {
				n = 1 << 16
			}
			rs.zipf = xrand.NewZipf(rng.Split(), n, spec.ZipfS)
		}
		if spec.ChurnSegments > 0 {
			rs.segPages = spec.Pages / uint64(spec.ChurnSegments)
			if rs.segPages == 0 {
				rs.segPages = 1
			}
			for s := 0; s < spec.ChurnSegments; s++ {
				rs.segments = append(rs.segments, ctx.Mmap(rs.segPages, spec.Type))
			}
			rs.setGrown(spec.Pages)
		} else {
			rs.region = ctx.Mmap(spec.Pages, spec.Type)
			if spec.GrowthPerTick > 0 || spec.PrefaultPerTick > 0 {
				rs.setGrown(0)
			} else {
				rs.setGrown(spec.Pages)
			}
			if spec.Pages <= 1<<22 {
				rs.scatter = make([]uint32, spec.Pages)
				for idx := uint64(0); idx < spec.Pages; idx++ {
					rs.scatter[idx] = uint32((idx * scatterPrime) % spec.Pages)
				}
			}
		}
		p.regions = append(p.regions, rs)
		steady[i] = spec.Weight
		warm[i] = spec.WarmupWeight
		if warm[i] == 0 {
			warm[i] = spec.Weight
		}
	}
	p.picker = xrand.NewWeighted(rng.Split(), steady)
	p.warmupPicker = xrand.NewWeighted(rng.Split(), warm)
}

// Tick implements Workload: warm-up flooding, growth, and churn.
func (p *Profile) Tick(ctx Ctx, tick uint64) {
	rng := ctx.RNG()
	for ri := range p.regions {
		rs := &p.regions[ri]
		spec := rs.spec
		// Warm-up flood: sequentially touch (and thereby fault) pages.
		if tick < p.Warmup && spec.PrefaultPerTick > 0 && rs.prefaultCursor < spec.Pages {
			end := rs.prefaultCursor + spec.PrefaultPerTick
			if end > spec.Pages {
				end = spec.Pages
			}
			for v := rs.prefaultCursor; v < end; v++ {
				ctx.Touch(rs.region.Start + pagetable.VPN(v))
			}
			rs.prefaultCursor = end
			if rs.grown < end {
				rs.setGrown(end)
			}
		}
		// Post-warm-up growth of the accessible prefix. Fractional rates
		// accumulate so slow growth (a fraction of a page per tick) still
		// progresses.
		if spec.GrowthPerTick > 0 && tick >= p.Warmup && rs.grown < spec.Pages {
			rs.growAcc += spec.GrowthPerTick
			if whole := uint64(rs.growAcc); whole > 0 {
				rs.growAcc -= float64(whole)
				g := rs.grown + whole
				if g > spec.Pages {
					g = spec.Pages
				}
				rs.setGrown(g)
			}
		}
		// Churn: recycle the oldest segment on period (with bursts).
		// Request churn is a steady-state behaviour: it starts once the
		// service is warm (requests arrive after initialization).
		if spec.ChurnSegments > 0 && spec.ChurnTicks > 0 && tick >= p.Warmup {
			rs.churnTick++
			n := 0
			if rs.churnTick >= spec.ChurnTicks {
				rs.churnTick = 0
				n = 1
				if spec.BurstProb > 0 && rng.Bool(spec.BurstProb) {
					n = spec.BurstMul
				}
				if n > len(rs.segments)-1 {
					n = len(rs.segments) - 1
				}
			}
			for i := 0; i < n; i++ {
				old := rs.segments[0]
				copy(rs.segments, rs.segments[1:])
				rs.segments = rs.segments[:len(rs.segments)-1]
				ctx.Munmap(old)
				fresh := ctx.Mmap(rs.segPages, spec.Type)
				rs.segments = append(rs.segments, fresh)
				// Newly allocated request memory is written immediately:
				// the §5.2 allocation burst.
				for v := uint64(0); v < rs.segPages; v++ {
					ctx.Touch(fresh.Start + pagetable.VPN(v))
				}
			}
		}
	}
}

// NextAccess implements Workload.
func (p *Profile) NextAccess(ctx Ctx, tick uint64) (pagetable.VPN, bool) {
	warm := tick < p.Warmup
	picker := p.picker
	if warm {
		picker = p.warmupPicker
	}
	return p.draw(picker.RNG(), picker.CDF(), warm)
}

// u64nRaw is RNG.Uint64n over raw state words (identical draws), so
// batch loops pass state in registers instead of through memory.
func u64nRaw(n, s0, s1, s2, s3 uint64) (out, t0, t1, t2, t3 uint64) {
	if n&(n-1) == 0 {
		v, a, b, c, d := xrand.Step(s0, s1, s2, s3)
		return v & (n - 1), a, b, c, d
	}
	for {
		v, a, b, c, d := xrand.Step(s0, s1, s2, s3)
		s0, s1, s2, s3 = a, b, c, d
		hi, lo := bits.Mul64(v, n)
		if lo >= n || lo >= -n%n {
			return hi, s0, s1, s2, s3
		}
	}
}

// NextAccessBatch implements BatchAccessor: the whole draw pipeline of
// NextAccess fused into one loop, with the picker's CDF resolved once
// and both RNG streams' state words held in locals — thousands of draws
// without touching generator memory. Draw-for-draw identical to calling
// NextAccess len(buf) times.
func (p *Profile) NextAccessBatch(ctx Ctx, tick uint64, buf []pagetable.VPN) int {
	warm := tick < p.Warmup
	picker := p.picker
	if warm {
		picker = p.warmupPicker
	}
	prng, wrng := picker.RNG(), p.rng
	cdf := picker.CDF()
	p0, p1, p2, p3 := prng.State()
	w0, w1, w2, w3 := wrng.State()
	n := 0
fill:
	for n < len(buf) {
		for attempt := 0; ; attempt++ {
			if attempt == 4 {
				break fill
			}
			var pu uint64
			pu, p0, p1, p2, p3 = xrand.Step(p0, p1, p2, p3)
			rs := &p.regions[xrand.SearchCDF(cdf, float64(pu>>11)/(1<<53))]
			if rs.kind == drawChurn {
				// churnAccess, fused.
				segn := len(rs.segments)
				var idx int
				if rs.bias <= 0 {
					var r uint64
					r, w0, w1, w2, w3 = u64nRaw(uint64(segn), w0, w1, w2, w3)
					idx = int(r)
				} else {
					idx = segn - 1
					if rs.bias < 1 {
						for idx > 0 {
							var v uint64
							v, w0, w1, w2, w3 = xrand.Step(w0, w1, w2, w3)
							if float64(v>>11)/(1<<53) < rs.bias {
								break
							}
							idx--
						}
					}
				}
				var so uint64
				so, w0, w1, w2, w3 = u64nRaw(rs.segPages, w0, w1, w2, w3)
				buf[n] = rs.segments[idx].Start + pagetable.VPN(so)
				n++
				continue fill
			}
			if rs.grown == 0 {
				continue
			}
			var off uint64
			if warm {
				// Warm-up: uniform over the populated prefix, no scatter.
				off, w0, w1, w2, w3 = u64nRaw(rs.grown, w0, w1, w2, w3)
			} else {
				// offset(), fused: rank draw then scatter permutation.
				var idx uint64
				switch rs.kind {
				case drawHot:
					hot := rs.hot
					hotHit := rs.hotWeight >= 1
					if w := rs.hotWeight; w > 0 && w < 1 {
						var v uint64
						v, w0, w1, w2, w3 = xrand.Step(w0, w1, w2, w3)
						hotHit = float64(v>>11)/(1<<53) < w
					}
					if hotHit || hot >= rs.grown {
						idx, w0, w1, w2, w3 = u64nRaw(hot, w0, w1, w2, w3)
					} else {
						idx, w0, w1, w2, w3 = u64nRaw(rs.grown-hot, w0, w1, w2, w3)
						idx += hot
					}
				case drawZipf:
					idx = uint64(rs.zipf.Next()) // zipf's own stream
					if idx >= rs.grown {
						idx %= rs.grown
					}
				default:
					idx, w0, w1, w2, w3 = u64nRaw(rs.grown, w0, w1, w2, w3)
				}
				if rs.scatter != nil {
					off = uint64(rs.scatter[idx])
				} else {
					off = (idx * scatterPrime) % rs.spec.Pages
				}
			}
			buf[n] = rs.region.Start + pagetable.VPN(off)
			n++
			continue fill
		}
	}
	prng.SetState(p0, p1, p2, p3)
	wrng.SetState(w0, w1, w2, w3)
	return n
}

// draw produces one access from the current distribution. prng/cdf are
// the region picker's private stream and CDF; the inline inverse-CDF
// draw is identical to Weighted.Next. Offsets draw from the workload's
// own stream, as before.
func (p *Profile) draw(prng *xrand.RNG, cdf []float64, warm bool) (pagetable.VPN, bool) {
	rng := p.rng
	// A few rejection rounds in case the chosen region has nothing
	// accessible yet (pre-growth).
	for attempt := 0; attempt < 4; attempt++ {
		u := float64(prng.Uint64()>>11) / (1 << 53)
		rs := &p.regions[xrand.SearchCDF(cdf, u)]
		if rs.kind == drawChurn {
			return rs.churnAccess(rng), true
		}
		if rs.grown == 0 {
			continue
		}
		var off uint64
		if warm {
			// During warm-up the hot set has not emerged yet: loads and
			// inserts touch the populated prefix uniformly in insertion
			// order. Steady-state hotness (a scattered permutation) is
			// deliberately uncorrelated with this order, so the hot set
			// ends up spread across whichever nodes the warm-up filled —
			// as in production, where object popularity has nothing to do
			// with insertion order.
			off = rng.Uint64n(rs.grown)
		} else {
			off = rs.offset(rng)
		}
		return rs.region.Start + pagetable.VPN(off), true
	}
	return 0, false
}

// scatterPrime is coprime to every region size below it, so
// (idx * scatterPrime) % Pages permutes page indices: popularity rank is
// decoupled from allocation order. Page hotness in real applications is
// uncorrelated with fault order, so the hot set must not cluster at the
// region's start (which would let a full local node keep the hot set by
// accident of allocation order).
const scatterPrime = 1000000007

// offset draws a page offset within the region, honouring skew. The
// footprint is bounded by the grown counter; rank→page mapping is a fixed
// permutation over the whole region so the hot set is stable as the
// region grows.
func (rs *regionState) offset(rng *xrand.RNG) uint64 {
	var idx uint64
	switch rs.kind {
	case drawHot:
		// Inline rng.Bool(hotWeight) — including its no-draw guards for
		// degenerate weights — so the hot path stays call-free.
		hot := rs.hot
		hotHit := rs.hotWeight >= 1
		if w := rs.hotWeight; w > 0 && w < 1 {
			hotHit = float64(rng.Uint64()>>11)/(1<<53) < w
		}
		if hotHit || hot >= rs.grown {
			idx = rng.Uint64n(hot)
		} else {
			idx = hot + rng.Uint64n(rs.grown-hot)
		}
	case drawZipf:
		idx = uint64(rs.zipf.Next())
		if idx >= rs.grown {
			idx %= rs.grown
		}
	default:
		idx = rng.Uint64n(rs.grown)
	}
	if rs.scatter != nil {
		return uint64(rs.scatter[idx])
	}
	return (idx * scatterPrime) % rs.spec.Pages
}

// churnAccess picks a segment with recency bias, then a page uniformly.
func (rs *regionState) churnAccess(rng *xrand.RNG) pagetable.VPN {
	n := len(rs.segments)
	var idx int
	if rs.bias <= 0 {
		idx = rng.Intn(n)
	} else {
		// Geometric walk from the newest end: each step stops with
		// probability RecencyBias, so higher bias concentrates accesses
		// on recently allocated segments.
		idx = n - 1
		for idx > 0 && !rng.Bool(rs.bias) {
			idx--
		}
	}
	seg := rs.segments[idx]
	return seg.Start + pagetable.VPN(rng.Uint64n(rs.segPages))
}
