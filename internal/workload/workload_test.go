package workload

import (
	"sort"
	"testing"

	"tppsim/internal/mem"
	"tppsim/internal/pagetable"
	"tppsim/internal/xrand"
)

// fakeCtx implements Ctx with a plain address space and touch counting.
type fakeCtx struct {
	as      *pagetable.AddressSpace
	rng     *xrand.RNG
	touched map[pagetable.VPN]int
	mmaps   int
	munmaps int
}

func newFakeCtx() *fakeCtx {
	return &fakeCtx{
		as:      pagetable.New(1),
		rng:     xrand.New(42),
		touched: make(map[pagetable.VPN]int),
	}
}

func (c *fakeCtx) Mmap(pages uint64, t mem.PageType) pagetable.Region {
	c.mmaps++
	return c.as.Mmap(pages, t)
}

func (c *fakeCtx) Munmap(r pagetable.Region) {
	c.munmaps++
	c.as.Munmap(r)
}

func (c *fakeCtx) Touch(v pagetable.VPN) { c.touched[v]++ }

func (c *fakeCtx) RNG() *xrand.RNG { return c.rng }

func TestCatalogComplete(t *testing.T) {
	want := []string{"Ads1", "Ads2", "Ads3", "Cache1", "Cache2", "Warehouse", "Web1", "Web2"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
}

func TestProfilesConstructAndStart(t *testing.T) {
	for name, ctor := range Catalog {
		w := ctor(DefaultTotalPages)
		if w.Name() != name {
			t.Errorf("%s: Name() = %q", name, w.Name())
		}
		total := w.TotalPages()
		if total == 0 || total > DefaultTotalPages {
			t.Errorf("%s: TotalPages = %d", name, total)
		}
		if w.Model().CPUServiceNs <= 0 || w.Model().StallsPerOp <= 0 {
			t.Errorf("%s: model not calibrated", name)
		}
		ctx := newFakeCtx()
		w.Start(ctx)
		if ctx.mmaps == 0 {
			t.Errorf("%s: Start mapped nothing", name)
		}
	}
}

func TestNextAccessInsideRegions(t *testing.T) {
	w := Cache1(8192)
	ctx := newFakeCtx()
	w.Start(ctx)
	for i := 0; i < 10000; i++ {
		v, ok := w.NextAccess(ctx, 0)
		if !ok {
			continue
		}
		if _, found := ctx.as.RegionOf(v); !found {
			t.Fatalf("access outside any region: %d", v)
		}
	}
}

func TestWarmupFloodsFileRegion(t *testing.T) {
	w := Web1(8192)
	ctx := newFakeCtx()
	w.Start(ctx)
	for tick := uint64(0); tick < w.WarmupTicks(); tick++ {
		w.Tick(ctx, tick)
	}
	// The bytecode region (38% of total) must be fully prefaulted.
	var fileTouched int
	for v := range ctx.touched {
		if r, ok := ctx.as.RegionOf(v); ok && r.Type == mem.File {
			fileTouched++
		}
	}
	wantMin := int(8192 * 30 / 100)
	if fileTouched < wantMin {
		t.Fatalf("file pages touched during warmup = %d, want >= %d", fileTouched, wantMin)
	}
}

func TestGrowthExpandsAnonFootprint(t *testing.T) {
	w := Web1(8192)
	ctx := newFakeCtx()
	w.Start(ctx)
	countAnonSpan := func() int {
		seen := map[pagetable.VPN]bool{}
		for i := 0; i < 20000; i++ {
			v, ok := w.NextAccess(ctx, 400*TicksPerMinute)
			if !ok {
				continue
			}
			if r, k := ctx.as.RegionOf(v); k && r.Type == mem.Anon {
				seen[v] = true
			}
		}
		return len(seen)
	}
	// Before growth: tick < warmup, growth prefix is zero, so anon-heap
	// contributes nothing (only churn anons).
	for tick := uint64(0); tick < w.WarmupTicks(); tick++ {
		w.Tick(ctx, tick)
	}
	early := countAnonSpan()
	// Run 100 minutes of growth.
	for tick := w.WarmupTicks(); tick < 100*TicksPerMinute; tick++ {
		w.Tick(ctx, tick)
	}
	late := countAnonSpan()
	if late <= early {
		t.Fatalf("anon footprint did not grow: early=%d late=%d", early, late)
	}
}

func TestChurnRecyclesSegments(t *testing.T) {
	w := Web1(8192)
	ctx := newFakeCtx()
	w.Start(ctx)
	baseMmaps := ctx.mmaps
	for tick := uint64(0); tick < 200; tick++ {
		w.Tick(ctx, tick)
	}
	if ctx.munmaps == 0 {
		t.Fatal("churn never recycled a segment")
	}
	if ctx.mmaps <= baseMmaps {
		t.Fatal("churn never allocated a fresh segment")
	}
	// Fresh segments are touched immediately (allocation bursts).
	if len(ctx.touched) == 0 {
		t.Fatal("churn did not touch fresh pages")
	}
}

func TestZipfSkewConcentratesAccesses(t *testing.T) {
	// Build a single-region profile with strong skew and verify the top
	// 10% of pages absorb most accesses.
	p := &Profile{
		PName: "skewtest",
		TM:    Cache1(1).TM,
		Specs: []RegionSpec{{
			Name: "r", Type: mem.Anon, Pages: 1000, Weight: 1, ZipfS: 1.2,
		}},
	}
	ctx := newFakeCtx()
	p.Start(ctx)
	counts := map[pagetable.VPN]int{}
	const draws = 50000
	for i := 0; i < draws; i++ {
		v, ok := p.NextAccess(ctx, 0)
		if !ok {
			t.Fatal("no access")
		}
		counts[v]++
	}
	// Concentration: the hottest 10% of pages must absorb most accesses.
	freqs := make([]int, 0, len(counts))
	for _, n := range counts {
		freqs = append(freqs, n)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(freqs)))
	top := 0
	for i := 0; i < len(freqs) && i < 100; i++ {
		top += freqs[i]
	}
	if float64(top)/draws < 0.5 {
		t.Fatalf("top-100 pages absorbed only %.1f%% of accesses", 100*float64(top)/draws)
	}
}

func TestUniformRegionCoversEverything(t *testing.T) {
	p := &Profile{
		PName: "uniform",
		TM:    Cache1(1).TM,
		Specs: []RegionSpec{{
			Name: "r", Type: mem.Anon, Pages: 64, Weight: 1,
		}},
	}
	ctx := newFakeCtx()
	p.Start(ctx)
	seen := map[pagetable.VPN]bool{}
	for i := 0; i < 10000; i++ {
		v, ok := p.NextAccess(ctx, 0)
		if ok {
			seen[v] = true
		}
	}
	if len(seen) != 64 {
		t.Fatalf("uniform region covered %d/64 pages", len(seen))
	}
}

func TestChurnRecencyBias(t *testing.T) {
	p := &Profile{
		PName: "churn",
		TM:    Cache1(1).TM,
		Specs: []RegionSpec{{
			Name: "r", Type: mem.Anon, Pages: 640, Weight: 1,
			ChurnSegments: 8, ChurnTicks: 1000, RecencyBias: 0.7,
		}},
	}
	ctx := newFakeCtx()
	p.Start(ctx)
	regions := ctx.as.Regions()
	newest := regions[len(regions)-1]
	oldest := regions[0]
	var newHits, oldHits int
	for i := 0; i < 20000; i++ {
		v, ok := p.NextAccess(ctx, 0)
		if !ok {
			continue
		}
		if newest.Contains(v) {
			newHits++
		}
		if oldest.Contains(v) {
			oldHits++
		}
	}
	if newHits <= oldHits*2 {
		t.Fatalf("recency bias too weak: new=%d old=%d", newHits, oldHits)
	}
}

func TestDeterministicAccessStream(t *testing.T) {
	mk := func() []pagetable.VPN {
		w := Cache2(4096)
		ctx := newFakeCtx()
		w.Start(ctx)
		var out []pagetable.VPN
		for i := 0; i < 1000; i++ {
			if v, ok := w.NextAccess(ctx, 0); ok {
				out = append(out, v)
			}
		}
		return out
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatal("stream lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("streams diverge at %d", i)
		}
	}
}
