package mem

import "fmt"

// NodeID identifies a memory node. The local (CPU-attached) node is
// conventionally node 0; CXL nodes follow.
type NodeID int8

// NilNode is the sentinel "no node" value.
const NilNode NodeID = -1

// NodeKind distinguishes CPU-attached DRAM from CPU-less CXL memory.
type NodeKind uint8

const (
	// KindLocal is DRAM directly attached to a CPU socket.
	KindLocal NodeKind = iota
	// KindCXL is a CPU-less CXL-Memory expansion node.
	KindCXL
)

// String returns the node kind name.
func (k NodeKind) String() string {
	if k == KindCXL {
		return "cxl"
	}
	return "local"
}

// Watermarks are the free-page thresholds that drive reclaim, in pages.
// Linux keeps min/low/high; TPP adds the decoupled pair (§5.2):
//
//   - Alloc: new allocations may land on the node while free > Alloc.
//   - Demote: background reclaim keeps demoting until free >= Demote.
//
// Invariant (checked by Validate): Min <= Low <= High and
// Alloc <= Demote, with Demote >= High so reclaim always builds headroom
// beyond the classic high watermark.
type Watermarks struct {
	Min    uint64
	Low    uint64
	High   uint64
	Alloc  uint64
	Demote uint64
}

// DefaultWatermarks computes watermarks for a node of the given capacity
// using the paper's defaults: min 0.5%, low 1%, high 2%, allocation
// watermark equal to low, and the demotion watermark at high plus
// demoteScaleFactor (the /proc/sys/vm/demote_scale_factor knob, default
// 0.02 — "reclamation starts as soon as only 2% of the local node's
// capacity is available", §5.2).
func DefaultWatermarks(capacity uint64, demoteScaleFactor float64) Watermarks {
	pct := func(f float64) uint64 {
		v := uint64(float64(capacity) * f)
		if v < 1 {
			v = 1
		}
		return v
	}
	w := Watermarks{
		Min:  pct(0.005),
		Low:  pct(0.01),
		High: pct(0.02),
	}
	w.Alloc = w.Low
	w.Demote = w.High + pct(demoteScaleFactor)
	return w
}

// Validate checks the ordering invariants.
func (w Watermarks) Validate() error {
	if w.Min > w.Low || w.Low > w.High {
		return fmt.Errorf("mem: watermark order violated: min=%d low=%d high=%d", w.Min, w.Low, w.High)
	}
	if w.Alloc > w.Demote {
		return fmt.Errorf("mem: alloc watermark %d above demote watermark %d", w.Alloc, w.Demote)
	}
	if w.Demote < w.High {
		return fmt.Errorf("mem: demote watermark %d below high watermark %d", w.Demote, w.High)
	}
	return nil
}

// Node is one memory node: a capacity, resident-page accounting (total and
// per page type), and watermarks. Latency/bandwidth traits live in package
// tier; this package is pure capacity bookkeeping.
type Node struct {
	ID       NodeID
	Kind     NodeKind
	Capacity uint64 // pages
	WM       Watermarks

	resident       uint64
	residentByType [NumPageTypes]uint64
}

// NewNode returns a node with the given identity and capacity, with
// watermarks from DefaultWatermarks at the given demote scale factor.
func NewNode(id NodeID, kind NodeKind, capacityPages uint64, demoteScaleFactor float64) *Node {
	return &Node{
		ID:       id,
		Kind:     kind,
		Capacity: capacityPages,
		WM:       DefaultWatermarks(capacityPages, demoteScaleFactor),
	}
}

// Resize shrinks or grows the node to capacityPages and rebuilds its
// watermarks at the given demote scale factor. The new capacity is
// clamped to the current resident count — the fault plane evacuates
// overage before resizing, and Free() must never underflow.
func (n *Node) Resize(capacityPages uint64, demoteScaleFactor float64) {
	if capacityPages < n.resident {
		capacityPages = n.resident
	}
	n.Capacity = capacityPages
	n.WM = DefaultWatermarks(capacityPages, demoteScaleFactor)
}

// Free returns the number of free pages on the node.
func (n *Node) Free() uint64 { return n.Capacity - n.resident }

// Resident returns the number of resident pages.
func (n *Node) Resident() uint64 { return n.resident }

// ResidentByType returns the number of resident pages of type t.
func (n *Node) ResidentByType(t PageType) uint64 { return n.residentByType[t] }

// Acquire consumes one free page of type t. It reports false (and changes
// nothing) when the node is full.
func (n *Node) Acquire(t PageType) bool {
	if n.resident >= n.Capacity {
		return false
	}
	n.resident++
	n.residentByType[t]++
	return true
}

// AcquireN consumes count free pages of type t as one all-or-nothing
// unit — the huge-frame analogue of Acquire. It reports false (and
// changes nothing) when fewer than count pages are free, so a partial
// frame can never be charged.
func (n *Node) AcquireN(t PageType, count uint64) bool {
	if n.resident+count > n.Capacity {
		return false
	}
	n.resident += count
	n.residentByType[t] += count
	return true
}

// Release returns one page of type t to the free pool. It panics on
// underflow, which would indicate double-free or type-accounting bugs.
func (n *Node) Release(t PageType) {
	if n.resident == 0 || n.residentByType[t] == 0 {
		panic(fmt.Sprintf("mem: release underflow on node %d type %s", n.ID, t))
	}
	n.resident--
	n.residentByType[t]--
}

// ReleaseN returns count pages of type t to the free pool — the
// huge-frame analogue of Release. It panics on underflow.
func (n *Node) ReleaseN(t PageType, count uint64) {
	if n.resident < count || n.residentByType[t] < count {
		panic(fmt.Sprintf("mem: release underflow on node %d type %s (count=%d)", n.ID, t, count))
	}
	n.resident -= count
	n.residentByType[t] -= count
}

// BelowLow reports whether the node is under classic memory pressure
// (free pages at or under the low watermark) — the default-kernel kswapd
// wake condition. Inclusive: the allocator stops handing out fast-path
// pages exactly at the watermark, and that is the moment kswapd must
// wake, or a node that plateaus at the watermark would never reclaim.
func (n *Node) BelowLow() bool { return n.Free() <= n.WM.Low }

// BelowMin reports whether the node is critically low (direct-reclaim
// territory).
func (n *Node) BelowMin() bool { return n.Free() <= n.WM.Min }

// BelowDemote reports whether free pages are at or under the TPP demotion
// watermark, i.e. background demotion should run (§5.2).
func (n *Node) BelowDemote() bool { return n.Free() <= n.WM.Demote }

// AllocOK reports whether a new allocation may land on this node under the
// decoupled-allocation rule: free page count must satisfy the allocation
// watermark (§5.2).
func (n *Node) AllocOK() bool { return n.Free() > n.WM.Alloc }

// String renders a one-line summary for debugging.
func (n *Node) String() string {
	return fmt.Sprintf("node%d(%s cap=%d resident=%d free=%d)",
		n.ID, n.Kind, n.Capacity, n.resident, n.Free())
}
