// Package mem models the physical-memory substrate of a tiered-memory
// machine: logical 4 KB pages with kernel-style flags, NUMA nodes with
// capacity and free-page accounting, and the zone watermarks that drive
// reclaim — including TPP's decoupled allocation and demotion watermarks
// (§5.2 of the paper).
//
// A deliberate simplification (documented in DESIGN.md): migration moves a
// logical page between nodes instead of copying data between physical
// frames, so a page's PFN is stable for its lifetime and capacity
// accounting is by resident-page counts. This preserves everything the
// placement algorithms observe.
package mem

import (
	"fmt"
	"unsafe"
)

// PageSize is the size of a base page in bytes. TPP is page-size agnostic;
// the simulator uses 4 KB throughout.
const PageSize = 4096

// PFN identifies a logical page for its whole lifetime. In huge-page
// mode (tier.Spec.HugePages) a PFN instead identifies one 2 MB frame of
// HugeFramePages base pages — the Store, LRU lists, and reverse map all
// shrink by that factor while node capacity stays in base pages.
type PFN uint32

// NilPFN is the sentinel "no page" value.
const NilPFN PFN = ^PFN(0)

// HugeFrameShift is log2 of the base pages per 2 MB huge frame
// (2 MB / 4 KB = 512 = 1<<9).
const HugeFrameShift = 9

// HugeFramePages is the number of base pages in one 2 MB huge frame.
const HugeFramePages = 1 << HugeFrameShift

// PageType classifies a page the way the placement policy cares about
// (§3.3, §5.4): anonymous memory (stack/heap/mmap), file-backed page cache,
// and tmpfs (in-memory files; Cache workloads use these for fast lookup).
type PageType uint8

const (
	Anon PageType = iota
	File
	Tmpfs
	numPageTypes
)

// NumPageTypes is the number of distinct page types.
const NumPageTypes = int(numPageTypes)

// String returns the lowercase name of the page type.
func (t PageType) String() string {
	switch t {
	case Anon:
		return "anon"
	case File:
		return "file"
	case Tmpfs:
		return "tmpfs"
	}
	return fmt.Sprintf("pagetype(%d)", uint8(t))
}

// IsFileLike reports whether the page belongs to the file LRU (file and
// tmpfs pages share the file LRU in Linux).
func (t PageType) IsFileLike() bool { return t == File || t == Tmpfs }

// LRUClass returns which of the two LRU pairs (anon vs file) the type
// belongs to: 0 for anon, 1 for file-like.
func (t PageType) LRUClass() int {
	if t.IsFileLike() {
		return 1
	}
	return 0
}

// Flags is the per-page flag word. The names mirror the kernel's page
// flags; PGDemoted is the flag TPP adds in the unused 0x40 bit to detect
// demotion/promotion ping-pong (§5.5).
type Flags uint16

const (
	// PGActive: the page is on (or belongs on) the active LRU list.
	PGActive Flags = 1 << iota
	// PGReferenced: the hardware accessed bit; set on access, consumed by
	// the LRU scan to grant a second chance.
	PGReferenced
	// PGDirty: the page must be written back before it can be dropped.
	PGDirty
	// PGUnevictable: the page may never be reclaimed or demoted (pinned
	// huge-page pools, kernel text, ...).
	PGUnevictable
	// PGIsolated: the page has been taken off its LRU list for migration.
	PGIsolated
	// PGHinted: the NUMA-balancing scanner cleared the PTE present bit for
	// this page; the next access raises a hint fault (§5.3).
	PGHinted
	// PGDemoted: set when TPP demotes the page, cleared on promotion.
	// A promotion of a PGDemoted page is counted as ping-pong traffic.
	PGDemoted
	// PGOnLRU: bookkeeping bit — the page is currently linked on an LRU
	// list. Maintained by the lru package.
	PGOnLRU
)

// Has reports whether all bits in mask are set.
func (f Flags) Has(mask Flags) bool { return f&mask == mask }

// Set returns f with the bits in mask set.
func (f Flags) Set(mask Flags) Flags { return f | mask }

// Clear returns f with the bits in mask cleared.
func (f Flags) Clear(mask Flags) Flags { return f &^ mask }

// Page is one logical 4 KB page. Pages are stored in a flat slice indexed
// by PFN; the LRU links are intrusive (PFN-valued) to avoid per-node
// container allocations on the hot path.
type Page struct {
	Type  PageType
	Flags Flags
	// Node is the memory node the page currently resides on.
	Node NodeID
	// Home is the CPU node whose cores access this page (the socket its
	// owning region is placed on). Accesses pay the distance-derived
	// latency from Home to Node, so a cross-socket DRAM hit on a
	// dual-socket machine costs more than a near hit. Migration changes
	// Node, never Home. Always 0 on single-socket machines.
	Home NodeID
	// Prev/Next are the intrusive LRU links, maintained by package lru.
	Prev, Next PFN
	// AccessEpoch counts accesses within the current AutoTiering epoch;
	// the AutoTiering baseline ranks pages by it (§6.3).
	AccessEpoch uint32
	// LastAccessTick records the simulator tick of the most recent access,
	// used by profiling and the workload's re-access bookkeeping.
	LastAccessTick uint64
}

// Store owns every page in the machine. PFNs are allocated densely and
// recycled through a free list when pages are unmapped.
type Store struct {
	pages []Page
	free  []PFN
}

// NewStore returns an empty store with capacity hint n pages.
func NewStore(n int) *Store {
	return &Store{pages: make([]Page, 0, n)}
}

// Alloc creates a new page of the given type on the given node and returns
// its PFN. The page starts with empty flags and nil LRU links.
func (s *Store) Alloc(t PageType, node NodeID) PFN {
	var pfn PFN
	if n := len(s.free); n > 0 {
		pfn = s.free[n-1]
		s.free = s.free[:n-1]
		s.pages[pfn] = Page{Type: t, Node: node, Prev: NilPFN, Next: NilPFN}
	} else {
		pfn = PFN(len(s.pages))
		s.pages = append(s.pages, Page{Type: t, Node: node, Prev: NilPFN, Next: NilPFN})
	}
	return pfn
}

// Free returns a page to the store. The caller must have already unlinked
// it from any LRU list and released its node residency.
func (s *Store) Free(pfn PFN) {
	if s.pages[pfn].Flags.Has(PGOnLRU) {
		panic("mem: freeing page still on LRU")
	}
	s.pages[pfn].Node = NilNode
	s.free = append(s.free, pfn)
}

// Page returns a mutable pointer to the page with the given PFN.
func (s *Store) Page(pfn PFN) *Page { return &s.pages[pfn] }

// Len returns the number of PFNs ever allocated (live + freed).
func (s *Store) Len() int { return len(s.pages) }

// Live returns the number of currently allocated pages.
func (s *Store) Live() int { return len(s.pages) - len(s.free) }

// FootprintBytes returns the store's resident simulator memory: the page
// array plus the free list, counted at capacity (what the process
// actually holds, not just what is in use).
func (s *Store) FootprintBytes() uint64 {
	return uint64(cap(s.pages))*uint64(unsafe.Sizeof(Page{})) +
		uint64(cap(s.free))*uint64(unsafe.Sizeof(PFN(0)))
}
