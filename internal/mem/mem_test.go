package mem

import (
	"testing"
	"testing/quick"
)

func TestPageTypeString(t *testing.T) {
	cases := map[PageType]string{Anon: "anon", File: "file", Tmpfs: "tmpfs"}
	for pt, want := range cases {
		if pt.String() != want {
			t.Errorf("%d.String() = %q, want %q", pt, pt.String(), want)
		}
	}
	if PageType(9).String() != "pagetype(9)" {
		t.Errorf("unknown type string = %q", PageType(9).String())
	}
}

func TestPageTypeLRUClass(t *testing.T) {
	if Anon.LRUClass() != 0 {
		t.Error("anon should be LRU class 0")
	}
	if File.LRUClass() != 1 || Tmpfs.LRUClass() != 1 {
		t.Error("file-like pages should be LRU class 1")
	}
	if Anon.IsFileLike() {
		t.Error("anon is not file-like")
	}
	if !Tmpfs.IsFileLike() {
		t.Error("tmpfs is file-like")
	}
}

func TestFlagOps(t *testing.T) {
	var f Flags
	f = f.Set(PGActive | PGDirty)
	if !f.Has(PGActive) || !f.Has(PGDirty) {
		t.Fatal("Set failed")
	}
	if f.Has(PGActive | PGReferenced) {
		t.Fatal("Has should require all bits")
	}
	f = f.Clear(PGActive)
	if f.Has(PGActive) {
		t.Fatal("Clear failed")
	}
	if !f.Has(PGDirty) {
		t.Fatal("Clear removed unrelated bit")
	}
}

// Property: Set then Clear restores the original value for any flag word
// and any mask.
func TestFlagRoundTripProperty(t *testing.T) {
	f := func(orig, mask uint16) bool {
		fl := Flags(orig)
		m := Flags(mask)
		restored := fl.Set(m).Clear(m)
		return restored == fl.Clear(m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStoreAllocFree(t *testing.T) {
	s := NewStore(8)
	p1 := s.Alloc(Anon, 0)
	p2 := s.Alloc(File, 1)
	if p1 == p2 {
		t.Fatal("duplicate PFNs")
	}
	if s.Page(p1).Type != Anon || s.Page(p2).Type != File {
		t.Fatal("type not recorded")
	}
	if s.Page(p1).Node != 0 || s.Page(p2).Node != 1 {
		t.Fatal("node not recorded")
	}
	if s.Live() != 2 {
		t.Fatalf("Live = %d, want 2", s.Live())
	}
	s.Free(p1)
	if s.Live() != 1 {
		t.Fatalf("Live after free = %d, want 1", s.Live())
	}
	// Recycled PFN comes back clean.
	p3 := s.Alloc(Tmpfs, 0)
	if p3 != p1 {
		t.Fatalf("free list not recycled: got %d, want %d", p3, p1)
	}
	pg := s.Page(p3)
	if pg.Type != Tmpfs || pg.Flags != 0 || pg.Prev != NilPFN || pg.Next != NilPFN {
		t.Fatalf("recycled page not reset: %+v", pg)
	}
}

func TestStoreFreePanicsOnLRUPage(t *testing.T) {
	s := NewStore(1)
	p := s.Alloc(Anon, 0)
	s.Page(p).Flags = s.Page(p).Flags.Set(PGOnLRU)
	defer func() {
		if recover() == nil {
			t.Fatal("Free of on-LRU page did not panic")
		}
	}()
	s.Free(p)
}

func TestDefaultWatermarks(t *testing.T) {
	w := DefaultWatermarks(10000, 0.02)
	if w.Min != 50 || w.Low != 100 || w.High != 200 {
		t.Fatalf("min/low/high = %d/%d/%d", w.Min, w.Low, w.High)
	}
	if w.Alloc != w.Low {
		t.Fatalf("alloc = %d, want low %d", w.Alloc, w.Low)
	}
	if w.Demote != w.High+200 {
		t.Fatalf("demote = %d, want %d", w.Demote, w.High+200)
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWatermarksTinyCapacity(t *testing.T) {
	w := DefaultWatermarks(10, 0.02)
	if err := w.Validate(); err != nil {
		t.Fatalf("tiny capacity watermarks invalid: %v", err)
	}
	if w.Min < 1 {
		t.Fatal("min clamped below 1")
	}
}

func TestWatermarkValidateRejectsBadOrder(t *testing.T) {
	bad := []Watermarks{
		{Min: 10, Low: 5, High: 20, Alloc: 5, Demote: 25},
		{Min: 1, Low: 5, High: 4, Alloc: 5, Demote: 25},
		{Min: 1, Low: 2, High: 3, Alloc: 30, Demote: 25},
		{Min: 1, Low: 2, High: 10, Alloc: 2, Demote: 5},
	}
	for i, w := range bad {
		if err := w.Validate(); err == nil {
			t.Errorf("case %d: invalid watermarks accepted: %+v", i, w)
		}
	}
}

// Property: for any capacity >= 1 and scale factor in [0.005, 0.2],
// DefaultWatermarks validates.
func TestDefaultWatermarksAlwaysValid(t *testing.T) {
	f := func(capRaw uint32, sfRaw uint8) bool {
		capacity := uint64(capRaw%1_000_000) + 1
		sf := 0.005 + float64(sfRaw%40)/200 // 0.005 .. 0.2
		return DefaultWatermarks(capacity, sf).Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestNodeAcquireRelease(t *testing.T) {
	n := NewNode(0, KindLocal, 100, 0.02)
	if n.Free() != 100 {
		t.Fatalf("fresh node free = %d", n.Free())
	}
	for i := 0; i < 100; i++ {
		if !n.Acquire(Anon) {
			t.Fatalf("Acquire failed at %d", i)
		}
	}
	if n.Acquire(Anon) {
		t.Fatal("Acquire beyond capacity succeeded")
	}
	if n.Free() != 0 || n.Resident() != 100 || n.ResidentByType(Anon) != 100 {
		t.Fatal("accounting wrong at full")
	}
	n.Release(Anon)
	if n.Free() != 1 {
		t.Fatal("Release did not free a page")
	}
}

func TestNodeReleaseUnderflowPanics(t *testing.T) {
	n := NewNode(0, KindLocal, 10, 0.02)
	n.Acquire(Anon)
	defer func() {
		if recover() == nil {
			t.Fatal("type-mismatched release did not panic")
		}
	}()
	n.Release(File) // wrong type: underflows the per-type counter
}

func TestNodeWatermarkPredicates(t *testing.T) {
	n := NewNode(0, KindLocal, 1000, 0.02)
	// free=1000: everything fine
	if n.BelowLow() || n.BelowMin() || n.BelowDemote() {
		t.Fatal("fresh node reports pressure")
	}
	if !n.AllocOK() {
		t.Fatal("fresh node refuses allocation")
	}
	// Fill until free drops below demote watermark (high=20 + 20 = 40).
	for n.Free() >= n.WM.Demote {
		n.Acquire(Anon)
	}
	if !n.BelowDemote() {
		t.Fatal("BelowDemote false below demotion watermark")
	}
	if n.BelowLow() {
		t.Fatal("BelowLow true while still above low watermark")
	}
	// Fill until below low.
	for n.Free() >= n.WM.Low {
		n.Acquire(Anon)
	}
	if !n.BelowLow() {
		t.Fatal("BelowLow false")
	}
	if n.AllocOK() {
		t.Fatal("AllocOK true at/below the allocation watermark")
	}
	// Fill to below min.
	for n.Free() >= n.WM.Min {
		n.Acquire(Anon)
	}
	if !n.BelowMin() {
		t.Fatal("BelowMin false")
	}
}

// Property: any interleaving of Acquire/Release keeps 0 <= resident <=
// capacity and per-type counts summing to resident.
func TestNodeAccountingProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		n := NewNode(1, KindCXL, 64, 0.02)
		live := [NumPageTypes]uint64{}
		for _, op := range ops {
			pt := PageType(op % 3)
			if op&0x80 == 0 {
				if n.Acquire(pt) {
					live[pt]++
				}
			} else if live[pt] > 0 {
				n.Release(pt)
				live[pt]--
			}
			var sum uint64
			for t := 0; t < NumPageTypes; t++ {
				if n.ResidentByType(PageType(t)) != live[t] {
					return false
				}
				sum += live[t]
			}
			if n.Resident() != sum || n.Resident() > n.Capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestNodeString(t *testing.T) {
	n := NewNode(2, KindCXL, 10, 0.02)
	n.Acquire(File)
	got := n.String()
	want := "node2(cxl cap=10 resident=1 free=9)"
	if got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}
