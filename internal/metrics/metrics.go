// Package metrics provides the measurement side of the simulator: per-tick
// accumulators, time series for the paper's figures, percentile helpers,
// and the analytic throughput model that converts average memory access
// latency into application-level throughput.
//
// Throughput model. The paper's own latency sweep (Fig. 16) shows
// throughput loss tracking average memory access latency, which motivates
// the classic stall model:
//
//	opTime = CPUServiceNs + StallsPerOp × avgAccessLatencyNs + stallShare
//
// where stallShare folds in direct-reclaim stalls and major-fault time the
// OS charged to the workload. Throughput is reported normalized to an
// all-local baseline exactly as the paper does ("Throughput (%)
// normalized to Baseline", Table 1). CPUServiceNs/StallsPerOp are
// calibrated per workload — they set how memory-bound the application is,
// not who wins.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"tppsim/internal/fault"
	"tppsim/internal/probe"
	"tppsim/internal/series"
	"tppsim/internal/tracker"
	"tppsim/internal/vmstat"
)

// ThroughputModel holds a workload's calibration constants.
type ThroughputModel struct {
	// CPUServiceNs is the pure-compute time per application operation.
	CPUServiceNs float64
	// StallsPerOp is the average number of memory accesses that stall the
	// core (LLC misses) per operation.
	StallsPerOp float64
}

// OpTimeNs returns the modeled time per operation given the observed
// average access latency and the per-op share of OS-charged stall time.
func (m ThroughputModel) OpTimeNs(avgLatencyNs, stallSharePerOpNs float64) float64 {
	return m.CPUServiceNs + m.StallsPerOp*avgLatencyNs + stallSharePerOpNs
}

// Normalized returns throughput relative to a baseline whose every access
// hits local memory at baseLatencyNs with no OS stalls.
func (m ThroughputModel) Normalized(avgLatencyNs, stallSharePerOpNs, baseLatencyNs float64) float64 {
	base := m.OpTimeNs(baseLatencyNs, 0)
	cur := m.OpTimeNs(avgLatencyNs, stallSharePerOpNs)
	if cur <= 0 {
		return 0
	}
	return base / cur
}

// Tick accumulates one simulator tick's events. The simulator's access
// stream is a *sample* of the application's real traffic: per-access load
// latencies go to LatencySumNs, while per-page event costs (faults,
// migrations, reclaim stalls) go to EventNs — those events happen once
// per page regardless of access rate, so they are amortized over the real
// access rate (sampled accesses × scale) when computing averages.
type Tick struct {
	Accesses      uint64  // sampled memory accesses
	LocalAccesses uint64  // of which served by a local node
	LatencySumNs  float64 // summed pure load latency of sampled accesses
	EventNs       float64 // summed per-page event costs (faults, migrations)
	StallNs       float64 // OS stall charged to the workload (majors + direct reclaim)
	AllocPages    uint64  // pages allocated this tick
	AllocLocal    uint64  // of which on a local node
	PromotedPages uint64
	DemotedPages  uint64
}

// LocalFraction returns the fraction of accesses served locally.
func (t Tick) LocalFraction() float64 {
	if t.Accesses == 0 {
		return 0
	}
	return float64(t.LocalAccesses) / float64(t.Accesses)
}

// AvgLatencyNs returns the effective mean access latency this tick: mean
// sampled load latency plus event costs amortized over the real access
// rate (sampled × scale).
func (t Tick) AvgLatencyNs(scale float64) float64 {
	if t.Accesses == 0 {
		return 0
	}
	if scale < 1 {
		scale = 1
	}
	return t.LatencySumNs/float64(t.Accesses) + t.EventNs/(float64(t.Accesses)*scale)
}

// Series is one named time series (a figure line).
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Append adds a point.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.Y) }

// Mean returns the arithmetic mean of Y (0 for empty series).
func (s *Series) Mean() float64 { return Mean(s.Y) }

// Tail returns the mean of the last frac portion of the series — the
// steady-state value after convergence. frac in (0, 1].
func (s *Series) Tail(frac float64) float64 {
	if len(s.Y) == 0 {
		return 0
	}
	start := int(float64(len(s.Y)) * (1 - frac))
	if start < 0 {
		start = 0
	}
	if start >= len(s.Y) {
		start = len(s.Y) - 1
	}
	return Mean(s.Y[start:])
}

// Percentile returns the p-th percentile (p in [0,100]) of Y.
func (s *Series) Percentile(p float64) float64 { return Percentile(s.Y, p) }

// Mean returns the arithmetic mean of xs (0 for empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Percentile returns the p-th percentile of xs by linear interpolation
// between closest ranks. Returns NaN for empty input; p is clamped to
// [0, 100].
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	p = math.Min(100, math.Max(0, p))
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Run aggregates a whole simulation run: the per-tick series plus final
// scalar results.
type Run struct {
	Policy   string
	Workload string
	// Workers is the resolved sim-core worker count the run executed
	// with (1 = serial). Informational only: the parallel core's
	// determinism contract makes every other field bit-identical across
	// worker counts.
	Workers int

	// Per-tick series; X is simulated minutes.
	LocalTraffic   Series // fraction of accesses served locally (Fig. 14)
	AvgLatency     Series // ns (Fig. 16a)
	AllocRate      Series // MB/s of new allocations
	LocalAllocRate Series // MB/s of allocations landing on the local node (Fig. 17a)
	PromotionRate  Series // KB/s promoted (Fig. 17b)
	DemotionRate   Series // KB/s demoted
	Throughput     Series // normalized instantaneous throughput
	AnonResidency  Series // fraction of anon pages on local nodes
	MigrationRate  Series // MB/s total migration traffic (§7 check)
	UtilTotal      Series // resident pages / total capacity (Fig. 9)
	UtilAnon       Series // anon resident / total capacity
	UtilFile       Series // file+tmpfs resident / total capacity

	// Scalars.
	NormalizedThroughput float64 // run-level, the Table 1 number
	AvgLocalTraffic      float64
	AvgLatencyNs         float64
	Failed               bool // AutoTiering crash (Table 1 "Fails")
	FailReason           string

	// Nodes is the per-node end-of-run accounting from the machine's
	// node-indexed vmstat plane, in node-ID order. Summing a counter
	// over Nodes reproduces the run's global value exactly. Populated
	// for failed runs too.
	Nodes []NodeResult

	// NodeSeries is the per-tick per-node plane: every node's vmstat
	// counter deltas per sample window plus its residency levels at each
	// window end, sampled by the machine when Config.SampleEveryTicks is
	// set (nil otherwise). It is the single per-tick representation —
	// trace.Stats reconstructs the identical series from a recorded
	// trace without re-running the machine.
	NodeSeries *series.Series

	// LatencyHist is the distribution plane's histogram set — per-node
	// access latency, migration costs by direction, allocstall durations,
	// reclaim scan batches — recorded when Config.ProbeLatency is set
	// (nil otherwise).
	LatencyHist *probe.LatencySet
	// PhaseProfile is the tick-phase wall-clock profile, recorded when
	// Config.ProbePhases is set (nil otherwise). Its durations are host
	// wall-clock and therefore nondeterministic; everything else in the
	// Run stays bit-identical.
	PhaseProfile *probe.PhaseProfiler
	// FaultLog lists every fault edge the fault plane applied during
	// the run, in application order. Empty for faults-off runs.
	FaultLog []fault.Occurrence
	// Tracker is the sampled-tracking plane's end-of-run summary —
	// overhead (scanned pages/tick), region adaptation, mover volume,
	// and, when the oracle ran, hot-set precision/recall against exact
	// access counts. Nil for tracker-off runs.
	Tracker *tracker.RunStats

	// MemStats is the simulator's own memory footprint at end of run —
	// the scaling story for terabyte-scale machines. Always populated.
	MemStats MemStats
}

// MemStats reports how much memory the simulator itself spent modeling
// the machine: the page-table representation (extents + records + rmap
// in extent mode, the dense maps otherwise), the page store, and the
// headline bytes-per-simulated-resident-page ratio. Extent counts and
// split/merge totals are zero in dense mode.
type MemStats struct {
	// Extents is the number of live extents in the page table at end of
	// run (0 in dense mode).
	Extents int
	// Splits and Merges are the cumulative extent split/merge totals —
	// the same churn the extent_split/extent_merge vmstat counters carry.
	Splits uint64
	Merges uint64
	// FramePages is the base pages per store PFN (1, or 512 with
	// HugePages).
	FramePages uint64
	// ResidentPages is the simulated resident footprint in base pages at
	// end of run.
	ResidentPages uint64
	// TableBytes and StoreBytes are the page table's and page store's
	// simulator memory, counted at slice capacity.
	TableBytes uint64
	StoreBytes uint64
	// BytesPerPage is (TableBytes+StoreBytes)/ResidentPages — the
	// scaling headline (0 when nothing is resident).
	BytesPerPage float64
}

// NodeResult is one memory node's end-of-run accounting: identity,
// residency, and its slice of the vmstat plane.
type NodeResult struct {
	ID   int
	Kind string // "local" or "cxl"
	Tier int    // distance-derived tier rank; 0 is the CPU tier

	CapacityPages uint64
	ResidentPages uint64
	ResidentAnon  uint64
	ResidentFile  uint64 // file + tmpfs
	LoadLatencyNs float64

	// Counters is the node's vmstat snapshot (see the vmstat package
	// doc for which node each event is charged to).
	Counters vmstat.Snapshot
}

// Get returns one of the node's counters by enum.
func (n NodeResult) Get(c vmstat.Counter) uint64 { return n.Counters.Get(c) }

// String renders the headline scalars.
func (r *Run) String() string {
	if r.Failed {
		return fmt.Sprintf("%s/%s: FAILS (%s)", r.Workload, r.Policy, r.FailReason)
	}
	return fmt.Sprintf("%s/%s: throughput=%.1f%% local=%.1f%% lat=%.0fns",
		r.Workload, r.Policy, 100*r.NormalizedThroughput, 100*r.AvgLocalTraffic, r.AvgLatencyNs)
}
