package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestThroughputModelBaseline(t *testing.T) {
	m := ThroughputModel{CPUServiceNs: 500, StallsPerOp: 1}
	if got := m.Normalized(100, 0, 100); math.Abs(got-1) > 1e-12 {
		t.Fatalf("baseline normalized = %v, want 1", got)
	}
}

func TestThroughputDropsWithLatency(t *testing.T) {
	m := ThroughputModel{CPUServiceNs: 500, StallsPerOp: 1}
	hi := m.Normalized(100, 0, 100)
	lo := m.Normalized(250, 0, 100)
	if lo >= hi {
		t.Fatal("higher latency did not reduce throughput")
	}
	// 500 + 250 vs 500 + 100: ratio 600/750 = 0.8.
	if math.Abs(lo-0.8) > 1e-12 {
		t.Fatalf("normalized = %v, want 0.8", lo)
	}
}

func TestStallShareReducesThroughput(t *testing.T) {
	m := ThroughputModel{CPUServiceNs: 500, StallsPerOp: 1}
	clean := m.Normalized(100, 0, 100)
	stalled := m.Normalized(100, 200, 100)
	if stalled >= clean {
		t.Fatal("stall share ignored")
	}
}

func TestMemoryBoundednessScalesImpact(t *testing.T) {
	cpuBound := ThroughputModel{CPUServiceNs: 2000, StallsPerOp: 0.5}
	memBound := ThroughputModel{CPUServiceNs: 200, StallsPerOp: 2}
	cpuLoss := 1 - cpuBound.Normalized(250, 0, 100)
	memLoss := 1 - memBound.Normalized(250, 0, 100)
	if memLoss <= cpuLoss {
		t.Fatal("memory-bound workload should lose more from slow memory")
	}
}

func TestTickAccessors(t *testing.T) {
	tk := Tick{Accesses: 10, LocalAccesses: 7, LatencySumNs: 1500}
	if tk.LocalFraction() != 0.7 {
		t.Fatalf("LocalFraction = %v", tk.LocalFraction())
	}
	if tk.AvgLatencyNs(1) != 150 {
		t.Fatalf("AvgLatencyNs = %v", tk.AvgLatencyNs(1))
	}
	var zero Tick
	if zero.LocalFraction() != 0 || zero.AvgLatencyNs(1) != 0 {
		t.Fatal("zero tick not safe")
	}
}

func TestTickEventAmortization(t *testing.T) {
	tk := Tick{Accesses: 10, LatencySumNs: 1000, EventNs: 10000}
	// scale 1: 100 + 1000 = 1100; scale 100: 100 + 10.
	if got := tk.AvgLatencyNs(1); got != 1100 {
		t.Fatalf("scale-1 avg = %v", got)
	}
	if got := tk.AvgLatencyNs(100); got != 110 {
		t.Fatalf("scale-100 avg = %v", got)
	}
	// Degenerate scale clamps to 1.
	if got := tk.AvgLatencyNs(0); got != 1100 {
		t.Fatalf("scale-0 avg = %v", got)
	}
}

func TestSeries(t *testing.T) {
	var s Series
	for i := 0; i < 10; i++ {
		s.Append(float64(i), float64(i))
	}
	if s.Len() != 10 {
		t.Fatal("Len wrong")
	}
	if s.Mean() != 4.5 {
		t.Fatalf("Mean = %v", s.Mean())
	}
	// Tail(0.2): last 2 points = 8,9.
	if got := s.Tail(0.2); got != 8.5 {
		t.Fatalf("Tail = %v", got)
	}
	if got := s.Tail(1); got != 4.5 {
		t.Fatalf("Tail(1) = %v", got)
	}
}

func TestSeriesEmptySafe(t *testing.T) {
	var s Series
	if s.Mean() != 0 || s.Tail(0.5) != 0 {
		t.Fatal("empty series accessors unsafe")
	}
	if !math.IsNaN(s.Percentile(50)) {
		t.Fatal("empty percentile should be NaN")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := map[float64]float64{0: 1, 50: 3, 100: 5, 25: 2}
	for p, want := range cases {
		if got := Percentile(xs, p); math.Abs(got-want) > 1e-12 {
			t.Errorf("P%v = %v, want %v", p, got, want)
		}
	}
	// Interpolation: P10 of [0,10] over 2 points = 1.
	if got := Percentile([]float64{0, 10}, 10); math.Abs(got-1) > 1e-12 {
		t.Errorf("interpolated P10 = %v", got)
	}
	// Single element.
	if Percentile([]float64{7}, 99) != 7 {
		t.Error("single-element percentile wrong")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Percentile mutated input")
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []uint16, aRaw, bRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, v := range raw {
			xs[i] = float64(v)
			lo = math.Min(lo, xs[i])
			hi = math.Max(hi, xs[i])
		}
		a := float64(aRaw) / 255 * 100
		b := float64(bRaw) / 255 * 100
		if a > b {
			a, b = b, a
		}
		pa, pb := Percentile(xs, a), Percentile(xs, b)
		return pa <= pb+1e-9 && pa >= lo-1e-9 && pb <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRunString(t *testing.T) {
	r := &Run{Policy: "TPP", Workload: "Web1", NormalizedThroughput: 0.995, AvgLocalTraffic: 0.9, AvgLatencyNs: 115}
	got := r.String()
	want := "Web1/TPP: throughput=99.5% local=90.0% lat=115ns"
	if got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
	r.Failed = true
	r.FailReason = "promotion starvation"
	if r.String() != "Web1/TPP: FAILS (promotion starvation)" {
		t.Fatalf("failed String = %q", r.String())
	}
}
