package chameleon

import (
	"strings"
	"testing"

	"tppsim/internal/mem"
	"tppsim/internal/pagetable"
	"tppsim/internal/xrand"
)

type fixture struct {
	as *pagetable.AddressSpace
	c  *Chameleon
}

func newFixture(cfg Config) *fixture {
	as := pagetable.New(1)
	store := mem.NewStore(1024)
	return &fixture{as: as, c: New(cfg, as, store, xrand.New(7))}
}

// runInterval feeds accessFn once per tick for one worker interval.
func (f *fixture) runInterval(accessFn func()) {
	for i := uint64(0); i < f.c.cfg.IntervalTicks; i++ {
		if accessFn != nil {
			accessFn()
		}
		f.c.Tick()
	}
}

func TestSamplingRate(t *testing.T) {
	f := newFixture(Config{SampleRate: 10, Cores: 4, CoreGroups: 1})
	r := f.as.Mmap(16, mem.Anon)
	const events = 100000
	for i := 0; i < events; i++ {
		f.c.OnAccess(r.Start + pagetable.VPN(i%16))
	}
	got := float64(f.c.Samples())
	want := float64(events) / 10
	if got < want*0.9 || got > want*1.1 {
		t.Fatalf("samples = %v, want ~%v", got, want)
	}
}

func TestDutyCyclingReducesSamples(t *testing.T) {
	full := newFixture(Config{SampleRate: 10, Cores: 4, CoreGroups: 1})
	quarter := newFixture(Config{SampleRate: 10, Cores: 4, CoreGroups: 4})
	rf := full.as.Mmap(4, mem.Anon)
	rq := quarter.as.Mmap(4, mem.Anon)
	const events = 100000
	for i := 0; i < events; i++ {
		full.c.OnAccess(rf.Start)
		quarter.c.OnAccess(rq.Start)
	}
	ratio := float64(quarter.c.Samples()) / float64(full.c.Samples())
	if ratio < 0.15 || ratio > 0.35 {
		t.Fatalf("duty-cycle ratio = %v, want ~0.25", ratio)
	}
}

func TestGroupRotation(t *testing.T) {
	f := newFixture(Config{MiniIntervalTicks: 2, CoreGroups: 4})
	if f.c.activeGroup != 0 {
		t.Fatal("initial group wrong")
	}
	f.c.Tick()
	f.c.Tick()
	if f.c.activeGroup != 1 {
		t.Fatalf("group after one mini-interval = %d", f.c.activeGroup)
	}
	for i := 0; i < 6; i++ {
		f.c.Tick()
	}
	if f.c.activeGroup != 0 {
		t.Fatalf("group did not wrap: %d", f.c.activeGroup)
	}
}

func TestHeatBucketsProgression(t *testing.T) {
	// Sample everything: rate 1, one group.
	f := newFixture(Config{SampleRate: 1, Cores: 1, CoreGroups: 1, IntervalTicks: 10})
	r := f.as.Mmap(2, mem.Anon)
	f.as.MapPage(r.Start, 0)
	f.as.MapPage(r.Start+1, 1)

	// Interval 1: touch page 0 only.
	f.runInterval(func() { f.c.OnAccess(r.Start) })
	rep := f.c.Report("t")
	ts := rep.PerType[mem.Anon]
	if ts.Allocated != 2 || ts.Hot1 != 1 {
		t.Fatalf("after interval 1: %+v", ts)
	}
	// Page 1 was never sampled: cold.
	if ts.Cold != 1 {
		t.Fatalf("cold = %d", ts.Cold)
	}

	// Interval 2: touch nothing. Page 0 moves from hot1 to hot2.
	f.runInterval(nil)
	ts = f.c.Report("t").PerType[mem.Anon]
	if ts.Hot1 != 0 || ts.Hot2 != 1 {
		t.Fatalf("after interval 2: %+v", ts)
	}
}

func TestColdAfterTenIntervals(t *testing.T) {
	f := newFixture(Config{SampleRate: 1, Cores: 1, CoreGroups: 1, IntervalTicks: 5})
	r := f.as.Mmap(1, mem.File)
	f.as.MapPage(r.Start, 0)
	f.runInterval(func() { f.c.OnAccess(r.Start) })
	for i := 0; i < 11; i++ {
		f.runInterval(nil)
	}
	ts := f.c.Report("t").PerType[mem.File]
	if ts.Cold != 1 {
		t.Fatalf("page not cold after 11 idle intervals: %+v", ts)
	}
}

func TestReaccessDistribution(t *testing.T) {
	f := newFixture(Config{SampleRate: 1, Cores: 1, CoreGroups: 1, IntervalTicks: 5})
	r := f.as.Mmap(1, mem.Anon)
	f.as.MapPage(r.Start, 0)

	// Interval 1: first touch.
	f.runInterval(func() { f.c.OnAccess(r.Start) })
	if f.c.reacc.FirstTouch != 1 {
		t.Fatalf("first touch not recorded: %+v", f.c.reacc)
	}
	// Interval 2: hot again back-to-back -> Within1.
	f.runInterval(func() { f.c.OnAccess(r.Start) })
	if f.c.reacc.Within1 != 1 {
		t.Fatalf("within1 not recorded: %+v", f.c.reacc)
	}
	// Cold for 3 intervals, then hot -> Within5.
	f.runInterval(nil)
	f.runInterval(nil)
	f.runInterval(nil)
	f.runInterval(func() { f.c.OnAccess(r.Start) })
	if f.c.reacc.Within5 != 1 {
		t.Fatalf("within5 not recorded: %+v", f.c.reacc)
	}
}

func TestPerTypeSeparation(t *testing.T) {
	f := newFixture(Config{SampleRate: 1, Cores: 1, CoreGroups: 1, IntervalTicks: 5})
	ra := f.as.Mmap(4, mem.Anon)
	rf := f.as.Mmap(4, mem.Tmpfs)
	for i := 0; i < 4; i++ {
		f.as.MapPage(ra.Start+pagetable.VPN(i), mem.PFN(i))
		f.as.MapPage(rf.Start+pagetable.VPN(i), mem.PFN(4+i))
	}
	f.runInterval(func() {
		f.c.OnAccess(ra.Start)
		f.c.OnAccess(ra.Start + 1)
		f.c.OnAccess(rf.Start)
	})
	rep := f.c.Report("t")
	if rep.PerType[mem.Anon].Hot1 != 2 {
		t.Fatalf("anon hot1 = %d", rep.PerType[mem.Anon].Hot1)
	}
	if rep.PerType[mem.Tmpfs].Hot1 != 1 {
		t.Fatalf("tmpfs hot1 = %d", rep.PerType[mem.Tmpfs].Hot1)
	}
	if rep.Overall.Allocated != 8 || rep.Overall.Hot1 != 3 {
		t.Fatalf("overall: %+v", rep.Overall)
	}
}

func TestPhysicalTranslationSkipsUnmapped(t *testing.T) {
	f := newFixture(Config{SampleRate: 1, Cores: 1, CoreGroups: 1,
		IntervalTicks: 5, PhysicalTranslation: true})
	r := f.as.Mmap(1, mem.Anon)
	f.as.MapPage(r.Start, 0)
	// Sample, then unmap before the worker runs.
	f.c.OnAccess(r.Start)
	f.as.UnmapPage(r.Start)
	f.runInterval(nil)
	if f.c.workerProcessed != 0 {
		t.Fatal("worker processed an unmapped page")
	}
}

func TestDoubleBufferingIsolation(t *testing.T) {
	f := newFixture(Config{SampleRate: 1, Cores: 1, CoreGroups: 1, IntervalTicks: 2})
	r := f.as.Mmap(1, mem.Anon)
	f.as.MapPage(r.Start, 0)
	f.c.OnAccess(r.Start)
	before := f.c.current
	f.c.Tick()
	f.c.Tick() // interval boundary: tables swap
	if f.c.current == before {
		t.Fatal("tables did not swap")
	}
	// The old table must have been drained.
	if len(f.c.tables[before]) != 0 {
		t.Fatal("processed table not cleared")
	}
}

func TestReportString(t *testing.T) {
	f := newFixture(Config{SampleRate: 1, Cores: 1, CoreGroups: 1, IntervalTicks: 2})
	r := f.as.Mmap(2, mem.Anon)
	f.as.MapPage(r.Start, 0)
	f.runInterval(func() { f.c.OnAccess(r.Start) })
	out := f.c.Report("Web1").String()
	for _, want := range []string{"Web1", "anon", "total", "hot1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}
