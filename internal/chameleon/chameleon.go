// Package chameleon implements the paper's user-space memory
// characterization tool (§3): a Collector that samples memory-access
// events PEBS-style (one sample per N events, with core-group duty
// cycling and double-buffered hash tables) and a Worker that maintains a
// 64-bit per-page activeness bitmap, resolves page types through the
// process's /proc maps, and produces the heat-map and re-access reports
// behind Figs. 7, 8, 9, and 11.
//
// In the simulator the "PEBS event stream" is the workload's access
// stream: OnAccess receives every sampled access with its virtual page
// number, exactly the (PID, VA) tuples the real tool gets from
// MEM_LOAD_RETIRED.L3_MISS records.
package chameleon

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"tppsim/internal/mem"
	"tppsim/internal/pagetable"
	"tppsim/internal/xrand"
)

// Config tunes the profiler; defaults follow §3.
type Config struct {
	// SampleRate is the 1-in-N PEBS sampling rate. Default 200 ("one
	// sample for every 200 events ... a good trade-off between overhead
	// and accuracy").
	SampleRate int
	// Cores and CoreGroups configure duty cycling: only one group's
	// cores deliver samples at a time, rotating every mini-interval.
	// Defaults 16 cores in 4 groups.
	Cores      int
	CoreGroups int
	// MiniIntervalTicks is the duty-cycle rotation period. Default 5
	// (five seconds).
	MiniIntervalTicks uint64
	// IntervalTicks is the Worker processing interval — one history bit.
	// Default 60 (one minute).
	IntervalTicks uint64
	// PhysicalTranslation enables the VA→PA lookup (can be disabled for
	// terabyte-scale targets, §3).
	PhysicalTranslation bool
}

func (c Config) withDefaults() Config {
	if c.SampleRate == 0 {
		c.SampleRate = 200
	}
	if c.Cores == 0 {
		c.Cores = 16
	}
	if c.CoreGroups == 0 {
		c.CoreGroups = 4
	}
	if c.MiniIntervalTicks == 0 {
		c.MiniIntervalTicks = 5
	}
	if c.IntervalTicks == 0 {
		c.IntervalTicks = 60
	}
	return c
}

// Chameleon is one profiler instance attached to one address space.
type Chameleon struct {
	cfg   Config
	as    *pagetable.AddressSpace
	store *mem.Store
	rng   *xrand.RNG

	// Collector state: double-buffered sample tables.
	tables      [2]map[pagetable.VPN]uint32
	current     int
	activeGroup int

	// Worker state.
	history map[pagetable.VPN]uint64
	reacc   ReaccessStats

	intervals       int
	samples         uint64
	workerProcessed uint64
	sinceMini       uint64
	sinceInterval   uint64
}

// New attaches a profiler to an address space. The store is used only for
// optional physical translation sanity (the worker consults the page
// table, its /proc/$PID/pagemap).
func New(cfg Config, as *pagetable.AddressSpace, store *mem.Store, rng *xrand.RNG) *Chameleon {
	c := &Chameleon{
		cfg:     cfg.withDefaults(),
		as:      as,
		store:   store,
		rng:     rng,
		history: make(map[pagetable.VPN]uint64),
	}
	c.tables[0] = make(map[pagetable.VPN]uint32)
	c.tables[1] = make(map[pagetable.VPN]uint32)
	return c
}

// Samples returns how many access events the collector has recorded.
func (c *Chameleon) Samples() uint64 { return c.samples }

// Intervals returns how many worker intervals have completed.
func (c *Chameleon) Intervals() int { return c.intervals }

// OnAccess feeds one memory-access event (the PEBS stream). The collector
// applies the sampling rate and core-group duty cycle.
func (c *Chameleon) OnAccess(v pagetable.VPN) {
	// The event fires on a uniformly random core; only cores in the
	// active duty-cycle group are sampling.
	core := c.rng.Intn(c.cfg.Cores)
	if core*c.cfg.CoreGroups/c.cfg.Cores != c.activeGroup {
		return
	}
	// 1-in-SampleRate PEBS counter overflow.
	if c.rng.Intn(c.cfg.SampleRate) != 0 {
		return
	}
	c.tables[c.current][v]++
	c.samples++
}

// Tick advances the profiler clock: rotates the duty-cycle group every
// mini-interval and runs the Worker every interval.
func (c *Chameleon) Tick() {
	c.sinceMini++
	if c.sinceMini >= c.cfg.MiniIntervalTicks {
		c.sinceMini = 0
		c.activeGroup = (c.activeGroup + 1) % c.cfg.CoreGroups
	}
	c.sinceInterval++
	if c.sinceInterval >= c.cfg.IntervalTicks {
		c.sinceInterval = 0
		c.runWorker()
	}
}

// runWorker swaps the hash tables and folds the finished interval into
// the per-page history bitmaps (§3's Worker).
func (c *Chameleon) runWorker() {
	done := c.tables[c.current]
	c.current = 1 - c.current
	// Left-shift every page's history one interval.
	for v := range c.history {
		c.history[v] <<= 1
	}
	for v := range done {
		if c.cfg.PhysicalTranslation {
			// /proc/$PID/pagemap lookup; pages unmapped since sampling
			// are skipped, as in the real tool.
			if _, ok := c.as.Translate(v); !ok {
				delete(done, v)
				continue
			}
		}
		h := c.history[v]
		// Re-access bookkeeping: how long had the page been cold?
		switch {
		case h == 0:
			c.reacc.FirstTouch++
		case h&0b10 != 0:
			c.reacc.Within1++ // hot in the immediately preceding interval
		default:
			// After the shift, bit k set means "hot k intervals ago", so
			// the cold gap is the trailing-zero count.
			gap := bits.TrailingZeros64(h)
			switch {
			case gap <= 2:
				c.reacc.Within2++
			case gap <= 5:
				c.reacc.Within5++
			case gap <= 10:
				c.reacc.Within10++
			default:
				c.reacc.Beyond++
			}
		}
		c.history[v] = h | 1
		c.workerProcessed++
	}
	// Clear the processed table for reuse.
	for v := range done {
		delete(done, v)
	}
	c.intervals++
}

// TempStats is a page-temperature breakdown in pages: how much of the
// allocated memory was accessed within the last 1/2/5/10 intervals
// (minutes), and how much is colder than that (Fig. 7's buckets).
type TempStats struct {
	Allocated uint64
	Hot1      uint64
	Hot2      uint64
	Hot5      uint64
	Hot10     uint64
	Cold      uint64 // allocated but not hot within 10 intervals
}

// Fraction returns n/Allocated, or 0 for an empty region.
func (t TempStats) Fraction(n uint64) float64 {
	if t.Allocated == 0 {
		return 0
	}
	return float64(n) / float64(t.Allocated)
}

// ReaccessStats is the Fig. 11 distribution: when a page becomes hot,
// how long had it been cold?
type ReaccessStats struct {
	FirstTouch uint64 // never sampled hot before (fresh allocations)
	Within1    uint64
	Within2    uint64
	Within5    uint64
	Within10   uint64
	Beyond     uint64
}

// Total returns the total number of hot transitions observed.
func (r ReaccessStats) Total() uint64 {
	return r.FirstTouch + r.Within1 + r.Within2 + r.Within5 + r.Within10 + r.Beyond
}

// Report is the profiler's output.
type Report struct {
	Workload  string
	Intervals int
	Samples   uint64
	PerType   map[mem.PageType]TempStats
	Overall   TempStats
	Reaccess  ReaccessStats
}

// Report builds the current heat map by joining the history bitmaps with
// the live address space.
func (c *Chameleon) Report(workloadName string) Report {
	rep := Report{
		Workload:  workloadName,
		Intervals: c.intervals,
		Samples:   c.samples,
		PerType:   make(map[mem.PageType]TempStats),
		Reaccess:  c.reacc,
	}
	window := func(h uint64, k int) bool { return h&((1<<uint(k))-1) != 0 }
	c.as.ForEachMapped(func(v pagetable.VPN, pfn mem.PFN) {
		r, ok := c.as.RegionOf(v)
		if !ok {
			return
		}
		ts := rep.PerType[r.Type]
		ts.Allocated++
		rep.Overall.Allocated++
		h := c.history[v]
		add := func(dst *TempStats) {
			switch {
			case window(h, 1):
				dst.Hot1++
			case window(h, 2):
				dst.Hot2++
			case window(h, 5):
				dst.Hot5++
			case window(h, 10):
				dst.Hot10++
			default:
				dst.Cold++
			}
		}
		add(&ts)
		add(&rep.Overall)
		rep.PerType[r.Type] = ts
	})
	return rep
}

// String renders the report as the §3 heat-map summary.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chameleon report: %s (%d intervals, %d samples)\n", r.Workload, r.Intervals, r.Samples)
	line := func(name string, t TempStats) {
		fmt.Fprintf(&b, "  %-8s alloc=%7d  hot1=%5.1f%%  hot2=%5.1f%%  hot5=%5.1f%%  hot10=%5.1f%%  cold=%5.1f%%\n",
			name, t.Allocated,
			100*t.Fraction(t.Hot1), 100*t.Fraction(t.Hot1+t.Hot2),
			100*t.Fraction(t.Hot1+t.Hot2+t.Hot5),
			100*t.Fraction(t.Hot1+t.Hot2+t.Hot5+t.Hot10),
			100*t.Fraction(t.Cold))
	}
	line("total", r.Overall)
	types := make([]int, 0, len(r.PerType))
	for t := range r.PerType {
		types = append(types, int(t))
	}
	sort.Ints(types)
	for _, t := range types {
		line(mem.PageType(t).String(), r.PerType[mem.PageType(t)])
	}
	if tot := r.Reaccess.Total(); tot > 0 {
		f := func(n uint64) float64 { return 100 * float64(n) / float64(tot) }
		fmt.Fprintf(&b, "  reaccess: first=%.1f%% <=1m=%.1f%% <=2m=%.1f%% <=5m=%.1f%% <=10m=%.1f%% beyond=%.1f%%\n",
			f(r.Reaccess.FirstTouch), f(r.Reaccess.Within1), f(r.Reaccess.Within2),
			f(r.Reaccess.Within5), f(r.Reaccess.Within10), f(r.Reaccess.Beyond))
	}
	return b.String()
}
