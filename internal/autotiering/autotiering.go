// Package autotiering implements the AutoTiering baseline (Kim, Choe, and
// Ahn, "Exploring the Design Space of Page Management for Multi-Tiered
// Memory Systems", USENIX ATC 2021) as the TPP paper characterizes it in
// §6.3 and §8:
//
//   - Background demotion ranks pages by access frequency (a per-epoch
//     access counter) and migrates the least-frequently-accessed pages to
//     the CXL node — "a faster reclamation mechanism" than default
//     reclaim, but driven by timers and counters rather than watermarked
//     kswapd, which "causes computation overhead and is often inefficient,
//     especially when pages are infrequently accessed".
//   - Promotion is optimized NUMA balancing (instant, no active-LRU
//     filter), but the allocation and reclamation paths stay tightly
//     coupled: a *fixed-size reserved buffer* on the local node is the
//     only headroom promotions can use. The buffer is replenished by
//     demotions; "this reserved buffer eventually fills up during a surge
//     in CXL-node page accesses", at which point promotion halts.
//   - On the 1:4 configuration the paper "can not setup AutoTiering …
//     it frequently crashes right after the warm up phase, when query
//     fires". We model that instability: when promotion pressure stays
//     unresolved (no free buffer slots, local node at its emergency
//     reserve) for several consecutive epochs, the run fails.
package autotiering

import (
	"sort"

	"tppsim/internal/lru"
	"tppsim/internal/mem"
	"tppsim/internal/migrate"
	"tppsim/internal/tier"
	"tppsim/internal/vmstat"
)

// Config tunes the AutoTiering baseline.
type Config struct {
	// EpochTicks is the access-frequency ranking period. Default 50
	// (5 simulated seconds at 100 ms ticks).
	EpochTicks uint64
	// BufferFraction sizes the reserved promotion buffer as a fraction of
	// the local node. Default 0.04.
	BufferFraction float64
	// DemoteBatch bounds pages demoted per epoch. Default 64 — the
	// frequency ranking needs a full epoch of counters per batch, which
	// is the "timer-based hot page detection … computation overhead" the
	// paper criticizes (§8).
	DemoteBatch int
	// CrashEpochs is how many consecutive starved epochs (promotion
	// demand with zero slots) the implementation survives on a
	// too-small local node before failing. Default 3.
	CrashEpochs int
	// MinLocalFraction is the smallest local-node share of total memory
	// the implementation tolerates: below it, sustained promotion
	// starvation crashes the run. The paper reports the crash at 1:4
	// (local = 20%) without a diagnosis, so the boundary is modeled as a
	// capacity assertion. Default 0.25.
	MinLocalFraction float64
}

func (c Config) withDefaults() Config {
	if c.EpochTicks == 0 {
		c.EpochTicks = 50
	}
	if c.BufferFraction == 0 {
		c.BufferFraction = 0.04
	}
	if c.DemoteBatch == 0 {
		c.DemoteBatch = 64
	}
	if c.CrashEpochs == 0 {
		c.CrashEpochs = 3
	}
	if c.MinLocalFraction == 0 {
		c.MinLocalFraction = 0.25
	}
	return c
}

// Tiering is the AutoTiering daemon.
type Tiering struct {
	cfg    Config
	store  *mem.Store
	topo   *tier.Topology
	vecs   []*lru.Vec
	stat   *vmstat.Stat
	engine *migrate.Engine

	bufferSlots    int // free promotion-buffer slots
	bufferCapacity int
	sinceEpoch     uint64
	starvedEpochs  int
	starvedNow     bool
	failed         bool
}

// New wires the baseline over a machine. The promotion buffer is a slot
// budget backed by headroom the epoch demotion pass tries to maintain on
// the local node (free >= high watermark + buffer); slots are consumed by
// promotions and replenished one-for-one by demotions.
func New(cfg Config, store *mem.Store, topo *tier.Topology, vecs []*lru.Vec,
	stat *vmstat.Stat, engine *migrate.Engine) *Tiering {
	t := &Tiering{
		cfg:    cfg.withDefaults(),
		store:  store,
		topo:   topo,
		vecs:   vecs,
		stat:   stat,
		engine: engine,
	}
	local := topo.Node(0)
	t.bufferCapacity = int(float64(local.Capacity) * t.cfg.BufferFraction)
	t.bufferSlots = t.bufferCapacity
	return t
}

// Failed reports whether the implementation has crashed (the paper's 1:4
// behaviour). Once failed, the simulator aborts the run.
func (t *Tiering) Failed() bool { return t.failed }

// BufferSlots returns the free promotion-buffer slots (for tests and
// observability).
func (t *Tiering) BufferSlots() int { return t.bufferSlots }

// PromotionGate is plugged into numab.Config.PromotionGate: promotions
// may proceed only while buffer slots remain.
func (t *Tiering) PromotionGate() bool {
	if t.bufferSlots > 0 {
		return true
	}
	t.starvedNow = true
	return false
}

// OnPromoted consumes a buffer slot (numab.Config.OnPromoted).
func (t *Tiering) OnPromoted() {
	if t.bufferSlots > 0 {
		t.bufferSlots--
	}
}

// RecordAccess bumps the page's epoch frequency counter; the simulator
// calls this for every sampled access.
func (t *Tiering) RecordAccess(pfn mem.PFN) {
	pg := t.store.Page(pfn)
	if pg.AccessEpoch < ^uint32(0) {
		pg.AccessEpoch++
	}
}

// Tick advances the epoch clock. On epoch boundaries it runs the
// frequency-ranked demotion pass, replenishes buffer slots, updates the
// crash heuristic, and resets counters. Returns background CPU ns.
func (t *Tiering) Tick() float64 {
	if t.failed {
		return 0
	}
	t.sinceEpoch++
	if t.sinceEpoch < t.cfg.EpochTicks {
		return 0
	}
	t.sinceEpoch = 0
	spent := t.epoch()

	// Crash heuristic: an epoch during which promotions were refused for
	// lack of buffer slots is "starved". On a local node below the
	// implementation's tolerated share of total memory, several starved
	// epochs in a row crash it (the paper's 1:4 failure).
	localShare := float64(t.topo.Node(0).Capacity) / float64(t.topo.TotalCapacity())
	if t.starvedNow && localShare < t.cfg.MinLocalFraction {
		t.starvedEpochs++
		if t.starvedEpochs >= t.cfg.CrashEpochs {
			t.failed = true
		}
	} else {
		t.starvedEpochs = 0
	}
	t.starvedNow = false
	return spent
}

// epoch performs the frequency-ranked demotion pass on the local node.
func (t *Tiering) epoch() float64 {
	const rankNsPerPage = 120 // counter scan cost: the paper's "computation overhead"
	local := t.topo.Node(0)
	demoteTo := t.topo.DemotionTarget(local.ID)
	spent := 0.0

	// Collect candidate pages (both LRU classes, both lists) with their
	// frequencies. AutoTiering scans everything — that is its overhead.
	type cand struct {
		pfn  mem.PFN
		freq uint32
	}
	var cands []cand
	var pfns []mem.PFN
	vec := t.vecs[local.ID]
	for id := lru.ListID(0); id < lru.ListID(lru.NumLists); id++ {
		pfns = vec.TailBatch(id, int(vec.Size(id)), pfns[:0])
		for _, pfn := range pfns {
			cands = append(cands, cand{pfn, t.store.Page(pfn).AccessEpoch})
		}
	}
	spent += float64(len(cands)) * rankNsPerPage

	// Demote the coldest pages while the node is under pressure.
	if demoteTo != mem.NilNode && local.Free() < local.WM.High+uint64(t.bufferCapacity) {
		sort.Slice(cands, func(i, j int) bool { return cands[i].freq < cands[j].freq })
		demoted := 0
		for _, c := range cands {
			if demoted >= t.cfg.DemoteBatch {
				break
			}
			if local.Free() >= local.WM.High+uint64(t.bufferCapacity) {
				break
			}
			if c.freq > 0 {
				// Only demote cold (zero-frequency) pages; warm pages stay.
				break
			}
			cost, err := t.engine.Migrate(c.pfn, demoteTo, migrate.Demotion)
			if err != nil {
				continue
			}
			spent += cost
			demoted++
			t.stat.Inc(vmstat.PgdemoteKswapd)
			// A demotion replenishes one promotion-buffer slot.
			if t.bufferSlots < t.bufferCapacity {
				t.bufferSlots++
			}
		}
	}

	// Reset the epoch counters.
	for _, c := range cands {
		t.store.Page(c.pfn).AccessEpoch = 0
	}
	return spent
}
