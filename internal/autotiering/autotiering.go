// Package autotiering implements the AutoTiering baseline (Kim, Choe, and
// Ahn, "Exploring the Design Space of Page Management for Multi-Tiered
// Memory Systems", USENIX ATC 2021) as the TPP paper characterizes it in
// §6.3 and §8:
//
//   - Background demotion ranks pages by access frequency (a per-epoch
//     access counter) and migrates the least-frequently-accessed pages to
//     the CXL node — "a faster reclamation mechanism" than default
//     reclaim, but driven by timers and counters rather than watermarked
//     kswapd, which "causes computation overhead and is often inefficient,
//     especially when pages are infrequently accessed".
//   - Promotion is optimized NUMA balancing (instant, no active-LRU
//     filter), but the allocation and reclamation paths stay tightly
//     coupled: a *fixed-size reserved buffer* on the local node is the
//     only headroom promotions can use. The buffer is replenished by
//     demotions; "this reserved buffer eventually fills up during a surge
//     in CXL-node page accesses", at which point promotion halts.
//   - On the 1:4 configuration the paper "can not setup AutoTiering …
//     it frequently crashes right after the warm up phase, when query
//     fires". We model that instability: when promotion pressure stays
//     unresolved (no free buffer slots, local node at its emergency
//     reserve) for several consecutive epochs, the run fails.
//
// The daemon is topology-aware: every CPU-attached node runs its own
// frequency-ranked demotion pass down its distance-ordered cascade
// (tier.Topology.DemotionTargets) and carries its own reserved promotion
// buffer, so the baseline runs unchanged on the paper's 2-node box, the
// dual-socket machine (each socket demotes to its near expander), and
// the multi-hop expander chain.
package autotiering

import (
	"sort"

	"tppsim/internal/lru"
	"tppsim/internal/mem"
	"tppsim/internal/migrate"
	"tppsim/internal/tier"
	"tppsim/internal/vmstat"
)

// Config tunes the AutoTiering baseline.
type Config struct {
	// EpochTicks is the access-frequency ranking period. Default 50
	// (5 simulated seconds at 100 ms ticks).
	EpochTicks uint64
	// BufferFraction sizes each CPU node's reserved promotion buffer as
	// a fraction of that node. Default 0.04.
	BufferFraction float64
	// DemoteBatch bounds pages demoted per CPU node per epoch. Default
	// 64 — the frequency ranking needs a full epoch of counters per
	// batch, which is the "timer-based hot page detection … computation
	// overhead" the paper criticizes (§8).
	DemoteBatch int
	// CrashEpochs is how many consecutive starved epochs (promotion
	// demand with zero slots) the implementation survives on a
	// too-small socket before failing. Default 3.
	CrashEpochs int
	// MinLocalFraction is the smallest per-socket share of total memory
	// the implementation tolerates: a socket below it that stays
	// promotion-starved for CrashEpochs consecutive epochs crashes the
	// run. The heuristic is per-socket — a starved socket counts
	// against its own capacity share, not the machine-wide CPU-tier
	// aggregate, so a memory-poor socket on an otherwise roomy
	// dual-socket machine still reproduces the instability (on
	// single-socket machines the two formulations coincide). The paper
	// reports the crash at 1:4 (local = 20%) without a diagnosis, so
	// the boundary is modeled as a capacity assertion. Default 0.25.
	MinLocalFraction float64
}

func (c Config) withDefaults() Config {
	if c.EpochTicks == 0 {
		c.EpochTicks = 50
	}
	if c.BufferFraction == 0 {
		c.BufferFraction = 0.04
	}
	if c.DemoteBatch == 0 {
		c.DemoteBatch = 64
	}
	if c.CrashEpochs == 0 {
		c.CrashEpochs = 3
	}
	if c.MinLocalFraction == 0 {
		c.MinLocalFraction = 0.25
	}
	return c
}

// socket is the per-CPU-node state: that node's reserved promotion
// buffer and its demotion cascade from the distance matrix.
type socket struct {
	node           mem.NodeID
	bufferSlots    int
	bufferCapacity int
	demoteTo       []mem.NodeID

	// Crash-heuristic state, per socket: starved marks a promotion
	// refused for lack of slots since the last epoch; starvedEpochs
	// counts consecutive starved epochs on this socket.
	starved       bool
	starvedEpochs int
}

// Tiering is the AutoTiering daemon.
type Tiering struct {
	cfg    Config
	store  *mem.Store
	topo   *tier.Topology
	vecs   []*lru.Vec
	stat   *vmstat.NodeStats
	engine *migrate.Engine

	// sockets holds one entry per CPU-attached node, in node-ID order;
	// socketOf maps a node ID to its index (-1 for CPU-less nodes).
	sockets  []socket
	socketOf []int

	sinceEpoch uint64
	failed     bool

	// epoch-pass scratch, reused across epochs.
	cands []cand
	pfns  []mem.PFN
}

type cand struct {
	pfn  mem.PFN
	freq uint32
}

// New wires the baseline over a machine. Every CPU-attached node gets a
// promotion buffer — a slot budget backed by headroom the epoch demotion
// pass tries to maintain on that node (free >= high watermark + buffer);
// slots are consumed by promotions into the node and replenished
// one-for-one by demotions off it. Demotion targets come from the
// topology's distance-ordered cascade, not a hardwired nearest-CXL
// assumption, so the daemon runs on any tier.Spec.
func New(cfg Config, store *mem.Store, topo *tier.Topology, vecs []*lru.Vec,
	stat *vmstat.NodeStats, engine *migrate.Engine) *Tiering {
	t := &Tiering{
		cfg:      cfg.withDefaults(),
		store:    store,
		topo:     topo,
		vecs:     vecs,
		stat:     stat,
		engine:   engine,
		socketOf: make([]int, topo.NumNodes()),
	}
	for i := range t.socketOf {
		t.socketOf[i] = -1
	}
	for _, id := range topo.LocalNodes() {
		n := topo.Node(id)
		capSlots := int(float64(n.Capacity) * t.cfg.BufferFraction)
		t.socketOf[id] = len(t.sockets)
		t.sockets = append(t.sockets, socket{
			node:           id,
			bufferSlots:    capSlots,
			bufferCapacity: capSlots,
			demoteTo:       topo.DemotionTargets(id),
		})
	}
	return t
}

// Failed reports whether the implementation has crashed (the paper's 1:4
// behaviour). Once failed, the simulator aborts the run.
func (t *Tiering) Failed() bool { return t.failed }

// BufferSlots returns the free promotion-buffer slots summed over every
// CPU node (for tests and observability).
func (t *Tiering) BufferSlots() int {
	total := 0
	for i := range t.sockets {
		total += t.sockets[i].bufferSlots
	}
	return total
}

// NodeBufferSlots returns the free promotion-buffer slots of one CPU
// node (0 for CPU-less nodes).
func (t *Tiering) NodeBufferSlots(id mem.NodeID) int {
	if i := t.socketOf[id]; i >= 0 {
		return t.sockets[i].bufferSlots
	}
	return 0
}

// PromotionGate is plugged into numab.Config.PromotionGate: a promotion
// into a CPU node may proceed only while that node's buffer has slots.
// Promotions between CPU-less tiers (multi-hop climbs that have not
// reached the CPU tier yet) are not buffer-constrained.
func (t *Tiering) PromotionGate(target mem.NodeID) bool {
	i := t.socketOf[target]
	if i < 0 {
		return true
	}
	if t.sockets[i].bufferSlots > 0 {
		return true
	}
	t.sockets[i].starved = true
	return false
}

// OnPromoted consumes a buffer slot on the target CPU node
// (numab.Config.OnPromoted).
func (t *Tiering) OnPromoted(target mem.NodeID) {
	if i := t.socketOf[target]; i >= 0 && t.sockets[i].bufferSlots > 0 {
		t.sockets[i].bufferSlots--
	}
}

// RecordAccess bumps the page's epoch frequency counter; the simulator
// calls this for every sampled access.
func (t *Tiering) RecordAccess(pfn mem.PFN) {
	pg := t.store.Page(pfn)
	if pg.AccessEpoch < ^uint32(0) {
		pg.AccessEpoch++
	}
}

// Tick advances the epoch clock. On epoch boundaries it runs the
// frequency-ranked demotion pass on every CPU node, replenishes buffer
// slots, updates the crash heuristic, and resets counters. Returns
// background CPU ns.
func (t *Tiering) Tick() float64 {
	if t.failed {
		return 0
	}
	t.sinceEpoch++
	if t.sinceEpoch < t.cfg.EpochTicks {
		return 0
	}
	t.sinceEpoch = 0
	spent := 0.0
	for i := range t.sockets {
		spent += t.epoch(&t.sockets[i])
	}

	// Crash heuristic, per socket: an epoch during which promotions into
	// a socket were refused for lack of buffer slots is "starved" for
	// that socket. A socket whose own capacity share of the machine is
	// below the tolerated fraction crashes the run after several starved
	// epochs in a row (the paper's 1:4 failure) — a starved socket
	// counts against its own share, so one memory-poor socket fails the
	// implementation even when the machine-wide CPU tier is roomy. On
	// single-socket machines this is exactly the aggregate heuristic.
	total := float64(t.topo.TotalCapacity())
	for i := range t.sockets {
		s := &t.sockets[i]
		share := float64(t.topo.Node(s.node).Capacity) / total
		if s.starved && share < t.cfg.MinLocalFraction {
			s.starvedEpochs++
			if s.starvedEpochs >= t.cfg.CrashEpochs {
				t.failed = true
			}
		} else {
			s.starvedEpochs = 0
		}
		s.starved = false
	}
	return spent
}

// epoch performs the frequency-ranked demotion pass on one CPU node.
func (t *Tiering) epoch(s *socket) float64 {
	const rankNsPerPage = 120 // counter scan cost: the paper's "computation overhead"
	local := t.topo.Node(s.node)
	spent := 0.0

	// Collect candidate pages (both LRU classes, both lists) with their
	// frequencies. AutoTiering scans everything — that is its overhead.
	t.cands = t.cands[:0]
	vec := t.vecs[s.node]
	for id := lru.ListID(0); id < lru.ListID(lru.NumLists); id++ {
		t.pfns = vec.TailBatch(id, int(vec.Size(id)), t.pfns[:0])
		for _, pfn := range t.pfns {
			t.cands = append(t.cands, cand{pfn, t.store.Page(pfn).AccessEpoch})
		}
	}
	spent += float64(len(t.cands)) * rankNsPerPage

	// Demote the coldest pages down the node's cascade while the node is
	// under pressure. Only a full target advances the cascade —
	// page-transient failures skip to the next candidate, as in reclaim.
	if len(s.demoteTo) > 0 && local.Free() < local.WM.High+uint64(s.bufferCapacity) {
		cands := t.cands
		sort.Slice(cands, func(i, j int) bool { return cands[i].freq < cands[j].freq })
		demoted := 0
		for _, c := range cands {
			if demoted >= t.cfg.DemoteBatch {
				break
			}
			if local.Free() >= local.WM.High+uint64(s.bufferCapacity) {
				break
			}
			if c.freq > 0 {
				// Only demote cold (zero-frequency) pages; warm pages stay.
				break
			}
			ok := false
			for _, dst := range s.demoteTo {
				cost, err := t.engine.Migrate(c.pfn, dst, migrate.Demotion)
				if err == nil {
					spent += cost
					ok = true
				}
				if err != migrate.ErrTargetFull {
					break
				}
			}
			if !ok {
				continue
			}
			demoted++
			t.stat.Inc(s.node, vmstat.PgdemoteKswapd)
			// A demotion replenishes one promotion-buffer slot.
			if s.bufferSlots < s.bufferCapacity {
				s.bufferSlots++
			}
		}
	}

	// Reset the epoch counters.
	for _, c := range t.cands {
		t.store.Page(c.pfn).AccessEpoch = 0
	}
	return spent
}
