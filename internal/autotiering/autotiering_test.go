package autotiering

import (
	"testing"

	"tppsim/internal/lru"
	"tppsim/internal/mem"
	"tppsim/internal/migrate"
	"tppsim/internal/tier"
	"tppsim/internal/vmstat"
	"tppsim/internal/xrand"
)

type fixture struct {
	store *mem.Store
	topo  *tier.Topology
	vecs  []*lru.Vec
	stat  *vmstat.NodeStats
	at    *Tiering
}

func newFixture(t *testing.T, cfg Config, localPages, cxlPages uint64) *fixture {
	t.Helper()
	topo, err := tier.NewCXLSystem(tier.Config{LocalPages: localPages, CXLPages: cxlPages})
	if err != nil {
		t.Fatal(err)
	}
	return fixtureOver(cfg, topo)
}

// newFixtureSpec assembles a fixture over an arbitrary topology spec
// with absolute per-node page counts.
func newFixtureSpec(t *testing.T, cfg Config, spec tier.Spec) *fixture {
	t.Helper()
	topo, err := spec.Build(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	return fixtureOver(cfg, topo)
}

func fixtureOver(cfg Config, topo *tier.Topology) *fixture {
	store := mem.NewStore(int(topo.TotalCapacity()))
	vecs := make([]*lru.Vec, topo.NumNodes())
	for i := range vecs {
		vecs[i] = lru.NewVec(store)
	}
	stat := vmstat.NewNodeStats(topo.NumNodes())
	eng := migrate.NewEngine(migrate.Config{RefsFailProb: -1}, store, topo, vecs, stat, xrand.New(1))
	at := New(cfg, store, topo, vecs, stat, eng)
	return &fixture{store, topo, vecs, stat, at}
}

func (f *fixture) populate(t *testing.T, id mem.NodeID, n int) []mem.PFN {
	t.Helper()
	pfns := make([]mem.PFN, n)
	for i := 0; i < n; i++ {
		if !f.topo.Node(id).Acquire(mem.Anon) {
			t.Fatal("fixture node full")
		}
		pfn := f.store.Alloc(mem.Anon, id)
		f.vecs[id].Add(pfn, false)
		pfns[i] = pfn
	}
	return pfns
}

func (f *fixture) runEpochs(n int) {
	for e := 0; e < n; e++ {
		for i := uint64(0); i < f.at.cfg.EpochTicks; i++ {
			f.at.Tick()
		}
	}
}

func TestDemotesColdestByFrequency(t *testing.T) {
	f := newFixture(t, Config{}, 1000, 1000)
	local := f.topo.Node(0)
	pfns := f.populate(t, 0, int(local.Capacity)-10) // under pressure vs high+buffer
	// Make the first half "hot" this epoch.
	for _, pfn := range pfns[:len(pfns)/2] {
		f.at.RecordAccess(pfn)
	}
	f.runEpochs(1)
	if f.stat.Get(vmstat.PgdemoteKswapd) == 0 {
		t.Fatal("nothing demoted")
	}
	// Every demoted page must be from the cold half.
	for _, pfn := range pfns[:len(pfns)/2] {
		if f.store.Page(pfn).Node != 0 {
			t.Fatal("hot page demoted")
		}
	}
}

func TestEpochResetsCounters(t *testing.T) {
	f := newFixture(t, Config{}, 100, 100)
	pfns := f.populate(t, 0, 10)
	f.at.RecordAccess(pfns[0])
	f.at.RecordAccess(pfns[0])
	if f.store.Page(pfns[0]).AccessEpoch != 2 {
		t.Fatal("RecordAccess did not count")
	}
	f.runEpochs(1)
	if f.store.Page(pfns[0]).AccessEpoch != 0 {
		t.Fatal("epoch did not reset counters")
	}
}

func TestNoDemotionWithoutPressure(t *testing.T) {
	f := newFixture(t, Config{}, 1000, 1000)
	f.populate(t, 0, 100) // far above high+buffer
	f.runEpochs(1)
	if f.stat.Get(vmstat.PgdemoteKswapd) != 0 {
		t.Fatal("demoted without pressure")
	}
}

func TestPromotionBufferSlots(t *testing.T) {
	f := newFixture(t, Config{BufferFraction: 0.02}, 100, 100)
	if f.at.BufferSlots() != 2 {
		t.Fatalf("buffer slots = %d, want 2", f.at.BufferSlots())
	}
	if !f.at.PromotionGate(0) {
		t.Fatal("gate closed with slots free")
	}
	f.at.OnPromoted(0)
	f.at.OnPromoted(0)
	if f.at.BufferSlots() != 0 {
		t.Fatal("slots not consumed")
	}
	if f.at.PromotionGate(0) {
		t.Fatal("gate open with no slots")
	}
}

func TestDemotionReplenishesSlots(t *testing.T) {
	f := newFixture(t, Config{BufferFraction: 0.02}, 1000, 1000)
	local := f.topo.Node(0)
	f.populate(t, 0, int(local.Capacity)-5)
	// Drain the buffer.
	for f.at.BufferSlots() > 0 {
		f.at.OnPromoted(0)
	}
	f.runEpochs(1)
	if f.at.BufferSlots() == 0 {
		t.Fatal("demotion did not replenish slots")
	}
}

func TestCrashOnSmallLocalNode(t *testing.T) {
	// 1:4 machine: the local node is 20% of total, below the tolerated
	// fraction; sustained promotion starvation must crash the run.
	f := newFixture(t, Config{CrashEpochs: 3, BufferFraction: 0.02}, 1000, 4000)
	pfns := f.populate(t, 0, 500)
	for f.at.BufferSlots() > 0 {
		f.at.OnPromoted(0)
	}
	for e := 0; e < 5; e++ {
		for _, pfn := range pfns {
			f.at.RecordAccess(pfn) // hot: demotion finds no candidates
		}
		// Starved promotion demand each epoch.
		f.at.PromotionGate(0)
		f.runEpochs(1)
		if f.at.Failed() {
			break
		}
	}
	if !f.at.Failed() {
		t.Fatal("sustained starvation on a 1:4 machine did not crash AutoTiering")
	}
	// After failure the daemon is inert.
	if f.at.Tick() != 0 {
		t.Fatal("failed daemon still running")
	}
}

func TestNoCrashOnLargeLocalNode(t *testing.T) {
	// 2:1 machine: same starvation pattern, but the local node share is
	// above the tolerated fraction — promotion just halts, no crash.
	f := newFixture(t, Config{CrashEpochs: 3, BufferFraction: 0.02}, 1000, 500)
	pfns := f.populate(t, 0, 500)
	for f.at.BufferSlots() > 0 {
		f.at.OnPromoted(0)
	}
	for e := 0; e < 6; e++ {
		for _, pfn := range pfns {
			f.at.RecordAccess(pfn)
		}
		f.at.PromotionGate(0)
		f.runEpochs(1)
	}
	if f.at.Failed() {
		t.Fatal("AutoTiering crashed on a 2:1 machine")
	}
}

func TestStarvationRecoveryResetsCounter(t *testing.T) {
	f := newFixture(t, Config{CrashEpochs: 2, BufferFraction: 0.02}, 1000, 4000)
	f.populate(t, 0, 500)
	for f.at.BufferSlots() > 0 {
		f.at.OnPromoted(0)
	}
	// One starved epoch, then a quiet epoch: counter must reset.
	f.at.PromotionGate(0)
	f.runEpochs(1)
	f.runEpochs(1) // no starvation this epoch
	f.at.PromotionGate(0)
	f.runEpochs(1)
	if f.at.Failed() {
		t.Fatal("non-consecutive starvation crashed AutoTiering")
	}
}

// asymDualSpec is a dual-socket machine with one memory-poor socket:
// socket 1 holds 10% of total memory (below the tolerated 25%), while
// the CPU tier in aggregate holds 50% (well above it). Only a
// per-socket crash heuristic distinguishes the two.
func asymDualSpec() tier.Spec {
	return tier.Spec{
		Name: "dualsocket-asym-test",
		Nodes: []tier.NodeSpec{
			{Kind: mem.KindLocal, Pages: 4000},
			{Kind: mem.KindLocal, Pages: 1000},
			{Kind: mem.KindCXL, Pages: 2500},
			{Kind: mem.KindCXL, Pages: 2500},
		},
		Distance: [][]int{
			{10, 32, 20, 42},
			{32, 10, 42, 20},
			{20, 42, 10, 52},
			{42, 20, 52, 10},
		},
	}
}

// drainSocket consumes every promotion-buffer slot of one CPU node.
func (f *fixture) drainSocket(id mem.NodeID) {
	for f.at.NodeBufferSlots(id) > 0 {
		f.at.OnPromoted(id)
	}
}

// TestPerSocketCrashOnStarvedSmallSocket pins the per-socket crash
// heuristic on the dual-socket machine: sustained promotion starvation
// on the memory-poor socket (10% of total) crashes the run even though
// the machine-wide CPU tier holds 50% — under the old aggregate
// heuristic this configuration could never fail.
func TestPerSocketCrashOnStarvedSmallSocket(t *testing.T) {
	f := newFixtureSpec(t, Config{CrashEpochs: 3, BufferFraction: 0.001}, asymDualSpec())
	f.drainSocket(1)
	for e := 0; e < 5 && !f.at.Failed(); e++ {
		f.at.PromotionGate(1) // starved promotion demand into socket 1
		f.runEpochs(1)
	}
	if !f.at.Failed() {
		t.Fatal("sustained starvation on the small (10 pct share) socket did not crash AutoTiering")
	}
}

// TestNoPerSocketCrashOnLargeSocket is the other half of the pin: the
// same starvation pattern against the large socket (40% of total, above
// the tolerated share) must never crash — each socket is judged by its
// own share.
func TestNoPerSocketCrashOnLargeSocket(t *testing.T) {
	f := newFixtureSpec(t, Config{CrashEpochs: 3, BufferFraction: 0.001}, asymDualSpec())
	f.drainSocket(0)
	for e := 0; e < 6; e++ {
		f.at.PromotionGate(0)
		f.runEpochs(1)
	}
	if f.at.Failed() {
		t.Fatal("starvation on the large (40 pct share) socket crashed AutoTiering")
	}
}

// TestPerSocketStarvationRecovery: a quiet epoch on the small socket
// resets its counter, exactly like the single-socket heuristic.
func TestPerSocketStarvationRecovery(t *testing.T) {
	f := newFixtureSpec(t, Config{CrashEpochs: 2, BufferFraction: 0.001}, asymDualSpec())
	f.drainSocket(1)
	f.at.PromotionGate(1)
	f.runEpochs(1)
	f.runEpochs(1) // no starvation this epoch
	f.at.PromotionGate(1)
	f.runEpochs(1)
	if f.at.Failed() {
		t.Fatal("non-consecutive starvation crashed AutoTiering")
	}
}

func TestRankingCostReported(t *testing.T) {
	f := newFixture(t, Config{}, 1000, 1000)
	f.populate(t, 0, 500)
	var spent float64
	for i := uint64(0); i < f.at.cfg.EpochTicks; i++ {
		spent += f.at.Tick()
	}
	if spent <= 0 {
		t.Fatal("epoch ranking reported no CPU cost")
	}
}
