// Package vmstat implements the /proc/vmstat-style observability counters
// that TPP introduces (§5.5 of the paper): demotion and promotion event
// counts broken down by page type, promotion-failure reasons, NUMA hint
// fault counts, and the PG_demoted ping-pong tracker.
//
// Counters are identified by a dense Counter enum and stored in a flat
// array, so the hot-path increment is a single indexed add — no hashing,
// no allocation. String names exist only at the reporting/serialization
// edge (Counter.String, Snapshot.String). The simulator is
// single-goroutine per machine, so no atomics are needed. Snapshots are
// plain array values: copying, diffing, and comparing them never touches
// the heap.
package vmstat

import (
	"fmt"
	"sort"
	"strings"
)

// Counter names every event the simulator tracks. The names follow the
// kernel's vmstat vocabulary where one exists (pgdemote_*, pgpromote_*,
// numa_hint_faults) and extend it for simulator-specific events.
type Counter uint8

const (
	// Demotion path (§5.1, §5.5).
	PgdemoteKswapd  Counter = iota // pages demoted by background reclaim
	PgdemoteDirect                 // pages demoted in direct reclaim
	PgdemoteAnon                   // demoted pages that were anon
	PgdemoteFile                   // demoted pages that were file-backed
	PgdemoteFail                   // demotion migrations that failed
	PgdemoteFallbck                // failed demotions that fell back to swap/drop

	// Promotion path (§5.3, §5.5).
	PgpromoteSampled   // hint-faulted pages considered
	PgpromoteCandidate // pages that passed the promotion filter
	PgpromoteSuccess   // pages actually migrated up
	PgpromoteAnon      // promoted pages that were anon
	PgpromoteFile      // promoted pages that were file-backed
	PgpromoteDemoted   // promoted pages with PG_demoted set (ping-pong)

	// Promotion failure reasons (§5.5 "counters for each of the promotion
	// failure scenario").
	PromoteFailLowMem  // local node below min watermark
	PromoteFailRefs    // abnormal page references
	PromoteFailGlobal  // system-wide low memory
	PromoteFailIsolate // could not isolate from LRU

	// NUMA Balancing (§5.3).
	NumaHintFaults
	NumaHintFaultsLocal
	NumaPagesScanned

	// Reclaim and swap.
	PgscanKswapd
	PgscanDirect
	PgstealKswapd
	PgstealDirect
	PgactivateCt
	PgdeactivateCt
	PswpOut
	PswpIn
	PgmajFault
	PgRotated // referenced pages given a second chance

	// Allocation.
	PgallocLocal
	PgallocCXL
	PgallocStall // direct-reclaim stalls on the alloc path
	PgfreeCt

	// Migration engine.
	PgmigrateSuccess
	PgmigrateFail

	// Multi-tier cascade (simulator extension): demotions landing in a
	// far tier (tier rank >= 2) and promotions leaving one. Zero on the
	// paper's 2-node machine.
	PgdemoteFar
	PgpromoteFar

	numCounters
)

// NumCounters is the number of distinct counters.
const NumCounters = int(numCounters)

// names maps Counter values to their /proc/vmstat-style names. Used only
// at the reporting edge.
var names = [NumCounters]string{
	PgdemoteKswapd:  "pgdemote_kswapd",
	PgdemoteDirect:  "pgdemote_direct",
	PgdemoteAnon:    "pgdemote_anon",
	PgdemoteFile:    "pgdemote_file",
	PgdemoteFail:    "pgdemote_fail",
	PgdemoteFallbck: "pgdemote_fallback",

	PgpromoteSampled:   "pgpromote_sampled",
	PgpromoteCandidate: "pgpromote_candidate",
	PgpromoteSuccess:   "pgpromote_success",
	PgpromoteAnon:      "pgpromote_anon",
	PgpromoteFile:      "pgpromote_file",
	PgpromoteDemoted:   "pgpromote_demoted",

	PromoteFailLowMem:  "promote_fail_low_memory",
	PromoteFailRefs:    "promote_fail_page_refs",
	PromoteFailGlobal:  "promote_fail_system_memory",
	PromoteFailIsolate: "promote_fail_isolate",

	NumaHintFaults:      "numa_hint_faults",
	NumaHintFaultsLocal: "numa_hint_faults_local",
	NumaPagesScanned:    "numa_pages_scanned",

	PgscanKswapd:   "pgscan_kswapd",
	PgscanDirect:   "pgscan_direct",
	PgstealKswapd:  "pgsteal_kswapd",
	PgstealDirect:  "pgsteal_direct",
	PgactivateCt:   "pgactivate",
	PgdeactivateCt: "pgdeactivate",
	PswpOut:        "pswpout",
	PswpIn:         "pswpin",
	PgmajFault:     "pgmajfault",
	PgRotated:      "pgrotated",

	PgallocLocal: "pgalloc_local",
	PgallocCXL:   "pgalloc_cxl",
	PgallocStall: "allocstall",
	PgfreeCt:     "pgfree",

	PgmigrateSuccess: "pgmigrate_success",
	PgmigrateFail:    "pgmigrate_fail",

	PgdemoteFar:  "pgdemote_far",
	PgpromoteFar: "pgpromote_far",
}

// String returns the counter's /proc/vmstat-style name.
func (c Counter) String() string {
	if int(c) < NumCounters {
		return names[c]
	}
	return fmt.Sprintf("counter(%d)", uint8(c))
}

// ByName resolves a counter name back to its enum value — the parsing
// edge for tools that read serialized snapshots.
func ByName(name string) (Counter, bool) {
	for c, n := range names {
		if n == name {
			return Counter(c), true
		}
	}
	return 0, false
}

// Counters returns every counter in enum order.
func Counters() []Counter {
	out := make([]Counter, NumCounters)
	for i := range out {
		out[i] = Counter(i)
	}
	return out
}

// Stat is a mutable counter registry: a flat array indexed by Counter.
type Stat struct {
	counts [NumCounters]uint64
}

// New returns an empty registry.
func New() *Stat {
	return &Stat{}
}

// Inc adds 1 to the counter.
func (s *Stat) Inc(c Counter) { s.counts[c]++ }

// Add adds delta to the counter.
func (s *Stat) Add(c Counter, delta uint64) { s.counts[c] += delta }

// Get returns the current value of the counter.
func (s *Stat) Get(c Counter) uint64 { return s.counts[c] }

// Snapshot returns an immutable copy of all counters. The copy is a plain
// array value: no heap allocation.
func (s *Stat) Snapshot() Snapshot { return s.counts }

// Reset zeroes every counter.
func (s *Stat) Reset() { s.counts = [NumCounters]uint64{} }

// Snapshot is a point-in-time copy of the registry, indexed by Counter.
type Snapshot [NumCounters]uint64

// Get returns the value of the counter.
func (sn Snapshot) Get(c Counter) uint64 { return sn[c] }

// Delta returns sn - prev per counter. Counters that decreased (which
// should never happen) clamp to zero rather than underflowing.
func (sn Snapshot) Delta(prev Snapshot) Snapshot {
	var out Snapshot
	for i, v := range sn {
		if p := prev[i]; v >= p {
			out[i] = v - p
		}
	}
	return out
}

// String renders the snapshot in /proc/vmstat style: "name value" lines,
// sorted by name, only non-zero counters.
func (sn Snapshot) String() string {
	keys := make([]string, 0, NumCounters)
	vals := make(map[string]uint64, NumCounters)
	for c, v := range sn {
		if v != 0 {
			n := Counter(c).String()
			keys = append(keys, n)
			vals[n] = v
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s %d\n", k, vals[k])
	}
	return b.String()
}

// Equal reports whether two snapshots hold identical counters.
// Used by determinism tests.
func (sn Snapshot) Equal(other Snapshot) bool { return sn == other }
