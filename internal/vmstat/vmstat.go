// Package vmstat implements the /proc/vmstat-style observability counters
// that TPP introduces (§5.5 of the paper): demotion and promotion event
// counts broken down by page type, promotion-failure reasons, NUMA hint
// fault counts, and the PG_demoted ping-pong tracker.
//
// Counters are identified by a dense Counter enum and stored in a flat
// array, so the hot-path increment is a single indexed add — no hashing,
// no allocation. String names exist only at the reporting/serialization
// edge (Counter.String, Snapshot.String). The simulator is
// single-goroutine per machine, so no atomics are needed. Snapshots are
// plain array values: copying, diffing, and comparing them never touches
// the heap.
//
// The machine-wide registry is NodeStats, the node_vmstat analogue: one
// flat Counter-indexed array per memory node, node-major in one backing
// slice. Every event is charged to exactly one node, so the global view
// (Get, Snapshot) is always the exact sum of the per-node views. The
// per-counter node attribution, chosen to mirror the kernel's node_stat
// semantics where one exists:
//
//   - demotion events (pgdemote_*, pgdemote_fail/fallback) and the
//     reclaim scan counters (pgscan/pgsteal/pgrotated/pgdeactivate):
//     the node being reclaimed (the migration source);
//   - pgdemote_far: the far node the page lands on;
//   - pgpromote_sampled/candidate and every promote_fail_* reason: the
//     node holding the page that was (or failed to be) promoted;
//   - pgpromote_success/anon/file/demoted: the node promoted to (as in
//     the kernel, which counts PGPROMOTE_SUCCESS on the target node);
//   - pgpromote_far: the far node the page left;
//   - numa_hint_faults[_local], numa_pages_scanned: the faulting or
//     scanned page's resident node;
//   - pgalloc_*, pgfree: the node the page was allocated on or freed
//     from; allocstall: the preferred node of the stalled allocation;
//   - pswpout/pswpin/pgmajfault: the node the page left or faults back
//     into;
//   - pgmigrate_success: the destination node; pgmigrate_fail: the
//     source node;
//   - node_offline_events and evacuated_pages: the node going offline
//     (or shrinking) — the source the pages were evacuated from;
//   - migrate_retry and migrate_backoff_drop: the migration source,
//     matching pgmigrate_fail;
//   - tracker_pages_scanned: the resident node of the page (or region
//     sample) whose accessed state the tracker checked;
//   - tracker_regions_split and tracker_regions_merged: the resident
//     node of the first page of the region being split or merged;
//   - mover_pages_moved: the destination node, matching
//     pgmigrate_success; mover_budget_deferred: the node the deferred
//     candidate currently resides on (the would-be source);
//   - thp_fault_alloc: the node the huge frame was allocated on;
//     thp_split: the node the frame was reclaimed from; thp_collapse:
//     the migration destination, matching pgmigrate_success;
//   - extent_split and extent_merge: node 0 — the extent table is a
//     property of the virtual address space, which has no resident
//     node.
package vmstat

import (
	"fmt"
	"sort"
	"strings"

	"tppsim/internal/mem"
)

// Counter names every event the simulator tracks. The names follow the
// kernel's vmstat vocabulary where one exists (pgdemote_*, pgpromote_*,
// numa_hint_faults) and extend it for simulator-specific events.
type Counter uint8

const (
	// Demotion path (§5.1, §5.5).
	PgdemoteKswapd  Counter = iota // pages demoted by background reclaim
	PgdemoteDirect                 // pages demoted in direct reclaim
	PgdemoteAnon                   // demoted pages that were anon
	PgdemoteFile                   // demoted pages that were file-backed
	PgdemoteFail                   // demotion migrations that failed
	PgdemoteFallbck                // failed demotions that fell back to swap/drop

	// Promotion path (§5.3, §5.5).
	PgpromoteSampled   // hint-faulted pages considered
	PgpromoteCandidate // pages that passed the promotion filter
	PgpromoteSuccess   // pages actually migrated up
	PgpromoteAnon      // promoted pages that were anon
	PgpromoteFile      // promoted pages that were file-backed
	PgpromoteDemoted   // promoted pages with PG_demoted set (ping-pong)

	// Promotion failure reasons (§5.5 "counters for each of the promotion
	// failure scenario").
	PromoteFailLowMem  // local node below min watermark
	PromoteFailRefs    // abnormal page references
	PromoteFailGlobal  // system-wide low memory
	PromoteFailIsolate // could not isolate from LRU

	// NUMA Balancing (§5.3).
	NumaHintFaults
	NumaHintFaultsLocal
	NumaPagesScanned

	// Reclaim and swap.
	PgscanKswapd
	PgscanDirect
	PgstealKswapd
	PgstealDirect
	PgactivateCt
	PgdeactivateCt
	PswpOut
	PswpIn
	PgmajFault
	PgRotated // referenced pages given a second chance

	// Allocation.
	PgallocLocal
	PgallocCXL
	PgallocStall // direct-reclaim stalls on the alloc path
	PgfreeCt

	// Migration engine.
	PgmigrateSuccess
	PgmigrateFail

	// Multi-tier cascade (simulator extension): demotions landing in a
	// far tier (tier rank >= 2) and promotions leaving one. Zero on the
	// paper's 2-node machine.
	PgdemoteFar
	PgpromoteFar

	// Fault plane (simulator extension): injected failures and the
	// machine's recovery work. Zero on healthy runs.
	NodeOfflineEvents  // node offline transitions (hotplug/link-down)
	MigrateRetry       // migration re-attempts after backoff expiry
	MigrateBackoffDrop // pages dropped after exhausting migration retries
	EvacuatedPages     // pages emergency-moved off an offlining/shrinking node

	// Tracker plane (simulator extension): sampled access tracking and
	// the heat-driven mover. Zero on tracker-off runs.
	TrackerPagesScanned  // accessed-state checks performed by the tracker
	TrackerRegionsSplit  // damon-style region splits
	TrackerRegionsMerged // damon-style region merges
	MoverPagesMoved      // pages migrated by the heat-driven mover
	MoverBudgetDeferred  // move candidates deferred by the per-tick budget

	// Huge-page mode (simulator extension, tier.Spec.HugePages): THP
	// lifecycle events and the extent table's split/merge churn. Zero
	// when huge pages are off.
	ThpFaultAlloc // 2 MB frames allocated by demand faults
	ThpSplit      // huge frames split by reclaim eviction
	ThpCollapse   // huge frames migrated whole (one charge per frame)
	ExtentSplit   // extent-table splits (lazy divergence)
	ExtentMerge   // extent-table re-merges (neighbors reconverged)

	numCounters
)

// NumCounters is the number of distinct counters.
const NumCounters = int(numCounters)

// names maps Counter values to their /proc/vmstat-style names. Used only
// at the reporting edge.
var names = [NumCounters]string{
	PgdemoteKswapd:  "pgdemote_kswapd",
	PgdemoteDirect:  "pgdemote_direct",
	PgdemoteAnon:    "pgdemote_anon",
	PgdemoteFile:    "pgdemote_file",
	PgdemoteFail:    "pgdemote_fail",
	PgdemoteFallbck: "pgdemote_fallback",

	PgpromoteSampled:   "pgpromote_sampled",
	PgpromoteCandidate: "pgpromote_candidate",
	PgpromoteSuccess:   "pgpromote_success",
	PgpromoteAnon:      "pgpromote_anon",
	PgpromoteFile:      "pgpromote_file",
	PgpromoteDemoted:   "pgpromote_demoted",

	PromoteFailLowMem:  "promote_fail_low_memory",
	PromoteFailRefs:    "promote_fail_page_refs",
	PromoteFailGlobal:  "promote_fail_system_memory",
	PromoteFailIsolate: "promote_fail_isolate",

	NumaHintFaults:      "numa_hint_faults",
	NumaHintFaultsLocal: "numa_hint_faults_local",
	NumaPagesScanned:    "numa_pages_scanned",

	PgscanKswapd:   "pgscan_kswapd",
	PgscanDirect:   "pgscan_direct",
	PgstealKswapd:  "pgsteal_kswapd",
	PgstealDirect:  "pgsteal_direct",
	PgactivateCt:   "pgactivate",
	PgdeactivateCt: "pgdeactivate",
	PswpOut:        "pswpout",
	PswpIn:         "pswpin",
	PgmajFault:     "pgmajfault",
	PgRotated:      "pgrotated",

	PgallocLocal: "pgalloc_local",
	PgallocCXL:   "pgalloc_cxl",
	PgallocStall: "allocstall",
	PgfreeCt:     "pgfree",

	PgmigrateSuccess: "pgmigrate_success",
	PgmigrateFail:    "pgmigrate_fail",

	PgdemoteFar:  "pgdemote_far",
	PgpromoteFar: "pgpromote_far",

	NodeOfflineEvents:  "node_offline_events",
	MigrateRetry:       "migrate_retry",
	MigrateBackoffDrop: "migrate_backoff_drop",
	EvacuatedPages:     "evacuated_pages",

	TrackerPagesScanned:  "tracker_pages_scanned",
	TrackerRegionsSplit:  "tracker_regions_split",
	TrackerRegionsMerged: "tracker_regions_merged",
	MoverPagesMoved:      "mover_pages_moved",
	MoverBudgetDeferred:  "mover_budget_deferred",

	ThpFaultAlloc: "thp_fault_alloc",
	ThpSplit:      "thp_split",
	ThpCollapse:   "thp_collapse",
	ExtentSplit:   "extent_split",
	ExtentMerge:   "extent_merge",
}

// String returns the counter's /proc/vmstat-style name.
func (c Counter) String() string {
	if int(c) < NumCounters {
		return names[c]
	}
	return fmt.Sprintf("counter(%d)", uint8(c))
}

// ByName resolves a counter name back to its enum value — the parsing
// edge for tools that read serialized snapshots.
func ByName(name string) (Counter, bool) {
	for c, n := range names {
		if n == name {
			return Counter(c), true
		}
	}
	return 0, false
}

// Counters returns every counter in enum order.
func Counters() []Counter {
	out := make([]Counter, NumCounters)
	for i := range out {
		out[i] = Counter(i)
	}
	return out
}

// NodeStats is the machine-wide stats plane: one Counter-indexed flat
// array per memory node, node-major in a single backing slice, so the
// hot-path increment is one multiply and one indexed add. The global
// counters are derived views — always the exact sum of the per-node
// ones — and snapshots of either view are plain array values.
type NodeStats struct {
	counts []uint64 // node-major: counts[node*NumCounters+counter]
	nodes  int
}

// NewNodeStats returns an empty stats plane for a machine of the given
// node count (at least 1).
func NewNodeStats(nodes int) *NodeStats {
	if nodes < 1 {
		nodes = 1
	}
	return &NodeStats{counts: make([]uint64, nodes*NumCounters), nodes: nodes}
}

// NumNodes returns the number of per-node counter sets.
func (s *NodeStats) NumNodes() int { return s.nodes }

// Inc adds 1 to the counter on the given node.
func (s *NodeStats) Inc(node mem.NodeID, c Counter) {
	s.counts[int(node)*NumCounters+int(c)]++
}

// Add adds delta to the counter on the given node.
func (s *NodeStats) Add(node mem.NodeID, c Counter, delta uint64) {
	s.counts[int(node)*NumCounters+int(c)] += delta
}

// GetNode returns the counter's value on one node.
func (s *NodeStats) GetNode(node mem.NodeID, c Counter) uint64 {
	return s.counts[int(node)*NumCounters+int(c)]
}

// Get returns the counter's global value: the sum over all nodes.
func (s *NodeStats) Get(c Counter) uint64 {
	var sum uint64
	for i := int(c); i < len(s.counts); i += NumCounters {
		sum += s.counts[i]
	}
	return sum
}

// Snapshot returns the global view: per-counter sums over all nodes.
// The result is a plain array value — no heap allocation.
func (s *NodeStats) Snapshot() Snapshot {
	var out Snapshot
	for n := 0; n < s.nodes; n++ {
		row := s.counts[n*NumCounters : (n+1)*NumCounters]
		for c, v := range row {
			out[c] += v
		}
	}
	return out
}

// NodeSnapshot returns one node's counters as a plain array value.
func (s *NodeStats) NodeSnapshot(node mem.NodeID) Snapshot {
	var out Snapshot
	copy(out[:], s.counts[int(node)*NumCounters:(int(node)+1)*NumCounters])
	return out
}

// AppendNodeSnapshots appends every node's snapshot to dst in node
// order and returns the extended slice (reuse dst across ticks to
// avoid allocation).
func (s *NodeStats) AppendNodeSnapshots(dst []Snapshot) []Snapshot {
	for n := 0; n < s.nodes; n++ {
		dst = append(dst, s.NodeSnapshot(mem.NodeID(n)))
	}
	return dst
}

// Reset zeroes every counter on every node.
func (s *NodeStats) Reset() {
	for i := range s.counts {
		s.counts[i] = 0
	}
}

// Snapshot is a point-in-time copy of the registry, indexed by Counter.
type Snapshot [NumCounters]uint64

// Get returns the value of the counter.
func (sn Snapshot) Get(c Counter) uint64 { return sn[c] }

// Delta returns sn - prev per counter. Counters that decreased (which
// should never happen) clamp to zero rather than underflowing.
func (sn Snapshot) Delta(prev Snapshot) Snapshot {
	var out Snapshot
	for i, v := range sn {
		if p := prev[i]; v >= p {
			out[i] = v - p
		}
	}
	return out
}

// String renders the snapshot in /proc/vmstat style: "name value" lines,
// sorted by name, only non-zero counters.
func (sn Snapshot) String() string {
	keys := make([]string, 0, NumCounters)
	vals := make(map[string]uint64, NumCounters)
	for c, v := range sn {
		if v != 0 {
			n := Counter(c).String()
			keys = append(keys, n)
			vals[n] = v
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s %d\n", k, vals[k])
	}
	return b.String()
}

// Equal reports whether two snapshots hold identical counters.
// Used by determinism tests.
func (sn Snapshot) Equal(other Snapshot) bool { return sn == other }
