// Package vmstat implements the /proc/vmstat-style observability counters
// that TPP introduces (§5.5 of the paper): demotion and promotion event
// counts broken down by page type, promotion-failure reasons, NUMA hint
// fault counts, and the PG_demoted ping-pong tracker.
//
// Counters are plain uint64s behind a registry; the simulator is
// single-goroutine per machine, so no atomics are needed. Snapshots are
// cheap copies used by experiments to diff event rates over intervals.
package vmstat

import (
	"fmt"
	"sort"
	"strings"
)

// Counter names every event the simulator tracks. The names follow the
// kernel's vmstat vocabulary where one exists (pgdemote_*, pgpromote_*,
// numa_hint_faults) and extend it for simulator-specific events.
const (
	// Demotion path (§5.1, §5.5).
	PgdemoteKswapd  = "pgdemote_kswapd"   // pages demoted by background reclaim
	PgdemoteDirect  = "pgdemote_direct"   // pages demoted in direct reclaim
	PgdemoteAnon    = "pgdemote_anon"     // demoted pages that were anon
	PgdemoteFile    = "pgdemote_file"     // demoted pages that were file-backed
	PgdemoteFail    = "pgdemote_fail"     // demotion migrations that failed
	PgdemoteFallbck = "pgdemote_fallback" // failed demotions that fell back to swap/drop

	// Promotion path (§5.3, §5.5).
	PgpromoteSampled   = "pgpromote_sampled"   // hint-faulted pages considered
	PgpromoteCandidate = "pgpromote_candidate" // pages that passed the promotion filter
	PgpromoteSuccess   = "pgpromote_success"   // pages actually migrated up
	PgpromoteAnon      = "pgpromote_anon"      // promoted pages that were anon
	PgpromoteFile      = "pgpromote_file"      // promoted pages that were file-backed
	PgpromoteDemoted   = "pgpromote_demoted"   // promoted pages with PG_demoted set (ping-pong)

	// Promotion failure reasons (§5.5 "counters for each of the promotion
	// failure scenario").
	PromoteFailLowMem  = "promote_fail_low_memory"    // local node below min watermark
	PromoteFailRefs    = "promote_fail_page_refs"     // abnormal page references
	PromoteFailGlobal  = "promote_fail_system_memory" // system-wide low memory
	PromoteFailIsolate = "promote_fail_isolate"       // could not isolate from LRU

	// NUMA Balancing (§5.3).
	NumaHintFaults      = "numa_hint_faults"
	NumaHintFaultsLocal = "numa_hint_faults_local"
	NumaPagesScanned    = "numa_pages_scanned"

	// Reclaim and swap.
	PgscanKswapd   = "pgscan_kswapd"
	PgscanDirect   = "pgscan_direct"
	PgstealKswapd  = "pgsteal_kswapd"
	PgstealDirect  = "pgsteal_direct"
	PgactivateCt   = "pgactivate"
	PgdeactivateCt = "pgdeactivate"
	PswpOut        = "pswpout"
	PswpIn         = "pswpin"
	PgmajFault     = "pgmajfault"
	PgRotated      = "pgrotated" // referenced pages given a second chance

	// Allocation.
	PgallocLocal = "pgalloc_local"
	PgallocCXL   = "pgalloc_cxl"
	PgallocStall = "allocstall" // direct-reclaim stalls on the alloc path
	PgfreeCt     = "pgfree"

	// Migration engine.
	PgmigrateSuccess = "pgmigrate_success"
	PgmigrateFail    = "pgmigrate_fail"
)

// Stat is a mutable counter registry.
type Stat struct {
	counts map[string]uint64
}

// New returns an empty registry.
func New() *Stat {
	return &Stat{counts: make(map[string]uint64, 64)}
}

// Inc adds 1 to the named counter.
func (s *Stat) Inc(name string) { s.counts[name]++ }

// Add adds delta to the named counter.
func (s *Stat) Add(name string, delta uint64) { s.counts[name] += delta }

// Get returns the current value of the named counter (0 if never touched).
func (s *Stat) Get(name string) uint64 { return s.counts[name] }

// Snapshot returns an immutable copy of all counters.
func (s *Stat) Snapshot() Snapshot {
	out := make(Snapshot, len(s.counts))
	for k, v := range s.counts {
		out[k] = v
	}
	return out
}

// Reset zeroes every counter.
func (s *Stat) Reset() {
	for k := range s.counts {
		delete(s.counts, k)
	}
}

// Snapshot is a point-in-time copy of the registry.
type Snapshot map[string]uint64

// Get returns the value of the named counter (0 if absent).
func (sn Snapshot) Get(name string) uint64 { return sn[name] }

// Delta returns sn - prev per counter. Counters absent from prev are
// treated as zero; counters that decreased (which should never happen)
// clamp to zero rather than underflowing.
func (sn Snapshot) Delta(prev Snapshot) Snapshot {
	out := make(Snapshot, len(sn))
	for k, v := range sn {
		p := prev[k]
		if v >= p {
			out[k] = v - p
		}
	}
	return out
}

// String renders the snapshot in /proc/vmstat style: "name value" lines,
// sorted by name, only non-zero counters.
func (sn Snapshot) String() string {
	keys := make([]string, 0, len(sn))
	for k, v := range sn {
		if v != 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s %d\n", k, sn[k])
	}
	return b.String()
}

// Equal reports whether two snapshots hold identical non-zero counters.
// Used by determinism tests.
func (sn Snapshot) Equal(other Snapshot) bool {
	for k, v := range sn {
		if v != 0 && other[k] != v {
			return false
		}
	}
	for k, v := range other {
		if v != 0 && sn[k] != v {
			return false
		}
	}
	return true
}
