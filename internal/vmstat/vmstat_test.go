package vmstat

import (
	"strings"
	"testing"
	"testing/quick"

	"tppsim/internal/mem"
)

func TestIncAndGet(t *testing.T) {
	s := NewNodeStats(1)
	if s.Get(PgpromoteSuccess) != 0 {
		t.Fatal("fresh counter not zero")
	}
	s.Inc(0, PgpromoteSuccess)
	s.Inc(0, PgpromoteSuccess)
	if got := s.Get(PgpromoteSuccess); got != 2 {
		t.Fatalf("got %d, want 2", got)
	}
}

func TestAdd(t *testing.T) {
	s := NewNodeStats(1)
	s.Add(0, PgdemoteKswapd, 100)
	s.Add(0, PgdemoteKswapd, 23)
	if got := s.Get(PgdemoteKswapd); got != 123 {
		t.Fatalf("got %d, want 123", got)
	}
}

func TestSnapshotIsCopy(t *testing.T) {
	s := NewNodeStats(1)
	s.Add(0, PswpOut, 5)
	snap := s.Snapshot()
	s.Add(0, PswpOut, 5)
	if snap.Get(PswpOut) != 5 {
		t.Fatal("snapshot mutated by later Add")
	}
	if s.Get(PswpOut) != 10 {
		t.Fatal("registry lost update")
	}
}

func TestDelta(t *testing.T) {
	s := NewNodeStats(1)
	s.Add(0, NumaHintFaults, 10)
	before := s.Snapshot()
	s.Add(0, NumaHintFaults, 7)
	s.Add(0, PgmajFault, 3)
	d := s.Snapshot().Delta(before)
	if d.Get(NumaHintFaults) != 7 {
		t.Fatalf("delta hint faults = %d, want 7", d.Get(NumaHintFaults))
	}
	if d.Get(PgmajFault) != 3 {
		t.Fatalf("delta majfault = %d, want 3", d.Get(PgmajFault))
	}
}

func TestReset(t *testing.T) {
	s := NewNodeStats(1)
	s.Add(0, PgallocLocal, 9)
	s.Reset()
	if s.Get(PgallocLocal) != 0 {
		t.Fatal("Reset did not zero counters")
	}
}

func TestStringFormat(t *testing.T) {
	s := NewNodeStats(1)
	s.Add(0, PgallocCXL, 2)
	s.Add(0, PgallocLocal, 1)
	out := s.Snapshot().String()
	if !strings.Contains(out, "pgalloc_cxl 2") || !strings.Contains(out, "pgalloc_local 1") {
		t.Fatalf("bad render:\n%s", out)
	}
	// Sorted: cxl before local.
	if strings.Index(out, "pgalloc_cxl") > strings.Index(out, "pgalloc_local") {
		t.Fatalf("not sorted:\n%s", out)
	}
}

func TestStringOmitsZeros(t *testing.T) {
	s := NewNodeStats(1)
	s.Add(0, PgallocLocal, 0)
	if out := s.Snapshot().String(); out != "" {
		t.Fatalf("zero counters rendered: %q", out)
	}
}

func TestEqual(t *testing.T) {
	a, b := NewNodeStats(1), NewNodeStats(1)
	a.Add(0, PswpIn, 4)
	b.Add(0, PswpIn, 4)
	if !a.Snapshot().Equal(b.Snapshot()) {
		t.Fatal("equal snapshots reported unequal")
	}
	b.Inc(0, PswpIn)
	if a.Snapshot().Equal(b.Snapshot()) {
		t.Fatal("unequal snapshots reported equal")
	}
}

func TestEqualIgnoresExplicitZeros(t *testing.T) {
	a, b := NewNodeStats(1), NewNodeStats(1)
	a.Add(0, PswpIn, 0) // touched but zero
	if !a.Snapshot().Equal(b.Snapshot()) {
		t.Fatal("explicit zero broke equality")
	}
}

func TestCounterNames(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Counters() {
		n := c.String()
		if n == "" || strings.HasPrefix(n, "counter(") {
			t.Fatalf("counter %d has no name", c)
		}
		if seen[n] {
			t.Fatalf("duplicate counter name %q", n)
		}
		seen[n] = true
		back, ok := ByName(n)
		if !ok || back != c {
			t.Fatalf("ByName(%q) = %v,%v, want %v", n, back, ok, c)
		}
	}
	if _, ok := ByName("no_such_counter"); ok {
		t.Fatal("ByName resolved a bogus name")
	}
}

// BenchmarkVmstatInc measures the hot-path counter increment: with the
// array-backed registry this must be a plain indexed add.
func BenchmarkVmstatInc(b *testing.B) {
	s := NewNodeStats(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Inc(0, NumaHintFaults)
	}
	if s.Get(NumaHintFaults) == 0 {
		b.Fatal("counter not incremented")
	}
}

// Property: for any sequence of Adds, Snapshot().Delta(empty) equals the
// snapshot itself, and delta of a snapshot with itself is all-zero.
func TestDeltaProperties(t *testing.T) {
	f := func(vals []uint8) bool {
		s := NewNodeStats(1)
		names := []Counter{PgdemoteAnon, PgdemoteFile, PgpromoteAnon}
		for i, v := range vals {
			s.Add(0, names[i%len(names)], uint64(v))
		}
		snap := s.Snapshot()
		if !snap.Delta(Snapshot{}).Equal(snap) {
			return false
		}
		for _, v := range snap.Delta(snap) {
			if v != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNodeStats(t *testing.T) {
	s := NewNodeStats(3)
	if s.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d", s.NumNodes())
	}
	s.Inc(0, PgallocLocal)
	s.Inc(2, PgallocLocal)
	s.Add(1, PgdemoteKswapd, 5)
	s.Inc(2, PgdemoteKswapd)
	if got := s.Get(PgallocLocal); got != 2 {
		t.Errorf("global pgalloc_local = %d", got)
	}
	if got := s.GetNode(2, PgdemoteKswapd); got != 1 {
		t.Errorf("node 2 pgdemote = %d", got)
	}
	// Global snapshot is the exact per-counter sum of the node views.
	var sum Snapshot
	for n := 0; n < s.NumNodes(); n++ {
		ns := s.NodeSnapshot(mem.NodeID(n))
		for c, v := range ns {
			sum[c] += v
		}
	}
	if g := s.Snapshot(); g != sum {
		t.Errorf("global snapshot %v != node sum %v", g, sum)
	}
	if g := s.Snapshot(); g.Get(PgdemoteKswapd) != 6 {
		t.Errorf("snapshot pgdemote = %d", g.Get(PgdemoteKswapd))
	}
	snaps := s.AppendNodeSnapshots(nil)
	if len(snaps) != 3 || snaps[1].Get(PgdemoteKswapd) != 5 {
		t.Errorf("AppendNodeSnapshots = %v", snaps)
	}
	s.Reset()
	if g := s.Snapshot(); g != (Snapshot{}) {
		t.Error("Reset left counters behind")
	}
}
