package vmstat

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestIncAndGet(t *testing.T) {
	s := New()
	if s.Get(PgpromoteSuccess) != 0 {
		t.Fatal("fresh counter not zero")
	}
	s.Inc(PgpromoteSuccess)
	s.Inc(PgpromoteSuccess)
	if got := s.Get(PgpromoteSuccess); got != 2 {
		t.Fatalf("got %d, want 2", got)
	}
}

func TestAdd(t *testing.T) {
	s := New()
	s.Add(PgdemoteKswapd, 100)
	s.Add(PgdemoteKswapd, 23)
	if got := s.Get(PgdemoteKswapd); got != 123 {
		t.Fatalf("got %d, want 123", got)
	}
}

func TestSnapshotIsCopy(t *testing.T) {
	s := New()
	s.Add(PswpOut, 5)
	snap := s.Snapshot()
	s.Add(PswpOut, 5)
	if snap.Get(PswpOut) != 5 {
		t.Fatal("snapshot mutated by later Add")
	}
	if s.Get(PswpOut) != 10 {
		t.Fatal("registry lost update")
	}
}

func TestDelta(t *testing.T) {
	s := New()
	s.Add(NumaHintFaults, 10)
	before := s.Snapshot()
	s.Add(NumaHintFaults, 7)
	s.Add(PgmajFault, 3)
	d := s.Snapshot().Delta(before)
	if d.Get(NumaHintFaults) != 7 {
		t.Fatalf("delta hint faults = %d, want 7", d.Get(NumaHintFaults))
	}
	if d.Get(PgmajFault) != 3 {
		t.Fatalf("delta majfault = %d, want 3", d.Get(PgmajFault))
	}
}

func TestReset(t *testing.T) {
	s := New()
	s.Add(PgallocLocal, 9)
	s.Reset()
	if s.Get(PgallocLocal) != 0 {
		t.Fatal("Reset did not zero counters")
	}
}

func TestStringFormat(t *testing.T) {
	s := New()
	s.Add(PgallocCXL, 2)
	s.Add(PgallocLocal, 1)
	out := s.Snapshot().String()
	if !strings.Contains(out, "pgalloc_cxl 2") || !strings.Contains(out, "pgalloc_local 1") {
		t.Fatalf("bad render:\n%s", out)
	}
	// Sorted: cxl before local.
	if strings.Index(out, "pgalloc_cxl") > strings.Index(out, "pgalloc_local") {
		t.Fatalf("not sorted:\n%s", out)
	}
}

func TestStringOmitsZeros(t *testing.T) {
	s := New()
	s.Add(PgallocLocal, 0)
	if out := s.Snapshot().String(); out != "" {
		t.Fatalf("zero counters rendered: %q", out)
	}
}

func TestEqual(t *testing.T) {
	a, b := New(), New()
	a.Add(PswpIn, 4)
	b.Add(PswpIn, 4)
	if !a.Snapshot().Equal(b.Snapshot()) {
		t.Fatal("equal snapshots reported unequal")
	}
	b.Inc(PswpIn)
	if a.Snapshot().Equal(b.Snapshot()) {
		t.Fatal("unequal snapshots reported equal")
	}
}

func TestEqualIgnoresExplicitZeros(t *testing.T) {
	a, b := New(), New()
	a.Add(PswpIn, 0) // touched but zero
	if !a.Snapshot().Equal(b.Snapshot()) {
		t.Fatal("explicit zero broke equality")
	}
}

func TestCounterNames(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Counters() {
		n := c.String()
		if n == "" || strings.HasPrefix(n, "counter(") {
			t.Fatalf("counter %d has no name", c)
		}
		if seen[n] {
			t.Fatalf("duplicate counter name %q", n)
		}
		seen[n] = true
		back, ok := ByName(n)
		if !ok || back != c {
			t.Fatalf("ByName(%q) = %v,%v, want %v", n, back, ok, c)
		}
	}
	if _, ok := ByName("no_such_counter"); ok {
		t.Fatal("ByName resolved a bogus name")
	}
}

// BenchmarkVmstatInc measures the hot-path counter increment: with the
// array-backed registry this must be a plain indexed add.
func BenchmarkVmstatInc(b *testing.B) {
	s := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Inc(NumaHintFaults)
	}
	if s.Get(NumaHintFaults) == 0 {
		b.Fatal("counter not incremented")
	}
}

// Property: for any sequence of Adds, Snapshot().Delta(empty) equals the
// snapshot itself, and delta of a snapshot with itself is all-zero.
func TestDeltaProperties(t *testing.T) {
	f := func(vals []uint8) bool {
		s := New()
		names := []Counter{PgdemoteAnon, PgdemoteFile, PgpromoteAnon}
		for i, v := range vals {
			s.Add(names[i%len(names)], uint64(v))
		}
		snap := s.Snapshot()
		if !snap.Delta(Snapshot{}).Equal(snap) {
			return false
		}
		for _, v := range snap.Delta(snap) {
			if v != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
