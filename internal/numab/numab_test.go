package numab

import (
	"testing"

	"tppsim/internal/lru"
	"tppsim/internal/mem"
	"tppsim/internal/migrate"
	"tppsim/internal/pagetable"
	"tppsim/internal/tier"
	"tppsim/internal/vmstat"
	"tppsim/internal/xrand"
)

type fixture struct {
	store *mem.Store
	topo  *tier.Topology
	vecs  []*lru.Vec
	stat  *vmstat.NodeStats
	as    *pagetable.AddressSpace
	b     *Balancer
}

func newFixture(t *testing.T, cfg Config, localPages, cxlPages uint64) *fixture {
	t.Helper()
	topo, err := tier.NewCXLSystem(tier.Config{LocalPages: localPages, CXLPages: cxlPages})
	if err != nil {
		t.Fatal(err)
	}
	store := mem.NewStore(int(localPages + cxlPages))
	vecs := make([]*lru.Vec, topo.NumNodes())
	for i := range vecs {
		vecs[i] = lru.NewVec(store)
	}
	stat := vmstat.NewNodeStats(topo.NumNodes())
	eng := migrate.NewEngine(migrate.Config{RefsFailProb: -1, WatermarkGuard: true}, store, topo, vecs, stat, xrand.New(1))
	as := pagetable.New(1)
	b := New(cfg, store, topo, vecs, stat, eng, as)
	return &fixture{store, topo, vecs, stat, as, b}
}

// populate maps n pages of type pt on node id; active selects the LRU list.
func (f *fixture) populate(t *testing.T, id mem.NodeID, pt mem.PageType, n int, active bool) []mem.PFN {
	t.Helper()
	r := f.as.Mmap(uint64(n), pt)
	pfns := make([]mem.PFN, n)
	for i := 0; i < n; i++ {
		if !f.topo.Node(id).Acquire(pt) {
			t.Fatal("fixture node full")
		}
		pfn := f.store.Alloc(pt, id)
		f.vecs[id].Add(pfn, active)
		f.as.MapPage(r.Start+pagetable.VPN(i), pfn)
		pfns[i] = pfn
	}
	return pfns
}

// runScans advances the balancer to the next scan boundary.
func (f *fixture) runScans(times int) {
	period := f.b.Config().ScanPeriodTicks
	for s := 0; s < times; s++ {
		for i := uint64(0); i < period; i++ {
			f.b.Tick()
		}
	}
}

func TestDisabledIsInert(t *testing.T) {
	f := newFixture(t, Config{}, 100, 100)
	pfns := f.populate(t, 1, mem.Anon, 10, true)
	f.runScans(3)
	if f.stat.Get(vmstat.NumaPagesScanned) != 0 {
		t.Fatal("disabled balancer scanned")
	}
	out := f.b.OnAccess(pfns[0], f.store.Page(pfns[0]))
	if out.HintFault || out.Promoted || out.LatencyNs != 0 {
		t.Fatal("disabled balancer produced outcomes")
	}
}

func TestScanPoisonsPages(t *testing.T) {
	f := newFixture(t, Config{Enabled: true, ScanSizePages: 5}, 100, 100)
	pfns := f.populate(t, 1, mem.Anon, 20, false)
	f.runScans(1)
	marked := 0
	for _, pfn := range pfns {
		if f.store.Page(pfn).Flags.Has(mem.PGHinted) {
			marked++
		}
	}
	if marked != 5 {
		t.Fatalf("marked %d pages, want 5", marked)
	}
	if f.stat.Get(vmstat.NumaPagesScanned) != 5 {
		t.Fatal("scan counter wrong")
	}
}

func TestScanCursorWraps(t *testing.T) {
	f := newFixture(t, Config{Enabled: true, ScanSizePages: 15}, 100, 100)
	pfns := f.populate(t, 1, mem.Anon, 20, false)
	f.runScans(2) // 30 > 20: must wrap and cover everything
	for i, pfn := range pfns {
		if !f.store.Page(pfn).Flags.Has(mem.PGHinted) {
			t.Fatalf("page %d never sampled", i)
		}
	}
}

func TestCXLOnlySkipsLocal(t *testing.T) {
	f := newFixture(t, Config{Enabled: true, CXLOnly: true, ScanSizePages: 100}, 100, 100)
	localPages := f.populate(t, 0, mem.Anon, 10, false)
	cxlPages := f.populate(t, 1, mem.Anon, 10, false)
	f.runScans(1)
	for _, pfn := range localPages {
		if f.store.Page(pfn).Flags.Has(mem.PGHinted) {
			t.Fatal("local page sampled under CXLOnly")
		}
	}
	for _, pfn := range cxlPages {
		if !f.store.Page(pfn).Flags.Has(mem.PGHinted) {
			t.Fatal("CXL page not sampled")
		}
	}
}

func TestHintFaultOnLocalNode(t *testing.T) {
	f := newFixture(t, Config{Enabled: true, ScanSizePages: 100}, 100, 100)
	pfns := f.populate(t, 0, mem.Anon, 5, false)
	f.runScans(1)
	out := f.b.OnAccess(pfns[0], f.store.Page(pfns[0]))
	if !out.HintFault || out.Promoted {
		t.Fatalf("outcome = %+v", out)
	}
	if out.LatencyNs != 1500 {
		t.Fatalf("latency = %v", out.LatencyNs)
	}
	if f.stat.Get(vmstat.NumaHintFaultsLocal) != 1 {
		t.Fatal("local hint fault not counted")
	}
	// Fault consumed: second access is clean.
	if out2 := f.b.OnAccess(pfns[0], f.store.Page(pfns[0])); out2.HintFault {
		t.Fatal("hint fault not consumed")
	}
}

func TestClassicInstantPromotion(t *testing.T) {
	f := newFixture(t, Config{Enabled: true, ScanSizePages: 100}, 100, 100)
	// Inactive CXL page: classic NUMA balancing promotes it instantly.
	pfns := f.populate(t, 1, mem.Anon, 1, false)
	f.runScans(1)
	out := f.b.OnAccess(pfns[0], f.store.Page(pfns[0]))
	if !out.Promoted {
		t.Fatal("classic balancing did not promote")
	}
	if f.store.Page(pfns[0]).Node != 0 {
		t.Fatal("page not moved")
	}
	if f.stat.Get(vmstat.PgpromoteSuccess) != 1 {
		t.Fatal("promotion not counted")
	}
}

func TestActiveLRUFilterDefersInactivePage(t *testing.T) {
	f := newFixture(t, Config{Enabled: true, ActiveLRUFilter: true, CXLOnly: true,
		IgnoreAllocWatermark: true, ScanSizePages: 100}, 100, 100)
	pfns := f.populate(t, 1, mem.Anon, 1, false)
	f.runScans(1)

	// First hint fault: inactive -> activated, not promoted.
	out := f.b.OnAccess(pfns[0], f.store.Page(pfns[0]))
	if out.Promoted {
		t.Fatal("inactive page promoted instantly")
	}
	pg := f.store.Page(pfns[0])
	if !pg.Flags.Has(mem.PGActive) {
		t.Fatal("filter did not activate the page")
	}
	if f.stat.Get(vmstat.PgpromoteSampled) != 1 || f.stat.Get(vmstat.PgpromoteCandidate) != 0 {
		t.Fatal("filter counters wrong")
	}

	// Second scan + fault: now active -> promoted.
	f.runScans(1)
	out = f.b.OnAccess(pfns[0], f.store.Page(pfns[0]))
	if !out.Promoted {
		t.Fatal("active page not promoted on second fault")
	}
	if f.stat.Get(vmstat.PgpromoteCandidate) != 1 {
		t.Fatal("candidate counter wrong")
	}
}

func TestIgnoreAllocWatermarkPromotesUnderPressure(t *testing.T) {
	classic := newFixture(t, Config{Enabled: true, ScanSizePages: 100}, 1000, 1000)
	tpp := newFixture(t, Config{Enabled: true, IgnoreAllocWatermark: true, ScanSizePages: 100}, 1000, 1000)
	for _, f := range []*fixture{classic, tpp} {
		// Fill local between min and alloc watermark.
		local := f.topo.Node(0)
		for local.Free() > local.WM.Min+2 {
			local.Acquire(mem.Anon)
		}
	}
	cp := classic.populate(t, 1, mem.Anon, 1, true)
	tp := tpp.populate(t, 1, mem.Anon, 1, true)
	classic.runScans(1)
	tpp.runScans(1)

	if out := classic.b.OnAccess(cp[0], classic.store.Page(cp[0])); out.Promoted {
		t.Fatal("classic promoted below alloc watermark")
	}
	if classic.stat.Get(vmstat.PromoteFailLowMem) != 1 {
		t.Fatal("classic failure not counted")
	}
	if out := tpp.b.OnAccess(tp[0], tpp.store.Page(tp[0])); !out.Promoted {
		t.Fatal("TPP did not promote despite watermark bypass")
	}
}

func TestPromotionStopsAtMinWatermark(t *testing.T) {
	f := newFixture(t, Config{Enabled: true, IgnoreAllocWatermark: true, ScanSizePages: 100}, 1000, 1000)
	local := f.topo.Node(0)
	for local.Free() > local.WM.Min {
		local.Acquire(mem.Anon)
	}
	pfns := f.populate(t, 1, mem.Anon, 1, true)
	f.runScans(1)
	if out := f.b.OnAccess(pfns[0], f.store.Page(pfns[0])); out.Promoted {
		t.Fatal("promotion dipped into the emergency reserve")
	}
	if f.stat.Get(vmstat.PromoteFailLowMem) == 0 {
		t.Fatal("low-mem failure not counted")
	}
}

func TestPromotedPageLandsActive(t *testing.T) {
	f := newFixture(t, Config{Enabled: true, ActiveLRUFilter: true, CXLOnly: true,
		IgnoreAllocWatermark: true, ScanSizePages: 100}, 100, 100)
	pfns := f.populate(t, 1, mem.Anon, 1, true)
	f.runScans(1)
	out := f.b.OnAccess(pfns[0], f.store.Page(pfns[0]))
	if !out.Promoted {
		t.Fatal("not promoted")
	}
	pg := f.store.Page(pfns[0])
	if pg.Node != 0 || !pg.Flags.Has(mem.PGActive) {
		t.Fatalf("promoted page state wrong: %+v", pg)
	}
	if f.vecs[0].Size(lru.ActiveAnon) != 1 {
		t.Fatal("promoted page not on local active list")
	}
}

func TestScanOverheadReported(t *testing.T) {
	f := newFixture(t, Config{Enabled: true, ScanSizePages: 50}, 100, 100)
	f.populate(t, 1, mem.Anon, 60, false)
	period := f.b.Config().ScanPeriodTicks
	var spent float64
	for i := uint64(0); i < period; i++ {
		spent += f.b.Tick()
	}
	if spent <= 0 {
		t.Fatal("scan reported no CPU cost")
	}
}
