// Package numab implements NUMA Balancing (AutoNUMA) and TPP's
// modifications to it (§5.3 of the paper). The classic mechanism
// periodically unmaps a window of a process's memory (the paper's default
// 256 MB); the next touch of an unmapped page raises a *NUMA hint fault*,
// and a page faulted from a remote node is migrated toward the faulting
// CPU ("promotion"). Promotion is topology-aware: a hint-faulted page on
// any non-CPU tier climbs one tier toward the CPU (the least-pressured
// node of the next tier up), so on multi-hop machines a page trapped on
// the far expander reaches local DRAM in steps.
//
// TPP changes three things, each independently switchable here for the
// ablation experiments:
//
//   - CXLOnly: sample only CXL nodes. Hot pages on the local node never
//     need promotion, so sampling them is pure hint-fault overhead.
//   - ActiveLRUFilter: promote a hint-faulted page only if it is on the
//     active LRU list; a page found on the inactive list is instead
//     marked accessed and moved to the active list (hysteresis), so it
//     is promoted on its *next* hint fault if still hot. This kills the
//     promotion ping-pong of opportunistic promotion.
//   - IgnoreAllocWatermark: promotion bypasses the allocation watermark
//     on the target node (pressure from promotions then drives more
//     demotion of colder local pages).
package numab

import (
	"tppsim/internal/lru"
	"tppsim/internal/mem"
	"tppsim/internal/migrate"
	"tppsim/internal/pagetable"
	"tppsim/internal/tier"
	"tppsim/internal/tracker"
	"tppsim/internal/vmstat"
)

// Config tunes the balancer.
type Config struct {
	// Enabled turns the whole mechanism on; default Linux without NUMA
	// balancing runs with this false.
	Enabled bool
	// ScanPeriodTicks is how many simulator ticks between sampling scans.
	// Default 20 (twenty simulated seconds).
	ScanPeriodTicks uint64
	// ScanSizePages is the number of mapped pages unmapped per scan (the
	// kernel's 256 MB window, scaled to the simulated machine).
	// Default 4096.
	ScanSizePages int
	// CXLOnly restricts sampling to CXL nodes (TPP).
	CXLOnly bool
	// ActiveLRUFilter enables TPP's active-list promotion filter.
	ActiveLRUFilter bool
	// IgnoreAllocWatermark lets promotions bypass the allocation
	// watermark, requiring only that the target stay above min (TPP).
	IgnoreAllocWatermark bool
	// HintFaultNs is the minor-fault cost charged to the faulting access.
	// Default 1500 ns.
	HintFaultNs float64
	// PromotionGate, when non-nil, is consulted with the selected
	// promotion target before each attempt; returning false blocks it
	// (counted as an isolate failure). The AutoTiering baseline uses
	// this for its per-CPU-node fixed-size promotion buffers (§6.3).
	PromotionGate func(target mem.NodeID) bool
	// OnPromoted, when non-nil, is invoked with the target node after
	// each successful promotion (AutoTiering consumes a buffer slot on
	// that node).
	OnPromoted func(target mem.NodeID)
}

func (c Config) withDefaults() Config {
	if c.ScanPeriodTicks == 0 {
		c.ScanPeriodTicks = 20
	}
	if c.ScanSizePages == 0 {
		c.ScanSizePages = 4096
	}
	if c.HintFaultNs == 0 {
		c.HintFaultNs = 1500
	}
	return c
}

// Balancer is the per-machine NUMA-balancing task.
type Balancer struct {
	cfg    Config
	store  *mem.Store
	topo   *tier.Topology
	vecs   []*lru.Vec
	stat   *vmstat.NodeStats
	engine *migrate.Engine
	as     *pagetable.AddressSpace

	// nodeCXL caches per-node "is CXL" so the per-access and per-scan
	// checks are a slice index instead of a topology walk; nodeTop caches
	// "is on the CPU tier" (tier 0), the promotability cut-off — on
	// multi-hop machines a page anywhere below the CPU tier is a
	// promotion candidate toward the next tier up.
	nodeCXL []bool
	nodeTop []bool

	// VA-order scan cursor (the kernel walks mm->mmap sequentially and
	// wraps).
	cursorRegion int
	cursorOffset pagetable.VPN
	sinceScan    uint64

	// framePages is the sampling stride: 1 normally,
	// mem.HugeFramePages in huge-page mode, where one poisoned PMD entry
	// covers a whole 2 MB frame and the next touch anywhere in it raises
	// the hint fault.
	framePages uint64
}

// New wires a balancer over the machine.
func New(cfg Config, store *mem.Store, topo *tier.Topology, vecs []*lru.Vec,
	stat *vmstat.NodeStats, engine *migrate.Engine, as *pagetable.AddressSpace) *Balancer {
	cxl := make([]bool, topo.NumNodes())
	top := make([]bool, topo.NumNodes())
	for i := range cxl {
		cxl[i] = topo.Node(mem.NodeID(i)).Kind == mem.KindCXL
		top[i] = topo.TierOf(mem.NodeID(i)) == 0
	}
	return &Balancer{cfg: cfg.withDefaults(), store: store, topo: topo, vecs: vecs, stat: stat, engine: engine, as: as, nodeCXL: cxl, nodeTop: top, framePages: 1}
}

// Config returns the balancer configuration.
func (b *Balancer) Config() Config { return b.cfg }

// SetFramePages sets the base pages each sampled PFN covers (a machine
// property, set once by the simulator before any scan runs).
func (b *Balancer) SetFramePages(fp uint64) { b.framePages = fp }

// Tick advances the scan clock; on period boundaries it runs one sampling
// scan. Returns the background CPU consumed.
func (b *Balancer) Tick() float64 {
	if !b.cfg.Enabled {
		return 0
	}
	b.sinceScan++
	if b.sinceScan < b.cfg.ScanPeriodTicks {
		return 0
	}
	b.sinceScan = 0
	return b.scan()
}

// scan walks the address space in VA order from the cursor, poisoning up
// to ScanSizePages in-scope mapped pages (setting PGHinted, the simulator's
// PTE present-bit clearing).
func (b *Balancer) scan() float64 {
	const perPageNs = 150 // PTE walk + unmap cost per sampled page
	numRegions := b.as.NumRegions()
	if numRegions == 0 {
		return 0
	}
	if b.cursorRegion >= numRegions {
		b.cursorRegion = 0
		b.cursorOffset = 0
	}
	marked := 0
	visited := 0
	// Bound the walk to one full pass over the address space per scan.
	// In huge-page mode the cursor strides one frame per step: poisoning
	// a PMD-mapped THP is one PTE-level operation covering the whole
	// frame, so ScanSizePages (in base pages) covers 512x the VA per
	// poison and the hint-fault sampling runs at huge granularity.
	fp := b.framePages
	totalPages := b.as.TotalPages()
	spent := 0.0
	for marked < b.cfg.ScanSizePages && visited < int(totalPages) {
		r := b.as.RegionAt(b.cursorRegion)
		if b.cursorOffset >= pagetable.VPN(r.Pages) {
			b.cursorRegion = (b.cursorRegion + 1) % numRegions
			b.cursorOffset = 0
			continue
		}
		v := r.Start + b.cursorOffset
		b.cursorOffset += pagetable.VPN(fp)
		visited += int(fp)
		pfn, ok := b.as.Translate(v)
		if !ok {
			continue
		}
		pg := b.store.Page(pfn)
		if b.cfg.CXLOnly && !b.nodeCXL[pg.Node] {
			continue
		}
		if pg.Flags.Has(mem.PGHinted) {
			continue
		}
		pg.Flags = pg.Flags.Set(mem.PGHinted)
		b.stat.Add(pg.Node, vmstat.NumaPagesScanned, fp)
		marked += int(fp)
		spent += perPageNs
	}
	return spent
}

// HintTracker is the balancer seen as one tracker among several
// (tracker.Tracker): hint-fault sampling is just another sampled
// access-tracking mechanism, with the scan as its Tick and the hint
// faults themselves as its observations. The view is an adapter over
// the existing behavior — driving the balancer through it performs
// exactly the calls the simulator always made, so numab-driven runs
// stay bit-identical. The balancer's signal feeds promotions directly
// rather than a heatmap, so the view ignores the fold target.
type HintTracker struct {
	b *Balancer
}

var _ tracker.Tracker = (*HintTracker)(nil)

// Tracker returns the balancer's tracker.Tracker view.
func (b *Balancer) Tracker() *HintTracker { return &HintTracker{b: b} }

// Name returns the tracker kind.
func (t *HintTracker) Name() string { return "numab" }

// Start is a no-op: the balancer is already bound to its machine.
func (t *HintTracker) Start(tracker.Env) error { return nil }

// Stop is a no-op.
func (t *HintTracker) Stop() {}

// OnAccess observes one access, discarding the promotion outcome (the
// simulator's hot path calls Balancer.OnAccess directly when it needs
// the charged latency).
func (t *HintTracker) OnAccess(pfn mem.PFN, pg *mem.Page) { t.b.OnAccess(pfn, pg) }

// Tick advances the scan clock; a scan that consumed CPU counts as a
// fold. Hint-fault counts reach the stats plane, not the heatmap.
func (t *HintTracker) Tick(tick uint64, hm *tracker.Heatmap) bool {
	return t.b.Tick() != 0
}

// AccessOutcome describes what happened on one memory access from the
// balancer's point of view.
type AccessOutcome struct {
	// HintFault is true when the access hit a poisoned PTE; LatencyNs
	// then carries the minor-fault cost.
	HintFault bool
	// Promoted is true when the access triggered a successful promotion.
	Promoted bool
	// LatencyNs is the extra latency charged to this access (fault
	// service plus any synchronous migration wait).
	LatencyNs float64
}

// OnAccess processes one CPU access to pfn; pg must be pfn's page (the
// caller already has it, so the hot path avoids a second store lookup).
// All simulated CPUs live on local nodes, so any access to a CXL-resident
// page is a remote access.
func (b *Balancer) OnAccess(pfn mem.PFN, pg *mem.Page) AccessOutcome {
	if !b.cfg.Enabled {
		return AccessOutcome{}
	}
	if !pg.Flags.Has(mem.PGHinted) {
		return AccessOutcome{}
	}
	pg.Flags = pg.Flags.Clear(mem.PGHinted)
	out := AccessOutcome{HintFault: true, LatencyNs: b.cfg.HintFaultNs}
	b.stat.Inc(pg.Node, vmstat.NumaHintFaults)

	if b.nodeTop[pg.Node] {
		// CPU-tier fault: nothing to promote.
		b.stat.Inc(pg.Node, vmstat.NumaHintFaultsLocal)
		return out
	}
	b.stat.Inc(pg.Node, vmstat.PgpromoteSampled)

	// TPP's apt identification of trapped hot pages (§5.3).
	if b.cfg.ActiveLRUFilter && !pg.Flags.Has(mem.PGActive) {
		// Inactive page: not promoted now; activate so a subsequent hint
		// fault finds it hot ( 2 in Fig. 13).
		b.vecs[pg.Node].ForceActivate(pfn)
		return out
	}
	b.stat.Inc(pg.Node, vmstat.PgpromoteCandidate)

	// One hop toward the CPU, preferring the page's home socket when the
	// tier above contains it (multi-socket machines; elsewhere this is
	// exactly the least-pressured node of the next tier up — §5.3's
	// "local node with the lowest memory pressure" on the 2-node box,
	// the tier-by-tier climb on multi-hop machines). The target is
	// resolved before the gate so a per-node gate (AutoTiering's
	// per-socket buffers) knows which buffer the promotion would consume.
	target := b.topo.PromotionTargetToward(pg.Home, pg.Node)
	if target == mem.NilNode {
		b.stat.Inc(pg.Node, vmstat.PromoteFailGlobal)
		return out
	}
	if b.cfg.PromotionGate != nil && !b.cfg.PromotionGate(target) {
		b.stat.Inc(pg.Node, vmstat.PromoteFailIsolate)
		return out
	}
	if b.topo.Degraded(target) {
		// Fault plane: the target sits in a latency-degradation window;
		// promoting onto a device currently slower than advertised would
		// pay migration cost for no gain. Back off until it recovers.
		b.stat.Inc(pg.Node, vmstat.PromoteFailLowMem)
		return out
	}
	tn := b.topo.Node(target)
	if b.cfg.IgnoreAllocWatermark {
		// §5.3: "we ignore the allocation watermark checking for the
		// target local node" — only the emergency reserve is off-limits
		// (enforced by the engine's watermark guard).
		if tn.Free() <= tn.WM.Min {
			b.stat.Inc(pg.Node, vmstat.PromoteFailLowMem)
			return out
		}
	} else if !tn.AllocOK() {
		// Classic NUMA balancing refuses when the node is low.
		b.stat.Inc(pg.Node, vmstat.PromoteFailLowMem)
		return out
	}

	cost, err := b.engine.Migrate(pfn, target, migrate.Promotion)
	if err != nil {
		// Engine counted the failure reason.
		return out
	}
	out.Promoted = true
	out.LatencyNs += cost
	if b.cfg.OnPromoted != nil {
		b.cfg.OnPromoted(target)
	}
	return out
}
