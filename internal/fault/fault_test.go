package fault

import (
	"strings"
	"testing"

	"tppsim/internal/mem"
	"tppsim/internal/tier"
	"tppsim/internal/vmstat"
)

func TestParseSpecRoundTrip(t *testing.T) {
	specs := []string{
		"offline:node=2,at=100,until=200",
		"seed=42;offline:node=1,at=600",
		"latency:node=1,at=50,until=150,mult=2.5,jitter=0.1",
		"migfail:prob=0.2,at=100,until=200,retries=5",
		"shrink:node=1,at=300,pages=1024",
		"seed=7;offline:node=2,at=10,until=20;latency:node=1,at=5,until=30,mult=3;migfail:prob=0.5,at=1;shrink:node=1,at=40,pages=16",
	}
	for _, spec := range specs {
		s, err := ParseSpec(spec)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", spec, err)
			continue
		}
		canon := s.Spec()
		s2, err := ParseSpec(canon)
		if err != nil {
			t.Errorf("ParseSpec(Spec()) of %q: %v", spec, err)
			continue
		}
		if got := s2.Spec(); got != canon {
			t.Errorf("spec %q: round trip %q != %q", spec, got, canon)
		}
	}
	// "from" is an accepted alias for "at".
	a, err := ParseSpec("offline:node=1,from=7")
	if err != nil || len(a.Events) != 1 || a.Events[0].At != 7 {
		t.Errorf("from= alias: %+v, %v", a, err)
	}
}

func TestParseSpecErrors(t *testing.T) {
	bad := []string{
		"boom:node=1,at=5",
		"offline:node",
		"offline:node=x,at=5",
		"offline:node=1,when=5",
		"seed=banana",
		"latency",
	}
	for _, spec := range bad {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q) accepted malformed input", spec)
		}
	}
}

func TestCompileDeterministicAndSorted(t *testing.T) {
	s := Schedule{Seed: 9, Events: []Event{
		{Kind: MigFailBegin, Node: -1, At: 500, Until: 600, Prob: 0.3},
		{Kind: NodeOffline, Node: 2, At: 100, Until: 400},
		{Kind: LatencyDegrade, Node: 1, At: 50, Until: 300, Mult: 2, Jitter: 0.5},
	}}
	a, b := s.Compile(), s.Compile()
	if len(a) != 6 {
		t.Fatalf("compiled to %d edges, want 6 (3 begins + 3 ends)", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("compile not deterministic: edge %d %+v != %+v", i, a[i], b[i])
		}
		if i > 0 && a[i].Tick < a[i-1].Tick {
			t.Fatalf("edges not tick-sorted: %+v after %+v", a[i], a[i-1])
		}
	}
	// Jitter resolves inside Mult*(1±Jitter) and differs across seeds.
	var lat Edge
	for _, e := range a {
		if e.Kind == LatencyDegrade {
			lat = e
		}
	}
	if lat.Arg <= 1 || lat.Arg >= 3 {
		t.Errorf("jittered multiplier %g outside (1, 3)", lat.Arg)
	}
	s2 := s
	s2.Seed = 10
	var lat2 Edge
	for _, e := range s2.Compile() {
		if e.Kind == LatencyDegrade {
			lat2 = e
		}
	}
	if lat.Arg == lat2.Arg {
		t.Error("different seeds resolved identical jitter")
	}
	// MaxRetries defaults to 3 on migfail begin edges.
	for _, e := range a {
		if e.Kind == MigFailBegin && e.MaxRetries != 3 {
			t.Errorf("migfail MaxRetries = %d, want default 3", e.MaxRetries)
		}
	}
}

func TestValidate(t *testing.T) {
	topo, err := tier.NewCXLSystem(tier.Config{LocalPages: 1024, CXLPages: 512})
	if err != nil {
		t.Fatal(err)
	}
	ok := Schedule{Events: []Event{
		{Kind: NodeOffline, Node: 1, At: 5, Until: 10},
		{Kind: MigFailBegin, Node: -1, At: 1, Prob: 0.5},
	}}
	if err := ok.Validate(topo); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
	bad := []Schedule{
		{Events: []Event{{Kind: NodeOffline, Node: 0, At: 5}}},
		{Events: []Event{{Kind: NodeOffline, Node: 5, At: 5}}},
		{Events: []Event{{Kind: NodeOnline, Node: 1, At: 5}}},
		{Events: []Event{{Kind: MigFailBegin, Prob: 0, At: 5}}},
		{Events: []Event{{Kind: LatencyDegrade, Node: 1, At: 5, Mult: 0.5}}},
		{Events: []Event{{Kind: LatencyDegrade, Node: 1, At: 5, Mult: 2, Jitter: 1}}},
		{Events: []Event{{Kind: CapacityLoss, Node: 1, At: 5, Pages: 0}}},
		{Events: []Event{{Kind: NodeOffline, Node: 1, At: 10, Until: 10}}},
	}
	for i, s := range bad {
		if err := s.Validate(topo); err == nil {
			t.Errorf("bad schedule %d accepted", i)
		}
	}
}

func TestRetrierBackoffAndExhaustion(t *testing.T) {
	stat := vmstat.NewNodeStats(2)
	// prob=1: every roll fails, so the whole backoff ladder is exercised
	// deterministically.
	r := NewRetrier(1, stat)
	r.SetWindow(1.0, 2)
	pfn, src, dst := mem.PFN(7), mem.NodeID(1), mem.NodeID(0)

	r.BeginTick(100)
	if err := r.OnMigrateAttempt(pfn, src, dst, true); err != ErrInjected {
		t.Fatalf("first attempt: %v, want ErrInjected", err)
	}
	// Backoff 1 tick: tick 100 again refuses, 101 allows a retry.
	if err := r.OnMigrateAttempt(pfn, src, dst, true); err != ErrBackoff {
		t.Fatalf("in-backoff attempt: %v, want ErrBackoff", err)
	}
	r.BeginTick(101)
	if err := r.OnMigrateAttempt(pfn, src, dst, true); err != ErrInjected {
		t.Fatalf("second attempt: %v, want ErrInjected", err)
	}
	if got := stat.GetNode(src, vmstat.MigrateRetry); got != 1 {
		t.Errorf("migrate_retry = %d, want 1", got)
	}
	// Backoff now 2 ticks (1<<1): 102 refuses, 103 allows.
	r.BeginTick(102)
	if err := r.OnMigrateAttempt(pfn, src, dst, true); err != ErrBackoff {
		t.Fatalf("second backoff: %v, want ErrBackoff", err)
	}
	r.BeginTick(103)
	if err := r.OnMigrateAttempt(pfn, src, dst, true); err != ErrExhausted {
		t.Fatalf("third attempt: %v, want ErrExhausted (maxRetries=2)", err)
	}
	if got := stat.GetNode(src, vmstat.MigrateBackoffDrop); got != 1 {
		t.Errorf("migrate_backoff_drop = %d, want 1", got)
	}
	if got := stat.GetNode(src, vmstat.MigrateRetry); got != 2 {
		t.Errorf("migrate_retry = %d, want 2", got)
	}
	// Exhaustion forgets the page: a fresh attempt restarts the ladder.
	if err := r.OnMigrateAttempt(pfn, src, dst, true); err != ErrInjected {
		t.Fatalf("post-exhaustion attempt: %v, want ErrInjected", err)
	}

	// Closed window: no interference at all.
	r.ClearWindow()
	if err := r.OnMigrateAttempt(pfn, src, dst, true); err != nil {
		t.Fatalf("closed window attempt: %v, want nil", err)
	}

	// Success clears backoff state.
	r.SetWindow(0, 3) // prob 0: every roll succeeds
	r.BeginTick(200)
	if err := r.OnMigrateAttempt(pfn, src, dst, true); err != nil {
		t.Fatalf("prob-0 attempt: %v", err)
	}
	r.OnMigrateSuccess(pfn)
}

func TestInvariantChecker(t *testing.T) {
	topo, err := tier.NewCXLSystem(tier.Config{LocalPages: 64, CXLPages: 32})
	if err != nil {
		t.Fatal(err)
	}
	store := mem.NewStore(int(topo.TotalCapacity()))
	stat := vmstat.NewNodeStats(topo.NumNodes())
	c := NewInvariantChecker(topo, store, stat)
	if err := c.Check(); err != nil {
		t.Fatalf("empty machine: %v", err)
	}
	// Allocate one page on node 1, consistently.
	store.Alloc(mem.Anon, 1)
	topo.Node(1).Acquire(mem.Anon)
	if err := c.Check(); err != nil {
		t.Fatalf("consistent machine: %v", err)
	}
	// Offline the node while it still holds the page: violation.
	topo.SetOffline(1, true)
	if err := c.Check(); err == nil || !strings.Contains(err.Error(), "offline") {
		t.Errorf("offline node with resident page: err = %v", err)
	}
	topo.SetOffline(1, false)
	// Unbalance the node counts vs the store: violation.
	topo.Node(1).Acquire(mem.Anon)
	if err := c.Check(); err == nil || !strings.Contains(err.Error(), "diverged") {
		t.Errorf("page-count divergence: err = %v", err)
	}
}
