package fault

import (
	"errors"

	"tppsim/internal/mem"
	"tppsim/internal/vmstat"
	"tppsim/internal/xrand"
)

// Injected-failure errors returned through migrate.Engine.Migrate. The
// engine has already charged the pgmigrate_fail-family counters when a
// caller sees one of these; callers treat them like ErrBusy/ErrRefs —
// transient, page-specific, not a reason to advance the cascade.
var (
	// ErrInjected is a transient injected migration failure; the page
	// enters exponential backoff.
	ErrInjected = errors.New("fault: injected transient migration failure")
	// ErrBackoff refuses an attempt on a page still inside its backoff
	// window.
	ErrBackoff = errors.New("fault: page in migration backoff")
	// ErrExhausted drops a page that failed MaxRetries re-attempts.
	ErrExhausted = errors.New("fault: migration retries exhausted")
)

// retryState tracks one page's failed migration attempts.
type retryState struct {
	fails int    // consecutive injected failures
	next  uint64 // first tick a re-attempt is allowed
}

// Retrier implements the migrate.FaultHook contract: during a MigFail
// window every migration attempt fails with probability prob, and a
// failed page backs off exponentially (1, 2, 4, ... ticks) for at most
// maxRetries re-attempts before being dropped from migration. Rolls
// come from the fault plane's own RNG (seeded from Schedule.Seed), so
// windows never perturb the machine's random streams. Outside a
// window the hook is a single branch.
type Retrier struct {
	stat *vmstat.NodeStats
	rng  *xrand.RNG
	tick uint64

	active     bool
	prob       float64
	maxRetries int
	state      map[mem.PFN]retryState
}

// NewRetrier returns a detached retrier; the simulator attaches it to
// the migration engine via SetFaultHook when a schedule is present.
func NewRetrier(seed uint64, stat *vmstat.NodeStats) *Retrier {
	return &Retrier{stat: stat, rng: xrand.New(seed ^ 0x6d1672), state: make(map[mem.PFN]retryState)}
}

// BeginTick advances the retrier's clock.
func (r *Retrier) BeginTick(tick uint64) { r.tick = tick }

// SetWindow opens a migration-failure window.
func (r *Retrier) SetWindow(prob float64, maxRetries int) {
	r.active, r.prob, r.maxRetries = true, prob, maxRetries
}

// ClearWindow closes the window and forgets all backoff state.
func (r *Retrier) ClearWindow() {
	r.active = false
	clearMap(r.state)
}

// Active reports whether a failure window is open.
func (r *Retrier) Active() bool { return r.active }

// OnMigrateAttempt is consulted by the engine once per isolated page.
// A non-nil return fails the attempt; the engine putbacks the page and
// charges pgmigrate_fail (plus the reason-specific counters) to src.
func (r *Retrier) OnMigrateAttempt(pfn mem.PFN, src, dest mem.NodeID, promotion bool) error {
	if !r.active {
		return nil
	}
	st, seen := r.state[pfn]
	if seen {
		if r.tick < st.next {
			return ErrBackoff
		}
		// Backoff expired: this attempt is a counted retry.
		r.stat.Inc(src, vmstat.MigrateRetry)
	}
	if r.rng.Float64() < r.prob {
		st.fails++
		if st.fails > r.maxRetries {
			delete(r.state, pfn)
			r.stat.Inc(src, vmstat.MigrateBackoffDrop)
			return ErrExhausted
		}
		st.next = r.tick + 1<<uint(st.fails-1)
		r.state[pfn] = st
		return ErrInjected
	}
	if seen {
		delete(r.state, pfn)
	}
	return nil
}

// OnMigrateSuccess clears any backoff state for a page that moved
// (also covers pages freed and re-allocated under a new identity only
// if they migrate; ClearWindow bounds staleness to one window).
func (r *Retrier) OnMigrateSuccess(pfn mem.PFN) {
	if len(r.state) != 0 {
		delete(r.state, pfn)
	}
}

func clearMap(m map[mem.PFN]retryState) {
	for k := range m {
		delete(m, k)
	}
}
