// Package fault is the deterministic fault-injection plane. A Schedule
// is a tick-indexed, seedable list of failure events — node
// offline/online (CXL hotplug / link-down), latency-degradation
// windows, transient migration failures with bounded retry+backoff,
// and capacity loss — that the simulator applies at exact ticks. The
// plane owns its own RNG streams (seeded from Schedule.Seed, never the
// machine's), so an empty schedule leaves a run bit-identical to a
// machine built without the plane, and a fixed seed plus a fixed
// schedule reproduces identical faulted runs, including through trace
// record/replay.
//
// The package deliberately knows nothing about the sim package: it
// exposes the schedule model (Schedule/Event/Edge), the migration
// retry/backoff hook (Retrier, which implements migrate.FaultHook
// structurally), the per-tick InvariantChecker, and the Occurrence log
// entries that surface in metrics.Run.FaultLog. Applying edges to a
// live machine — evacuation, watermark rebuilds, latency-matrix
// refresh — is the simulator's job.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"tppsim/internal/mem"
	"tppsim/internal/tier"
	"tppsim/internal/xrand"
)

// Kind identifies a fault event class.
type Kind uint8

const (
	// NodeOffline takes a CXL node out of the machine: resident pages
	// are emergency-evacuated along the (health-filtered) cascade and
	// the node is excluded from allocation, demotion, and promotion
	// until its paired NodeOnline edge (Event.Until), if any.
	NodeOffline Kind = iota
	// NodeOnline returns an offline node to service. Emitted as the
	// closing edge of a NodeOffline window.
	NodeOnline
	// LatencyDegrade multiplies a node's access latency by
	// Mult*(1±Jitter) for the window [At, Until). Policies treat the
	// node as degraded: promotions into it back off.
	LatencyDegrade
	// LatencyRestore closes a LatencyDegrade window.
	LatencyRestore
	// MigFailBegin opens a machine-wide window in which every
	// migration attempt fails with probability Prob, with per-page
	// exponential backoff and at most MaxRetries re-attempts.
	MigFailBegin
	// MigFailEnd closes a MigFailBegin window.
	MigFailEnd
	// CapacityLoss shrinks a node by Pages pages at tick At; overage
	// is evacuated and the node's watermarks are rebuilt.
	CapacityLoss

	numKinds
)

// String names the kind as it appears in specs and fault timelines.
func (k Kind) String() string {
	switch k {
	case NodeOffline:
		return "offline"
	case NodeOnline:
		return "online"
	case LatencyDegrade:
		return "latency"
	case LatencyRestore:
		return "latency-restore"
	case MigFailBegin:
		return "migfail"
	case MigFailEnd:
		return "migfail-end"
	case CapacityLoss:
		return "shrink"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one scheduled fault. Only the fields relevant to its Kind
// are meaningful; user-facing schedules use the window kinds
// (NodeOffline, LatencyDegrade, MigFailBegin, CapacityLoss) — the
// closing kinds are produced by Compile.
type Event struct {
	Kind Kind
	// Node is the target node. -1 for machine-wide events (MigFail).
	Node int
	// At is the tick the fault begins.
	At uint64
	// Until is the tick the fault ends (exclusive). 0 means the fault
	// holds for the rest of the run (offline/latency/migfail).
	Until uint64
	// Mult is the latency multiplier (LatencyDegrade; > 1).
	Mult float64
	// Jitter spreads the effective multiplier uniformly over
	// Mult*(1±Jitter), resolved deterministically from Schedule.Seed.
	Jitter float64
	// Prob is the per-attempt migration failure probability (MigFail).
	Prob float64
	// MaxRetries bounds re-attempts per page before the page is
	// dropped from migration (MigFail; default 3 when 0).
	MaxRetries int
	// Pages is the capacity removed (CapacityLoss).
	Pages uint64
}

// Schedule is a composable, seedable fault plan. The zero value is the
// empty schedule: no faults, no plane, bit-identical runs.
type Schedule struct {
	// Seed drives every fault-plane random draw (jitter resolution,
	// migration-failure rolls). Independent of the machine seed.
	Seed uint64
	// Events in any order; Compile sorts them into tick order.
	Events []Event
}

// Empty reports whether the schedule injects nothing.
func (s Schedule) Empty() bool { return len(s.Events) == 0 }

// Validate checks the schedule against a built topology. Offline
// events are restricted to CXL nodes: node 0 (and any KindLocal node)
// anchors CPU placement and the promotion top tier, so hot-removing it
// is not a scenario the machine models.
func (s Schedule) Validate(topo *tier.Topology) error {
	for i, e := range s.Events {
		switch e.Kind {
		case NodeOffline, LatencyDegrade, CapacityLoss:
		case MigFailBegin:
			if e.Prob <= 0 || e.Prob > 1 {
				return fmt.Errorf("fault: event %d: migfail prob %g outside (0, 1]", i, e.Prob)
			}
			continue // machine-wide: no node checks
		default:
			return fmt.Errorf("fault: event %d: kind %s is not schedulable (closing edges are derived)", i, e.Kind)
		}
		if e.Node < 0 || e.Node >= topo.NumNodes() {
			return fmt.Errorf("fault: event %d: node %d outside topology (%d nodes)", i, e.Node, topo.NumNodes())
		}
		if e.Until != 0 && e.Until <= e.At {
			return fmt.Errorf("fault: event %d: window [%d, %d) is empty", i, e.At, e.Until)
		}
		switch e.Kind {
		case NodeOffline:
			if topo.Node(mem.NodeID(e.Node)).Kind != mem.KindCXL {
				return fmt.Errorf("fault: event %d: node %d is not a CXL node; only CXL devices can go offline", i, e.Node)
			}
		case LatencyDegrade:
			if e.Mult <= 1 {
				return fmt.Errorf("fault: event %d: latency multiplier %g must exceed 1", i, e.Mult)
			}
			if e.Jitter < 0 || e.Jitter >= 1 {
				return fmt.Errorf("fault: event %d: jitter %g outside [0, 1)", i, e.Jitter)
			}
		case CapacityLoss:
			if e.Pages == 0 {
				return fmt.Errorf("fault: event %d: capacity loss of 0 pages", i)
			}
		}
	}
	return nil
}

// Edge is one applied transition: a window event expands to a begin
// edge and (when bounded) an end edge. Edges are what the simulator
// applies at tick boundaries and what trace v6 records.
type Edge struct {
	Tick uint64
	Kind Kind
	Node int
	// Arg carries the kind's scalar: effective latency multiplier
	// (jitter already resolved) or migration failure probability.
	Arg        float64
	MaxRetries int
	Pages      uint64
}

// Compile expands the schedule into a tick-sorted edge list. Jitter is
// resolved here from Schedule.Seed, so the same schedule always
// compiles to the same edges — on a live run and again on replay.
func (s Schedule) Compile() []Edge {
	if s.Empty() {
		return nil
	}
	rng := xrand.New(s.Seed ^ 0xfa171)
	edges := make([]Edge, 0, 2*len(s.Events))
	for _, e := range s.Events {
		switch e.Kind {
		case NodeOffline:
			edges = append(edges, Edge{Tick: e.At, Kind: NodeOffline, Node: e.Node})
			if e.Until != 0 {
				edges = append(edges, Edge{Tick: e.Until, Kind: NodeOnline, Node: e.Node})
			}
		case LatencyDegrade:
			eff := e.Mult
			if e.Jitter > 0 {
				eff *= 1 + e.Jitter*(2*rng.Float64()-1)
			}
			edges = append(edges, Edge{Tick: e.At, Kind: LatencyDegrade, Node: e.Node, Arg: eff})
			if e.Until != 0 {
				edges = append(edges, Edge{Tick: e.Until, Kind: LatencyRestore, Node: e.Node, Arg: 1})
			}
		case MigFailBegin:
			retries := e.MaxRetries
			if retries == 0 {
				retries = 3
			}
			edges = append(edges, Edge{Tick: e.At, Kind: MigFailBegin, Node: -1, Arg: e.Prob, MaxRetries: retries})
			if e.Until != 0 {
				edges = append(edges, Edge{Tick: e.Until, Kind: MigFailEnd, Node: -1})
			}
		case CapacityLoss:
			edges = append(edges, Edge{Tick: e.At, Kind: CapacityLoss, Node: e.Node, Pages: e.Pages})
		}
	}
	sort.SliceStable(edges, func(i, j int) bool { return edges[i].Tick < edges[j].Tick })
	return edges
}

// ParseSpec parses the -faults command-line syntax: semicolon-separated
// clauses, each "kind:key=value,key=value" (or the bare "seed=N"):
//
//	offline:node=2,at=100[,until=200]
//	latency:node=1,at=50,until=150,mult=2.0[,jitter=0.1]
//	migfail:prob=0.2,at=100[,until=200][,retries=3]
//	shrink:node=1,at=300,pages=1024
//	seed=42
//
// Schedule.Spec renders the canonical form back; ParseSpec(s.Spec())
// round-trips.
func ParseSpec(spec string) (Schedule, error) {
	var s Schedule
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		if v, ok := strings.CutPrefix(clause, "seed="); ok {
			seed, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return Schedule{}, fmt.Errorf("fault: bad seed %q", v)
			}
			s.Seed = seed
			continue
		}
		name, rest, ok := strings.Cut(clause, ":")
		if !ok {
			return Schedule{}, fmt.Errorf("fault: clause %q has no kind (want kind:k=v,...)", clause)
		}
		var e Event
		switch name {
		case "offline":
			e.Kind = NodeOffline
		case "latency":
			e.Kind = LatencyDegrade
		case "migfail":
			e.Kind = MigFailBegin
			e.Node = -1
		case "shrink":
			e.Kind = CapacityLoss
		default:
			return Schedule{}, fmt.Errorf("fault: unknown clause kind %q (want offline/latency/migfail/shrink)", name)
		}
		for _, kv := range strings.Split(rest, ",") {
			k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				return Schedule{}, fmt.Errorf("fault: clause %q: %q is not key=value", clause, kv)
			}
			var err error
			switch k {
			case "node":
				e.Node, err = strconv.Atoi(v)
			case "at", "from":
				e.At, err = strconv.ParseUint(v, 10, 64)
			case "until":
				e.Until, err = strconv.ParseUint(v, 10, 64)
			case "mult":
				e.Mult, err = strconv.ParseFloat(v, 64)
			case "jitter":
				e.Jitter, err = strconv.ParseFloat(v, 64)
			case "prob":
				e.Prob, err = strconv.ParseFloat(v, 64)
			case "retries":
				e.MaxRetries, err = strconv.Atoi(v)
			case "pages":
				e.Pages, err = strconv.ParseUint(v, 10, 64)
			default:
				return Schedule{}, fmt.Errorf("fault: clause %q: unknown key %q", clause, k)
			}
			if err != nil {
				return Schedule{}, fmt.Errorf("fault: clause %q: bad value for %s: %v", clause, k, err)
			}
		}
		s.Events = append(s.Events, e)
	}
	return s, nil
}

// Spec renders the schedule in the canonical ParseSpec syntax.
func (s Schedule) Spec() string {
	var parts []string
	if s.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", s.Seed))
	}
	for _, e := range s.Events {
		var b strings.Builder
		switch e.Kind {
		case NodeOffline:
			fmt.Fprintf(&b, "offline:node=%d,at=%d", e.Node, e.At)
		case LatencyDegrade:
			fmt.Fprintf(&b, "latency:node=%d,at=%d", e.Node, e.At)
		case MigFailBegin:
			fmt.Fprintf(&b, "migfail:prob=%g,at=%d", e.Prob, e.At)
		case CapacityLoss:
			fmt.Fprintf(&b, "shrink:node=%d,at=%d,pages=%d", e.Node, e.At, e.Pages)
		default:
			continue
		}
		if e.Until != 0 {
			fmt.Fprintf(&b, ",until=%d", e.Until)
		}
		if e.Kind == LatencyDegrade {
			fmt.Fprintf(&b, ",mult=%g", e.Mult)
			if e.Jitter != 0 {
				fmt.Fprintf(&b, ",jitter=%g", e.Jitter)
			}
		}
		if e.Kind == MigFailBegin && e.MaxRetries != 0 {
			fmt.Fprintf(&b, ",retries=%d", e.MaxRetries)
		}
		parts = append(parts, b.String())
	}
	return strings.Join(parts, ";")
}

// Occurrence is one applied fault edge, as surfaced in
// metrics.Run.FaultLog and report.FaultTimeline.
type Occurrence struct {
	Tick uint64
	Kind Kind
	// Node is -1 for machine-wide events.
	Node int
	// Detail is a human-readable summary of what the machine did
	// ("evacuated 812 pages (37 evicted)", "latency x2.13", ...).
	Detail string
}

// String renders the occurrence as one timeline line.
func (o Occurrence) String() string {
	where := "machine"
	if o.Node >= 0 {
		where = fmt.Sprintf("node %d", o.Node)
	}
	if o.Detail == "" {
		return fmt.Sprintf("tick %d: %s %s", o.Tick, where, o.Kind)
	}
	return fmt.Sprintf("tick %d: %s %s — %s", o.Tick, where, o.Kind, o.Detail)
}
