package fault

import (
	"fmt"

	"tppsim/internal/mem"
	"tppsim/internal/tier"
	"tppsim/internal/vmstat"
)

// InvariantChecker validates conservation invariants after every tick
// of a faulted run, turning silent corruption (a page leaked during
// evacuation, a counter charged to no node) into a loud failure:
//
//   - page conservation: sum of per-node resident pages == live pages
//     in the store;
//   - offline emptiness: no page resident on an offline node;
//   - attribution: the global vmstat snapshot equals the sum of the
//     per-node snapshots.
type InvariantChecker struct {
	topo  *tier.Topology
	store *mem.Store
	stat  *vmstat.NodeStats
	// framePages is the base pages per store PFN (1 normally,
	// mem.HugeFramePages in huge-page mode); node residency is in base
	// pages, so conservation is resident == live frames * framePages.
	framePages uint64
}

// NewInvariantChecker wires a checker over a machine's state planes.
func NewInvariantChecker(topo *tier.Topology, store *mem.Store, stat *vmstat.NodeStats) *InvariantChecker {
	return &InvariantChecker{topo: topo, store: store, stat: stat, framePages: 1}
}

// SetFramePages sets the base pages each store PFN covers.
func (c *InvariantChecker) SetFramePages(fp uint64) { c.framePages = fp }

// Check returns the first violated invariant, or nil.
func (c *InvariantChecker) Check() error {
	var resident uint64
	for _, n := range c.topo.Nodes() {
		resident += n.Resident()
		if !c.topo.Online(n.ID) && n.Resident() != 0 {
			return fmt.Errorf("fault: node %d is offline but holds %d resident pages", n.ID, n.Resident())
		}
	}
	if live := uint64(c.store.Live()) * c.framePages; resident != live {
		return fmt.Errorf("fault: page counts diverged: nodes hold %d resident, store has %d live", resident, live)
	}
	var sum vmstat.Snapshot
	for n := 0; n < c.stat.NumNodes(); n++ {
		ns := c.stat.NodeSnapshot(mem.NodeID(n))
		for i, v := range ns {
			sum[i] += v
		}
	}
	if global := c.stat.Snapshot(); sum != global {
		for i := range sum {
			if sum[i] != global[i] {
				return fmt.Errorf("fault: counter %s: per-node sum %d != global %d",
					vmstat.Counter(i), sum[i], global[i])
			}
		}
	}
	return nil
}
