package tracker

import (
	"tppsim/internal/mem"
	"tppsim/internal/vmstat"
	"tppsim/internal/xrand"
)

// damonRegion is one monitored PFN region [start, end): nr counts the
// samples that found its accessed bit set out of chances taken this
// aggregation window, so nr/chances estimates the fraction of the
// region touched.
type damonRegion struct {
	start, end  int
	nr, chances uint32
}

func (r damonRegion) pages() int { return r.end - r.start }

func (r damonRegion) density() float64 {
	if r.chances == 0 {
		return 0
	}
	return float64(r.nr) / float64(r.chances)
}

// damon is the region-sampling tracker: instead of scanning every
// page, it spends a fixed per-tick budget sampling one random page per
// region and lets the region boundaries adapt — regions whose halves
// behave alike merge, and the freed budget splits regions elsewhere so
// hot/cold boundaries sharpen where they matter. Overhead is constant
// in memory size (the mechanism's selling point); accuracy rides on
// how well regions track the working set, which the split/merge
// counters and the oracle expose.
type damon struct {
	cfg Config

	env     Env
	bits    *AccessBits
	rng     *xrand.RNG
	regions []damonRegion
	scratch []damonRegion
	cursor  int // round-robin sampling cursor
	lastAgg uint64
	started bool
}

func newDamon(cfg Config) *damon {
	return &damon{cfg: cfg.WithDefaults()}
}

// Name returns the registry kind.
func (d *damon) Name() string { return "damon" }

// Start carves the PFN space into an initial set of equal regions (a
// quarter of the budget; splits grow it toward the budget as samples
// arrive) and seeds the tracker-private RNG.
func (d *damon) Start(env Env) error {
	d.env = env
	d.bits = env.Bits
	if d.bits == nil {
		d.bits = NewAccessBits(env.pfnSpace(), 1)
	}
	seed := d.cfg.Seed
	if seed == 0 {
		seed = env.Seed
	}
	if seed == 0 {
		seed = 1
	}
	d.rng = xrand.New(seed)

	total := env.pfnSpace()
	initial := d.cfg.RegionBudget / 4
	if initial < 2 {
		initial = 2
	}
	if initial > total {
		initial = total
	}
	d.regions = make([]damonRegion, 0, d.cfg.RegionBudget+1)
	d.scratch = make([]damonRegion, 0, d.cfg.RegionBudget+1)
	for i := 0; i < initial; i++ {
		start := total * i / initial
		end := total * (i + 1) / initial
		if end > start {
			d.regions = append(d.regions, damonRegion{start: start, end: end})
		}
	}
	d.started = true
	return nil
}

// Stop releases the tracker.
func (d *damon) Stop() { d.started = false }

// OnAccess marks the page accessed (the PTE young bit the samples
// harvest).
func (d *damon) OnAccess(pfn mem.PFN, pg *mem.Page) { d.bits.Set(pfn) }

// Tick spends the sampling budget every tick and, on aggregation
// boundaries, folds region densities into the heatmap and adapts the
// region set.
func (d *damon) Tick(tick uint64, hm *Heatmap) bool {
	if !d.started {
		return false
	}
	d.sample()
	if tick-d.lastAgg < d.cfg.ScanEveryTicks {
		return false
	}
	d.lastAgg = tick
	d.aggregate(hm)
	return true
}

// sample checks one random page in each of SamplesPerTick regions
// (round-robin), harvesting and clearing its accessed bit. Regions
// span the whole capacity PFN space; samples landing past the store's
// allocation high-water mark or on freed pages still spend budget
// (the region genuinely was probed) but have no resident node to
// charge the check to.
func (d *damon) sample() {
	if len(d.regions) == 0 {
		return
	}
	store, stat := d.env.Store, d.env.Stat
	live := store.Len()
	for i := 0; i < d.cfg.SamplesPerTick; i++ {
		d.cursor++
		if d.cursor >= len(d.regions) {
			d.cursor = 0
		}
		r := &d.regions[d.cursor]
		pfn := mem.PFN(r.start + int(d.rng.Uint64n(uint64(r.pages()))))
		r.chances++
		if d.bits.TestClear(pfn) {
			r.nr++
		}
		if int(pfn) >= live {
			continue
		}
		if node := store.Page(pfn).Node; node != mem.NilNode {
			stat.Inc(node, vmstat.TrackerPagesScanned)
		}
	}
}

// aggregate folds each region's sampled density into the heatmap as an
// estimated touched-page count, then merges similar neighbors and
// splits regions back up toward the budget.
func (d *damon) aggregate(hm *Heatmap) {
	if hm != nil {
		hm.BeginWindow(float64(d.cfg.ScanEveryTicks))
		for _, r := range d.regions {
			dens := r.density()
			if dens == 0 {
				continue
			}
			for ri := hm.RangeOf(mem.PFN(r.start)); ri <= hm.RangeOf(mem.PFN(r.end-1)); ri++ {
				rs, re := hm.RangeSpan(ri)
				lo, hi := max(rs, r.start), min(re, r.end)
				if hi > lo {
					hm.Add(ri, dens*float64(hi-lo))
				}
			}
		}
	}
	d.merge()
	d.split()
	for i := range d.regions {
		d.regions[i].nr, d.regions[i].chances = 0, 0
	}
}

// merge joins adjacent regions whose sampled densities differ by at
// most mergeEps, capped so one region never swallows more than four
// budget-shares of the PFN space.
func (d *damon) merge() {
	const mergeEps = 0.10
	maxPages := 4 * d.env.pfnSpace() / d.cfg.RegionBudget
	if maxPages < 2 {
		maxPages = 2
	}
	out := d.scratch[:0]
	for _, r := range d.regions {
		if n := len(out); n > 0 {
			prev := &out[n-1]
			diff := prev.density() - r.density()
			if diff < 0 {
				diff = -diff
			}
			if diff <= mergeEps && prev.pages()+r.pages() <= maxPages {
				prev.end = r.end
				prev.nr += r.nr
				prev.chances += r.chances
				d.countAdapt(prev.start, vmstat.TrackerRegionsMerged)
				continue
			}
		}
		out = append(out, r)
	}
	d.regions, d.scratch = out, d.regions[:0]
}

// countAdapt charges a split/merge event to the region's first resident
// page's node; regions starting past the allocation mark or on a freed
// page charge node 0 (the event still happened on this machine).
func (d *damon) countAdapt(start int, c vmstat.Counter) {
	node := mem.NodeID(0)
	if start < d.env.Store.Len() {
		if n := d.env.Store.Page(mem.PFN(start)).Node; n != mem.NilNode {
			node = n
		}
	}
	d.env.Stat.Inc(node, c)
}

// split halves regions (at a random interior point, density carried to
// both halves) until the region count reaches the budget, one pass per
// aggregation.
func (d *damon) split() {
	out := d.scratch[:0]
	budget := d.cfg.RegionBudget
	grow := budget - len(d.regions)
	for _, r := range d.regions {
		if grow > 0 && r.pages() >= 2 {
			at := r.start + 1 + int(d.rng.Uint64n(uint64(r.pages()-1)))
			left := damonRegion{start: r.start, end: at, nr: r.nr / 2, chances: r.chances / 2}
			right := damonRegion{start: at, end: r.end, nr: r.nr - r.nr/2, chances: r.chances - r.chances/2}
			out = append(out, left, right)
			grow--
			d.countAdapt(r.start, vmstat.TrackerRegionsSplit)
			continue
		}
		out = append(out, r)
	}
	d.regions, d.scratch = out, d.regions[:0]
}
