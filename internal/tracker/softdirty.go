package tracker

// softdirty is the write-only member of the scan-and-clear family (see
// bitTracker in idlepage.go): it shares the bitmap-and-scan machinery
// but its OnAccess only marks pages the workload has dirtied, modeling
// /proc/pid/clear_refs soft-dirty tracking. The blind spot is the
// point: a hot set that is only ever read — clean file pages, anon
// pages that are never written — produces no signal at all, which the
// accuracy oracle makes measurable (near-zero recall on read-heavy
// workloads where idlepage scores high).
//
// NewSoftDirty returns a standalone softdirty tracker; the registry
// normally builds it via New(Config{Kind: "softdirty"}).
func NewSoftDirty(cfg Config) Tracker {
	cfg.Kind = "softdirty"
	return newBitTracker("softdirty", cfg, true)
}

// NewIdlePage returns a standalone idlepage tracker.
func NewIdlePage(cfg Config) Tracker {
	cfg.Kind = "idlepage"
	return newBitTracker("idlepage", cfg, false)
}
