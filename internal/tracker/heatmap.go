package tracker

import (
	"math"

	"tppsim/internal/mem"
)

// AccessBits is the shared accessed-bit substrate: one bit per tracking
// granule of the PFN space, set on access, cleared by whoever harvests
// it (the bit trackers' scans, damon's samples). It models the hardware
// PTE young/dirty bits every real tracker ultimately reads. Granule
// must be a power of two; the PFN space is fixed, so the bitmap is too.
type AccessBits struct {
	words    []uint64
	granule  int
	shift    uint
	granules int
}

// NewAccessBits sizes a bitmap for totalPFNs pages at the given granule.
func NewAccessBits(totalPFNs, granule int) *AccessBits {
	shift := uint(0)
	for 1<<shift < granule {
		shift++
	}
	granules := (totalPFNs + granule - 1) / granule
	return &AccessBits{
		words:    make([]uint64, (granules+63)/64),
		granule:  granule,
		shift:    shift,
		granules: granules,
	}
}

// Granule returns the granule size in pages.
func (b *AccessBits) Granule() int { return b.granule }

// NumGranules returns the number of tracked granules.
func (b *AccessBits) NumGranules() int { return b.granules }

// Set marks pfn's granule accessed.
func (b *AccessBits) Set(pfn mem.PFN) {
	i := uint32(pfn) >> b.shift
	b.words[i>>6] |= 1 << (i & 63)
}

// Test reports whether pfn's granule is marked.
func (b *AccessBits) Test(pfn mem.PFN) bool {
	i := uint32(pfn) >> b.shift
	return b.words[i>>6]&(1<<(i&63)) != 0
}

// TestClear reads and clears pfn's granule, returning its state.
func (b *AccessBits) TestClear(pfn mem.PFN) bool {
	return b.TestClearGranule(int(uint32(pfn) >> b.shift))
}

// TestClearGranule reads and clears granule gi, returning its state.
func (b *AccessBits) TestClearGranule(gi int) bool {
	mask := uint64(1) << (uint(gi) & 63)
	set := b.words[gi>>6]&mask != 0
	b.words[gi>>6] &^= mask
	return set
}

// Heatmap aggregates tracker observations into per-PFN-range heat. Heat
// is an exponentially-weighted moving average of the fraction-of-range
// touched per scan window, scaled by range size: a range's heat sits in
// [0, rangePages], and heat/rangePages is the per-page touch likelihood
// the policy classifies on. The EWMA factor comes from the configured
// half-life, applied once per window at fold time — between folds the
// map is immutable, so reads are race-free against the hot path.
type Heatmap struct {
	rangePages int
	rangeShift uint
	halflife   float64
	heat       []float64
	totalPFNs  int

	// decay/gain for the current window, set by BeginWindow.
	gain float64
}

// NewHeatmap sizes a heatmap for totalPFNs pages with the given range
// size (a power of two) and decay half-life in ticks.
func NewHeatmap(totalPFNs, rangePages int, halflifeTicks float64) *Heatmap {
	shift := uint(0)
	for 1<<shift < rangePages {
		shift++
	}
	n := (totalPFNs + rangePages - 1) / rangePages
	return &Heatmap{
		rangePages: rangePages,
		rangeShift: shift,
		halflife:   halflifeTicks,
		heat:       make([]float64, n),
		totalPFNs:  totalPFNs,
	}
}

// NumRanges returns the number of heat ranges.
func (h *Heatmap) NumRanges() int { return len(h.heat) }

// RangePages returns the range size in pages.
func (h *Heatmap) RangePages() int { return h.rangePages }

// RangeOf returns the range index covering pfn.
func (h *Heatmap) RangeOf(pfn mem.PFN) int { return int(uint32(pfn) >> h.rangeShift) }

// RangeSpan returns the PFN bounds [start, end) of range r; the last
// range may be short.
func (h *Heatmap) RangeSpan(r int) (start, end int) {
	start = r << h.rangeShift
	end = start + h.rangePages
	if end > h.totalPFNs {
		end = h.totalPFNs
	}
	return start, end
}

// BeginWindow opens a fold window spanning windowTicks: existing heat
// decays by the half-life factor and subsequent Add calls carry the
// complementary EWMA gain, keeping heat in touched-pages units.
func (h *Heatmap) BeginWindow(windowTicks float64) {
	d := math.Pow(0.5, windowTicks/h.halflife)
	for i := range h.heat {
		h.heat[i] *= d
	}
	h.gain = 1 - d
}

// Add folds touchedPages observed this window into range r.
func (h *Heatmap) Add(r int, touchedPages float64) {
	h.heat[r] += h.gain * touchedPages
}

// Heat returns range r's heat in touched-pages units.
func (h *Heatmap) Heat(r int) float64 { return h.heat[r] }

// HeatPerPage returns range r's per-page heat in [0, ~1].
func (h *Heatmap) HeatPerPage(r int) float64 {
	s, e := h.RangeSpan(r)
	if e <= s {
		return 0
	}
	return h.heat[r] / float64(e-s)
}

// Heats returns the live heat slice (read-only for callers).
func (h *Heatmap) Heats() []float64 { return h.heat }

// HeatForecaster transforms the heatmap's per-range heat before the
// policy classifies it; forecasters chain, each reading the previous
// output. dst and cur have NumRanges elements.
type HeatForecaster interface {
	Forecast(dst, cur []float64)
}

// TrendForecaster extrapolates each range's heat one window ahead from
// its last delta — the simplest useful forecaster: a range that is
// heating classifies hot a window early, one that is cooling drops out
// early, at the cost of overshoot on noisy ranges.
type TrendForecaster struct {
	prev []float64
}

// NewTrendForecaster returns a trend forecaster for n ranges.
func NewTrendForecaster(n int) *TrendForecaster {
	return &TrendForecaster{prev: make([]float64, n)}
}

// Forecast writes cur + (cur - prev) into dst, clamped at zero, and
// remembers cur for the next window.
func (f *TrendForecaster) Forecast(dst, cur []float64) {
	for i, c := range cur {
		v := c + (c - f.prev[i])
		if v < 0 {
			v = 0
		}
		dst[i] = v
		f.prev[i] = c
	}
}
