package tracker

import (
	"math"
	"reflect"
	"sync"
	"testing"

	"tppsim/internal/lru"
	"tppsim/internal/mem"
	"tppsim/internal/migrate"
	"tppsim/internal/tier"
	"tppsim/internal/vmstat"
	"tppsim/internal/xrand"
)

// fixture is a hand-built two-node machine (local + CXL) for driving
// trackers and the mover outside the simulator.
type fixture struct {
	store *mem.Store
	topo  *tier.Topology
	vecs  []*lru.Vec
	stat  *vmstat.NodeStats
	env   Env
}

func newFixture(t *testing.T, localPages, cxlPages uint64, withEngine bool) *fixture {
	t.Helper()
	topo, err := tier.NewCXLSystem(tier.Config{LocalPages: localPages, CXLPages: cxlPages})
	if err != nil {
		t.Fatal(err)
	}
	store := mem.NewStore(int(localPages + cxlPages))
	vecs := []*lru.Vec{lru.NewVec(store), lru.NewVec(store)}
	stat := vmstat.NewNodeStats(topo.NumNodes())
	f := &fixture{
		store: store,
		topo:  topo,
		vecs:  vecs,
		stat:  stat,
		env:   Env{Store: store, Topo: topo, Stat: stat, Seed: 1},
	}
	if withEngine {
		f.env.Engine = migrate.NewEngine(migrate.Config{RefsFailProb: -1}, store, topo, vecs, stat, xrand.New(1))
	}
	return f
}

// allocOn places count fresh pages of type pt on node id, on the LRU,
// returning the first PFN.
func (f *fixture) allocOn(t *testing.T, id mem.NodeID, pt mem.PageType, count int) mem.PFN {
	t.Helper()
	first := mem.PFN(0)
	for i := 0; i < count; i++ {
		if !f.topo.Node(id).Acquire(pt) {
			t.Fatal("node full in fixture")
		}
		pfn := f.store.Alloc(pt, id)
		f.vecs[id].Add(pfn, false)
		if i == 0 {
			first = pfn
		}
	}
	return first
}

func TestAccessBits(t *testing.T) {
	b := NewAccessBits(200, 1)
	if b.NumGranules() != 200 || b.Granule() != 1 {
		t.Fatalf("granules=%d granule=%d", b.NumGranules(), b.Granule())
	}
	b.Set(7)
	if !b.Test(7) || b.Test(8) {
		t.Fatal("Set/Test wrong")
	}
	if !b.TestClear(7) || b.Test(7) || b.TestClear(7) {
		t.Fatal("TestClear wrong")
	}

	// Granule 4: PFNs 0..3 share granule 0; 200 pages round up to 50.
	b = NewAccessBits(200, 4)
	if b.NumGranules() != 50 {
		t.Fatalf("granules=%d, want 50", b.NumGranules())
	}
	b.Set(3)
	if !b.Test(0) || !b.Test(3) || b.Test(4) {
		t.Fatal("granule sharing wrong")
	}
	if !b.TestClearGranule(0) || b.Test(0) {
		t.Fatal("TestClearGranule wrong")
	}

	// Rounding: 201 pages at granule 4 needs 51 granules.
	if g := NewAccessBits(201, 4).NumGranules(); g != 51 {
		t.Fatalf("granules=%d, want 51", g)
	}
}

func TestHeatmapWindowMath(t *testing.T) {
	// 256 pages, 64-page ranges, half-life 64 ticks.
	hm := NewHeatmap(256, 64, 64)
	if hm.NumRanges() != 4 {
		t.Fatalf("ranges=%d", hm.NumRanges())
	}
	d := math.Pow(0.5, 16.0/64)
	hm.BeginWindow(16)
	hm.Add(0, 32)
	want := (1 - d) * 32
	if got := hm.Heat(0); math.Abs(got-want) > 1e-12 {
		t.Fatalf("heat after one window = %v, want %v", got, want)
	}
	// Second window: decay then fold again.
	hm.BeginWindow(16)
	hm.Add(0, 64)
	want = want*d + (1-d)*64
	if got := hm.Heat(0); math.Abs(got-want) > 1e-12 {
		t.Fatalf("heat after two windows = %v, want %v", got, want)
	}
	if got := hm.HeatPerPage(0); math.Abs(got-want/64) > 1e-12 {
		t.Fatalf("per-page heat = %v, want %v", got, want/64)
	}
	// Steady full touching converges toward rangePages.
	for i := 0; i < 400; i++ {
		hm.BeginWindow(16)
		hm.Add(0, 64)
	}
	if got := hm.HeatPerPage(0); math.Abs(got-1) > 1e-6 {
		t.Fatalf("converged per-page heat = %v, want ~1", got)
	}
	// Untouched ranges stay cold.
	if hm.Heat(3) != 0 {
		t.Fatal("untouched range has heat")
	}
}

func TestHeatmapShortTailRange(t *testing.T) {
	hm := NewHeatmap(200, 64, 64)
	if hm.NumRanges() != 4 {
		t.Fatalf("ranges=%d", hm.NumRanges())
	}
	s, e := hm.RangeSpan(3)
	if s != 192 || e != 200 {
		t.Fatalf("tail span [%d,%d), want [192,200)", s, e)
	}
	if hm.RangeOf(199) != 3 || hm.RangeOf(64) != 1 {
		t.Fatal("RangeOf wrong")
	}
	hm.BeginWindow(16)
	hm.Add(3, 8)
	// Per-page heat divides by the short span, not the nominal size.
	d := math.Pow(0.5, 16.0/64)
	if got, want := hm.HeatPerPage(3), (1-d)*8/8; math.Abs(got-want) > 1e-12 {
		t.Fatalf("tail per-page heat = %v, want %v", got, want)
	}
}

func TestClassify(t *testing.T) {
	p := PolicyConfig{}.WithDefaults()
	cases := []struct {
		heat float64
		want Class
	}{
		{0, Cold}, {0.05, Cold}, {0.051, Warm}, {0.39, Warm}, {0.40, Hot}, {1, Hot},
	}
	for _, tc := range cases {
		if got := p.Classify(tc.heat); got != tc.want {
			t.Errorf("Classify(%v) = %v, want %v", tc.heat, got, tc.want)
		}
	}
}

func TestTrendForecaster(t *testing.T) {
	f := NewTrendForecaster(3)
	dst := make([]float64, 3)
	f.Forecast(dst, []float64{2, 0, 5})
	// First window: prev is zero, so forecast doubles.
	if dst[0] != 4 || dst[1] != 0 || dst[2] != 10 {
		t.Fatalf("first forecast = %v", dst)
	}
	f.Forecast(dst, []float64{3, 0, 1})
	// 3 + (3-2) = 4; 1 + (1-5) clamps at 0.
	if dst[0] != 4 || dst[1] != 0 || dst[2] != 0 {
		t.Fatalf("second forecast = %v", dst)
	}
}

func TestSpecRoundTrip(t *testing.T) {
	cases := []Config{
		{},
		{Kind: "idlepage"},
		{Kind: "softdirty", ScanEveryTicks: 4, GranularityPages: 8},
		{Kind: "damon", RegionBudget: 64, SamplesPerTick: 32, HalflifeTicks: 12.5, Oracle: true, Seed: 9},
	}
	for _, c := range cases {
		spec := c.Spec()
		back, err := ParseSpec(spec)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", spec, err)
		}
		if c.On() && back.WithDefaults() != c.WithDefaults() {
			t.Fatalf("round trip %q: got %+v, want %+v", spec, back.WithDefaults(), c.WithDefaults())
		}
		if !c.On() && back.On() {
			t.Fatalf("off config round-tripped on: %q", spec)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"nosuch",
		"idlepage:gran=3",          // not a power of two
		"idlepage:range=8,gran=16", // range < granularity
		"damon:regions=1",          // budget too small
		"idlepage:bogus=1",         // unknown key
		"idlepage:scan",            // malformed pair
		"idlepage:scan=notanumber", // bad value
	} {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q) accepted", spec)
		}
	}
}

func TestBitTrackerScan(t *testing.T) {
	f := newFixture(t, 100, 100, false)
	f.allocOn(t, 0, mem.Anon, 100)
	f.allocOn(t, 1, mem.Anon, 100)

	trk, err := New(Config{Kind: "idlepage", ScanEveryTicks: 16, HalflifeTicks: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := trk.Start(f.env); err != nil {
		t.Fatal(err)
	}
	hm := NewHeatmap(f.env.pfnSpace(), 64, 64)
	for pfn := 0; pfn < 10; pfn++ {
		trk.OnAccess(mem.PFN(pfn), f.store.Page(mem.PFN(pfn)))
	}
	if trk.Tick(8, hm) {
		t.Fatal("scanned before the period")
	}
	if !trk.Tick(16, hm) {
		t.Fatal("no scan at the period")
	}
	d := math.Pow(0.5, 16.0/64)
	if got, want := hm.Heat(0), (1-d)*10; math.Abs(got-want) > 1e-12 {
		t.Fatalf("range-0 heat = %v, want %v", got, want)
	}
	// Every allocated page was checked, attributed to its node.
	if got := f.stat.GetNode(0, vmstat.TrackerPagesScanned); got != 100 {
		t.Fatalf("node-0 scans = %d, want 100", got)
	}
	if got := f.stat.GetNode(1, vmstat.TrackerPagesScanned); got != 100 {
		t.Fatalf("node-1 scans = %d, want 100", got)
	}
	// The scan cleared the bits: the next fold only decays.
	if !trk.Tick(32, hm) {
		t.Fatal("no scan at the second period")
	}
	if got, want := hm.Heat(0), (1-d)*10*d; math.Abs(got-want) > 1e-12 {
		t.Fatalf("decayed heat = %v, want %v", got, want)
	}
}

func TestBitTrackerGranularity(t *testing.T) {
	f := newFixture(t, 100, 100, false)
	f.allocOn(t, 0, mem.Anon, 100)
	f.allocOn(t, 1, mem.Anon, 100)

	trk, err := New(Config{Kind: "idlepage", ScanEveryTicks: 16, GranularityPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := trk.Start(f.env); err != nil {
		t.Fatal(err)
	}
	hm := NewHeatmap(f.env.pfnSpace(), 64, 64)
	trk.OnAccess(2, f.store.Page(2)) // marks granule [0,4)
	trk.Tick(16, hm)
	d := math.Pow(0.5, 16.0/64)
	// One touched granule folds its whole 4-page span.
	if got, want := hm.Heat(0), (1-d)*4; math.Abs(got-want) > 1e-12 {
		t.Fatalf("heat = %v, want %v", got, want)
	}
	// Scan checks one representative page per granule: 200/4 = 50.
	if got := f.stat.Get(vmstat.TrackerPagesScanned); got != 50 {
		t.Fatalf("scans = %d, want 50", got)
	}
}

func TestSoftDirtyMissesCleanReads(t *testing.T) {
	f := newFixture(t, 100, 100, false)
	f.allocOn(t, 0, mem.Anon, 2)
	f.store.Page(1).Flags = f.store.Page(1).Flags.Set(mem.PGDirty)

	trk, err := New(Config{Kind: "softdirty", ScanEveryTicks: 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := trk.Start(f.env); err != nil {
		t.Fatal(err)
	}
	hm := NewHeatmap(f.env.pfnSpace(), 64, 64)
	trk.OnAccess(0, f.store.Page(0)) // clean read: invisible
	trk.OnAccess(1, f.store.Page(1)) // dirty page: seen
	trk.Tick(16, hm)
	d := math.Pow(0.5, 16.0/64)
	if got, want := hm.Heat(0), (1-d)*1; math.Abs(got-want) > 1e-12 {
		t.Fatalf("heat = %v, want %v (the clean read must not count)", got, want)
	}
}

// checkRegionsTile asserts the damon invariant: regions are sorted,
// contiguous, and exactly tile the capacity PFN space.
func checkRegionsTile(t *testing.T, d *damon, total int) {
	t.Helper()
	if len(d.regions) == 0 {
		t.Fatal("no regions")
	}
	if len(d.regions) > d.cfg.RegionBudget {
		t.Fatalf("%d regions exceed budget %d", len(d.regions), d.cfg.RegionBudget)
	}
	at := 0
	for i, r := range d.regions {
		if r.start != at || r.end <= r.start {
			t.Fatalf("region %d = [%d,%d), expected start %d", i, r.start, r.end, at)
		}
		at = r.end
	}
	if at != total {
		t.Fatalf("regions end at %d, want %d", at, total)
	}
}

func TestDamonAdaptsAndTiles(t *testing.T) {
	f := newFixture(t, 100, 100, false)
	f.allocOn(t, 0, mem.Anon, 100)
	f.allocOn(t, 1, mem.Anon, 100)

	cfg := Config{Kind: "damon", ScanEveryTicks: 4, RegionBudget: 16, SamplesPerTick: 64, Seed: 3}
	trk, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := trk.Start(f.env); err != nil {
		t.Fatal(err)
	}
	d := trk.(*damon)
	checkRegionsTile(t, d, 200)

	hm := NewHeatmap(f.env.pfnSpace(), 64, 64)
	for tick := uint64(1); tick <= 64; tick++ {
		// A hot head: pages 0..31 touched every tick, the rest never.
		for pfn := 0; pfn < 32; pfn++ {
			trk.OnAccess(mem.PFN(pfn), f.store.Page(mem.PFN(pfn)))
		}
		folded := trk.Tick(tick, hm)
		if folded != (tick%4 == 0) {
			t.Fatalf("tick %d folded=%v", tick, folded)
		}
		checkRegionsTile(t, d, 200)
	}
	if f.stat.Get(vmstat.TrackerRegionsSplit) == 0 {
		t.Fatal("no splits recorded")
	}
	if f.stat.Get(vmstat.TrackerRegionsMerged) == 0 {
		t.Fatal("no merges recorded")
	}
	// Sampling budget: every sample landed on an allocated page, so the
	// scan counter paid exactly the budget each tick.
	if got, want := f.stat.Get(vmstat.TrackerPagesScanned), uint64(64*64); got != want {
		t.Fatalf("scans = %d, want %d", got, want)
	}
	// The hot head must be hotter than the never-touched tail.
	if hm.HeatPerPage(0) <= hm.HeatPerPage(2) {
		t.Fatalf("hot range %v not hotter than cold range %v", hm.HeatPerPage(0), hm.HeatPerPage(2))
	}
}

func TestDamonDeterminism(t *testing.T) {
	run := func() ([]damonRegion, []float64) {
		f := newFixture(t, 100, 100, false)
		f.allocOn(t, 0, mem.Anon, 100)
		f.allocOn(t, 1, mem.Anon, 100)
		trk, err := New(Config{Kind: "damon", ScanEveryTicks: 4, RegionBudget: 16, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if err := trk.Start(f.env); err != nil {
			t.Fatal(err)
		}
		hm := NewHeatmap(f.env.pfnSpace(), 64, 64)
		for tick := uint64(1); tick <= 32; tick++ {
			for pfn := 40; pfn < 80; pfn++ {
				trk.OnAccess(mem.PFN(pfn), f.store.Page(mem.PFN(pfn)))
			}
			trk.Tick(tick, hm)
		}
		d := trk.(*damon)
		return append([]damonRegion(nil), d.regions...), append([]float64(nil), hm.Heats()...)
	}
	r1, h1 := run()
	r2, h2 := run()
	if !reflect.DeepEqual(r1, r2) {
		t.Fatal("same seed produced different regions")
	}
	if !reflect.DeepEqual(h1, h2) {
		t.Fatal("same seed produced different heat")
	}
}

// hotHeatmap builds a heatmap whose given range reads as fully hot and
// everything else cold.
func hotHeatmap(env Env, hotRange int) *Heatmap {
	hm := NewHeatmap(env.pfnSpace(), 64, 1)
	hm.BeginWindow(32) // decay ~ 0, gain ~ 1
	s, e := hm.RangeSpan(hotRange)
	hm.Add(hotRange, float64(e-s))
	return hm
}

func TestMoverPromotesHotWithinBudget(t *testing.T) {
	f := newFixture(t, 100, 100, true)
	f.allocOn(t, 0, mem.Anon, 50)  // PFNs 0..49 local
	f.allocOn(t, 1, mem.Anon, 100) // PFNs 50..149 on CXL

	// Range 1 (PFNs 64..127) is entirely CXL-resident and hot.
	hm := hotHeatmap(f.env, 1)
	mv := NewMover(PolicyConfig{PagesPerTick: 8}, f.env, hm)
	mv.Tick()

	if got := f.stat.GetNode(0, vmstat.MoverPagesMoved); got != 8 {
		t.Fatalf("moved = %d, want 8 (the budget)", got)
	}
	// Scratch holds 2 budgets of candidates; the 8 unattempted ones are
	// deferred at their current (CXL) node.
	if got := f.stat.GetNode(1, vmstat.MoverBudgetDeferred); got != 8 {
		t.Fatalf("deferred = %d, want 8", got)
	}
	moved := 0
	for pfn := 64; pfn < 128; pfn++ {
		if f.store.Page(mem.PFN(pfn)).Node == 0 {
			moved++
		}
	}
	if moved != 8 {
		t.Fatalf("%d pages ended local, want 8", moved)
	}
	if f.stat.Get(vmstat.PgmigrateSuccess) != 8 {
		t.Fatal("migrations did not go through the engine")
	}
}

func TestMoverDrainsHotRangeOverTicks(t *testing.T) {
	f := newFixture(t, 100, 100, true)
	f.allocOn(t, 0, mem.Anon, 50)
	f.allocOn(t, 1, mem.Anon, 100)

	hm := hotHeatmap(f.env, 1)
	mv := NewMover(PolicyConfig{PagesPerTick: 32}, f.env, hm)
	for i := 0; i < 4; i++ {
		mv.Tick()
	}
	// 64 hot CXL pages total: fully promoted inside two ticks, the
	// remaining ticks find nothing left to move.
	if got := f.stat.GetNode(0, vmstat.MoverPagesMoved); got != 64 {
		t.Fatalf("moved = %d, want 64", got)
	}
	for pfn := 64; pfn < 128; pfn++ {
		if f.store.Page(mem.PFN(pfn)).Node != 0 {
			t.Fatalf("PFN %d still on CXL", pfn)
		}
	}
}

func TestMoverDemotesColdOnlyUnderPressure(t *testing.T) {
	f := newFixture(t, 100, 100, true)
	f.allocOn(t, 0, mem.Anon, 40) // plenty free: no pressure

	hm := NewHeatmap(f.env.pfnSpace(), 64, 1) // everything cold
	mv := NewMover(PolicyConfig{PagesPerTick: 16}, f.env, hm)
	mv.Tick()
	if got := f.stat.Get(vmstat.MoverPagesMoved); got != 0 {
		t.Fatalf("moved %d cold pages off an unpressured node", got)
	}

	// Fill the local node to the brim: BelowDemote turns on and the
	// same cold pages become demotion candidates.
	f.allocOn(t, 0, mem.Anon, 60)
	mv.Tick()
	if got := f.stat.GetNode(1, vmstat.MoverPagesMoved); got != 16 {
		t.Fatalf("demoted = %d, want 16 (the budget)", got)
	}
	if f.topo.Node(1).Resident() != 16 {
		t.Fatal("CXL node accounting wrong after demotion")
	}
}

func TestOracleScoring(t *testing.T) {
	f := newFixture(t, 100, 100, false)
	f.allocOn(t, 0, mem.Anon, 100)
	f.allocOn(t, 1, mem.Anon, 100)

	orc := newOracle(f.env.pfnSpace(), 4)
	hm := hotHeatmap(f.env, 0) // tracker claims PFNs 0..63 hot
	// Ground truth: only PFNs 0..9 accessed twice (hot); PFN 70 once
	// (not hot).
	for pfn := 0; pfn < 10; pfn++ {
		orc.observe(mem.PFN(pfn))
		orc.observe(mem.PFN(pfn))
	}
	orc.observe(70)

	pol := PolicyConfig{}.WithDefaults()
	prec, rec, precOK, recOK := orc.evaluate(hm, pol)
	if !precOK || !recOK {
		t.Fatal("both scores should be defined")
	}
	// Tracker-hot = 64 pages, truly hot = 10, overlap = 10.
	if want := 10.0 / 64.0; math.Abs(prec-want) > 1e-12 {
		t.Fatalf("precision = %v, want %v", prec, want)
	}
	if rec != 1 {
		t.Fatalf("recall = %v, want 1", rec)
	}
	// evaluate resets the window: a second call has no truth.
	_, _, _, recOK = orc.evaluate(hm, pol)
	if recOK {
		t.Fatal("window not reset")
	}
}

func TestPlanePipelineEndToEnd(t *testing.T) {
	f := newFixture(t, 100, 100, true)
	f.allocOn(t, 0, mem.Anon, 50)
	f.allocOn(t, 1, mem.Anon, 100)

	pol := &PolicyConfig{PagesPerTick: 32}
	p, err := NewPlane(Config{Kind: "idlepage", ScanEveryTicks: 4, HalflifeTicks: 4, Oracle: true}, pol, f.env)
	if err != nil {
		t.Fatal(err)
	}
	for tick := uint64(1); tick <= 40; tick++ {
		// Hammer the CXL-resident range 1 (PFNs 64..127) every tick.
		for pfn := 64; pfn < 128; pfn++ {
			p.OnAccess(mem.PFN(pfn), f.store.Page(mem.PFN(pfn)))
			p.OnAccess(mem.PFN(pfn), f.store.Page(mem.PFN(pfn)))
		}
		p.Tick(tick)
	}
	p.Stop()

	rs := p.Finish(40)
	if rs.Kind != "idlepage" || rs.Scans != 10 {
		t.Fatalf("kind=%q scans=%d", rs.Kind, rs.Scans)
	}
	if rs.PagesScanned == 0 || rs.ScannedPerTick == 0 {
		t.Fatal("no scan overhead recorded")
	}
	if rs.MoverMoved == 0 {
		t.Fatal("the hot range never promoted")
	}
	if rs.OracleEvals == 0 || rs.Recall != 1 {
		t.Fatalf("oracle evals=%d recall=%v, want full recall on a perfectly tracked set", rs.OracleEvals, rs.Recall)
	}
	if rs.Precision <= 0 || rs.Precision > 1 {
		t.Fatalf("precision = %v out of range", rs.Precision)
	}
	if len(rs.Heat) != 4 || rs.HotRanges == 0 {
		t.Fatalf("heat panel wrong: len=%d hot=%d", len(rs.Heat), rs.HotRanges)
	}
	if _, err := ParseSpec(rs.Spec); err != nil {
		t.Fatalf("Finish spec %q does not parse: %v", rs.Spec, err)
	}
}

func TestPlaneRejectsBadConfig(t *testing.T) {
	f := newFixture(t, 100, 100, false)
	if _, err := NewPlane(Config{}, nil, f.env); err == nil {
		t.Fatal("off config accepted")
	}
	if _, err := NewPlane(Config{Kind: "nosuch"}, nil, f.env); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

// TestPlanesIndependentUnderRace drives independent planes from
// concurrent goroutines — nothing is shared, so the race detector
// (the CI -race run) proves plane state never leaks across machines.
func TestPlanesIndependentUnderRace(t *testing.T) {
	kinds := []string{"idlepage", "softdirty", "damon", "idlepage"}
	var wg sync.WaitGroup
	for i, kind := range kinds {
		wg.Add(1)
		go func(i int, kind string) {
			defer wg.Done()
			f := newFixture(t, 100, 100, false)
			f.allocOn(t, 0, mem.Anon, 100)
			f.allocOn(t, 1, mem.Anon, 100)
			p, err := NewPlane(Config{Kind: kind, ScanEveryTicks: 4, Seed: uint64(i + 1)}, nil, f.env)
			if err != nil {
				t.Error(err)
				return
			}
			for tick := uint64(1); tick <= 24; tick++ {
				for pfn := 0; pfn < 50; pfn++ {
					p.OnAccess(mem.PFN(pfn), f.store.Page(mem.PFN(pfn)))
				}
				p.Tick(tick)
			}
			p.Stop()
		}(i, kind)
	}
	wg.Wait()
}
