package tracker

import (
	"tppsim/internal/mem"
)

// oracle is the ground-truth side of the accuracy measurement: exact
// per-PFN access counts over each scan window, which no real tracker
// gets to see. At every fold it scores the tracker's hot-set — all
// pages of ranges the policy classifies hot — against the pages the
// window actually hammered, yielding precision (how much of what the
// tracker calls hot really is) and recall (how much of the real hot
// set the tracker found). Range-granular tracking inherently pays
// precision for recall: classifying a range hot claims its untouched
// pages too, and that is exactly the overhead/accuracy story MT6
// sweeps.
type oracle struct {
	counts []uint16
	// hotMin is the exact access count that makes a page ground-truth
	// hot within one window.
	hotMin uint16
	// classes is scratch for the per-range classification.
	classes []Class
}

func newOracle(totalPFNs, numRanges int) *oracle {
	return &oracle{
		counts:  make([]uint16, totalPFNs),
		hotMin:  2,
		classes: make([]Class, numRanges),
	}
}

// observe counts one access (saturating).
func (o *oracle) observe(pfn mem.PFN) {
	if c := o.counts[pfn]; c != ^uint16(0) {
		o.counts[pfn] = c + 1
	}
}

// evaluate scores the tracker hot-set against this window's exact
// counts and resets the window. Returns precision, recall, and whether
// each is defined (a window with no hot classification has no
// precision; one with no truly hot pages has no recall).
func (o *oracle) evaluate(hm *Heatmap, pol PolicyConfig) (prec, rec float64, precOK, recOK bool) {
	for r := range o.classes {
		o.classes[r] = pol.Classify(hm.HeatPerPage(r))
	}
	var trackerHot, oracleHot, both uint64
	for pfn, cnt := range o.counts {
		hot := o.classes[hm.RangeOf(mem.PFN(pfn))] == Hot
		truth := cnt >= o.hotMin
		if hot {
			trackerHot++
		}
		if truth {
			oracleHot++
		}
		if hot && truth {
			both++
		}
		o.counts[pfn] = 0
	}
	if trackerHot > 0 {
		prec, precOK = float64(both)/float64(trackerHot), true
	}
	if oracleHot > 0 {
		rec, recOK = float64(both)/float64(oracleHot), true
	}
	return prec, rec, precOK, recOK
}
