package tracker

import (
	"tppsim/internal/mem"
	"tppsim/internal/vmstat"
)

// bitTracker is the scan-and-clear family: per-granule accessed bits
// set on the hot path and harvested by a periodic full scan, modeling
// /sys/kernel/mm/page_idle (idlepage) and /proc/pid/clear_refs
// soft-dirty (softdirty — write bits only). The scan walks every
// granule: its cost is proportional to machine memory, which is the
// mechanism's defining overhead, and every check is charged to
// tracker_pages_scanned on the granule's resident node.
type bitTracker struct {
	name      string
	cfg       Config
	dirtyOnly bool

	env      Env
	bits     *AccessBits
	lastScan uint64
	started  bool
	// perNode accumulates one scan's checks per node, flushed to the
	// stats plane once per scan so the walk stays a tight loop.
	perNode []uint64
}

func newBitTracker(name string, cfg Config, dirtyOnly bool) *bitTracker {
	return &bitTracker{name: name, cfg: cfg.WithDefaults(), dirtyOnly: dirtyOnly}
}

// Name returns the registry kind.
func (t *bitTracker) Name() string { return t.name }

// Start binds the tracker; the access bitmap comes from the env when
// the plane maintains one, otherwise the tracker owns its own.
func (t *bitTracker) Start(env Env) error {
	t.env = env
	t.bits = env.Bits
	if t.bits == nil {
		t.bits = NewAccessBits(env.pfnSpace(), t.cfg.GranularityPages)
	}
	t.perNode = make([]uint64, env.Topo.NumNodes())
	t.started = true
	return nil
}

// Stop releases the tracker.
func (t *bitTracker) Stop() { t.started = false }

// OnAccess marks the page's granule accessed; softdirty only sees
// accesses to dirty pages (its model of "writes" — pages the workload
// never dirties are invisible to it).
func (t *bitTracker) OnAccess(pfn mem.PFN, pg *mem.Page) {
	if t.dirtyOnly && !pg.Flags.Has(mem.PGDirty) {
		return
	}
	t.bits.Set(pfn)
}

// Tick runs the scan on its period: every granule's bit is checked and
// cleared, set granules fold their page count into the heatmap. The
// walk covers the allocated PFN space (Store.Len is the high-water
// mark; the bitmap is sized for full capacity but bits past the mark
// can never be set), and checks of freed pages (Node == NilNode) do
// work but have no resident node to charge.
func (t *bitTracker) Tick(tick uint64, hm *Heatmap) bool {
	if !t.started || tick-t.lastScan < t.cfg.ScanEveryTicks {
		return false
	}
	t.lastScan = tick
	hm.BeginWindow(float64(t.cfg.ScanEveryTicks))

	store, bits := t.env.Store, t.bits
	gran := bits.Granule()
	total := store.Len()
	for i := range t.perNode {
		t.perNode[i] = 0
	}
	for gi := 0; gi*gran < total; gi++ {
		first := gi * gran
		if node := store.Page(mem.PFN(first)).Node; node != mem.NilNode {
			t.perNode[node]++
		}
		if !bits.TestClearGranule(gi) {
			continue
		}
		pages := gran
		if first+pages > total {
			pages = total - first
		}
		hm.Add(hm.RangeOf(mem.PFN(first)), float64(pages))
	}
	for n, c := range t.perNode {
		if c != 0 {
			t.env.Stat.Add(mem.NodeID(n), vmstat.TrackerPagesScanned, c)
		}
	}
	return true
}
