package tracker

import (
	"fmt"

	"tppsim/internal/mem"
	"tppsim/internal/vmstat"
)

// Plane assembles the whole pipeline for one machine: the shared
// accessed-bit substrate, the configured tracker, the heatmap, the
// optional mover, and the optional ground-truth oracle. The simulator
// owns exactly one (nil when the plane is off) and drives it from two
// places: OnAccess from the fused access loop and Tick once per
// simulated second.
//
// OnAccess is implemented here rather than through the Tracker
// interface: every built-in tracker observes through the shared
// AccessBits, so the plane inlines the bit write (plus the softdirty
// filter and the oracle count) and keeps the hot path free of
// interface dispatch. Trackers driven standalone — unit tests, or
// embeddings like numab's hint-fault view — use their own OnAccess.
type Plane struct {
	cfg Config
	pol PolicyConfig

	env   Env
	trk   Tracker
	hm    *Heatmap
	mover *Mover
	bits  *AccessBits
	orc   *oracle

	dirtyOnly bool

	scans           uint64
	sumPrec, sumRec float64
	precN, recN     uint64
}

// NewPlane builds the pipeline. pol is the heat-policy half; nil means
// observe-only (no mover, default thresholds for oracle scoring). A
// mover runs only when pol is non-nil and env.Engine is set.
func NewPlane(cfg Config, pol *PolicyConfig, env Env) (*Plane, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !cfg.On() {
		return nil, fmt.Errorf("tracker: NewPlane called with no kind")
	}
	gran := cfg.GranularityPages
	if cfg.Kind == "damon" {
		gran = 1 // damon samples single pages
	}
	p := &Plane{
		cfg:       cfg,
		env:       env,
		bits:      NewAccessBits(env.pfnSpace(), gran),
		hm:        NewHeatmap(env.pfnSpace(), cfg.RangePages, cfg.HalflifeTicks),
		dirtyOnly: cfg.Kind == "softdirty",
	}
	env.Bits = p.bits
	p.env.Bits = p.bits
	trk, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if err := trk.Start(env); err != nil {
		return nil, err
	}
	p.trk = trk
	p.pol = PolicyConfig{}.WithDefaults()
	if pol != nil {
		p.pol = pol.WithDefaults()
		if env.Engine != nil {
			p.mover = NewMover(p.pol, env, p.hm)
		}
	}
	if cfg.Oracle {
		p.orc = newOracle(env.pfnSpace(), p.hm.NumRanges())
	}
	return p, nil
}

// Config returns the plane's observation config (defaults filled).
func (p *Plane) Config() Config { return p.cfg }

// Heatmap returns the plane's heatmap.
func (p *Plane) Heatmap() *Heatmap { return p.hm }

// Tracker returns the running tracker.
func (p *Plane) Tracker() Tracker { return p.trk }

// OnAccess observes one CPU access; called from the simulator's fused
// access loop, so it is a couple of array writes and nothing else.
func (p *Plane) OnAccess(pfn mem.PFN, pg *mem.Page) {
	if p.orc != nil {
		p.orc.observe(pfn)
	}
	if p.dirtyOnly && !pg.Flags.Has(mem.PGDirty) {
		return
	}
	p.bits.Set(pfn)
}

// Tick drives the pipeline once per simulated second: the tracker's
// scan clock (folding into the heatmap when due, scoring the oracle on
// every fold) and then the mover.
func (p *Plane) Tick(tick uint64) {
	if p.trk.Tick(tick, p.hm) {
		p.scans++
		if p.orc != nil {
			prec, rec, precOK, recOK := p.orc.evaluate(p.hm, p.pol)
			if precOK {
				p.sumPrec += prec
				p.precN++
			}
			if recOK {
				p.sumRec += rec
				p.recN++
			}
		}
	}
	if p.mover != nil {
		p.mover.Tick()
	}
}

// Stop stops the tracker.
func (p *Plane) Stop() { p.trk.Stop() }

// RunStats is the plane's end-of-run summary, carried on metrics.Run
// and rendered by the report package.
type RunStats struct {
	Kind           string
	Spec           string
	ScanEveryTicks uint64

	// Overhead.
	Scans          uint64
	PagesScanned   uint64  // accessed-state checks over the whole run
	ScannedPerTick float64 // the overhead headline: checks per tick
	RegionsSplit   uint64
	RegionsMerged  uint64

	// Mover.
	MoverMoved    uint64
	MoverDeferred uint64

	// Accuracy vs. the ground-truth oracle (zero unless Config.Oracle).
	OracleEvals uint64
	Precision   float64 // mean over windows with a non-empty hot-set
	Recall      float64 // mean over windows with truly hot pages

	// Final heatmap state.
	RangePages int
	HotRanges  int
	WarmRanges int
	ColdRanges int
	Heat       []float64 // per-range heat, touched-pages units
}

// Finish summarizes the run after the last tick.
func (p *Plane) Finish(ticks uint64) *RunStats {
	st := p.env.Stat
	rs := &RunStats{
		Kind:           p.cfg.Kind,
		Spec:           p.cfg.Spec(),
		ScanEveryTicks: p.cfg.ScanEveryTicks,
		Scans:          p.scans,
		PagesScanned:   st.Get(vmstat.TrackerPagesScanned),
		RegionsSplit:   st.Get(vmstat.TrackerRegionsSplit),
		RegionsMerged:  st.Get(vmstat.TrackerRegionsMerged),
		MoverMoved:     st.Get(vmstat.MoverPagesMoved),
		MoverDeferred:  st.Get(vmstat.MoverBudgetDeferred),
		OracleEvals:    p.precN,
		RangePages:     p.hm.RangePages(),
		Heat:           append([]float64(nil), p.hm.Heats()...),
	}
	if ticks > 0 {
		rs.ScannedPerTick = float64(rs.PagesScanned) / float64(ticks)
	}
	if p.precN > 0 {
		rs.Precision = p.sumPrec / float64(p.precN)
	}
	if p.recN > 0 {
		rs.Recall = p.sumRec / float64(p.recN)
	}
	for r := 0; r < p.hm.NumRanges(); r++ {
		switch p.pol.Classify(p.hm.HeatPerPage(r)) {
		case Hot:
			rs.HotRanges++
		case Warm:
			rs.WarmRanges++
		default:
			rs.ColdRanges++
		}
	}
	return rs
}
