package tracker

import (
	"tppsim/internal/mem"
	"tppsim/internal/migrate"
	"tppsim/internal/vmstat"
)

// Mover turns heat classifications into rate-limited page migrations:
// pages in hot ranges climb one tier toward the CPU, pages in cold
// ranges on a pressured CPU-tier node demote down the cascade. All
// movement goes through the ordinary migration engine, so it pays
// migration costs, honors watermark guards, and is subject to the
// fault plane's injected failures and retry machinery like any other
// migration source.
//
// The budget is migration *attempts* per tick. Each tick the mover
// resumes a cursor walk over the heatmap ranges, collects up to a few
// budgets' worth of candidates, attempts the budget, and counts the
// rest as mover_budget_deferred — the backlog signal that says the
// rate limit, not the tracker, is what's holding placement back.
type Mover struct {
	pol PolicyConfig
	env Env
	hm  *Heatmap

	fc     *TrendForecaster
	eff    []float64
	cursor int

	candUp, candDown []mem.PFN
	// nodeTop caches "is on the CPU tier" per node, as in numab.
	nodeTop []bool
}

// NewMover wires a mover over the machine; env.Engine must be set.
func NewMover(pol PolicyConfig, env Env, hm *Heatmap) *Mover {
	pol = pol.WithDefaults()
	top := make([]bool, env.Topo.NumNodes())
	for i := range top {
		top[i] = env.Topo.TierOf(mem.NodeID(i)) == 0
	}
	m := &Mover{
		pol:      pol,
		env:      env,
		hm:       hm,
		candUp:   make([]mem.PFN, 0, 2*pol.PagesPerTick),
		candDown: make([]mem.PFN, 0, 2*pol.PagesPerTick),
		nodeTop:  top,
	}
	if pol.Forecast {
		m.fc = NewTrendForecaster(hm.NumRanges())
		m.eff = make([]float64, hm.NumRanges())
	}
	return m
}

// Tick runs one mover round: classify, collect, attempt within budget,
// defer the rest.
func (m *Mover) Tick() {
	heats := m.hm.Heats()
	if m.fc != nil {
		m.fc.Forecast(m.eff, heats)
		heats = m.eff
	}
	m.collect(heats)
	budget := m.pol.PagesPerTick
	budget = m.attempt(m.candUp, migrate.Promotion, budget)
	m.attempt(m.candDown, migrate.Demotion, budget)
}

// collect resumes the range cursor and gathers promotion candidates
// from hot ranges and demotion candidates from cold ranges, up to the
// scratch capacity, wrapping at most once around the heatmap.
func (m *Mover) collect(heats []float64) {
	m.candUp, m.candDown = m.candUp[:0], m.candDown[:0]
	store, topo := m.env.Store, m.env.Topo
	live := store.Len() // allocation high-water mark; no pages past it
	n := m.hm.NumRanges()
	for seen := 0; seen < n; seen++ {
		r := m.cursor
		m.cursor++
		if m.cursor >= n {
			m.cursor = 0
		}
		start, end := m.hm.RangeSpan(r)
		if end <= start {
			continue
		}
		// Per-page heat divides by the true range span; the page walk
		// stops at the allocation high-water mark.
		class := m.pol.Classify(heats[r] / float64(end-start))
		if end > live {
			end = live
		}
		if end <= start {
			continue
		}
		switch class {
		case Hot:
			if cap(m.candUp) == len(m.candUp) {
				continue
			}
			for pfn := start; pfn < end; pfn++ {
				pg := store.Page(mem.PFN(pfn))
				if !pg.Flags.Has(mem.PGOnLRU) || pg.Flags.Has(mem.PGUnevictable) {
					continue
				}
				if m.nodeTop[pg.Node] {
					continue // already on the CPU tier
				}
				m.candUp = append(m.candUp, mem.PFN(pfn))
				if cap(m.candUp) == len(m.candUp) {
					break
				}
			}
		case Cold:
			if cap(m.candDown) == len(m.candDown) {
				continue
			}
			for pfn := start; pfn < end; pfn++ {
				pg := store.Page(mem.PFN(pfn))
				if !pg.Flags.Has(mem.PGOnLRU) || pg.Flags.Has(mem.PGUnevictable) {
					continue
				}
				// Demote only from a pressured CPU-tier node: cold
				// pages in abundant memory are left where they are
				// (moving them buys nothing and churns the bus).
				if !m.nodeTop[pg.Node] || !topo.Node(pg.Node).BelowDemote() {
					continue
				}
				m.candDown = append(m.candDown, mem.PFN(pfn))
				if cap(m.candDown) == len(m.candDown) {
					break
				}
			}
		}
		if cap(m.candUp) == len(m.candUp) && cap(m.candDown) == len(m.candDown) {
			return
		}
	}
}

// attempt migrates candidates until the budget runs out, counting the
// remainder as deferred; returns the unspent budget. Promotions run
// before demotions — freeing fast memory matters less than filling it
// with the right pages.
func (m *Mover) attempt(cands []mem.PFN, reason migrate.Reason, budget int) int {
	store, topo, stat := m.env.Store, m.env.Topo, m.env.Stat
	for _, pfn := range cands {
		pg := store.Page(pfn)
		if budget == 0 {
			stat.Inc(pg.Node, vmstat.MoverBudgetDeferred)
			continue
		}
		var target mem.NodeID
		if reason == migrate.Promotion {
			target = topo.PromotionTargetToward(pg.Home, pg.Node)
		} else {
			target = topo.DemotionTarget(pg.Node)
		}
		if target == mem.NilNode || topo.Degraded(target) {
			continue
		}
		budget--
		if _, err := m.env.Engine.Migrate(pfn, target, reason); err == nil {
			stat.Inc(target, vmstat.MoverPagesMoved)
		}
	}
	return budget
}
