// Package tracker implements sampled access tracking — the imperfect
// observation plane real tiering daemons operate on, in contrast to the
// ground-truth state (exact hint faults, exact LRU order) the repo's
// other policies read. The pipeline is modeled on memtierd's:
//
//	Tracker ──counters──▶ Heatmap ──(HeatForecaster)──▶ Mover
//
// A Tracker watches the access stream through a cheap per-access hook
// and periodically folds what it saw into a Heatmap (per-PFN-range heat
// with half-life decay). A heat policy classifies ranges hot/warm/cold,
// and a rate-limited Mover migrates pages hot-up/cold-down through the
// ordinary migration engine — so tracker-driven movement pays the same
// costs, honors the same watermarks, and survives the same injected
// faults as every other mechanism.
//
// Three trackers mirror the kernel mechanisms the TPP paper contrasts
// against:
//
//   - idlepage: periodic scan-and-clear of per-page accessed bits.
//     Sees every touched page, but a scan visits the whole PFN space —
//     overhead grows with memory size.
//   - softdirty: the same scan over write bits only. Cheap to maintain
//     in a real kernel (no PTE young harvesting), but blind to clean
//     reads — a hot read-only set is invisible.
//   - damon: adaptive region sampling with a fixed per-tick sampling
//     budget. Regions split and merge by access-count similarity, so
//     overhead is constant regardless of memory size and accuracy
//     depends on how well region boundaries track the working set.
//
// All tracker state is PFN-indexed: the PFN is the simulator's stable
// page identity (migration changes a page's node, never its PFN), and
// the PFN space is bounded by machine capacity, so bitmaps and region
// lists are fixed-size — the plane allocates nothing per tick.
package tracker

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"tppsim/internal/mem"
	"tppsim/internal/migrate"
	"tppsim/internal/tier"
	"tppsim/internal/vmstat"
)

// Tracker is one sampled access-tracking mechanism. Implementations
// observe the access stream via OnAccess and fold what they saw into a
// heatmap on their own scan cadence.
type Tracker interface {
	// Name returns the registry kind ("idlepage", "softdirty", ...).
	Name() string
	// Start binds the tracker to a machine. Called once before any
	// OnAccess or Tick.
	Start(env Env) error
	// Stop releases the tracker; no further calls after it.
	Stop()
	// OnAccess observes one CPU access to pfn; pg must be pfn's page.
	// It must be cheap — it runs inside the fused access loop.
	OnAccess(pfn mem.PFN, pg *mem.Page)
	// Tick advances the scan clock. When a scan/aggregation boundary is
	// due the tracker folds its counters into hm (opening a new decay
	// window first) and reports true.
	Tick(tick uint64, hm *Heatmap) bool
}

// Env is what a tracker (and the mover) gets to see of the machine.
type Env struct {
	Store *mem.Store
	Topo  *tier.Topology
	Stat  *vmstat.NodeStats
	// Engine is the migration engine, set only when a mover runs.
	Engine *migrate.Engine
	// Bits is the shared accessed-bit substrate the plane maintains on
	// the hot path; bit trackers scan it, damon samples it.
	Bits *AccessBits
	// Seed feeds tracker-private randomness (damon's region sampling).
	// Trackers must never touch machine RNG streams.
	Seed uint64
}

// pfnSpace returns the size of the PFN space trackers cover: the
// machine's total capacity. The store grows lazily as the workload
// allocates (Store.Len is a high-water mark, zero at build time), so
// fixed-size tracker state must size from capacity and bound store
// lookups by the live Store.Len.
func (e Env) pfnSpace() int { return int(e.Topo.TotalCapacity()) }

// Config selects and tunes the observation plane. The zero Kind means
// the plane is off: no tracker, no hook, bit- and alloc-identical runs.
type Config struct {
	// Kind is the registered tracker ("idlepage", "softdirty", "damon").
	Kind string
	// ScanEveryTicks is the scan (idlepage/softdirty) or aggregation
	// (damon) interval in ticks. Default 16.
	ScanEveryTicks uint64
	// GranularityPages is the tracking granule of the bit trackers: one
	// accessed bit covers this many contiguous PFNs. Must be a power of
	// two. Coarser granules shrink scan cost and accuracy together.
	// Default 1. Ignored by damon (it always samples single pages).
	GranularityPages int
	// RegionBudget caps damon's region count (its fixed overhead knob).
	// Default 128.
	RegionBudget int
	// SamplesPerTick is damon's per-tick sampling budget. Default equals
	// RegionBudget (one sample per region per tick).
	SamplesPerTick int
	// HalflifeTicks is the heatmap's decay half-life. Default 64.
	HalflifeTicks float64
	// RangePages is the heatmap range size in PFNs; must be a power of
	// two and at least GranularityPages. Default 64.
	RangePages int
	// Oracle enables the ground-truth accuracy oracle: exact per-PFN
	// access counts per scan window, scored against the tracker's
	// hot-set (precision/recall in RunStats). Costs one counter bump
	// per access — leave off for benchmarks.
	Oracle bool
	// Seed overrides the tracker-private RNG seed; 0 derives one from
	// the machine seed.
	Seed uint64
}

// On reports whether the plane is enabled.
func (c Config) On() bool { return c.Kind != "" }

// WithDefaults fills zero fields.
func (c Config) WithDefaults() Config {
	if c.ScanEveryTicks == 0 {
		c.ScanEveryTicks = 16
	}
	if c.GranularityPages == 0 {
		c.GranularityPages = 1
	}
	if c.RegionBudget == 0 {
		c.RegionBudget = 128
	}
	if c.SamplesPerTick == 0 {
		c.SamplesPerTick = c.RegionBudget
	}
	if c.HalflifeTicks == 0 {
		c.HalflifeTicks = 64
	}
	if c.RangePages == 0 {
		c.RangePages = 64
	}
	return c
}

// Validate rejects configurations the plane cannot run.
func (c Config) Validate() error {
	if !c.On() {
		return nil
	}
	d := c.WithDefaults()
	if _, ok := kinds[d.Kind]; !ok {
		return fmt.Errorf("tracker: unknown kind %q (have %s)", d.Kind, strings.Join(KindNames(), ", "))
	}
	if d.GranularityPages&(d.GranularityPages-1) != 0 || d.GranularityPages < 1 {
		return fmt.Errorf("tracker: granularity %d is not a power of two", d.GranularityPages)
	}
	if d.RangePages&(d.RangePages-1) != 0 || d.RangePages < 1 {
		return fmt.Errorf("tracker: range %d is not a power of two", d.RangePages)
	}
	if d.RangePages < d.GranularityPages {
		return fmt.Errorf("tracker: range %d smaller than granularity %d", d.RangePages, d.GranularityPages)
	}
	if d.RegionBudget < 2 {
		return fmt.Errorf("tracker: region budget %d too small", d.RegionBudget)
	}
	return nil
}

// PolicyConfig is the heat-policy half of the pipeline: how heatmap
// ranges classify into hot/warm/cold and how fast the mover may act on
// that. It is carried by the sampled placement policy, separate from
// the observation Config, mirroring memtierd's tracker/policy split.
type PolicyConfig struct {
	// HotThreshold: a range whose per-page heat (EWMA fraction of its
	// pages touched per scan window, in [0,1]) is at or above this is
	// hot. Default 0.40.
	HotThreshold float64
	// ColdThreshold: per-page heat at or below this is cold; between
	// the thresholds is warm (hysteresis — the mover leaves warm ranges
	// alone). Default 0.05.
	ColdThreshold float64
	// PagesPerTick is the mover's migration-attempt budget per tick.
	// Default 128.
	PagesPerTick int
	// Forecast chains the trend forecaster between heatmap and mover:
	// classification sees heat extrapolated one window ahead.
	Forecast bool
}

// WithDefaults fills zero fields.
func (p PolicyConfig) WithDefaults() PolicyConfig {
	if p.HotThreshold == 0 {
		p.HotThreshold = 0.40
	}
	if p.ColdThreshold == 0 {
		p.ColdThreshold = 0.05
	}
	if p.PagesPerTick == 0 {
		p.PagesPerTick = 128
	}
	return p
}

// Class is a range's heat classification.
type Class uint8

const (
	Cold Class = iota
	Warm
	Hot
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case Cold:
		return "cold"
	case Warm:
		return "warm"
	default:
		return "hot"
	}
}

// Classify maps a per-page heat value to a class.
func (p PolicyConfig) Classify(heatPerPage float64) Class {
	switch {
	case heatPerPage >= p.HotThreshold:
		return Hot
	case heatPerPage <= p.ColdThreshold:
		return Cold
	default:
		return Warm
	}
}

// kinds is the tracker registry.
var kinds = map[string]struct {
	description string
	build       func(Config) Tracker
}{
	"idlepage": {
		"periodic scan-and-clear of per-page accessed bits; sees reads and writes, scan cost grows with memory size",
		func(c Config) Tracker { return newBitTracker("idlepage", c, false) },
	},
	"softdirty": {
		"periodic scan of write bits only; cheap but blind to clean reads",
		func(c Config) Tracker { return newBitTracker("softdirty", c, true) },
	},
	"damon": {
		"adaptive region sampling on a fixed per-tick budget; regions split/merge by access similarity",
		func(c Config) Tracker { return newDamon(c) },
	},
}

// KindNames returns the registered tracker kinds, sorted.
func KindNames() []string {
	out := make([]string, 0, len(kinds))
	for k := range kinds {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Describe returns a registered kind's one-line description.
func Describe(kind string) string { return kinds[kind].description }

// New builds the configured tracker.
func New(cfg Config) (Tracker, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return kinds[cfg.Kind].build(cfg), nil
}

// Spec renders the config as a compact spec string,
// "kind:scan=16,gran=1,regions=128,samples=128,halflife=64,range=64",
// the format -tracker accepts and the trace header carries. The zero
// config renders as "".
func (c Config) Spec() string {
	if !c.On() {
		return ""
	}
	d := c.WithDefaults()
	s := fmt.Sprintf("%s:scan=%d,gran=%d,regions=%d,samples=%d,halflife=%g,range=%d",
		d.Kind, d.ScanEveryTicks, d.GranularityPages, d.RegionBudget,
		d.SamplesPerTick, d.HalflifeTicks, d.RangePages)
	if d.Oracle {
		s += ",oracle=1"
	}
	if d.Seed != 0 {
		s += fmt.Sprintf(",seed=%d", d.Seed)
	}
	return s
}

// ParseSpec parses a spec string back into a Config. A bare kind
// ("idlepage") takes every default; parameters follow after a colon as
// comma-separated key=value pairs. "" parses to the off config.
func ParseSpec(spec string) (Config, error) {
	if spec == "" {
		return Config{}, nil
	}
	var c Config
	kind, params, _ := strings.Cut(spec, ":")
	c.Kind = kind
	if params != "" {
		for _, kv := range strings.Split(params, ",") {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return Config{}, fmt.Errorf("tracker spec: malformed parameter %q", kv)
			}
			var err error
			switch k {
			case "scan":
				c.ScanEveryTicks, err = strconv.ParseUint(v, 10, 64)
			case "gran":
				c.GranularityPages, err = strconv.Atoi(v)
			case "regions":
				c.RegionBudget, err = strconv.Atoi(v)
			case "samples":
				c.SamplesPerTick, err = strconv.Atoi(v)
			case "halflife":
				c.HalflifeTicks, err = strconv.ParseFloat(v, 64)
			case "range":
				c.RangePages, err = strconv.Atoi(v)
			case "oracle":
				c.Oracle = v == "1" || v == "true"
			case "seed":
				c.Seed, err = strconv.ParseUint(v, 10, 64)
			default:
				return Config{}, fmt.Errorf("tracker spec: unknown parameter %q", k)
			}
			if err != nil {
				return Config{}, fmt.Errorf("tracker spec: parameter %q: %v", kv, err)
			}
		}
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}
