// Package swap models the swap device the default kernel reclaims to and
// the zswap-style compressed pool TMO offloads into. TPP's key argument
// against swap-backed CXL abstractions (§4 of the paper) is cost-based:
// every access to a swapped page takes a major fault plus a whole-page
// transfer, pushing effective latency far above CXL's ~200 ns load/store
// path. This package provides exactly those costs so the experiments can
// demonstrate the gap.
//
// The reclaim-speed asymmetry in §5.1/§6.3 ("migration to a NUMA node is
// orders of magnitude faster than swapping"; default Linux frees the local
// node 44x slower than TPP) comes from PageOutNs here versus the per-page
// migration cost in package migrate.
package swap

import (
	"fmt"

	"tppsim/internal/mem"
	"tppsim/internal/vmstat"
)

// Kind selects the backing store for the swap pool.
type Kind uint8

const (
	// KindZswap is an in-memory compressed pool (the paper's (z)swap).
	KindZswap Kind = iota
	// KindDisk is a flash/disk swap partition.
	KindDisk
)

// Config parameterizes a swap device.
type Config struct {
	Kind Kind
	// CapacityPages bounds the pool (0 = unbounded).
	CapacityPages uint64
	// PageOutNs is the CPU+IO cost to evict one page (compression for
	// zswap, write IO for disk). Defaults: 30 µs zswap, 120 µs disk —
	// the dominant term in reclaim slowness.
	PageOutNs float64
	// PageInNs is the major-fault service cost to bring one page back.
	// Defaults per Fig. 2: 3 µs zswap, 25 µs disk.
	PageInNs float64
	// CompressionRatio is bytes-in over bytes-stored for zswap (default
	// 3.0); disk stores uncompressed.
	CompressionRatio float64
}

// Device is one swap target with occupancy accounting.
type Device struct {
	cfg  Config
	used uint64
	stat *vmstat.NodeStats
	// framePages is the base pages per swapped PFN: 1 normally,
	// mem.HugeFramePages in huge-page mode, where one PageOut spools a
	// whole (split) 2 MB frame and occupancy/costs scale to match.
	framePages uint64
}

// New returns a device with defaults filled in.
func New(cfg Config, stat *vmstat.NodeStats) *Device {
	if cfg.PageOutNs == 0 {
		if cfg.Kind == KindZswap {
			cfg.PageOutNs = 30_000
		} else {
			cfg.PageOutNs = 120_000
		}
	}
	if cfg.PageInNs == 0 {
		if cfg.Kind == KindZswap {
			cfg.PageInNs = 3_000
		} else {
			cfg.PageInNs = 25_000
		}
	}
	if cfg.CompressionRatio == 0 {
		if cfg.Kind == KindZswap {
			cfg.CompressionRatio = 3.0
		} else {
			cfg.CompressionRatio = 1.0
		}
	}
	return &Device{cfg: cfg, stat: stat, framePages: 1}
}

// SetFramePages sets the base pages each swapped PFN covers (a machine
// property, set once by the simulator before any swap traffic).
func (d *Device) SetFramePages(fp uint64) { d.framePages = fp }

// Kind returns the device kind.
func (d *Device) Kind() Kind { return d.cfg.Kind }

// Used returns the number of pages currently swapped out.
func (d *Device) Used() uint64 { return d.used }

// StoredBytes returns the physical footprint of the pool after
// compression; for zswap this is what the pool costs in DRAM, and the
// difference versus Used()*PageSize is TMO's "memory saving".
func (d *Device) StoredBytes() float64 {
	return float64(d.used) * 4096 / d.cfg.CompressionRatio
}

// SavedPages returns the net pages of memory freed by the pool: pages
// swapped out minus the compressed pool's own footprint.
func (d *Device) SavedPages() float64 {
	return float64(d.used) - float64(d.used)/d.cfg.CompressionRatio
}

// PageOut evicts one page from the given node. It returns the time
// charged and false when the pool is full (reclaim must then skip the
// page).
func (d *Device) PageOut(node mem.NodeID) (costNs float64, ok bool) {
	if d.cfg.CapacityPages != 0 && d.used+d.framePages > d.cfg.CapacityPages {
		return 0, false
	}
	// A huge frame is split into base pages on the way out (swap stores
	// 4 KB pages), so occupancy and the per-page IO cost both scale.
	d.used += d.framePages
	d.stat.Add(node, vmstat.PswpOut, d.framePages)
	return d.cfg.PageOutNs * float64(d.framePages), true
}

// PageIn services a major fault for a swapped page faulting back onto
// the given node, returning the fault latency. It panics if the pool is
// empty — a page-in without a matching page-out is an accounting bug.
func (d *Device) PageIn(node mem.NodeID) (costNs float64) {
	if d.used < d.framePages {
		panic("swap: PageIn from empty pool")
	}
	d.used -= d.framePages
	d.stat.Add(node, vmstat.PswpIn, d.framePages)
	// One major fault services the whole frame (pgmajfault is
	// per-event), but every base page pays the transfer.
	d.stat.Inc(node, vmstat.PgmajFault)
	return d.cfg.PageInNs * float64(d.framePages)
}

// PageOutCost returns the configured page-out cost without performing one
// (used by reclaim budgeting).
func (d *Device) PageOutCost() float64 { return d.cfg.PageOutNs * float64(d.framePages) }

// String summarizes the device.
func (d *Device) String() string {
	k := "zswap"
	if d.cfg.Kind == KindDisk {
		k = "disk"
	}
	return fmt.Sprintf("swap(%s used=%d)", k, d.used)
}
