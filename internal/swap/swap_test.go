package swap

import (
	"math"
	"testing"

	"tppsim/internal/vmstat"
)

func TestDefaults(t *testing.T) {
	z := New(Config{Kind: KindZswap}, vmstat.NewNodeStats(1))
	if z.cfg.PageOutNs != 30_000 || z.cfg.PageInNs != 3_000 || z.cfg.CompressionRatio != 3.0 {
		t.Fatalf("zswap defaults wrong: %+v", z.cfg)
	}
	d := New(Config{Kind: KindDisk}, vmstat.NewNodeStats(1))
	if d.cfg.PageOutNs != 120_000 || d.cfg.PageInNs != 25_000 || d.cfg.CompressionRatio != 1.0 {
		t.Fatalf("disk defaults wrong: %+v", d.cfg)
	}
}

func TestPageOutIn(t *testing.T) {
	st := vmstat.NewNodeStats(1)
	d := New(Config{Kind: KindZswap}, st)
	cost, ok := d.PageOut(0)
	if !ok || cost != 30_000 {
		t.Fatalf("PageOut = %v,%v", cost, ok)
	}
	if d.Used() != 1 {
		t.Fatal("Used wrong after PageOut")
	}
	if st.Get(vmstat.PswpOut) != 1 {
		t.Fatal("pswpout not counted")
	}
	inCost := d.PageIn(0)
	if inCost != 3_000 || d.Used() != 0 {
		t.Fatalf("PageIn = %v, used=%d", inCost, d.Used())
	}
	if st.Get(vmstat.PswpIn) != 1 || st.Get(vmstat.PgmajFault) != 1 {
		t.Fatal("page-in counters wrong")
	}
}

func TestCapacityLimit(t *testing.T) {
	d := New(Config{Kind: KindDisk, CapacityPages: 2}, vmstat.NewNodeStats(1))
	for i := 0; i < 2; i++ {
		if _, ok := d.PageOut(0); !ok {
			t.Fatalf("PageOut %d refused below capacity", i)
		}
	}
	if _, ok := d.PageOut(0); ok {
		t.Fatal("PageOut beyond capacity succeeded")
	}
}

func TestPageInEmptyPanics(t *testing.T) {
	d := New(Config{Kind: KindZswap}, vmstat.NewNodeStats(1))
	defer func() {
		if recover() == nil {
			t.Fatal("PageIn from empty pool did not panic")
		}
	}()
	d.PageIn(0)
}

func TestCompressionAccounting(t *testing.T) {
	d := New(Config{Kind: KindZswap, CompressionRatio: 4}, vmstat.NewNodeStats(1))
	for i := 0; i < 8; i++ {
		d.PageOut(0)
	}
	if got := d.StoredBytes(); math.Abs(got-8*4096/4.0) > 1e-9 {
		t.Fatalf("StoredBytes = %v", got)
	}
	// 8 pages out, 2 pages of pool footprint -> 6 pages net saving.
	if got := d.SavedPages(); math.Abs(got-6) > 1e-9 {
		t.Fatalf("SavedPages = %v", got)
	}
}

func TestString(t *testing.T) {
	d := New(Config{Kind: KindDisk}, vmstat.NewNodeStats(1))
	d.PageOut(0)
	if got := d.String(); got != "swap(disk used=1)" {
		t.Fatalf("String = %q", got)
	}
}

func TestPageOutCostAccessor(t *testing.T) {
	d := New(Config{Kind: KindZswap, PageOutNs: 11}, vmstat.NewNodeStats(1))
	if d.PageOutCost() != 11 {
		t.Fatal("PageOutCost wrong")
	}
	if d.Kind() != KindZswap {
		t.Fatal("Kind wrong")
	}
}
