// Package xrand provides deterministic pseudo-random number generation for
// the simulator. Every stochastic component of the simulation draws from an
// explicitly seeded generator so that a run is fully reproducible from its
// seed: same seed, same access stream, same vmstat snapshot.
//
// The generator is splitmix64 seeded xoshiro256**, which is fast, has a
// 256-bit state, and passes BigCrush. We avoid math/rand so that the stream
// is stable across Go releases.
package xrand

import (
	"math"
	"math/bits"
)

// RNG is a deterministic xoshiro256** generator. The zero value is not
// usable; construct with New.
type RNG struct {
	s0, s1, s2, s3 uint64
}

// New returns a generator seeded from seed via splitmix64, which guarantees
// a well-mixed non-zero state for any seed value, including zero.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	r.s0, r.s1, r.s2, r.s3 = next(), next(), next(), next()
	return r
}

// Split derives an independent generator from r. It is used to give each
// subsystem (workload, sampler, failure injector) its own stream so that
// adding draws in one subsystem does not perturb another.
func (r *RNG) Split() *RNG {
	return New(r.Uint64() ^ 0xa0761d6478bd642f)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// State exposes the generator's four state words and SetState restores
// them. Together with Step they let batch loops keep a stream's state in
// registers across thousands of draws instead of paying eight memory
// operations per draw; the stream is identical to calling Uint64.
func (r *RNG) State() (s0, s1, s2, s3 uint64) { return r.s0, r.s1, r.s2, r.s3 }

// SetState restores state words previously obtained from State (after
// advancing them with Step).
func (r *RNG) SetState(s0, s1, s2, s3 uint64) { r.s0, r.s1, r.s2, r.s3 = s0, s1, s2, s3 }

// Step advances a raw xoshiro256** state by one draw. It is a pure
// function of the state words, so it inlines everywhere and the state
// stays in registers.
func Step(s0, s1, s2, s3 uint64) (out, t0, t1, t2, t3 uint64) {
	out = rotl(s1*5, 7) * 9
	t := s1 << 17
	s2 ^= s0
	s3 ^= s1
	s1 ^= s2
	s0 ^= s3
	s2 ^= t
	s3 = rotl(s3, 45)
	return out, s0, s1, s2, s3
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform integer in [0, n) using Lemire's multiply-shift
// rejection method. It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n called with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	// Rejection sampling on the high 64 bits of the 128-bit product.
	for {
		v := r.Uint64()
		hi, lo := mul64(v, n)
		if lo >= n || lo >= -n%n {
			return hi
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo); bits.Mul64
// compiles to a single widening multiply.
func mul64(a, b uint64) (hi, lo uint64) {
	return bits.Mul64(a, b)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p. The uniform draw is written out
// inline (identical arithmetic to Float64) so the whole predicate inlines
// into sampler hot paths; Float64 itself is over the inlining budget.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return float64(r.Uint64()>>11)/(1<<53) < p
}

// Norm returns a normally distributed float64 with mean mu and standard
// deviation sigma, using the Marsaglia polar method.
func (r *RNG) Norm(mu, sigma float64) float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return mu + sigma*u*math.Sqrt(-2*math.Log(s)/s)
	}
}

// Exp returns an exponentially distributed float64 with the given rate
// (mean 1/rate).
func (r *RNG) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("xrand: Exp called with rate <= 0")
	}
	return -math.Log(1-r.Float64()) / rate
}

// Perm returns a pseudo-random permutation of [0, n) as a slice.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
