package xrand

import "testing"

// drawN returns the next n draws of r.
func drawN(r *RNG, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.Uint64()
	}
	return out
}

// TestJumpChangesStream: a jumped generator draws a different sequence
// than its origin (the jump actually moved the state).
func TestJumpChangesStream(t *testing.T) {
	for _, seed := range []uint64{0, 1, 7, 0xdeadbeef} {
		a := New(seed)
		b := New(seed)
		b.Jump()
		c := New(seed)
		c.LongJump()
		as, bs, cs := drawN(a, 8), drawN(b, 8), drawN(c, 8)
		for i := range as {
			if as[i] != bs[i] {
				goto jumpOK
			}
		}
		t.Fatalf("seed %d: Jump did not change the stream", seed)
	jumpOK:
		for i := range as {
			if as[i] != cs[i] && bs[i] != cs[i] {
				goto longOK
			}
		}
		t.Fatalf("seed %d: LongJump stream collides with base or Jump stream", seed)
	longOK:
	}
}

// TestJumpCommutesWithStep: jumping is a (huge) number of ordinary
// steps, so step∘jump == jump∘step. This is the property the parallel
// core's determinism leans on: deriving a shard stream before or after
// the parent has drawn is the same as shifting which draws it sees, not
// a different family of streams.
func TestJumpCommutesWithStep(t *testing.T) {
	for _, seed := range []uint64{0, 3, 99} {
		a := New(seed)
		b := New(seed)
		a.Uint64()
		a.Jump()
		b.Jump()
		b.Uint64()
		if a.s0 != b.s0 || a.s1 != b.s1 || a.s2 != b.s2 || a.s3 != b.s3 {
			t.Fatalf("seed %d: Jump does not commute with Uint64", seed)
		}
		a.LongJump()
		a.Uint64()
		b.Uint64()
		b.LongJump()
		if a.s0 != b.s0 || a.s1 != b.s1 || a.s2 != b.s2 || a.s3 != b.s3 {
			t.Fatalf("seed %d: LongJump does not commute with Uint64", seed)
		}
	}
}

// TestSubstreamReproducible: the same (seed, index) always yields the
// same stream, and index 0 is the plain seeded generator.
func TestSubstreamReproducible(t *testing.T) {
	for i := 0; i < 6; i++ {
		a := drawN(Substream(42, i), 64)
		b := drawN(Substream(42, i), 64)
		for k := range a {
			if a[k] != b[k] {
				t.Fatalf("substream %d not reproducible at draw %d", i, k)
			}
		}
	}
	a, b := drawN(Substream(42, 0), 64), drawN(New(42), 64)
	for k := range a {
		if a[k] != b[k] {
			t.Fatalf("Substream(seed, 0) != New(seed) at draw %d", k)
		}
	}
}

// TestSubstreamOrderIndependent: a substream's sequence depends only on
// (seed, index) — deriving them via the batch helper, in any order, or
// standalone gives identical streams. This is what lets worker counts
// change without perturbing any shard's randomness.
func TestSubstreamOrderIndependent(t *testing.T) {
	const seed = 7
	batch := Substreams(seed, 8)
	if len(batch) != 8 {
		t.Fatalf("Substreams returned %d streams, want 8", len(batch))
	}
	// Derive standalone in reverse order; must match the batch.
	for i := 7; i >= 0; i-- {
		a := drawN(batch[i], 32)
		b := drawN(Substream(seed, i), 32)
		for k := range a {
			if a[k] != b[k] {
				t.Fatalf("substream %d: batch and standalone derivation disagree at draw %d", i, k)
			}
		}
	}
}

// TestSubstreamsNonOverlapping is the long-horizon property test: no
// window of any substream's draws appears in the serial (index 0)
// sequence or in any other substream within the tested horizon.
// Substreams sit 2^192 draws apart, so any overlap here would mean the
// jump polynomial is wrong, not bad luck.
func TestSubstreamsNonOverlapping(t *testing.T) {
	const (
		seed    = 123
		streams = 8
		horizon = 1 << 14 // draws per stream
	)
	// Hash overlapping 2-draw windows; 128 bits of content per window
	// makes a chance collision across 8*2^14 windows vanishingly rare,
	// so any hit is a genuine shared subsequence.
	type window struct{ a, b uint64 }
	seen := make(map[window]int, streams*horizon)
	for i, r := range Substreams(seed, streams) {
		draws := drawN(r, horizon)
		for k := 0; k+1 < len(draws); k++ {
			w := window{draws[k], draws[k+1]}
			if prev, dup := seen[w]; dup && prev != i {
				t.Fatalf("substreams %d and %d share a draw window at offset %d", prev, i, k)
			}
			seen[w] = i
		}
	}
}
