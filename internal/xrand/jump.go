// Stream splitting for the parallel sim core. xoshiro256** supports
// polynomial jumps: Jump advances a generator by 2^128 draws and
// LongJump by 2^192, both in a few hundred integer operations. Deriving
// shard streams by jumping one seeded generator — rather than hashing
// per-shard seeds as Split does — gives streams that provably never
// overlap within 2^128 draws of each other, and makes the derivation a
// pure function of (seed, shard index): the same shard always sees the
// same stream no matter how many shards exist or in what order they
// were built.
package xrand

// jumpPoly and longJumpPoly are the published xoshiro256** jump
// polynomials (Blackman & Vigna): applying them advances the state by
// exactly 2^128 and 2^192 draws respectively.
var (
	jumpPoly     = [4]uint64{0x180ec6d33cfd0aba, 0xd5a61266f0c9392c, 0xa9582618e03fc9aa, 0x39abdc4529b1661c}
	longJumpPoly = [4]uint64{0x76e15d3efefdcbbf, 0xc5004e441c522fb3, 0x77710069854ee241, 0x39109bb02acbe635}
)

// applyJump replaces r's state with the polynomial image: the state
// reached after stepping poly's encoded number of draws.
func (r *RNG) applyJump(poly [4]uint64) {
	var s0, s1, s2, s3 uint64
	for _, word := range poly {
		for b := 0; b < 64; b++ {
			if word&(1<<uint(b)) != 0 {
				s0 ^= r.s0
				s1 ^= r.s1
				s2 ^= r.s2
				s3 ^= r.s3
			}
			r.Uint64()
		}
	}
	r.s0, r.s1, r.s2, r.s3 = s0, s1, s2, s3
}

// Jump advances r by 2^128 draws. Because the jump is just a very long
// sequence of ordinary steps, it commutes with Uint64: draw-then-jump
// and jump-then-draw land on the same state.
func (r *RNG) Jump() { r.applyJump(jumpPoly) }

// LongJump advances r by 2^192 draws, partitioning the period into
// 2^64 non-overlapping blocks of 2^192 draws each — one block per
// substream.
func (r *RNG) LongJump() { r.applyJump(longJumpPoly) }

// Substream returns the i'th derived stream of seed: New(seed) advanced
// by i long jumps. Substream(seed, 0) draws the identical sequence to
// New(seed); stream i starts 2^192 draws ahead of stream i-1, so no two
// substreams of one seed can collide within any simulation's horizon.
// The derivation depends only on (seed, i) — not on which other
// substreams exist — so shard streams are stable as worker counts
// change. Cost is O(i) jumps; callers with many streams should use
// Substreams.
func Substream(seed uint64, i int) *RNG {
	r := New(seed)
	for k := 0; k < i; k++ {
		r.LongJump()
	}
	return r
}

// Substreams returns substreams 0..n-1 of seed, deriving each from the
// previous with one long jump (O(n) total). Substreams(seed, n)[i]
// draws the identical sequence to Substream(seed, i).
func Substreams(seed uint64, n int) []*RNG {
	out := make([]*RNG, n)
	cur := New(seed)
	for i := 0; i < n; i++ {
		c := *cur
		out[i] = &c
		cur.LongJump()
	}
	return out
}
