package xrand

import (
	"math"
	"sort"
)

// Zipf samples integers in [0, n) with probability proportional to
// 1/(i+1)^s. It precomputes the CDF so sampling is O(log n); this trades
// memory for speed and determinism, which suits the simulator's fixed-size
// hot sets.
type Zipf struct {
	cdf []float64
	rng *RNG
}

// NewZipf returns a Zipf sampler over [0, n) with exponent s >= 0.
// s == 0 degenerates to the uniform distribution.
func NewZipf(rng *RNG, n int, s float64) *Zipf {
	if n <= 0 {
		panic("xrand: NewZipf called with n <= 0")
	}
	z := &Zipf{cdf: make([]float64, n), rng: rng}
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		z.cdf[i] = sum
	}
	inv := 1 / sum
	for i := range z.cdf {
		z.cdf[i] *= inv
	}
	z.cdf[n-1] = 1 // guard against rounding
	return z
}

// N returns the support size.
func (z *Zipf) N() int { return len(z.cdf) }

// Next returns the next sample in [0, N()).
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// Weighted samples an index in [0, len(weights)) with probability
// proportional to weights[i]. Weights may be updated between draws via
// SetWeight; the CDF is rebuilt lazily.
type Weighted struct {
	weights []float64
	cdf     []float64
	dirty   bool
	rng     *RNG
}

// NewWeighted returns a sampler over the given weights. Negative weights
// are treated as zero. At least one weight must be positive at sampling
// time.
func NewWeighted(rng *RNG, weights []float64) *Weighted {
	w := &Weighted{weights: append([]float64(nil), weights...), rng: rng, dirty: true}
	return w
}

// SetWeight updates weights[i].
func (w *Weighted) SetWeight(i int, v float64) {
	w.weights[i] = v
	w.dirty = true
}

// Weight returns weights[i].
func (w *Weighted) Weight(i int) float64 { return w.weights[i] }

// Len returns the number of weights.
func (w *Weighted) Len() int { return len(w.weights) }

func (w *Weighted) rebuild() {
	if cap(w.cdf) < len(w.weights) {
		w.cdf = make([]float64, len(w.weights))
	}
	w.cdf = w.cdf[:len(w.weights)]
	sum := 0.0
	for i, v := range w.weights {
		if v > 0 {
			sum += v
		}
		w.cdf[i] = sum
	}
	if sum <= 0 {
		panic("xrand: Weighted with no positive weights")
	}
	inv := 1 / sum
	for i := range w.cdf {
		w.cdf[i] *= inv
	}
	w.cdf[len(w.cdf)-1] = 1
	w.dirty = false
}

// Next returns the next weighted sample.
func (w *Weighted) Next() int {
	if w.dirty {
		w.rebuild()
	}
	u := w.rng.Float64()
	return sort.SearchFloat64s(w.cdf, u)
}

// Pareto samples from a bounded Pareto distribution on [lo, hi] with shape
// alpha. Used for object-size and lifetime draws in the workload
// generators.
type Pareto struct {
	lo, hi, alpha float64
	rng           *RNG
}

// NewPareto returns a bounded Pareto sampler. Requires 0 < lo < hi and
// alpha > 0.
func NewPareto(rng *RNG, lo, hi, alpha float64) *Pareto {
	if !(lo > 0 && hi > lo && alpha > 0) {
		panic("xrand: invalid Pareto parameters")
	}
	return &Pareto{lo: lo, hi: hi, alpha: alpha, rng: rng}
}

// Next returns the next sample in [lo, hi].
func (p *Pareto) Next() float64 {
	u := p.rng.Float64()
	la := math.Pow(p.lo, p.alpha)
	ha := math.Pow(p.hi, p.alpha)
	return math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/p.alpha)
}
