package xrand

import "math"

// searchCDF returns the smallest i with cdf[i] >= u — exactly
// sort.SearchFloat64s, hand-rolled so the sampler hot path avoids the
// closure call per probe. cdf[len-1] is pinned to 1, so u in [0,1) always
// resolves in range.
func searchCDF(cdf []float64, u float64) int {
	return searchCDFRange(cdf, u, 0, len(cdf))
}

// searchCDFRange is searchCDF restricted to [lo, hi) (the answer must lie
// in that range). Wide ranges binary-search; the final few entries use a
// branch-predictable linear count (the prefix of entries < u), which the
// compiler lowers to conditional moves — binary-search probes on random u
// are guaranteed mispredicts.
func searchCDFRange(cdf []float64, u float64, lo, hi int) int {
	for hi-lo > 8 {
		mid := int(uint(lo+hi) >> 1)
		if cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	for _, c := range cdf[lo:hi] {
		// Branchless count of entries < u: for finite IEEE values c-u is
		// negative exactly when c < u (a nonzero difference never rounds
		// to zero), so the sign bit is the predicate. A compare-branch
		// here mispredicts ~50% against random u and dominates the draw.
		lo += int(math.Float64bits(c-u) >> 63)
	}
	return lo
}

// Zipf samples integers in [0, n) with probability proportional to
// 1/(i+1)^s. It precomputes the CDF so sampling is O(log n); this trades
// memory for speed and determinism, which suits the simulator's fixed-size
// hot sets. Large supports additionally carry a guide table that maps a
// uniform draw to a narrow CDF range, so the common case resolves with a
// couple of probes instead of a full-width binary search. The guide is a
// pure accelerator: samples are identical with or without it.
type Zipf struct {
	cdf   []float64
	guide []int32 // len zipfGuideSize+1; nil for small supports
	rng   *RNG
}

// zipfGuideSize buckets the unit interval for the guide table. A power of
// two, so u*zipfGuideSize is exact and floor(u*G) identifies u's bucket
// without rounding hazards.
const zipfGuideSize = 1024

// NewZipf returns a Zipf sampler over [0, n) with exponent s >= 0.
// s == 0 degenerates to the uniform distribution.
func NewZipf(rng *RNG, n int, s float64) *Zipf {
	if n <= 0 {
		panic("xrand: NewZipf called with n <= 0")
	}
	z := &Zipf{cdf: make([]float64, n), rng: rng}
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		z.cdf[i] = sum
	}
	inv := 1 / sum
	for i := range z.cdf {
		z.cdf[i] *= inv
	}
	z.cdf[n-1] = 1 // guard against rounding
	if n > 128 {
		z.guide = make([]int32, zipfGuideSize+1)
		for k := 1; k <= zipfGuideSize; k++ {
			z.guide[k] = int32(searchCDF(z.cdf, float64(k)/zipfGuideSize))
		}
	}
	return z
}

// N returns the support size.
func (z *Zipf) N() int { return len(z.cdf) }

// Next returns the next sample in [0, N()).
func (z *Zipf) Next() int {
	// Inline uniform draw (== rng.Float64); keeps the sampler call-free.
	u := float64(z.rng.Uint64()>>11) / (1 << 53)
	if z.guide == nil {
		return searchCDF(z.cdf, u)
	}
	// u lies in guide bucket k, so the answer (smallest i with
	// cdf[i] >= u) is bounded by the bucket's precomputed CDF range.
	k := int(u * zipfGuideSize)
	return searchCDFRange(z.cdf, u, int(z.guide[k]), int(z.guide[k+1]))
}

// Weighted samples an index in [0, len(weights)) with probability
// proportional to weights[i]. Weights may be updated between draws via
// SetWeight; the CDF is rebuilt lazily.
type Weighted struct {
	weights []float64
	cdf     []float64
	dirty   bool
	rng     *RNG
}

// NewWeighted returns a sampler over the given weights. Negative weights
// are treated as zero. At least one weight must be positive at sampling
// time.
func NewWeighted(rng *RNG, weights []float64) *Weighted {
	w := &Weighted{weights: append([]float64(nil), weights...), rng: rng, dirty: true}
	return w
}

// SetWeight updates weights[i].
func (w *Weighted) SetWeight(i int, v float64) {
	w.weights[i] = v
	w.dirty = true
}

// Weight returns weights[i].
func (w *Weighted) Weight(i int) float64 { return w.weights[i] }

// Len returns the number of weights.
func (w *Weighted) Len() int { return len(w.weights) }

func (w *Weighted) rebuild() {
	if cap(w.cdf) < len(w.weights) {
		w.cdf = make([]float64, len(w.weights))
	}
	w.cdf = w.cdf[:len(w.weights)]
	sum := 0.0
	for i, v := range w.weights {
		if v > 0 {
			sum += v
		}
		w.cdf[i] = sum
	}
	if sum <= 0 {
		panic("xrand: Weighted with no positive weights")
	}
	inv := 1 / sum
	for i := range w.cdf {
		w.cdf[i] *= inv
	}
	w.cdf[len(w.cdf)-1] = 1
	w.dirty = false
}

// Next returns the next weighted sample.
func (w *Weighted) Next() int {
	if w.dirty {
		w.rebuild()
	}
	u := float64(w.rng.Uint64()>>11) / (1 << 53)
	return searchCDF(w.cdf, u)
}

// CDF returns the sampler's cumulative distribution (rebuilding it if
// weights changed). The slice is owned by the sampler and valid until
// the next SetWeight. Together with SearchCDF and RNG it lets batch
// loops inline the draw that Next performs.
func (w *Weighted) CDF() []float64 {
	if w.dirty {
		w.rebuild()
	}
	return w.cdf
}

// RNG returns the sampler's private random stream — the one Next draws
// from. Inlined batch draws must use it, not the caller's stream.
func (w *Weighted) RNG() *RNG { return w.rng }

// SearchCDF returns the smallest i with cdf[i] >= u — the inverse-CDF
// lookup Next and Zipf.Next perform, exported for inlined batch draws.
func SearchCDF(cdf []float64, u float64) int { return searchCDF(cdf, u) }

// Pareto samples from a bounded Pareto distribution on [lo, hi] with shape
// alpha. Used for object-size and lifetime draws in the workload
// generators.
type Pareto struct {
	lo, hi, alpha float64
	rng           *RNG
}

// NewPareto returns a bounded Pareto sampler. Requires 0 < lo < hi and
// alpha > 0.
func NewPareto(rng *RNG, lo, hi, alpha float64) *Pareto {
	if !(lo > 0 && hi > lo && alpha > 0) {
		panic("xrand: invalid Pareto parameters")
	}
	return &Pareto{lo: lo, hi: hi, alpha: alpha, rng: rng}
}

// Next returns the next sample in [lo, hi].
func (p *Pareto) Next() float64 {
	u := p.rng.Float64()
	la := math.Pow(p.lo, p.alpha)
	ha := math.Pow(p.hi, p.alpha)
	return math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/p.alpha)
}
