package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Fatalf("zero-seeded RNG produced duplicates: %d unique of 100", len(seen))
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(7)
	c1 := r.Split()
	c2 := r.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("split children produced identical first draw")
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	for n := 1; n <= 64; n++ {
		for i := 0; i < 100; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUniform(t *testing.T) {
	r := New(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.05 {
			t.Errorf("bucket %d: got %d, want ~%.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	sum := 0.0
	const draws = 100000
	for i := 0; i < draws; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
		sum += f
	}
	if mean := sum / draws; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(9)
	const draws = 100000
	hits := 0
	for i := 0; i < draws; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / draws
	if math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bool(0.3) rate = %v", p)
	}
	if r.Bool(0) {
		t.Error("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Error("Bool(1) returned false")
	}
}

func TestNormMoments(t *testing.T) {
	r := New(13)
	const draws = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < draws; i++ {
		v := r.Norm(10, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / draws
	stddev := math.Sqrt(sumsq/draws - mean*mean)
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("Norm mean = %v, want ~10", mean)
	}
	if math.Abs(stddev-2) > 0.05 {
		t.Errorf("Norm stddev = %v, want ~2", stddev)
	}
}

func TestExpMean(t *testing.T) {
	r := New(17)
	const draws = 200000
	sum := 0.0
	for i := 0; i < draws; i++ {
		sum += r.Exp(0.5)
	}
	if mean := sum / draws; math.Abs(mean-2) > 0.05 {
		t.Errorf("Exp(0.5) mean = %v, want ~2", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(19)
	for n := 0; n < 50; n++ {
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesElements(t *testing.T) {
	r := New(23)
	s := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range s {
		sum += v
	}
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	got := 0
	for _, v := range s {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed elements: %v", s)
	}
}

// Property: Uint64n(n) < n for arbitrary positive n.
func TestUint64nBoundProperty(t *testing.T) {
	r := New(29)
	f := func(n uint64) bool {
		if n == 0 {
			return true
		}
		return r.Uint64n(n) < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: mul64 matches big-integer multiplication on the low bits and
// is consistent with shifting.
func TestMul64Property(t *testing.T) {
	f := func(a, b uint64) bool {
		hi, lo := mul64(a, b)
		if lo != a*b {
			return false
		}
		// Verify hi via per-word decomposition.
		const mask = 1<<32 - 1
		a0, a1 := a&mask, a>>32
		b0, b1 := b&mask, b>>32
		carry := (a0*b0)>>32 + (a1*b0)&mask + (a0*b1)&mask
		wantHi := a1*b1 + (a1*b0)>>32 + (a0*b1)>>32 + carry>>32
		return hi == wantHi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(31)
	z := NewZipf(r, 1000, 1.0)
	const draws = 100000
	counts := make([]int, 1000)
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	// Rank 0 should dominate rank 99 by roughly 100x under s=1.
	if counts[0] < counts[99]*20 {
		t.Errorf("Zipf not skewed: rank0=%d rank99=%d", counts[0], counts[99])
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	r := New(37)
	z := NewZipf(r, 10, 0)
	const draws = 100000
	counts := make([]int, 10)
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	for i, c := range counts {
		if math.Abs(float64(c)-draws/10) > draws/10*0.05 {
			t.Errorf("bucket %d = %d, want ~%d", i, c, draws/10)
		}
	}
}

func TestZipfRange(t *testing.T) {
	r := New(41)
	z := NewZipf(r, 7, 1.2)
	for i := 0; i < 10000; i++ {
		v := z.Next()
		if v < 0 || v >= 7 {
			t.Fatalf("Zipf out of range: %d", v)
		}
	}
}

func TestWeightedRespectsWeights(t *testing.T) {
	r := New(43)
	w := NewWeighted(r, []float64{1, 0, 3})
	const draws = 100000
	counts := make([]int, 3)
	for i := 0; i < draws; i++ {
		counts[w.Next()]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight bucket sampled %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.2 {
		t.Errorf("weight ratio = %v, want ~3", ratio)
	}
}

func TestWeightedSetWeight(t *testing.T) {
	r := New(47)
	w := NewWeighted(r, []float64{1, 1})
	w.SetWeight(0, 0)
	for i := 0; i < 1000; i++ {
		if w.Next() != 1 {
			t.Fatal("SetWeight(0,0) ignored")
		}
	}
	if w.Weight(1) != 1 || w.Len() != 2 {
		t.Fatal("accessors wrong")
	}
}

func TestParetoBounds(t *testing.T) {
	r := New(53)
	p := NewPareto(r, 1, 100, 1.5)
	for i := 0; i < 10000; i++ {
		v := p.Next()
		if v < 1 || v > 100 {
			t.Fatalf("Pareto out of bounds: %v", v)
		}
	}
}

func TestParetoSkewsLow(t *testing.T) {
	r := New(59)
	p := NewPareto(r, 1, 1000, 1.2)
	low := 0
	const draws = 10000
	for i := 0; i < draws; i++ {
		if p.Next() < 10 {
			low++
		}
	}
	if float64(low)/draws < 0.8 {
		t.Errorf("Pareto(1.2) mass below 10 = %v, want > 0.8", float64(low)/draws)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkZipfNext(b *testing.B) {
	r := New(1)
	z := NewZipf(r, 1<<16, 0.99)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = z.Next()
	}
}
