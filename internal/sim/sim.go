// Package sim assembles the tiered-memory machine and runs a workload
// under a placement policy. One Machine owns the full substrate stack —
// page store, topology, per-node LRU vectors, allocator, reclaim daemon,
// NUMA balancer, optional AutoTiering/TMO/Chameleon — and advances it in
// one-second ticks:
//
//  1. the workload's Tick performs churn, growth, and warm-up flooding
//     (each touch is a memory access, and fresh touches demand-fault
//     pages through the allocator);
//  2. AccessesPerTick sampled accesses draw from the workload's
//     distribution; each one resolves latency by resident node, may take
//     a NUMA hint fault (and trigger promotion), updates LRU aging, and
//     feeds the profilers;
//  3. the kernel daemons run (kswapd demotion/reclaim, NUMA-balancing
//     scans, AutoTiering epochs, the TMO controller);
//  4. metrics are folded into per-tick accumulators and time series.
//
// Throughput reporting follows the paper: per-tick average access latency
// (plus amortized OS stall) drives the workload's throughput model,
// normalized to an all-local baseline.
package sim

import (
	"fmt"

	"tppsim/internal/alloc"
	"tppsim/internal/autotiering"
	"tppsim/internal/chameleon"
	"tppsim/internal/core"
	"tppsim/internal/fault"
	"tppsim/internal/lru"
	"tppsim/internal/mem"
	"tppsim/internal/metrics"
	"tppsim/internal/migrate"
	"tppsim/internal/numab"
	"tppsim/internal/pagetable"
	"tppsim/internal/probe"
	"tppsim/internal/reclaim"
	"tppsim/internal/series"
	"tppsim/internal/swap"
	"tppsim/internal/tier"
	"tppsim/internal/tmo"
	"tppsim/internal/trace"
	"tppsim/internal/tracker"
	"tppsim/internal/vmstat"
	"tppsim/internal/workload"
	"tppsim/internal/xrand"
)

// TickSeconds is the wall-clock length of one simulator tick.
const TickSeconds = 1.0

// Config describes one run.
type Config struct {
	Seed     uint64
	Policy   core.Policy
	Workload workload.Workload

	// Topology declares the machine: N nodes with per-node capacity
	// (absolute pages or working-set ratio shares), kind, latency,
	// bandwidth, and a distance matrix. Use the tier presets (PresetCXL,
	// PresetDualSocket, PresetExpander) or build a custom Spec. Leaving
	// it empty falls back to the legacy two-node sugar below.
	Topology tier.Spec

	// Legacy node sizing for the paper's 2-node box, kept as sugar over
	// Topology (deprecated: prefer Topology). Either set
	// LocalPages/CXLPages explicitly, or give a Ratio (e.g. {2,1} or
	// {1,4}) to derive them from the workload's working set with Slack
	// headroom. Ratio {1,0} builds the all-local baseline. Mutually
	// exclusive with Topology.
	LocalPages uint64
	CXLPages   uint64
	Ratio      [2]uint64
	// Slack is the capacity headroom over the working set (default 0.08;
	// the paper: "the whole system has enough memory").
	Slack float64
	// CXLLatencyNs overrides the CXL load latency on the legacy 2-node
	// machine (deprecated: prefer NodeLatencyNs, which works on any
	// topology).
	CXLLatencyNs float64
	// NodeLatencyNs overrides per-node load latency, indexed by node ID;
	// zero entries keep the node's default (the Fig. 16 sweep, per node).
	NodeLatencyNs []float64

	// Minutes is the run length in simulated minutes (default 60).
	Minutes int
	// AccessesPerTick is the sampled access-stream rate (default 2000).
	AccessesPerTick int
	// AccessScale is how many real application accesses each sampled
	// access represents (default 100). Per-page event costs (faults,
	// migrations, stalls) are amortized over the real rate.
	AccessScale float64
	// Workers shards each tick's access-batch stage phase (page-table
	// translation + page-line warming) across worker goroutines; all
	// state mutation stays serial, so results are bit-identical for any
	// value — same seed, same scalars, vmstat, series, histograms, and
	// trace bytes (see parallel.go). 0 (the zero value) and 1 run
	// today's exact serial path; N > 1 uses N workers; WorkersAuto (-1)
	// uses GOMAXPROCS. Sharding pays off on large machines whose page
	// store outgrows the cache; small machines should stay serial.
	Workers int

	// HugePages backs the machine with 2 MB huge pages over an
	// extent-compressed page table: aligned 512-page frames allocate,
	// translate, migrate, and age as single units (one LRU entry, one
	// migration charge, hint-fault sampling at huge granularity), and
	// simulator state shrinks ~512x per resident page — the
	// terabyte-scale configuration. Equivalent to Topology.HugePages.
	// Off — the default — keeps runs bit-identical to previous builds.
	HugePages bool

	// RecordEveryTicks sets the series resolution (default 30).
	RecordEveryTicks int
	// SampleEveryTicks enables the per-tick per-node series plane: every
	// N ticks the machine snapshots each node's vmstat deltas and
	// residency into a columnar self-coarsening series
	// (metrics.Run.NodeSeries). 0 — the default — disables sampling;
	// runs are then bit- and alloc-identical to pre-plane builds.
	SampleEveryTicks int
	// SampleBudget caps the retained samples (default 512); a full
	// series halves itself and doubles its cadence.
	SampleBudget int
	// ProbeLatency enables the distribution plane's histograms
	// (metrics.Run.LatencyHist): per-node access latency, migration
	// costs, allocstall durations, reclaim scan batches. Off — the
	// default — keeps runs bit- and alloc-identical to probe-free
	// builds; on costs a few percent of tick time and allocates nothing
	// per tick.
	ProbeLatency bool
	// ProbePhases enables the tick-phase wall-clock profiler
	// (metrics.Run.PhaseProfile). The profile is observational only:
	// enabling it never changes a run's simulated results.
	ProbePhases bool
	// EnableChameleon attaches the profiler.
	EnableChameleon bool
	// ChameleonConfig overrides profiler defaults when enabled.
	ChameleonConfig chameleon.Config

	// RecordTo, when set, captures the workload's full event stream to
	// the given trace file (gzip-compressed when the path ends in
	// ".gz") during the run. The trace is finalized when Run completes;
	// check Machine.RecordError afterwards. Recording is transparent:
	// the run's results are identical with or without it.
	RecordTo string

	// Tracker enables the sampled access-tracking plane: the configured
	// tracker observes the access stream through a per-access hook and
	// folds what it saw into a heatmap on its scan cadence
	// (metrics.Run.Tracker carries the summary). The empty config — the
	// default — builds no plane and leaves runs bit- and alloc-identical
	// to tracker-free builds. The plane's randomness (damon's sampling)
	// comes from its own seed, never the machine streams. When the
	// policy is the sampled family (core.Policy.Sampled) the plane also
	// drives the heat-classifying mover; an unset Kind then defaults to
	// idlepage.
	Tracker tracker.Config

	// Faults is the deterministic fault-injection schedule: node
	// offline/online windows, latency-degradation windows, transient
	// migration-failure windows with retry/backoff, and capacity loss.
	// The plane draws randomness only from Faults.Seed, so the empty
	// schedule (the default) leaves runs bit- and alloc-identical to a
	// machine built without the plane, and a fixed machine seed plus a
	// fixed schedule reproduces identical faulted runs. Recorded traces
	// (v6) carry the schedule, so replays rebuild the same faults.
	Faults fault.Schedule
}

func (c Config) withDefaults() Config {
	if c.Minutes == 0 {
		c.Minutes = 60
	}
	if c.AccessesPerTick == 0 {
		c.AccessesPerTick = 2000
	}
	if c.AccessScale == 0 {
		c.AccessScale = 100
	}
	if c.RecordEveryTicks == 0 {
		c.RecordEveryTicks = 30
	}
	if c.Slack == 0 {
		c.Slack = 0.08
	}
	if len(c.Topology.Nodes) == 0 && c.Ratio == [2]uint64{} && c.LocalPages == 0 {
		c.Ratio = [2]uint64{2, 1}
	}
	return c
}

// Machine is one assembled simulation instance.
type Machine struct {
	cfg   Config
	store *mem.Store
	topo  *tier.Topology
	vecs  []*lru.Vec
	stat  *vmstat.NodeStats
	as    *pagetable.AddressSpace

	engine    *migrate.Engine
	allocator *alloc.Allocator
	daemon    *reclaim.Daemon
	balancer  *numab.Balancer
	atier     *autotiering.Tiering
	tmoctl    *tmo.Controller
	swapd     *swap.Device
	cham      *chameleon.Chameleon

	wl workload.Workload
	// batch is wl's batched draw fast path, when it offers one; the
	// access stream then costs one call per tick instead of one
	// interface dispatch per access.
	batch     workload.BatchAccessor
	accessBuf []pagetable.VPN
	pfnBuf    []mem.PFN
	// par shards the batch's stage phase across workers when
	// Config.Workers > 1 (nil = serial; see parallel.go).
	par *stagePool
	// warmSink keeps the translate pass's page-line touches observable so
	// the compiler cannot delete them; the loads are the point (they pull
	// each access's page line toward the cache ahead of the heavy pass).
	warmSink uint64
	recorder *trace.Recorder
	recErr   error
	rng      *xrand.RNG
	wlRNG    *xrand.RNG

	tick    uint64
	cur     metrics.Tick
	run     *metrics.Run
	baseLat float64
	failed  bool
	failWhy string

	// Per-(home CPU, resident node) load-latency matrix cached from the
	// topology (flattened row-major) so the access hot path is one
	// multiply and two slice indexes instead of pointer-chasing through
	// Topology. Sweeps configure latencies via
	// Config.CXLLatencyNs/NodeLatencyNs before assembly; only the fault
	// plane's latency-degradation edges change them mid-run, and each
	// edge calls refreshLatMat. On single-socket machines row 0 is the
	// only row read.
	latMat    []float64
	nNodes    int
	nodeLocal []bool
	// cpuNodes lists the CPU-attached nodes; regions are placed on them
	// round-robin (their home socket), which decides both the preferred
	// allocation node and the access-latency row for their pages.
	cpuNodes   []mem.NodeID
	regionHome map[pagetable.VPN]mem.NodeID
	mmapCount  int
	// numabOn caches whether NUMA balancing is enabled so the access path
	// only calls into the balancer on actual hint faults (PGHinted set).
	numabOn bool

	// Previous cumulative promote/demote counts, for the per-tick deltas
	// fold needs. Plain integers: non-record ticks allocate nothing.
	prevPromote uint64
	prevDemote  uint64

	// Huge-page mode (Config.HugePages / Topology.HugePages): every PFN
	// is a 2 MB frame of framePages base pages over an extent page
	// table. prevSplits/prevMerges carry the extent-table churn into the
	// vmstat extent_split/extent_merge counters per tick.
	huge       bool
	frameShift uint
	framePages uint64
	prevSplits uint64
	prevMerges uint64

	// Per-tick per-node sampling (Config.SampleEveryTicks): nil when
	// off; levelsBuf is reused so sample ticks allocate nothing.
	sampler   *series.Sampler
	levelsBuf []series.Levels

	// Probe plane (Config.ProbeLatency/ProbePhases or EnableProbes): nil
	// when off. prof and latAcc cache the sub-planes so the hot paths
	// pay one nil check each — latAcc aliases probes.Lat.Access.
	probes *probe.Probes
	prof   *probe.PhaseProfiler
	latAcc []probe.Histogram

	// Fault plane (Config.Faults): nil when the schedule is empty, so
	// unfaulted runs pay one nil check per tick and nothing else.
	faults *faultDriver

	// Tracker plane (Config.Tracker / the sampled policy): nil when off,
	// so tracker-free runs pay one nil check per access and per tick.
	trkPlane *tracker.Plane
	// numabTrk is the balancer seen through the tracker.Tracker
	// interface; the daemon phase drives the scan clock through it.
	numabTrk tracker.Tracker
}

// New assembles a machine from the config.
func New(cfg Config) (*Machine, error) {
	cfg = cfg.withDefaults()
	if cfg.Workload == nil {
		return nil, fmt.Errorf("sim: no workload")
	}
	var topo *tier.Topology
	var err error
	if len(cfg.Topology.Nodes) > 0 {
		if cfg.Ratio != [2]uint64{} || cfg.LocalPages != 0 || cfg.CXLPages != 0 {
			return nil, fmt.Errorf("sim: Topology and the legacy Ratio/LocalPages/CXLPages sizing are mutually exclusive")
		}
		if cfg.CXLLatencyNs != 0 {
			return nil, fmt.Errorf("sim: CXLLatencyNs only applies to the legacy 2-node machine; use NodeLatencyNs with Topology")
		}
		topo, err = cfg.Topology.Build(cfg.Workload.TotalPages(), cfg.Slack)
	} else {
		local, cxl := cfg.LocalPages, cfg.CXLPages
		if local == 0 {
			local, cxl = tier.RatioPages(cfg.Workload.TotalPages(), cfg.Ratio[0], cfg.Ratio[1], cfg.Slack)
		}
		topo, err = tier.NewCXLSystem(tier.Config{
			LocalPages:   local,
			CXLPages:     cxl,
			CXLLatencyNs: cfg.CXLLatencyNs,
		})
	}
	if err != nil {
		return nil, err
	}
	for i, ns := range cfg.NodeLatencyNs {
		if ns > 0 && i < topo.NumNodes() {
			topo.SetLatency(mem.NodeID(i), ns)
		}
	}
	if err := cfg.Faults.Validate(topo); err != nil {
		return nil, err
	}

	// Huge-page mode sizes the store in frames (512 base pages per PFN)
	// and swaps the dense page table for the extent representation; off,
	// both choices reduce to exactly the previous machine.
	huge := cfg.HugePages || topo.HugePages()
	frameShift := uint(0)
	if huge {
		frameShift = mem.HugeFrameShift
	}
	framePages := uint64(1) << frameShift
	m := &Machine{
		cfg:        cfg,
		topo:       topo,
		store:      mem.NewStore(int((topo.TotalCapacity() + framePages - 1) >> frameShift)),
		stat:       vmstat.NewNodeStats(topo.NumNodes()),
		wl:         cfg.Workload,
		rng:        xrand.New(cfg.Seed ^ 0x7070), // kernel-side randomness
		huge:       huge,
		frameShift: frameShift,
		framePages: framePages,
	}
	if huge {
		m.as = pagetable.NewExtent(1, frameShift)
	} else {
		m.as = pagetable.New(1)
	}
	m.wlRNG = xrand.New(cfg.Seed)
	m.vecs = make([]*lru.Vec, topo.NumNodes())
	for i := range m.vecs {
		m.vecs[i] = lru.NewVec(m.store)
	}

	p := cfg.Policy
	m.engine = migrate.NewEngine(p.Migrate, m.store, topo, m.vecs, m.stat, m.rng.Split())
	if p.TMO != nil || p.NeedSwap {
		m.swapd = swap.New(swap.Config{Kind: swap.KindZswap}, m.stat)
	}
	m.allocator = alloc.New(p.Alloc, m.store, topo, m.vecs, m.stat)
	m.daemon = reclaim.New(p.Reclaim, m.store, topo, m.vecs, m.stat, m.engine, m.swapd, m.as)
	m.allocator.WakeKswapd = m.daemon.Wake
	m.allocator.DirectReclaim = m.daemon.DirectReclaim
	if huge {
		// Frame granularity is a machine property: every subsystem that
		// charges residency or page-denominated counters scales by it.
		m.engine.SetFramePages(framePages)
		m.allocator.SetFramePages(framePages)
		m.daemon.SetFramePages(framePages)
		if m.swapd != nil {
			m.swapd.SetFramePages(framePages)
		}
	}

	nb := p.NUMAB
	if p.AutoTiering != nil {
		m.atier = autotiering.New(*p.AutoTiering, m.store, topo, m.vecs, m.stat, m.engine)
		nb.PromotionGate = m.atier.PromotionGate
		nb.OnPromoted = m.atier.OnPromoted
	}
	// Scale the sampling window to the machine: the kernel's 256 MB
	// default against hundreds of GB corresponds to a few percent of the
	// working set per scan.
	if nb.Enabled && nb.ScanSizePages == 0 {
		nb.ScanSizePages = int(cfg.Workload.TotalPages() / 32)
	}
	m.balancer = numab.New(nb, m.store, topo, m.vecs, m.stat, m.engine, m.as)
	if huge {
		m.balancer.SetFramePages(framePages)
	}
	m.numabOn = nb.Enabled
	// The balancer's hint-fault sampling is one tracker among several:
	// the daemon phase drives its scan clock through the Tracker
	// interface (identical calls, so numab-driven runs stay
	// bit-identical to pre-interface builds).
	m.numabTrk = m.balancer.Tracker()

	if p.TMO != nil {
		m.tmoctl = tmo.New(*p.TMO, topo, m.daemon, m.swapd)
	}
	if cfg.EnableChameleon {
		m.cham = chameleon.New(cfg.ChameleonConfig, m.as, m.store, m.rng.Split())
	}

	// Resolve the tracker plane's config up front: the sampled policy
	// defaults to idlepage when no kind was chosen, and the recording
	// header carries the resolved spec so replays rebuild the plane.
	trkCfg := cfg.Tracker
	if p.Sampled != nil && !trkCfg.On() {
		trkCfg.Kind = "idlepage"
	}
	if err := trkCfg.Validate(); err != nil {
		return nil, err
	}

	if cfg.RecordTo != "" {
		// The header records the resolved machine so a replay can rebuild
		// it exactly (tppsim.Replay adopts it when the caller specifies no
		// sizing of its own).
		h := trace.HeaderFor(cfg.Workload)
		spec := topo.Spec()
		h.Topology = &spec
		if !cfg.Faults.Empty() {
			fs := cfg.Faults
			h.Faults = &fs
		}
		h.Tracker = trkCfg.Spec()
		w, err := trace.Create(cfg.RecordTo, h)
		if err != nil {
			return nil, err
		}
		m.recorder = trace.NewRecorder(cfg.Workload, w)
		m.wl = m.recorder
	}

	m.baseLat = topo.Traits(0).LoadLatency
	m.nNodes = topo.NumNodes()
	m.latMat = make([]float64, m.nNodes*m.nNodes)
	m.nodeLocal = make([]bool, m.nNodes)
	for i := 0; i < m.nNodes; i++ {
		m.nodeLocal[i] = topo.Node(mem.NodeID(i)).Kind == mem.KindLocal
	}
	m.refreshLatMat()
	m.cpuNodes = topo.LocalNodes()
	if len(m.cpuNodes) == 0 {
		m.cpuNodes = []mem.NodeID{0}
	}
	if len(m.cpuNodes) > 1 {
		m.regionHome = make(map[pagetable.VPN]mem.NodeID)
	}
	if cfg.SampleEveryTicks > 0 {
		m.sampler = series.NewSampler(m.nNodes, series.Config{
			Every:  uint64(cfg.SampleEveryTicks),
			Budget: cfg.SampleBudget,
		})
		m.levelsBuf = make([]series.Levels, 0, m.nNodes)
	}
	if cfg.ProbeLatency || cfg.ProbePhases {
		m.installProbes(probe.New(m.nNodes, cfg.ProbeLatency, cfg.ProbePhases))
	}
	if !cfg.Faults.Empty() {
		m.faults = newFaultDriver(m, cfg.Faults)
	}
	if trkCfg.On() {
		env := tracker.Env{
			Store: m.store,
			Topo:  topo,
			Stat:  m.stat,
			Seed:  cfg.Seed ^ 0x7472616b, // tracker-private randomness
		}
		if p.Sampled != nil {
			env.Engine = m.engine
		}
		m.trkPlane, err = tracker.NewPlane(trkCfg, p.Sampled, env)
		if err != nil {
			return nil, err
		}
	}
	workers := resolveWorkers(cfg.Workers)
	m.run = &metrics.Run{Policy: p.Name, Workload: cfg.Workload.Name(), Workers: workers}
	if ba, ok := m.wl.(workload.BatchAccessor); ok {
		m.batch = ba
		m.accessBuf = make([]pagetable.VPN, cfg.AccessesPerTick)
		m.pfnBuf = make([]mem.PFN, cfg.AccessesPerTick)
		// The stage pool only helps the batched path: the per-access
		// fallback path interleaves draw and charge, leaving nothing
		// side-effect-free to shard.
		if workers > 1 {
			m.par = newStagePool(m, workers)
		}
	}
	m.wl.Start(m)
	return m, nil
}

// --- workload.Ctx implementation -----------------------------------------

// Mmap implements workload.Ctx. On multi-socket machines the new
// region is placed on a home CPU node round-robin, modeling the
// scheduler spreading application threads over the sockets; its pages
// prefer allocation there and pay access latency from there.
func (m *Machine) Mmap(pages uint64, t mem.PageType) pagetable.Region {
	r := m.as.Mmap(pages, t)
	if m.regionHome != nil {
		m.regionHome[r.Start] = m.cpuNodes[m.mmapCount%len(m.cpuNodes)]
	}
	m.mmapCount++
	return r
}

// Munmap implements workload.Ctx: frees every populated page.
func (m *Machine) Munmap(r pagetable.Region) {
	for _, pfn := range m.as.Munmap(r) {
		m.allocator.FreePage(pfn)
	}
	if m.regionHome != nil {
		delete(m.regionHome, r.Start)
	}
}

// homeOf returns the CPU node a region's threads run on: node 0 on
// single-socket machines, the region's round-robin socket otherwise.
func (m *Machine) homeOf(r pagetable.Region) mem.NodeID {
	if m.regionHome == nil {
		return m.cpuNodes[0]
	}
	if h, ok := m.regionHome[r.Start]; ok {
		return h
	}
	return m.cpuNodes[0]
}

// Touch implements workload.Ctx: one access, demand-faulting if needed.
func (m *Machine) Touch(v pagetable.VPN) { m.access(v) }

// RNG implements workload.Ctx.
func (m *Machine) RNG() *xrand.RNG { return m.wlRNG }

// --- core loop ------------------------------------------------------------

// access performs one memory access at v, charging latency and updating
// every interested subsystem.
func (m *Machine) access(v pagetable.VPN) {
	if m.failed {
		return
	}
	var event float64
	pfn, ok := m.as.Translate(v)
	if !ok {
		pfn, event = m.fault(v)
		if m.failed {
			return
		}
	}
	m.finishAccess(v, pfn, event)
}

// fault demand-faults v in, returning the new PFN and the per-page event
// cost charged to the access. These are per-page costs, amortized over
// the real access rate in the averages.
func (m *Machine) fault(v pagetable.VPN) (mem.PFN, float64) {
	const minorFaultNs = 1000
	var event float64
	r, found := m.as.RegionOf(v)
	if !found {
		panic(fmt.Sprintf("sim: access outside any region: %d", v))
	}
	evict := m.as.Evicted(v)
	home := m.homeOf(r)
	res, err := m.allocator.AllocPage(r.Type, home)
	if err != nil {
		m.fail("out of memory: " + err.Error())
		return mem.NilPFN, 0
	}
	pfn := res.PFN
	m.store.Page(pfn).Home = home
	if m.huge {
		// Huge-frame fault: the whole aligned 512-page run maps as one
		// extent (regions are frame-aligned in extent mode, so base never
		// falls before r.Start); a partial tail frame still charged the
		// full frame at the allocator.
		base := v &^ pagetable.VPN(m.framePages-1)
		span := uint64(r.End() - base)
		if span > m.framePages {
			span = m.framePages
		}
		m.as.MapRange(base, pfn, span)
		m.stat.Inc(res.Node, vmstat.ThpFaultAlloc)
		m.cur.AllocPages += m.framePages
		if m.topo.Node(res.Node).Kind == mem.KindLocal {
			m.cur.AllocLocal += m.framePages
		}
	} else {
		m.as.MapPage(v, pfn)
		m.cur.AllocPages++
		if m.topo.Node(res.Node).Kind == mem.KindLocal {
			m.cur.AllocLocal++
		}
	}
	event += minorFaultNs + res.StallNs
	m.cur.StallNs += res.StallNs
	switch evict {
	case pagetable.EvictSwap:
		// Major fault: the page comes back from the swap pool.
		cost := m.swapd.PageIn(res.Node)
		event += cost
		m.cur.StallNs += cost
	case pagetable.EvictFile:
		// Refault of a dropped file page: re-read from storage, one read
		// per base page of the frame.
		refault := 20_000 * float64(m.framePages)
		event += refault
		m.cur.StallNs += refault
	}
	// Dirty-at-fault probability from the region's spec is applied by
	// the workload indirectly: file pages written during warm-up are
	// dirty. We model it with the region's page type: file pages
	// faulted during the warm-up flood are dirtied below by the
	// workload profile's DirtyProb; since the simulator does not see
	// the spec here, dirtiness is set by a separate hook.
	m.dirtyHook(pfn, r)
	return pfn, event
}

// runAccessBatch charges one tick's access stream: translations resolve
// in one batched pagetable call, resident page lines are pulled toward
// the cache in a dedicated loop (independent loads overlap their misses),
// and the charge loop is finishAccess fused inline — identical arithmetic
// and update order per access, minus the per-access call frames. Pages
// not resident at batch start (including ones faulted by an earlier
// access of this same tick) take the full fault-aware access path.
//
// With Config.Workers > 1 the translate+warm front half is sharded
// across the stage pool — pure reads into the same PFN buffer — and the
// charge loop below runs unchanged, so parallel runs are bit-identical
// to serial ones (parallel.go).
func (m *Machine) runAccessBatch(vs []pagetable.VPN) {
	pfns := m.pfnBuf[:len(vs)]
	if m.par == nil || !m.par.stage(vs, pfns) {
		m.as.TranslateBatch(vs, pfns)
		warm := m.warmSink
		for _, pfn := range pfns {
			if pfn != mem.NilPFN {
				warm += uint64(m.store.Page(pfn).Flags)
			}
		}
		m.warmSink = warm
	}
	m.prof.Lap(probe.PhaseTranslate)
	const lruHot = mem.PGOnLRU | mem.PGReferenced | mem.PGActive
	// Loop-invariant machine state in locals: calls inside the loop are
	// rare, so the compiler can keep these in registers. Integer access
	// counters accumulate locally (exact under reassociation, unlike the
	// float latency sum, which keeps its per-access order).
	store, latMat, nodeLocal := m.store, m.latMat, m.nodeLocal
	nn, numabOn, tick := m.nNodes, m.numabOn, m.tick
	latAcc := m.latAcc
	trk := m.trkPlane
	var accesses, local uint64
	// Batched translations are valid only while no page is unmapped. A
	// fault below can trigger direct reclaim, which evicts (unmaps)
	// pages whose PFNs are already in pfnBuf; the address-space
	// generation counter detects that, and the rest of the batch falls
	// back to the re-translating path — exactly the sequential
	// semantics.
	gen := m.as.Gen()
	for i, v := range vs {
		if m.as.Gen() != gen {
			for _, rest := range vs[i:] {
				m.access(rest)
				if m.failed {
					break
				}
			}
			break
		}
		pfn := pfns[i]
		if pfn == mem.NilPFN {
			m.access(v)
			if m.failed {
				break
			}
			continue
		}
		// Fused finishAccess(v, pfn, 0) — keep the two in sync.
		pg := store.Page(pfn)
		load := latMat[int(pg.Home)*nn+int(pg.Node)]
		servedLocal := nodeLocal[pg.Node]
		if latAcc != nil {
			latAcc[pg.Node].Observe(uint64(load))
		}
		var event float64
		if numabOn && pg.Flags.Has(mem.PGHinted) {
			out := m.balancer.OnAccess(pfn, pg)
			event = out.LatencyNs
		}
		// mark_page_accessed fast path: a page already active and
		// referenced on its LRU list is a no-op in MarkAccessedPage.
		if pg.Flags&lruHot != lruHot {
			m.vecs[pg.Node].MarkAccessedPage(pfn, pg)
		}
		if m.atier != nil {
			m.atier.RecordAccess(pfn)
		}
		if m.cham != nil {
			m.cham.OnAccess(v)
		}
		if trk != nil {
			trk.OnAccess(pfn, pg)
		}
		pg.LastAccessTick = tick
		accesses++
		if servedLocal {
			local++
		}
		m.cur.LatencySumNs += load
		if event != 0 {
			m.cur.EventNs += event
		}
	}
	m.cur.Accesses += accesses
	m.cur.LocalAccesses += local
	m.prof.Lap(probe.PhaseCharge)
}

// finishAccess charges one access against the resident page pfn; event
// carries any fault cost already incurred for this access.
func (m *Machine) finishAccess(v pagetable.VPN, pfn mem.PFN, event float64) {
	pg := m.store.Page(pfn)
	load := m.latMat[int(pg.Home)*m.nNodes+int(pg.Node)]
	servedLocal := m.nodeLocal[pg.Node]
	if m.latAcc != nil {
		m.latAcc[pg.Node].Observe(uint64(load))
	}

	// NUMA-balancing hint fault and possible promotion: per-page event
	// costs, paid once per hint regardless of access rate. The PGHinted
	// pre-check keeps the (overwhelmingly common) non-fault case out of
	// the balancer entirely.
	if m.numabOn && pg.Flags.Has(mem.PGHinted) {
		out := m.balancer.OnAccess(pfn, pg)
		event += out.LatencyNs
	}

	// LRU aging and AutoTiering frequency counting.
	m.vecs[pg.Node].MarkAccessedPage(pfn, pg)
	if m.atier != nil {
		m.atier.RecordAccess(pfn)
	}
	if m.cham != nil {
		m.cham.OnAccess(v)
	}
	if m.trkPlane != nil {
		m.trkPlane.OnAccess(pfn, pg)
	}
	pg.LastAccessTick = m.tick

	m.cur.Accesses++
	if servedLocal {
		m.cur.LocalAccesses++
	}
	m.cur.LatencySumNs += load
	if event != 0 {
		m.cur.EventNs += event
	}
}

// dirtyHook marks freshly faulted file pages dirty according to the
// owning region's profile, so default reclaim pays writeback for them.
func (m *Machine) dirtyHook(pfn mem.PFN, r pagetable.Region) {
	if !r.Type.IsFileLike() {
		return
	}
	prob := m.dirtyProbFor(r)
	if prob > 0 && m.rng.Bool(prob) {
		pg := m.store.Page(pfn)
		pg.Flags = pg.Flags.Set(mem.PGDirty)
	}
}

// dirtyProbFor asks the workload for the region's dirty-at-fault
// probability. Profiles, trace recorders, and trace replayers implement
// the DirtyModel hook; other workloads default to clean pages.
func (m *Machine) dirtyProbFor(r pagetable.Region) float64 {
	if dm, ok := m.wl.(workload.DirtyModel); ok {
		return dm.DirtyProb(r)
	}
	return 0
}

// fail aborts the run (AutoTiering crash, OOM).
func (m *Machine) fail(why string) {
	if !m.failed {
		m.failed = true
		m.failWhy = why
	}
}

// Step advances the machine one tick.
func (m *Machine) Step() {
	if m.failed {
		return
	}
	m.cur = metrics.Tick{}
	// Fault plane: apply every schedule edge due this tick (offline
	// evacuations, latency windows, migration-failure windows, capacity
	// loss) before the workload and daemons see the machine.
	if m.faults != nil {
		m.faults.beginTick(m.tick)
	}
	// prof's Begin/Lap are nil-receiver no-ops, so the unprofiled tick
	// pays one branch per lap site and nothing else.
	prof := m.prof
	prof.Begin()

	// 1. Workload housekeeping (may Touch pages).
	m.wl.Tick(m, m.tick)
	prof.Lap(probe.PhaseWorkload)

	// 2. Access stream. The batch path draws the whole tick's accesses in
	// one call; a draw never observes machine state mutated by earlier
	// accesses, and after a mid-tick failure the run is over, so the
	// stream is identical to per-access draws. The non-batch path
	// interleaves draw and charge per access, so the profiler attributes
	// all of it to the charge phase.
	if m.batch != nil {
		n := m.batch.NextAccessBatch(m, m.tick, m.accessBuf)
		prof.Lap(probe.PhaseDraw)
		m.runAccessBatch(m.accessBuf[:n])
	} else {
		for i := 0; i < m.cfg.AccessesPerTick && !m.failed; i++ {
			v, ok := m.wl.NextAccess(m, m.tick)
			if !ok {
				break
			}
			m.access(v)
		}
		prof.Lap(probe.PhaseCharge)
	}

	// 3. Daemons. Migration work shows up under the phase of the engine
	// driving it: demotions under reclaim, promotions under numab.
	m.daemon.Tick()
	prof.Lap(probe.PhaseReclaim)
	m.numabTrk.Tick(m.tick, nil)
	prof.Lap(probe.PhaseNUMAB)
	if m.atier != nil {
		m.atier.Tick()
		if m.atier.Failed() {
			m.fail("AutoTiering promotion starvation crash")
		}
	}
	if m.tmoctl != nil {
		m.tmoctl.ObserveStall(m.cur.StallNs, TickSeconds*1e9)
		m.tmoctl.Tick()
	}
	if m.cham != nil {
		m.cham.Tick()
	}
	// Tracker plane: scan clock, heatmap fold, oracle scoring, mover.
	if m.trkPlane != nil {
		m.trkPlane.Tick(m.tick)
	}
	prof.Lap(probe.PhaseControl)

	// 4. Metrics.
	m.fold()
	prof.Lap(probe.PhaseFold)
	// Faulted runs validate conservation invariants every tick: pages
	// leaked by an evacuation or counters charged to no node fail loudly
	// at the tick that broke them, not at the end of the run.
	if m.faults != nil {
		if err := m.faults.checker.Check(); err != nil {
			m.fail(err.Error())
		}
	}
	m.tick++
}

// fold updates series and counters at the end of a tick. Only the two
// promote/demote deltas are read per tick — directly from the indexed
// vmstat registry, no snapshot — so non-record ticks allocate nothing.
func (m *Machine) fold() {
	promote := m.stat.Get(vmstat.PgpromoteSuccess)
	demote := m.stat.Get(vmstat.PgdemoteKswapd) + m.stat.Get(vmstat.PgdemoteDirect)
	m.cur.PromotedPages = promote - m.prevPromote
	m.cur.DemotedPages = demote - m.prevDemote
	m.prevPromote, m.prevDemote = promote, demote

	// Extent-table churn surfaces as vmstat counters; the table is
	// machine-global, so both attribute to node 0. Off huge mode both
	// totals stay zero and this costs two loads per tick.
	if m.huge {
		if s := m.as.ExtentSplits(); s != m.prevSplits {
			m.stat.Add(0, vmstat.ExtentSplit, s-m.prevSplits)
			m.prevSplits = s
		}
		if g := m.as.ExtentMerges(); g != m.prevMerges {
			m.stat.Add(0, vmstat.ExtentMerge, g-m.prevMerges)
			m.prevMerges = g
		}
	}

	// Per-node series plane: one compare on non-sample ticks; sample
	// ticks snapshot every node's counter deltas and residency into the
	// preallocated columns.
	if m.sampler != nil && m.sampler.Due(m.tick) {
		m.sampler.Observe(m.tick, m.stat, m.NodeLevels(m.levelsBuf[:0]))
	}

	if m.tick%uint64(m.cfg.RecordEveryTicks) != 0 {
		return
	}
	minutes := float64(m.tick) / workload.TicksPerMinute
	pageKB := float64(mem.PageSize) / 1024
	m.run.LocalTraffic.Append(minutes, m.cur.LocalFraction())
	m.run.AvgLatency.Append(minutes, m.cur.AvgLatencyNs(m.cfg.AccessScale))
	m.run.AllocRate.Append(minutes, float64(m.cur.AllocPages)*pageKB/1024/TickSeconds)      // MB/s
	m.run.LocalAllocRate.Append(minutes, float64(m.cur.AllocLocal)*pageKB/1024/TickSeconds) // MB/s
	m.run.PromotionRate.Append(minutes, float64(m.cur.PromotedPages)*pageKB/TickSeconds)
	m.run.DemotionRate.Append(minutes, float64(m.cur.DemotedPages)*pageKB/TickSeconds)
	m.run.MigrationRate.Append(minutes, float64(m.engine.TakeWindow())*pageKB/1024/
		(TickSeconds*float64(m.cfg.RecordEveryTicks)))
	m.run.Throughput.Append(minutes, m.tickThroughput())
	m.run.AnonResidency.Append(minutes, m.anonLocalFraction())
	var anon, file, total float64
	for _, n := range m.topo.Nodes() {
		anon += float64(n.ResidentByType(mem.Anon))
		file += float64(n.ResidentByType(mem.File) + n.ResidentByType(mem.Tmpfs))
		total += float64(n.Capacity)
	}
	m.run.UtilTotal.Append(minutes, (anon+file)/total)
	m.run.UtilAnon.Append(minutes, anon/total)
	m.run.UtilFile.Append(minutes, file/total)
}

// refreshLatMat rebuilds the access hot path's latency matrix from the
// topology. Called once at assembly and again whenever a fault-plane
// latency edge rescales a node.
func (m *Machine) refreshLatMat() {
	for i := 0; i < m.nNodes; i++ {
		for j := 0; j < m.nNodes; j++ {
			m.latMat[i*m.nNodes+j] = m.topo.AccessLatency(mem.NodeID(i), mem.NodeID(j))
		}
	}
}

// installProbes hands the probe plane to every engine that fires into
// it and primes the machine's hot-path caches.
func (m *Machine) installProbes(p *probe.Probes) {
	m.probes = p
	m.prof = p.Prof
	if p.Lat != nil {
		m.latAcc = p.Lat.Access
	}
	m.engine.SetProbes(p)
	m.allocator.SetProbes(p)
	m.daemon.SetProbes(p)
}

// Probes returns the machine's probe plane, or nil when none is
// installed.
func (m *Machine) Probes() *probe.Probes { return m.probes }

// EnableProbes ensures the machine carries a probe plane and returns it,
// so callers can attach tracepoint subscribers (probe.Hook) without
// turning on the histogram or profiler sub-planes. Attach before the
// first Step; the plane must not change mid-run.
func (m *Machine) EnableProbes() *probe.Probes {
	if m.probes == nil {
		m.installProbes(probe.New(m.nNodes, false, false))
	}
	return m.probes
}

// tickThroughput computes this tick's normalized throughput from the
// throughput model: OS stall is amortized as extra per-access latency.
func (m *Machine) tickThroughput() float64 {
	if m.cur.Accesses == 0 {
		return 1
	}
	avg := m.cur.AvgLatencyNs(m.cfg.AccessScale)
	return m.wl.Model().Normalized(avg, 0, m.baseLat)
}

// anonLocalFraction reports what share of anon pages sit on local nodes.
func (m *Machine) anonLocalFraction() float64 {
	var local, total uint64
	for _, n := range m.topo.Nodes() {
		c := n.ResidentByType(mem.Anon)
		total += c
		if n.Kind == mem.KindLocal {
			local += c
		}
	}
	if total == 0 {
		return 0
	}
	return float64(local) / float64(total)
}

// Run executes the configured number of minutes and returns the results.
func (m *Machine) Run() *metrics.Run {
	ticks := uint64(m.cfg.Minutes) * workload.TicksPerMinute
	for m.tick < ticks && !m.failed {
		m.Step()
	}
	m.finish()
	return m.run
}

// finish computes run-level scalars and finalizes any recording.
func (m *Machine) finish() {
	if m.recorder != nil {
		// A recording failure spoils the trace artifact, not the
		// simulation; it is surfaced via RecordError, not the run.
		m.recErr = m.recorder.Close()
		m.recorder = nil
	}
	if er, ok := m.wl.(workload.ErrorReporter); ok && !m.failed {
		if err := er.WorkloadErr(); err != nil {
			m.fail("workload error: " + err.Error())
		}
	}
	m.run.Failed = m.failed
	m.run.FailReason = m.failWhy
	if m.sampler != nil {
		if m.tick > 0 {
			// Close the final partial window so the series' delta columns
			// total exactly to the final counters on any run length.
			m.sampler.Flush(m.tick-1, m.stat, m.NodeLevels(m.levelsBuf[:0]))
		}
		m.run.NodeSeries = m.sampler.Series()
	}
	if m.probes != nil {
		m.run.LatencyHist = m.probes.Lat
		m.run.PhaseProfile = m.probes.Prof
	}
	if m.faults != nil {
		m.run.FaultLog = m.faults.log
	}
	if m.trkPlane != nil {
		m.run.Tracker = m.trkPlane.Finish(m.tick)
	}
	// Per-node end-of-run accounting from the stats plane — populated
	// for failed runs too, so a crash still shows where pages sat.
	m.run.Nodes = m.run.Nodes[:0]
	for _, n := range m.topo.Nodes() {
		m.run.Nodes = append(m.run.Nodes, metrics.NodeResult{
			ID:            int(n.ID),
			Kind:          n.Kind.String(),
			Tier:          m.topo.TierOf(n.ID),
			CapacityPages: n.Capacity,
			ResidentPages: n.Resident(),
			ResidentAnon:  n.ResidentByType(mem.Anon),
			ResidentFile:  n.ResidentByType(mem.File) + n.ResidentByType(mem.Tmpfs),
			LoadLatencyNs: m.topo.Traits(n.ID).LoadLatency,
			Counters:      m.stat.NodeSnapshot(n.ID),
		})
	}
	m.run.MemStats = m.MemStats()
	if m.failed {
		return
	}
	// Steady state: the last 60% of the run, past warm-up and
	// convergence.
	m.run.AvgLocalTraffic = m.run.LocalTraffic.Tail(0.6)
	m.run.AvgLatencyNs = m.run.AvgLatency.Tail(0.6)
	m.run.NormalizedThroughput = m.run.Throughput.Tail(0.6)
}

// --- accessors for experiments and tests ----------------------------------

// Stat returns the machine's node-indexed vmstat plane. Global views
// (Get, Snapshot) are the exact sum of the per-node ones.
func (m *Machine) Stat() *vmstat.NodeStats { return m.stat }

// NodeVmstat appends every node's vmstat snapshot to dst in node order
// and returns the extended slice; it implements trace.NodeStatsSource
// so recordings carry per-node counter deltas per tick.
func (m *Machine) NodeVmstat(dst []vmstat.Snapshot) []vmstat.Snapshot {
	return m.stat.AppendNodeSnapshots(dst)
}

// NodeLevels appends every node's residency levels to dst in node order
// and returns the extended slice. The series sampler and the trace
// recorder (trace.NodeLevelsSource) both read residency through it, so
// live-sampled series and trace-decoded series see identical levels.
func (m *Machine) NodeLevels(dst []series.Levels) []series.Levels {
	for _, n := range m.topo.Nodes() {
		dst = append(dst, series.Levels{
			Resident: n.Resident(),
			Anon:     n.ResidentByType(mem.Anon),
			File:     n.ResidentByType(mem.File) + n.ResidentByType(mem.Tmpfs),
		})
	}
	return dst
}

// MemStats snapshots the simulator's own memory footprint: page-table
// representation plus page store, and the bytes-per-simulated-resident-
// page ratio that is the extent table's scaling headline.
func (m *Machine) MemStats() metrics.MemStats {
	fp := m.as.Footprint()
	ms := metrics.MemStats{
		Extents:       fp.Extents,
		Splits:        fp.Splits,
		Merges:        fp.Merges,
		FramePages:    m.framePages,
		ResidentPages: uint64(m.store.Live()) * m.framePages,
		TableBytes:    fp.Bytes,
		StoreBytes:    m.store.FootprintBytes(),
	}
	if ms.ResidentPages > 0 {
		ms.BytesPerPage = float64(ms.TableBytes+ms.StoreBytes) / float64(ms.ResidentPages)
	}
	return ms
}

// Topology returns the machine topology.
func (m *Machine) Topology() *tier.Topology { return m.topo }

// Engine returns the migration engine.
func (m *Machine) Engine() *migrate.Engine { return m.engine }

// AddressSpace returns the workload's address space.
func (m *Machine) AddressSpace() *pagetable.AddressSpace { return m.as }

// TrackerPlane returns the machine's tracker plane (nil when off).
func (m *Machine) TrackerPlane() *tracker.Plane { return m.trkPlane }

// Chameleon returns the attached profiler (nil unless enabled).
func (m *Machine) Chameleon() *chameleon.Chameleon { return m.cham }

// TMO returns the TMO controller (nil unless configured).
func (m *Machine) TMO() *tmo.Controller { return m.tmoctl }

// Swap returns the swap device (nil unless configured).
func (m *Machine) Swap() *swap.Device { return m.swapd }

// Tick returns the current tick number.
func (m *Machine) Tick() uint64 { return m.tick }

// Failed reports whether the run has aborted.
func (m *Machine) Failed() (bool, string) { return m.failed, m.failWhy }

// RecordError reports whether writing the Config.RecordTo trace failed.
// Only meaningful after Run has returned.
func (m *Machine) RecordError() error { return m.recErr }

// Results returns the (possibly in-progress) run metrics.
func (m *Machine) Results() *metrics.Run { return m.run }
