package sim

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"tppsim/internal/core"
	"tppsim/internal/fault"
	"tppsim/internal/mem"
	"tppsim/internal/probe"
	"tppsim/internal/tier"
	"tppsim/internal/tracker"
	"tppsim/internal/vmstat"
	"tppsim/internal/workload"
)

// parallelRun is everything a run exposes that the determinism contract
// covers: scalars, global and per-node vmstat, the sampled series, the
// latency histograms, and the recorded trace bytes.
type parallelRun struct {
	scalars string
	global  vmstat.Snapshot
	nodes   []vmstat.Snapshot
	series  string
	lat     *probe.LatencySet
	trace   []byte
	workers int
}

func runWithWorkers(t *testing.T, base func() Config, workers int, dir string) parallelRun {
	t.Helper()
	cfg := base()
	cfg.Workers = workers
	path := filepath.Join(dir, fmt.Sprintf("w%d.trace", workers))
	cfg.RecordTo = path
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	if res.Failed {
		t.Fatalf("workers=%d run failed: %s", workers, res.FailReason)
	}
	if err := m.RecordError(); err != nil {
		t.Fatalf("workers=%d recording failed: %v", workers, err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	out := parallelRun{
		scalars: fmt.Sprintf("%v/%v/%v", res.NormalizedThroughput, res.AvgLocalTraffic, res.AvgLatencyNs),
		global:  m.Stat().Snapshot(),
		lat:     res.LatencyHist,
		trace:   raw,
		workers: res.Workers,
	}
	for n := 0; n < m.Stat().NumNodes(); n++ {
		out.nodes = append(out.nodes, m.Stat().NodeSnapshot(mem.NodeID(n)))
	}
	if res.NodeSeries != nil {
		out.series = seriesDigest(res.NodeSeries)
	}
	return out
}

// TestParallelBitIdentical is the parallel core's contract test:
// sweeping Workers over {1, 2, 4, 8} across the cxl, dualsocket, and
// expander presets — with trackers, sampling, probes, and faults each
// enabled somewhere in the matrix — must reproduce the serial run bit
// for bit: scalars, global and per-node vmstat, the sampled series
// digest, the latency histograms, and the recorded trace bytes.
func TestParallelBitIdentical(t *testing.T) {
	cases := []struct {
		name string
		base func() Config
	}{
		{"cxl-tracked", func() Config {
			return Config{
				Seed: 7, Policy: core.TPP(),
				Workload: workload.Catalog["Web1"](8 * 1024),
				Topology: tier.PresetCXL(2, 1),
				Minutes:  6,
				Tracker:  tracker.Config{Kind: "idlepage"},
			}
		}},
		{"dualsocket-sampled-probed", func() Config {
			return Config{
				Seed: 7, Policy: core.TPP(),
				Workload:         workload.Catalog["Cache2"](8 * 1024),
				Topology:         tier.PresetDualSocket(),
				Minutes:          6,
				SampleEveryTicks: 1,
				ProbeLatency:     true,
				ProbePhases:      true,
			}
		}},
		{"expander-faulted", func() Config {
			return Config{
				Seed: 7, Policy: core.TPP(),
				Workload:     workload.Catalog["Web1"](8 * 1024),
				Topology:     tier.PresetExpander(2, 1, 1),
				Minutes:      10,
				ProbeLatency: true,
				Faults: fault.Schedule{Seed: 11, Events: []fault.Event{
					{Kind: fault.MigFailBegin, Node: -1, At: 60, Until: 300, Prob: 0.2},
					{Kind: fault.LatencyDegrade, Node: 1, At: 90, Until: 240, Mult: 3, Jitter: 0.1},
					{Kind: fault.NodeOffline, Node: 2, At: 120, Until: 360},
				}},
			}
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			serial := runWithWorkers(t, tc.base, 1, dir)
			if serial.workers != 1 {
				t.Fatalf("serial run reports workers=%d", serial.workers)
			}
			for _, w := range []int{2, 4, 8} {
				par := runWithWorkers(t, tc.base, w, dir)
				if par.workers != w {
					t.Errorf("workers=%d run reports workers=%d", w, par.workers)
				}
				if par.scalars != serial.scalars {
					t.Errorf("workers=%d scalars = %s, serial %s", w, par.scalars, serial.scalars)
				}
				if par.global != serial.global {
					t.Errorf("workers=%d global vmstat diverged from serial", w)
				}
				for n := range serial.nodes {
					if par.nodes[n] != serial.nodes[n] {
						t.Errorf("workers=%d node %d vmstat diverged from serial", w, n)
					}
				}
				if par.series != serial.series {
					t.Errorf("workers=%d series digest = %s, serial %s", w, par.series, serial.series)
				}
				if !reflect.DeepEqual(par.lat, serial.lat) {
					t.Errorf("workers=%d latency histograms diverged from serial", w)
				}
				if string(par.trace) != string(serial.trace) {
					t.Errorf("workers=%d trace bytes diverged from serial (%d vs %d bytes)",
						w, len(par.trace), len(serial.trace))
				}
			}
		})
	}
}

// TestParallelWorkersResolve pins the knob's semantics: the zero value
// and 1 stay on the serial path (no stage pool — the bench gates and
// goldens depend on unset configs not going parallel), explicit counts
// are literal, and WorkersAuto resolves to GOMAXPROCS.
func TestParallelWorkersResolve(t *testing.T) {
	if got := resolveWorkers(0); got != 1 {
		t.Errorf("resolveWorkers(0) = %d, want 1", got)
	}
	if got := resolveWorkers(1); got != 1 {
		t.Errorf("resolveWorkers(1) = %d, want 1", got)
	}
	if got := resolveWorkers(6); got != 6 {
		t.Errorf("resolveWorkers(6) = %d, want 6", got)
	}
	if got, want := resolveWorkers(WorkersAuto), runtime.GOMAXPROCS(0); got != want {
		t.Errorf("resolveWorkers(WorkersAuto) = %d, want GOMAXPROCS %d", got, want)
	}
	mk := func(workers int) *Machine {
		m, err := New(Config{
			Seed: 1, Policy: core.TPP(),
			Workload: workload.Catalog["Cache2"](2 * 1024),
			Ratio:    [2]uint64{2, 1},
			Minutes:  1,
			Workers:  workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	if m := mk(0); m.par != nil {
		t.Error("zero-value Workers built a stage pool; unset configs must stay serial")
	}
	if m := mk(4); m.par == nil {
		t.Error("Workers=4 built no stage pool")
	} else if len(m.par.shards) != 4 {
		t.Errorf("Workers=4 pool has %d shards, want 4", len(m.par.shards))
	}
}

// TestParallelRaceStress drives a Workers>1 machine through many ticks
// of churn, growth, faults, and migration so the race detector (CI runs
// this package under -race) actually exercises concurrent shards
// translating and warming against the full daemon set. Correctness of
// the results is pinned by TestParallelBitIdentical; this test is about
// the interleavings.
func TestParallelRaceStress(t *testing.T) {
	cfg := Config{
		Seed: 3, Policy: core.TPP(),
		Workload: workload.Catalog["Web1"](8 * 1024),
		Topology: tier.PresetExpander(2, 1, 1),
		Minutes:  8,
		Workers:  4,
		Faults: fault.Schedule{Seed: 5, Events: []fault.Event{
			{Kind: fault.NodeOffline, Node: 2, At: 120, Until: 300},
			{Kind: fault.MigFailBegin, Node: -1, At: 30, Until: 400, Prob: 0.3},
		}},
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	if res.Failed {
		t.Fatalf("stress run failed: %s", res.FailReason)
	}
	if res.Workers != 4 {
		t.Errorf("stress run reports workers=%d, want 4", res.Workers)
	}
}
