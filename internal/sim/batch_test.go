package sim

import (
	"testing"

	"tppsim/internal/core"
	"tppsim/internal/pagetable"
	"tppsim/internal/vmstat"
	"tppsim/internal/workload"
)

// noBatch hides a workload's BatchAccessor fast path so the simulator
// takes the sequential per-access draw loop, while still forwarding the
// DirtyModel extension.
type noBatch struct{ workload.Workload }

func (n noBatch) DirtyProb(r pagetable.Region) float64 {
	if dm, ok := n.Workload.(workload.DirtyModel); ok {
		return dm.DirtyProb(r)
	}
	return 0
}

// TestBatchMatchesSequentialUnderPressure pins the batched access path
// to the sequential one in the regime where they can diverge: a machine
// so tight that demand faults trigger direct reclaim mid-tick, which
// unmaps pages whose translations the batch already resolved. The
// generation check must fall the rest of the batch back to the
// re-translating path, making the two runs identical.
func TestBatchMatchesSequentialUnderPressure(t *testing.T) {
	run := func(batch bool) *Machine {
		var w workload.Workload = workload.Catalog["Web1"](16 * 1024)
		if !batch {
			w = noBatch{w}
		}
		m, err := New(Config{
			Seed: 11, Policy: core.DefaultLinux(), Workload: w,
			LocalPages: 6000, CXLPages: 4000, Minutes: 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		if batch != (m.batch != nil) {
			t.Fatalf("batch path = %v, want %v", m.batch != nil, batch)
		}
		m.Run()
		return m
	}
	a, b := run(true), run(false)
	if got := a.Stat().Get(vmstat.PgallocStall); got == 0 {
		t.Fatal("config no longer triggers direct reclaim; pressure regime untested")
	}
	if !a.Stat().Snapshot().Equal(b.Stat().Snapshot()) {
		t.Fatalf("batch and sequential access paths diverged under pressure:\nbatch:\n%s\nsequential:\n%s",
			a.Stat().Snapshot(), b.Stat().Snapshot())
	}
	ra, rb := a.Results(), b.Results()
	if ra.NormalizedThroughput != rb.NormalizedThroughput || ra.AvgLocalTraffic != rb.AvgLocalTraffic {
		t.Fatalf("scalar divergence: batch %v/%v sequential %v/%v",
			ra.NormalizedThroughput, ra.AvgLocalTraffic, rb.NormalizedThroughput, rb.AvgLocalTraffic)
	}
}
