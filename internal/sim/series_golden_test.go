package sim

import (
	"fmt"
	"hash/fnv"
	"testing"

	"tppsim/internal/core"
	"tppsim/internal/mem"
	"tppsim/internal/series"
	"tppsim/internal/tier"
	"tppsim/internal/vmstat"
	"tppsim/internal/workload"
)

// seriesDigest compresses a sampled series into a pinnable string:
// shape, a spot-check of headline cells, and an FNV-1a hash over every
// retained cell — any bit of drift in any column changes it.
func seriesDigest(s *series.Series) string {
	h := fnv.New64a()
	var b [8]byte
	put := func(v uint64) {
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	put(uint64(s.Nodes()))
	put(s.Cadence())
	put(uint64(s.Len()))
	for n := 0; n < s.Nodes(); n++ {
		for c := 0; c < vmstat.NumCounters; c++ {
			for i := 0; i < s.Len(); i++ {
				put(s.Delta(n, vmstat.Counter(c), i))
			}
		}
		for k := 0; k < series.NumLevels; k++ {
			for i := 0; i < s.Len(); i++ {
				put(s.Level(n, series.LevelKind(k), i))
			}
		}
	}
	return fmt.Sprintf("%dx%d h=%016x promo0=%d resid0end=%d",
		s.Len(), s.Cadence(), h.Sum64(),
		s.DeltaTotal(0, vmstat.PgpromoteSuccess),
		s.Level(0, series.LevelResident, s.Len()-1))
}

// TestSampledSeriesGolden pins the live-sampled series plane on the
// 2-node box and the 3-tier expander the same way the scalar goldens
// pin the machine: fixed seed, exact digest. The budgets force
// coarsening on both machines, so the pin covers the merge path too.
// Recapture (with a commit-message note) if simulation behavior
// legitimately changes.
func TestSampledSeriesGolden(t *testing.T) {
	cases := []struct {
		name   string
		topo   tier.Spec
		ratio  [2]uint64
		digest string
	}{
		{
			name:   "cxl-2node",
			ratio:  [2]uint64{2, 1},
			digest: "300x2 h=7c5c0eb7a8a92da3 promo0=4164 resid0end=10431",
		},
		{
			name:   "expander-3tier",
			topo:   tier.PresetExpander(2, 1, 1),
			digest: "300x2 h=9487f07576d5d909 promo0=2298 resid0end=7810",
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{
				Seed: 7, Policy: core.TPP(),
				Workload:         workload.Catalog["Cache2"](16 * 1024),
				Minutes:          10,
				SampleEveryTicks: 1,
				SampleBudget:     512, // 600 ticks -> one coarsening pass
			}
			if len(tc.topo.Nodes) > 0 {
				cfg.Topology = tc.topo
			} else {
				cfg.Ratio = tc.ratio
			}
			m, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res := m.Run()
			if res.Failed {
				t.Fatalf("run failed: %s", res.FailReason)
			}
			if res.NodeSeries == nil {
				t.Fatal("no series sampled")
			}
			if got := seriesDigest(res.NodeSeries); got != tc.digest {
				t.Errorf("series digest = %q, want %q", got, tc.digest)
			}
			// The plane is an observer: per-window flow totals equal the
			// machine's final counters for every node and counter.
			for n := 0; n < res.NodeSeries.Nodes(); n++ {
				for c := 0; c < vmstat.NumCounters; c++ {
					want := m.Stat().GetNode(mem.NodeID(n), vmstat.Counter(c))
					if got := res.NodeSeries.DeltaTotal(n, vmstat.Counter(c)); got != want {
						t.Errorf("node %d %s: series total %d != final counter %d",
							n, vmstat.Counter(c), got, want)
					}
				}
			}
		})
	}
}

// TestSamplingDoesNotPerturbRuns pins the off-by-default contract from
// the other side: the same seed with sampling on must reproduce the
// sampling-off run's scalars and counters exactly — the plane observes,
// it never steers.
func TestSamplingDoesNotPerturbRuns(t *testing.T) {
	runOnce := func(sample int) (*Machine, string) {
		m, err := New(Config{
			Seed: 7, Policy: core.TPP(),
			Workload:         workload.Catalog["Web1"](8 * 1024),
			Ratio:            [2]uint64{2, 1},
			Minutes:          6,
			SampleEveryTicks: sample,
		})
		if err != nil {
			t.Fatal(err)
		}
		res := m.Run()
		if res.Failed {
			t.Fatal(res.FailReason)
		}
		return m, fmt.Sprintf("%v/%v/%v", res.NormalizedThroughput, res.AvgLocalTraffic, res.AvgLatencyNs)
	}
	mOff, sOff := runOnce(0)
	mOn, sOn := runOnce(1)
	if sOff != sOn {
		t.Errorf("sampling changed scalars: off %s, on %s", sOff, sOn)
	}
	if mOff.Stat().Snapshot() != mOn.Stat().Snapshot() {
		t.Error("sampling changed vmstat counters")
	}
	if mOff.Results().NodeSeries != nil {
		t.Error("sampling-off run grew a series")
	}
	if mOn.Results().NodeSeries == nil {
		t.Error("sampling-on run has no series")
	}
}
