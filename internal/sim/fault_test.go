package sim

import (
	"fmt"
	"path/filepath"
	"testing"

	"tppsim/internal/core"
	"tppsim/internal/fault"
	"tppsim/internal/mem"
	"tppsim/internal/tier"
	"tppsim/internal/trace"
	"tppsim/internal/vmstat"
	"tppsim/internal/workload"
)

// TestFaultsDoNotPerturbRuns pins the fault plane's dormancy contract:
// a machine carrying a schedule whose events all lie beyond the run's
// end — injector constructed, retrier hooked into the engine, invariant
// checker running every tick — must reproduce the faults-off run's
// scalars, per-node vmstat counters, and sampled series bit for bit.
// The plane only draws randomness from its own seed, and only when an
// edge actually fires.
func TestFaultsDoNotPerturbRuns(t *testing.T) {
	baseCfg := func() Config {
		return Config{
			Seed: 7, Policy: core.TPP(),
			Workload:         workload.Catalog["Web1"](8 * 1024),
			Ratio:            [2]uint64{2, 1},
			Minutes:          6,
			SampleEveryTicks: 1,
		}
	}
	runOnce := func(mut func(*Config)) (*Machine, string, string) {
		cfg := baseCfg()
		if mut != nil {
			mut(&cfg)
		}
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res := m.Run()
		if res.Failed {
			t.Fatal(res.FailReason)
		}
		scalars := fmt.Sprintf("%v/%v/%v", res.NormalizedThroughput, res.AvgLocalTraffic, res.AvgLatencyNs)
		return m, scalars, seriesDigest(res.NodeSeries)
	}

	mOff, sOff, dOff := runOnce(nil)

	// Every event sits far beyond the 6-minute (360-tick) run.
	const beyond = 1 << 20
	mOn, sOn, dOn := runOnce(func(c *Config) {
		c.Faults = fault.Schedule{Seed: 99, Events: []fault.Event{
			{Kind: fault.NodeOffline, Node: 1, At: beyond, Until: beyond + 100},
			{Kind: fault.LatencyDegrade, Node: 1, At: beyond, Until: beyond + 100, Mult: 4, Jitter: 0.2},
			{Kind: fault.MigFailBegin, Node: -1, At: beyond, Prob: 0.9},
			{Kind: fault.CapacityLoss, Node: 1, At: beyond, Pages: 64},
		}}
	})
	if sOn != sOff {
		t.Errorf("dormant schedule changed scalars: off %s, on %s", sOff, sOn)
	}
	if dOn != dOff {
		t.Errorf("dormant schedule changed sampled series: off %s, on %s", dOff, dOn)
	}
	for n := 0; n < mOff.Stat().NumNodes(); n++ {
		if mOff.Stat().NodeSnapshot(mem.NodeID(n)) != mOn.Stat().NodeSnapshot(mem.NodeID(n)) {
			t.Errorf("dormant schedule changed node %d vmstat counters", n)
		}
	}
	if len(mOn.Results().FaultLog) != 0 {
		t.Errorf("dormant schedule produced %d fault occurrences", len(mOn.Results().FaultLog))
	}
}

// faultedExpanderCfg is the pinned faulted scenario: TPP driving the
// file-heavy Web1 on the 3-tier expander, with the far CXL node
// hot-removed mid-run and restored four minutes later.
func faultedExpanderCfg() Config {
	return Config{
		Seed: 7, Policy: core.TPP(),
		Workload: workload.Catalog["Web1"](8 * 1024),
		Topology: tier.PresetExpander(2, 1, 1),
		Minutes:  20,
		Faults: fault.Schedule{Seed: 11, Events: []fault.Event{
			{Kind: fault.NodeOffline, Node: 2, At: 480, Until: 720},
		}},
	}
}

// TestFaultedExpanderGolden pins one faulted run end to end the same
// way the scalar goldens pin unfaulted machines: exact scalar strings,
// exact fault counters, and a fault log matching the schedule. A second
// identically-configured machine must reproduce it bit for bit, and so
// must a replay of its recorded trace (the v6 header carries the
// schedule). Recapture (with a commit-message note) if simulation
// behavior legitimately changes.
func TestFaultedExpanderGolden(t *testing.T) {
	const (
		wantScalars   = "0.996469/0.994500/101.366000"
		wantEvacuated = 1736
	)
	run := func(mut func(*Config)) (*Machine, *trace.Trace) {
		cfg := faultedExpanderCfg()
		if mut != nil {
			mut(&cfg)
		}
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res := m.Run()
		if res.Failed {
			t.Fatalf("faulted run failed: %s", res.FailReason)
		}
		return m, nil
	}

	m, _ := run(nil)
	res := m.Results()
	scalars := fmt.Sprintf("%.6f/%.6f/%.6f", res.NormalizedThroughput, res.AvgLocalTraffic, res.AvgLatencyNs)
	if scalars != wantScalars {
		t.Errorf("scalars = %q, want %q", scalars, wantScalars)
	}
	st := m.Stat()
	if got := st.GetNode(2, vmstat.NodeOfflineEvents); got != 1 {
		t.Errorf("node 2 node_offline_events = %d, want 1", got)
	}
	if got := st.GetNode(2, vmstat.EvacuatedPages); got != wantEvacuated {
		t.Errorf("node 2 evacuated_pages = %d, want %d", got, wantEvacuated)
	}
	if on := m.Topology().Online(2); !on {
		t.Error("node 2 still offline after its online edge")
	}
	log := res.FaultLog
	if len(log) != 2 || log[0].Kind != fault.NodeOffline || log[0].Tick != 480 ||
		log[1].Kind != fault.NodeOnline || log[1].Tick != 720 {
		t.Fatalf("fault log = %v, want offline@480 then online@720", log)
	}

	// Same config, fresh machine: bit-identical.
	m2, _ := run(nil)
	if got := fmt.Sprintf("%.6f/%.6f/%.6f", m2.Results().NormalizedThroughput,
		m2.Results().AvgLocalTraffic, m2.Results().AvgLatencyNs); got != scalars {
		t.Errorf("re-run scalars = %q, want %q", got, scalars)
	}
	if m2.Stat().Snapshot() != st.Snapshot() {
		t.Error("re-run diverged in vmstat counters")
	}

	// Record, then replay adopting the header's schedule: bit-identical.
	path := filepath.Join(t.TempDir(), "faulted.trace")
	rec, _ := run(func(c *Config) { c.RecordTo = path })
	if err := rec.RecordError(); err != nil {
		t.Fatalf("recording: %v", err)
	}
	tr, err := trace.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Header.Faults == nil {
		t.Fatal("v6 header of a faulted run carries no schedule")
	}
	cfg := faultedExpanderCfg()
	cfg.Workload = tr.Replayer(trace.ReplayOptions{})
	cfg.Faults = *tr.Header.Faults
	rep, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	repRes := rep.Run()
	if repRes.Failed {
		t.Fatalf("replay failed: %s", repRes.FailReason)
	}
	if got := fmt.Sprintf("%.6f/%.6f/%.6f", repRes.NormalizedThroughput,
		repRes.AvgLocalTraffic, repRes.AvgLatencyNs); got != scalars {
		t.Errorf("replay scalars = %q, want %q", got, scalars)
	}
	for n := 0; n < st.NumNodes(); n++ {
		if rep.Stat().NodeSnapshot(mem.NodeID(n)) != st.NodeSnapshot(mem.NodeID(n)) {
			t.Errorf("replay diverged in node %d vmstat counters", n)
		}
	}
}

// TestMigFailWindowCounters drives a migration-failure window over a
// whole run and checks the retry/backoff counters move and the machine
// survives: injected failures are transient, never fatal.
func TestMigFailWindowCounters(t *testing.T) {
	cfg := Config{
		Seed: 7, Policy: core.TPP(),
		Workload: workload.Catalog["Web1"](8 * 1024),
		Ratio:    [2]uint64{2, 1},
		Minutes:  10,
		Faults: fault.Schedule{Seed: 5, Events: []fault.Event{
			{Kind: fault.MigFailBegin, Node: -1, At: 60, Until: 480, Prob: 0.5, MaxRetries: 2},
		}},
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	if res.Failed {
		t.Fatalf("migfail run failed: %s", res.FailReason)
	}
	st := m.Stat()
	if fails := st.Get(vmstat.PgmigrateFail); fails == 0 {
		t.Error("no injected failures charged to the pgmigrate_fail family")
	}
	if st.Get(vmstat.MigrateRetry) == 0 {
		t.Error("no migration retries counted")
	}
	if len(res.FaultLog) != 2 {
		t.Errorf("fault log has %d entries, want open+close", len(res.FaultLog))
	}
}

// TestFaultScheduleValidation rejects malformed schedules at assembly.
func TestFaultScheduleValidation(t *testing.T) {
	bad := []fault.Schedule{
		{Events: []fault.Event{{Kind: fault.NodeOffline, Node: 0, At: 5}}},                       // local node
		{Events: []fault.Event{{Kind: fault.NodeOffline, Node: 9, At: 5}}},                       // out of range
		{Events: []fault.Event{{Kind: fault.MigFailBegin, Prob: 1.5, At: 5}}},                    // bad prob
		{Events: []fault.Event{{Kind: fault.LatencyDegrade, Node: 1, At: 9, Until: 4, Mult: 2}}}, // empty window
	}
	for i, s := range bad {
		cfg := Config{
			Seed: 1, Policy: core.TPP(),
			Workload: workload.Catalog["Web1"](4 * 1024),
			Ratio:    [2]uint64{2, 1},
			Minutes:  1,
			Faults:   s,
		}
		if _, err := New(cfg); err == nil {
			t.Errorf("schedule %d: New accepted an invalid schedule", i)
		}
	}
}
