package sim

import (
	"fmt"
	"testing"

	"tppsim/internal/core"
	"tppsim/internal/mem"
	"tppsim/internal/metrics"
	"tppsim/internal/tier"
	"tppsim/internal/tracker"
	"tppsim/internal/vmstat"
	"tppsim/internal/workload"
	"tppsim/internal/xrand"
)

// TestNodeSumsMatchGlobalRandomized asserts the stats-plane invariant —
// sum(per-node) == global for every counter — over randomized
// topologies (node counts, kinds, shares, latencies, distance
// matrices), policies, and workloads. Every event must be charged to
// exactly one node, or the derived global view drifts from what the
// old single-registry implementation counted.
func TestNodeSumsMatchGlobalRandomized(t *testing.T) {
	policies := []func() core.Policy{
		func() core.Policy { return core.TPP() },
		core.DefaultLinux,
		core.NUMABalancing,
		func() core.Policy { return core.TPP(core.WithTMO()) },
		func() core.Policy { return core.Sampled() },
	}
	workloads := []string{"Web1", "Cache1", "Cache2"}
	// A random tracker kind (or none) rides along, so the tracker
	// plane's per-node counters are covered by the sum==global and
	// attribution checks across random topologies too.
	trackers := []string{"", "idlepage", "softdirty", "damon"}
	rng := xrand.New(42)
	for i := 0; i < 10; i++ {
		spec := randomSpec(rng)
		policy := policies[int(rng.Uint64n(uint64(len(policies))))]()
		wl := workloads[int(rng.Uint64n(uint64(len(workloads))))]
		trk := trackers[int(rng.Uint64n(uint64(len(trackers))))]
		name := fmt.Sprintf("%d_%s_%s_%dnodes_trk-%s", i, wl, policy.Name, len(spec.Nodes), trk)
		t.Run(name, func(t *testing.T) {
			m, err := New(Config{
				Seed:     rng.Uint64(),
				Policy:   policy,
				Workload: workload.Catalog[wl](4 * 1024),
				Topology: spec,
				Minutes:  3,
				Tracker:  tracker.Config{Kind: trk},
			})
			if err != nil {
				t.Fatal(err)
			}
			res := m.Run()
			assertNodeSumsMatchGlobal(t, m)
			assertNodeAttribution(t, res)
			// The per-node results carried on the run must be the same
			// snapshots the plane reports.
			if len(res.Nodes) != m.Stat().NumNodes() {
				t.Fatalf("run has %d node results for %d nodes", len(res.Nodes), m.Stat().NumNodes())
			}
			for _, n := range res.Nodes {
				if n.Counters != m.Stat().NodeSnapshot(mem.NodeID(n.ID)) {
					t.Errorf("node %d: run counters diverge from the stats plane", n.ID)
				}
			}
		})
	}
}

// randomSpec builds a random valid topology: node 0 CPU-attached, 1-4
// nodes total, random kinds/shares/latencies, and either the synthesized
// flat distance matrix or a random chain-flavored one.
func randomSpec(rng *xrand.RNG) tier.Spec {
	n := 1 + int(rng.Uint64n(4))
	s := tier.Spec{Name: "random"}
	for i := 0; i < n; i++ {
		ns := tier.NodeSpec{Kind: mem.KindLocal, Share: 1 + rng.Uint64n(4)}
		if i > 0 && rng.Bool(0.7) {
			ns.Kind = mem.KindCXL
			if rng.Bool(0.5) {
				ns.LoadLatencyNs = 170 + float64(rng.Uint64n(200))
			}
		}
		s.Nodes = append(s.Nodes, ns)
	}
	if rng.Bool(0.5) {
		// Chain-flavored matrix: distance grows with ID separation.
		d := make([][]int, n)
		for i := range d {
			d[i] = make([]int, n)
			for j := range d[i] {
				if i == j {
					d[i][j] = 10
				} else {
					diff := i - j
					if diff < 0 {
						diff = -diff
					}
					d[i][j] = 10 + 10*diff
				}
			}
		}
		s.Distance = d
	}
	return s
}

// assertNodeAttribution checks invariants a wrong-node charge would
// break (the tautology-free side of the stats-plane tests): kind- and
// tier-restricted counters may only appear on nodes they can occur on.
func assertNodeAttribution(t *testing.T, res *metrics.Run) {
	t.Helper()
	for _, n := range res.Nodes {
		if n.Kind == "cxl" && n.Get(vmstat.PgallocLocal) != 0 {
			t.Errorf("node %d (cxl): pgalloc_local = %d", n.ID, n.Get(vmstat.PgallocLocal))
		}
		if n.Kind == "local" && n.Get(vmstat.PgallocCXL) != 0 {
			t.Errorf("node %d (local): pgalloc_cxl = %d", n.ID, n.Get(vmstat.PgallocCXL))
		}
		if n.Tier != 0 && n.Get(vmstat.NumaHintFaultsLocal) != 0 {
			t.Errorf("node %d (tier %d): numa_hint_faults_local = %d", n.ID, n.Tier, n.Get(vmstat.NumaHintFaultsLocal))
		}
		if n.Tier < 2 {
			// Far-tier traffic lands on (demote) or leaves (promote) a
			// tier>=2 node only.
			if v := n.Get(vmstat.PgdemoteFar); v != 0 {
				t.Errorf("node %d (tier %d): pgdemote_far = %d", n.ID, n.Tier, v)
			}
			if v := n.Get(vmstat.PgpromoteFar); v != 0 {
				t.Errorf("node %d (tier %d): pgpromote_far = %d", n.ID, n.Tier, v)
			}
		}
		if n.Tier == 0 && (n.Get(vmstat.PgpromoteSampled) != 0 || n.Get(vmstat.PgpromoteCandidate) != 0) {
			t.Errorf("node %d (tier 0): promotion sampling counters on the CPU tier", n.ID)
		}
	}
}

// TestAutoTieringRunsOnPresets pins the rewrite of the AutoTiering
// baseline against tier.Spec: per-CPU-node ranking and buffer placement
// from the distance matrix must complete runs on every topology preset,
// including the dual-socket machine (two sockets, two buffers) and the
// multi-hop expander — machines the node-0-only implementation could
// not model.
func TestAutoTieringRunsOnPresets(t *testing.T) {
	for _, name := range tier.PresetNames() {
		t.Run(name, func(t *testing.T) {
			spec, ok := tier.Preset(name)
			if !ok {
				t.Fatalf("no preset %q", name)
			}
			m, err := New(Config{
				Seed:     5,
				Policy:   core.AutoTiering(),
				Workload: workload.Catalog["Cache2"](8 * 1024),
				Topology: spec,
				Minutes:  8,
			})
			if err != nil {
				t.Fatal(err)
			}
			res := m.Run()
			if res.Failed {
				t.Fatalf("AutoTiering failed on %s: %s", name, res.FailReason)
			}
			if got := m.Stat().Get(vmstat.PgpromoteSuccess); got == 0 {
				t.Errorf("AutoTiering promoted nothing on %s", name)
			}
			assertNodeSumsMatchGlobal(t, m)
		})
	}
}

// TestDualSocketCrossSocketLatency pins the per-socket CPU placement
// satellite: on the dual-socket preset, regions are spread over both
// sockets, and a page resident on the remote socket's DRAM costs the
// distance-matrix cross-socket latency (~180 ns), not the resident
// node's local 100 ns.
func TestDualSocketCrossSocketLatency(t *testing.T) {
	spec := tier.PresetDualSocket()
	m, err := New(Config{
		Seed:     9,
		Policy:   core.DefaultLinux(),
		Workload: workload.Catalog["Cache2"](8 * 1024),
		Topology: spec,
		Minutes:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	topo := m.Topology()
	// The latency model itself: same-socket DRAM 100 ns, cross-socket
	// DRAM 180 ns, near expander keeps its trait latency, remote
	// expander pays the same cross-socket penalty on top.
	if got := topo.AccessLatency(0, 0); got != tier.LocalDRAMLatencyNs {
		t.Errorf("AccessLatency(0,0) = %v", got)
	}
	if got := topo.AccessLatency(0, 1); got != tier.RemoteSocketLatency {
		t.Errorf("AccessLatency(0,1) = %v, want %v", got, tier.RemoteSocketLatency)
	}
	if got := topo.AccessLatency(0, 2); got != tier.CXLLatencyDefaultNs {
		t.Errorf("AccessLatency(0,2) = %v", got)
	}
	want := tier.CXLLatencyDefaultNs + 22*tier.RemoteAccessPenaltyNsPerDist
	if got := topo.AccessLatency(0, 3); got != want {
		t.Errorf("AccessLatency(0,3) = %v, want %v", got, want)
	}
	// And the machine actually uses both sockets as homes: run a bit
	// and check pages exist with Home 0 and Home 1.
	res := m.Run()
	if res.Failed {
		t.Fatal(res.FailReason)
	}
	homes := map[mem.NodeID]int{}
	for pfn := 0; pfn < m.store.Len(); pfn++ {
		pg := m.store.Page(mem.PFN(pfn))
		if pg.Node != mem.NilNode {
			homes[pg.Home]++
		}
	}
	if homes[0] == 0 || homes[1] == 0 {
		t.Errorf("regions not spread over sockets: homes = %v", homes)
	}
	if homes[2] != 0 || homes[3] != 0 {
		t.Errorf("CXL node used as a home socket: homes = %v", homes)
	}
}
