package sim

import (
	"strconv"
	"testing"

	"tppsim/internal/core"
	"tppsim/internal/workload"
)

// The golden values below were captured from the map-based address
// space / string-keyed vmstat implementation (pre flat-page-table
// refactor) and pin the simulator's observable behavior bit-for-bit:
// the hot-path data structures are free to change, the physics are not.
// If a change legitimately alters simulation behavior, recapture by
// printing the same quantities from this config and update the table
// with a note in the commit message.
var goldenRuns = []struct {
	wl         string
	minutes    int
	throughput string
	local      string
	latency    string
	vmstat     string
}{
	{
		wl: "Web1", minutes: 12,
		throughput: "0.9988433116229649",
		local:      "0.9968666666666668",
		latency:    "100.44066666666667",
		vmstat: `numa_hint_faults 2332
numa_pages_scanned 7712
pgalloc_cxl 1289
pgalloc_local 29824
pgdeactivate 13231
pgdemote_anon 871
pgdemote_fail 13
pgdemote_fallback 13
pgdemote_file 4749
pgdemote_kswapd 5620
pgfree 14424
pgmigrate_fail 13
pgmigrate_success 6179
pgpromote_candidate 559
pgpromote_demoted 351
pgpromote_file 559
pgpromote_sampled 2332
pgpromote_success 559
pgrotated 52816
pgscan_kswapd 14761
pgsteal_kswapd 9
`,
	},
	{
		wl: "Cache2", minutes: 10,
		throughput: "0.9787817006593561",
		local:      "0.8406224472611189",
		latency:    "119.67079210252616",
		vmstat: `numa_hint_faults 7299
numa_pages_scanned 9948
pgalloc_cxl 4132
pgalloc_local 10941
pgdeactivate 71360
pgdemote_anon 1181
pgdemote_fail 10
pgdemote_fallback 10
pgdemote_file 3493
pgdemote_kswapd 4674
pgmigrate_fail 19
pgmigrate_success 8838
pgpromote_anon 2075
pgpromote_candidate 5956
pgpromote_demoted 1027
pgpromote_file 2089
pgpromote_sampled 7299
pgpromote_success 4164
pgrotated 207523
pgscan_kswapd 9657
promote_fail_low_memory 1783
promote_fail_page_refs 9
`,
	},
}

// TestSeedDeterminismGolden asserts that fixed-seed TPP runs reproduce
// the exact scalars and vmstat snapshots of the pre-refactor simulator.
func TestSeedDeterminismGolden(t *testing.T) {
	for _, g := range goldenRuns {
		g := g
		t.Run(g.wl, func(t *testing.T) {
			wl := workload.Catalog[g.wl](16 * 1024)
			m, err := New(Config{
				Seed: 7, Policy: core.TPP(), Workload: wl,
				Ratio: [2]uint64{2, 1}, Minutes: g.minutes,
			})
			if err != nil {
				t.Fatal(err)
			}
			res := m.Run()
			if res.Failed {
				t.Fatalf("run failed: %s", res.FailReason)
			}
			f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
			if got := f(res.NormalizedThroughput); got != g.throughput {
				t.Errorf("throughput = %s, want %s", got, g.throughput)
			}
			if got := f(res.AvgLocalTraffic); got != g.local {
				t.Errorf("local traffic = %s, want %s", got, g.local)
			}
			if got := f(res.AvgLatencyNs); got != g.latency {
				t.Errorf("latency = %s, want %s", got, g.latency)
			}
			if got := m.Stat().Snapshot().String(); got != g.vmstat {
				t.Errorf("vmstat mismatch:\n got:\n%s want:\n%s", got, g.vmstat)
			}
		})
	}
}
