package sim

import (
	"strconv"
	"testing"

	"tppsim/internal/core"
	"tppsim/internal/mem"
	"tppsim/internal/tier"
	"tppsim/internal/vmstat"
	"tppsim/internal/workload"
)

// The golden values below were captured from the map-based address
// space / string-keyed vmstat implementation (pre flat-page-table
// refactor) and pin the simulator's observable behavior bit-for-bit:
// the hot-path data structures are free to change, the physics are not.
// If a change legitimately alters simulation behavior, recapture by
// printing the same quantities from this config and update the table
// with a note in the commit message.
var goldenRuns = []struct {
	wl         string
	minutes    int
	throughput string
	local      string
	latency    string
	vmstat     string
	nodeVmstat []string // per-node snapshots, node-ID order
}{
	{
		wl: "Web1", minutes: 12,
		throughput: "0.9988433116229649",
		local:      "0.9968666666666668",
		latency:    "100.44066666666667",
		vmstat: `numa_hint_faults 2332
numa_pages_scanned 7712
pgalloc_cxl 1289
pgalloc_local 29824
pgdeactivate 13231
pgdemote_anon 871
pgdemote_fail 13
pgdemote_fallback 13
pgdemote_file 4749
pgdemote_kswapd 5620
pgfree 14424
pgmigrate_fail 13
pgmigrate_success 6179
pgpromote_candidate 559
pgpromote_demoted 351
pgpromote_file 559
pgpromote_sampled 2332
pgpromote_success 559
pgrotated 52816
pgscan_kswapd 14761
pgsteal_kswapd 9
`,
		nodeVmstat: []string{`pgalloc_local 29824
pgdeactivate 13231
pgdemote_anon 871
pgdemote_fail 13
pgdemote_fallback 13
pgdemote_file 4749
pgdemote_kswapd 5620
pgfree 13452
pgmigrate_fail 13
pgmigrate_success 559
pgpromote_demoted 351
pgpromote_file 559
pgpromote_success 559
pgrotated 52816
pgscan_kswapd 14761
pgsteal_kswapd 9
`, `numa_hint_faults 2332
numa_pages_scanned 7712
pgalloc_cxl 1289
pgfree 972
pgmigrate_success 5620
pgpromote_candidate 559
pgpromote_sampled 2332
`},
	},
	{
		wl: "Cache2", minutes: 10,
		throughput: "0.9787817006593561",
		local:      "0.8406224472611189",
		latency:    "119.67079210252616",
		vmstat: `numa_hint_faults 7299
numa_pages_scanned 9948
pgalloc_cxl 4132
pgalloc_local 10941
pgdeactivate 71360
pgdemote_anon 1181
pgdemote_fail 10
pgdemote_fallback 10
pgdemote_file 3493
pgdemote_kswapd 4674
pgmigrate_fail 19
pgmigrate_success 8838
pgpromote_anon 2075
pgpromote_candidate 5956
pgpromote_demoted 1027
pgpromote_file 2089
pgpromote_sampled 7299
pgpromote_success 4164
pgrotated 207523
pgscan_kswapd 9657
promote_fail_low_memory 1783
promote_fail_page_refs 9
`,
		nodeVmstat: []string{`pgalloc_local 10941
pgdeactivate 71360
pgdemote_anon 1181
pgdemote_fail 10
pgdemote_fallback 10
pgdemote_file 3493
pgdemote_kswapd 4674
pgmigrate_fail 10
pgmigrate_success 4164
pgpromote_anon 2075
pgpromote_demoted 1027
pgpromote_file 2089
pgpromote_success 4164
pgrotated 207523
pgscan_kswapd 9657
`, `numa_hint_faults 7299
numa_pages_scanned 9948
pgalloc_cxl 4132
pgmigrate_fail 9
pgmigrate_success 4674
pgpromote_candidate 5956
pgpromote_sampled 7299
promote_fail_low_memory 1783
promote_fail_page_refs 9
`},
	},
}

// TestSeedDeterminismGoldenMultiTier pins the 3-tier expander preset the
// same way the 2-node golden pins the default machine: fixed-seed TPP on
// the multi-hop cascade must reproduce these exact scalars and counters.
// Captured at the introduction of the topology API; recapture (with a
// commit-message note) if simulation behavior legitimately changes.
func TestSeedDeterminismGoldenMultiTier(t *testing.T) {
	const (
		throughput = "0.9204845112030831"
		local      = "0.5401190806665407"
		latency    = "178.00277621947154"
		vmstatWant = `numa_hint_faults 8776
numa_pages_scanned 11181
pgalloc_cxl 6114
pgalloc_local 8959
pgdeactivate 66682
pgdemote_anon 3279
pgdemote_fail 390
pgdemote_fallback 22
pgdemote_far 5631
pgdemote_file 5432
pgdemote_kswapd 8711
pgmigrate_fail 398
pgmigrate_success 13667
pgpromote_anon 2086
pgpromote_candidate 6514
pgpromote_demoted 2980
pgpromote_far 2658
pgpromote_file 2870
pgpromote_sampled 8776
pgpromote_success 4956
pgrotated 202609
pgscan_kswapd 21084
promote_fail_low_memory 1550
promote_fail_page_refs 8
`
	)
	nodeVmstatWant := []string{`pgalloc_local 8959
pgdeactivate 49264
pgdemote_anon 1060
pgdemote_fail 376
pgdemote_fallback 8
pgdemote_file 2387
pgdemote_kswapd 3447
pgmigrate_fail 376
pgmigrate_success 2298
pgpromote_anon 407
pgpromote_demoted 579
pgpromote_file 1891
pgpromote_success 2298
pgrotated 144913
pgscan_kswapd 10097
`, `numa_hint_faults 4972
numa_pages_scanned 6430
pgalloc_cxl 5807
pgdeactivate 17418
pgdemote_anon 2219
pgdemote_fail 14
pgdemote_fallback 14
pgdemote_file 3045
pgdemote_kswapd 5264
pgmigrate_fail 20
pgmigrate_success 5738
pgpromote_anon 1679
pgpromote_candidate 3624
pgpromote_demoted 2401
pgpromote_file 979
pgpromote_sampled 4972
pgpromote_success 2658
pgrotated 57696
pgscan_kswapd 10987
promote_fail_low_memory 1320
promote_fail_page_refs 6
`, `numa_hint_faults 3804
numa_pages_scanned 4751
pgalloc_cxl 307
pgdemote_far 5631
pgmigrate_fail 2
pgmigrate_success 5631
pgpromote_candidate 2890
pgpromote_far 2658
pgpromote_sampled 3804
promote_fail_low_memory 230
promote_fail_page_refs 2
`}
	wl := workload.Catalog["Cache2"](16 * 1024)
	m, err := New(Config{
		Seed: 7, Policy: core.TPP(), Workload: wl,
		Topology: tier.PresetExpander(2, 1, 1), Minutes: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	if res.Failed {
		t.Fatalf("run failed: %s", res.FailReason)
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	if got := f(res.NormalizedThroughput); got != throughput {
		t.Errorf("throughput = %s, want %s", got, throughput)
	}
	if got := f(res.AvgLocalTraffic); got != local {
		t.Errorf("local traffic = %s, want %s", got, local)
	}
	if got := f(res.AvgLatencyNs); got != latency {
		t.Errorf("latency = %s, want %s", got, latency)
	}
	if got := m.Stat().Snapshot().String(); got != vmstatWant {
		t.Errorf("vmstat mismatch:\n got:\n%s want:\n%s", got, vmstatWant)
	}
	for n, want := range nodeVmstatWant {
		if got := m.Stat().NodeSnapshot(mem.NodeID(n)).String(); got != want {
			t.Errorf("node %d vmstat mismatch:\n got:\n%s want:\n%s", n, got, want)
		}
	}
	assertNodeSumsMatchGlobal(t, m)
}

// TestMultiTierCascadeTraffic asserts the expander's far tier is a live
// rung of the cascade under TPP: pages demote into it (local→near→far)
// and hot pages promote back out of it, per the vmstat counters.
func TestMultiTierCascadeTraffic(t *testing.T) {
	wl := workload.Catalog["Cache2"](8 * 1024)
	m, err := New(Config{
		Seed: 3, Policy: core.TPP(), Workload: wl,
		Topology: tier.PresetExpander(2, 1, 1), Minutes: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res := m.Run(); res.Failed {
		t.Fatalf("run failed: %s", res.FailReason)
	}
	if got := m.Stat().Get(vmstat.PgdemoteFar); got == 0 {
		t.Error("no demotions into the far tier")
	}
	if got := m.Stat().Get(vmstat.PgpromoteFar); got == 0 {
		t.Error("no promotions out of the far tier")
	}
	// And the far node really held pages at some point.
	if m.Engine().DemotedInto(2) == 0 {
		t.Error("engine counted no demotions into node 2")
	}
	if m.Engine().PromotedFrom(2) == 0 {
		t.Error("engine counted no promotions off node 2")
	}
	// Default Linux on the same machine generates no cascade traffic.
	m2, err := New(Config{
		Seed: 3, Policy: core.DefaultLinux(), Workload: workload.Catalog["Cache2"](8 * 1024),
		Topology: tier.PresetExpander(2, 1, 1), Minutes: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res := m2.Run(); res.Failed {
		t.Fatalf("default run failed: %s", res.FailReason)
	}
	if got := m2.Stat().Get(vmstat.PgmigrateSuccess); got != 0 {
		t.Errorf("Default Linux migrated %d pages", got)
	}
}

// TestSeedDeterminismGolden asserts that fixed-seed TPP runs reproduce
// the exact scalars and vmstat snapshots of the pre-refactor simulator.
func TestSeedDeterminismGolden(t *testing.T) {
	for _, g := range goldenRuns {
		g := g
		t.Run(g.wl, func(t *testing.T) {
			wl := workload.Catalog[g.wl](16 * 1024)
			m, err := New(Config{
				Seed: 7, Policy: core.TPP(), Workload: wl,
				Ratio: [2]uint64{2, 1}, Minutes: g.minutes,
			})
			if err != nil {
				t.Fatal(err)
			}
			res := m.Run()
			if res.Failed {
				t.Fatalf("run failed: %s", res.FailReason)
			}
			f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
			if got := f(res.NormalizedThroughput); got != g.throughput {
				t.Errorf("throughput = %s, want %s", got, g.throughput)
			}
			if got := f(res.AvgLocalTraffic); got != g.local {
				t.Errorf("local traffic = %s, want %s", got, g.local)
			}
			if got := f(res.AvgLatencyNs); got != g.latency {
				t.Errorf("latency = %s, want %s", got, g.latency)
			}
			if got := m.Stat().Snapshot().String(); got != g.vmstat {
				t.Errorf("vmstat mismatch:\n got:\n%s want:\n%s", got, g.vmstat)
			}
			for n, want := range g.nodeVmstat {
				if got := m.Stat().NodeSnapshot(mem.NodeID(n)).String(); got != want {
					t.Errorf("node %d vmstat mismatch:\n got:\n%s want:\n%s", n, got, want)
				}
			}
			assertNodeSumsMatchGlobal(t, m)
		})
	}
}

// assertNodeSumsMatchGlobal checks the stats-plane contract: for every
// counter, the per-node values sum exactly to the global view. With the
// current NodeStats the global IS computed as that sum, so this guards
// the contract against future implementations (e.g. a separately
// maintained global accumulator) drifting — wrong-node *attribution*
// preserves the sum and is caught instead by the pinned per-node golden
// snapshots above and assertNodeAttribution in nodestats_test.go.
func assertNodeSumsMatchGlobal(t *testing.T, m *Machine) {
	t.Helper()
	st := m.Stat()
	var sum vmstat.Snapshot
	for n := 0; n < st.NumNodes(); n++ {
		ns := st.NodeSnapshot(mem.NodeID(n))
		for c, v := range ns {
			sum[c] += v
		}
	}
	global := st.Snapshot()
	for c := range global {
		if sum[c] != global[c] {
			t.Errorf("counter %s: sum(per-node) = %d, global = %d",
				vmstat.Counter(c), sum[c], global[c])
		}
	}
}
