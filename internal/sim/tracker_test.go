package sim

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"testing"

	"tppsim/internal/core"
	"tppsim/internal/mem"
	"tppsim/internal/series"
	"tppsim/internal/tier"
	"tppsim/internal/tracker"
	"tppsim/internal/vmstat"
	"tppsim/internal/workload"
)

// trackerCounters are the stats-plane counters owned by the tracker
// plane. Masking them separates "did the tracker change the simulation"
// (it must not) from "did the tracker count its own work" (it must).
var trackerCounters = []vmstat.Counter{
	vmstat.TrackerPagesScanned,
	vmstat.TrackerRegionsSplit,
	vmstat.TrackerRegionsMerged,
	vmstat.MoverPagesMoved,
	vmstat.MoverBudgetDeferred,
}

func maskTrackerCounters(s vmstat.Snapshot) vmstat.Snapshot {
	for _, c := range trackerCounters {
		s[c] = 0
	}
	return s
}

// maskedSeriesDigest is seriesDigest minus the tracker-owned counters,
// so tracker-on sampled series can be compared against tracker-off ones:
// everything the tracker does not own must match bit for bit.
func maskedSeriesDigest(s *series.Series) string {
	skip := map[vmstat.Counter]bool{}
	for _, c := range trackerCounters {
		skip[c] = true
	}
	h := fnv.New64a()
	var b [8]byte
	put := func(v uint64) {
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	put(uint64(s.Nodes()))
	put(s.Cadence())
	put(uint64(s.Len()))
	for n := 0; n < s.Nodes(); n++ {
		for c := 0; c < vmstat.NumCounters; c++ {
			if skip[vmstat.Counter(c)] {
				continue
			}
			for i := 0; i < s.Len(); i++ {
				put(s.Delta(n, vmstat.Counter(c), i))
			}
		}
		for k := 0; k < series.NumLevels; k++ {
			for i := 0; i < s.Len(); i++ {
				put(s.Level(n, series.LevelKind(k), i))
			}
		}
	}
	return fmt.Sprintf("%dx%d h=%016x", s.Len(), s.Cadence(), h.Sum64())
}

// TestTrackersDoNotPerturbRuns pins the tracker plane's observer
// contract on a non-sampled policy: attaching any tracker kind to a TPP
// run must reproduce the tracker-off run's scalars, vmstat counters
// (modulo the tracker's own five), and sampled series bit for bit. The
// plane watches the access stream and counts its own work; without the
// sampled policy it never builds a mover, so nothing feeds back.
func TestTrackersDoNotPerturbRuns(t *testing.T) {
	baseCfg := func() Config {
		return Config{
			Seed: 7, Policy: core.TPP(),
			Workload:         workload.Catalog["Web1"](8 * 1024),
			Ratio:            [2]uint64{2, 1},
			Minutes:          6,
			SampleEveryTicks: 1,
		}
	}
	runOnce := func(mut func(*Config)) (*Machine, string, string) {
		cfg := baseCfg()
		if mut != nil {
			mut(&cfg)
		}
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res := m.Run()
		if res.Failed {
			t.Fatal(res.FailReason)
		}
		scalars := fmt.Sprintf("%v/%v/%v", res.NormalizedThroughput, res.AvgLocalTraffic, res.AvgLatencyNs)
		return m, scalars, maskedSeriesDigest(res.NodeSeries)
	}

	mOff, sOff, dOff := runOnce(nil)
	if mOff.TrackerPlane() != nil || mOff.Results().Tracker != nil {
		t.Fatal("tracker-off run grew a tracker plane")
	}
	for _, c := range trackerCounters {
		if v := mOff.Stat().Get(c); v != 0 {
			t.Errorf("tracker-off run counted %s = %d", c, v)
		}
	}

	for _, kind := range tracker.KindNames() {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			m, s, d := runOnce(func(c *Config) {
				c.Tracker = tracker.Config{Kind: kind}
			})
			if s != sOff {
				t.Errorf("tracker changed scalars: off %s, on %s", sOff, s)
			}
			if d != dOff {
				t.Errorf("tracker changed sampled series: off %s, on %s", dOff, d)
			}
			if maskTrackerCounters(m.Stat().Snapshot()) != maskTrackerCounters(mOff.Stat().Snapshot()) {
				t.Error("tracker changed non-tracker vmstat counters")
			}
			for n := 0; n < m.Stat().NumNodes(); n++ {
				on := maskTrackerCounters(m.Stat().NodeSnapshot(mem.NodeID(n)))
				off := maskTrackerCounters(mOff.Stat().NodeSnapshot(mem.NodeID(n)))
				if on != off {
					t.Errorf("node %d: tracker changed non-tracker counters", n)
				}
			}
			// The plane did run: it scanned pages and summarized itself.
			ts := m.Results().Tracker
			if ts == nil || ts.Kind != kind {
				t.Fatalf("run has no tracker summary for %s", kind)
			}
			if ts.Scans == 0 || m.Stat().Get(vmstat.TrackerPagesScanned) == 0 {
				t.Errorf("%s scanned nothing", kind)
			}
			// Without the sampled policy there is no mover: observational
			// only, zero pages moved or deferred.
			if ts.MoverMoved != 0 || ts.MoverDeferred != 0 ||
				m.Stat().Get(vmstat.MoverPagesMoved) != 0 {
				t.Errorf("%s moved pages under a non-sampled policy", kind)
			}
		})
	}
}

// TestSampledPolicyGolden pins the sampled policy end to end the same
// way TestSeedDeterminismGolden pins TPP: fixed seed on the 3-tier
// expander, exact scalars and vmstat snapshot, and a second run must
// reproduce the first bit for bit (the plane's randomness is seeded,
// never wall-clock). Recapture (with a commit-message note) if tracker
// or mover behavior legitimately changes.
func TestSampledPolicyGolden(t *testing.T) {
	const (
		wantTput   = "0.91604047002486"
		wantLocal  = "0.5294918045067866"
		wantLat    = "182.5048610616656"
		wantVmstat = `mover_budget_deferred 52288
mover_pages_moved 2803
pgalloc_cxl 5267
pgalloc_local 10364
pgdeactivate 49708
pgdemote_anon 642
pgdemote_fail 5
pgdemote_file 1699
pgmigrate_fail 53635
pgmigrate_success 2803
pgpromote_anon 78
pgpromote_demoted 100
pgpromote_file 384
pgpromote_success 462
pgrotated 189181
pgscan_kswapd 639565
pgsteal_kswapd 558
promote_fail_low_memory 53506
promote_fail_page_refs 124
tracker_pages_scanned 447781
`
	)
	runOnce := func() (*Machine, *RunSnapshot) {
		m, err := New(Config{
			Seed: 7, Policy: core.Sampled(),
			Workload: workload.Catalog["Cache2"](16 * 1024),
			Topology: tier.PresetExpander(2, 1, 1),
			Minutes:  10,
		})
		if err != nil {
			t.Fatal(err)
		}
		res := m.Run()
		if res.Failed {
			t.Fatalf("run failed: %s", res.FailReason)
		}
		f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
		return m, &RunSnapshot{
			Tput: f(res.NormalizedThroughput), Local: f(res.AvgLocalTraffic),
			Lat: f(res.AvgLatencyNs), Vmstat: m.Stat().Snapshot().String(),
		}
	}
	m, got := runOnce()
	if got.Tput != wantTput {
		t.Errorf("throughput = %s, want %s", got.Tput, wantTput)
	}
	if got.Local != wantLocal {
		t.Errorf("local traffic = %s, want %s", got.Local, wantLocal)
	}
	if got.Lat != wantLat {
		t.Errorf("latency = %s, want %s", got.Lat, wantLat)
	}
	if got.Vmstat != wantVmstat {
		t.Errorf("vmstat mismatch:\n got:\n%s want:\n%s", got.Vmstat, wantVmstat)
	}
	// The policy actually drove the mover, and its vmstat counters agree
	// with the plane's own summary.
	ts := m.Results().Tracker
	if ts == nil {
		t.Fatal("sampled run has no tracker summary")
	}
	if ts.MoverMoved == 0 {
		t.Error("sampled policy moved no pages")
	}
	if v := m.Stat().Get(vmstat.MoverPagesMoved); v != ts.MoverMoved {
		t.Errorf("mover_pages_moved = %d, plane counted %d", v, ts.MoverMoved)
	}
	assertNodeSumsMatchGlobal(t, m)

	// Determinism: an identical second run reproduces everything.
	_, again := runOnce()
	if *again != *got {
		t.Errorf("second run diverged:\n first: %+v\n again: %+v", got, again)
	}
}

// RunSnapshot is the pinnable state of one golden run.
type RunSnapshot struct {
	Tput, Local, Lat, Vmstat string
}

// TestSampledPolicyCompletesOnPresets runs the sampled policy on every
// topology preset: the tracker-driven daemon must complete the run and
// actually move pages on each machine shape.
func TestSampledPolicyCompletesOnPresets(t *testing.T) {
	for _, name := range tier.PresetNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			spec, ok := tier.Preset(name)
			if !ok {
				t.Fatalf("unknown preset %s", name)
			}
			m, err := New(Config{
				Seed: 3, Policy: core.Sampled(),
				Workload: workload.Catalog["Cache2"](8 * 1024),
				Topology: spec,
				Minutes:  6,
			})
			if err != nil {
				t.Fatal(err)
			}
			res := m.Run()
			if res.Failed {
				t.Fatalf("run failed: %s", res.FailReason)
			}
			ts := res.Tracker
			if ts == nil {
				t.Fatal("no tracker summary")
			}
			if ts.MoverMoved == 0 {
				t.Error("mover moved no pages")
			}
			assertNodeSumsMatchGlobal(t, m)
		})
	}
}

// TestTrackerAccuracyOracle scores the trackers against ground truth on
// PhaseShift, whose anon phases are pure reads (dirtyProb 0): the
// idlepage tracker's accessed-bit scans must recover most of the true
// hot set, while softdirty — watching only writes — must miss nearly
// all of it at the same scan cadence. This is the write-only blind spot
// as a provable property, not a narrative.
func TestTrackerAccuracyOracle(t *testing.T) {
	recallOf := func(kind string) *tracker.RunStats {
		m, err := New(Config{
			Seed: 7, Policy: core.TPP(),
			Workload: workload.Catalog["PhaseShift"](8 * 1024),
			Ratio:    [2]uint64{2, 1},
			Minutes:  8,
			Tracker:  tracker.Config{Kind: kind, Oracle: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		res := m.Run()
		if res.Failed {
			t.Fatalf("%s run failed: %s", kind, res.FailReason)
		}
		ts := res.Tracker
		if ts == nil || ts.OracleEvals == 0 {
			t.Fatalf("%s run scored no oracle windows", kind)
		}
		return ts
	}

	idle := recallOf("idlepage")
	soft := recallOf("softdirty")
	if idle.Recall < 0.5 {
		t.Errorf("idlepage recall = %.3f, want >= 0.5 (accessed-bit scans see reads)", idle.Recall)
	}
	if soft.Recall > 0.05 {
		t.Errorf("softdirty recall = %.3f, want <= 0.05 (write-only tracking on a read-only hot set)", soft.Recall)
	}
	if idle.Recall < 10*soft.Recall {
		t.Errorf("idlepage recall %.3f not >> softdirty recall %.3f", idle.Recall, soft.Recall)
	}
	// Same scan cadence, same price: softdirty's blindness is not
	// cheapness, it checked a comparable number of pages.
	if idle.PagesScanned == 0 || soft.PagesScanned == 0 {
		t.Errorf("scan counts: idlepage %d, softdirty %d", idle.PagesScanned, soft.PagesScanned)
	}
}
