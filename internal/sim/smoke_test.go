package sim

import (
	"testing"

	"tppsim/internal/core"
	"tppsim/internal/workload"
)

// smokeRun executes a short scenario and returns the results.
func smokeRun(t *testing.T, policy core.Policy, wlName string, ratio [2]uint64, minutes int) *Machine {
	t.Helper()
	wl := workload.Catalog[wlName](16 * 1024)
	m, err := New(Config{
		Seed:     1,
		Policy:   policy,
		Workload: wl,
		Ratio:    ratio,
		Minutes:  minutes,
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Run()
	return m
}

func TestBaselineAllLocal(t *testing.T) {
	m := smokeRun(t, core.DefaultLinux(), "Cache1", [2]uint64{1, 0}, 20)
	r := m.Results()
	if r.Failed {
		t.Fatalf("baseline failed: %s", r.FailReason)
	}
	if r.AvgLocalTraffic < 0.999 {
		t.Fatalf("baseline local traffic = %v", r.AvgLocalTraffic)
	}
	if r.NormalizedThroughput < 0.98 {
		t.Fatalf("baseline throughput = %v", r.NormalizedThroughput)
	}
}

func TestTPPBeatsDefaultOnWeb1(t *testing.T) {
	def := smokeRun(t, core.DefaultLinux(), "Web1", [2]uint64{2, 1}, 40).Results()
	tpp := smokeRun(t, core.TPP(), "Web1", [2]uint64{2, 1}, 40).Results()
	if def.Failed || tpp.Failed {
		t.Fatalf("runs failed: def=%v tpp=%v", def.FailReason, tpp.FailReason)
	}
	if tpp.AvgLocalTraffic <= def.AvgLocalTraffic {
		t.Fatalf("TPP local %.3f <= default %.3f", tpp.AvgLocalTraffic, def.AvgLocalTraffic)
	}
	if tpp.NormalizedThroughput <= def.NormalizedThroughput {
		t.Fatalf("TPP throughput %.3f <= default %.3f", tpp.NormalizedThroughput, def.NormalizedThroughput)
	}
}

func TestDeterminism(t *testing.T) {
	a := smokeRun(t, core.TPP(), "Cache2", [2]uint64{2, 1}, 15)
	b := smokeRun(t, core.TPP(), "Cache2", [2]uint64{2, 1}, 15)
	if !a.Stat().Snapshot().Equal(b.Stat().Snapshot()) {
		t.Fatal("same seed produced different vmstat snapshots")
	}
}
