package sim

import (
	"fmt"
	"testing"

	"tppsim/internal/core"
	"tppsim/internal/probe"
	"tppsim/internal/workload"
)

// TestProbesDoNotPerturbRuns pins the probe plane's observer contract:
// the same seed with latency histograms on, the phase profiler on, or
// tracepoint subscribers attached must reproduce the probes-off run's
// scalars, vmstat counters, and sampled series bit for bit. Wall-clock
// phase laps and histogram observations never feed back into sim state.
func TestProbesDoNotPerturbRuns(t *testing.T) {
	baseCfg := func() Config {
		return Config{
			Seed: 7, Policy: core.TPP(),
			Workload:         workload.Catalog["Web1"](8 * 1024),
			Ratio:            [2]uint64{2, 1},
			Minutes:          6,
			SampleEveryTicks: 1,
		}
	}
	runOnce := func(mut func(*Config), prep func(*Machine)) (*Machine, string, string) {
		cfg := baseCfg()
		if mut != nil {
			mut(&cfg)
		}
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if prep != nil {
			prep(m)
		}
		res := m.Run()
		if res.Failed {
			t.Fatal(res.FailReason)
		}
		scalars := fmt.Sprintf("%v/%v/%v", res.NormalizedThroughput, res.AvgLocalTraffic, res.AvgLatencyNs)
		return m, scalars, seriesDigest(res.NodeSeries)
	}

	mOff, sOff, dOff := runOnce(nil, nil)
	if mOff.Results().LatencyHist != nil || mOff.Results().PhaseProfile != nil {
		t.Error("probes-off run grew a probe plane")
	}

	var fired struct{ demote, promote, stall, wake int }
	variants := []struct {
		name string
		mut  func(*Config)
		prep func(*Machine)
	}{
		{"latency", func(c *Config) { c.ProbeLatency = true }, nil},
		{"phases", func(c *Config) { c.ProbePhases = true }, nil},
		{"both", func(c *Config) { c.ProbeLatency = true; c.ProbePhases = true }, nil},
		{"hooks", nil, func(m *Machine) {
			p := m.EnableProbes()
			p.OnDemote.Attach(func(probe.MigrateEvent) { fired.demote++ })
			p.OnPromote.Attach(func(probe.MigrateEvent) { fired.promote++ })
			p.OnAllocStall.Attach(func(probe.AllocStallEvent) { fired.stall++ })
			p.OnReclaimWake.Attach(func(probe.ReclaimWakeEvent) { fired.wake++ })
		}},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			m, s, d := runOnce(v.mut, v.prep)
			if s != sOff {
				t.Errorf("probes changed scalars: off %s, on %s", sOff, s)
			}
			if d != dOff {
				t.Errorf("probes changed sampled series: off %s, on %s", dOff, d)
			}
			if mOff.Stat().Snapshot() != m.Stat().Snapshot() {
				t.Error("probes changed vmstat counters")
			}
			switch v.name {
			case "latency", "both":
				lat := m.Results().LatencyHist
				if lat == nil {
					t.Fatal("run has no latency histograms")
				}
				if total := lat.TotalAccess(); total.Count() == 0 {
					t.Error("access histograms recorded nothing")
				}
			case "phases":
				if m.Results().PhaseProfile == nil {
					t.Error("run has no phase profile")
				}
			}
		})
	}
	// The demotion/promotion/reclaim tracepoints must actually fire on
	// this workload; allocstall is load-dependent, so only assert the
	// migration and reclaim paths.
	if fired.demote == 0 || fired.promote == 0 || fired.wake == 0 {
		t.Errorf("tracepoints silent: demote=%d promote=%d stall=%d wake=%d",
			fired.demote, fired.promote, fired.stall, fired.wake)
	}
}
