package sim

import (
	"fmt"

	"tppsim/internal/fault"
	"tppsim/internal/mem"
	"tppsim/internal/vmstat"
)

// faultDriver applies a compiled fault schedule to a live machine. It
// owns the edge cursor, the migration retrier (attached to the engine
// as its FaultHook), the per-tick invariant checker, and the occurrence
// log surfaced as metrics.Run.FaultLog. All of its randomness comes
// from the schedule's own seed, so an attached driver whose edges never
// fire leaves the run bit-identical to an unfaulted one.
type faultDriver struct {
	m       *Machine
	edges   []fault.Edge
	next    int
	retrier *fault.Retrier
	checker *fault.InvariantChecker
	log     []fault.Occurrence
}

// newFaultDriver compiles the schedule and hooks the retrier into the
// migration engine. The schedule must already be validated.
func newFaultDriver(m *Machine, s fault.Schedule) *faultDriver {
	d := &faultDriver{
		m:       m,
		edges:   s.Compile(),
		retrier: fault.NewRetrier(s.Seed, m.stat),
		checker: fault.NewInvariantChecker(m.topo, m.store, m.stat),
	}
	d.checker.SetFramePages(m.framePages)
	m.engine.SetFaultHook(d.retrier)
	return d
}

// beginTick advances the retrier clock and applies every edge due at or
// before this tick, in schedule order.
func (d *faultDriver) beginTick(tick uint64) {
	d.retrier.BeginTick(tick)
	for d.next < len(d.edges) && d.edges[d.next].Tick <= tick {
		d.apply(d.edges[d.next], tick)
		d.next++
	}
}

// apply executes one edge against the machine and logs what happened.
func (d *faultDriver) apply(e fault.Edge, tick uint64) {
	m := d.m
	var detail string
	switch e.Kind {
	case fault.NodeOffline:
		id := mem.NodeID(e.Node)
		m.topo.SetOffline(id, true)
		mig, ev := d.evacuate(id, m.topo.Node(id).Resident(), true)
		m.stat.Inc(id, vmstat.NodeOfflineEvents)
		m.stat.Add(id, vmstat.EvacuatedPages, mig+ev)
		detail = fmt.Sprintf("evacuated %d pages (%d evicted)", mig+ev, ev)
	case fault.NodeOnline:
		m.topo.SetOffline(mem.NodeID(e.Node), false)
	case fault.LatencyDegrade:
		m.topo.SetLatencyScale(mem.NodeID(e.Node), e.Arg)
		m.refreshLatMat()
		detail = fmt.Sprintf("latency x%.2f", e.Arg)
	case fault.LatencyRestore:
		m.topo.SetLatencyScale(mem.NodeID(e.Node), 1)
		m.refreshLatMat()
	case fault.MigFailBegin:
		d.retrier.SetWindow(e.Arg, e.MaxRetries)
		detail = fmt.Sprintf("p=%g, retries=%d", e.Arg, e.MaxRetries)
	case fault.MigFailEnd:
		d.retrier.ClearWindow()
	case fault.CapacityLoss:
		id := mem.NodeID(e.Node)
		n := m.topo.Node(id)
		var newCap uint64
		if e.Pages < n.Capacity {
			newCap = n.Capacity - e.Pages
		}
		if over := n.Resident(); over > newCap {
			mig, ev := d.evacuate(id, over-newCap, true)
			m.stat.Add(id, vmstat.EvacuatedPages, mig+ev)
		}
		n.Resize(newCap, m.topo.DemoteScaleFactor())
		detail = fmt.Sprintf("capacity -%d pages, now %d", e.Pages, n.Capacity)
	}
	d.log = append(d.log, fault.Occurrence{Tick: tick, Kind: e.Kind, Node: e.Node, Detail: detail})
	if m.recorder != nil {
		m.recorder.Fault(e)
	}
}

// evacuate drains want pages off a dying or shrinking node with the
// engine's fault hook detached: injected migration failures (and their
// backoff state) must not block an emergency drain.
func (d *faultDriver) evacuate(id mem.NodeID, want uint64, force bool) (migrated, evicted uint64) {
	m := d.m
	m.engine.SetFaultHook(nil)
	migrated, evicted = m.daemon.EvacuatePages(id, want, force)
	m.engine.SetFaultHook(d.retrier)
	return migrated, evicted
}
