package sim

import (
	"testing"

	"tppsim/internal/core"
	"tppsim/internal/mem"
	"tppsim/internal/metrics"
	"tppsim/internal/vmstat"
	"tppsim/internal/workload"
)

// hugeTestWorkload is a small huge-mode driver: one anon region of 180
// frames, sequentially prefaulted over a 60-tick warm-up, then accessed
// uniformly. Local capacity holds only 128 frames, so reclaim must
// demote whole frames to CXL.
func hugeTestWorkload() workload.Workload {
	return &workload.Profile{
		PName:  "HugeTest",
		TM:     metrics.ThroughputModel{CPUServiceNs: 400, StallsPerOp: 1},
		Warmup: 60,
		Specs: []workload.RegionSpec{{
			Name:            "heap",
			Type:            mem.Anon,
			Pages:           180 * mem.HugeFramePages,
			Weight:          1,
			PrefaultPerTick: 3 * mem.HugeFramePages,
		}},
	}
}

func hugeTestConfig() Config {
	return Config{
		Seed:       7,
		Policy:     core.TPP(),
		Workload:   hugeTestWorkload(),
		LocalPages: 128 * mem.HugeFramePages,
		CXLPages:   256 * mem.HugeFramePages,
		HugePages:  true,
		Minutes:    3,
	}
}

// TestHugeSmoke runs a small huge-page machine end to end and checks
// the frame-granular accounting: residency conservation in base pages,
// frame-multiple page-denominated counters, the thp_*/extent_* event
// counters, and the MemStats footprint report.
func TestHugeSmoke(t *testing.T) {
	m, err := New(hugeTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	run := m.Run()
	if run.Failed {
		t.Fatalf("huge run failed: %s", run.FailReason)
	}

	const fp = mem.HugeFramePages
	// Every frame faulted exactly once (demotions migrate, not unmap).
	if got := m.stat.Get(vmstat.ThpFaultAlloc); got != 180 {
		t.Errorf("thp_fault_alloc = %d, want 180", got)
	}
	// Residency is charged in base pages; the store holds frames.
	var resident uint64
	for _, n := range m.topo.Nodes() {
		resident += n.Resident()
	}
	if want := uint64(m.store.Live()) * fp; resident != want {
		t.Errorf("resident %d pages != live frames * %d = %d", resident, fp, want)
	}
	if resident != 180*fp {
		t.Errorf("resident = %d pages, want %d", resident, 180*fp)
	}
	// The heap outgrows the local node, so kswapd demoted whole frames.
	demoted := m.stat.Get(vmstat.PgdemoteKswapd) + m.stat.Get(vmstat.PgdemoteDirect)
	if demoted == 0 {
		t.Error("no demotions on an over-committed local node")
	}
	if demoted%fp != 0 {
		t.Errorf("pgdemote = %d, not a multiple of the frame size %d", demoted, fp)
	}
	if m.stat.Get(vmstat.ThpCollapse) == 0 {
		t.Error("huge migrations recorded no thp_collapse events")
	}
	if alloc := m.stat.Get(vmstat.PgallocLocal) + m.stat.Get(vmstat.PgallocCXL); alloc%fp != 0 {
		t.Errorf("pgalloc = %d, not a multiple of the frame size %d", alloc, fp)
	}

	ms := run.MemStats
	if ms.FramePages != fp {
		t.Errorf("MemStats.FramePages = %d, want %d", ms.FramePages, fp)
	}
	if ms.ResidentPages != 180*fp {
		t.Errorf("MemStats.ResidentPages = %d, want %d", ms.ResidentPages, 180*fp)
	}
	if ms.Extents == 0 {
		t.Error("MemStats.Extents = 0 on a populated extent table")
	}
	if ms.BytesPerPage <= 0 || ms.BytesPerPage >= 1 {
		t.Errorf("MemStats.BytesPerPage = %.3f, want in (0, 1)", ms.BytesPerPage)
	}
	// The vmstat extent counters carry the same totals the table reports.
	if got := m.stat.Get(vmstat.ExtentSplit); got != ms.Splits {
		t.Errorf("extent_split = %d, table reports %d", got, ms.Splits)
	}
	if got := m.stat.Get(vmstat.ExtentMerge); got != ms.Merges {
		t.Errorf("extent_merge = %d, table reports %d", got, ms.Merges)
	}
	if ms.Merges == 0 {
		t.Error("sequential prefault produced no extent merges")
	}
}

// TestHugeDeterministic pins huge mode into the determinism contract:
// the same config reproduces identical counters, and the parallel stage
// phase (Config.Workers) leaves a huge run bit-identical too.
func TestHugeDeterministic(t *testing.T) {
	runOne := func(workers int) (*metrics.Run, vmstat.Snapshot) {
		cfg := hugeTestConfig()
		cfg.Workers = workers
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		run := m.Run()
		if run.Failed {
			t.Fatalf("huge run (workers=%d) failed: %s", workers, run.FailReason)
		}
		return run, m.stat.Snapshot()
	}
	baseRun, baseSnap := runOne(0)
	for _, workers := range []int{1, 3} {
		run, snap := runOne(workers)
		if snap != baseSnap {
			t.Errorf("workers=%d: vmstat diverged from serial run", workers)
		}
		if run.AvgLatencyNs != baseRun.AvgLatencyNs ||
			run.NormalizedThroughput != baseRun.NormalizedThroughput ||
			run.AvgLocalTraffic != baseRun.AvgLocalTraffic {
			t.Errorf("workers=%d: scalars diverged from serial run", workers)
		}
		if run.MemStats != baseRun.MemStats {
			t.Errorf("workers=%d: MemStats diverged from serial run", workers)
		}
	}
}
