// The parallel sim core: Config.Workers > 1 shards the expensive,
// side-effect-free front half of each tick's access batch — page-table
// translation and page-line warming — across worker goroutines, while
// every state mutation stays in the serial charge loop in its original
// access order.
//
// Determinism is structural, not reconciled-after-the-fact. The tick
// splits into:
//
//   - a stage phase: the batch is cut into contiguous shards, one per
//     worker; each worker translates its shard into its disjoint range
//     of the shared PFN buffer (TranslateBatch reads the region index
//     and scatter tables without mutating them) and sums page flags
//     into private scratch to pull each access's page line toward the
//     cache. Shard scratch merges at the barrier in fixed shard order —
//     and since the only cross-shard accumulator is an integer sum,
//     the merged value is the serial value exactly;
//   - a commit phase: the unchanged fused charge loop walks the PFN
//     buffer front to back, exactly as the serial path does. Latency
//     sums (order-sensitive float adds), LRU aging, hint faults,
//     promotions, demand faults, histograms, tracker hooks, and the
//     generation-counter fallback all execute in canonical batch order
//     = (shard, index) order, untouched by the staging.
//
// So a fixed seed produces bit-identical scalars, vmstat, series,
// probe histograms, and trace bytes for any worker count — pinned by
// TestParallelBitIdentical and the seed-determinism goldens.
//
// Each shard also owns a deterministically derived RNG substream
// (xrand.Substream of the machine seed: jump-derived, so streams are
// reproducible, order-independent, and non-overlapping). The staging
// pass itself draws nothing — today's shard work is pure reads — but
// the substream is the contract for any future shard-local randomness:
// it must come from the shard's stream, never the machine streams,
// which only the serial phases may touch.
//
// Why not per-shard vmstat deltas or probe histograms merged at the
// barrier? Histograms and counters merge exactly (probe.Histogram.Merge
// adds counts), but the values they would observe do not: an access's
// latency depends on the page's node and home *at commit time* — after
// earlier accesses' promotions, LRU rotations, and direct-reclaim
// evictions, which a mid-batch generation bump can reroute through the
// fault path entirely. Any stage-time classification is a guess about
// state the commit loop is still mutating. Keeping observation in the
// commit loop costs nothing (it was already there) and makes
// bit-identity a structural fact instead of a reconciliation protocol.
package sim

import (
	"runtime"
	"sync"

	"tppsim/internal/mem"
	"tppsim/internal/pagetable"
	"tppsim/internal/xrand"
)

// WorkersAuto requests one worker per available CPU
// (runtime.GOMAXPROCS) when set as Config.Workers.
const WorkersAuto = -1

// stageMinPerShard is the smallest shard worth a goroutine handoff:
// below ~64 accesses per worker the wake/barrier cost exceeds the
// translate work being parallelized. Batches under the threshold take
// the serial stage path — the cutoff affects only wall-clock, never
// results, because staging is side-effect-free either way.
const stageMinPerShard = 64

// resolveWorkers maps the Config.Workers knob to a concrete worker
// count: 0 (the zero value) and 1 mean serial, WorkersAuto (or any
// negative) means GOMAXPROCS, anything else is taken literally.
func resolveWorkers(w int) int {
	if w < 0 {
		return runtime.GOMAXPROCS(0)
	}
	if w == 0 {
		return 1
	}
	return w
}

// ResolveWorkers reports the concrete worker count a Config.Workers
// value resolves to on this host (0 and 1 → serial, WorkersAuto →
// GOMAXPROCS). Exported so tooling (cmd/bench) can record the resolved
// count alongside results instead of the symbolic knob.
func ResolveWorkers(w int) int { return resolveWorkers(w) }

// stageShard is one worker's private scratch, padded so adjacent
// shards' hot words never share a cache line.
type stageShard struct {
	// warm accumulates the shard's page-flag sum — the observable that
	// keeps the warming loads alive. Integer addition is associative and
	// commutative, so the fixed-order merge reproduces the serial sum
	// bit for bit.
	warm uint64
	// rng is the shard's derived substream (see the package comment):
	// unused by today's pure-read staging, reserved as the only legal
	// source of shard-local randomness.
	rng *xrand.RNG
	_   [48]byte
}

// stagePool shards the access batch's stage phase across workers.
// Workers are spawned per stage and joined at the barrier — the
// machine owns no long-lived goroutines, so machines remain garbage
// for the collector the moment the caller drops them.
type stagePool struct {
	m       *Machine
	workers int
	shards  []stageShard
}

// stageSeedSalt separates the shard substream family from the
// machine's other derived streams.
const stageSeedSalt = 0x70617261 // "para"

func newStagePool(m *Machine, workers int) *stagePool {
	p := &stagePool{m: m, workers: workers, shards: make([]stageShard, workers)}
	for i, r := range xrand.Substreams(m.cfg.Seed^stageSeedSalt, workers) {
		p.shards[i].rng = r
	}
	return p
}

// stage runs the translate+warm front half of runAccessBatch across the
// pool, filling pfns (which aliases the machine's PFN buffer) with
// exactly the values the serial path would produce. It reports false —
// having done nothing — when the batch is too small to shard.
func (p *stagePool) stage(vs []pagetable.VPN, pfns []mem.PFN) bool {
	if len(vs) < 2*stageMinPerShard {
		return false
	}
	shards := p.workers
	if max := len(vs) / stageMinPerShard; shards > max {
		shards = max
	}
	chunk := (len(vs) + shards - 1) / shards
	as, store := p.m.as, p.m.store
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		lo := s * chunk
		hi := lo + chunk
		if hi > len(vs) {
			hi = len(vs)
		}
		wg.Add(1)
		go func(sh *stageShard, vs []pagetable.VPN, pfns []mem.PFN) {
			defer wg.Done()
			as.TranslateBatch(vs, pfns)
			var warm uint64
			for _, pfn := range pfns {
				if pfn != mem.NilPFN {
					warm += uint64(store.Page(pfn).Flags)
				}
			}
			sh.warm = warm
		}(&p.shards[s], vs[lo:hi], pfns[lo:hi])
	}
	wg.Wait()
	// Merge shard scratch in fixed shard order.
	warm := p.m.warmSink
	for s := 0; s < shards; s++ {
		warm += p.shards[s].warm
		p.shards[s].warm = 0
	}
	p.m.warmSink = warm
	return true
}
