package series

import (
	"testing"

	"tppsim/internal/mem"
	"tppsim/internal/vmstat"
)

// drive feeds a deterministic synthetic counter/level stream of the
// given tick count into a sampler: every tick each node bumps a few
// counters by tick-dependent amounts and its levels follow a ramp.
func drive(p *Sampler, nodes int, ticks uint64) {
	stat := vmstat.NewNodeStats(nodes)
	levels := make([]Levels, nodes)
	for tick := uint64(0); tick < ticks; tick++ {
		for n := 0; n < nodes; n++ {
			id := mem.NodeID(n)
			stat.Add(id, vmstat.PgallocLocal, tick%5+uint64(n))
			stat.Add(id, vmstat.PgpromoteSuccess, (tick*7+uint64(n)*3)%4)
			stat.Add(id, vmstat.PgdemoteKswapd, tick%3)
			levels[n] = Levels{
				Resident: 100 + tick*2 + uint64(n)*1000,
				Anon:     50 + tick + uint64(n)*500,
				File:     25 + tick/2,
			}
		}
		if p.Due(tick) {
			p.Observe(tick, stat, levels)
		}
	}
}

func TestSamplerCadence(t *testing.T) {
	p := NewSampler(1, Config{Every: 5, Budget: 64})
	drive(p, 1, 50)
	s := p.Series()
	if s.Len() != 10 || s.Cadence() != 5 {
		t.Fatalf("Len=%d Cadence=%d, want 10 windows x 5 ticks", s.Len(), s.Cadence())
	}
	for i := 0; i < s.Len(); i++ {
		if want := uint64(i+1)*5 - 1; s.EndTick(i) != want {
			t.Errorf("EndTick(%d)=%d, want %d", i, s.EndTick(i), want)
		}
	}
	if !s.HasLevels() {
		t.Error("levels fed but HasLevels is false")
	}
	// Window-end level: sample i ends on tick 5i+4.
	for i := 0; i < s.Len(); i++ {
		if want := 100 + (uint64(i+1)*5-1)*2; s.Level(0, LevelResident, i) != want {
			t.Errorf("resident[%d]=%d, want %d", i, s.Level(0, LevelResident, i), want)
		}
	}
}

// TestDownsamplingInvariant pins coarsening's exactness: a
// budget-constrained sampler over the same stream as a fine
// (uncoarsened) one must hold, per coarse window, exactly the sum of
// the fine deltas it covers and the fine level at the window's end.
func TestDownsamplingInvariant(t *testing.T) {
	const nodes, ticks = 2, 300
	fine := NewSampler(nodes, Config{Every: 1, Budget: 512})
	coarse := NewSampler(nodes, Config{Every: 1, Budget: 16})
	drive(fine, nodes, ticks)
	drive(coarse, nodes, ticks)
	fs, cs := fine.Series(), coarse.Series()
	if fs.Cadence() != 1 {
		t.Fatalf("fine series coarsened (cadence %d); raise its budget", fs.Cadence())
	}
	if cs.Cadence() <= 1 || cs.Len() > 16 {
		t.Fatalf("coarse series did not coarsen: %d windows x %d ticks", cs.Len(), cs.Cadence())
	}
	cad := int(cs.Cadence())
	for j := 0; j < cs.Len(); j++ {
		lo, hi := j*cad, (j+1)*cad-1 // fine sample i covers tick i
		for n := 0; n < nodes; n++ {
			for c := 0; c < vmstat.NumCounters; c++ {
				var sum uint64
				for i := lo; i <= hi && i < fs.Len(); i++ {
					sum += fs.Delta(n, vmstat.Counter(c), i)
				}
				if got := cs.Delta(n, vmstat.Counter(c), j); got != sum {
					t.Fatalf("window %d node %d %s: coarse delta %d != fine sum %d",
						j, n, vmstat.Counter(c), got, sum)
				}
			}
			for k := 0; k < NumLevels; k++ {
				if hi < fs.Len() {
					if got, want := cs.Level(n, LevelKind(k), j), fs.Level(n, LevelKind(k), hi); got != want {
						t.Fatalf("window %d node %d %s: coarse level %d != fine window-end %d",
							j, n, LevelKind(k), got, want)
					}
				}
			}
		}
	}
}

func TestRebin(t *testing.T) {
	p := NewSampler(1, Config{Every: 1, Budget: 512})
	drive(p, 1, 100)
	s := p.Series()
	r := s.Rebin(10)
	if r.Len() > 10 {
		t.Fatalf("Rebin(10) left %d samples", r.Len())
	}
	// Totals survive any rebinning.
	for c := 0; c < vmstat.NumCounters; c++ {
		if s.DeltaTotal(0, vmstat.Counter(c)) != r.DeltaTotal(0, vmstat.Counter(c)) {
			t.Fatalf("%s total changed under Rebin", vmstat.Counter(c))
		}
	}
	// The original is untouched.
	if s.Len() != 100 || s.Cadence() != 1 {
		t.Fatal("Rebin mutated its receiver")
	}
	// Final window end survives (odd remainders keep the true last tick).
	if r.EndTick(r.Len()-1) != s.EndTick(s.Len()-1) {
		t.Fatalf("Rebin lost the final tick: %d != %d", r.EndTick(r.Len()-1), s.EndTick(s.Len()-1))
	}
}

func TestEqual(t *testing.T) {
	a := NewSampler(2, Config{Every: 3, Budget: 32})
	b := NewSampler(2, Config{Every: 3, Budget: 64}) // budgets may differ
	drive(a, 2, 60)
	drive(b, 2, 60)
	as, bs := a.Series(), b.Series()
	if as.Cadence() == bs.Cadence() {
		// Same stream, different budgets: only equal when neither (or
		// both identically) coarsened — with 20 samples vs budgets 32/64
		// neither coarsens.
		if !as.Equal(bs) {
			t.Fatal("identical streams compare unequal")
		}
	}
	c := NewSampler(2, Config{Every: 3, Budget: 32})
	drive(c, 2, 57) // one window short
	if as.Equal(c.Series()) {
		t.Fatal("different lengths compare equal")
	}
}

// TestFlushClosesPartialWindow pins the tail contract: a run whose
// length is not a multiple of the cadence keeps its remainder ticks via
// Flush, so delta totals always equal the final counters; a final tick
// already on cadence makes Flush a no-op.
func TestFlushClosesPartialWindow(t *testing.T) {
	stat := vmstat.NewNodeStats(1)
	run := func(ticks uint64, every uint64) *Series {
		p := NewSampler(1, Config{Every: every, Budget: 64})
		for tick := uint64(0); tick < ticks; tick++ {
			stat.Add(0, vmstat.PgallocLocal, 3)
			if p.Due(tick) {
				p.Observe(tick, stat, []Levels{{Resident: tick}})
			}
		}
		p.Flush(ticks-1, stat, []Levels{{Resident: ticks - 1}})
		return p.Series()
	}
	stat.Reset()
	s := run(100, 7) // 100 = 14*7 + 2: partial final window
	if got := s.DeltaTotal(0, vmstat.PgallocLocal); got != 300 {
		t.Fatalf("partial-tail total %d, want 300", got)
	}
	if s.Len() != 15 {
		t.Fatalf("Len=%d, want 14 full + 1 partial window", s.Len())
	}
	if s.EndTick(s.Len()-1) != 99 || s.Level(0, LevelResident, s.Len()-1) != 99 {
		t.Fatalf("partial window end = tick %d level %d, want 99/99",
			s.EndTick(s.Len()-1), s.Level(0, LevelResident, s.Len()-1))
	}
	stat.Reset()
	s = run(98, 7) // exact multiple: Flush must be a no-op
	if s.Len() != 14 {
		t.Fatalf("Len=%d after no-op flush, want 14", s.Len())
	}
	if got := s.DeltaTotal(0, vmstat.PgallocLocal); got != 294 {
		t.Fatalf("exact-multiple total %d, want 294", got)
	}
}

func TestNoLevels(t *testing.T) {
	p := NewSampler(1, Config{Every: 1, Budget: 8})
	stat := vmstat.NewNodeStats(1)
	for tick := uint64(0); tick < 20; tick++ {
		stat.Add(0, vmstat.PgfreeCt, 1)
		if p.Due(tick) {
			p.Observe(tick, stat, nil)
		}
	}
	s := p.Series()
	if s.HasLevels() {
		t.Fatal("HasLevels true without level input")
	}
	if got := s.DeltaTotal(0, vmstat.PgfreeCt); got != 20 {
		t.Fatalf("pgfree total %d, want 20", got)
	}
}
