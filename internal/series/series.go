// Package series is the simulator's per-tick per-node time-series plane:
// a columnar, self-downsampling store that holds, for every memory node,
// the vmstat counter *deltas* of each sample window plus the node's
// residency *levels* at the window's end. It is the single per-tick
// representation shared by live runs (sim samples into it from the tick
// loop) and trace analysis (trace.Stats folds a recorded stream's
// per-node TickEnd payload into it), so a decoded series can be compared
// bit-for-bit against the live-sampled series of the recording run.
//
// # Columns: deltas vs levels
//
// Every column is one (node, quantity) pair over time, stored
// column-major in a single backing slice. The two column classes behave
// differently under aggregation, which is why the split is explicit:
//
//   - delta columns (one per vmstat counter per node) hold how much the
//     counter grew during the sample window. Windows are disjoint and
//     exhaustive, so deltas are *summable*: merging two adjacent windows
//     adds their deltas, and the whole column sums to the counter's
//     final value.
//   - level columns (resident/anon/file pages per node) hold the state
//     at the window's *end*. Levels are not summable; merging two
//     windows keeps the later window's value.
//
// # Cadence coarsening
//
// A Sampler records one sample every Every ticks into a fixed Budget of
// retained samples. When the budget fills, the series coarsens itself:
// adjacent sample pairs merge (delta columns add, level columns keep the
// window-end value) and the cadence doubles, so a run of any length
// needs at most Budget samples of memory and the stored series always
// covers the whole run at uniform resolution. Coarsening is exact in
// the summable sense: every coarse window's delta equals the sum of the
// fine windows it replaced.
//
// Observing a tick that is not on the cadence is a single integer
// compare (Sampler.Due) — the hot tick loop pays nothing for the plane
// on non-sample ticks, and sample ticks write into preallocated columns
// without allocating.
package series

import (
	"fmt"

	"tppsim/internal/mem"
	"tppsim/internal/vmstat"
)

// DefaultBudget is the default maximum number of retained samples. It is
// even so the coarsening pass always merges complete pairs.
const DefaultBudget = 512

// LevelKind names one per-node level column.
type LevelKind uint8

// Level columns per node: total resident pages, resident anon pages, and
// resident file+tmpfs pages (the paper's anon/file split).
const (
	LevelResident LevelKind = iota
	LevelAnon
	LevelFile

	numLevels
)

// NumLevels is the number of level columns per node.
const NumLevels = int(numLevels)

// String returns the level column's name.
func (k LevelKind) String() string {
	switch k {
	case LevelResident:
		return "resident"
	case LevelAnon:
		return "resident_anon"
	case LevelFile:
		return "resident_file"
	}
	return fmt.Sprintf("level(%d)", uint8(k))
}

// Levels is one node's residency snapshot at a sample boundary.
type Levels struct {
	Resident uint64 // total resident pages
	Anon     uint64 // resident anon pages
	File     uint64 // resident file + tmpfs pages
}

// Config tunes a Sampler.
type Config struct {
	// Every is the initial sampling cadence in ticks (default 1: sample
	// every tick until the budget forces coarsening).
	Every uint64
	// Budget is the maximum number of retained samples; it must be even
	// (default DefaultBudget). When full, the series halves itself and
	// the cadence doubles.
	Budget int
}

func (c Config) withDefaults() Config {
	if c.Every == 0 {
		c.Every = 1
	}
	if c.Budget == 0 {
		c.Budget = DefaultBudget
	}
	if c.Budget%2 != 0 {
		c.Budget++
	}
	return c
}

// Series is the stored plane: count samples over nodes, each sample
// holding every node's counter deltas for the window plus its levels at
// the window end. Samples are uniform: sample i covers ticks
// [i*Cadence, (i+1)*Cadence), except that a Rebin of an odd-length
// series leaves its final sample covering the shorter remainder window
// (EndTick reports the true end either way).
type Series struct {
	nodes     int
	baseEvery uint64
	cadence   uint64
	budget    int
	count     int
	hasLevels bool
	lastTick  uint64
	// data is column-major: column c occupies data[c*budget : c*budget+count].
	// Columns are ordered: all delta columns (node-major, counter-minor),
	// then all level columns (node-major, kind-minor).
	data []uint64
}

func newSeries(nodes int, cfg Config) *Series {
	cols := nodes * (vmstat.NumCounters + NumLevels)
	return &Series{
		nodes:     nodes,
		baseEvery: cfg.Every,
		cadence:   cfg.Every,
		budget:    cfg.Budget,
		data:      make([]uint64, cols*cfg.Budget),
	}
}

// deltaCol returns the column index of (node, counter).
func (s *Series) deltaCol(node int, c vmstat.Counter) int {
	return node*vmstat.NumCounters + int(c)
}

// levelCol returns the column index of (node, kind).
func (s *Series) levelCol(node int, k LevelKind) int {
	return s.nodes*vmstat.NumCounters + node*NumLevels + int(k)
}

// Nodes returns the number of memory nodes the series covers.
func (s *Series) Nodes() int { return s.nodes }

// Len returns the number of retained samples.
func (s *Series) Len() int { return s.count }

// Cadence returns the current ticks-per-sample (BaseEvery × 2^coarsenings).
func (s *Series) Cadence() uint64 { return s.cadence }

// BaseEvery returns the configured pre-coarsening cadence.
func (s *Series) BaseEvery() uint64 { return s.baseEvery }

// HasLevels reports whether the level columns carry data (false for
// series decoded from traces recorded before residency levels existed).
func (s *Series) HasLevels() bool { return s.hasLevels }

// EndTick returns the 0-based tick the i-th sample window ends on.
func (s *Series) EndTick(i int) uint64 {
	if i == s.count-1 {
		return s.lastTick
	}
	return uint64(i+1)*s.cadence - 1
}

// Delta returns the (node, counter) delta of sample i: how much the
// counter grew during the window.
func (s *Series) Delta(node int, c vmstat.Counter, i int) uint64 {
	return s.data[s.deltaCol(node, c)*s.budget+i]
}

// Level returns the (node, kind) level at the end of sample i's window.
func (s *Series) Level(node int, k LevelKind, i int) uint64 {
	return s.data[s.levelCol(node, k)*s.budget+i]
}

// DeltaTotal returns the sum of a delta column over all samples — the
// counter's total growth over the sampled run.
func (s *Series) DeltaTotal(node int, c vmstat.Counter) uint64 {
	col := s.data[s.deltaCol(node, c)*s.budget:]
	var sum uint64
	for i := 0; i < s.count; i++ {
		sum += col[i]
	}
	return sum
}

// ActiveCounters returns, in enum order, the counters whose delta
// columns are non-zero on at least one node — the reporting edge uses it
// to skip the (many) all-zero columns.
func (s *Series) ActiveCounters() []vmstat.Counter {
	var out []vmstat.Counter
	for c := 0; c < vmstat.NumCounters; c++ {
		for n := 0; n < s.nodes; n++ {
			if s.DeltaTotal(n, vmstat.Counter(c)) != 0 {
				out = append(out, vmstat.Counter(c))
				break
			}
		}
	}
	return out
}

// Equal reports whether two series hold identical samples: same node
// count, cadence history, length, level presence, and every retained
// cell bit-for-bit. Backing budgets may differ.
func (s *Series) Equal(o *Series) bool {
	if s.nodes != o.nodes || s.baseEvery != o.baseEvery || s.cadence != o.cadence ||
		s.count != o.count || s.hasLevels != o.hasLevels || s.lastTick != o.lastTick {
		return false
	}
	cols := s.nodes * (vmstat.NumCounters + NumLevels)
	for c := 0; c < cols; c++ {
		a := s.data[c*s.budget:]
		b := o.data[c*o.budget:]
		for i := 0; i < s.count; i++ {
			if a[i] != b[i] {
				return false
			}
		}
	}
	return true
}

// coarsen merges adjacent sample pairs in place — delta columns add,
// level columns keep the later (window-end) value — and doubles the
// cadence. An odd final sample (possible only via Rebin) carries over
// unpaired as the remainder window.
func (s *Series) coarsen() {
	pairs := s.count / 2
	odd := s.count % 2
	cols := s.nodes * (vmstat.NumCounters + NumLevels)
	levelStart := s.nodes * vmstat.NumCounters
	for c := 0; c < cols; c++ {
		col := s.data[c*s.budget : c*s.budget+s.count]
		if c < levelStart {
			for i := 0; i < pairs; i++ {
				col[i] = col[2*i] + col[2*i+1]
			}
		} else {
			for i := 0; i < pairs; i++ {
				col[i] = col[2*i+1]
			}
		}
		if odd == 1 {
			col[pairs] = col[s.count-1]
		}
	}
	s.count = pairs + odd
	s.cadence *= 2
}

// Rebin returns a copy of the series coarsened until it holds at most
// max samples — the display-resolution knob (the stored series keeps its
// full budget). max < 1 is treated as 1.
func (s *Series) Rebin(max int) *Series {
	if max < 1 {
		max = 1
	}
	out := &Series{
		nodes: s.nodes, baseEvery: s.baseEvery, cadence: s.cadence,
		budget: s.budget, count: s.count, hasLevels: s.hasLevels,
		lastTick: s.lastTick,
		data:     append([]uint64(nil), s.data...),
	}
	for out.count > max {
		out.coarsen()
	}
	return out
}

// Sampler builds a Series from a live tick stream. The caller gates with
// Due — one compare per tick — and calls Observe only on due ticks, so
// non-sample ticks cost nothing and sample ticks write into the
// preallocated columns without allocating.
type Sampler struct {
	s    *Series
	next uint64
	// prev holds the cumulative per-(node,counter) values at the last
	// sample, node-major, so each window's delta is two reads and a
	// subtract.
	prev []uint64
}

// NewSampler returns a sampler for a machine of the given node count.
func NewSampler(nodes int, cfg Config) *Sampler {
	cfg = cfg.withDefaults()
	return &Sampler{
		s:    newSeries(nodes, cfg),
		next: cfg.Every - 1,
		prev: make([]uint64, nodes*vmstat.NumCounters),
	}
}

// Due reports whether tick closes the current sample window. Ticks are
// 0-based; the first window ends on tick Every-1.
func (p *Sampler) Due(tick uint64) bool { return tick == p.next }

// Observe records the sample that ends on tick: every node's counter
// deltas since the previous sample (stat is the machine's cumulative
// node-indexed plane) and, when levels is non-nil, each node's residency
// at the window end. Call only when Due(tick) is true.
func (p *Sampler) Observe(tick uint64, stat *vmstat.NodeStats, levels []Levels) {
	p.record(tick, stat, levels)
	p.next = tick + p.s.cadence
}

// Flush records the final — possibly partial — window ending on tick:
// the ticks observed since the last on-cadence sample. Without it a run
// whose length is not a multiple of the cadence would drop its tail and
// the delta columns would undercount the final counters. Call once when
// the run or stream ends; a tick that was already sampled is a no-op.
func (p *Sampler) Flush(tick uint64, stat *vmstat.NodeStats, levels []Levels) {
	if p.s.count > 0 && p.s.lastTick >= tick {
		return
	}
	p.record(tick, stat, levels)
}

func (p *Sampler) record(tick uint64, stat *vmstat.NodeStats, levels []Levels) {
	s := p.s
	i := s.count
	for n := 0; n < s.nodes; n++ {
		base := n * vmstat.NumCounters
		for c := 0; c < vmstat.NumCounters; c++ {
			cur := stat.GetNode(mem.NodeID(n), vmstat.Counter(c))
			s.data[(base+c)*s.budget+i] = cur - p.prev[base+c]
			p.prev[base+c] = cur
		}
	}
	if levels != nil {
		if i == 0 {
			s.hasLevels = true
		}
		for n, lv := range levels[:s.nodes] {
			s.data[s.levelCol(n, LevelResident)*s.budget+i] = lv.Resident
			s.data[s.levelCol(n, LevelAnon)*s.budget+i] = lv.Anon
			s.data[s.levelCol(n, LevelFile)*s.budget+i] = lv.File
		}
	}
	s.count++
	s.lastTick = tick
	if s.count == s.budget {
		s.coarsen()
	}
}

// Series returns the series built so far. The sampler keeps writing into
// the same store, so take the result only when sampling is done.
func (p *Sampler) Series() *Series { return p.s }
