package trace_test

import (
	"bytes"
	"io"
	"path/filepath"
	"testing"

	"tppsim/internal/core"
	"tppsim/internal/sim"
	"tppsim/internal/trace"
	"tppsim/internal/vmstat"
	"tppsim/internal/workload"
)

// recordSampledRun records one run with the live series plane sampling
// at the given cadence and returns the machine and the loaded trace.
func recordSampledRun(t *testing.T, dir string, every, budget int) (*sim.Machine, *trace.Trace) {
	t.Helper()
	path := filepath.Join(dir, "sampled.trace")
	m, err := sim.New(sim.Config{
		Seed:             11,
		Policy:           core.TPP(),
		Workload:         workload.Catalog["Cache2"](4 * 1024),
		Ratio:            [2]uint64{2, 1},
		Minutes:          5,
		RecordTo:         path,
		SampleEveryTicks: every,
		SampleBudget:     budget,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res := m.Run(); res.Failed {
		t.Fatal(res.FailReason)
	}
	if err := m.RecordError(); err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	return m, tr
}

// TestStatsBitIdenticalToLiveSeries pins the PR's convergence contract:
// the series trace.Stats reconstructs from a v4 trace's per-node
// TickEnd payload — counters AND residency levels — is bit-identical to
// the live-sampled series of the recording run, across cadences and
// through budget-forced coarsening.
func TestStatsBitIdenticalToLiveSeries(t *testing.T) {
	cases := []struct {
		name   string
		every  int
		budget int
	}{
		{"every-tick", 1, 512},
		{"cadence-7", 7, 512},
		{"coarsened", 1, 64}, // 300 ticks over a 64-sample budget coarsens thrice
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			m, tr := recordSampledRun(t, t.TempDir(), tc.every, tc.budget)
			live := m.Results().NodeSeries
			if live == nil || live.Len() == 0 {
				t.Fatal("live run sampled no series")
			}
			if !live.HasLevels() {
				t.Fatal("live series has no levels")
			}
			decoded, err := tr.Stats(trace.StatsOptions{
				SampleEvery:  uint64(tc.every),
				SampleBudget: tc.budget,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !decoded.HasLevels() {
				t.Fatal("decoded series has no levels (v4 payload lost)")
			}
			if !decoded.Equal(live) {
				t.Fatalf("decoded series diverges from live-sampled series: live %d windows x %d ticks, decoded %d x %d",
					live.Len(), live.Cadence(), decoded.Len(), decoded.Cadence())
			}
			if tc.budget == 64 && decoded.Cadence() == uint64(tc.every) {
				t.Fatal("coarsening case never coarsened; the pin is weaker than intended")
			}
		})
	}
}

// TestStatsOnV3Trace pins backward compatibility: a v3 stream (counter
// deltas, no residency levels) still decodes — flows identical to the
// v4 decode, HasLevels false.
func TestStatsOnV3Trace(t *testing.T) {
	_, tr := recordSampledRun(t, t.TempDir(), 1, 512)

	// Re-encode as version 3: same events, levels stripped by the writer.
	var buf bytes.Buffer
	h3 := tr.Header
	h3.Version = 3
	w := trace.NewWriter(&buf, h3)
	r := tr.Events()
	for {
		e, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		w.WriteEvent(e)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	tr3, err := trace.Decode(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if tr3.Size() >= tr.Size() {
		t.Errorf("v3 stream (%d B) not smaller than v4 (%d B) — levels not stripped?", tr3.Size(), tr.Size())
	}

	s4, err := tr.Stats(trace.StatsOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s3, err := tr3.Stats(trace.StatsOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if s3.HasLevels() {
		t.Error("v3 decode claims levels")
	}
	if s3.Len() != s4.Len() || s3.Cadence() != s4.Cadence() {
		t.Fatalf("v3 decode shape %dx%d != v4 %dx%d", s3.Len(), s3.Cadence(), s4.Len(), s4.Cadence())
	}
	for n := 0; n < s4.Nodes(); n++ {
		for c := 0; c < vmstat.NumCounters; c++ {
			for i := 0; i < s4.Len(); i++ {
				if s3.Delta(n, vmstat.Counter(c), i) != s4.Delta(n, vmstat.Counter(c), i) {
					t.Fatalf("node %d %s window %d: v3 delta diverges", n, vmstat.Counter(c), i)
				}
			}
		}
	}
}

// TestStatsRejectsStreamsWithoutPlane pins the failure mode: v2 streams
// and generator traces carry no per-node tick data.
func TestStatsRejectsStreamsWithoutPlane(t *testing.T) {
	_, tr := recordSampledRun(t, t.TempDir(), 1, 512)
	var buf bytes.Buffer
	h2 := tr.Header
	h2.Version = 2
	w := trace.NewWriter(&buf, h2)
	r := tr.Events()
	for {
		e, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		w.WriteEvent(e)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	tr2, err := trace.Decode(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr2.Stats(trace.StatsOptions{}); err == nil {
		t.Fatal("Stats accepted a v2 stream with no per-node data")
	}
}
