package trace

import (
	"tppsim/internal/fault"
	"tppsim/internal/mem"
	"tppsim/internal/metrics"
	"tppsim/internal/pagetable"
	"tppsim/internal/series"
	"tppsim/internal/vmstat"
	"tppsim/internal/workload"
)

// NodeStatsSource is implemented by machines that expose a node-indexed
// vmstat plane (sim.Machine does); when the recording context provides
// one, every recorded tick carries the per-node counter deltas the
// machine accumulated during it (trace format v3).
type NodeStatsSource interface {
	// NodeVmstat appends one snapshot per node to dst and returns the
	// extended slice.
	NodeVmstat(dst []vmstat.Snapshot) []vmstat.Snapshot
}

// NodeLevelsSource is implemented by machines that expose per-node
// residency (sim.Machine does); when the recording context provides one
// alongside NodeStatsSource, every recorded tick also carries each
// node's residency levels at the tick's end (trace format v4) — the
// level columns trace.Stats folds into the series plane.
type NodeLevelsSource interface {
	// NodeLevels appends one Levels entry per node to dst and returns
	// the extended slice.
	NodeLevels(dst []series.Levels) []series.Levels
}

// Recorder wraps a workload and transparently captures its full event
// stream — mmaps, munmaps, touches, and the sampled access stream — as
// the simulator runs it. The wrapped workload's behaviour is unchanged:
// every Ctx call is forwarded to the real machine, and the workload's
// random stream is untouched, so a recorded run is bit-identical to an
// unrecorded one.
//
// Close must be called after the run to write the final tick marker and
// flush the writer; sim.Config.RecordTo wires this up automatically.
type Recorder struct {
	inner  workload.Workload
	w      *Writer
	ticked bool

	// Per-node vmstat delta capture (v3 TickEnd payload). src is the
	// machine's stats plane when it offers one; prev/cur/deltas are
	// reused across ticks so recording stays allocation-free after the
	// first tick. lvlSrc/levels mirror the arrangement for the v4
	// residency levels.
	src    NodeStatsSource
	prev   []vmstat.Snapshot
	cur    []vmstat.Snapshot
	deltas []vmstat.Snapshot
	lvlSrc NodeLevelsSource
	levels []series.Levels
}

var _ workload.Workload = (*Recorder)(nil)
var _ workload.DirtyModel = (*Recorder)(nil)

// NewRecorder wraps inner, sending its event stream to w. The caller is
// expected to have constructed w with HeaderFor(inner).
func NewRecorder(inner workload.Workload, w *Writer) *Recorder {
	return &Recorder{inner: inner, w: w}
}

// Name implements workload.Workload.
func (r *Recorder) Name() string { return r.inner.Name() }

// Model implements workload.Workload.
func (r *Recorder) Model() metrics.ThroughputModel { return r.inner.Model() }

// TotalPages implements workload.Workload.
func (r *Recorder) TotalPages() uint64 { return r.inner.TotalPages() }

// WarmupTicks implements workload.Workload.
func (r *Recorder) WarmupTicks() uint64 { return r.inner.WarmupTicks() }

// Start implements workload.Workload: the inner setup runs against a
// recording context, then the start section is closed. The first
// recorded tick's deltas start from zero (setup faults count toward
// it), so summing every tick's deltas reproduces the recording
// machine's final per-node counters exactly.
func (r *Recorder) Start(ctx workload.Ctx) {
	r.src, _ = ctx.(NodeStatsSource)
	r.lvlSrc, _ = ctx.(NodeLevelsSource)
	r.prev = r.prev[:0]
	r.inner.Start(recCtx{ctx, r})
	r.w.StartEnd()
}

// Tick implements workload.Workload. The previous tick's end marker is
// written lazily here, after that tick's accesses have been recorded.
func (r *Recorder) Tick(ctx workload.Ctx, tick uint64) {
	if r.ticked {
		r.writeTickEnd()
	}
	r.ticked = true
	r.inner.Tick(recCtx{ctx, r}, tick)
}

// writeTickEnd closes the previous tick, attaching per-node vmstat
// deltas (and residency levels, when available) when the machine
// exposes its stats plane.
func (r *Recorder) writeTickEnd() {
	if r.src == nil {
		r.w.TickEnd()
		return
	}
	r.cur = r.src.NodeVmstat(r.cur[:0])
	r.deltas = r.deltas[:0]
	for i, sn := range r.cur {
		var prev vmstat.Snapshot
		if i < len(r.prev) {
			prev = r.prev[i]
		}
		r.deltas = append(r.deltas, sn.Delta(prev))
	}
	r.levels = r.levels[:0]
	if r.lvlSrc != nil {
		r.levels = r.lvlSrc.NodeLevels(r.levels)
	}
	r.w.TickEndDeltas(r.deltas, r.levels)
	r.prev = append(r.prev[:0], r.cur...)
}

// Fault records one applied fault edge into the stream (v6). The sim's
// fault driver calls this as edges fire; position inside the tick is
// informational (replays rebuild faults from the header schedule).
func (r *Recorder) Fault(edge fault.Edge) { r.w.Fault(edge) }

// NextAccess implements workload.Workload, recording each drawn access.
func (r *Recorder) NextAccess(ctx workload.Ctx, tick uint64) (pagetable.VPN, bool) {
	v, ok := r.inner.NextAccess(recCtx{ctx, r}, tick)
	if ok {
		r.w.Access(v)
	}
	return v, ok
}

// DirtyProb implements workload.DirtyModel by delegation, so recording a
// workload does not alter its dirty-at-fault behaviour.
func (r *Recorder) DirtyProb(reg pagetable.Region) float64 {
	if dm, ok := r.inner.(workload.DirtyModel); ok {
		return dm.DirtyProb(reg)
	}
	return 0
}

// Err returns the first write error, if any.
func (r *Recorder) Err() error { return r.w.Err() }

// WorkloadErr implements workload.ErrorReporter by forwarding the
// wrapped workload's error (recording a replay stays fail-loud). The
// recorder's own write errors are surfaced via sim's RecordError, not
// here: a broken trace file does not invalidate the simulation.
func (r *Recorder) WorkloadErr() error {
	if er, ok := r.inner.(workload.ErrorReporter); ok {
		return er.WorkloadErr()
	}
	return nil
}

// Close ends the trace (final tick marker) and closes the writer.
func (r *Recorder) Close() error {
	if r.ticked {
		r.writeTickEnd()
	}
	return r.w.Close()
}

// recCtx forwards every machine call and mirrors the mutating ones into
// the trace. RNG passes through untouched via the embedded Ctx.
type recCtx struct {
	workload.Ctx
	rec *Recorder
}

// Mmap forwards the reservation and records the resulting region along
// with its dirty-at-fault probability.
func (c recCtx) Mmap(pages uint64, t mem.PageType) pagetable.Region {
	reg := c.Ctx.Mmap(pages, t)
	c.rec.w.Mmap(reg, c.rec.DirtyProb(reg))
	return reg
}

// Munmap records then forwards the teardown.
func (c recCtx) Munmap(reg pagetable.Region) {
	c.rec.w.Munmap(reg)
	c.Ctx.Munmap(reg)
}

// Touch records then forwards the access.
func (c recCtx) Touch(v pagetable.VPN) {
	c.rec.w.Touch(v)
	c.Ctx.Touch(v)
}
