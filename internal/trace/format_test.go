package trace

import (
	"bytes"
	"io"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"tppsim/internal/mem"
	"tppsim/internal/metrics"
	"tppsim/internal/pagetable"
	"tppsim/internal/tier"
	"tppsim/internal/xrand"
)

func testHeader() Header {
	return Header{
		Version:     Version,
		Name:        "RoundTrip",
		Model:       metrics.ThroughputModel{CPUServiceNs: 312.5, StallsPerOp: 1.25},
		TotalPages:  96 * 1024,
		WarmupTicks: 120,
		Tracker:     "softdirty:scan=4,gran=1,regions=64,samples=64,halflife=16,range=32",
	}
}

// genEvents builds a pseudo-random but grammar-conforming event stream
// with large forward and backward VPN jumps to stress delta encoding.
func genEvents(n int) []Event {
	rng := xrand.New(42)
	var out []Event
	var nextStart pagetable.VPN
	type reg struct {
		start pagetable.VPN
		pages uint64
		t     mem.PageType
	}
	var live []reg
	mmap := func(pages uint64, t mem.PageType, dirty float64) {
		r := reg{nextStart, pages, t}
		nextStart += pagetable.VPN(pages) + 16
		live = append(live, r)
		out = append(out, Event{Op: OpMmap, Start: r.start, Pages: r.pages, Type: r.t, Dirty: dirty})
	}
	mmap(1<<20, mem.Anon, 0)
	mmap(1<<14, mem.File, 0.96)
	mmap(1, mem.Tmpfs, 0.5)
	out = append(out, Event{Op: OpStartEnd})
	for len(out) < n {
		switch rng.Intn(10) {
		case 0:
			mmap(rng.Uint64n(1<<16)+1, mem.PageType(rng.Intn(mem.NumPageTypes)), rng.Float64())
		case 1:
			if len(live) > 1 {
				i := rng.Intn(len(live))
				r := live[i]
				live = append(live[:i], live[i+1:]...)
				out = append(out, Event{Op: OpMunmap, Start: r.start, Pages: r.pages, Type: r.t})
			}
		case 2:
			out = append(out, Event{Op: OpTickEnd})
		default:
			r := live[rng.Intn(len(live))]
			op := OpAccess
			if rng.Bool(0.3) {
				op = OpTouch
			}
			out = append(out, Event{Op: op, VPN: r.start + pagetable.VPN(rng.Uint64n(r.pages))})
		}
	}
	out = append(out, Event{Op: OpTickEnd})
	return out
}

func writeStream(t *testing.T, h Header, events []Event) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf, h)
	for _, e := range events {
		w.WriteEvent(e)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("writer: %v", err)
	}
	return buf.Bytes()
}

func readAll(t *testing.T, r *Reader) []Event {
	t.Helper()
	var out []Event
	for {
		e, err := r.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("reader: %v", err)
		}
		out = append(out, e)
	}
}

func TestWriterReaderIdentity(t *testing.T) {
	h := testHeader()
	events := genEvents(5000)
	raw := writeStream(t, h, events)

	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if r.Header() != h {
		t.Fatalf("header mismatch:\n got %+v\nwant %+v", r.Header(), h)
	}
	got := readAll(t, r)
	if len(got) != len(events) {
		t.Fatalf("event count %d, want %d", len(got), len(events))
	}
	for i := range events {
		if !eventEq(got[i], events[i]) {
			t.Fatalf("event %d: got %+v want %+v", i, got[i], events[i])
		}
	}
}

func TestDecodeMatchesReader(t *testing.T) {
	h := testHeader()
	events := genEvents(300)
	raw := writeStream(t, h, events)
	tr, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Header != h {
		t.Fatalf("header mismatch: %+v", tr.Header)
	}
	got := readAll(t, tr.Events())
	if len(got) != len(events) {
		t.Fatalf("event count %d, want %d", len(got), len(events))
	}
	// Two independent cursors over the same Trace must not interfere.
	a, b := tr.Events(), tr.Events()
	ea, _ := a.Next()
	eb, _ := b.Next()
	if !eventEq(ea, eb) {
		t.Fatalf("independent cursors diverged: %+v vs %+v", ea, eb)
	}
}

func TestSaveLoadGzip(t *testing.T) {
	h := testHeader()
	events := genEvents(1000)
	tr, err := Decode(writeStream(t, h, events))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"t.trace", "t.trace.gz"} {
		path := filepath.Join(t.TempDir(), name)
		if err := tr.Save(path); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := Load(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Header != h {
			t.Fatalf("%s: header mismatch", name)
		}
		if !bytes.Equal(got.data, tr.data) {
			t.Fatalf("%s: event stream mismatch (%d vs %d bytes)", name, len(got.data), len(tr.data))
		}
	}
}

func TestCreateWritesGzip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.trace.gz")
	w, err := Create(path, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	w.Mmap(pagetable.Region{Start: 0, Pages: 64, Type: mem.Anon}, 0.25)
	w.StartEnd()
	w.Touch(5)
	w.Access(63)
	w.TickEnd()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	tr, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	got := readAll(t, tr.Events())
	want := []Event{
		{Op: OpMmap, Pages: 64, Type: mem.Anon, Dirty: 0.25},
		{Op: OpStartEnd},
		{Op: OpTouch, VPN: 5},
		{Op: OpAccess, VPN: 63},
		{Op: OpTickEnd},
	}
	if len(got) != len(want) {
		t.Fatalf("events %d, want %d", len(got), len(want))
	}
	for i := range want {
		if !eventEq(got[i], want[i]) {
			t.Fatalf("event %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestRejectsCorruptInput(t *testing.T) {
	if _, err := Decode([]byte("NOTATRACE___")); err == nil {
		t.Fatal("bad magic accepted")
	}
	raw := writeStream(t, testHeader(), genEvents(50))
	if _, err := Decode(raw[:len(Magic)+2]); err == nil {
		t.Fatal("truncated header accepted")
	}
	// Truncating mid-event must produce a non-EOF error from Next. End
	// the stream with a multi-byte event so dropping its last byte cuts
	// inside the event, not between events.
	raw = writeStream(t, testHeader(), []Event{
		{Op: OpMmap, Start: 0, Pages: 1 << 20, Type: mem.Anon, Dirty: 0.5},
	})
	tr, err := Decode(raw[:len(raw)-1])
	if err != nil {
		t.Fatal(err)
	}
	r := tr.Events()
	for {
		_, err := r.Next()
		if err == io.EOF {
			t.Fatal("truncated stream read cleanly to EOF")
		}
		if err != nil {
			break
		}
	}
}

func TestHeaderTopologyRoundTrip(t *testing.T) {
	topo, err := tier.PresetExpander(2, 1, 1).Build(16*1024, 0.08)
	if err != nil {
		t.Fatal(err)
	}
	spec := topo.Spec()
	h := testHeader()
	h.Topology = &spec
	raw := writeStream(t, h, genEvents(100))
	tr, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	got := tr.Header.Topology
	if got == nil {
		t.Fatal("topology lost in round trip")
	}
	if got.Name != spec.Name || got.DemoteScaleFactor != spec.DemoteScaleFactor ||
		len(got.Nodes) != len(spec.Nodes) {
		t.Fatalf("topology mismatch: %+v", got)
	}
	for i := range spec.Nodes {
		if got.Nodes[i] != spec.Nodes[i] {
			t.Errorf("node %d: got %+v want %+v", i, got.Nodes[i], spec.Nodes[i])
		}
		for j := range spec.Nodes {
			if got.Distance[i][j] != spec.Distance[i][j] {
				t.Errorf("distance[%d][%d] = %d, want %d", i, j, got.Distance[i][j], spec.Distance[i][j])
			}
		}
	}
	// The recorded spec must rebuild the identical machine.
	rebuilt, err := got.Build(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < topo.NumNodes(); i++ {
		id := mem.NodeID(i)
		if rebuilt.Node(id).Capacity != topo.Node(id).Capacity || rebuilt.Node(id).WM != topo.Node(id).WM {
			t.Errorf("rebuilt node %d differs", i)
		}
	}
}

func TestUnresolvedTopologyRejectedAtWrite(t *testing.T) {
	// Preset specs carry ratio Shares and a nil Distance matrix; the
	// binary block only represents resolved machines, so writing one
	// must fail loudly instead of emitting a block the reader would
	// misparse as event bytes.
	h := testHeader()
	unresolved := tier.PresetCXL(2, 1)
	h.Topology = &unresolved
	var buf bytes.Buffer
	w := NewWriter(&buf, h)
	if w.Err() == nil {
		t.Fatal("unresolved (Share-based) topology accepted")
	}
	topo, err := tier.PresetCXL(2, 1).Build(4096, 0)
	if err != nil {
		t.Fatal(err)
	}
	resolved := topo.Spec()
	resolved.Distance = nil
	h.Topology = &resolved
	if w := NewWriter(&buf, h); w.Err() == nil {
		t.Fatal("nil distance matrix accepted")
	}
}

func TestV1TraceCompat(t *testing.T) {
	// Version-1 traces have no topology block and no end marker; they
	// must still load, stream cleanly to EOF, and re-save as v1.
	h := testHeader()
	h.Version = 1
	events := genEvents(200)
	raw := writeStream(t, h, events)
	tr, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Header.Version != 1 || tr.Header.Topology != nil {
		t.Fatalf("v1 header parsed as %+v", tr.Header)
	}
	got := readAll(t, tr.Events())
	if len(got) != len(events) {
		t.Fatalf("event count %d, want %d", len(got), len(events))
	}
	path := filepath.Join(t.TempDir(), "v1.trace")
	if err := tr.Save(path); err != nil {
		t.Fatal(err)
	}
	tr2, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Header.Version != 1 {
		t.Fatalf("re-saved v1 trace relabeled to version %d", tr2.Header.Version)
	}
}

func TestTruncationAlwaysDetected(t *testing.T) {
	// Version-2 streams end with an explicit OpEnd marker, so truncation
	// is detected at EVERY cut point of the event stream — including cuts
	// that land exactly on an event boundary.
	raw := writeStream(t, testHeader(), genEvents(60))
	full, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	headerLen := len(raw) - full.Size()
	for cut := headerLen; cut < len(raw); cut++ {
		tr, err := Decode(raw[:cut])
		if err != nil {
			continue // header-region cuts may fail outright: also fine
		}
		r := tr.Events()
		for {
			_, err := r.Next()
			if err == io.EOF {
				t.Fatalf("cut at %d/%d read cleanly to EOF", cut, len(raw))
			}
			if err != nil {
				break
			}
		}
	}
}

// TestTruncationErrorNamesOffsetAndTick pins the diagnostic contract
// for malformed streams: the error from Next names the byte offset (in
// the cursor's view of the event stream) and the tick it tripped on, so
// a corrupt artifact can be located without a hex dump.
func TestTruncationErrorNamesOffsetAndTick(t *testing.T) {
	events := []Event{
		{Op: OpMmap, Start: 0, Pages: 4096, Type: mem.Anon, Dirty: 0.5},
		{Op: OpStartEnd},
		{Op: OpAccess, VPN: 7},
		{Op: OpTickEnd},
		{Op: OpAccess, VPN: 9},
		{Op: OpTickEnd},
		// A multi-byte final event, so dropping the stream's tail cuts
		// mid-event after exactly two complete ticks.
		{Op: OpMmap, Start: 1 << 30, Pages: 1 << 20, Type: mem.File, Dirty: 0.25},
	}
	raw := writeStream(t, testHeader(), events)
	tr, err := Decode(raw[:len(raw)-9]) // cut inside the trailing mmap
	if err != nil {
		t.Fatal(err)
	}
	r := tr.Events()
	var decodeErr error
	for {
		_, err := r.Next()
		if err == io.EOF {
			t.Fatal("truncated stream read cleanly to EOF")
		}
		if err != nil {
			decodeErr = err
			break
		}
	}
	msg := decodeErr.Error()
	if !strings.Contains(msg, "byte offset ") {
		t.Errorf("error %q does not name the byte offset", msg)
	}
	if !strings.Contains(msg, "tick 2)") {
		t.Errorf("error %q does not name tick 2 (the last complete tick)", msg)
	}
}

func TestZigzag(t *testing.T) {
	for _, d := range []int64{0, 1, -1, 63, -64, math.MaxInt64, math.MinInt64} {
		if got := unzigzag(zigzag(d)); got != d {
			t.Fatalf("zigzag(%d) round-tripped to %d", d, got)
		}
	}
}

// TestGeneratorsWellFormed walks each generated scenario with a mini
// interpreter, checking the stream grammar and that every touch/access
// lands inside a live region.
func TestGeneratorsWellFormed(t *testing.T) {
	cfg := GenConfig{Pages: 2048, Minutes: 2, AccessesPerTick: 50, Seed: 9}
	for name, tr := range map[string]*Trace{
		"PhaseShift": PhaseShift(cfg),
		"SeqScan":    SequentialScan(cfg),
		"AdvChurn":   AdversarialChurn(cfg),
	} {
		t.Run(name, func(t *testing.T) {
			if tr.Header.Name == "" || tr.Header.TotalPages != cfg.Pages {
				t.Fatalf("bad header %+v", tr.Header)
			}
			type span struct {
				start pagetable.VPN
				pages uint64
			}
			var live []span
			contains := func(v pagetable.VPN) bool {
				for _, s := range live {
					if v >= s.start && v < s.start+pagetable.VPN(s.pages) {
						return true
					}
				}
				return false
			}
			ticks, accesses := 0, 0
			sawStartEnd := false
			var lastStart pagetable.VPN
			r := tr.Events()
			for {
				e, err := r.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatal(err)
				}
				switch e.Op {
				case OpMmap:
					if len(live) > 0 && e.Start <= lastStart {
						t.Fatalf("mmap starts not strictly increasing: %d after %d", e.Start, lastStart)
					}
					lastStart = e.Start
					live = append(live, span{e.Start, e.Pages})
				case OpMunmap:
					found := false
					for i, s := range live {
						if s.start == e.Start && s.pages == e.Pages {
							live = append(live[:i], live[i+1:]...)
							found = true
							break
						}
					}
					if !found {
						t.Fatalf("munmap of unknown region %d", e.Start)
					}
				case OpTouch, OpAccess:
					if !contains(e.VPN) {
						t.Fatalf("%s %d outside live regions", e.Op, e.VPN)
					}
					if e.Op == OpAccess {
						accesses++
					}
				case OpTickEnd:
					ticks++
				case OpStartEnd:
					sawStartEnd = true
				}
			}
			if !sawStartEnd {
				t.Fatal("no StartEnd marker")
			}
			if want := cfg.Minutes * 60; ticks != want {
				t.Fatalf("ticks = %d, want %d", ticks, want)
			}
			if want := cfg.Minutes * 60 * cfg.AccessesPerTick; accesses != want {
				t.Fatalf("accesses = %d, want %d", accesses, want)
			}
		})
	}
}

// eventEq compares two events field by field (Event holds a slice, so
// == no longer applies).
func eventEq(a, b Event) bool {
	if a.Op != b.Op || a.Start != b.Start || a.Pages != b.Pages ||
		a.Type != b.Type || a.Dirty != b.Dirty || a.VPN != b.VPN ||
		a.DeltaNodes != b.DeltaNodes || len(a.Deltas) != len(b.Deltas) {
		return false
	}
	for i := range a.Deltas {
		if a.Deltas[i] != b.Deltas[i] {
			return false
		}
	}
	return true
}
