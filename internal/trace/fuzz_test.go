package trace

import (
	"bytes"
	"testing"

	"tppsim/internal/fault"
	"tppsim/internal/mem"
	"tppsim/internal/pagetable"
	"tppsim/internal/series"
	"tppsim/internal/tier"
	"tppsim/internal/vmstat"
)

// fuzzSeedTrace renders one small but feature-complete trace at the
// given format version: regions of every page type, delta-encoded
// accesses with large jumps, and — where the version supports them —
// a topology block, per-node counter deltas with residency levels, a
// fault schedule, and an applied fault edge.
func fuzzSeedTrace(f *testing.F, version int) []byte {
	f.Helper()
	h := Header{
		Version:     version,
		Name:        "fuzz-seed",
		TotalPages:  4096,
		WarmupTicks: 7,
	}
	h.Model.CPUServiceNs, h.Model.StallsPerOp = 312.5, 1.25
	if version >= 2 {
		topo, err := tier.PresetExpander(2, 1, 1).Build(4096, 0.1)
		if err != nil {
			f.Fatal(err)
		}
		spec := topo.Spec()
		h.Topology = &spec
	}
	if version >= 6 {
		h.Faults = &fault.Schedule{Seed: 3, Events: []fault.Event{
			{Kind: fault.NodeOffline, Node: 2, At: 10, Until: 20},
			{Kind: fault.MigFailBegin, Node: -1, At: 5, Prob: 0.5, MaxRetries: 2},
		}}
	}
	if version >= 7 {
		h.Tracker = "idlepage:scan=8,gran=2,regions=128,samples=128,halflife=32,range=64"
	}
	var buf bytes.Buffer
	w := NewWriter(&buf, h)
	w.Mmap(pagetable.Region{Start: 0, Pages: 1 << 16, Type: mem.Anon}, 0.5)
	w.Mmap(pagetable.Region{Start: 1 << 20, Pages: 64, Type: mem.File}, 0.96)
	w.StartEnd()
	w.Touch(3)
	w.Access(1<<20 + 5)
	w.Access(12) // large backward delta
	if version >= 3 {
		deltas := make([]vmstat.Snapshot, 3)
		deltas[0][0], deltas[2][1] = 7, 9
		var levels []series.Levels
		if version >= 4 {
			levels = []series.Levels{{Resident: 5, Anon: 3, File: 2}, {}, {Resident: 1}}
		}
		w.TickEndDeltas(deltas, levels)
	} else {
		w.TickEnd()
	}
	if version >= 6 {
		w.Fault(fault.Edge{Kind: fault.NodeOffline, Node: 2, Tick: 10})
	}
	w.Munmap(pagetable.Region{Start: 1 << 20, Pages: 64, Type: mem.File})
	w.TickEnd()
	if err := w.Close(); err != nil {
		f.Fatalf("v%d seed: %v", version, err)
	}
	return buf.Bytes()
}

// FuzzTraceReader throws arbitrary bytes at the full decode path —
// header (magic, topology block, fault schedule) and event stream —
// and requires it to either produce events or return an error. It must
// never panic, loop forever, or allocate absurdly; corrupt and
// truncated input is an error, not a crash.
func FuzzTraceReader(f *testing.F) {
	for v := 1; v <= Version; v++ {
		f.Add(fuzzSeedTrace(f, v))
	}
	// Degenerate shapes the mutator should start from too.
	f.Add([]byte{})
	f.Add([]byte(Magic))
	f.Add([]byte("NOTATRACE___"))
	valid := fuzzSeedTrace(f, Version)
	f.Add(valid[:len(valid)/2])

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return // malformed header: rejected cleanly
		}
		// Every event consumes at least its opcode byte, so the stream
		// can never yield more events than it has bytes; anything past
		// that bound means the reader stopped consuming input.
		for i := 0; i <= len(data); i++ {
			if _, err := r.Next(); err != nil {
				return // io.EOF or a decode error: both fine
			}
		}
		t.Fatalf("reader yielded more events than the %d input bytes", len(data))
	})
}
