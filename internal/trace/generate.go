package trace

import (
	"bytes"
	"fmt"
	"sync"

	"tppsim/internal/mem"
	"tppsim/internal/metrics"
	"tppsim/internal/pagetable"
	"tppsim/internal/workload"
	"tppsim/internal/xrand"
)

// GenConfig parameterizes the synthetic trace generators. The zero value
// takes sensible defaults matching the simulator's (DefaultTotalPages
// working set, 2000 accesses per tick).
type GenConfig struct {
	// Pages is the total working-set size in 4 KB pages.
	Pages uint64
	// Minutes is the generated trace length in simulated minutes.
	Minutes int
	// AccessesPerTick is the sampled access rate; match the machine's
	// AccessesPerTick for full-rate replay.
	AccessesPerTick int
	// Seed drives the generator's private random stream.
	Seed uint64
}

func (c GenConfig) withDefaults() GenConfig {
	if c.Pages == 0 {
		c.Pages = workload.DefaultTotalPages
	}
	if c.Minutes == 0 {
		c.Minutes = 12
	}
	if c.AccessesPerTick == 0 {
		c.AccessesPerTick = 2000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// gen is the shared generator harness: a Writer over an in-memory
// buffer, a private RNG, and a recorded-address-space allocator that
// hands out strictly increasing region starts (the invariant the
// Replayer's translation table relies on).
type gen struct {
	w    *Writer
	buf  *bytes.Buffer
	rng  *xrand.RNG
	next pagetable.VPN
}

func newGen(h Header, seed uint64) *gen {
	buf := &bytes.Buffer{}
	return &gen{w: NewWriter(buf, h), buf: buf, rng: xrand.New(seed)}
}

func (g *gen) mmap(pages uint64, t mem.PageType, dirty float64) pagetable.Region {
	// Percentage-of-total sizing rounds tiny working sets down to zero;
	// every region is at least one page.
	if pages == 0 {
		pages = 1
	}
	r := pagetable.Region{Start: g.next, Pages: pages, Type: t}
	g.next += pagetable.VPN(pages) + 16
	g.w.Mmap(r, dirty)
	return r
}

// prefault sequentially touches every page of r (start-section warm-up).
func (g *gen) prefault(r pagetable.Region) {
	for v := r.Start; v < r.End(); v++ {
		g.w.Touch(v)
	}
}

func (g *gen) finish() *Trace {
	g.w.Close()
	tr, err := Decode(g.buf.Bytes())
	if err != nil {
		// Generators only emit well-formed streams; a decode failure here
		// is a programming error.
		panic("trace: generator produced malformed stream: " + err.Error())
	}
	return tr
}

// atLeast1 clamps percentage-of-total region sizing, which rounds tiny
// working sets down to zero pages.
func atLeast1(n uint64) uint64 {
	if n == 0 {
		return 1
	}
	return n
}

// headerPages sizes the machine for the clamped footprint: with tiny
// working sets the per-region minimums can exceed the configured total.
func headerPages(cfgPages, footprint uint64) uint64 {
	if footprint > cfgPages {
		return footprint
	}
	return cfgPages
}

// genScatterPrime decouples popularity rank from page order inside
// generated regions, exactly as workload.Profile does: hot pages must
// not cluster at a region's start.
const genScatterPrime = 1000000007

// hotOffset draws a page offset with two-tier popularity: a hotFrac
// share of the region absorbs hotWeight of the draws, scattered across
// the region by a fixed permutation.
func hotOffset(rng *xrand.RNG, pages uint64, hotFrac, hotWeight float64) uint64 {
	hot := uint64(hotFrac * float64(pages))
	if hot < 1 {
		hot = 1
	}
	var idx uint64
	if rng.Bool(hotWeight) || hot >= pages {
		idx = rng.Uint64n(hot)
	} else {
		idx = hot + rng.Uint64n(pages-hot)
	}
	return (idx * genScatterPrime) % pages
}

// PhaseShift generates a phase-change working set that the Profile model
// cannot express: two disjoint anon regions take turns being the hot
// set, flipping every five minutes. Placement policies that converge on
// one hot set are forced to re-converge from scratch each phase; the
// local-traffic series shows a sawtooth whose recovery slope is the
// policy's adaptation speed.
func PhaseShift(cfg GenConfig) *Trace {
	cfg = cfg.withDefaults()
	phasePages := atLeast1(cfg.Pages * 46 / 100)
	filePages := atLeast1(cfg.Pages * 8 / 100)
	g := newGen(Header{
		Version: Version, Name: "PhaseShift",
		Model:      metrics.ThroughputModel{CPUServiceNs: 500, StallsPerOp: 1},
		TotalPages: headerPages(cfg.Pages, 2*phasePages+filePages),
	}, cfg.Seed)

	phaseA := g.mmap(phasePages, mem.Anon, 0)
	phaseB := g.mmap(phasePages, mem.Anon, 0)
	file := g.mmap(filePages, mem.File, 0.3)
	g.prefault(phaseA)
	g.prefault(phaseB)
	g.w.StartEnd()

	const phaseTicks = 5 * workload.TicksPerMinute
	ticks := cfg.Minutes * workload.TicksPerMinute
	for t := 0; t < ticks; t++ {
		active, idle := phaseA, phaseB
		if (t/phaseTicks)%2 == 1 {
			active, idle = phaseB, phaseA
		}
		for i := 0; i < cfg.AccessesPerTick; i++ {
			switch {
			case g.rng.Bool(0.88):
				g.w.Access(active.Start + pagetable.VPN(hotOffset(g.rng, active.Pages, 0.25, 0.92)))
			case g.rng.Bool(0.5):
				g.w.Access(idle.Start + pagetable.VPN(g.rng.Uint64n(idle.Pages)))
			default:
				g.w.Access(file.Start + pagetable.VPN(g.rng.Uint64n(file.Pages)))
			}
		}
		g.w.TickEnd()
	}
	return g.finish()
}

// SequentialScan generates an LRU-pollution scenario: a stable hot anon
// core carries most of the traffic, while every two minutes a sequential
// scan sweeps the entire cold file region, faulting and touching each
// page once. Recency-based placement treats the swept pages as hot and
// churns the local node; frequency-aware placement should hold the core.
func SequentialScan(cfg GenConfig) *Trace {
	cfg = cfg.withDefaults()
	corePages := atLeast1(cfg.Pages * 30 / 100)
	coldPages := atLeast1(cfg.Pages * 70 / 100)
	g := newGen(Header{
		Version: Version, Name: "SeqScan",
		Model:      metrics.ThroughputModel{CPUServiceNs: 450, StallsPerOp: 1},
		TotalPages: headerPages(cfg.Pages, corePages+coldPages),
	}, cfg.Seed)

	core := g.mmap(corePages, mem.Anon, 0)
	cold := g.mmap(coldPages, mem.File, 0.2)
	g.prefault(core)
	g.w.StartEnd()

	const (
		scanPeriod = 2 * workload.TicksPerMinute
		scanLen    = 30 // ticks per sweep
	)
	perScanTick := cold.Pages/scanLen + 1
	ticks := cfg.Minutes * workload.TicksPerMinute
	var cursor uint64
	for t := 0; t < ticks; t++ {
		if phase := t % scanPeriod; phase < scanLen {
			if phase == 0 {
				cursor = 0
			}
			end := cursor + perScanTick
			if end > cold.Pages {
				end = cold.Pages
			}
			for v := cursor; v < end; v++ {
				g.w.Touch(cold.Start + pagetable.VPN(v))
			}
			cursor = end
		}
		for i := 0; i < cfg.AccessesPerTick; i++ {
			if g.rng.Bool(0.85) {
				g.w.Access(core.Start + pagetable.VPN(hotOffset(g.rng, core.Pages, 0.35, 0.93)))
			} else {
				g.w.Access(cold.Start + pagetable.VPN(g.rng.Uint64n(cold.Pages)))
			}
		}
		g.w.TickEnd()
	}
	return g.finish()
}

// AdversarialChurn generates a promotion-hostile allocation pattern: a
// ring of short-lived segments where accesses concentrate on the
// *oldest* segments — pages become hottest just before they are
// unmapped. Every promotion a policy performs on ring pages is wasted
// bandwidth; the scenario rewards policies that gate promotion on
// sustained reuse rather than instantaneous heat.
func AdversarialChurn(cfg GenConfig) *Trace {
	cfg = cfg.withDefaults()
	const (
		segments   = 12
		churnTicks = 6
	)
	basePages := atLeast1(cfg.Pages * 40 / 100)
	segPages := atLeast1(cfg.Pages * 60 / 100 / segments)
	g := newGen(Header{
		Version: Version, Name: "AdvChurn",
		Model:      metrics.ThroughputModel{CPUServiceNs: 600, StallsPerOp: 1},
		TotalPages: headerPages(cfg.Pages, basePages+segments*segPages),
	}, cfg.Seed)

	base := g.mmap(basePages, mem.Anon, 0)
	ring := make([]pagetable.Region, 0, segments)
	for i := 0; i < segments; i++ {
		seg := g.mmap(segPages, mem.Anon, 0)
		g.prefault(seg)
		ring = append(ring, seg)
	}
	g.prefault(base)
	g.w.StartEnd()

	ticks := cfg.Minutes * workload.TicksPerMinute
	for t := 0; t < ticks; t++ {
		if t > 0 && t%churnTicks == 0 {
			g.w.Munmap(ring[0])
			copy(ring, ring[1:])
			fresh := g.mmap(segPages, mem.Anon, 0)
			ring[segments-1] = fresh
			// The allocation burst: fresh request memory is written
			// immediately.
			for v := fresh.Start; v < fresh.End(); v++ {
				g.w.Touch(v)
			}
		}
		for i := 0; i < cfg.AccessesPerTick; i++ {
			switch {
			case g.rng.Bool(0.5):
				// Doomed heat: the two oldest segments, unmapped soonest.
				seg := ring[g.rng.Intn(2)]
				g.w.Access(seg.Start + pagetable.VPN(g.rng.Uint64n(seg.Pages)))
			case g.rng.Bool(0.7):
				g.w.Access(base.Start + pagetable.VPN(hotOffset(g.rng, base.Pages, 0.3, 0.9)))
			default:
				seg := ring[2+g.rng.Intn(segments-2)]
				g.w.Access(seg.Start + pagetable.VPN(g.rng.Uint64n(seg.Pages)))
			}
		}
		g.w.TickEnd()
	}
	return g.finish()
}

// genCache shares generated traces across catalog constructor calls:
// generation is deterministic, traces are immutable once built, and
// Replayers are independent cursors, so one build per (scenario, pages)
// serves every policy run that replays it.
var genCache = struct {
	sync.Mutex
	m map[string]*Trace
}{m: map[string]*Trace{}}

func cachedTrace(name string, pages uint64, build func() *Trace) *Trace {
	key := fmt.Sprintf("%s/%d", name, pages)
	genCache.Lock()
	defer genCache.Unlock()
	tr, ok := genCache.m[key]
	if !ok {
		tr = build()
		genCache.m[key] = tr
	}
	return tr
}

// Trace-backed catalog entries: the generated scenarios appear alongside
// the paper's Profile workloads and loop seamlessly for runs longer than
// the generated stream.
func init() {
	workload.Register("PhaseShift", func(total uint64) workload.Workload {
		return cachedTrace("PhaseShift", total, func() *Trace {
			return PhaseShift(GenConfig{Pages: total})
		}).Replayer(ReplayOptions{Loop: true})
	})
	workload.Register("SeqScan", func(total uint64) workload.Workload {
		return cachedTrace("SeqScan", total, func() *Trace {
			return SequentialScan(GenConfig{Pages: total})
		}).Replayer(ReplayOptions{Loop: true})
	})
	workload.Register("AdvChurn", func(total uint64) workload.Workload {
		return cachedTrace("AdvChurn", total, func() *Trace {
			return AdversarialChurn(GenConfig{Pages: total})
		}).Replayer(ReplayOptions{Loop: true})
	})
}
