package trace_test

import (
	"bytes"
	"io"
	"path/filepath"
	"strconv"
	"testing"

	"tppsim/internal/core"
	"tppsim/internal/mem"
	"tppsim/internal/sim"
	"tppsim/internal/trace"
	"tppsim/internal/vmstat"
	"tppsim/internal/workload"
)

// recordRun records one fixed run and returns the recording machine and
// the loaded trace.
func recordRun(t *testing.T, dir string) (*sim.Machine, *trace.Trace) {
	t.Helper()
	path := filepath.Join(dir, "v3.trace")
	m, err := sim.New(sim.Config{
		Seed:     11,
		Policy:   core.TPP(),
		Workload: workload.Catalog["Cache2"](4 * 1024),
		Ratio:    [2]uint64{2, 1},
		Minutes:  5,
		RecordTo: path,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res := m.Run(); res.Failed {
		t.Fatal(res.FailReason)
	}
	if err := m.RecordError(); err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	return m, tr
}

// TestTickEndDeltasSumToFinalCounters pins the v3 payload's meaning:
// accumulating every TickEnd's per-node deltas over the whole stream
// reproduces the recording machine's final per-node (and hence global)
// vmstat counters exactly.
func TestTickEndDeltasSumToFinalCounters(t *testing.T) {
	m, tr := recordRun(t, t.TempDir())
	if tr.Header.Version != trace.Version {
		t.Fatalf("recorded version %d, want %d", tr.Header.Version, trace.Version)
	}
	sums := make([]vmstat.Snapshot, m.Stat().NumNodes())
	r := tr.Events()
	ticks := 0
	for {
		e, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if e.Op != trace.OpTickEnd {
			continue
		}
		ticks++
		if e.DeltaNodes != len(sums) {
			t.Fatalf("tick %d records %d nodes, machine has %d", ticks, e.DeltaNodes, len(sums))
		}
		for _, d := range e.Deltas {
			sums[d.Node][d.Counter] += d.Delta
		}
	}
	if ticks == 0 {
		t.Fatal("no ticks in trace")
	}
	for n := range sums {
		want := m.Stat().NodeSnapshot(mem.NodeID(n))
		if sums[n] != want {
			t.Errorf("node %d: delta sum diverges from final counters:\n got:\n%s want:\n%s",
				n, sums[n].String(), want.String())
		}
	}
}

// TestV2TraceStillReplays pins backward compatibility: a version-2
// stream (bare TickEnd markers, no per-node deltas) must load and
// replay to the same global scalars as the v3 recording it was derived
// from — the deltas are observability payload, not replay input.
func TestV2TraceStillReplays(t *testing.T) {
	dir := t.TempDir()
	m, tr := recordRun(t, dir)

	// Re-encode the stream as version 2: same header fields and events,
	// deltas stripped by the v2 writer.
	var buf bytes.Buffer
	h2 := tr.Header
	h2.Version = 2
	w := trace.NewWriter(&buf, h2)
	r := tr.Events()
	for {
		e, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		w.WriteEvent(e)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	tr2, err := trace.Decode(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Header.Version != 2 {
		t.Fatalf("re-encoded version = %d", tr2.Header.Version)
	}
	if tr2.Size() >= tr.Size() {
		t.Errorf("v2 stream (%d B) not smaller than v3 (%d B) — deltas not stripped?", tr2.Size(), tr.Size())
	}

	run := func(tr *trace.Trace) (string, vmstat.Snapshot) {
		rm, err := sim.New(sim.Config{
			Seed:     11,
			Policy:   core.TPP(),
			Workload: tr.Replayer(trace.ReplayOptions{}),
			Ratio:    [2]uint64{2, 1},
			Minutes:  5,
		})
		if err != nil {
			t.Fatal(err)
		}
		res := rm.Run()
		if res.Failed {
			t.Fatal(res.FailReason)
		}
		return strconv.FormatFloat(res.NormalizedThroughput, 'g', -1, 64) + "/" +
			strconv.FormatFloat(res.AvgLatencyNs, 'g', -1, 64), rm.Stat().Snapshot()
	}
	s3, v3 := run(tr)
	s2, v2 := run(tr2)
	if s2 != s3 {
		t.Errorf("v2 replay scalars %s != v3 replay scalars %s", s2, s3)
	}
	if v2 != v3 {
		t.Errorf("v2 replay vmstat diverges from v3 replay:\n v2:\n%s v3:\n%s", v2.String(), v3.String())
	}
	// And both reproduce the recording machine's global counters.
	if got := m.Stat().Snapshot(); v2 != got {
		t.Errorf("v2 replay vmstat diverges from the recording:\n got:\n%s want:\n%s", v2.String(), got.String())
	}
}
