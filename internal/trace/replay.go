package trace

import (
	"fmt"
	"io"
	"sort"

	"tppsim/internal/metrics"
	"tppsim/internal/pagetable"
	"tppsim/internal/workload"
)

// ReplayOptions tune how a trace is re-driven.
type ReplayOptions struct {
	// Loop restarts the trace when it runs out, so a short trace can
	// drive an arbitrarily long run. If the set of live regions at the
	// end of the trace matches the set right after Start (no net churn),
	// the wrap is seamless: the start section is skipped and accesses
	// continue into the existing regions. Otherwise the workload
	// restarts: all live regions are unmapped and the start section is
	// replayed.
	Loop bool
	// MaxTicks truncates the trace to its first MaxTicks ticks (0 means
	// the whole trace). Combined with Loop, the truncated prefix loops.
	MaxTicks uint64
}

// Replayer deterministically re-drives a machine from a trace. It
// implements workload.Workload, so a trace can run under any policy,
// ratio, or latency configuration — the workload side of the run is
// replayed exactly while the kernel side reacts to it afresh.
//
// Recorded VPNs are translated through a live-region table (recorded
// region → region mmapped during replay), so replay does not depend on
// the replaying address space producing identical addresses.
type Replayer struct {
	tr   *Trace
	opts ReplayOptions

	r         *Reader
	pending   *Event
	live      []liveRegion
	baseline  []regionKey
	ticksSeen uint64
	exhausted bool
	needDrain bool
	err       error
}

// liveRegion joins a recorded region to the region backing it in the
// replaying machine. The slice is kept sorted by both recStart and
// actual.Start (both are monotonically assigned).
type liveRegion struct {
	recStart pagetable.VPN
	pages    uint64
	actual   pagetable.Region
	dirty    float64
}

type regionKey struct {
	recStart pagetable.VPN
	pages    uint64
}

var _ workload.Workload = (*Replayer)(nil)
var _ workload.DirtyModel = (*Replayer)(nil)
var _ workload.ErrorReporter = (*Replayer)(nil)
var _ workload.BatchAccessor = (*Replayer)(nil)

// Replayer returns a fresh replaying workload over the trace. Each call
// is independent; build one per machine when comparing policies.
func (t *Trace) Replayer(opts ReplayOptions) *Replayer {
	return &Replayer{tr: t, opts: opts}
}

// Name implements workload.Workload.
func (r *Replayer) Name() string { return r.tr.Header.Name }

// Model implements workload.Workload.
func (r *Replayer) Model() metrics.ThroughputModel { return r.tr.Header.Model }

// TotalPages implements workload.Workload.
func (r *Replayer) TotalPages() uint64 { return r.tr.Header.TotalPages }

// WarmupTicks implements workload.Workload.
func (r *Replayer) WarmupTicks() uint64 { return r.tr.Header.WarmupTicks }

// Err reports the first malformed-trace error hit during replay; the
// replayer stops driving accesses once one occurs.
func (r *Replayer) Err() error { return r.err }

// WorkloadErr implements workload.ErrorReporter, so the simulator marks
// a run driven by a corrupt trace as failed instead of letting the
// machine idle to a bogus result.
func (r *Replayer) WorkloadErr() error { return r.err }

// Start implements workload.Workload: replay the setup section.
func (r *Replayer) Start(ctx workload.Ctx) {
	r.live = r.live[:0]
	r.pending = nil
	r.err = nil
	r.exhausted = false
	r.needDrain = false
	r.ticksSeen = 0
	r.r = r.tr.Events()
	r.replayStart(ctx, true)
}

// replayStart consumes the start section. When apply is false the events
// are skipped without touching the machine (seamless loop wrap).
func (r *Replayer) replayStart(ctx workload.Ctx, apply bool) {
	for {
		e, ok := r.peek()
		if !ok {
			r.exhausted = true
			return
		}
		r.consume()
		if e.Op == OpStartEnd {
			break
		}
		if apply {
			r.apply(ctx, e)
			if r.err != nil {
				return
			}
		}
	}
	if apply {
		r.baseline = r.baseline[:0]
		for _, lr := range r.live {
			r.baseline = append(r.baseline, regionKey{lr.recStart, lr.pages})
		}
	}
}

// Tick implements workload.Workload: finish the previous recorded tick,
// then replay this tick's housekeeping events (mmap/munmap/touch) up to
// its access stream.
func (r *Replayer) Tick(ctx workload.Ctx, tick uint64) {
	if r.exhausted && !r.wrap(ctx) {
		return
	}
	if r.needDrain {
		r.needDrain = false
		r.drain(ctx)
		if r.exhausted && !r.wrap(ctx) {
			return
		}
	}
	if r.opts.MaxTicks > 0 && r.ticksSeen >= r.opts.MaxTicks {
		r.exhausted = true
		if !r.wrap(ctx) {
			return
		}
	}
	for {
		e, ok := r.peek()
		if !ok {
			r.exhausted = true
			break
		}
		if e.Op == OpAccess || e.Op == OpTickEnd {
			break
		}
		r.consume()
		if e.Op == OpStartEnd {
			continue
		}
		r.apply(ctx, e)
		if r.err != nil {
			return
		}
	}
	r.needDrain = true
}

// NextAccess implements workload.Workload: hand out the tick's next
// recorded access, translated into the replaying address space.
func (r *Replayer) NextAccess(ctx workload.Ctx, tick uint64) (pagetable.VPN, bool) {
	if r.exhausted {
		return 0, false
	}
	e, ok := r.peek()
	if !ok || e.Op != OpAccess {
		if !ok {
			r.exhausted = true
		}
		return 0, false
	}
	r.consume()
	v, found := r.translate(e.VPN)
	if !found {
		r.fail(fmt.Errorf("trace: access %d outside every live region", e.VPN))
		return 0, false
	}
	return v, true
}

// NextAccessBatch implements workload.BatchAccessor: decode the tick's
// recorded accesses straight off the event stream into buf, stopping at
// the first non-access event (left pending for Tick/drain) or a full
// buffer. Draw-for-draw identical to calling NextAccess len(buf) times
// — replay draws depend only on the trace and the live-region table,
// never on machine state mutated mid-tick — but skips the per-event
// peek/consume bookkeeping (and its pending-event allocation), so the
// simulator's fused batch loop can drive replays at profile speed.
func (r *Replayer) NextAccessBatch(ctx workload.Ctx, tick uint64, buf []pagetable.VPN) int {
	if r.exhausted {
		return 0
	}
	n := 0
	if r.pending != nil {
		if r.pending.Op != OpAccess {
			return 0
		}
		v, found := r.translate(r.pending.VPN)
		if !found {
			r.fail(fmt.Errorf("trace: access %d outside every live region", r.pending.VPN))
			return 0
		}
		r.pending = nil
		buf[n] = v
		n++
	}
	for n < len(buf) {
		e, err := r.r.Next()
		if err != nil {
			if err != io.EOF {
				r.fail(err)
			} else {
				r.exhausted = true
			}
			return n
		}
		if e.Op != OpAccess {
			r.pending = &e
			return n
		}
		v, found := r.translate(e.VPN)
		if !found {
			r.fail(fmt.Errorf("trace: access %d outside every live region", e.VPN))
			return n
		}
		buf[n] = v
		n++
	}
	return n
}

// DirtyProb implements workload.DirtyModel from the per-region
// probabilities recorded at mmap time.
func (r *Replayer) DirtyProb(reg pagetable.Region) float64 {
	i := sort.Search(len(r.live), func(i int) bool {
		return r.live[i].actual.Start >= reg.Start
	})
	if i < len(r.live) && r.live[i].actual.Start == reg.Start {
		return r.live[i].dirty
	}
	return 0
}

// drain consumes the remainder of the current recorded tick, through its
// TickEnd. Leftover accesses (the machine sampled fewer than were
// recorded) are dropped.
func (r *Replayer) drain(ctx workload.Ctx) {
	for {
		e, ok := r.peek()
		if !ok {
			r.exhausted = true
			return
		}
		r.consume()
		switch e.Op {
		case OpTickEnd:
			r.ticksSeen++
			return
		case OpAccess, OpStartEnd:
			// dropped
		default:
			r.apply(ctx, e)
			if r.err != nil {
				return
			}
		}
	}
}

// wrap handles running out of trace: restart when looping. It reports
// whether replay can continue.
func (r *Replayer) wrap(ctx workload.Ctx) bool {
	if !r.opts.Loop || r.err != nil {
		return false
	}
	soft := r.liveMatchesBaseline()
	if !soft {
		for i := len(r.live) - 1; i >= 0; i-- {
			ctx.Munmap(r.live[i].actual)
		}
		r.live = r.live[:0]
	}
	r.pending = nil
	r.exhausted = false
	r.needDrain = false
	r.ticksSeen = 0
	r.r = r.tr.Events()
	r.replayStart(ctx, !soft)
	return !r.exhausted && r.err == nil
}

// liveMatchesBaseline reports whether the live regions are exactly the
// post-Start set, making a seamless loop wrap possible.
func (r *Replayer) liveMatchesBaseline() bool {
	if len(r.live) != len(r.baseline) {
		return false
	}
	for i, lr := range r.live {
		if (regionKey{lr.recStart, lr.pages}) != r.baseline[i] {
			return false
		}
	}
	return true
}

// peek returns the next event without consuming it. ok is false at end
// of stream or on a decode error (recorded via fail).
func (r *Replayer) peek() (Event, bool) {
	if r.pending == nil {
		e, err := r.r.Next()
		if err != nil {
			// Clean end-of-stream is a bare io.EOF; wrapped EOFs from
			// Reader.Next mean a truncated event and are real errors.
			if err != io.EOF {
				r.fail(err)
			}
			return Event{}, false
		}
		r.pending = &e
	}
	return *r.pending, true
}

func (r *Replayer) consume() { r.pending = nil }

func (r *Replayer) fail(err error) {
	if r.err == nil {
		r.err = err
	}
	r.exhausted = true
}

// apply executes one housekeeping event against the machine.
func (r *Replayer) apply(ctx workload.Ctx, e Event) {
	switch e.Op {
	case OpMmap:
		if e.Pages == 0 {
			r.fail(fmt.Errorf("trace: mmap of zero pages at %d", e.Start))
			return
		}
		actual := ctx.Mmap(e.Pages, e.Type)
		lr := liveRegion{recStart: e.Start, pages: e.Pages, actual: actual, dirty: e.Dirty}
		i := sort.Search(len(r.live), func(i int) bool { return r.live[i].recStart >= e.Start })
		if i < len(r.live) && r.live[i].recStart == e.Start {
			r.fail(fmt.Errorf("trace: duplicate mmap at recorded start %d", e.Start))
			return
		}
		r.live = append(r.live, liveRegion{})
		copy(r.live[i+1:], r.live[i:])
		r.live[i] = lr
	case OpMunmap:
		i := sort.Search(len(r.live), func(i int) bool { return r.live[i].recStart >= e.Start })
		if i >= len(r.live) || r.live[i].recStart != e.Start || r.live[i].pages != e.Pages {
			r.fail(fmt.Errorf("trace: munmap of unknown region %d+%d", e.Start, e.Pages))
			return
		}
		ctx.Munmap(r.live[i].actual)
		r.live = append(r.live[:i], r.live[i+1:]...)
	case OpTouch:
		v, found := r.translate(e.VPN)
		if !found {
			r.fail(fmt.Errorf("trace: touch %d outside every live region", e.VPN))
			return
		}
		ctx.Touch(v)
	case OpFault:
		// Informational (v6): the replaying machine rebuilds faults from
		// the header schedule; stream edges just document when each fired.
	default:
		r.fail(fmt.Errorf("trace: unexpected %s in housekeeping position", e.Op))
	}
}

// translate maps a recorded VPN into the replaying address space.
func (r *Replayer) translate(rec pagetable.VPN) (pagetable.VPN, bool) {
	i := sort.Search(len(r.live), func(i int) bool { return r.live[i].recStart > rec })
	if i == 0 {
		return 0, false
	}
	lr := &r.live[i-1]
	off := uint64(rec - lr.recStart)
	if off >= lr.pages {
		return 0, false
	}
	return lr.actual.Start + pagetable.VPN(off), true
}
