package trace

import (
	"fmt"
	"io"

	"tppsim/internal/mem"
	"tppsim/internal/series"
	"tppsim/internal/vmstat"
)

// StatsOptions tune the series reconstruction of Trace.Stats.
type StatsOptions struct {
	// SampleEvery is the initial sampling cadence in ticks (default 1).
	// To reproduce a live-sampled series bit-for-bit, use the recording
	// run's Config.SampleEveryTicks.
	SampleEvery uint64
	// SampleBudget caps the retained samples (default
	// series.DefaultBudget); a full series halves itself and doubles
	// its cadence, exactly as the live sampler does.
	SampleBudget int
}

// Stats folds the trace's per-node TickEnd payload into a series.Series
// without constructing a machine: counter deltas accumulate into a
// node-indexed vmstat plane and sample into the series' delta columns,
// residency levels (v4+ traces) into its level columns. The decode is
// pure — no allocator, no LRUs, no policy — so analyzing a recorded run
// costs one pass over the encoded stream instead of a re-simulation.
//
// Because the decoder drives the same series.Sampler the live machine
// does, decoding a trace with the recording run's sampling options
// yields a Series bit-identical to the live-sampled
// metrics.Run.NodeSeries of that run (pinned by test). Traces recorded
// before format v4 decode with HasLevels() == false: flows only.
//
// Stats fails on traces that carry no per-node tick data (format v1/v2
// streams and synthetic generator traces).
func (t *Trace) Stats(o StatsOptions) (*series.Series, error) {
	if t.Header.Version < 3 {
		return nil, fmt.Errorf("trace: format v%d carries no per-node tick data (need v3+)", t.Header.Version)
	}
	r := t.Events()
	var (
		smp    *series.Sampler
		stat   *vmstat.NodeStats
		levels []series.Levels
		tick   uint64
	)
	withLevels := false
	for {
		e, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if e.Op != OpTickEnd {
			continue
		}
		if smp == nil {
			if e.DeltaNodes == 0 {
				return nil, fmt.Errorf("trace: stream carries no per-node tick data (recorded without a stats plane)")
			}
			stat = vmstat.NewNodeStats(e.DeltaNodes)
			smp = series.NewSampler(e.DeltaNodes, series.Config{Every: o.SampleEvery, Budget: o.SampleBudget})
			withLevels = len(e.Levels) == e.DeltaNodes
			if withLevels {
				levels = make([]series.Levels, e.DeltaNodes)
			}
		}
		if e.DeltaNodes != stat.NumNodes() {
			return nil, fmt.Errorf("trace: tick %d records %d nodes, stream started with %d", tick, e.DeltaNodes, stat.NumNodes())
		}
		for _, d := range e.Deltas {
			stat.Add(mem.NodeID(d.Node), d.Counter, d.Delta)
		}
		if withLevels {
			if len(e.Levels) != stat.NumNodes() {
				return nil, fmt.Errorf("trace: tick %d lost its residency levels mid-stream", tick)
			}
			copy(levels, e.Levels)
		}
		if smp.Due(tick) {
			smp.Observe(tick, stat, levels)
		}
		tick++
	}
	if smp == nil {
		return nil, fmt.Errorf("trace: stream has no ticks")
	}
	// Close the final partial window, exactly as the live machine does at
	// the end of its run — the bit-identical contract covers the tail.
	smp.Flush(tick-1, stat, levels)
	return smp.Series(), nil
}
