package trace_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tppsim/internal/core"
	"tppsim/internal/sim"
	"tppsim/internal/trace"
	"tppsim/internal/workload"
)

// TestRecordReplayDeterminism is the subsystem's core guarantee:
// recording a catalog run and replaying the trace under the same policy,
// seed, and machine configuration reproduces the original's scalar
// results exactly — including the vmstat counters, which catch any
// divergence in the fault, reclaim, and migration sequences.
func TestRecordReplayDeterminism(t *testing.T) {
	for _, wlName := range []string{"Cache1", "Web1"} {
		t.Run(wlName, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), wlName+".trace.gz")
			cfg := sim.Config{
				Seed:     3,
				Policy:   core.TPP(),
				Workload: workload.Catalog[wlName](4 * 1024),
				Ratio:    [2]uint64{2, 1},
				Minutes:  6,
				RecordTo: path,
			}
			rec, err := sim.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			base := rec.Run()
			if err := rec.RecordError(); err != nil {
				t.Fatalf("recording: %v", err)
			}
			if base.Failed {
				t.Fatalf("recorded run failed: %s", base.FailReason)
			}

			tr, err := trace.Load(path)
			if err != nil {
				t.Fatal(err)
			}
			if tr.Header.Name != wlName {
				t.Fatalf("header name %q, want %q", tr.Header.Name, wlName)
			}

			cfg.RecordTo = ""
			cfg.Workload = tr.Replayer(trace.ReplayOptions{})
			rep, err := sim.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			got := rep.Run()
			if got.Failed {
				t.Fatalf("replay failed: %s", got.FailReason)
			}
			if got.NormalizedThroughput != base.NormalizedThroughput ||
				got.AvgLocalTraffic != base.AvgLocalTraffic ||
				got.AvgLatencyNs != base.AvgLatencyNs {
				t.Fatalf("scalars diverged:\n  recorded: tp=%v local=%v lat=%v\n  replayed: tp=%v local=%v lat=%v",
					base.NormalizedThroughput, base.AvgLocalTraffic, base.AvgLatencyNs,
					got.NormalizedThroughput, got.AvgLocalTraffic, got.AvgLatencyNs)
			}
			if !rec.Stat().Snapshot().Equal(rep.Stat().Snapshot()) {
				t.Fatal("vmstat snapshots diverged between record and replay")
			}
		})
	}
}

// TestReplayAcrossPolicies checks the apples-to-apples property: one
// trace drives machines under different policies without error.
func TestReplayAcrossPolicies(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c1.trace")
	cfg := sim.Config{
		Seed:     1,
		Policy:   core.DefaultLinux(),
		Workload: workload.Catalog["Cache1"](4 * 1024),
		Ratio:    [2]uint64{2, 1},
		Minutes:  5,
		RecordTo: path,
	}
	m, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res := m.Run(); res.Failed {
		t.Fatalf("recording run failed: %s", res.FailReason)
	}
	if err := m.RecordError(); err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []core.Policy{core.DefaultLinux(), core.TPP(), core.NUMABalancing()} {
		rp := tr.Replayer(trace.ReplayOptions{})
		m, err := sim.New(sim.Config{
			Seed: 1, Policy: p, Workload: rp, Ratio: [2]uint64{2, 1}, Minutes: 5,
		})
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		res := m.Run()
		if res.Failed {
			t.Fatalf("%s: replay failed: %s", p.Name, res.FailReason)
		}
		if err := rp.Err(); err != nil {
			t.Fatalf("%s: replayer: %v", p.Name, err)
		}
		if res.AvgLocalTraffic <= 0 {
			t.Fatalf("%s: no local traffic recorded", p.Name)
		}
	}
}

// TestReplayLoopAndTruncate exercises the Replayer options: a short
// generated trace looping seamlessly past its end (static regions), a
// churning trace looping via full restart, and MaxTicks truncation.
func TestReplayLoopAndTruncate(t *testing.T) {
	gen := trace.GenConfig{Pages: 2048, Minutes: 2, AccessesPerTick: 100, Seed: 5}
	runFor := func(wl workload.Workload, minutes int) *sim.Machine {
		t.Helper()
		m, err := sim.New(sim.Config{
			Seed: 1, Policy: core.TPP(), Workload: wl,
			Ratio: [2]uint64{2, 1}, Minutes: minutes, AccessesPerTick: 100,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res := m.Run(); res.Failed {
			t.Fatalf("run failed: %s", res.FailReason)
		}
		return m
	}

	// Seamless wrap: PhaseShift's regions are static, so a 2-minute
	// trace must drive a 5-minute run with accesses in every tick.
	rp := trace.PhaseShift(gen).Replayer(trace.ReplayOptions{Loop: true})
	m := runFor(rp, 5)
	if err := rp.Err(); err != nil {
		t.Fatalf("loop replay: %v", err)
	}
	if got := m.Results().Throughput.Len(); got == 0 {
		t.Fatal("no throughput samples")
	}

	// Restart wrap: AdvChurn's ring has rotated by end of trace, so the
	// wrap tears down and replays from the start section.
	rp = trace.AdversarialChurn(gen).Replayer(trace.ReplayOptions{Loop: true})
	runFor(rp, 5)
	if err := rp.Err(); err != nil {
		t.Fatalf("restart-loop replay: %v", err)
	}

	// Truncate: only the first 30 ticks of the trace replay; afterwards
	// the workload goes quiet but the machine keeps running.
	rp = trace.SequentialScan(gen).Replayer(trace.ReplayOptions{MaxTicks: 30})
	runFor(rp, 3)
	if err := rp.Err(); err != nil {
		t.Fatalf("truncated replay: %v", err)
	}

	// Truncate + Loop: the 30-tick prefix loops for the whole run.
	rp = trace.SequentialScan(gen).Replayer(trace.ReplayOptions{MaxTicks: 30, Loop: true})
	runFor(rp, 3)
	if err := rp.Err(); err != nil {
		t.Fatalf("truncated-loop replay: %v", err)
	}
}

// TestCorruptTraceFailsRun guards against silent bogus results: a
// truncated trace must mark the replay run failed, not let the machine
// idle to a healthy-looking scalar.
func TestCorruptTraceFailsRun(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ok.trace")
	m, err := sim.New(sim.Config{
		Seed: 1, Policy: core.TPP(), Workload: workload.Catalog["Cache1"](4 * 1024),
		Ratio: [2]uint64{2, 1}, Minutes: 4, RecordTo: path,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res := m.Run(); res.Failed {
		t.Fatalf("recording run failed: %s", res.FailReason)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cut := filepath.Join(dir, "cut.trace")
	if err := os.WriteFile(cut, raw[:len(raw)*2/3], 0o644); err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Load(cut)
	if err != nil {
		t.Fatal(err) // the header region survives; corruption is mid-stream
	}
	rp := tr.Replayer(trace.ReplayOptions{})
	m, err = sim.New(sim.Config{
		Seed: 1, Policy: core.TPP(), Workload: rp, Ratio: [2]uint64{2, 1}, Minutes: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	if !res.Failed {
		t.Fatalf("truncated-trace run reported success: %s", res.String())
	}
	if !strings.Contains(res.FailReason, "workload error") {
		t.Fatalf("unexpected fail reason %q", res.FailReason)
	}
	if rp.Err() == nil {
		t.Fatal("replayer reported no error")
	}
	// The diagnostic must locate the damage: mid-stream truncation names
	// the byte offset and tick it tripped on.
	if msg := rp.Err().Error(); !strings.Contains(msg, "byte offset ") || !strings.Contains(msg, "tick ") {
		t.Errorf("truncation error %q does not name byte offset and tick", msg)
	}
}

// TestGeneratorsTinyWorkingSet guards the percentage-sizing edge: every
// generator must produce a valid trace even when regions round to zero
// pages.
func TestGeneratorsTinyWorkingSet(t *testing.T) {
	cfg := trace.GenConfig{Pages: 3, Minutes: 1, AccessesPerTick: 20, Seed: 2}
	for name, tr := range map[string]*trace.Trace{
		"PhaseShift": trace.PhaseShift(cfg),
		"SeqScan":    trace.SequentialScan(cfg),
		"AdvChurn":   trace.AdversarialChurn(cfg),
	} {
		rp := tr.Replayer(trace.ReplayOptions{Loop: true})
		m, err := sim.New(sim.Config{
			Seed: 1, Policy: core.TPP(), Workload: rp,
			Ratio: [2]uint64{2, 1}, Minutes: 2, AccessesPerTick: 20,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res := m.Run(); res.Failed {
			t.Fatalf("%s: %s", name, res.FailReason)
		}
	}
}

// TestCatalogTraceEntries runs each generator-backed catalog entry
// briefly under TPP.
// scalarOnly hides a Replayer's batch fast path, forcing the simulator
// onto the one-NextAccess-per-access slow path.
type scalarOnly struct{ workload.Workload }

// TestReplayerBatchMatchesScalar pins the BatchAccessor contract: a
// machine driven through NextAccessBatch must be bit-identical — scalars
// and every vmstat counter — to one driven through per-access NextAccess
// calls over the same trace.
func TestReplayerBatchMatchesScalar(t *testing.T) {
	tr := trace.PhaseShift(trace.GenConfig{Pages: 4096, Minutes: 4, AccessesPerTick: 400, Seed: 9})
	runWith := func(wl workload.Workload) (*sim.Machine, string) {
		m, err := sim.New(sim.Config{
			Seed: 2, Policy: core.TPP(), Workload: wl,
			Ratio: [2]uint64{2, 1}, Minutes: 4, AccessesPerTick: 400,
		})
		if err != nil {
			t.Fatal(err)
		}
		res := m.Run()
		if res.Failed {
			t.Fatalf("run failed: %s", res.FailReason)
		}
		return m, res.String()
	}
	bm, bres := runWith(tr.Replayer(trace.ReplayOptions{}))
	sm, sres := runWith(scalarOnly{tr.Replayer(trace.ReplayOptions{})})
	if bres != sres {
		t.Errorf("scalars diverged:\n batch  %s\n scalar %s", bres, sres)
	}
	if got, want := bm.Stat().Snapshot(), sm.Stat().Snapshot(); !got.Equal(want) {
		t.Errorf("vmstat diverged:\n batch:\n%s scalar:\n%s", got.String(), want.String())
	}
}

func TestCatalogTraceEntries(t *testing.T) {
	for _, name := range []string{"PhaseShift", "SeqScan", "AdvChurn"} {
		ctor, ok := workload.Catalog[name]
		if !ok {
			t.Fatalf("catalog missing %s", name)
		}
		wl := ctor(2048)
		m, err := sim.New(sim.Config{
			Seed: 1, Policy: core.TPP(), Workload: wl,
			Ratio: [2]uint64{2, 1}, Minutes: 3, AccessesPerTick: 200,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res := m.Run()
		if res.Failed {
			t.Fatalf("%s: %s", name, res.FailReason)
		}
		if res.Workload != name {
			t.Fatalf("%s: workload name %q", name, res.Workload)
		}
	}
}
