// Package trace is the simulator's access-trace record/replay engine.
// It captures the full event stream a workload drives into a machine —
// region creation and teardown, explicit touches, and the sampled access
// stream — into a compact binary trace that can be stored as an artifact
// and deterministically re-driven under any placement policy. The design
// mirrors the tracker/policy split of memory-tiering daemons: trackers
// (here: a Recorder wrapping a live workload, or a synthetic Generator)
// emit access streams, and policies consume them via the Replayer, which
// implements workload.Workload.
//
// # Trace format
//
// A trace is a header followed by a flat event stream. All integers are
// unsigned LEB128 varints unless noted; floats are IEEE-754 bits in
// little-endian order. Files whose content starts with the gzip magic are
// transparently decompressed on load, and paths ending in ".gz" are
// compressed on write.
//
//	header:
//	  magic      8 bytes  "TPPTRACE"
//	  version    varint   currently 2
//	  name       varint length + UTF-8 bytes (workload display name)
//	  cpuns      8 bytes  float64 ThroughputModel.CPUServiceNs
//	  stalls     8 bytes  float64 ThroughputModel.StallsPerOp
//	  pages      varint   workload TotalPages (machine sizing)
//	  warmup     varint   workload WarmupTicks
//	  topo       (v2+)    1 presence byte; when 1, the resolved machine
//	                      topology: name (varint length + bytes), demote
//	                      scale factor (float64), node count (varint),
//	                      then per node kind byte + capacity varint +
//	                      latency float64 + bandwidth float64, then the
//	                      row-major distance matrix as varints
//	  faults     (v6+)    1 presence byte; when 1, the fault schedule the
//	                      run was recorded with: seed varint, event count
//	                      varint, then per event kind byte, node (zigzag
//	                      varint; -1 = machine-wide), at varint, until
//	                      varint, mult float64, jitter float64, prob
//	                      float64, retries varint, pages varint — enough
//	                      for a replay to rebuild and re-apply the
//	                      identical schedule
//
// Version-1 traces carry no topology block and load as before. Version
// 5 is reserved for per-node free-page/watermark levels (a ROADMAP
// carry-over); readers treat v5 streams exactly like v4.
//
//	event: 1 opcode byte + operands
//	  OpMmap     (0x01)  start varint, pages varint, type byte,
//	                     dirty-prob float64 — region creation
//	  OpMunmap   (0x02)  start varint, pages varint, type byte
//	  OpTouch    (0x03)  zigzag varint delta of VPN vs. previous Touch/Access
//	  OpAccess   (0x04)  same encoding; an access drawn via NextAccess
//	  OpTickEnd  (0x05)  closes one simulated tick. v3+: a varint node
//	                     count (0 = no per-node data), then per node a
//	                     varint pair count followed by (counter byte,
//	                     delta varint) pairs — the non-zero per-node
//	                     vmstat counter deltas the recorded machine
//	                     accumulated during the tick. v4+ (when the node
//	                     count is non-zero): one presence byte, then —
//	                     when 1 — per node three varints (resident,
//	                     anon, file pages) — the node's residency levels
//	                     at the tick's end, which trace.Stats folds into
//	                     the series plane's level columns
//	  OpStartEnd (0x06)  closes the Start (setup) section
//	  OpEnd      (0x07)  closes the stream (v2+; written by Close)
//	  OpFault    (0x08)  (v6+) one applied fault edge: kind byte, node
//	                     zigzag varint, tick varint, arg float64,
//	                     retries varint, pages varint. Informational —
//	                     replays rebuild faults from the header schedule
//	                     and skip these; they document when each edge
//	                     actually fired
//
// The stream grammar is: start-section events, OpStartEnd, then per tick
// any housekeeping events (mmap/munmap/touch), the tick's accesses, and
// OpTickEnd; version-2+ streams end with OpEnd, so a trace truncated
// even exactly on an event boundary is detected as malformed rather than
// silently replaying short. Version-2 traces carry bare tick markers and
// still load; replays ignore the v3 deltas either way (they describe the
// recorded machine, not the replaying one), so replay results are
// unchanged across versions. Touch/Access VPNs are delta-encoded against the previous
// Touch/Access VPN, which keeps hot-set streams to ~2 bytes per event.
// Region start VPNs are strictly increasing over the life of the stream
// (the recorder's address space never reuses addresses), which the
// Replayer relies on to translate recorded VPNs into its own regions.
package trace

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"tppsim/internal/fault"
	"tppsim/internal/mem"
	"tppsim/internal/metrics"
	"tppsim/internal/pagetable"
	"tppsim/internal/series"
	"tppsim/internal/tier"
	"tppsim/internal/vmstat"
	"tppsim/internal/workload"
)

// Magic identifies a trace file.
const Magic = "TPPTRACE"

// Version is the current trace-format version. Version 2 added the
// optional topology block; version 3 added per-node vmstat counter
// deltas to TickEnd events; version 4 added per-node residency levels
// next to them (the series plane's level columns); version 5 is
// reserved for per-node free-page/watermark levels (readers treat it
// like v4); version 6 added the header fault-schedule block and
// OpFault edge events, so replays reproduce faulted runs bit-
// identically; version 7 added the header tracker spec, so replays
// rebuild the recorded run's tracker plane. Older traces still load.
const Version = 7

// Header carries the workload identity a trace was captured from: enough
// for the Replayer to satisfy the workload.Workload interface and for a
// machine to be sized identically to the recorded run.
type Header struct {
	Version     int
	Name        string
	Model       metrics.ThroughputModel
	TotalPages  uint64
	WarmupTicks uint64
	// Topology, when non-nil, is the resolved machine the trace was
	// recorded on (absolute per-node capacities, traits, distances), so
	// a replay can rebuild the identical machine. The simulator fills it
	// in when recording; synthetic generators leave it nil.
	Topology *tier.Spec
	// Faults, when non-nil, is the fault schedule the recorded run was
	// injected with (v6+), so a replay can re-apply the identical
	// faults. nil for faults-off runs and older traces.
	Faults *fault.Schedule
	// Tracker, when non-empty, is the tracker-plane spec string the
	// recorded run was observed with (v7+, tracker.ParseSpec format),
	// so a replay can rebuild the identical plane. Empty for
	// tracker-off runs and older traces.
	Tracker string
}

// HeaderFor builds a Header describing the given workload.
func HeaderFor(wl workload.Workload) Header {
	return Header{
		Version:     Version,
		Name:        wl.Name(),
		Model:       wl.Model(),
		TotalPages:  wl.TotalPages(),
		WarmupTicks: wl.WarmupTicks(),
	}
}

// Op is a trace event opcode.
type Op uint8

// Trace event opcodes; see the package doc for operand layouts.
const (
	OpInvalid Op = iota
	OpMmap
	OpMunmap
	OpTouch
	OpAccess
	OpTickEnd
	OpStartEnd
	OpEnd
	OpFault
)

// String returns the opcode mnemonic.
func (o Op) String() string {
	switch o {
	case OpMmap:
		return "mmap"
	case OpMunmap:
		return "munmap"
	case OpTouch:
		return "touch"
	case OpAccess:
		return "access"
	case OpTickEnd:
		return "tickend"
	case OpStartEnd:
		return "startend"
	case OpEnd:
		return "end"
	case OpFault:
		return "fault"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// NodeCounterDelta is one per-node counter increment carried by a v3
// TickEnd event: node Node's Counter grew by Delta during the tick.
type NodeCounterDelta struct {
	Node    int
	Counter vmstat.Counter
	Delta   uint64
}

// Event is one decoded trace record. Fields are populated per opcode:
// Mmap uses Start/Pages/Type/Dirty, Munmap uses Start/Pages/Type,
// Touch/Access use VPN, and TickEnd carries the recorded machine's
// per-node vmstat deltas on v3+ streams.
type Event struct {
	Op    Op
	Start pagetable.VPN // Mmap/Munmap: region start in the recorded space
	Pages uint64        // Mmap/Munmap: region size
	Type  mem.PageType  // Mmap/Munmap: page type
	Dirty float64       // Mmap: dirty-at-fault probability for the region
	VPN   pagetable.VPN // Touch/Access: the touched virtual page

	// DeltaNodes is the machine node count a v3 TickEnd recorded (0
	// when the writer attached no per-node data); Deltas lists the
	// tick's non-zero per-node counter increments, grouped by node in
	// ascending order. For events returned by Reader.Next, Deltas
	// aliases a reader-owned scratch buffer valid until the next Next
	// call — copy it to retain.
	DeltaNodes int
	Deltas     []NodeCounterDelta

	// Levels carries each node's residency at the tick's end on v4+
	// TickEnds (len == DeltaNodes when present, nil on older streams or
	// when the writer had no residency source). Like Deltas, it aliases
	// reader-owned scratch.
	Levels []series.Levels

	// Fault carries an OpFault event's applied edge (v6+): the kind,
	// target node, tick it fired, and the kind's scalar operands.
	Fault fault.Edge
}

// Region returns the recorded region of an Mmap/Munmap event.
func (e Event) Region() pagetable.Region {
	return pagetable.Region{Start: e.Start, Pages: e.Pages, Type: e.Type}
}

// encodeHeader renders a header to its binary form. The header's own
// version is preserved (Save must not relabel old traces); a zero
// version means a hand-built header and gets the current one.
func encodeHeader(h Header) []byte {
	v := h.Version
	if v == 0 {
		v = Version
	}
	buf := make([]byte, 0, 64)
	buf = append(buf, Magic...)
	buf = binary.AppendUvarint(buf, uint64(v))
	buf = binary.AppendUvarint(buf, uint64(len(h.Name)))
	buf = append(buf, h.Name...)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(h.Model.CPUServiceNs))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(h.Model.StallsPerOp))
	buf = binary.AppendUvarint(buf, h.TotalPages)
	buf = binary.AppendUvarint(buf, h.WarmupTicks)
	if v >= 2 {
		buf = appendTopology(buf, h.Topology)
	}
	if v >= 6 {
		buf = appendFaults(buf, h.Faults)
	}
	if v >= 7 {
		buf = binary.AppendUvarint(buf, uint64(len(h.Tracker)))
		buf = append(buf, h.Tracker...)
	}
	return buf
}

// appendFaults renders the optional fault-schedule block (v6+).
func appendFaults(buf []byte, s *fault.Schedule) []byte {
	if s == nil || s.Empty() {
		return append(buf, 0)
	}
	buf = append(buf, 1)
	buf = binary.AppendUvarint(buf, s.Seed)
	buf = binary.AppendUvarint(buf, uint64(len(s.Events)))
	for _, e := range s.Events {
		buf = append(buf, byte(e.Kind))
		buf = binary.AppendUvarint(buf, zigzag(int64(e.Node)))
		buf = binary.AppendUvarint(buf, e.At)
		buf = binary.AppendUvarint(buf, e.Until)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.Mult))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.Jitter))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.Prob))
		buf = binary.AppendUvarint(buf, uint64(e.MaxRetries))
		buf = binary.AppendUvarint(buf, e.Pages)
	}
	return buf
}

// readFaults parses the fault-schedule block of a v6+ header.
func readFaults(r byteStream) (*fault.Schedule, error) {
	present, err := r.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("trace: reading fault marker: %w", err)
	}
	if present == 0 {
		return nil, nil
	}
	if present != 1 {
		return nil, fmt.Errorf("trace: bad fault marker %d", present)
	}
	var s fault.Schedule
	if s.Seed, err = binary.ReadUvarint(r); err != nil {
		return nil, fmt.Errorf("trace: reading fault seed: %w", err)
	}
	count, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("trace: reading fault event count: %w", err)
	}
	if count > 4096 {
		return nil, fmt.Errorf("trace: absurd fault event count %d", count)
	}
	s.Events = make([]fault.Event, count)
	for i := range s.Events {
		e := &s.Events[i]
		kind, err := r.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: reading fault %d kind: %w", i, err)
		}
		e.Kind = fault.Kind(kind)
		node, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("trace: reading fault %d node: %w", i, err)
		}
		e.Node = int(unzigzag(node))
		if e.Node < -1 || e.Node > 127 {
			return nil, fmt.Errorf("trace: fault %d has bad node %d", i, e.Node)
		}
		if e.At, err = binary.ReadUvarint(r); err != nil {
			return nil, fmt.Errorf("trace: reading fault %d tick: %w", i, err)
		}
		if e.Until, err = binary.ReadUvarint(r); err != nil {
			return nil, fmt.Errorf("trace: reading fault %d until: %w", i, err)
		}
		var f [24]byte
		if _, err := io.ReadFull(r, f[:]); err != nil {
			return nil, fmt.Errorf("trace: reading fault %d operands: %w", i, err)
		}
		e.Mult = math.Float64frombits(binary.LittleEndian.Uint64(f[0:8]))
		e.Jitter = math.Float64frombits(binary.LittleEndian.Uint64(f[8:16]))
		e.Prob = math.Float64frombits(binary.LittleEndian.Uint64(f[16:24]))
		retries, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("trace: reading fault %d retries: %w", i, err)
		}
		if retries > 1<<20 {
			return nil, fmt.Errorf("trace: fault %d has absurd retry bound %d", i, retries)
		}
		e.MaxRetries = int(retries)
		if e.Pages, err = binary.ReadUvarint(r); err != nil {
			return nil, fmt.Errorf("trace: reading fault %d pages: %w", i, err)
		}
	}
	return &s, nil
}

// appendTopology renders the optional topology block. Only resolved
// (absolute-Pages) specs are meaningful here; Share fields are not
// serialized.
func appendTopology(buf []byte, s *tier.Spec) []byte {
	if s == nil {
		return append(buf, 0)
	}
	buf = append(buf, 1)
	buf = binary.AppendUvarint(buf, uint64(len(s.Name)))
	buf = append(buf, s.Name...)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.DemoteScaleFactor))
	buf = binary.AppendUvarint(buf, uint64(len(s.Nodes)))
	for _, n := range s.Nodes {
		buf = append(buf, byte(n.Kind))
		buf = binary.AppendUvarint(buf, n.Pages)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(n.LoadLatencyNs))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(n.BandwidthMBps))
	}
	for _, row := range s.Distance {
		for _, d := range row {
			buf = binary.AppendUvarint(buf, uint64(d))
		}
	}
	return buf
}

// readTopology parses the topology block of a v2+ header.
func readTopology(r byteStream) (*tier.Spec, error) {
	present, err := r.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("trace: reading topology marker: %w", err)
	}
	if present == 0 {
		return nil, nil
	}
	var s tier.Spec
	nameLen, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("trace: reading topology name: %w", err)
	}
	if nameLen > 1<<12 {
		return nil, fmt.Errorf("trace: absurd topology name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(r, name); err != nil {
		return nil, fmt.Errorf("trace: reading topology name: %w", err)
	}
	s.Name = string(name)
	var f [8]byte
	if _, err := io.ReadFull(r, f[:]); err != nil {
		return nil, fmt.Errorf("trace: reading demote scale factor: %w", err)
	}
	s.DemoteScaleFactor = math.Float64frombits(binary.LittleEndian.Uint64(f[:]))
	count, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("trace: reading topology node count: %w", err)
	}
	if count == 0 || count > 127 {
		return nil, fmt.Errorf("trace: bad topology node count %d", count)
	}
	s.Nodes = make([]tier.NodeSpec, count)
	for i := range s.Nodes {
		kind, err := r.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: reading node %d kind: %w", i, err)
		}
		if kind > byte(mem.KindCXL) {
			return nil, fmt.Errorf("trace: node %d has unknown kind %d", i, kind)
		}
		pages, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("trace: reading node %d pages: %w", i, err)
		}
		var t [16]byte
		if _, err := io.ReadFull(r, t[:]); err != nil {
			return nil, fmt.Errorf("trace: reading node %d traits: %w", i, err)
		}
		s.Nodes[i] = tier.NodeSpec{
			Kind:          mem.NodeKind(kind),
			Pages:         pages,
			LoadLatencyNs: math.Float64frombits(binary.LittleEndian.Uint64(t[0:8])),
			BandwidthMBps: math.Float64frombits(binary.LittleEndian.Uint64(t[8:16])),
		}
	}
	s.Distance = make([][]int, count)
	for i := range s.Distance {
		s.Distance[i] = make([]int, count)
		for j := range s.Distance[i] {
			d, err := binary.ReadUvarint(r)
			if err != nil {
				return nil, fmt.Errorf("trace: reading distance[%d][%d]: %w", i, j, err)
			}
			s.Distance[i][j] = int(d)
		}
	}
	return &s, nil
}

// byteStream is what header/event decoding needs: bufio.Reader and
// bytes.Reader both satisfy it.
type byteStream interface {
	io.Reader
	io.ByteReader
}

// readHeader parses and validates a header from the stream.
func readHeader(r byteStream) (Header, error) {
	var magic [len(Magic)]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return Header{}, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic[:]) != Magic {
		return Header{}, fmt.Errorf("trace: bad magic %q", magic[:])
	}
	var h Header
	v, err := binary.ReadUvarint(r)
	if err != nil {
		return Header{}, fmt.Errorf("trace: reading version: %w", err)
	}
	if v == 0 || v > Version {
		return Header{}, fmt.Errorf("trace: unsupported version %d (have %d)", v, Version)
	}
	h.Version = int(v)
	nameLen, err := binary.ReadUvarint(r)
	if err != nil {
		return Header{}, fmt.Errorf("trace: reading name length: %w", err)
	}
	if nameLen > 1<<16 {
		return Header{}, fmt.Errorf("trace: absurd name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(r, name); err != nil {
		return Header{}, fmt.Errorf("trace: reading name: %w", err)
	}
	h.Name = string(name)
	var f [16]byte
	if _, err := io.ReadFull(r, f[:]); err != nil {
		return Header{}, fmt.Errorf("trace: reading model: %w", err)
	}
	h.Model.CPUServiceNs = math.Float64frombits(binary.LittleEndian.Uint64(f[0:8]))
	h.Model.StallsPerOp = math.Float64frombits(binary.LittleEndian.Uint64(f[8:16]))
	if h.TotalPages, err = binary.ReadUvarint(r); err != nil {
		return Header{}, fmt.Errorf("trace: reading total pages: %w", err)
	}
	if h.WarmupTicks, err = binary.ReadUvarint(r); err != nil {
		return Header{}, fmt.Errorf("trace: reading warmup ticks: %w", err)
	}
	if h.Version >= 2 {
		if h.Topology, err = readTopology(r); err != nil {
			return Header{}, err
		}
	}
	if h.Version >= 6 {
		if h.Faults, err = readFaults(r); err != nil {
			return Header{}, err
		}
	}
	if h.Version >= 7 {
		specLen, err := binary.ReadUvarint(r)
		if err != nil {
			return Header{}, fmt.Errorf("trace: reading tracker spec length: %w", err)
		}
		if specLen > 1<<12 {
			return Header{}, fmt.Errorf("trace: absurd tracker spec length %d", specLen)
		}
		spec := make([]byte, specLen)
		if _, err := io.ReadFull(r, spec); err != nil {
			return Header{}, fmt.Errorf("trace: reading tracker spec: %w", err)
		}
		h.Tracker = string(spec)
	}
	return h, nil
}

// zigzag folds a signed delta into an unsigned varint-friendly value.
func zigzag(d int64) uint64 { return uint64((d << 1) ^ (d >> 63)) }

// unzigzag is the inverse of zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Writer streams a trace: the header is written on construction, events
// as they arrive. Errors are sticky; check Err or the Close result.
type Writer struct {
	bw      *bufio.Writer
	closers []io.Closer
	prev    pagetable.VPN
	events  uint64
	scratch []byte
	// deltaScratch backs TickEndDeltas' sparse event payload, reused
	// across ticks.
	deltaScratch []NodeCounterDelta
	version      int
	closed       bool
	err          error
}

// NewWriter starts a trace on w with the given header. A header topology
// must be resolved (absolute Pages and an explicit Distance matrix, as
// produced by Topology.Spec); an unresolved spec is a sticky error
// rather than a block the reader would misparse.
func NewWriter(w io.Writer, h Header) *Writer {
	v := h.Version
	if v == 0 {
		v = Version
	}
	tw := &Writer{bw: bufio.NewWriterSize(w, 1<<16), version: v}
	if err := checkTopology(h.Topology); err != nil {
		tw.err = err
		return tw
	}
	tw.write(encodeHeader(h))
	return tw
}

// checkTopology rejects header topologies the binary block cannot
// represent: ratio-share nodes and synthesized (nil) distance matrices.
// Resolve a spec through tier.Spec.Build + Topology.Spec before
// recording it.
func checkTopology(s *tier.Spec) error {
	if s == nil {
		return nil
	}
	for i, n := range s.Nodes {
		if n.Pages == 0 {
			return fmt.Errorf("trace: header topology node %d is unresolved (Share, not absolute Pages)", i)
		}
	}
	if len(s.Distance) != len(s.Nodes) {
		return fmt.Errorf("trace: header topology needs an explicit %dx%d distance matrix", len(s.Nodes), len(s.Nodes))
	}
	for i, row := range s.Distance {
		if len(row) != len(s.Nodes) {
			return fmt.Errorf("trace: header topology distance row %d has %d entries for %d nodes", i, len(row), len(s.Nodes))
		}
	}
	return nil
}

// Create opens path for writing and starts a trace on it. Paths ending
// in ".gz" are gzip-compressed.
func Create(path string, h Header) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	var w io.Writer = f
	closers := []io.Closer{f}
	if strings.HasSuffix(path, ".gz") {
		gz := gzip.NewWriter(f)
		w = gz
		closers = []io.Closer{gz, f}
	}
	tw := NewWriter(w, h)
	tw.closers = closers
	return tw, tw.err
}

func (w *Writer) write(p []byte) {
	if w.err == nil {
		_, w.err = w.bw.Write(p)
	}
}

func (w *Writer) writeByte(b byte) {
	if w.err == nil {
		w.err = w.bw.WriteByte(b)
	}
}

func (w *Writer) uvarint(v uint64) {
	w.scratch = binary.AppendUvarint(w.scratch[:0], v)
	w.write(w.scratch)
}

// WriteEvent appends one event to the stream.
func (w *Writer) WriteEvent(e Event) {
	w.writeByte(byte(e.Op))
	switch e.Op {
	case OpMmap:
		w.uvarint(uint64(e.Start))
		w.uvarint(e.Pages)
		w.writeByte(byte(e.Type))
		w.scratch = binary.LittleEndian.AppendUint64(w.scratch[:0], math.Float64bits(e.Dirty))
		w.write(w.scratch)
	case OpMunmap:
		w.uvarint(uint64(e.Start))
		w.uvarint(e.Pages)
		w.writeByte(byte(e.Type))
	case OpTouch, OpAccess:
		w.uvarint(zigzag(int64(e.VPN) - int64(w.prev)))
		w.prev = e.VPN
	case OpTickEnd:
		if w.version >= 3 {
			// Deltas must be grouped by ascending node with every Node in
			// [0, DeltaNodes); nodes beyond the last delta encode as empty.
			w.uvarint(uint64(e.DeltaNodes))
			i := 0
			for n := 0; n < e.DeltaNodes; n++ {
				start := i
				for i < len(e.Deltas) && e.Deltas[i].Node == n {
					i++
				}
				w.uvarint(uint64(i - start))
				for _, d := range e.Deltas[start:i] {
					w.writeByte(byte(d.Counter))
					w.uvarint(d.Delta)
				}
			}
			if i != len(e.Deltas) && w.err == nil {
				// Out-of-order or out-of-range entries would be silently
				// lost, breaking the sum(deltas)==final invariant — fail
				// loudly instead.
				w.err = fmt.Errorf("trace: tickend deltas not grouped by ascending node in [0,%d)", e.DeltaNodes)
			}
			if w.version >= 4 && e.DeltaNodes > 0 {
				switch {
				case len(e.Levels) == e.DeltaNodes:
					w.writeByte(1)
					for _, lv := range e.Levels {
						w.uvarint(lv.Resident)
						w.uvarint(lv.Anon)
						w.uvarint(lv.File)
					}
				case len(e.Levels) == 0:
					w.writeByte(0)
				default:
					if w.err == nil {
						w.err = fmt.Errorf("trace: tickend has %d level entries for %d nodes", len(e.Levels), e.DeltaNodes)
					}
				}
			}
		}
	case OpFault:
		if w.version < 6 {
			if w.err == nil {
				w.err = fmt.Errorf("trace: fault events need format v6+ (writer is v%d)", w.version)
			}
			break
		}
		w.writeByte(byte(e.Fault.Kind))
		w.uvarint(zigzag(int64(e.Fault.Node)))
		w.uvarint(e.Fault.Tick)
		w.scratch = binary.LittleEndian.AppendUint64(w.scratch[:0], math.Float64bits(e.Fault.Arg))
		w.write(w.scratch)
		w.uvarint(uint64(e.Fault.MaxRetries))
		w.uvarint(e.Fault.Pages)
	case OpStartEnd, OpEnd:
		// no operands
	default:
		if w.err == nil {
			w.err = fmt.Errorf("trace: writing invalid opcode %d", e.Op)
		}
	}
	w.events++
}

// Fault records one applied fault edge (v6+ writers).
func (w *Writer) Fault(edge fault.Edge) { w.WriteEvent(Event{Op: OpFault, Fault: edge}) }

// Mmap records a region creation with its dirty-at-fault probability.
func (w *Writer) Mmap(r pagetable.Region, dirtyProb float64) {
	w.WriteEvent(Event{Op: OpMmap, Start: r.Start, Pages: r.Pages, Type: r.Type, Dirty: dirtyProb})
}

// Munmap records a region teardown.
func (w *Writer) Munmap(r pagetable.Region) {
	w.WriteEvent(Event{Op: OpMunmap, Start: r.Start, Pages: r.Pages, Type: r.Type})
}

// Touch records an explicit workload touch (housekeeping access).
func (w *Writer) Touch(v pagetable.VPN) { w.WriteEvent(Event{Op: OpTouch, VPN: v}) }

// Access records one access drawn from NextAccess.
func (w *Writer) Access(v pagetable.VPN) { w.WriteEvent(Event{Op: OpAccess, VPN: v}) }

// TickEnd closes the current tick with no per-node data.
func (w *Writer) TickEnd() { w.WriteEvent(Event{Op: OpTickEnd}) }

// TickEndDeltas closes the current tick, attaching each node's vmstat
// counter deltas for the tick (v3+ writers; earlier versions write a
// bare marker) and, when levels is non-nil (one entry per node), each
// node's residency at the tick's end (v4+ writers; v3 drops them). Only
// non-zero counters are encoded, so quiet ticks on small machines cost
// a few bytes. The snapshots are flattened into the sparse event form
// and encoded by WriteEvent — one encoder serves both freshly captured
// and re-encoded streams.
func (w *Writer) TickEndDeltas(deltas []vmstat.Snapshot, levels []series.Levels) {
	w.deltaScratch = w.deltaScratch[:0]
	for n, d := range deltas {
		for c, v := range d {
			if v != 0 {
				w.deltaScratch = append(w.deltaScratch,
					NodeCounterDelta{Node: n, Counter: vmstat.Counter(c), Delta: v})
			}
		}
	}
	w.WriteEvent(Event{Op: OpTickEnd, DeltaNodes: len(deltas), Deltas: w.deltaScratch, Levels: levels})
}

// StartEnd closes the Start (setup) section.
func (w *Writer) StartEnd() { w.WriteEvent(Event{Op: OpStartEnd}) }

// Events returns the number of events written so far.
func (w *Writer) Events() uint64 { return w.events }

// Err returns the first error encountered while writing.
func (w *Writer) Err() error { return w.err }

// Flush pushes buffered events to the underlying writer.
func (w *Writer) Flush() error {
	if err := w.bw.Flush(); err != nil && w.err == nil {
		w.err = err
	}
	return w.err
}

// Close writes the end-of-stream marker (v2+ traces), flushes, and
// closes any underlying file opened by Create.
func (w *Writer) Close() error {
	if !w.closed {
		w.closed = true
		if w.version >= 2 {
			w.WriteEvent(Event{Op: OpEnd})
		}
	}
	w.Flush()
	for _, c := range w.closers {
		if err := c.Close(); err != nil && w.err == nil {
			w.err = err
		}
	}
	w.closers = nil
	return w.err
}

// countingStream wraps a byteStream and counts consumed bytes, so
// decode errors can name the exact offset they tripped on.
type countingStream struct {
	s byteStream
	n int64
}

func (c *countingStream) Read(p []byte) (int, error) {
	n, err := c.s.Read(p)
	c.n += int64(n)
	return n, err
}

func (c *countingStream) ReadByte() (byte, error) {
	b, err := c.s.ReadByte()
	if err == nil {
		c.n++
	}
	return b, err
}

// Reader streams events back out of a trace. Next returns io.EOF at a
// clean end of stream.
type Reader struct {
	br    *countingStream
	h     Header
	prev  pagetable.VPN
	ticks uint64 // TickEnds consumed, for error context
	// deltaScratch and levelScratch back TickEnd events' Deltas and
	// Levels slices, reused across Next calls.
	deltaScratch []NodeCounterDelta
	levelScratch []series.Levels
}

// NewReader parses the header and prepares to stream events. The reader
// does not decompress; wrap r in gzip.Reader first if needed (Load does
// this automatically).
func NewReader(r io.Reader) (*Reader, error) {
	bs, ok := r.(byteStream)
	if !ok {
		bs = bufio.NewReaderSize(r, 1<<16)
	}
	cs := &countingStream{s: bs}
	h, err := readHeader(cs)
	if err != nil {
		return nil, err
	}
	return &Reader{br: cs, h: h}, nil
}

// Header returns the trace header.
func (r *Reader) Header() Header { return r.h }

// Next decodes the next event. It returns io.EOF at the end of the
// stream; any other error means the trace is malformed and names the
// byte offset and tick it tripped on. Version-2+ streams end with an
// explicit OpEnd marker, so running out of bytes without one is
// reported as truncation, not a clean end — including mid-event and
// mid-tick cuts.
func (r *Reader) Next() (Event, error) {
	e, err := r.next()
	switch {
	case err == nil:
		if e.Op == OpTickEnd {
			r.ticks++
		}
	case err != io.EOF:
		err = fmt.Errorf("%w (byte offset %d, tick %d)", err, r.br.n, r.ticks)
	}
	return e, err
}

func (r *Reader) next() (Event, error) {
	op, err := r.br.ReadByte()
	if err == io.EOF {
		if r.h.Version >= 2 {
			return Event{}, fmt.Errorf("trace: stream truncated (no end marker)")
		}
		return Event{}, io.EOF
	}
	if err != nil {
		return Event{}, fmt.Errorf("trace: reading opcode: %w", err)
	}
	e := Event{Op: Op(op)}
	switch e.Op {
	case OpEnd:
		return Event{}, io.EOF
	case OpMmap, OpMunmap:
		start, err := binary.ReadUvarint(r.br)
		if err != nil {
			return Event{}, fmt.Errorf("trace: %s start: %w", e.Op, err)
		}
		pages, err := binary.ReadUvarint(r.br)
		if err != nil {
			return Event{}, fmt.Errorf("trace: %s pages: %w", e.Op, err)
		}
		t, err := r.br.ReadByte()
		if err != nil {
			return Event{}, fmt.Errorf("trace: %s type: %w", e.Op, err)
		}
		if int(t) >= mem.NumPageTypes {
			return Event{}, fmt.Errorf("trace: %s bad page type %d", e.Op, t)
		}
		e.Start, e.Pages, e.Type = pagetable.VPN(start), pages, mem.PageType(t)
		if e.Op == OpMmap {
			var f [8]byte
			if _, err := io.ReadFull(r.br, f[:]); err != nil {
				return Event{}, fmt.Errorf("trace: mmap dirty prob: %w", err)
			}
			e.Dirty = math.Float64frombits(binary.LittleEndian.Uint64(f[:]))
		}
	case OpTouch, OpAccess:
		u, err := binary.ReadUvarint(r.br)
		if err != nil {
			return Event{}, fmt.Errorf("trace: %s delta: %w", e.Op, err)
		}
		e.VPN = pagetable.VPN(int64(r.prev) + unzigzag(u))
		r.prev = e.VPN
	case OpTickEnd:
		if r.h.Version >= 3 {
			nodes, err := binary.ReadUvarint(r.br)
			if err != nil {
				return Event{}, fmt.Errorf("trace: tickend node count: %w", err)
			}
			if nodes > 127 {
				return Event{}, fmt.Errorf("trace: tickend bad node count %d", nodes)
			}
			e.DeltaNodes = int(nodes)
			r.deltaScratch = r.deltaScratch[:0]
			for n := 0; n < int(nodes); n++ {
				pairs, err := binary.ReadUvarint(r.br)
				if err != nil {
					return Event{}, fmt.Errorf("trace: tickend node %d pair count: %w", n, err)
				}
				if pairs > uint64(vmstat.NumCounters) {
					return Event{}, fmt.Errorf("trace: tickend node %d has %d counter deltas", n, pairs)
				}
				for k := uint64(0); k < pairs; k++ {
					cb, err := r.br.ReadByte()
					if err != nil {
						return Event{}, fmt.Errorf("trace: tickend delta counter: %w", err)
					}
					if int(cb) >= vmstat.NumCounters {
						return Event{}, fmt.Errorf("trace: tickend unknown counter %d", cb)
					}
					v, err := binary.ReadUvarint(r.br)
					if err != nil {
						return Event{}, fmt.Errorf("trace: tickend delta value: %w", err)
					}
					r.deltaScratch = append(r.deltaScratch,
						NodeCounterDelta{Node: n, Counter: vmstat.Counter(cb), Delta: v})
				}
			}
			e.Deltas = r.deltaScratch
			if r.h.Version >= 4 && nodes > 0 {
				present, err := r.br.ReadByte()
				if err != nil {
					return Event{}, fmt.Errorf("trace: tickend level marker: %w", err)
				}
				if present > 1 {
					return Event{}, fmt.Errorf("trace: tickend bad level marker %d", present)
				}
				if present == 1 {
					r.levelScratch = r.levelScratch[:0]
					for n := 0; n < int(nodes); n++ {
						var lv series.Levels
						var lerr error
						if lv.Resident, lerr = binary.ReadUvarint(r.br); lerr == nil {
							if lv.Anon, lerr = binary.ReadUvarint(r.br); lerr == nil {
								lv.File, lerr = binary.ReadUvarint(r.br)
							}
						}
						if lerr != nil {
							return Event{}, fmt.Errorf("trace: tickend node %d levels: %w", n, lerr)
						}
						r.levelScratch = append(r.levelScratch, lv)
					}
					e.Levels = r.levelScratch
				}
			}
		}
	case OpFault:
		if r.h.Version < 6 {
			return Event{}, fmt.Errorf("trace: fault event in v%d stream (need v6+)", r.h.Version)
		}
		kind, err := r.br.ReadByte()
		if err != nil {
			return Event{}, fmt.Errorf("trace: fault kind: %w", err)
		}
		e.Fault.Kind = fault.Kind(kind)
		node, err := binary.ReadUvarint(r.br)
		if err != nil {
			return Event{}, fmt.Errorf("trace: fault node: %w", err)
		}
		e.Fault.Node = int(unzigzag(node))
		if e.Fault.Node < -1 || e.Fault.Node > 127 {
			return Event{}, fmt.Errorf("trace: fault event has bad node %d", e.Fault.Node)
		}
		if e.Fault.Tick, err = binary.ReadUvarint(r.br); err != nil {
			return Event{}, fmt.Errorf("trace: fault tick: %w", err)
		}
		var f [8]byte
		if _, err := io.ReadFull(r.br, f[:]); err != nil {
			return Event{}, fmt.Errorf("trace: fault arg: %w", err)
		}
		e.Fault.Arg = math.Float64frombits(binary.LittleEndian.Uint64(f[:]))
		retries, err := binary.ReadUvarint(r.br)
		if err != nil {
			return Event{}, fmt.Errorf("trace: fault retries: %w", err)
		}
		if retries > 1<<20 {
			return Event{}, fmt.Errorf("trace: fault event has absurd retry bound %d", retries)
		}
		e.Fault.MaxRetries = int(retries)
		if e.Fault.Pages, err = binary.ReadUvarint(r.br); err != nil {
			return Event{}, fmt.Errorf("trace: fault pages: %w", err)
		}
	case OpStartEnd:
		// no operands
	default:
		return Event{}, fmt.Errorf("trace: unknown opcode %d", op)
	}
	return e, nil
}

// Trace is a fully loaded trace: the header plus the encoded event
// stream held in memory. It is the unit the CLI and catalog pass around;
// Replayer views are cheap cursors over the shared encoded bytes.
type Trace struct {
	Header Header
	data   []byte
	ticks  uint64 // lazily counted by Ticks
}

// Decode parses an uncompressed trace image.
func Decode(raw []byte) (*Trace, error) {
	br := bytes.NewReader(raw)
	h, err := readHeader(br)
	if err != nil {
		return nil, err
	}
	return &Trace{Header: h, data: raw[len(raw)-br.Len():]}, nil
}

// Load reads a trace file, transparently gunzipping if the content is
// gzip-compressed (sniffed by magic, not extension).
func Load(path string) (*Trace, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if len(raw) >= 2 && raw[0] == 0x1f && raw[1] == 0x8b {
		gz, err := gzip.NewReader(bytes.NewReader(raw))
		if err != nil {
			return nil, fmt.Errorf("trace: %s: %w", path, err)
		}
		if raw, err = io.ReadAll(gz); err != nil {
			return nil, fmt.Errorf("trace: %s: %w", path, err)
		}
		if err := gz.Close(); err != nil {
			return nil, fmt.Errorf("trace: %s: %w", path, err)
		}
	}
	tr, err := Decode(raw)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return tr, nil
}

// Save writes the trace to path, gzip-compressed when the path ends in
// ".gz".
func (t *Trace) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	var w io.Writer = f
	var gz *gzip.Writer
	if strings.HasSuffix(path, ".gz") {
		gz = gzip.NewWriter(f)
		w = gz
	}
	_, err = w.Write(encodeHeader(t.Header))
	if err == nil {
		_, err = w.Write(t.data)
	}
	if gz != nil {
		if cerr := gz.Close(); err == nil {
			err = cerr
		}
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("trace: %s: %w", path, err)
	}
	return nil
}

// Events returns a fresh streaming cursor over the trace's events.
// Byte offsets in its errors count from the start of the event stream
// (the header is not part of a cursor's view).
func (t *Trace) Events() *Reader {
	return &Reader{br: &countingStream{s: bytes.NewReader(t.data)}, h: t.Header}
}

// Size returns the encoded event-stream size in bytes.
func (t *Trace) Size() int { return len(t.data) }

// Ticks returns the number of recorded ticks (TickEnd events), scanning
// the stream once and caching the result. Callers use it to size replay
// runs: a machine that outlasts a non-looping trace idles for the
// remainder and dilutes its scalars.
func (t *Trace) Ticks() uint64 {
	if t.ticks == 0 && len(t.data) > 0 {
		r := t.Events()
		for {
			e, err := r.Next()
			if err != nil {
				break
			}
			if e.Op == OpTickEnd {
				t.ticks++
			}
		}
	}
	return t.ticks
}
