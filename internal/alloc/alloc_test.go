package alloc

import (
	"errors"
	"testing"

	"tppsim/internal/lru"
	"tppsim/internal/mem"
	"tppsim/internal/tier"
	"tppsim/internal/vmstat"
)

type fixture struct {
	store *mem.Store
	topo  *tier.Topology
	vecs  []*lru.Vec
	stat  *vmstat.NodeStats
	a     *Allocator
}

func newFixture(t *testing.T, cfg Config, localPages, cxlPages uint64) *fixture {
	t.Helper()
	topo, err := tier.NewCXLSystem(tier.Config{LocalPages: localPages, CXLPages: cxlPages})
	if err != nil {
		t.Fatal(err)
	}
	store := mem.NewStore(int(localPages + cxlPages))
	vecs := make([]*lru.Vec, topo.NumNodes())
	for i := range vecs {
		vecs[i] = lru.NewVec(store)
	}
	stat := vmstat.NewNodeStats(topo.NumNodes())
	return &fixture{store, topo, vecs, stat, New(cfg, store, topo, vecs, stat)}
}

func TestAllocPrefersLocal(t *testing.T) {
	f := newFixture(t, Config{}, 1000, 1000)
	r, err := f.a.AllocPage(mem.Anon, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Node != 0 || r.StallNs != 0 {
		t.Fatalf("result = %+v", r)
	}
	if f.store.Page(r.PFN).Node != 0 {
		t.Fatal("page node wrong")
	}
	if !f.store.Page(r.PFN).Flags.Has(mem.PGOnLRU) || f.store.Page(r.PFN).Flags.Has(mem.PGActive) {
		t.Fatal("new page should start on inactive LRU")
	}
	if f.stat.Get(vmstat.PgallocLocal) != 1 {
		t.Fatal("pgalloc_local not counted")
	}
}

func TestFallbackToCXLWhenLocalLow(t *testing.T) {
	f := newFixture(t, Config{}, 1000, 1000)
	local := f.topo.Node(0)
	// Fill local to the low watermark; fast path must move to CXL.
	for local.Free() > local.WM.Low {
		local.Acquire(mem.Anon)
	}
	r, err := f.a.AllocPage(mem.Anon, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Node != 1 {
		t.Fatalf("allocated on node %d, want CXL fallback", r.Node)
	}
	if f.stat.Get(vmstat.PgallocCXL) != 1 {
		t.Fatal("pgalloc_cxl not counted")
	}
}

func TestDecoupledGateUsesAllocWatermark(t *testing.T) {
	f := newFixture(t, Config{Decoupled: true}, 1000, 1000)
	local := f.topo.Node(0)
	// Between demote WM (40) and alloc WM (10): decoupled allocation must
	// still land locally even though reclaim would be running.
	for local.Free() > local.WM.Demote-5 {
		local.Acquire(mem.Anon)
	}
	r, err := f.a.AllocPage(mem.Anon, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Node != 0 {
		t.Fatalf("decoupled alloc went to node %d", r.Node)
	}
}

func TestWakeKswapdOnPressure(t *testing.T) {
	f := newFixture(t, Config{Decoupled: true}, 1000, 1000)
	var woken []mem.NodeID
	f.a.WakeKswapd = func(id mem.NodeID) { woken = append(woken, id) }
	local := f.topo.Node(0)
	for local.Free() > local.WM.Demote-1 {
		local.Acquire(mem.Anon)
	}
	if _, err := f.a.AllocPage(mem.Anon, 0); err != nil {
		t.Fatal(err)
	}
	if len(woken) == 0 || woken[0] != 0 {
		t.Fatalf("kswapd not woken: %v", woken)
	}
}

func TestNoWakeWithoutPressure(t *testing.T) {
	f := newFixture(t, Config{}, 1000, 1000)
	woken := false
	f.a.WakeKswapd = func(mem.NodeID) { woken = true }
	if _, err := f.a.AllocPage(mem.Anon, 0); err != nil {
		t.Fatal(err)
	}
	if woken {
		t.Fatal("kswapd woken on a pressure-free machine")
	}
}

func TestPageTypeAwareOrder(t *testing.T) {
	f := newFixture(t, Config{PageTypeAware: true}, 1000, 1000)
	if got := f.a.NodeOrder(mem.File, 0); got[0] != 1 {
		t.Fatalf("file order = %v, want CXL first", got)
	}
	if got := f.a.NodeOrder(mem.Tmpfs, 0); got[0] != 1 {
		t.Fatalf("tmpfs order = %v, want CXL first", got)
	}
	if got := f.a.NodeOrder(mem.Anon, 0); got[0] != 0 {
		t.Fatalf("anon order = %v, want local first", got)
	}
	// Allocation follows the order.
	r, err := f.a.AllocPage(mem.File, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Node != 1 {
		t.Fatalf("file page allocated on node %d, want CXL", r.Node)
	}
}

func TestPageTypeAwareWithoutCXL(t *testing.T) {
	f := newFixture(t, Config{PageTypeAware: true}, 1000, 0)
	if got := f.a.NodeOrder(mem.File, 0); len(got) != 1 || got[0] != 0 {
		t.Fatalf("order on CXL-less machine = %v", got)
	}
}

func TestDirectReclaimPath(t *testing.T) {
	f := newFixture(t, Config{}, 100, 100)
	// Fill everything to the min watermark.
	for _, id := range []mem.NodeID{0, 1} {
		n := f.topo.Node(id)
		for n.Free() > n.WM.Min {
			n.Acquire(mem.Anon)
		}
	}
	called := false
	f.a.DirectReclaim = func(node mem.NodeID, want uint64) (uint64, float64) {
		called = true
		// Free 2 pages on the node.
		f.topo.Node(node).Release(mem.Anon)
		f.topo.Node(node).Release(mem.Anon)
		return 2, 50_000
	}
	r, err := f.a.AllocPage(mem.Anon, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Fatal("direct reclaim not invoked")
	}
	if r.StallNs != 50_000 {
		t.Fatalf("stall = %v", r.StallNs)
	}
	if f.stat.Get(vmstat.PgallocStall) != 1 {
		t.Fatal("allocstall not counted")
	}
}

func TestOOM(t *testing.T) {
	f := newFixture(t, Config{}, 10, 10)
	for _, id := range []mem.NodeID{0, 1} {
		n := f.topo.Node(id)
		for n.Free() > 0 {
			n.Acquire(mem.Anon)
		}
	}
	_, err := f.a.AllocPage(mem.Anon, 0)
	if !errors.Is(err, ErrOOM) {
		t.Fatalf("err = %v, want ErrOOM", err)
	}
}

func TestFreePage(t *testing.T) {
	f := newFixture(t, Config{}, 100, 100)
	r, err := f.a.AllocPage(mem.Tmpfs, 0)
	if err != nil {
		t.Fatal(err)
	}
	before := f.topo.Node(0).Free()
	f.a.FreePage(r.PFN)
	if f.topo.Node(0).Free() != before+1 {
		t.Fatal("FreePage did not release residency")
	}
	if f.vecs[0].TotalSize() != 0 {
		t.Fatal("FreePage left page on LRU")
	}
	if f.store.Live() != 0 {
		t.Fatal("FreePage did not free the store object")
	}
	if f.stat.Get(vmstat.PgfreeCt) != 1 {
		t.Fatal("pgfree not counted")
	}
}

func TestEmergencyPassDipsToMin(t *testing.T) {
	f := newFixture(t, Config{}, 1000, 1000)
	// Push both nodes below low but above min.
	for _, id := range []mem.NodeID{0, 1} {
		n := f.topo.Node(id)
		for n.Free() > n.WM.Low-2 {
			n.Acquire(mem.Anon)
		}
	}
	r, err := f.a.AllocPage(mem.Anon, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Node != 0 {
		t.Fatalf("emergency pass allocated on %d, want preferred node 0", r.Node)
	}
}
