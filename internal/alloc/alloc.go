// Package alloc implements the page allocator of the simulated kernel:
// policy-ordered node fallback, watermark gating, kswapd wake-up, and the
// direct-reclaim slow path. Two TPP behaviours live here:
//
//   - Decoupled allocation gating (§5.2): with TPP, a node accepts new
//     allocations while free pages satisfy the *allocation* watermark even
//     though background reclaim (driven by the higher *demotion*
//     watermark) is still running — allocation no longer halts behind
//     reclamation.
//   - Page-type-aware placement (§5.4): optionally, file and tmpfs pages
//     prefer the CXL node so that cold caches never squeeze hot anons out
//     of local DRAM.
package alloc

import (
	"errors"

	"tppsim/internal/lru"
	"tppsim/internal/mem"
	"tppsim/internal/probe"
	"tppsim/internal/tier"
	"tppsim/internal/vmstat"
)

// ErrOOM is returned when no node can host the page even after direct
// reclaim. The AutoTiering baseline's 1:4 crash surfaces through this.
var ErrOOM = errors.New("alloc: out of memory on all nodes")

// Config selects the allocation policy.
type Config struct {
	// Decoupled gates allocation on the allocation watermark (§5.2)
	// instead of the classic low watermark, and wakes kswapd at the
	// demotion watermark.
	Decoupled bool
	// PageTypeAware prefers CXL nodes for file-like pages (§5.4).
	PageTypeAware bool
}

// Result reports where an allocation landed and what it cost.
type Result struct {
	PFN  mem.PFN
	Node mem.NodeID
	// StallNs is time the faulting thread spent in direct reclaim; zero
	// on the fast path.
	StallNs float64
}

// Allocator is the per-machine page allocator.
type Allocator struct {
	cfg   Config
	store *mem.Store
	topo  *tier.Topology
	vecs  []*lru.Vec
	stat  *vmstat.NodeStats

	// WakeKswapd is invoked (if non-nil) when an allocation observes the
	// preferred node under pressure. Wired to the reclaim daemon.
	WakeKswapd func(mem.NodeID)
	// DirectReclaim is the synchronous slow path: reclaim want pages from
	// the node, returning pages freed and the caller's stall time. Wired
	// to the reclaim package.
	DirectReclaim func(node mem.NodeID, want uint64) (freed uint64, costNs float64)

	// probes is the machine's probe plane (nil = no probing): allocation
	// stalls observe their duration and fire the allocstall tracepoint.
	probes *probe.Probes

	// framePages is the base pages per allocation unit: 1 normally,
	// mem.HugeFramePages in huge-page mode, where each PFN is a 2 MB
	// frame and node residency is charged all-or-nothing per frame.
	framePages uint64
}

// New returns an allocator over the machine.
func New(cfg Config, store *mem.Store, topo *tier.Topology, vecs []*lru.Vec, stat *vmstat.NodeStats) *Allocator {
	return &Allocator{cfg: cfg, store: store, topo: topo, vecs: vecs, stat: stat, framePages: 1}
}

// Config returns the active policy configuration.
func (a *Allocator) Config() Config { return a.cfg }

// SetProbes attaches the machine's probe plane (nil detaches).
func (a *Allocator) SetProbes(p *probe.Probes) { a.probes = p }

// SetFramePages sets the base pages charged per allocated PFN (a
// machine property, set once by the simulator before any allocation).
func (a *Allocator) SetFramePages(fp uint64) { a.framePages = fp }

// acquireFrame charges one allocation unit of residency on the node:
// a single page normally, a whole huge frame (all-or-nothing) in
// huge-page mode.
func (a *Allocator) acquireFrame(n *mem.Node, t mem.PageType) bool {
	if a.framePages == 1 {
		return n.Acquire(t)
	}
	return n.AcquireN(t, a.framePages)
}

// NodeOrder returns the node fallback order for a page of type t with the
// given preferred node, honouring the page-type-aware policy.
func (a *Allocator) NodeOrder(t mem.PageType, preferred mem.NodeID) []mem.NodeID {
	order := a.topo.FallbackOrder(preferred)
	if !a.cfg.PageTypeAware || !t.IsFileLike() {
		return order
	}
	// File-like pages: CXL nodes first (nearest first), then the rest in
	// their usual order.
	reordered := make([]mem.NodeID, 0, len(order))
	for _, id := range order {
		if a.topo.Node(id).Kind == mem.KindCXL {
			reordered = append(reordered, id)
		}
	}
	if len(reordered) == 0 {
		return order // no CXL node on this machine
	}
	for _, id := range order {
		if a.topo.Node(id).Kind != mem.KindCXL {
			reordered = append(reordered, id)
		}
	}
	return reordered
}

// allocGateOK reports whether node n may take a fast-path allocation.
func (a *Allocator) allocGateOK(n *mem.Node) bool {
	if a.cfg.Decoupled {
		return n.AllocOK()
	}
	return n.Free() > n.WM.Low
}

// pressure reports whether kswapd should be woken for node n.
func (a *Allocator) pressure(n *mem.Node) bool {
	if a.cfg.Decoupled {
		return n.BelowDemote()
	}
	return n.BelowLow()
}

// AllocPage allocates one page of type t preferring the given node,
// following the kernel's three-pass structure: watermark-gated fast path,
// min-watermark emergency path, then direct reclaim.
func (a *Allocator) AllocPage(t mem.PageType, preferred mem.NodeID) (Result, error) {
	order := a.NodeOrder(t, preferred)

	// Pass 1: fast path over the fallback order.
	for _, id := range order {
		n := a.topo.Node(id)
		if a.allocGateOK(n) && a.acquireFrame(n, t) {
			return a.finish(t, id, 0), nil
		}
	}
	// Someone is under pressure; kick background reclaim on the preferred
	// node before dipping into reserves.
	a.wake(preferred)

	// Pass 2: allow dipping to the min watermark.
	for _, id := range order {
		n := a.topo.Node(id)
		if n.Free() > n.WM.Min && a.acquireFrame(n, t) {
			a.wake(id)
			return a.finish(t, id, 0), nil
		}
	}

	// Pass 3: direct reclaim on the preferred node, then take anything.
	var stall float64
	if a.DirectReclaim != nil {
		a.stat.Inc(preferred, vmstat.PgallocStall)
		_, stall = a.DirectReclaim(preferred, a.framePages)
		if p := a.probes; p != nil {
			if p.Lat != nil {
				p.Lat.AllocStall.ObserveFloat(stall)
			}
			if p.OnAllocStall.Active() {
				p.OnAllocStall.Fire(probe.AllocStallEvent{Node: int(preferred), StallNs: stall})
			}
		}
	}
	for _, id := range order {
		if a.acquireFrame(a.topo.Node(id), t) {
			a.wake(id)
			return a.finish(t, id, stall), nil
		}
	}
	return Result{PFN: mem.NilPFN, Node: mem.NilNode, StallNs: stall}, ErrOOM
}

func (a *Allocator) wake(id mem.NodeID) {
	if a.WakeKswapd != nil && a.pressure(a.topo.Node(id)) {
		a.WakeKswapd(id)
	}
}

// finish creates the page object, links it on the node's inactive LRU
// (new pages start inactive, as in kernels >= 5.9), and counts the event.
func (a *Allocator) finish(t mem.PageType, id mem.NodeID, stall float64) Result {
	pfn := a.store.Alloc(t, id)
	a.vecs[id].Add(pfn, false)
	// pgalloc_* are page-denominated: a huge frame counts all its base
	// pages, matching how the kernel accounts THP allocations.
	if a.topo.Node(id).Kind == mem.KindCXL {
		a.stat.Add(id, vmstat.PgallocCXL, a.framePages)
	} else {
		a.stat.Add(id, vmstat.PgallocLocal, a.framePages)
	}
	// Also wake kswapd when the fast path left the node under pressure,
	// so background reclaim keeps the headroom ahead of the next burst.
	a.wake(id)
	return Result{PFN: pfn, Node: id, StallNs: stall}
}

// FreePage releases a page entirely: off its LRU, node residency returned,
// page object recycled. The caller is responsible for page-table cleanup.
func (a *Allocator) FreePage(pfn mem.PFN) {
	pg := a.store.Page(pfn)
	id := pg.Node
	if pg.Flags.Has(mem.PGOnLRU) {
		a.vecs[id].Remove(pfn)
	}
	if a.framePages == 1 {
		a.topo.Node(id).Release(pg.Type)
	} else {
		a.topo.Node(id).ReleaseN(pg.Type, a.framePages)
	}
	a.store.Free(pfn)
	a.stat.Add(id, vmstat.PgfreeCt, a.framePages)
}
