package experiments

import (
	"fmt"
	"hash/fnv"
	"strings"
	"testing"
)

// TestMT4ExpanderCDFGolden pins MT4's expander CDF block the way the
// sim goldens pin machine runs: fixed options, FNV digest over the CSV
// bytes. The digest covers both policies' cumulative columns, so any
// drift in the access-latency distribution — bucket bounds, counts,
// rounding — shows up here. Recapture (with a commit-message note) if
// simulation behavior legitimately changes.
func TestMT4ExpanderCDFGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("slow integration test")
	}
	res := MT4(Options{Pages: 8 * 1024, Minutes: 15})
	csv, ok := res.Series["cdf_expander_2_1_1"]
	if !ok {
		t.Fatalf("MT4 series keys: %v", keys(res.Series))
	}
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if lines[0] != "le_ns,default,tpp" {
		t.Fatalf("CDF header = %q", lines[0])
	}
	if len(lines) < 3 {
		t.Fatalf("CDF block too short: %d lines", len(lines))
	}
	// Each policy column must be non-decreasing and end at 1.0000.
	last := strings.Split(lines[len(lines)-1], ",")
	for i, cell := range last[1:] {
		if cell != "1.0000" {
			t.Errorf("column %d ends at %s, want 1.0000", i+1, cell)
		}
	}
	h := fnv.New64a()
	h.Write([]byte(csv))
	digest := fmt.Sprintf("%dx%d h=%016x", len(lines)-1, len(last)-1, h.Sum64())
	const want = "3x2 h=53b261f333fe04dc"
	if digest != want {
		t.Errorf("expander CDF digest = %q, want %q", digest, want)
	}
}

func keys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
