package experiments

import (
	"fmt"
	"math"

	"tppsim/internal/chameleon"
	"tppsim/internal/core"
	"tppsim/internal/mem"
	"tppsim/internal/metrics"
	"tppsim/internal/report"
	"tppsim/internal/sim"
	"tppsim/internal/workload"
)

// profileWorkload runs a workload on an all-local machine with Chameleon
// attached (the §3 methodology: characterization happens on ordinary
// production hosts, not tiered ones).
func profileWorkload(o Options, wlName string) (*sim.Machine, chameleon.Report) {
	m, _ := run(o, core.DefaultLinux(), wlName, [2]uint64{1, 0}, func(c *sim.Config) {
		c.EnableChameleon = true
		// The simulator's access stream is already a 1-in-AccessScale
		// sample of real traffic, so PEBS's 1-in-200 corresponds to
		// 1-in-2 of the stream the Collector sees.
		c.ChameleonConfig = chameleon.Config{SampleRate: 2}
	})
	return m, m.Chameleon().Report(wlName)
}

// fig7Workloads is the Fig. 7/8 application set.
var fig7Workloads = []string{"Web1", "Web2", "Cache1", "Cache2", "Warehouse", "Ads1", "Ads2", "Ads3"}

// Fig7 regenerates the page-temperature breakdown: how much of each
// application's allocated memory was accessed within the last 1/2/5/10
// minutes, and how much is colder.
func Fig7(o Options) Result {
	t := &report.Table{
		Title:   "Fig. 7 — Application memory usage over last N minutes (% of allocated)",
		Columns: []string{"workload", "1 min hot", "2 min hot", "5 min hot", "10 min hot", "cold"},
	}
	for _, name := range fig7Workloads {
		_, rep := profileWorkload(o, name)
		ov := rep.Overall
		cum1 := ov.Hot1
		cum2 := cum1 + ov.Hot2
		cum5 := cum2 + ov.Hot5
		cum10 := cum5 + ov.Hot10
		t.AddRow(name,
			report.Pct(ov.Fraction(cum1)), report.Pct(ov.Fraction(cum2)),
			report.Pct(ov.Fraction(cum5)), report.Pct(ov.Fraction(cum10)),
			report.Pct(ov.Fraction(ov.Cold)))
	}
	t.AddNote("paper: 55-80%% of allocated memory idle within any 2-minute interval")
	return Result{ID: "Fig7", Caption: "Page temperature", Table: t}
}

// Fig8 regenerates the anon-vs-file temperature split.
func Fig8(o Options) Result {
	t := &report.Table{
		Title:   "Fig. 8 — Temperature by page type (% of that type's allocation)",
		Columns: []string{"workload", "type", "1 min hot", "2 min hot", "10 min hot", "cold"},
	}
	for _, name := range fig7Workloads {
		_, rep := profileWorkload(o, name)
		for _, row := range []struct {
			label string
			ts    chameleon.TempStats
		}{
			{"anon", rep.PerType[mem.Anon]},
			{"file", merge(rep.PerType[mem.File], rep.PerType[mem.Tmpfs])},
		} {
			if row.ts.Allocated == 0 {
				continue
			}
			cum1 := row.ts.Hot1
			cum2 := cum1 + row.ts.Hot2
			cum10 := cum2 + row.ts.Hot5 + row.ts.Hot10
			t.AddRow(name, row.label,
				report.Pct(row.ts.Fraction(cum1)), report.Pct(row.ts.Fraction(cum2)),
				report.Pct(row.ts.Fraction(cum10)), report.Pct(row.ts.Fraction(row.ts.Cold)))
		}
	}
	t.AddNote("paper: a large fraction of anon pages is hot while file pages are comparatively colder")
	return Result{ID: "Fig8", Caption: "Anon vs file temperature", Table: t}
}

func merge(a, b chameleon.TempStats) chameleon.TempStats {
	return chameleon.TempStats{
		Allocated: a.Allocated + b.Allocated,
		Hot1:      a.Hot1 + b.Hot1,
		Hot2:      a.Hot2 + b.Hot2,
		Hot5:      a.Hot5 + b.Hot5,
		Hot10:     a.Hot10 + b.Hot10,
		Cold:      a.Cold + b.Cold,
	}
}

// fig9Workloads is the Fig. 9/10 subset.
var fig9Workloads = []string{"Web1", "Cache1", "Cache2", "Warehouse"}

// Fig9 regenerates the memory-usage-over-time series: total/anon/file
// utilization per workload.
func Fig9(o Options) Result {
	t := &report.Table{
		Title:   "Fig. 9 — Memory usage over time (steady-state utilization)",
		Columns: []string{"workload", "total util", "anon util", "file util"},
	}
	series := map[string]string{}
	for _, name := range fig9Workloads {
		m, res := run(o, core.DefaultLinux(), name, [2]uint64{1, 0})
		_ = m
		total, anon, file := res.UtilTotal, res.UtilAnon, res.UtilFile
		total.Name, anon.Name, file.Name = "total", "anon", "file"
		series[name] = report.SeriesCSV("minute", &total, &anon, &file)
		t.AddRow(name, report.Pct(total.Tail(0.3)), report.Pct(anon.Tail(0.3)), report.Pct(file.Tail(0.3)))
	}
	t.AddNote("paper: Web file cache decays as anon grows; Cache holds ~70-82%% file; Warehouse ~85%% anon")
	return Result{ID: "Fig9", Caption: "Usage over time", Table: t, Series: series}
}

// Fig10 regenerates the throughput-vs-utilization sensitivity scatter.
func Fig10(o Options) Result {
	t := &report.Table{
		Title:   "Fig. 10 — Throughput correlation with anon/file utilization",
		Columns: []string{"workload", "corr(throughput, anon util)", "corr(throughput, file util)"},
	}
	series := map[string]string{}
	for _, name := range fig9Workloads {
		_, res := run(o, core.DefaultLinux(), name, [2]uint64{1, 0})
		anon, file, thr := res.UtilAnon, res.UtilFile, res.Throughput
		anon.Name, file.Name, thr.Name = "anon_util", "file_util", "throughput"
		series[name] = report.SeriesCSV("minute", &anon, &file, &thr)
		t.AddRow(name,
			fmt.Sprintf("%+.2f", correlate(anon.Y, thr.Y)),
			fmt.Sprintf("%+.2f", correlate(file.Y, thr.Y)))
	}
	t.AddNote("paper: Web/Cache2/Warehouse throughput tracks anon utilization; Cache1 shows no clear relation")
	return Result{ID: "Fig10", Caption: "Sensitivity", Table: t, Series: series}
}

// correlate returns the Pearson correlation of two equal-length series
// (0 when degenerate).
func correlate(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if n < 2 {
		return 0
	}
	ma, mb := metrics.Mean(a[:n]), metrics.Mean(b[:n])
	var cov, va, vb float64
	for i := 0; i < n; i++ {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / (math.Sqrt(va) * math.Sqrt(vb))
}

// Fig11 regenerates the re-access interval distribution.
func Fig11(o Options) Result {
	t := &report.Table{
		Title:   "Fig. 11 — Fraction of hot transitions by prior-cold interval",
		Columns: []string{"workload", "fresh alloc", "<=1 min", "<=2 min", "<=5 min", "<=10 min", "beyond"},
	}
	for _, name := range fig9Workloads {
		_, rep := profileWorkload(o, name)
		r := rep.Reaccess
		tot := r.Total()
		if tot == 0 {
			t.AddRow(name, "-", "-", "-", "-", "-", "-")
			continue
		}
		f := func(n uint64) string { return report.Pct(float64(n) / float64(tot)) }
		t.AddRow(name, f(r.FirstTouch), f(r.Within1), f(r.Within2), f(r.Within5), f(r.Within10), f(r.Beyond))
	}
	t.AddNote("paper: Web re-accesses ~80%% of pages within 10 minutes; Warehouse anons are mostly fresh allocations")
	return Result{ID: "Fig11", Caption: "Re-access intervals", Table: t}
}

// ensure workload import is used even if fig sets change.
var _ = workload.Names
