package experiments

import (
	"fmt"

	"tppsim/internal/core"
	"tppsim/internal/metrics"
	"tppsim/internal/report"
	"tppsim/internal/sim"
	"tppsim/internal/tier"
	"tppsim/internal/tracker"
)

// MT6 sweeps the sampled-tracking plane: the tracker-driven policy
// family running blind on tracker counters, across tracker kinds,
// scan intervals, and mover budgets on the three machine shapes. The
// oracle scores every run's hot-set against exact access counts, so
// each row pairs the tracker's *overhead* (pages checked per tick)
// with its *accuracy* (precision/recall) and what that bought in
// throughput — the overhead/accuracy tradeoff memtierd-style daemons
// live on. softdirty's rows demonstrate the write-only blind spot:
// near-zero recall on read-heavy heat, at idlepage's identical scan
// price.
func MT6(o Options) Result {
	o = o.withDefaults()
	t := &report.Table{
		Title: "MT6 — sampled trackers: overhead vs accuracy vs throughput",
		Columns: []string{"topology", "tracker", "scan", "budget",
			"tput %", "local %", "scanned/tick", "moved", "deferred", "prec %", "recall %"},
	}

	topos := []struct {
		label string
		spec  tier.Spec
	}{
		{"cxl 2:1", tier.PresetCXL(2, 1)},
		{"dualsocket", tier.PresetDualSocket()},
		{"expander", tier.PresetExpander(2, 1, 1)},
	}
	type arm struct {
		kind   string
		scan   uint64
		budget int
	}
	// Tracker kinds everywhere at defaults; scan-interval and
	// mover-budget sweeps on the CXL box only (the knobs are
	// topology-independent; no need to cube the matrix).
	arms := map[string][]arm{
		"cxl 2:1": {
			{"idlepage", 16, 128},
			{"softdirty", 16, 128},
			{"damon", 16, 128},
			{"idlepage", 4, 128},
			{"idlepage", 64, 128},
			{"idlepage", 16, 32},
			{"idlepage", 16, 512},
		},
		"dualsocket": {
			{"idlepage", 16, 128},
			{"damon", 16, 128},
		},
		"expander": {
			{"idlepage", 16, 128},
			{"softdirty", 16, 128},
			{"damon", 16, 128},
		},
	}

	var overhead, recall metrics.Series
	overhead.Name, recall.Name = "scanned_per_tick", "recall"
	for _, topo := range topos {
		for _, a := range arms[topo.label] {
			pol := core.Sampled()
			pol.Sampled.PagesPerTick = a.budget
			_, r := runTopo(o, pol, "Cache2", topo.spec, func(cfg *sim.Config) {
				cfg.Tracker = tracker.Config{Kind: a.kind, ScanEveryTicks: a.scan, Oracle: true}
			})
			ts := r.Tracker
			if ts == nil {
				panic("MT6: sampled run returned no tracker stats")
			}
			t.AddRow(topo.label, a.kind,
				fmt.Sprintf("%d", a.scan), fmt.Sprintf("%d", a.budget),
				cellTput(r), report.F1(100*r.AvgLocalTraffic),
				report.F1(ts.ScannedPerTick),
				fmt.Sprintf("%d", ts.MoverMoved), fmt.Sprintf("%d", ts.MoverDeferred),
				report.F1(100*ts.Precision), report.F1(100*ts.Recall))
			if topo.label == "cxl 2:1" && a.scan == 16 && a.budget == 128 {
				overhead.Append(float64(len(overhead.Y)), ts.ScannedPerTick)
				recall.Append(float64(len(recall.Y)), ts.Recall)
			}
		}
	}
	t.AddNote("precision/recall vs the exact-count oracle; scanned/tick is the tracker's own overhead")
	t.AddNote("softdirty sees only writes: recall collapses on read-heavy heat at the same scan cost as idlepage")
	t.AddNote("damon's scanned/tick is fixed by its sampling budget — constant overhead regardless of memory size")
	return Result{
		ID: "MT6", Caption: "Sampled-tracker overhead vs accuracy", Table: t,
		Series: map[string]string{"tradeoff": report.SeriesCSV("kind_index", &overhead, &recall)},
	}
}
