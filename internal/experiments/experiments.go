// Package experiments regenerates every table and figure of the paper's
// characterization (§3) and evaluation (§6). Each experiment is a named
// function from Options to a Result holding a rendered table and any
// figure series as CSV. The registry is consumed by cmd/experiments,
// the root bench harness, and EXPERIMENTS.md.
//
// Absolute values are simulator-scale; what each experiment is expected
// to reproduce is the paper's *shape* — who wins, by roughly what factor,
// and where mechanisms break — recorded per experiment in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"

	"tppsim/internal/core"
	"tppsim/internal/metrics"
	"tppsim/internal/report"
	"tppsim/internal/sim"
	"tppsim/internal/workload"
)

// Options scale an experiment run.
type Options struct {
	// Pages is the working-set size in 4 KB pages (default 32768; the
	// calibration scale).
	Pages uint64
	// Minutes is the run length (default 60).
	Minutes int
	// Seed is the base random seed (default 1).
	Seed uint64
	// SimWorkers shards each machine's access-stage phase across this
	// many goroutines (sim.Config.Workers; 0 keeps the serial default).
	// Results are bit-identical for any value — the artifacts never
	// depend on it — so cmd/experiments splits its CPU budget between
	// machine-level parallelism (RunAll's pool) and this knob without
	// changing what it regenerates.
	SimWorkers int
}

func (o Options) withDefaults() Options {
	if o.Pages == 0 {
		o.Pages = 32 * 1024
	}
	if o.Minutes == 0 {
		o.Minutes = 60
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Quick returns reduced options for benchmarks and smoke tests.
func Quick() Options { return Options{Pages: 8 * 1024, Minutes: 20} }

// Result is one regenerated artifact.
type Result struct {
	ID      string
	Caption string
	Table   *report.Table
	// Series holds named CSV blocks for figure lines.
	Series map[string]string
}

// Spec is a registry entry.
type Spec struct {
	ID      string
	Caption string
	Run     func(Options) Result
}

// Registry lists every experiment in paper order.
func Registry() []Spec {
	return []Spec{
		{"Fig2", "Latency characteristics of memory technologies", Fig2},
		{"Fig3", "Memory as a share of rack TCO and power across generations", Fig3},
		{"Fig4", "Memory bandwidth and capacity scaling over DRAM generations", Fig4},
		{"Fig5", "CXL system vs dual-socket server", Fig5},
		{"Fig7", "Application memory hot over last N minutes", Fig7},
		{"Fig8", "Anon pages are hotter than file pages", Fig8},
		{"Fig9", "Memory usage over time per page type", Fig9},
		{"Fig10", "Throughput sensitivity to anon/file utilization", Fig10},
		{"Fig11", "Fraction of pages re-accessed at different intervals", Fig11},
		{"Table1", "Throughput normalized to all-local baseline", Table1},
		{"Fig14", "Local-traffic fraction over time (2:1)", Fig14},
		{"Fig15", "TPP under memory constraint (1:4)", Fig15},
		{"Fig16", "TPP with varied CXL-Memory latencies", Fig16},
		{"Fig17", "Impact of decoupling allocation and reclamation", Fig17},
		{"Fig18", "Active-LRU-based hot-page detection", Fig18},
		{"Table2", "Page-type-aware allocation", Table2},
		{"Fig19", "TPP vs NUMA Balancing vs AutoTiering", Fig19},
		{"Table3", "TMO enhances TPP", Table3},
		{"Table4", "TPP enhances TMO", Table4},
		{"X1", "Active-LRU ablation scalars (§6.2)", X1},
		{"X2", "Reclaim speed: migration vs default reclaim (§5.1)", X2},
		{"X3", "Steady-state migration bandwidth (§7)", X3},
		{"MT1", "Throughput vs memory-tier depth (multi-hop expander)", MT1},
		{"MT2", "Per-node flows across share mixes and distance matrices", MT2},
		{"MT3", "Dual-socket residency/flows over time (series plane)", MT3},
		{"MT4", "Access-latency CDFs per policy across topologies (probe plane)", MT4},
		{"MT5", "Policy resilience under injected faults (fault plane)", MT5},
		{"MT6", "Sampled trackers: overhead vs accuracy vs throughput (tracker plane)", MT6},
	}
}

// RunAll executes specs concurrently on a bounded worker pool and
// returns their results in spec order, so output is deterministic
// regardless of completion order. workers <= 0 means runtime.NumCPU.
// Every simulation is seeded independently of scheduling, so results
// are identical to a sequential run.
func RunAll(specs []Spec, o Options, workers int) []Result {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	results := make([]Result, len(specs))
	if len(specs) == 0 {
		return results
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstPanic any
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				func() {
					defer func() {
						if p := recover(); p != nil {
							// Capture the failing spec and its original
							// stack; the re-panic below happens on the
							// caller's goroutine, which would otherwise
							// lose both.
							mu.Lock()
							if firstPanic == nil {
								firstPanic = fmt.Sprintf("experiment %s: %v\n%s",
									specs[i].ID, p, debug.Stack())
							}
							mu.Unlock()
						}
					}()
					results[i] = specs[i].Run(o)
				}()
			}
		}()
	}
	for i := range specs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	if firstPanic != nil {
		// Preserve the sequential runner's contract: a failing
		// experiment panics out of RunAll.
		panic(firstPanic)
	}
	return results
}

// Find returns the spec with the given ID.
func Find(id string) (Spec, bool) {
	for _, s := range Registry() {
		if s.ID == id {
			return s, true
		}
	}
	return Spec{}, false
}

// IDs returns all experiment IDs in order.
func IDs() []string {
	specs := Registry()
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.ID
	}
	return out
}

// run executes one scenario and returns (machine, results).
func run(o Options, policy core.Policy, wlName string, ratio [2]uint64, cfgMut ...func(*sim.Config)) (*sim.Machine, *metrics.Run) {
	cfg := sim.Config{
		Seed:     o.Seed,
		Policy:   policy,
		Workload: workload.Catalog[wlName](o.Pages),
		Ratio:    ratio,
		Minutes:  o.Minutes,
		Workers:  o.SimWorkers,
	}
	for _, mut := range cfgMut {
		mut(&cfg)
	}
	m, err := sim.New(cfg)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return m, m.Run()
}

// sortedKeys returns map keys in sorted order (deterministic rendering).
func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
