package experiments

import (
	"fmt"

	"tppsim/internal/core"
	"tppsim/internal/lru"
	"tppsim/internal/mem"
	"tppsim/internal/migrate"
	"tppsim/internal/pagetable"
	"tppsim/internal/reclaim"
	"tppsim/internal/report"
	"tppsim/internal/swap"
	"tppsim/internal/tier"
	"tppsim/internal/vmstat"
	"tppsim/internal/workload"
	"tppsim/internal/xrand"
)

// Fig19 regenerates the head-to-head against the existing page-placement
// mechanisms: local-traffic series for TPP, NUMA Balancing, and
// AutoTiering on Web1 (2:1) and Cache1 (1:4).
func Fig19(o Options) Result {
	o = o.withDefaults()
	t := &report.Table{
		Title:   "Fig. 19 — TPP vs NUMA Balancing vs AutoTiering (local traffic)",
		Columns: []string{"scenario", "TPP", "NUMA Balancing", "AutoTiering"},
	}
	series := map[string]string{}
	scenarios := []struct {
		wl    string
		ratio [2]uint64
	}{
		{"Web1", [2]uint64{2, 1}},
		{"Cache1", [2]uint64{1, 4}},
	}
	for _, sc := range scenarios {
		_, tpp := run(o, core.TPP(), sc.wl, sc.ratio)
		_, nb := run(o, core.NUMABalancing(), sc.wl, sc.ratio)
		_, at := run(o, core.AutoTiering(), sc.wl, sc.ratio)
		label := fmt.Sprintf("%s (%d:%d)", sc.wl, sc.ratio[0], sc.ratio[1])
		atCell := report.Pct(at.AvgLocalTraffic)
		if at.Failed {
			atCell = "Fails"
		}
		t.AddRow(label, report.Pct(tpp.AvgLocalTraffic), report.Pct(nb.AvgLocalTraffic), atCell)
		a, b, c := tpp.LocalTraffic, nb.LocalTraffic, at.LocalTraffic
		a.Name, b.Name, c.Name = "tpp", "numa_balancing", "autotiering"
		series[label] = report.SeriesCSV("minute", &a, &b, &c)
	}
	t.AddNote("paper: NUMA Balancing stalls when the local node is low; AutoTiering cannot run at 1:4")
	return Result{ID: "Fig19", Caption: "Baseline comparison", Table: t, Series: series}
}

// Table3 regenerates "TMO enhances TPP": running TMO's proactive
// reclamation above TPP frees headroom, so TPP's migrations fail less and
// even less traffic hits the CXL node.
func Table3(o Options) Result {
	o = o.withDefaults()
	mTPP, rTPP := run(o, core.TPP(), "Web1", [2]uint64{2, 1})
	mBoth, rBoth := run(o, core.TPP(core.WithTMO()), "Web1", [2]uint64{2, 1})

	secs := float64(o.Minutes) * 60
	failRate := func(m interface{ Stat() *vmstat.NodeStats }) float64 {
		return float64(m.Stat().Get(vmstat.PgmigrateFail)) / secs
	}
	t := &report.Table{
		Title:   "Table 3 — TMO enhances TPP (Web1, 2:1)",
		Columns: []string{"metric", "TPP-only", "TPP with TMO"},
	}
	t.AddRow("migration failure rate (pages/sec)",
		fmt.Sprintf("%.2f", failRate(mTPP)), fmt.Sprintf("%.2f", failRate(mBoth)))
	t.AddRow("CXL-node memory traffic",
		report.Pct(1-rTPP.AvgLocalTraffic), report.Pct(1-rBoth.AvgLocalTraffic))
	t.AddNote("paper: failure rate 20 -> 5 pages/sec; CXL traffic 3.1%% -> 2.7%%")
	return Result{ID: "Table3", Caption: "TMO enhances TPP", Table: t}
}

// Table4 regenerates "TPP enhances TMO": with TPP underneath, TMO's
// reclaim becomes a two-stage demote-then-swap pipeline, cutting process
// stall and increasing the memory it can save.
func Table4(o Options) Result {
	o = o.withDefaults()
	mSolo, _ := run(o, core.TMOOnly(), "Web1", [2]uint64{2, 1})
	mBoth, _ := run(o, core.TPP(core.WithTMO()), "Web1", [2]uint64{2, 1})

	t := &report.Table{
		Title:   "Table 4 — TPP enhances TMO (Web1, 2:1)",
		Columns: []string{"metric", "TMO-only", "TMO with TPP"},
	}
	soloCtl, bothCtl := mSolo.TMO(), mBoth.TMO()
	target := soloCtl.Config().TargetStall
	t.AddRow("process stall (normalized to threshold)",
		report.Pct(soloCtl.AvgStall()/target), report.Pct(bothCtl.AvgStall()/target))
	total := float64(mSolo.Topology().TotalCapacity())
	totalBoth := float64(mBoth.Topology().TotalCapacity())
	t.AddRow("memory saving (% of total capacity)",
		report.Pct(soloCtl.SavedPages()/total), report.Pct(bothCtl.SavedPages()/totalBoth))
	t.AddNote("paper: stall 70%% -> 40%% of threshold; saving 13.5%% -> 16.5%% of capacity")
	return Result{ID: "Table4", Caption: "TPP enhances TMO", Table: t}
}

// X2 measures the §5.1 claim directly with a microbenchmark: how fast can
// each reclaim flavour free a pressured local node? Migration-based
// demotion versus default reclaim over dirty file pages.
func X2(o Options) Result {
	o = o.withDefaults()
	pagesFreedPerTick := func(demotion bool) float64 {
		topo, err := tier.NewCXLSystem(tier.Config{LocalPages: 20000, CXLPages: 40000})
		if err != nil {
			panic(err)
		}
		store := mem.NewStore(60000)
		vecs := []*lru.Vec{lru.NewVec(store), lru.NewVec(store)}
		stat := vmstat.NewNodeStats(topo.NumNodes())
		eng := migrate.NewEngine(migrate.Config{RefsFailProb: -1}, store, topo, vecs, stat, xrand.New(1))
		as := pagetable.New(1)
		var sd *swap.Device // no swap: matches the evaluation machines
		d := reclaim.New(reclaim.Config{DemotionEnabled: demotion, Decoupled: demotion},
			store, topo, vecs, stat, eng, sd, as)
		// Fill the local node with cold dirty file pages.
		r := as.Mmap(20000, mem.File)
		local := topo.Node(0)
		for i := uint64(0); local.Free() > 0; i++ {
			local.Acquire(mem.File)
			pfn := store.Alloc(mem.File, 0)
			pg := store.Page(pfn)
			pg.Flags = pg.Flags.Set(mem.PGDirty)
			vecs[0].Add(pfn, false)
			as.MapPage(r.Start+pagetable.VPN(i), pfn)
		}
		// Measure the first pressured tick, before the daemon reaches its
		// stop watermark — the paper's "how fast can reclaim free the
		// node" question.
		before := local.Free()
		d.Wake(0)
		d.Tick()
		return float64(local.Free() - before)
	}
	demote := pagesFreedPerTick(true)
	dflt := pagesFreedPerTick(false)
	t := &report.Table{
		Title:   "X2 — Reclaim speed under pressure: migration vs default reclaim",
		Columns: []string{"mechanism", "pages freed in one tick", "speedup"},
	}
	t.AddRow("default reclaim (writeback+drop)", report.F1(dflt), "1.0x")
	t.AddRow("TPP demotion (migration)", report.F1(demote), fmt.Sprintf("%.0fx", safeDiv(demote, dflt)))
	t.AddNote("paper: migration is orders of magnitude faster; Default was 44x slower freeing the local node for Web1")
	return Result{ID: "X2", Caption: "Reclaim speed", Table: t}
}

// X3 checks the §7 claim that steady-state migration traffic is tiny
// compared with link bandwidth.
func X3(o Options) Result {
	o = o.withDefaults()
	t := &report.Table{
		Title:   "X3 — Steady-state migration bandwidth under TPP",
		Columns: []string{"workload (ratio)", "migration MB/s (tail mean)", "CXL x16 link"},
	}
	for _, sc := range []struct {
		wl    string
		ratio [2]uint64
	}{
		{"Cache1", [2]uint64{2, 1}},
		{"Cache2", [2]uint64{2, 1}},
	} {
		_, res := run(o, core.TPP(), sc.wl, sc.ratio)
		t.AddRow(fmt.Sprintf("%s (%d:%d)", sc.wl, sc.ratio[0], sc.ratio[1]),
			fmt.Sprintf("%.3f", res.MigrationRate.Tail(0.5)),
			fmt.Sprintf("%.0f MB/s", tier.CXLx16BandwidthMBps))
	}
	t.AddNote("paper: 4-16 MB/s in steady state, far below link bandwidth (values here are at simulator scale)")
	return Result{ID: "X3", Caption: "Migration bandwidth", Table: t}
}

var _ = workload.Names
