package experiments

import (
	"strings"
	"testing"
)

func TestRegistryIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range Registry() {
		if seen[s.ID] {
			t.Fatalf("duplicate experiment ID %s", s.ID)
		}
		seen[s.ID] = true
	}
	if len(seen) != 28 {
		t.Fatalf("registry has %d experiments, want 28", len(seen))
	}
}

func TestFind(t *testing.T) {
	if _, ok := Find("Table1"); !ok {
		t.Fatal("Table1 not found")
	}
	if _, ok := Find("nope"); ok {
		t.Fatal("bogus ID found")
	}
	if len(IDs()) != len(Registry()) {
		t.Fatal("IDs length mismatch")
	}
}

func TestStaticExperiments(t *testing.T) {
	for _, id := range []string{"Fig2", "Fig3", "Fig4", "Fig5"} {
		spec, _ := Find(id)
		res := spec.Run(Options{})
		if res.ID != id {
			t.Errorf("%s: result ID %q", id, res.ID)
		}
		if len(res.Table.Rows) == 0 {
			t.Errorf("%s: empty table", id)
		}
	}
}

func TestFig3TrendIncreasing(t *testing.T) {
	res := Fig3(Options{})
	first := res.Table.Rows[0]
	last := res.Table.Rows[len(res.Table.Rows)-1]
	// Memory share must grow across generations (the motivation trend).
	if !(first[1] < last[1] && first[2] < last[2]) {
		t.Fatalf("memory share not increasing: first=%v last=%v", first, last)
	}
}

func TestX2ShowsLargeSpeedup(t *testing.T) {
	res := X2(Options{})
	if len(res.Table.Rows) != 2 {
		t.Fatalf("X2 rows: %v", res.Table.Rows)
	}
	speedup := res.Table.Rows[1][2]
	if !strings.HasSuffix(speedup, "x") {
		t.Fatalf("speedup cell %q", speedup)
	}
	// Must be at least an order of magnitude.
	if strings.TrimSuffix(speedup, "x") < "10" && len(strings.TrimSuffix(speedup, "x")) < 2 {
		t.Fatalf("speedup too small: %s", speedup)
	}
}

// TestQuickEndToEnd runs representative dynamic experiments at reduced
// scale and sanity-checks the expected shapes.
func TestQuickEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("slow integration test")
	}
	o := Options{Pages: 8 * 1024, Minutes: 20}

	res := Fig18(o)
	// Instant promotion must promote more than the active-LRU filter.
	if len(res.Table.Rows) < 2 {
		t.Fatal("Fig18 incomplete")
	}

	res = Table2(o)
	if len(res.Table.Rows) != 3 {
		t.Fatalf("Table2 rows = %d", len(res.Table.Rows))
	}

	res = Fig16(Options{Pages: 8 * 1024, Minutes: 15})
	if len(res.Table.Rows) != 5 {
		t.Fatalf("Fig16 rows = %d", len(res.Table.Rows))
	}
	if _, ok := res.Series["latency"]; !ok {
		t.Fatal("Fig16 missing latency series")
	}

	res = MT1(Options{Pages: 8 * 1024, Minutes: 15})
	if len(res.Table.Rows) != 3 {
		t.Fatalf("MT1 rows = %d", len(res.Table.Rows))
	}
	// The expander row must show live cascade traffic under TPP.
	far := res.Table.Rows[2]
	if far[3] == "0" || far[4] == "0" {
		t.Fatalf("MT1 expander row shows no far-tier traffic: %v", far)
	}
	if _, ok := res.Series["throughput"]; !ok {
		t.Fatal("MT1 missing throughput series")
	}
}
