package experiments

import (
	"fmt"

	"tppsim/internal/core"
	"tppsim/internal/report"
	"tppsim/internal/vmstat"
)

// Fig17 regenerates the decoupling ablation (§5.2, Fig. 17): allocation
// rate and promotion rate with and without the decoupled
// allocation/reclamation watermarks, on the pressured 1:4 Cache1 setup.
func Fig17(o Options) Result {
	o = o.withDefaults()
	_, with := run(o, core.TPP(), "Cache1", [2]uint64{1, 4})
	_, without := run(o, core.TPP(core.WithoutDecoupling()), "Cache1", [2]uint64{1, 4})

	t := &report.Table{
		Title:   "Fig. 17 — Impact of decoupling allocation and reclamation (Cache1, 1:4)",
		Columns: []string{"metric", "with decoupling", "without decoupling"},
	}
	t.AddRow("local allocation rate p95 (MB/s)",
		fmt.Sprintf("%.3f", with.LocalAllocRate.Percentile(95)), fmt.Sprintf("%.3f", without.LocalAllocRate.Percentile(95)))
	t.AddRow("promotion rate mean (KB/s)",
		report.F1(with.PromotionRate.Mean()), report.F1(without.PromotionRate.Mean()))
	t.AddRow("promotion rate p99 (KB/s)",
		report.F1(with.PromotionRate.Percentile(99)), report.F1(without.PromotionRate.Percentile(99)))
	t.AddRow("local traffic", report.Pct(with.AvgLocalTraffic), report.Pct(without.AvgLocalTraffic))
	t.AddRow("throughput", report.Pct(with.NormalizedThroughput), report.Pct(without.NormalizedThroughput))
	wa, wb := with.LocalAllocRate, without.LocalAllocRate
	wa.Name, wb.Name = "with_decoupling", "without_decoupling"
	pa, pb := with.PromotionRate, without.PromotionRate
	pa.Name, pb.Name = "with_decoupling", "without_decoupling"
	series := map[string]string{
		"alloc_rate":     report.SeriesCSV("minute", &wa, &wb),
		"promotion_rate": report.SeriesCSV("minute", &pa, &pb),
	}
	t.AddNote("paper: without decoupling, allocation is clamped by reclaim and promotion almost halts; with it, allocation bursts pass and promotion sustains a steady rate")
	return Result{ID: "Fig17", Caption: "Decoupling ablation", Table: t, Series: series}
}

// Fig18 regenerates the active-LRU promotion-filter ablation (§5.3,
// Fig. 18): restricting promotion candidates by LRU age versus instant
// opportunistic promotion.
func Fig18(o Options) Result {
	o = o.withDefaults()
	mActive, active := run(o, core.TPP(), "Cache1", [2]uint64{1, 4})
	mInstant, instant := run(o, core.TPP(core.WithInstantPromotion()), "Cache1", [2]uint64{1, 4})

	t := &report.Table{
		Title:   "Fig. 18 — Active-LRU-based promotion filter (Cache1, 1:4)",
		Columns: []string{"metric", "active-LRU filter", "instant promotion"},
	}
	aStat := mActive.Stat().Snapshot()
	iStat := mInstant.Stat().Snapshot()
	t.AddRow("promoted pages", fmt.Sprint(aStat.Get(vmstat.PgpromoteSuccess)), fmt.Sprint(iStat.Get(vmstat.PgpromoteSuccess)))
	t.AddRow("ping-pong promotions", fmt.Sprint(aStat.Get(vmstat.PgpromoteDemoted)), fmt.Sprint(iStat.Get(vmstat.PgpromoteDemoted)))
	t.AddRow("local traffic", report.Pct(active.AvgLocalTraffic), report.Pct(instant.AvgLocalTraffic))
	t.AddRow("throughput", report.Pct(active.NormalizedThroughput), report.Pct(instant.NormalizedThroughput))
	la, li := active.LocalTraffic, instant.LocalTraffic
	la.Name, li.Name = "active_lru", "instant"
	series := map[string]string{"local_traffic": report.SeriesCSV("minute", &la, &li)}
	t.AddNote("paper: the filter cuts promotion traffic ~11x and demote-then-promote ping-pong ~50%% while converging to the same steady state")
	return Result{ID: "Fig18", Caption: "Active-LRU ablation", Table: t, Series: series}
}

// Table2 regenerates the page-type-aware allocation results (§5.4):
// preferring CXL for caches lets small-local configurations behave like
// all-local ones.
func Table2(o Options) Result {
	o = o.withDefaults()
	t := &report.Table{
		Title:   "Table 2 — Page-type-aware allocation",
		Columns: []string{"workload (ratio)", "local traffic", "CXL traffic", "throughput vs baseline"},
	}
	rows := []struct {
		wl    string
		ratio [2]uint64
	}{
		{"Web1", [2]uint64{2, 1}},
		{"Cache1", [2]uint64{1, 4}},
		{"Cache2", [2]uint64{1, 4}},
	}
	for _, r := range rows {
		_, res := run(o, core.TPP(core.WithPageTypeAware()), r.wl, r.ratio)
		t.AddRow(fmt.Sprintf("%s (%d:%d)", r.wl, r.ratio[0], r.ratio[1]),
			report.Pct(res.AvgLocalTraffic), report.Pct(1-res.AvgLocalTraffic),
			report.Pct(res.NormalizedThroughput))
	}
	t.AddNote("paper: 97/85/72%% local traffic with 99.5/99.8/98.5%% of baseline throughput")
	return Result{ID: "Table2", Caption: "Page-type-aware allocation", Table: t}
}

// X1 regenerates the §6.2 active-LRU scalar claims directly from the
// counters: promotion-rate reduction, ping-pong reduction, and promotion
// success-rate improvement.
func X1(o Options) Result {
	o = o.withDefaults()
	mActive, _ := run(o, core.TPP(), "Cache1", [2]uint64{1, 4})
	mInstant, _ := run(o, core.TPP(core.WithInstantPromotion()), "Cache1", [2]uint64{1, 4})
	a := mActive.Stat().Snapshot()
	i := mInstant.Stat().Snapshot()

	rate := func(s vmstat.Snapshot) float64 { return float64(s.Get(vmstat.PgpromoteSuccess)) }
	pp := func(s vmstat.Snapshot) float64 {
		if s.Get(vmstat.PgpromoteSuccess) == 0 {
			return 0
		}
		return float64(s.Get(vmstat.PgpromoteDemoted)) / float64(s.Get(vmstat.PgpromoteSuccess))
	}
	succ := func(s vmstat.Snapshot) float64 {
		att := s.Get(vmstat.PgpromoteCandidate)
		if att == 0 {
			return 0
		}
		return float64(s.Get(vmstat.PgpromoteSuccess)) / float64(att)
	}

	t := &report.Table{
		Title:   "X1 — Active-LRU filter scalars (§6.2, Cache1 1:4)",
		Columns: []string{"metric", "active-LRU filter", "instant promotion", "ratio"},
	}
	t.AddRow("promotions", report.F1(rate(a)), report.F1(rate(i)), fmt.Sprintf("%.1fx fewer", safeDiv(rate(i), rate(a))))
	t.AddRow("ping-pong share", report.Pct(pp(a)), report.Pct(pp(i)), "")
	t.AddRow("promotion success rate", report.Pct(succ(a)), report.Pct(succ(i)), "")
	t.AddNote("paper: promotion rate down 11x, demoted-then-promoted down 50%%, success rate up 48%%")
	return Result{ID: "X1", Caption: "Active-LRU scalars", Table: t}
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
