package experiments

import (
	"fmt"

	"tppsim/internal/core"
	"tppsim/internal/probe"
	"tppsim/internal/report"
	"tppsim/internal/sim"
	"tppsim/internal/tier"
)

// MT4 produces the paper's Fig. 6-style access-latency demographics
// from the distribution plane: for each topology preset (the 2:1 CXL
// box, the dual-socket machine, the 3-tier expander) it runs Default
// Linux and TPP with the latency histograms on, reports each run's
// percentile digest plus the share of accesses served from CXL nodes
// (the "CXL tax"), and emits one CSV block per preset with the
// per-policy CDF columns — cumulative fraction of accesses at or below
// each latency bound, ready to plot as CDF curves.
func MT4(o Options) Result {
	o = o.withDefaults()
	probed := func(c *sim.Config) { c.ProbeLatency = true }
	presets := []struct {
		label string
		spec  tier.Spec
	}{
		{"cxl 2:1", tier.PresetCXL(2, 1)},
		{"dualsocket 2:2:1:1", tier.PresetDualSocket()},
		{"expander 2:1:1", tier.PresetExpander(2, 1, 1)},
	}
	policies := []struct {
		label  string
		policy core.Policy
	}{
		{"default", core.DefaultLinux()},
		{"tpp", core.TPP()},
	}
	t := &report.Table{
		Title: "MT4 — access-latency demographics per policy (Web1)",
		Columns: []string{"topology", "policy", "accesses", "mean",
			"p50", "p90", "p99", "p99.9", "cxl-served"},
	}
	seriesOut := map[string]string{}
	for _, pre := range presets {
		hists := make([]*probe.Histogram, 0, len(policies))
		names := make([]string, 0, len(policies))
		label := pre.label
		for _, pol := range policies {
			_, res := runTopo(o, pol.policy, "Web1", pre.spec, probed)
			if res.Failed {
				t.AddRow(label, pol.label, "FAILS: "+res.FailReason)
				label = ""
				continue
			}
			total := res.LatencyHist.TotalAccess()
			var cxlServed uint64
			for _, n := range res.Nodes {
				if n.Kind == "cxl" {
					cxlServed += res.LatencyHist.Access[n.ID].Count()
				}
			}
			share := 0.0
			if c := total.Count(); c > 0 {
				share = float64(cxlServed) / float64(c)
			}
			s := total.Percentiles()
			t.AddRow(label, pol.label,
				fmt.Sprintf("%d", s.Count),
				fmt.Sprintf("%.0fns", s.Mean),
				report.Dur(s.P50), report.Dur(s.P90),
				report.Dur(s.P99), report.Dur(s.P999),
				report.Pct(share))
			label = "" // preset label only on its first row
			h := total
			hists = append(hists, &h)
			names = append(names, pol.label)
		}
		if len(hists) > 0 {
			seriesOut["cdf_"+slug(pre.label)] = report.CDFColumnsCSV(hists, names)
		}
	}
	t.AddNote("percentiles are log2-bucket upper bounds; cxl-served is the fraction of sampled accesses a CXL node answered (the CXL tax TPP shrinks)")
	return Result{
		ID: "MT4", Caption: "Access-latency CDFs per policy across topologies",
		Table: t, Series: seriesOut,
	}
}
