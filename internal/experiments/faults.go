package experiments

import (
	"fmt"

	"tppsim/internal/core"
	"tppsim/internal/fault"
	"tppsim/internal/metrics"
	"tppsim/internal/report"
	"tppsim/internal/sim"
	"tppsim/internal/tier"
	"tppsim/internal/vmstat"
	"tppsim/internal/workload"
)

// MT5 measures policy resilience: TPP driving Web1 on each topology
// while the fault plane injects a mid-run failure window — a latency
// brown-out of the CXL device plus transient migration failures, or a
// full hot-remove of the deepest CXL node. Reported per scenario:
// steady-state throughput, recovery time (minutes after the window
// closes until throughput regains 95% of its pre-fault baseline), and
// the fault counters (pages evacuated, migration retries, pages
// dropped after backoff exhaustion).
func MT5(o Options) Result {
	o = o.withDefaults()
	ticks := uint64(o.Minutes) * workload.TicksPerMinute
	fStart, fEnd := ticks*2/5, ticks*3/5

	t := &report.Table{
		Title: "MT5 — TPP resilience under injected faults (Web1)",
		Columns: []string{"topology", "faults", "throughput", "recovery (min)",
			"evacuated", "retries", "drops"},
	}

	topos := []struct {
		label string
		spec  tier.Spec
		// victim is the CXL node the fault window targets: the deepest
		// (slowest) expander of the topology.
		victim int
	}{
		{"cxl 2:1", tier.PresetCXL(2, 1), 1},
		{"dual-socket", tier.PresetDualSocket(), 3},
		{"expander 2:1:1", tier.PresetExpander(2, 1, 1), 2},
	}
	intensities := []struct {
		label string
		sched func(victim int) fault.Schedule
	}{
		{"none", func(int) fault.Schedule { return fault.Schedule{} }},
		{"degraded", func(victim int) fault.Schedule {
			return fault.Schedule{Seed: 42, Events: []fault.Event{
				{Kind: fault.LatencyDegrade, Node: victim, At: fStart, Until: fEnd, Mult: 3, Jitter: 0.1},
				{Kind: fault.MigFailBegin, Node: -1, At: fStart, Until: fEnd, Prob: 0.2},
			}}
		}},
		{"offline", func(victim int) fault.Schedule {
			return fault.Schedule{Seed: 42, Events: []fault.Event{
				{Kind: fault.NodeOffline, Node: victim, At: fStart, Until: fEnd},
			}}
		}},
	}

	faultEndMin := float64(fEnd) / workload.TicksPerMinute
	for _, tp := range topos {
		for _, in := range intensities {
			sched := in.sched(tp.victim)
			m, res := runTopo(o, core.TPP(), "Web1", tp.spec, func(cfg *sim.Config) {
				cfg.Faults = sched
			})
			recovery := "-"
			if !sched.Empty() && !res.Failed {
				recovery = recoveryCell(&res.Throughput, float64(fStart)/workload.TicksPerMinute, faultEndMin)
			}
			st := m.Stat()
			t.AddRow(tp.label, in.label, cellTput(res), recovery,
				fmt.Sprintf("%d", st.Get(vmstat.EvacuatedPages)),
				fmt.Sprintf("%d", st.Get(vmstat.MigrateRetry)),
				fmt.Sprintf("%d", st.Get(vmstat.MigrateBackoffDrop)))
		}
	}
	t.AddNote("fault window ticks [%d, %d); offline = hot-remove of the deepest CXL node with emergency evacuation, degraded = 3x latency brown-out with 20%% transient migration failures", fStart, fEnd)
	t.AddNote("recovery = minutes past window close until throughput regains 95%% of its pre-fault mean")
	return Result{ID: "MT5", Caption: "Policy resilience under injected faults", Table: t}
}

// recoveryCell scans a throughput series for the first post-window
// point back at 95% of the pre-fault baseline.
func recoveryCell(s *metrics.Series, faultStartMin, faultEndMin float64) string {
	var base float64
	var n int
	for i, x := range s.X {
		if x >= faultStartMin {
			break
		}
		base += s.Y[i]
		n++
	}
	if n == 0 {
		return "-"
	}
	base /= float64(n)
	for i, x := range s.X {
		if x < faultEndMin {
			continue
		}
		if s.Y[i] >= 0.95*base {
			return report.F1(x - faultEndMin)
		}
	}
	return "never"
}
