package experiments

import (
	"fmt"

	"tppsim/internal/report"
	"tppsim/internal/tier"
)

// Fig2 regenerates the latency-hierarchy table (Fig. 2): the operating
// points the simulator's tier traits are built from.
func Fig2(o Options) Result {
	t := &report.Table{
		Title:   "Fig. 2 — Latency characteristics of memory technologies",
		Columns: []string{"technology", "attachment", "latency"},
	}
	rows := [][3]string{
		{"register", "CPU", "0.2 ns"},
		{"cache (L1-L3)", "CPU", "1-40 ns"},
		{"main memory (DDR)", "CPU-attached", "80-140 ns"},
		{"CXL-Memory", "CXL (CPU-independent)", "170-250 ns"},
		{"NVM", "CPU-attached", "300-400 ns"},
		{"disaggregated memory", "network", "2-4 us"},
		{"SSD", "PCIe", "10-40 us"},
		{"HDD", "SATA", "3-10 ms"},
	}
	for _, r := range rows {
		t.AddRow(r[0], r[1], r[2])
	}
	t.AddNote("simulator defaults: local %.0f ns, CXL %.0f ns (sweep %.0f-%.0f)",
		tier.LocalDRAMLatencyNs, tier.CXLLatencyDefaultNs, tier.CXLLatencyMinNs, tier.CXLLatencyMaxNs)
	return Result{ID: "Fig2", Caption: "Latency hierarchy", Table: t}
}

// rackGen describes one hardware generation of the TCO model behind
// Fig. 3: per-rack compute and memory power/cost. The memory share grows
// generation over generation as DRAM price/power outpace the rest of the
// platform — the trend that motivates tiering. Values are chosen to
// reproduce the paper's reported shares.
type rackGen struct {
	name                     string
	computePowerW, memPowerW float64
	computeCost, memCost     float64
}

var rackGens = []rackGen{
	{"Gen0", 350, 60, 5400, 1000},
	{"Gen1", 340, 84, 5100, 1750},
	{"Gen2", 355, 87, 5500, 1520},
	{"Gen3", 360, 94, 5800, 1560},
	{"Gen4", 336, 136, 5300, 2470},
	{"Gen5", 320, 160, 5100, 3010},
}

// Fig3 regenerates the memory-share-of-rack trend (Fig. 3) from the TCO
// model.
func Fig3(o Options) Result {
	t := &report.Table{
		Title:   "Fig. 3 — Memory as a percentage of rack power and TCO",
		Columns: []string{"generation", "power share", "cost share"},
	}
	for _, g := range rackGens {
		power := g.memPowerW / (g.memPowerW + g.computePowerW)
		cost := g.memCost / (g.memCost + g.computeCost)
		t.AddRow(g.name, report.Pct(power), report.Pct(cost))
	}
	t.AddNote("paper reports power 14.6->33.3%% and cost 15.6->37.1%% across Gen0-Gen5")
	return Result{ID: "Fig3", Caption: "Memory share of rack TCO/power", Table: t}
}

// ddrGen is one point of Fig. 4: peak per-DIMM capacity and per-channel
// bandwidth relative to Gen0.
type ddrGen struct {
	name      string
	capacityX float64
	bwX       float64
}

var ddrGens = []ddrGen{
	{"Gen0", 1, 1.0},
	{"Gen1", 1, 1.2},
	{"Gen2", 4, 1.4},
	{"Gen3", 4, 1.6},
	{"Gen4", 8, 1.8},
	{"Gen5", 8, 2.0},
	{"Gen6", 8, 2.2},
	{"Gen7", 16, 3.6},
}

// Fig4 regenerates the capacity-vs-bandwidth scaling divergence (Fig. 4):
// capacity comes in power-of-two jumps while bandwidth creeps — the
// coupling CXL breaks.
func Fig4(o Options) Result {
	t := &report.Table{
		Title:   "Fig. 4 — Memory bandwidth and capacity scaling over generations",
		Columns: []string{"generation", "capacity (x)", "bandwidth (x)"},
	}
	for _, g := range ddrGens {
		t.AddRow(g.name, fmt.Sprintf("%.0fx", g.capacityX), fmt.Sprintf("%.1fx", g.bwX))
	}
	return Result{ID: "Fig4", Caption: "DDR scaling", Table: t}
}

// Fig5 regenerates the CXL-vs-dual-socket comparison (Fig. 5) from the
// topology constants.
func Fig5(o Options) Result {
	t := &report.Table{
		Title:   "Fig. 5 — CXL system vs dual-socket server",
		Columns: []string{"link", "bandwidth", "latency"},
	}
	t.AddRow("DDR channel (local)", fmt.Sprintf("%.1f GB/s", tier.DDRChannelBandwidthMBps/1000), fmt.Sprintf("~%.0f ns", tier.LocalDRAMLatencyNs))
	t.AddRow("cross-socket interconnect", fmt.Sprintf("%.0f GB/s per link", tier.CrossSocketBandwidthMBps/1000), fmt.Sprintf("~%.0f ns", tier.RemoteSocketLatency))
	t.AddRow("CXL x16 link", fmt.Sprintf("%.0f GB/s", tier.CXLx16BandwidthMBps/1000), fmt.Sprintf("~%.0f-%.0f ns", tier.CXLLatencyMinNs, tier.CXLLatencyMaxNs))
	t.AddNote("CXL behaves like a remote NUMA node: same order of latency, more bandwidth than a socket link")
	return Result{ID: "Fig5", Caption: "CXL vs NUMA", Table: t}
}
