package experiments

import (
	"fmt"

	"tppsim/internal/core"
	"tppsim/internal/metrics"
	"tppsim/internal/report"
	"tppsim/internal/sim"
	"tppsim/internal/vmstat"
)

// table1Row is one configuration of Table 1.
type table1Row struct {
	workload string
	ratio    [2]uint64
	// skipBaselines mirrors the paper's "-" cells (Warehouse is only run
	// under Default and TPP).
	skipBaselines bool
}

var table1Rows = []table1Row{
	{"Web1", [2]uint64{2, 1}, false},
	{"Cache1", [2]uint64{2, 1}, false},
	{"Cache1", [2]uint64{1, 4}, false},
	{"Cache2", [2]uint64{2, 1}, false},
	{"Cache2", [2]uint64{1, 4}, false},
	{"Warehouse", [2]uint64{2, 1}, true},
}

// Table1 regenerates the headline evaluation: normalized throughput of
// Default Linux, TPP, NUMA Balancing, and AutoTiering on every
// workload/ratio configuration.
func Table1(o Options) Result {
	o = o.withDefaults()
	t := &report.Table{
		Title:   "Table 1 — Throughput (%) normalized to the all-local baseline",
		Columns: []string{"workload (local:cxl)", "Default Linux", "TPP", "NUMA Balancing", "AutoTiering"},
	}
	for _, row := range table1Rows {
		label := fmt.Sprintf("%s (%d:%d)", row.workload, row.ratio[0], row.ratio[1])
		cells := []string{label}
		policies := core.All()
		for i, p := range policies {
			if row.skipBaselines && i >= 2 {
				cells = append(cells, "-")
				continue
			}
			_, res := run(o, p, row.workload, row.ratio)
			if res.Failed {
				cells = append(cells, "Fails")
			} else {
				cells = append(cells, report.F1(100*res.NormalizedThroughput))
			}
		}
		t.AddRow(cells...)
	}
	t.AddNote("paper: TPP within 1-5%% of baseline everywhere; Default loses up to ~18%%; AutoTiering fails at 1:4")
	return Result{ID: "Table1", Caption: "Normalized throughput", Table: t}
}

// Fig14 regenerates the local-traffic-over-time comparison: All-Local vs
// TPP vs Default Linux on the production 2:1 configuration.
func Fig14(o Options) Result {
	o = o.withDefaults()
	t := &report.Table{
		Title:   "Fig. 14 — Fraction of memory accesses served from the local node (2:1)",
		Columns: []string{"workload", "All-Local", "TPP", "Default"},
	}
	series := map[string]string{}
	for _, name := range fig9Workloads {
		_, all := run(o, core.DefaultLinux(), name, [2]uint64{1, 0})
		_, tpp := run(o, core.TPP(), name, [2]uint64{2, 1})
		_, def := run(o, core.DefaultLinux(), name, [2]uint64{2, 1})
		a, b, c := all.LocalTraffic, tpp.LocalTraffic, def.LocalTraffic
		a.Name, b.Name, c.Name = "all_local", "tpp", "default"
		series[name] = report.SeriesCSV("minute", &a, &b, &c)
		t.AddRow(name, report.Pct(all.AvgLocalTraffic), report.Pct(tpp.AvgLocalTraffic), report.Pct(def.AvgLocalTraffic))
	}
	t.AddNote("paper: TPP tracks the all-local line; Default collapses for Web1 (~22%% local)")
	return Result{ID: "Fig14", Caption: "Local traffic (2:1)", Table: t, Series: series}
}

// Fig15 regenerates the memory-constrained (1:4) local-traffic series for
// the Cache workloads.
func Fig15(o Options) Result {
	o = o.withDefaults()
	t := &report.Table{
		Title:   "Fig. 15 — Effectiveness of TPP under memory constraint (1:4)",
		Columns: []string{"workload", "All-Local", "TPP", "Default"},
	}
	series := map[string]string{}
	for _, name := range []string{"Cache1", "Cache2"} {
		_, all := run(o, core.DefaultLinux(), name, [2]uint64{1, 0})
		_, tpp := run(o, core.TPP(), name, [2]uint64{1, 4})
		_, def := run(o, core.DefaultLinux(), name, [2]uint64{1, 4})
		a, b, c := all.LocalTraffic, tpp.LocalTraffic, def.LocalTraffic
		a.Name, b.Name, c.Name = "all_local", "tpp", "default"
		series[name] = report.SeriesCSV("minute", &a, &b, &c)
		t.AddRow(name, report.Pct(all.AvgLocalTraffic), report.Pct(tpp.AvgLocalTraffic), report.Pct(def.AvgLocalTraffic))
	}
	t.AddNote("paper: Cache1 reaches ~85%% local with local DRAM only 20%% of the working set")
	return Result{ID: "Fig15", Caption: "Constrained local traffic", Table: t, Series: series}
}

// Fig16 regenerates the CXL-latency sweep: average memory-latency
// increase over all-local and throughput loss, Default vs TPP, as the
// CXL-Memory latency varies across its plausible band.
func Fig16(o Options) Result {
	o = o.withDefaults()
	t := &report.Table{
		Title:   "Fig. 16 — Cache2 (2:1) with varied CXL-Memory latency",
		Columns: []string{"CXL latency", "Default +lat (ns)", "TPP +lat (ns)", "Default loss", "TPP loss"},
	}
	var defLat, tppLat, defLoss, tppLoss metrics.Series
	defLat.Name, tppLat.Name, defLoss.Name, tppLoss.Name = "default_dlat", "tpp_dlat", "default_loss", "tpp_loss"
	for _, lat := range []float64{220, 240, 260, 280, 300} {
		// Per-node override on node 1, the CXL node — the same sweep
		// works on any topology by overriding the node under study.
		mut := func(c *sim.Config) { c.NodeLatencyNs = []float64{0, lat} }
		_, def := run(o, core.DefaultLinux(), "Cache2", [2]uint64{2, 1}, mut)
		_, tpp := run(o, core.TPP(), "Cache2", [2]uint64{2, 1}, mut)
		dl := def.AvgLatencyNs - 100
		tl := tpp.AvgLatencyNs - 100
		dLoss := 1 - def.NormalizedThroughput
		tLoss := 1 - tpp.NormalizedThroughput
		defLat.Append(lat, dl)
		tppLat.Append(lat, tl)
		defLoss.Append(lat, dLoss)
		tppLoss.Append(lat, tLoss)
		t.AddRow(fmt.Sprintf("%.0f ns", lat),
			report.F1(dl), report.F1(tl), report.Pct(dLoss), report.Pct(tLoss))
	}
	series := map[string]string{
		"latency":    report.SeriesCSV("cxl_latency_ns", &defLat, &tppLat),
		"throughput": report.SeriesCSV("cxl_latency_ns", &defLoss, &tppLoss),
	}
	t.AddNote("paper: Default's added latency grows steeply with CXL latency (up to ~7x TPP's); TPP stays nearly flat")
	return Result{ID: "Fig16", Caption: "Latency sweep", Table: t, Series: series}
}

// ensure vmstat is linked for the baseline files in this package.
var _ = vmstat.PgpromoteSuccess
