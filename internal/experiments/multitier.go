package experiments

import (
	"fmt"

	"tppsim/internal/core"
	"tppsim/internal/metrics"
	"tppsim/internal/report"
	"tppsim/internal/sim"
	"tppsim/internal/tier"
	"tppsim/internal/vmstat"
	"tppsim/internal/workload"
)

// runTopo executes one scenario on an explicit topology spec.
func runTopo(o Options, policy core.Policy, wlName string, spec tier.Spec) (*sim.Machine, *metrics.Run) {
	m, err := sim.New(sim.Config{
		Seed:     o.Seed,
		Policy:   policy,
		Workload: workload.Catalog[wlName](o.Pages),
		Topology: spec,
		Minutes:  o.Minutes,
	})
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return m, m.Run()
}

// MT1 measures throughput against memory-tier depth: the same workload
// and total capacity headroom on an all-local machine (depth 1), the
// paper's 2-node CXL box (depth 2), and the 3-tier multi-hop expander
// (depth 3), under Default Linux and TPP. The expander rows also report
// the cascade traffic: demotions into and promotions out of the far
// tier, which only a topology-aware mechanism generates.
func MT1(o Options) Result {
	o = o.withDefaults()
	t := &report.Table{
		Title: "MT1 — Cache2 throughput vs memory-tier depth",
		Columns: []string{"topology (depth)", "Default Linux", "TPP",
			"TPP demote far", "TPP promote far"},
	}
	depths := []struct {
		label string
		spec  tier.Spec
	}{
		{"all-local (1)", tier.PresetCXL(1, 0)},
		{"cxl 2:1 (2)", tier.PresetCXL(2, 1)},
		{"expander 2:1:1 (3)", tier.PresetExpander(2, 1, 1)},
	}
	var defTput, tppTput metrics.Series
	defTput.Name, tppTput.Name = "default", "tpp"
	for i, d := range depths {
		_, def := runTopo(o, core.DefaultLinux(), "Cache2", d.spec)
		tm, tpp := runTopo(o, core.TPP(), "Cache2", d.spec)
		depth := float64(i + 1)
		defTput.Append(depth, def.NormalizedThroughput)
		tppTput.Append(depth, tpp.NormalizedThroughput)
		far := tm.Stat()
		t.AddRow(d.label,
			cellTput(def), cellTput(tpp),
			fmt.Sprintf("%d", far.Get(vmstat.PgdemoteFar)),
			fmt.Sprintf("%d", far.Get(vmstat.PgpromoteFar)))
	}
	t.AddNote("TPP holds throughput as tiers deepen; Default strands hot pages wherever the flood left them")
	return Result{
		ID: "MT1", Caption: "Throughput vs tier depth", Table: t,
		Series: map[string]string{"throughput": report.SeriesCSV("tier_depth", &defTput, &tppTput)},
	}
}

func cellTput(r *metrics.Run) string {
	if r.Failed {
		return "Fails"
	}
	return report.F1(100 * r.NormalizedThroughput)
}
