package experiments

import (
	"fmt"

	"tppsim/internal/core"
	"tppsim/internal/mem"
	"tppsim/internal/metrics"
	"tppsim/internal/report"
	"tppsim/internal/series"
	"tppsim/internal/sim"
	"tppsim/internal/tier"
	"tppsim/internal/vmstat"
	"tppsim/internal/workload"
)

// runTopo executes one scenario on an explicit topology spec; optional
// mutators adjust the config before assembly.
func runTopo(o Options, policy core.Policy, wlName string, spec tier.Spec, cfgMut ...func(*sim.Config)) (*sim.Machine, *metrics.Run) {
	cfg := sim.Config{
		Seed:     o.Seed,
		Policy:   policy,
		Workload: workload.Catalog[wlName](o.Pages),
		Topology: spec,
		Minutes:  o.Minutes,
	}
	for _, mut := range cfgMut {
		mut(&cfg)
	}
	m, err := sim.New(cfg)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return m, m.Run()
}

// MT1 measures throughput against memory-tier depth: the same workload
// and total capacity headroom on an all-local machine (depth 1), the
// paper's 2-node CXL box (depth 2), and the 3-tier multi-hop expander
// (depth 3), under Default Linux and TPP. The expander rows also report
// the cascade traffic: demotions into and promotions out of the far
// tier, which only a topology-aware mechanism generates.
func MT1(o Options) Result {
	o = o.withDefaults()
	t := &report.Table{
		Title: "MT1 — Cache2 throughput vs memory-tier depth",
		Columns: []string{"topology (depth)", "Default Linux", "TPP",
			"TPP demote far", "TPP promote far"},
	}
	depths := []struct {
		label string
		spec  tier.Spec
	}{
		{"all-local (1)", tier.PresetCXL(1, 0)},
		{"cxl 2:1 (2)", tier.PresetCXL(2, 1)},
		{"expander 2:1:1 (3)", tier.PresetExpander(2, 1, 1)},
	}
	var defTput, tppTput metrics.Series
	defTput.Name, tppTput.Name = "default", "tpp"
	for i, d := range depths {
		_, def := runTopo(o, core.DefaultLinux(), "Cache2", d.spec)
		tm, tpp := runTopo(o, core.TPP(), "Cache2", d.spec)
		depth := float64(i + 1)
		defTput.Append(depth, def.NormalizedThroughput)
		tppTput.Append(depth, tpp.NormalizedThroughput)
		far := tm.Stat()
		t.AddRow(d.label,
			cellTput(def), cellTput(tpp),
			fmt.Sprintf("%d", far.Get(vmstat.PgdemoteFar)),
			fmt.Sprintf("%d", far.Get(vmstat.PgpromoteFar)))
	}
	t.AddNote("TPP holds throughput as tiers deepen; Default strands hot pages wherever the flood left them")
	return Result{
		ID: "MT1", Caption: "Throughput vs tier depth", Table: t,
		Series: map[string]string{"throughput": report.SeriesCSV("tier_depth", &defTput, &tppTput)},
	}
}

func cellTput(r *metrics.Run) string {
	if r.Failed {
		return "Fails"
	}
	return report.F1(100 * r.NormalizedThroughput)
}

// MT2 sweeps TPP over topology *shapes*: share mixes and distance
// matrices beyond the presets — the symmetric dual-socket machine, an
// asymmetric dual-socket (one socket with most of the DRAM), and a
// 4-deep daisy chain — and reports the per-node flows from the
// node-indexed stats plane: where pages sat at the end, where
// allocations landed, and how many pages each node demoted away,
// received by promotion, or hint-faulted. Each scenario's counter
// columns sum exactly to the run's global vmstat values.
func MT2(o Options) Result {
	o = o.withDefaults()
	scenarios := []struct {
		label string
		spec  tier.Spec
	}{
		{"dualsocket 2:2:1:1", tier.PresetDualSocket()},
		{"dualsocket asym 3:1:1:1", asymDualSocket()},
		{"chain4 4:2:1:1", chain4()},
	}
	t := &report.Table{
		Title: "MT2 — TPP per-node flows across share mixes and distance matrices",
		Columns: []string{"scenario", "node", "kind", "tier", "resident",
			"pgalloc", "pgdemote", "pgpromote", "hint faults"},
	}
	series := map[string]string{}
	for _, sc := range scenarios {
		_, res := runTopo(o, core.TPP(), "Cache2", sc.spec)
		label := sc.label
		if res.Failed {
			t.AddRow(label, "-", "-", "-", "FAILS: "+res.FailReason)
			continue
		}
		var resid metrics.Series
		resid.Name = "resident"
		for _, n := range res.Nodes {
			t.AddRow(label,
				fmt.Sprintf("%d", n.ID), n.Kind, fmt.Sprintf("%d", n.Tier),
				fmt.Sprintf("%d/%d", n.ResidentPages, n.CapacityPages),
				fmt.Sprintf("%d", n.Get(vmstat.PgallocLocal)+n.Get(vmstat.PgallocCXL)),
				fmt.Sprintf("%d", n.Get(vmstat.PgdemoteKswapd)+n.Get(vmstat.PgdemoteDirect)),
				fmt.Sprintf("%d", n.Get(vmstat.PgpromoteSuccess)),
				fmt.Sprintf("%d", n.Get(vmstat.NumaHintFaults)))
			label = "" // scenario name only on its first row
			resid.Append(float64(n.ID), float64(n.ResidentPages))
		}
		series["residency_"+slug(sc.label)] = report.SeriesCSV("node", &resid)
	}
	t.AddNote("per-node counters sum exactly to the run's global vmstat (the stats-plane invariant)")
	t.AddNote("asym dual-socket: socket 0 holds 3/6 of capacity; chain4 cascades local -> cxl -> cxl -> cxl one hop at a time")
	return Result{ID: "MT2", Caption: "Per-node flows across topology shapes", Table: t, Series: series}
}

// MT3 produces the dual-socket residency/flow-over-time figure data:
// TPP on the §7 dual-socket machine with the per-tick per-node series
// plane sampling every tick, emitted as columnar CSV — each socket's
// residency filling and draining, and the promotion/demotion flows
// between the sockets and their expanders, over the whole run (the
// multi-socket analogue of the paper's Fig. 9/Fig. 17 time axes). The
// table summarizes the steady state: per-node residency at the end plus
// total promotion/demotion flow through each node.
func MT3(o Options) Result {
	o = o.withDefaults()
	_, res := runTopo(o, core.TPP(), "Cache2", tier.PresetDualSocket(),
		func(c *sim.Config) { c.SampleEveryTicks = 1 })
	t := &report.Table{
		Title: "MT3 — dual-socket residency and flows over time (TPP/Cache2)",
		Columns: []string{"node", "kind", "tier", "resident (end)", "util",
			"promote total", "demote total", "resident p50 (series)"},
	}
	if res.Failed {
		t.AddRow("-", "-", "-", "FAILS: "+res.FailReason)
		return Result{ID: "MT3", Caption: "Dual-socket residency/flows over time", Table: t}
	}
	s := res.NodeSeries
	for _, n := range res.Nodes {
		resid := make([]float64, s.Len())
		for i := range resid {
			resid[i] = float64(s.Level(n.ID, series.LevelResident, i))
		}
		util := 0.0
		if n.CapacityPages > 0 {
			util = float64(n.ResidentPages) / float64(n.CapacityPages)
		}
		t.AddRow(
			fmt.Sprintf("%d", n.ID), n.Kind, fmt.Sprintf("%d", n.Tier),
			fmt.Sprintf("%d/%d", n.ResidentPages, n.CapacityPages),
			report.Pct(util),
			fmt.Sprintf("%d", s.DeltaTotal(n.ID, vmstat.PgpromoteSuccess)),
			fmt.Sprintf("%d", s.DeltaTotal(n.ID, vmstat.PgdemoteKswapd)+s.DeltaTotal(n.ID, vmstat.PgdemoteDirect)),
			fmt.Sprintf("%.0f", metrics.Percentile(resid, 50)))
	}
	t.AddNote("series plane sampled every tick (self-coarsened to %d windows x %d ticks); flow totals equal the run's global counters", s.Len(), s.Cadence())
	labels := report.NodeLabels(res.Nodes, s.Nodes())
	return Result{
		ID: "MT3", Caption: "Dual-socket residency/flows over time", Table: t,
		Series: map[string]string{"node_series": report.SeriesColumnsCSV(s, labels)},
	}
}

// asymDualSocket is the dual-socket machine with an asymmetric share
// mix: socket 0 carries most of the DRAM, socket 1 is memory-poor, and
// each socket keeps its own expander.
func asymDualSocket() tier.Spec {
	s := tier.PresetDualSocket()
	s.Name = "dualsocket-asym"
	s.Nodes[0].Share = 3
	s.Nodes[1].Share = 1
	return s
}

// chain4 is a 4-deep daisy chain: local DRAM, then three CXL devices
// each one switch hop behind the previous — the deepest cascade the
// multi-hop demotion/promotion machinery has to climb.
func chain4() tier.Spec {
	return tier.Spec{
		Name: "chain4",
		Nodes: []tier.NodeSpec{
			{Kind: mem.KindLocal, Share: 4},
			{Kind: mem.KindCXL, Share: 2},
			{Kind: mem.KindCXL, Share: 1, LoadLatencyNs: tier.FarCXLLatencyNs},
			{Kind: mem.KindCXL, Share: 1, LoadLatencyNs: 500,
				BandwidthMBps: tier.CrossSocketBandwidthMBps},
		},
		Distance: [][]int{
			{10, 20, 30, 40},
			{20, 10, 20, 30},
			{30, 20, 10, 20},
			{40, 30, 20, 10},
		},
	}
}

// slug turns a scenario label into a series-map key.
func slug(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			out = append(out, r)
		case r == ' ' || r == ':':
			if len(out) > 0 && out[len(out)-1] != '_' {
				out = append(out, '_')
			}
		}
	}
	return string(out)
}
