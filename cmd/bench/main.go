// Command bench runs the simulator's core-loop benchmark (the same
// machine and warm-up as BenchmarkSimTick in bench_test.go) and writes
// the result to BENCH_simtick.json, the repo's performance-trajectory
// artifact. Run it from the repo root after perf-relevant changes:
//
//	go run ./cmd/bench            # writes ./BENCH_simtick.json
//	go run ./cmd/bench -o out.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"tppsim"
)

func main() {
	out := flag.String("o", "BENCH_simtick.json", "output JSON path")
	flag.Parse()

	res := testing.Benchmark(func(b *testing.B) {
		m, err := tppsim.NewMachine(tppsim.SimTickBenchConfig())
		if err != nil {
			b.Fatal(err)
		}
		// Warm the machine past its fill phase, as BenchmarkSimTick does.
		for i := 0; i < tppsim.SimTickBenchWarmTicks; i++ {
			m.Step()
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Step()
		}
	})

	report := map[string]any{
		"benchmark":     "SimTick",
		"iterations":    res.N,
		"ns_per_op":     float64(res.T.Nanoseconds()) / float64(res.N),
		"bytes_per_op":  res.AllocedBytesPerOp(),
		"allocs_per_op": res.AllocsPerOp(),
		"goos":          runtime.GOOS,
		"goarch":        runtime.GOARCH,
		"go_version":    runtime.Version(),
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Printf("SimTick: %.0f ns/op, %d B/op, %d allocs/op (%d iterations) -> %s\n",
		report["ns_per_op"], res.AllocedBytesPerOp(), res.AllocsPerOp(), res.N, *out)
}
