// Command bench runs the simulator's core-loop benchmarks (the same
// machines and warm-up as BenchmarkSimTick / BenchmarkSimTickSampled /
// BenchmarkSimTickProbed / BenchmarkSimTickTracked / BenchmarkSimTickHuge
// in bench_test.go) and writes the results to
// BENCH_simtick.json, the
// repo's performance-trajectory artifact. Run it from the repo root
// after perf-relevant changes:
//
//	go run ./cmd/bench            # writes ./BENCH_simtick.json
//	go run ./cmd/bench -o out.json
//
// The artifact records the runner's CPU count and the *resolved* worker
// count each field ran with (the parallel field resolves WorkersAuto to
// GOMAXPROCS, so on a 1-CPU runner it reads 1: the run was effectively
// serial and its ns/op says nothing about sharding).
//
// With -check it instead compares fresh measurements against the
// committed baseline and exits non-zero when:
//
//   - sampling-off ns/op regressed more than -tolerance (default 15%)
//     against the committed baseline, or its allocs/op grew;
//   - sampling-on ns/op exceeds the sampling-off run by more than
//     -sampled-tolerance (default 10%) — a relative gate measured in
//     the same process, so it is hardware-independent;
//   - probes-on (latency histograms + phase profiler) ns/op exceeds the
//     probe-off run by more than -probed-tolerance (default 10%), or
//     its allocs/op grew at all;
//   - tracker-on (idlepage sampled tracking) ns/op exceeds the
//     tracker-off run by more than -tracked-tolerance (default 10%),
//     or its allocs/op grew at all;
//   - the terabyte-scale huge-page run (BenchmarkSimTickHuge) spends
//     more than tppsim.SimTickHugeBytesPerPageMax simulator bytes per
//     simulated resident page — the extent table's footprint contract,
//     hardware-independent like the alloc gates;
//   - on machines with ≥ 4 CPUs, the parallel large-machine run
//     (Workers=GOMAXPROCS, BenchmarkSimTickParallel) fails to beat the
//     serial large-machine run's ns/op — the parallel sim core must
//     pay for itself where it claims to (results are bit-identical
//     either way, so only wall-clock is at stake). Under 4 CPUs the
//     gate is skipped (and says so): there is nothing to shard onto.
//
// Checking does not overwrite the baseline; refresh it with a plain run
// when a slowdown is intentional and explained.
//
//	go run ./cmd/bench -check
//	go run ./cmd/bench -check -baseline BENCH_simtick.json -tolerance 0.15
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"tppsim"
	"tppsim/internal/prof"
)

func main() {
	out := flag.String("o", "BENCH_simtick.json", "output JSON path")
	check := flag.Bool("check", false, "compare against the committed baseline instead of writing it")
	baseline := flag.String("baseline", "BENCH_simtick.json", "baseline JSON path for -check")
	tolerance := flag.Float64("tolerance", 0.15, "allowed ns/op regression fraction for -check")
	sampledTol := flag.Float64("sampled-tolerance", 0.10, "allowed sampling-on overhead fraction vs sampling-off for -check")
	probedTol := flag.Float64("probed-tolerance", 0.10, "allowed probes-on overhead fraction vs probes-off for -check")
	trackedTol := flag.Float64("tracked-tolerance", 0.10, "allowed tracker-on overhead fraction vs tracker-off for -check")
	cpuProf := flag.String("cpuprofile", "", "write a Go CPU profile to FILE")
	memProf := flag.String("memprofile", "", "write a Go heap profile to FILE at exit")
	flag.Parse()

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
		}
	}()

	// lastMachine is the machine of the most recent bench invocation —
	// read right after bench() returns for end-state reports (the huge
	// run's footprint).
	var lastMachine *tppsim.Machine
	bench := func(cfg tppsim.MachineConfig) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			m, err := tppsim.NewMachine(cfg)
			if err != nil {
				b.Fatal(err)
			}
			// Warm the machine past its fill phase, as BenchmarkSimTick does.
			for i := 0; i < tppsim.SimTickBenchWarmTicks; i++ {
				m.Step()
			}
			if failed, why := m.Failed(); failed {
				b.Fatalf("machine failed during warm-up: %s", why)
			}
			lastMachine = m
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Step()
			}
		})
	}
	nsOf := func(r testing.BenchmarkResult) float64 {
		return float64(r.T.Nanoseconds()) / float64(r.N)
	}
	res := bench(tppsim.SimTickBenchConfig())
	nsPerOp := nsOf(res)
	resSampled := bench(tppsim.SimTickBenchSampledConfig())
	nsSampled := nsOf(resSampled)
	resProbed := bench(tppsim.SimTickBenchProbedConfig())
	nsProbed := nsOf(resProbed)
	resTracked := bench(tppsim.SimTickBenchTrackedConfig())
	nsTracked := nsOf(resTracked)
	resLarge := bench(tppsim.SimTickBenchLargeConfig())
	nsLarge := nsOf(resLarge)
	resParallel := bench(tppsim.SimTickBenchParallelConfig())
	nsParallel := nsOf(resParallel)
	resHuge := bench(tppsim.SimTickBenchHugeConfig())
	nsHuge := nsOf(resHuge)
	hugeStats := lastMachine.MemStats()

	// The resolved worker counts each field actually ran with (the
	// parallel config's WorkersAuto resolves per host), plus the host's
	// CPU count — without these the parallel field is uninterpretable on
	// small runners.
	cpus := runtime.NumCPU()
	parallelWorkers := tppsim.ResolveWorkers(tppsim.SimTickBenchParallelConfig().Workers)
	largeWorkers := tppsim.ResolveWorkers(tppsim.SimTickBenchLargeConfig().Workers)

	if *check {
		raw, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		var base struct {
			NsPerOp     float64 `json:"ns_per_op"`
			AllocsPerOp int64   `json:"allocs_per_op"`
		}
		if err := json.Unmarshal(raw, &base); err != nil || base.NsPerOp <= 0 {
			fmt.Fprintf(os.Stderr, "bench: bad baseline %s: %v\n", *baseline, err)
			os.Exit(1)
		}
		if nsPerOp > base.NsPerOp*(1+*tolerance) {
			// ns/op is hardware- and noise-sensitive; before failing,
			// re-measure once and take the better run so a noisy-neighbor
			// blip on a shared runner does not block an unchanged build.
			if again := bench(tppsim.SimTickBenchConfig()); again.T.Nanoseconds() > 0 {
				if v := nsOf(again); v < nsPerOp {
					nsPerOp = v
				}
			}
		}
		ratio := nsPerOp / base.NsPerOp
		sampledRatio := nsSampled / nsPerOp
		probedRatio := nsProbed / nsPerOp
		trackedRatio := nsTracked / nsPerOp
		fmt.Printf("SimTick: %.0f ns/op vs baseline %.0f ns/op (%+.1f%%, tolerance %.0f%%); %d allocs/op vs %d\n",
			nsPerOp, base.NsPerOp, 100*(ratio-1), 100**tolerance, res.AllocsPerOp(), base.AllocsPerOp)
		fmt.Printf("SimTickSampled: %.0f ns/op (%+.1f%% vs sampling off, tolerance %.0f%%); %d allocs/op\n",
			nsSampled, 100*(sampledRatio-1), 100**sampledTol, resSampled.AllocsPerOp())
		fmt.Printf("SimTickProbed: %.0f ns/op (%+.1f%% vs probes off, tolerance %.0f%%); %d allocs/op\n",
			nsProbed, 100*(probedRatio-1), 100**probedTol, resProbed.AllocsPerOp())
		fmt.Printf("SimTickTracked: %.0f ns/op (%+.1f%% vs tracker off, tolerance %.0f%%); %d allocs/op\n",
			nsTracked, 100*(trackedRatio-1), 100**trackedTol, resTracked.AllocsPerOp())
		failed := false
		if ratio > 1+*tolerance {
			// Persistently over tolerance: either a real regression or a
			// baseline captured on faster hardware — refresh the baseline
			// (and say so in the commit) rather than loosening the gate.
			fmt.Fprintf(os.Stderr, "bench: SimTick ns/op regressed beyond tolerance; "+
				"if intentional, refresh %s with `go run ./cmd/bench` and explain in the commit\n", *baseline)
			failed = true
		}
		// allocs/op is hardware-independent, so it gets a tight gate: any
		// growth beyond one stray allocation is a real hot-path change.
		if res.AllocsPerOp() > base.AllocsPerOp+1 {
			fmt.Fprintf(os.Stderr, "bench: SimTick allocs/op grew %d -> %d\n",
				base.AllocsPerOp, res.AllocsPerOp())
			failed = true
		}
		if sampledRatio > 1+*sampledTol {
			// Re-measure the pair once before failing, same noise logic.
			off, on := bench(tppsim.SimTickBenchConfig()), bench(tppsim.SimTickBenchSampledConfig())
			if r := nsOf(on) / nsOf(off); r < sampledRatio {
				sampledRatio = r
			}
		}
		if sampledRatio > 1+*sampledTol {
			fmt.Fprintf(os.Stderr, "bench: series sampling costs %+.1f%% ns/op over sampling-off (limit %.0f%%)\n",
				100*(sampledRatio-1), 100**sampledTol)
			failed = true
		}
		// The sampling hook is amortized over preallocated columns: it
		// must not add steady-state allocations either.
		if resSampled.AllocsPerOp() > res.AllocsPerOp() {
			fmt.Fprintf(os.Stderr, "bench: sampling grew allocs/op %d -> %d\n",
				res.AllocsPerOp(), resSampled.AllocsPerOp())
			failed = true
		}
		if probedRatio > 1+*probedTol {
			// Re-measure the pair once before failing, same noise logic.
			off, on := bench(tppsim.SimTickBenchConfig()), bench(tppsim.SimTickBenchProbedConfig())
			if r := nsOf(on) / nsOf(off); r < probedRatio {
				probedRatio = r
			}
		}
		if probedRatio > 1+*probedTol {
			fmt.Fprintf(os.Stderr, "bench: probes cost %+.1f%% ns/op over probes-off (limit %.0f%%)\n",
				100*(probedRatio-1), 100**probedTol)
			failed = true
		}
		// Histograms are fixed arrays and the profiler laps into them:
		// probing must not add steady-state allocations.
		if resProbed.AllocsPerOp() > res.AllocsPerOp() {
			fmt.Fprintf(os.Stderr, "bench: probing grew allocs/op %d -> %d\n",
				res.AllocsPerOp(), resProbed.AllocsPerOp())
			failed = true
		}
		if trackedRatio > 1+*trackedTol {
			// Re-measure the pair once before failing, same noise logic.
			off, on := bench(tppsim.SimTickBenchConfig()), bench(tppsim.SimTickBenchTrackedConfig())
			if r := nsOf(on) / nsOf(off); r < trackedRatio {
				trackedRatio = r
			}
		}
		if trackedRatio > 1+*trackedTol {
			fmt.Fprintf(os.Stderr, "bench: tracking costs %+.1f%% ns/op over tracker-off (limit %.0f%%)\n",
				100*(trackedRatio-1), 100**trackedTol)
			failed = true
		}
		// The tracker's bitmap, heatmap, and mover scratch are all
		// preallocated at plane build: tracking must not add
		// steady-state allocations.
		if resTracked.AllocsPerOp() > res.AllocsPerOp() {
			fmt.Fprintf(os.Stderr, "bench: tracking grew allocs/op %d -> %d\n",
				res.AllocsPerOp(), resTracked.AllocsPerOp())
			failed = true
		}
		// The terabyte-scale footprint gate: bytes of simulator state per
		// simulated resident base page. Hardware-independent, so no
		// re-measure dance.
		fmt.Printf("SimTickHuge: %.0f ns/op; %.3f simulator bytes/page over %d resident pages (limit %.2f); %d allocs/op\n",
			nsHuge, hugeStats.BytesPerPage, hugeStats.ResidentPages,
			tppsim.SimTickHugeBytesPerPageMax, resHuge.AllocsPerOp())
		if hugeStats.BytesPerPage > tppsim.SimTickHugeBytesPerPageMax {
			fmt.Fprintf(os.Stderr, "bench: huge run spends %.3f simulator bytes per simulated page (limit %.2f)\n",
				hugeStats.BytesPerPage, tppsim.SimTickHugeBytesPerPageMax)
			failed = true
		}
		parallelRatio := nsParallel / nsLarge
		fmt.Printf("SimTickParallel: %.0f ns/op vs serial large %.0f ns/op (%+.1f%%) with %d workers on %d CPUs\n",
			nsParallel, nsLarge, 100*(parallelRatio-1), parallelWorkers, cpus)
		if runtime.GOMAXPROCS(0) >= 4 {
			if parallelRatio >= 1 {
				// Re-measure the pair once before failing, same noise logic.
				off, on := bench(tppsim.SimTickBenchLargeConfig()), bench(tppsim.SimTickBenchParallelConfig())
				if r := nsOf(on) / nsOf(off); r < parallelRatio {
					parallelRatio = r
				}
			}
			if parallelRatio >= 1 {
				fmt.Fprintf(os.Stderr, "bench: parallel sim core (%+.1f%%) does not beat the serial large-machine run on %d CPUs\n",
					100*(parallelRatio-1), runtime.GOMAXPROCS(0))
				failed = true
			}
		} else {
			fmt.Printf("SimTickParallel gate skipped: %d usable CPUs < 4, the parallel run resolved to %d worker(s) — nothing to shard onto\n",
				runtime.GOMAXPROCS(0), parallelWorkers)
		}
		if failed {
			os.Exit(1)
		}
		return
	}

	report := map[string]any{
		"benchmark":             "SimTick",
		"iterations":            res.N,
		"ns_per_op":             nsPerOp,
		"bytes_per_op":          res.AllocedBytesPerOp(),
		"allocs_per_op":         res.AllocsPerOp(),
		"sampled_ns_per_op":     nsSampled,
		"sampled_allocs_per_op": resSampled.AllocsPerOp(),
		"probed_ns_per_op":      nsProbed,
		"probed_allocs_per_op":  resProbed.AllocsPerOp(),
		"tracked_ns_per_op":     nsTracked,
		"tracked_allocs_per_op": resTracked.AllocsPerOp(),
		"large_ns_per_op":       nsLarge,
		"large_workers":         largeWorkers,
		"parallel_ns_per_op":    nsParallel,
		"parallel_workers":      parallelWorkers,
		"huge_ns_per_op":        nsHuge,
		"huge_allocs_per_op":    resHuge.AllocsPerOp(),
		"huge_bytes_per_page":   hugeStats.BytesPerPage,
		"huge_resident_pages":   hugeStats.ResidentPages,
		"huge_extents":          hugeStats.Extents,
		"cpus":                  cpus,
		"gomaxprocs":            runtime.GOMAXPROCS(0),
		"goos":                  runtime.GOOS,
		"goarch":                runtime.GOARCH,
		"go_version":            runtime.Version(),
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Printf("SimTick: %.0f ns/op, %d B/op, %d allocs/op (%d iterations); sampled %.0f ns/op, %d allocs/op; probed %.0f ns/op, %d allocs/op; tracked %.0f ns/op, %d allocs/op; large %.0f ns/op, parallel %.0f ns/op (%d workers, %d CPUs); huge %.0f ns/op at %.3f bytes/page -> %s\n",
		nsPerOp, res.AllocedBytesPerOp(), res.AllocsPerOp(), res.N,
		nsSampled, resSampled.AllocsPerOp(), nsProbed, resProbed.AllocsPerOp(),
		nsTracked, resTracked.AllocsPerOp(),
		nsLarge, nsParallel, parallelWorkers, cpus, nsHuge, hugeStats.BytesPerPage, *out)
}
