// Command chameleon profiles a workload with the paper's lightweight
// user-space characterization tool (§3) and prints the heat-map report:
// hot fractions per page type at 1/2/5/10-minute windows plus the
// re-access distribution.
//
//	chameleon -workload Web1 -minutes 30
//	chameleon -workload Cache2 -rate 100 -groups 2
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tppsim/internal/chameleon"
	"tppsim/internal/core"
	"tppsim/internal/sim"
	"tppsim/internal/workload"
)

func main() {
	var (
		wlName  = flag.String("workload", "Web1", "workload: "+strings.Join(workload.Names(), ", "))
		minutes = flag.Int("minutes", 30, "profiling duration (simulated minutes)")
		pages   = flag.Uint64("pages", workload.DefaultTotalPages, "working-set pages")
		seed    = flag.Uint64("seed", 1, "random seed")
		rate    = flag.Int("rate", 200, "PEBS sampling rate (1-in-N)")
		groups  = flag.Int("groups", 4, "core groups for duty cycling")
	)
	flag.Parse()

	ctor, ok := workload.Catalog[*wlName]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown workload %q; have %s\n", *wlName, strings.Join(workload.Names(), ", "))
		os.Exit(2)
	}
	m, err := sim.New(sim.Config{
		Seed:            *seed,
		Policy:          core.DefaultLinux(),
		Workload:        ctor(*pages),
		Ratio:           [2]uint64{1, 0}, // profile on an ordinary host
		Minutes:         *minutes,
		EnableChameleon: true,
		ChameleonConfig: chameleon.Config{SampleRate: *rate, CoreGroups: *groups},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	m.Run()
	fmt.Print(m.Chameleon().Report(*wlName).String())
}
