// Command experiments regenerates the paper's tables and figures.
// Multiple experiments run concurrently on a bounded worker pool; output
// order is deterministic (registry order) regardless of scheduling.
//
//	experiments -list
//	experiments -run Table1
//	experiments -run all -pages 16384 -minutes 40
//	experiments -run all -workers 4
//	experiments -run Fig14 -csv
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"tppsim/internal/experiments"
	"tppsim/internal/prof"
)

func main() {
	var (
		runID   = flag.String("run", "", "experiment ID to run, or 'all'")
		list    = flag.Bool("list", false, "list experiment IDs")
		pages   = flag.Uint64("pages", 0, "working-set pages (default 32768)")
		minutes = flag.Int("minutes", 0, "simulated minutes (default 60)")
		seed    = flag.Uint64("seed", 0, "random seed (default 1)")
		csv     = flag.Bool("csv", false, "print figure series as CSV")
		workers = flag.Int("workers", 0, "CPU budget split between concurrent machines and each machine's sim-core workers (default: all CPUs)")
		cpuProf = flag.String("cpuprofile", "", "write a Go CPU profile to FILE")
		memProf = flag.String("memprofile", "", "write a Go heap profile to FILE at exit")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()

	if *list || *runID == "" {
		fmt.Println("experiments:")
		for _, s := range experiments.Registry() {
			fmt.Printf("  %-8s %s\n", s.ID, s.Caption)
		}
		if *runID == "" {
			fmt.Println("\nuse -run <ID> or -run all")
		}
		return
	}

	o := experiments.Options{Pages: *pages, Minutes: *minutes, Seed: *seed}
	var specs []experiments.Spec
	if strings.EqualFold(*runID, "all") {
		specs = experiments.Registry()
	} else {
		s, ok := experiments.Find(*runID)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", *runID)
			os.Exit(2)
		}
		specs = []experiments.Spec{s}
	}

	// -workers is a CPU budget, not just a pool size: machine-level
	// parallelism takes as much of it as there are experiments to run
	// concurrently, and whatever is left over (the single-experiment
	// case, or a budget above the spec count) goes to each machine's
	// sim-core workers. Results are bit-identical either way — the
	// split only decides where the CPUs are spent, never oversubscribing
	// machines × sim workers beyond the budget.
	budget := *workers
	if budget <= 0 {
		budget = runtime.NumCPU()
	}
	machineWorkers := budget
	if machineWorkers > len(specs) {
		machineWorkers = len(specs)
	}
	if machineWorkers < 1 {
		machineWorkers = 1
	}
	o.SimWorkers = budget / machineWorkers

	for _, res := range experiments.RunAll(specs, o, machineWorkers) {
		fmt.Println(res.Table.String())
		if *csv {
			for _, name := range sortedSeries(res) {
				fmt.Printf("--- series %s/%s ---\n%s", res.ID, name, res.Series[name])
			}
		}
	}
}

func sortedSeries(r experiments.Result) []string {
	out := make([]string, 0, len(r.Series))
	for k := range r.Series {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
