// Command tppsim runs one workload under one placement policy on a
// simulated CXL tiered-memory machine and prints the results: normalized
// throughput, local-traffic fraction, and the TPP observability counters
// (§5.5).
//
// Examples:
//
//	tppsim -workload Web1 -policy tpp -ratio 2:1 -minutes 60
//	tppsim -workload Cache1 -policy default -ratio 1:4 -vmstat
//	tppsim -workload Cache2 -policy all -ratio 2:1
//	tppsim -workload Cache2 -policy tpp -topology expander -vmstat
//	tppsim -list
//
// Record/replay: -record captures the run's access trace to a file
// (".gz" compresses); -replay re-drives a machine from a trace instead
// of a catalog workload, so one captured stream can be compared across
// every policy:
//
//	tppsim -workload Web1 -policy default -record web1.trace.gz
//	tppsim -replay web1.trace.gz -policy all
//	tppsim -replay web1.trace.gz -policy tpp -minutes 120 -loop
//
// Time series: -series samples every node's vmstat deltas and residency
// per tick into the columnar series plane and renders it as a flow
// table plus terminal sparklines (-sample-every sets the cadence, -csv
// dumps the full plane). -trace-stats renders the same series straight
// from a recorded trace's per-node TickEnd payload — a pure decode, no
// machine is built or re-run:
//
//	tppsim -workload Cache2 -policy tpp -series
//	tppsim -workload Cache2 -policy tpp -record c2.trace -sample-every 1
//	tppsim -trace-stats c2.trace -csv c2-series.csv
//	tppsim -trace-stats default.trace -diff tpp.trace
//
// Distributions: -latency turns on the probe plane's histograms and
// prints per-node access-latency percentiles plus the migration,
// allocstall, and reclaim-batch distributions; -phase-profile attributes
// host wall-clock per tick phase. -cpuprofile/-memprofile write real Go
// pprof profiles for cross-checking:
//
//	tppsim -workload Web1 -policy tpp -latency
//	tppsim -workload Web1 -policy all -phase-profile -cpuprofile cpu.pb.gz
//
// Sampled tracking: -tracker attaches a sampled access tracker
// (idlepage, softdirty, or damon; internal/tracker spec syntax) whose
// heatmap is reported after the run; oracle=1 scores it against exact
// access counts. The sampled policy drives all placement from the
// tracker alone. -policies and -trackers enumerate what is available:
//
//	tppsim -workload Web1 -policy tpp -tracker "idlepage:scan=8,oracle=1"
//	tppsim -workload Cache2 -policy sampled -topology expander -nodes
//	tppsim -workload Cache2 -policy sampled -tracker "damon:regions=256" -vmstat
//	tppsim -policies
//	tppsim -trackers
//
// Fault injection: -faults takes a deterministic failure schedule
// (internal/fault syntax) and prints the fault timeline after the run.
// Recording a faulted run stores the schedule in the trace header (v6),
// so replaying it reproduces the same faults:
//
//	tppsim -workload Web1 -policy tpp -topology expander -faults "offline:node=2,at=1200,until=2400" -nodes
//	tppsim -workload Web1 -policy tpp -faults "latency:node=1,at=600,until=1800,mult=3;migfail:prob=0.2,at=600,until=1800;seed=42"
//	tppsim -workload Web1 -policy tpp -faults "offline:node=1,at=600" -record faulted.trace.gz
//	tppsim -replay faulted.trace.gz -policy all
//
// Scale: -hugepages backs the machine with 2 MB huge frames over the
// extent-compressed page table — the terabyte-scale configuration —
// and -mem-stats reports the simulator's own memory footprint (extent
// count, split/merge churn, bytes per simulated resident page):
//
//	tppsim -workload Cache1 -policy tpp -hugepages -mem-stats -vmstat
//	tppsim -workload Web1 -policy tpp -mem-stats
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tppsim/internal/core"
	"tppsim/internal/fault"
	"tppsim/internal/mem"
	"tppsim/internal/metrics"
	"tppsim/internal/prof"
	"tppsim/internal/report"
	"tppsim/internal/series"
	"tppsim/internal/sim"
	"tppsim/internal/tier"
	"tppsim/internal/trace"
	"tppsim/internal/tracker"
	"tppsim/internal/workload"
)

func main() {
	var (
		wlName   = flag.String("workload", "Cache1", "workload: "+strings.Join(workload.Names(), ", "))
		policy   = flag.String("policy", "tpp", "policy: "+strings.Join(policyKeys(), ", ")+", all")
		ratio    = flag.String("ratio", "2:1", "local:CXL capacity ratio, or 1:0 for the all-local baseline")
		topoName = flag.String("topology", "", "machine topology preset: "+strings.Join(tier.PresetNames(), ", ")+
			" (default: the 2-node cxl box sized by -ratio)")
		minutes  = flag.Int("minutes", 60, "simulated minutes")
		pages    = flag.Uint64("pages", workload.DefaultTotalPages, "working-set size in 4KB pages")
		seed     = flag.Uint64("seed", 1, "random seed")
		workers  = flag.Int("workers", 1, "sim-core workers sharding the access stage (1 = serial, 0 = all CPUs; results are bit-identical for any count)")
		hugeFl   = flag.Bool("hugepages", false, "back the machine with 2MB huge pages over the extent-compressed page table (the terabyte-scale configuration)")
		memStats = flag.Bool("mem-stats", false, "report the simulator's own memory footprint: extent count, split/merge totals, bytes per simulated resident page")
		vmstatFl = flag.Bool("vmstat", false, "dump /proc/vmstat-style counters (per node on multi-node machines)")
		nodesFl  = flag.Bool("nodes", false, "print the per-node residency/counter table")
		seriesFl = flag.Bool("series", false, "sample the per-tick per-node series plane and print flow table + sparklines")
		sampleEv = flag.Int("sample-every", 0, "series sampling cadence in ticks (implies sampling; default 1 when -series/-csv set)")
		csvOut   = flag.String("csv", "", "write the sampled node series as CSV to FILE (\"-\" for stdout)")
		trStats  = flag.String("trace-stats", "", "decode FILE's per-node tick payload into the series plane and render it (no machine is run)")
		diffWith = flag.String("diff", "", "with -trace-stats: decode FILE too and render a comparative per-node flow table (A=-trace-stats, B=-diff)")
		latency  = flag.Bool("latency", false, "record the probe plane's latency histograms and print the percentile table + access CDF panel")
		phaseFl  = flag.Bool("phase-profile", false, "profile host wall-clock per tick phase and print the attribution table")
		cpuProf  = flag.String("cpuprofile", "", "write a Go CPU profile to FILE")
		memProf  = flag.String("memprofile", "", "write a Go heap profile to FILE at exit")
		list     = flag.Bool("list", false, "list catalog workloads and exit")
		listPol  = flag.Bool("policies", false, "list selectable policies with descriptions and exit")
		listTrk  = flag.Bool("trackers", false, "list tracker kinds with descriptions and exit")
		trkSpec  = flag.String("tracker", "", "sampled access tracker, e.g. \"idlepage:scan=8,oracle=1\" or \"damon:regions=256\" (see internal/tracker; kinds: "+strings.Join(tracker.KindNames(), ", ")+")")
		faultsFl = flag.String("faults", "", "fault-injection schedule, e.g. \"offline:node=1,at=600,until=1200;migfail:prob=0.2,at=100;seed=42\" (see internal/fault)")
		recordTo = flag.String("record", "", "record the access trace to FILE (.gz compresses; single policy only)")
		replayF  = flag.String("replay", "", "replay a trace FILE instead of running a catalog workload")
		loop     = flag.Bool("loop", false, "with -replay: loop the trace when the run outlasts it (otherwise the machine idles)")
	)
	flag.Parse()

	// -series/-csv without an explicit cadence sample every tick.
	if (*seriesFl || *csvOut != "") && *sampleEv == 0 {
		*sampleEv = 1
	}

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// Finalized on the normal return paths; error paths os.Exit and
	// drop the partial profile.
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()

	if *diffWith != "" && *trStats == "" {
		fmt.Fprintln(os.Stderr, "-diff only applies with -trace-stats")
		os.Exit(2)
	}

	if *trStats != "" {
		if *replayF != "" || *recordTo != "" {
			fmt.Fprintln(os.Stderr, "-trace-stats is a pure decode; it excludes -replay and -record")
			os.Exit(2)
		}
		if err := runTraceStats(*trStats, *diffWith, *sampleEv, *seriesFl, *csvOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, n := range workload.Names() {
			fmt.Println(n)
		}
		return
	}
	if *listPol {
		for _, n := range core.Registry() {
			fmt.Printf("%-12s %s\n", n.Key, n.Description)
		}
		fmt.Printf("%-12s %s\n", "all", "the Table 1 set: default, tpp, numab, autotiering")
		return
	}
	if *listTrk {
		for _, k := range tracker.KindNames() {
			fmt.Printf("%-10s %s\n", k, tracker.Describe(k))
		}
		return
	}

	trkCfg, err := tracker.ParseSpec(*trkSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var r0, r1 uint64
	if _, err := fmt.Sscanf(*ratio, "%d:%d", &r0, &r1); err != nil || r0 == 0 {
		fmt.Fprintf(os.Stderr, "bad -ratio %q (want e.g. 2:1)\n", *ratio)
		os.Exit(2)
	}
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })

	var topo tier.Spec
	if *topoName != "" {
		spec, ok := tier.Preset(*topoName)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown -topology %q; have %s\n", *topoName, strings.Join(tier.PresetNames(), ", "))
			os.Exit(2)
		}
		if *topoName == tier.PresetNameCXL {
			spec = tier.PresetCXL(r0, r1)
		} else if set["ratio"] {
			fmt.Fprintf(os.Stderr, "-ratio only applies to the cxl preset; %s has fixed shares\n", *topoName)
			os.Exit(2)
		}
		topo = spec
	}

	policies, err := selectPolicies(*policy)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *recordTo != "" && len(policies) > 1 {
		fmt.Fprintln(os.Stderr, "-record needs a single policy (a trace captures one run)")
		os.Exit(2)
	}
	if *csvOut != "" && *csvOut != "-" && len(policies) > 1 {
		fmt.Fprintln(os.Stderr, "-csv FILE needs a single policy (each run would overwrite the file); use -csv - to stream all runs")
		os.Exit(2)
	}
	if *recordTo != "" && *replayF != "" {
		fmt.Fprintln(os.Stderr, "-record and -replay are mutually exclusive")
		os.Exit(2)
	}
	if *replayF != "" && (set["workload"] || set["pages"]) {
		fmt.Fprintln(os.Stderr, "-replay drives the machine from the trace; -workload/-pages would be ignored")
		os.Exit(2)
	}
	if *loop && *replayF == "" {
		fmt.Fprintln(os.Stderr, "-loop only applies with -replay")
		os.Exit(2)
	}

	var faults fault.Schedule
	if *faultsFl != "" {
		if faults, err = fault.ParseSpec(*faultsFl); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	var tr *trace.Trace
	var ctor func(uint64) workload.Workload
	if *replayF != "" {
		if tr, err = trace.Load(*replayF); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		h := tr.Header
		traceMin := (tr.Ticks() + workload.TicksPerMinute - 1) / workload.TicksPerMinute
		fmt.Printf("replaying %s: workload=%s pages=%d %d min (%d KB encoded)\n",
			*replayF, h.Name, h.TotalPages, traceMin, tr.Size()/1024)
		if len(topo.Nodes) == 0 && !set["ratio"] && h.Topology != nil {
			// No explicit sizing: rebuild the recorded machine.
			topo = *h.Topology
			fmt.Printf("  machine from trace: %s (%d nodes)\n", topo.Name, len(topo.Nodes))
		}
		if *faultsFl == "" && h.Faults != nil {
			// A v6 trace of a faulted run carries its schedule: replay it
			// too, so the replayed machine suffers the same faults.
			faults = *h.Faults
			fmt.Printf("  faults from trace: %s\n", faults.Spec())
		}
		if *trkSpec == "" && h.Tracker != "" {
			// A v7 trace carries the recorded run's tracker spec: rebuild
			// the same observation plane unless -tracker overrides it.
			if trkCfg, err = tracker.ParseSpec(h.Tracker); err != nil {
				fmt.Fprintf(os.Stderr, "trace tracker spec: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("  tracker from trace: %s\n", h.Tracker)
		}
		if !set["minutes"] && uint64(*minutes) > traceMin {
			// Without an explicit -minutes, replay exactly the trace.
			*minutes = int(traceMin)
		} else if uint64(*minutes) > traceMin && !*loop {
			fmt.Fprintf(os.Stderr, "warning: run (%d min) outlasts the trace (%d min); the machine idles after it ends — use -loop to wrap\n",
				*minutes, traceMin)
		}
	} else {
		var ok bool
		if ctor, ok = workload.Catalog[*wlName]; !ok {
			fmt.Fprintf(os.Stderr, "unknown workload %q; have %s\n", *wlName, strings.Join(workload.Names(), ", "))
			os.Exit(2)
		}
	}

	// The flag speaks the issue-facing convention (0 = all CPUs); the
	// Config zero value means serial, so auto maps to WorkersAuto.
	cfgWorkers := *workers
	if cfgWorkers == 0 {
		cfgWorkers = sim.WorkersAuto
	}

	for _, p := range policies {
		cfg := sim.Config{
			Seed:             *seed,
			Policy:           p,
			Workers:          cfgWorkers,
			HugePages:        *hugeFl,
			Minutes:          *minutes,
			RecordTo:         *recordTo,
			SampleEveryTicks: *sampleEv,
			ProbeLatency:     *latency,
			ProbePhases:      *phaseFl,
			Faults:           faults,
			Tracker:          trkCfg,
		}
		if len(topo.Nodes) > 0 {
			cfg.Topology = topo
		} else {
			cfg.Ratio = [2]uint64{r0, r1}
		}
		if tr != nil {
			cfg.Workload = tr.Replayer(trace.ReplayOptions{Loop: *loop})
		} else {
			cfg.Workload = ctor(*pages)
		}
		m, err := sim.New(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		res := m.Run()
		fmt.Println(res.String())
		if *memStats {
			fmt.Print(memStatsLine(res))
		}
		if err := m.RecordError(); err != nil {
			fmt.Fprintf(os.Stderr, "recording trace: %v\n", err)
			os.Exit(1)
		}
		if *nodesFl {
			fmt.Print(report.NodeTable(res).String())
		}
		if ft := report.FaultTimeline(res); ft != nil {
			fmt.Print(ft.String())
		}
		if ts := report.TrackerSummary(res); ts != nil {
			fmt.Print(ts.String())
			fmt.Print(report.TrackerHeatPanel(res, 60))
		}
		if *vmstatFl {
			st := m.Stat()
			fmt.Print(indent(st.Snapshot().String()))
			if st.NumNodes() > 1 {
				for n := 0; n < st.NumNodes(); n++ {
					fmt.Printf("  node%d:\n", n)
					fmt.Print(indent(indent(st.NodeSnapshot(mem.NodeID(n)).String())))
				}
			}
		}
		if res.LatencyHist != nil {
			labels := report.NodeLabels(res.Nodes, len(res.LatencyHist.Access))
			fmt.Print(report.PercentileTable(res.LatencyHist, labels).String())
			total := res.LatencyHist.TotalAccess()
			fmt.Print(report.HistogramPanel(&total, "access latency (all nodes)", nil))
		}
		if res.PhaseProfile != nil {
			fmt.Print(report.PhaseTable(res.PhaseProfile).String())
		}
		if res.NodeSeries != nil {
			labels := report.NodeLabels(res.Nodes, res.NodeSeries.Nodes())
			if *seriesFl {
				printSeries(res.NodeSeries, labels)
			}
			if *csvOut != "" {
				if err := writeCSV(*csvOut, res.NodeSeries, labels); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
			}
		}
	}
}

// memStatsLine renders the simulator's own end-of-run memory footprint
// (-mem-stats): how many bytes of simulator state each simulated
// resident base page cost, and the extent table's shape and churn.
func memStatsLine(res *metrics.Run) string {
	ms := res.MemStats
	return fmt.Sprintf("  mem-stats: %.3f sim bytes/page (table %s + store %s over %d resident pages), frame=%dp, extents=%d (splits=%d merges=%d)\n",
		ms.BytesPerPage, sizeKB(ms.TableBytes), sizeKB(ms.StoreBytes),
		ms.ResidentPages, ms.FramePages, ms.Extents, ms.Splits, ms.Merges)
}

// sizeKB renders a byte count with a compact unit.
func sizeKB(b uint64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%dB", b)
}

// printSeries renders the sampled plane for a terminal: a flow table
// rebinned to at most 20 windows plus full-resolution sparklines.
func printSeries(s *series.Series, labels []string) {
	fmt.Print(report.FlowTable(s.Rebin(20), labels).String())
	fmt.Print(report.SeriesPanel(s, labels))
}

// writeCSV dumps the full sampled plane ("-" writes to stdout).
func writeCSV(path string, s *series.Series, labels []string) error {
	csv := report.SeriesColumnsCSV(s, labels)
	if path == "-" {
		fmt.Print(csv)
		return nil
	}
	if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
		return err
	}
	fmt.Printf("  series: %d windows x %d ticks -> %s\n", s.Len(), s.Cadence(), path)
	return nil
}

// runTraceStats decodes a recorded trace's per-node tick payload into
// the series plane and renders it — the trace-analysis path: no
// machine, no policy, one pass over the encoded stream. With diffPath
// set, a second trace is decoded the same way and the two runs render
// as one comparative flow table instead.
func runTraceStats(path, diffPath string, sampleEvery int, printPanel bool, csvPath string) error {
	tr, err := trace.Load(path)
	if err != nil {
		return err
	}
	if sampleEvery == 0 {
		sampleEvery = 1
	}
	s, err := tr.Stats(trace.StatsOptions{SampleEvery: uint64(sampleEvery)})
	if err != nil {
		return err
	}
	h := tr.Header
	fmt.Printf("%s: workload=%s format v%d, %d nodes, %d windows x %d ticks (levels: %v)\n",
		path, h.Name, h.Version, s.Nodes(), s.Len(), s.Cadence(), s.HasLevels())
	var labels []string
	if h.Topology != nil && len(h.Topology.Nodes) == s.Nodes() {
		labels = make([]string, s.Nodes())
		for i, n := range h.Topology.Nodes {
			labels[i] = fmt.Sprintf("n%d %s", i, n.Kind)
		}
	}
	if diffPath != "" {
		trB, err := trace.Load(diffPath)
		if err != nil {
			return err
		}
		sB, err := trB.Stats(trace.StatsOptions{SampleEvery: uint64(sampleEvery)})
		if err != nil {
			return err
		}
		fmt.Printf("%s: workload=%s format v%d, %d nodes, %d windows x %d ticks (levels: %v)\n",
			diffPath, trB.Header.Name, trB.Header.Version, sB.Nodes(), sB.Len(), sB.Cadence(), sB.HasLevels())
		t, err := report.FlowDiffTable(s, sB, labels)
		if err != nil {
			return err
		}
		fmt.Printf("A = %s, B = %s\n", path, diffPath)
		fmt.Print(t.String())
		return nil
	}
	fmt.Print(report.FlowTable(s.Rebin(20), labels).String())
	if printPanel {
		fmt.Print(report.SeriesPanel(s, labels))
	}
	if csvPath != "" {
		return writeCSV(csvPath, s, labels)
	}
	return nil
}

// policyKeys returns the registry keys for the -policy usage line.
func policyKeys() []string {
	reg := core.Registry()
	keys := make([]string, len(reg))
	for i, n := range reg {
		keys[i] = n.Key
	}
	return keys
}

func selectPolicies(name string) ([]core.Policy, error) {
	name = strings.ToLower(name)
	if name == "all" {
		return core.All(), nil
	}
	for _, n := range core.Registry() {
		if n.Key == name {
			return []core.Policy{n.New()}, nil
		}
	}
	return nil, fmt.Errorf("unknown policy %q (have %s, all)", name, strings.Join(policyKeys(), ", "))
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = "    " + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}
