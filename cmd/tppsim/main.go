// Command tppsim runs one workload under one placement policy on a
// simulated CXL tiered-memory machine and prints the results: normalized
// throughput, local-traffic fraction, and the TPP observability counters
// (§5.5).
//
// Examples:
//
//	tppsim -workload Web1 -policy tpp -ratio 2:1 -minutes 60
//	tppsim -workload Cache1 -policy default -ratio 1:4 -vmstat
//	tppsim -workload Cache2 -policy all -ratio 2:1
//	tppsim -workload Cache2 -policy tpp -topology expander -vmstat
//	tppsim -list
//
// Record/replay: -record captures the run's access trace to a file
// (".gz" compresses); -replay re-drives a machine from a trace instead
// of a catalog workload, so one captured stream can be compared across
// every policy:
//
//	tppsim -workload Web1 -policy default -record web1.trace.gz
//	tppsim -replay web1.trace.gz -policy all
//	tppsim -replay web1.trace.gz -policy tpp -minutes 120 -loop
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tppsim/internal/core"
	"tppsim/internal/mem"
	"tppsim/internal/metrics"
	"tppsim/internal/report"
	"tppsim/internal/sim"
	"tppsim/internal/tier"
	"tppsim/internal/trace"
	"tppsim/internal/workload"
)

func main() {
	var (
		wlName   = flag.String("workload", "Cache1", "workload: "+strings.Join(workload.Names(), ", "))
		policy   = flag.String("policy", "tpp", "policy: default, tpp, numab, autotiering, tmo, tpp+tmo, all")
		ratio    = flag.String("ratio", "2:1", "local:CXL capacity ratio, or 1:0 for the all-local baseline")
		topoName = flag.String("topology", "", "machine topology preset: "+strings.Join(tier.PresetNames(), ", ")+
			" (default: the 2-node cxl box sized by -ratio)")
		minutes  = flag.Int("minutes", 60, "simulated minutes")
		pages    = flag.Uint64("pages", workload.DefaultTotalPages, "working-set size in 4KB pages")
		seed     = flag.Uint64("seed", 1, "random seed")
		vmstatFl = flag.Bool("vmstat", false, "dump /proc/vmstat-style counters (per node on multi-node machines)")
		nodesFl  = flag.Bool("nodes", false, "print the per-node residency/counter table")
		series   = flag.Bool("series", false, "dump the local-traffic time series as CSV")
		list     = flag.Bool("list", false, "list catalog workloads and exit")
		recordTo = flag.String("record", "", "record the access trace to FILE (.gz compresses; single policy only)")
		replayF  = flag.String("replay", "", "replay a trace FILE instead of running a catalog workload")
		loop     = flag.Bool("loop", false, "with -replay: loop the trace when the run outlasts it (otherwise the machine idles)")
	)
	flag.Parse()

	if *list {
		for _, n := range workload.Names() {
			fmt.Println(n)
		}
		return
	}

	var r0, r1 uint64
	if _, err := fmt.Sscanf(*ratio, "%d:%d", &r0, &r1); err != nil || r0 == 0 {
		fmt.Fprintf(os.Stderr, "bad -ratio %q (want e.g. 2:1)\n", *ratio)
		os.Exit(2)
	}
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })

	var topo tier.Spec
	if *topoName != "" {
		spec, ok := tier.Preset(*topoName)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown -topology %q; have %s\n", *topoName, strings.Join(tier.PresetNames(), ", "))
			os.Exit(2)
		}
		if *topoName == tier.PresetNameCXL {
			spec = tier.PresetCXL(r0, r1)
		} else if set["ratio"] {
			fmt.Fprintf(os.Stderr, "-ratio only applies to the cxl preset; %s has fixed shares\n", *topoName)
			os.Exit(2)
		}
		topo = spec
	}

	policies, err := selectPolicies(*policy)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *recordTo != "" && len(policies) > 1 {
		fmt.Fprintln(os.Stderr, "-record needs a single policy (a trace captures one run)")
		os.Exit(2)
	}
	if *recordTo != "" && *replayF != "" {
		fmt.Fprintln(os.Stderr, "-record and -replay are mutually exclusive")
		os.Exit(2)
	}
	if *replayF != "" && (set["workload"] || set["pages"]) {
		fmt.Fprintln(os.Stderr, "-replay drives the machine from the trace; -workload/-pages would be ignored")
		os.Exit(2)
	}
	if *loop && *replayF == "" {
		fmt.Fprintln(os.Stderr, "-loop only applies with -replay")
		os.Exit(2)
	}

	var tr *trace.Trace
	var ctor func(uint64) workload.Workload
	if *replayF != "" {
		if tr, err = trace.Load(*replayF); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		h := tr.Header
		traceMin := (tr.Ticks() + workload.TicksPerMinute - 1) / workload.TicksPerMinute
		fmt.Printf("replaying %s: workload=%s pages=%d %d min (%d KB encoded)\n",
			*replayF, h.Name, h.TotalPages, traceMin, tr.Size()/1024)
		if len(topo.Nodes) == 0 && !set["ratio"] && h.Topology != nil {
			// No explicit sizing: rebuild the recorded machine.
			topo = *h.Topology
			fmt.Printf("  machine from trace: %s (%d nodes)\n", topo.Name, len(topo.Nodes))
		}
		if !set["minutes"] && uint64(*minutes) > traceMin {
			// Without an explicit -minutes, replay exactly the trace.
			*minutes = int(traceMin)
		} else if uint64(*minutes) > traceMin && !*loop {
			fmt.Fprintf(os.Stderr, "warning: run (%d min) outlasts the trace (%d min); the machine idles after it ends — use -loop to wrap\n",
				*minutes, traceMin)
		}
	} else {
		var ok bool
		if ctor, ok = workload.Catalog[*wlName]; !ok {
			fmt.Fprintf(os.Stderr, "unknown workload %q; have %s\n", *wlName, strings.Join(workload.Names(), ", "))
			os.Exit(2)
		}
	}

	for _, p := range policies {
		cfg := sim.Config{
			Seed:     *seed,
			Policy:   p,
			Minutes:  *minutes,
			RecordTo: *recordTo,
		}
		if len(topo.Nodes) > 0 {
			cfg.Topology = topo
		} else {
			cfg.Ratio = [2]uint64{r0, r1}
		}
		if tr != nil {
			cfg.Workload = tr.Replayer(trace.ReplayOptions{Loop: *loop})
		} else {
			cfg.Workload = ctor(*pages)
		}
		m, err := sim.New(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		res := m.Run()
		fmt.Println(res.String())
		if err := m.RecordError(); err != nil {
			fmt.Fprintf(os.Stderr, "recording trace: %v\n", err)
			os.Exit(1)
		}
		if *nodesFl {
			fmt.Print(report.NodeTable(res).String())
		}
		if *vmstatFl {
			st := m.Stat()
			fmt.Print(indent(st.Snapshot().String()))
			if st.NumNodes() > 1 {
				for n := 0; n < st.NumNodes(); n++ {
					fmt.Printf("  node%d:\n", n)
					fmt.Print(indent(indent(st.NodeSnapshot(mem.NodeID(n)).String())))
				}
			}
		}
		if *series {
			dumpSeries(&res.LocalTraffic)
		}
	}
}

func selectPolicies(name string) ([]core.Policy, error) {
	switch strings.ToLower(name) {
	case "default":
		return []core.Policy{core.DefaultLinux()}, nil
	case "tpp":
		return []core.Policy{core.TPP()}, nil
	case "numab":
		return []core.Policy{core.NUMABalancing()}, nil
	case "autotiering":
		return []core.Policy{core.AutoTiering()}, nil
	case "tmo":
		return []core.Policy{core.TMOOnly()}, nil
	case "tpp+tmo":
		return []core.Policy{core.TPP(core.WithTMO())}, nil
	case "tpp+pta":
		return []core.Policy{core.TPP(core.WithPageTypeAware())}, nil
	case "all":
		return core.All(), nil
	}
	return nil, fmt.Errorf("unknown policy %q", name)
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = "    " + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}

func dumpSeries(s *metrics.Series) {
	fmt.Println("minute,local_traffic")
	for i := range s.Y {
		fmt.Printf("%.1f,%.4f\n", s.X[i], s.Y[i])
	}
}
