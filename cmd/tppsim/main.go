// Command tppsim runs one workload under one placement policy on a
// simulated CXL tiered-memory machine and prints the results: normalized
// throughput, local-traffic fraction, and the TPP observability counters
// (§5.5).
//
// Examples:
//
//	tppsim -workload Web1 -policy tpp -ratio 2:1 -minutes 60
//	tppsim -workload Cache1 -policy default -ratio 1:4 -vmstat
//	tppsim -workload Cache2 -policy all -ratio 2:1
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tppsim/internal/core"
	"tppsim/internal/metrics"
	"tppsim/internal/sim"
	"tppsim/internal/workload"
)

func main() {
	var (
		wlName   = flag.String("workload", "Cache1", "workload: "+strings.Join(workload.Names(), ", "))
		policy   = flag.String("policy", "tpp", "policy: default, tpp, numab, autotiering, tmo, tpp+tmo, all")
		ratio    = flag.String("ratio", "2:1", "local:CXL capacity ratio, or 1:0 for the all-local baseline")
		minutes  = flag.Int("minutes", 60, "simulated minutes")
		pages    = flag.Uint64("pages", workload.DefaultTotalPages, "working-set size in 4KB pages")
		seed     = flag.Uint64("seed", 1, "random seed")
		vmstatFl = flag.Bool("vmstat", false, "dump /proc/vmstat-style counters")
		series   = flag.Bool("series", false, "dump the local-traffic time series as CSV")
	)
	flag.Parse()

	ctor, ok := workload.Catalog[*wlName]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown workload %q; have %s\n", *wlName, strings.Join(workload.Names(), ", "))
		os.Exit(2)
	}
	var r0, r1 uint64
	if _, err := fmt.Sscanf(*ratio, "%d:%d", &r0, &r1); err != nil || r0 == 0 {
		fmt.Fprintf(os.Stderr, "bad -ratio %q (want e.g. 2:1)\n", *ratio)
		os.Exit(2)
	}

	policies, err := selectPolicies(*policy)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	for _, p := range policies {
		m, err := sim.New(sim.Config{
			Seed:     *seed,
			Policy:   p,
			Workload: ctor(*pages),
			Ratio:    [2]uint64{r0, r1},
			Minutes:  *minutes,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		res := m.Run()
		fmt.Println(res.String())
		if *vmstatFl {
			fmt.Print(indent(m.Stat().Snapshot().String()))
		}
		if *series {
			dumpSeries(&res.LocalTraffic)
		}
	}
}

func selectPolicies(name string) ([]core.Policy, error) {
	switch strings.ToLower(name) {
	case "default":
		return []core.Policy{core.DefaultLinux()}, nil
	case "tpp":
		return []core.Policy{core.TPP()}, nil
	case "numab":
		return []core.Policy{core.NUMABalancing()}, nil
	case "autotiering":
		return []core.Policy{core.AutoTiering()}, nil
	case "tmo":
		return []core.Policy{core.TMOOnly()}, nil
	case "tpp+tmo":
		return []core.Policy{core.TPP(core.WithTMO())}, nil
	case "tpp+pta":
		return []core.Policy{core.TPP(core.WithPageTypeAware())}, nil
	case "all":
		return core.All(), nil
	}
	return nil, fmt.Errorf("unknown policy %q", name)
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = "    " + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}

func dumpSeries(s *metrics.Series) {
	fmt.Println("minute,local_traffic")
	for i := range s.Y {
		fmt.Printf("%.1f,%.4f\n", s.X[i], s.Y[i])
	}
}
